// Command galoisload drives closed-loop load against a galoisd server and
// checks the determinism contract while doing so: every deterministic
// (kind, variant) cell must yield exactly one fingerprint no matter how
// many concurrent clients are hammering the server, and sampled receipts
// must re-verify through POST /verify.
//
//	galoisload -addr localhost:8090 -clients 1,8 -n 3 -verify 3
//	galoisload -inprocess -scale small -bench-json BENCH.json
//	galoisload -inprocess -repeat-rate 0,0.5,0.9 -n 30
//	galoisload -inprocess -sessions 4 -batches 3
//	galoisload -targets localhost:8091,localhost:8092 -policy least-loaded
//	galoisload -router localhost:8090 -clients 8 -verify 5
//
// -targets spins up an in-process galoisrouter over the listed galoisd
// backends and drives the load through it; -router points at a running
// galoisrouter instead (backend count and policy are read from its
// /healthz). Either way the per-seed fingerprint policing below becomes a
// cross-backend determinism check — requests for one seed land on
// whichever backends the policy picks, and their fingerprints must still
// agree — and -verify replays receipts through the router's round-robin
// verify path, i.e. on nodes that did not produce them. Bench entries
// carry Mode "serve-cluster" keyed by backend count and policy.
//
// -sessions adds a stateful-session phase: N concurrent clients each
// create a session, drive -batches chained mutation batches from a
// per-client partitioned seeded stream, and audit the resulting receipt
// chain through POST /sessions/{id}/verify. Bench entries carry Mode
// "serve-session" with the chain length as a key column and the final
// chain hash as the fingerprint.
//
// -repeat-rate switches to a workload mix that sweeps galoisd's result
// cache: each request draws (from a partitioned seeded stream) either a
// hot spec from a zipf-distributed hot set (-zipf-s, -hot-specs) with the
// given probability, or a never-repeated cold spec. Bench entries then
// carry Mode "serve-mix" plus the observed cache_hit_permille, tracing the
// hit-rate → latency curve.
//
// Exit status is 1 if any cell observed more than one fingerprint, any
// receipt failed verification, or any request errored.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"galois/internal/obs"
	"galois/internal/router"
	"galois/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "galoisd address (host:port or URL); empty requires -inprocess, -targets or -router")
	inprocess := flag.Bool("inprocess", false, "spin up an in-process server instead of targeting -addr")
	targets := flag.String("targets", "", "comma-separated galoisd backends; spins up an in-process galoisrouter over them and drives the load through it (bench entries get Mode serve-cluster)")
	policyFlag := flag.String("policy", "round-robin", "routing policy of the in-process router (with -targets): round-robin|least-loaded|consistent-hash|weighted")
	routerAddr := flag.String("router", "", "address of a running galoisrouter; its /healthz supplies the backend count and policy for serve-cluster bench keys")
	kindsFlag := flag.String("kinds", "", "comma-separated job kinds (default: every kind the server registers)")
	variantsFlag := flag.String("variants", "g-d,g-dnc", "comma-separated variants")
	clientsFlag := flag.String("clients", "1,8", "comma-separated client concurrency levels")
	perClient := flag.Int("n", 3, "jobs per client per level")
	scale := flag.String("scale", "small", "input scale: small|default|full")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", 1, "per-job thread count")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-job deadline in ms (0 = server default)")
	verifyN := flag.Int("verify", 0, "re-verify up to N receipts per level through POST /verify")
	benchPath := flag.String("bench-json", "", "append mode-\"serve\" entries to this benchmark-trajectory JSON")
	reportPath := flag.String("report", "", "write the full load reports as JSON to this file")
	repeatFlag := flag.String("repeat-rate", "", "comma-separated repeat rates in [0,1]: each rate runs a zipf hot-set workload mix sweeping the result-cache hit rate (empty = legacy fixed-spec workload)")
	zipfS := flag.Float64("zipf-s", 1.1, "zipf exponent of the hot-spec popularity distribution (with -repeat-rate)")
	hotSpecs := flag.Int("hot-specs", 8, "hot seeds per cell for the repeat mix (with -repeat-rate)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache byte budget of the -inprocess server (0 disables caching)")
	sessionsN := flag.Int("sessions", 0, "run a stateful-session phase with N concurrent session clients (0 disables)")
	batchesN := flag.Int("batches", 3, "chained mutation batches per session (with -sessions)")
	sessionKinds := flag.String("session-kinds", "", "comma-separated session kinds (default: every kind the server registers)")
	sessionVariant := flag.String("session-variant", "g-d", "session scheduler variant: g-d|g-dnc")
	flag.Parse()

	var repeatRates []float64
	mix := *repeatFlag != ""
	for _, s := range splitCSV(*repeatFlag) {
		r, err := strconv.ParseFloat(s, 64)
		if err != nil || r < 0 || r > 1 {
			fmt.Fprintf(os.Stderr, "galoisload: bad -repeat-rate entry %q\n", s)
			os.Exit(2)
		}
		repeatRates = append(repeatRates, r)
	}
	if !mix {
		repeatRates = []float64{0} // one legacy pass per level
	}

	ctx := context.Background()
	// clusterBackends/clusterPolicy label runs driven through a router:
	// their bench entries get Mode "serve-cluster" keyed by both.
	clusterBackends := 0
	clusterPolicy := ""
	var c *serve.Client
	switch {
	case *inprocess:
		s := serve.NewServer(serve.Config{CacheBytes: *cacheBytes})
		ts := httptest.NewServer(s.Handler())
		defer func() {
			_ = s.Shutdown(ctx)
			ts.Close()
		}()
		c = serve.NewClient(ts.URL, ts.Client())
	case *targets != "":
		var specs []router.BackendSpec
		for _, u := range splitCSV(*targets) {
			specs = append(specs, router.BackendSpec{URL: u})
		}
		rt, err := router.New(router.Config{Backends: specs, Policy: *policyFlag})
		if err != nil {
			fmt.Fprintf(os.Stderr, "galoisload: %v\n", err)
			os.Exit(2)
		}
		defer rt.Close()
		front := httptest.NewServer(rt.Handler())
		defer front.Close()
		c = serve.NewClient(front.URL, loadHTTPClient())
		clusterBackends, clusterPolicy = len(specs), rt.Policy()
	case *routerAddr != "":
		base := *routerAddr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c = serve.NewClient(base, loadHTTPClient())
		// The router's own healthz names its policy and backend set —
		// that is what keys the serve-cluster bench entries.
		h, err := routerHealthz(ctx, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "galoisload: router healthz: %v\n", err)
			os.Exit(1)
		}
		clusterBackends, clusterPolicy = len(h.Backends), h.Policy
	case *addr != "":
		base := *addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c = serve.NewClient(base, loadHTTPClient())
	default:
		fmt.Fprintln(os.Stderr, "galoisload: need -addr, -inprocess, -targets or -router")
		os.Exit(2)
	}

	kinds := splitCSV(*kindsFlag)
	if len(kinds) == 0 {
		var err error
		if kinds, err = c.Kinds(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "galoisload: listing kinds: %v\n", err)
			os.Exit(1)
		}
	}
	variants := splitCSV(*variantsFlag)
	var levels []int
	for _, s := range splitCSV(*clientsFlag) {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "galoisload: bad -clients entry %q\n", s)
			os.Exit(2)
		}
		levels = append(levels, n)
	}

	bench := obs.NewBench()
	if *benchPath != "" {
		if prev, err := obs.ReadBenchFile(*benchPath); err == nil {
			bench = prev
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "galoisload: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	var reports []*serve.Report
	for _, clients := range levels {
		for _, rate := range repeatRates {
			cfg := serve.LoadConfig{
				Kinds: kinds, Variants: variants,
				Clients: clients, PerClient: *perClient,
				Scale: *scale, Seed: *seed, Threads: *threads, TimeoutMS: *timeoutMS,
				Mix: mix, RepeatRate: rate, ZipfS: *zipfS, HotSpecs: *hotSpecs,
				ClusterBackends: clusterBackends, ClusterPolicy: clusterPolicy,
			}
			start := time.Now()
			rep, err := serve.RunLoad(ctx, c, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "galoisload: %v\n", err)
				os.Exit(1)
			}
			reports = append(reports, rep)
			label := ""
			if mix {
				label = fmt.Sprintf(" repeat=%.2f", rate)
			}
			if clusterBackends > 0 {
				label += fmt.Sprintf(" backends=%d policy=%s", clusterBackends, clusterPolicy)
			}
			fmt.Printf("clients=%-3d%s requests=%-4d ok=%-4d rejected=%-3d errors=%-3d cachehits=%-4d wall=%v\n",
				clients, label, rep.Requests, rep.OK, rep.Rejected, rep.Errors, rep.CacheHits,
				time.Since(start).Round(time.Millisecond))
			for _, m := range rep.Mismatches {
				fmt.Printf("  DETERMINISM VIOLATION %s\n", m)
				failed = true
			}
			if rep.Errors > 0 {
				for _, e := range rep.ErrorSamples {
					fmt.Printf("  error: %s\n", e)
				}
				failed = true
			}
			for _, cs := range rep.Cells {
				fp := "-"
				if len(cs.Fingerprints) == 1 {
					fp = cs.Fingerprints[0]
				} else if len(cs.Fingerprints) > 1 {
					fp = fmt.Sprintf("%d distinct!", len(cs.Fingerprints))
				}
				fmt.Printf("  %-6s %-5s n=%-3d hits=%-3d median=%-10v max=%-10v fp=%s\n",
					cs.Kind, cs.Variant, cs.Requests, cs.CacheHits,
					time.Duration(cs.MedianNS).Round(time.Microsecond),
					time.Duration(cs.MaxNS).Round(time.Microsecond), fp)
			}

			mismatches, verified := 0, 0
			for _, r := range rep.Receipts {
				if verified >= *verifyN {
					break
				}
				if !r.Deterministic {
					continue
				}
				verified++
				vr, err := c.Verify(ctx, r)
				if err != nil {
					fmt.Fprintf(os.Stderr, "galoisload: verify %s: %v\n", r.Spec, err)
					failed = true
					continue
				}
				status := "match"
				if !vr.Match {
					status = "MISMATCH"
					mismatches++
					failed = true
				}
				fmt.Printf("  verify %-28s %s\n", r.Spec, status)
			}
			if *verifyN > 0 && mismatches > 0 {
				fmt.Printf("  %d receipt(s) FAILED verification\n", mismatches)
			}
			//detlint:ignore taintfp bench entries report measured latency beside receipt fingerprints, which the runtime computed deterministically
			for _, e := range rep.BenchEntries(cfg) {
				bench.Add(e)
			}
		}
	}

	if *sessionsN > 0 {
		cfg := serve.SessionLoadConfig{
			Kinds: splitCSV(*sessionKinds), Variant: *sessionVariant,
			Sessions: *sessionsN, Batches: *batchesN,
			Scale: *scale, Seed: *seed, Threads: *threads, TimeoutMS: *timeoutMS,
		}
		start := time.Now()
		rep, err := serve.RunSessionLoad(ctx, c, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "galoisload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("sessions=%-3d batches=%-3d ok=%-4d rejected=%-3d errors=%-3d wall=%v\n",
			rep.Sessions, rep.Batches, rep.OK, rep.Rejected, rep.Errors,
			time.Since(start).Round(time.Millisecond))
		for _, v := range rep.VerifyFailures {
			fmt.Printf("  CHAIN VERIFY FAILURE %s\n", v)
			failed = true
		}
		if rep.Errors > 0 {
			for _, e := range rep.ErrorSamples {
				fmt.Printf("  error: %s\n", e)
			}
			failed = true
		}
		for _, cs := range rep.Cells {
			fmt.Printf("  session %-6s n=%-2d chain_len=%-3d median=%-10v max=%-10v chain=%.16s…\n",
				cs.Kind, cs.Sessions, cs.ChainLen,
				time.Duration(cs.MedianNS).Round(time.Microsecond),
				time.Duration(cs.MaxNS).Round(time.Microsecond), cs.FinalChain)
		}
		//detlint:ignore taintfp bench entries report measured latency beside chain hashes, which the runtime computed deterministically
		for _, e := range rep.BenchEntries(cfg) {
			bench.Add(e)
		}
	}

	if *benchPath != "" {
		if err := bench.WriteFile(*benchPath); err != nil {
			fmt.Fprintf(os.Stderr, "galoisload: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "galoisload: wrote %s (%d entries)\n", *benchPath, len(bench.Entries))
	}
	if *reportPath != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err == nil {
			err = os.WriteFile(*reportPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "galoisload: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "galoisload: wrote %s\n", *reportPath)
	}
	if failed {
		os.Exit(1)
	}
}

// loadHTTPClient returns a transport sized for closed-loop load: the
// default transport keeps only 2 idle conns per host, which churns
// connections (and ephemeral ports) once -clients goes past that.
func loadHTTPClient() *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	}}
}

// routerHealthz fetches a galoisrouter's health snapshot.
func routerHealthz(ctx context.Context, base string) (*router.Healthz, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h router.Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	if !h.OK {
		return nil, fmt.Errorf("router reports not ok (healthy=%d draining=%v)", h.Healthy, h.Draining)
	}
	return &h, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
