// Command bfs runs the breadth-first-search benchmark on a random k-out
// graph. The -sched flag is the paper's on-demand determinism switch: the
// same program runs non-deterministically or under DIG scheduling.
//
//	bfs -n 1000000 -deg 5 -sched det -threads 8
//	bfs -variant pbbs -threads 4
package main

import (
	"flag"
	"fmt"
	"os"

	"galois"
	"galois/internal/apps/bfs"
	"galois/internal/graph"
	"galois/internal/para"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of nodes")
	deg := flag.Int("deg", 5, "out-degree of the random graph")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", para.DefaultThreads(), "worker threads")
	sched := flag.String("sched", "nondet", "galois scheduler: nondet|det")
	variant := flag.String("variant", "galois", "variant: galois|seq|pbbs")
	flag.Parse()

	fmt.Printf("generating %d-node %d-out graph (seed %d)...\n", *n, *deg, *seed)
	g := graph.Symmetrize(graph.RandomKOut(*n, *deg, *seed))

	var res *bfs.Result
	switch *variant {
	case "seq":
		res = bfs.Seq(g, 0)
	case "pbbs":
		res = bfs.PBBS(g, 0, *threads)
	case "galois":
		opts := []galois.Option{galois.WithThreads(*threads)}
		switch *sched {
		case "det":
			opts = append(opts, galois.WithSched(galois.Deterministic))
		case "nondet":
		default:
			fmt.Fprintf(os.Stderr, "bfs: unknown scheduler %q\n", *sched)
			os.Exit(2)
		}
		res = bfs.Galois(g, 0, opts...)
	default:
		fmt.Fprintf(os.Stderr, "bfs: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	reached := 0
	maxDist := uint32(0)
	for _, d := range res.Dist {
		if d != bfs.Inf {
			reached++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("reached %d/%d nodes, eccentricity %d\n", reached, g.N(), maxDist)
	fmt.Printf("fingerprint %016x\n", res.Fingerprint())
	fmt.Println(res.Stats)
}
