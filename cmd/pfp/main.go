// Command pfp runs the preflow-push max-flow benchmark with global
// relabeling on a random k-out capacity network, with the paper's on-demand
// determinism switch (-sched).
package main

import (
	"flag"
	"fmt"
	"os"

	"galois"
	"galois/internal/apps/pfp"
	"galois/internal/para"
)

func main() {
	n := flag.Int("n", 1<<18, "number of nodes")
	deg := flag.Int("deg", 4, "out-degree of the random network")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", para.DefaultThreads(), "worker threads")
	sched := flag.String("sched", "nondet", "galois scheduler: nondet|det")
	variant := flag.String("variant", "galois", "variant: galois|seq")
	check := flag.Bool("check", false, "verify against Dinic (slow)")
	flag.Parse()

	fmt.Printf("generating %d-node %d-out network (seed %d)...\n", *n, *deg, *seed)
	nw := pfp.RandomNetwork(*n, *deg, 100, *seed)

	var value int64
	switch *variant {
	case "seq":
		var st any
		value, st = pfp.Seq(nw)
		fmt.Println(st)
	case "galois":
		opts := []galois.Option{galois.WithThreads(*threads)}
		switch *sched {
		case "det":
			opts = append(opts, galois.WithSched(galois.Deterministic))
		case "nondet":
		default:
			fmt.Fprintf(os.Stderr, "pfp: unknown scheduler %q\n", *sched)
			os.Exit(2)
		}
		var st any
		value, st = pfp.Galois(nw, opts...)
		fmt.Println(st)
	default:
		fmt.Fprintf(os.Stderr, "pfp: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	fmt.Printf("max flow value %d\n", value)
	if *check {
		if err := nw.CheckPreflow(); err != nil {
			fmt.Fprintln(os.Stderr, "pfp: INVALID PREFLOW:", err)
			os.Exit(1)
		}
		nw2 := pfp.RandomNetwork(*n, *deg, 100, *seed)
		if want := pfp.Dinic(nw2); want != value {
			fmt.Fprintf(os.Stderr, "pfp: WRONG VALUE: dinic says %d\n", want)
			os.Exit(1)
		}
		fmt.Println("flow verified against Dinic")
	}
}
