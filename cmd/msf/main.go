// Command msf runs the Boruvka minimum-spanning-forest extension benchmark
// (see internal/apps/msf) with the on-demand determinism switch and a
// Kruskal cross-check.
package main

import (
	"flag"
	"fmt"
	"os"

	"galois"
	"galois/internal/apps/msf"
	"galois/internal/graph"
	"galois/internal/para"
)

func main() {
	n := flag.Int("n", 200_000, "number of nodes")
	deg := flag.Int("deg", 4, "out-degree of the random graph")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", para.DefaultThreads(), "worker threads")
	sched := flag.String("sched", "nondet", "galois scheduler: nondet|det")
	variant := flag.String("variant", "galois", "variant: galois|seq|pbbs")
	check := flag.Bool("check", false, "verify against Kruskal (slow)")
	flag.Parse()

	fmt.Printf("generating %d-node graph with unique weights (seed %d)...\n", *n, *seed)
	g := graph.Symmetrize(graph.RandomKOut(*n, *deg, *seed))
	edges := msf.RandomWeights(g, 1000, *seed+1)

	var res *msf.Result
	switch *variant {
	case "seq":
		res = msf.Seq(g.N(), edges)
	case "pbbs":
		res = msf.PBBS(g.N(), edges, *threads)
	case "galois":
		opts := []galois.Option{galois.WithThreads(*threads)}
		if *sched == "det" {
			opts = append(opts, galois.WithSched(galois.Deterministic))
		}
		res = msf.Galois(g.N(), edges, opts...)
	default:
		fmt.Fprintf(os.Stderr, "msf: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	fmt.Printf("forest: %d edges, total weight %d\n", len(res.Chosen), res.TotalWeight)
	fmt.Printf("fingerprint %016x\n", res.Fingerprint())
	fmt.Println(res.Stats)
	if *check {
		want := msf.Seq(g.N(), edges)
		if want.TotalWeight != res.TotalWeight || want.Fingerprint() != res.Fingerprint() {
			fmt.Fprintf(os.Stderr, "msf: MISMATCH with Kruskal (weight %d vs %d)\n",
				want.TotalWeight, res.TotalWeight)
			os.Exit(1)
		}
		fmt.Println("verified against Kruskal")
	}
}
