// Command repro regenerates the evaluation figures and tables of the paper
// "Deterministic Galois: On-demand, Portable and Parameterless" (ASPLOS
// 2014, §5) from this repository's reimplementation.
//
// Usage:
//
//	repro -fig 7                      # reproduce Figure 7 at default scale
//	repro -fig all -scale small       # smoke-run every figure
//	repro -fig 6 -threads 1,2,4,8     # explicit thread sweep
//	repro -fig 7 -scale full          # the paper's input sizes (slow)
//
// Absolute numbers differ from the paper (different hardware and runtime);
// each figure prints the shape claims it is expected to reproduce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"galois/internal/harness"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 4..12, 'all', 'window' (adaptive-window trace), or 'ext' (extensions)")
	scale := flag.String("scale", "default", "input scale: small|default|full")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default: 1,2,4,...,GOMAXPROCS)")
	flag.Parse()

	if *fig == "" {
		fmt.Fprintln(os.Stderr, "repro: -fig is required (4..12 or 'all')")
		flag.Usage()
		os.Exit(2)
	}
	sc, err := harness.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	var threads []int
	if *threadsFlag != "" {
		for _, part := range strings.Split(*threadsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "repro: bad thread count %q\n", part)
				os.Exit(2)
			}
			threads = append(threads, v)
		}
	}

	if *fig == "ext" {
		in := harness.MakeInputs(sc)
		t := 1
		if len(threads) > 0 {
			t = threads[len(threads)-1]
		}
		if err := harness.Extensions(in, t, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "window" {
		in := harness.MakeInputs(sc)
		t := 1
		if len(threads) > 0 {
			t = threads[len(threads)-1]
		}
		if err := harness.WindowTrace(in, t, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		return
	}
	var figs []int
	if *fig == "all" {
		for f := 4; f <= 12; f++ {
			figs = append(figs, f)
		}
	} else {
		f, err := strconv.Atoi(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: bad figure %q\n", *fig)
			os.Exit(2)
		}
		figs = []int{f}
	}

	fmt.Printf("generating inputs (scale=%s)...\n", sc.Name)
	in := harness.MakeInputs(sc)
	for _, f := range figs {
		fmt.Println()
		if err := harness.Figure(f, in, threads, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	}
}
