// Command repro regenerates the evaluation figures and tables of the paper
// "Deterministic Galois: On-demand, Portable and Parameterless" (ASPLOS
// 2014, §5) from this repository's reimplementation.
//
// Usage:
//
//	repro -fig 7                      # reproduce Figure 7 at default scale
//	repro -fig all -scale small       # smoke-run every figure
//	repro -fig 6 -threads 1,2,4,8     # explicit thread sweep
//	repro -fig 7 -scale full          # the paper's input sizes (slow)
//	repro -fig 7 -trace trace.json    # also dump a Chrome/Perfetto trace
//	repro -bench-json BENCH.json      # emit the benchmark trajectory file
//
// Figure tables go to stdout; progress diagnostics go to stderr, so
// `repro -fig 7 > fig7.txt` captures a clean table.
//
// Absolute numbers differ from the paper (different hardware and runtime);
// each figure prints the shape claims it is expected to reproduce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"galois"
	"galois/internal/harness"
	"galois/internal/obs"
)

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 4..12, 'all', 'window' (adaptive-window trace), or 'ext' (extensions)")
	scale := flag.String("scale", "default", "input scale: small|default|full")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default: 1,2,4,...,GOMAXPROCS)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the traced runs to this file")
	benchPath := flag.String("bench-json", "", "measure every app x scheduler once and write a benchmark-trajectory JSON to this file")
	benchAllocs := flag.Bool("bench-allocs", false, "with -bench-json: also measure allocs/bytes per run, in both fresh and engine-reused modes")
	benchSweep := flag.String("bench-sweep", "", "with -bench-json: comma-separated thread counts; additionally measure the deterministic variants at each count (the scaling axis of the trajectory)")
	flag.Parse()

	if *fig == "" && *benchPath == "" {
		fmt.Fprintln(os.Stderr, "repro: -fig is required (4..12, 'all', 'window', 'ext') unless -bench-json is given")
		flag.Usage()
		os.Exit(2)
	}
	sc, err := harness.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	var threads []int
	if *threadsFlag != "" {
		for _, part := range strings.Split(*threadsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "repro: bad thread count %q\n", part)
				os.Exit(2)
			}
			threads = append(threads, v)
		}
	}
	sweep := threads
	if len(sweep) == 0 {
		sweep = harness.DefaultThreadSweep()
	}
	maxT := 1
	for _, t := range sweep {
		if t > maxT {
			maxT = t
		}
	}

	fmt.Fprintf(os.Stderr, "generating inputs (scale=%s)...\n", sc.Name)
	in := harness.MakeInputs(sc)

	// One engine serves every figure sweep: the sweeps revisit the same
	// apps dozens of times, and reuse cuts the per-run allocation cost
	// without touching any measured output (the engine invariant).
	eng := galois.NewEngine(galois.WithThreads(maxT))
	defer eng.Close()
	in.Engine = eng

	// With -trace, every Galois run dispatched below feeds the same sink;
	// the export then holds one process per run. Tracing is non-perturbing,
	// so attaching it never changes the tables.
	var tr *galois.Trace
	if *tracePath != "" {
		tr = galois.NewTrace(maxT)
		in.TraceSink = tr
	}

	switch *fig {
	case "":
		// -bench-json only.
	case "ext":
		if err := harness.Extensions(in, sweep[len(sweep)-1], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	case "window":
		//detlint:ignore taintfp inputs carry harness timing state; report fingerprints come from det receipts, not timings
		if err := harness.WindowTrace(in, sweep[len(sweep)-1], tr, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
	default:
		var figs []int
		if *fig == "all" {
			for f := 4; f <= 12; f++ {
				figs = append(figs, f)
			}
		} else {
			f, err := strconv.Atoi(*fig)
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: bad figure %q\n", *fig)
				os.Exit(2)
			}
			figs = []int{f}
		}
		for _, f := range figs {
			fmt.Println()
			//detlint:ignore taintfp inputs carry harness timing state; report fingerprints come from det receipts, not timings
			if err := harness.Figure(f, in, threads, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "repro:", err)
				os.Exit(1)
			}
		}
	}

	if *benchPath != "" {
		fmt.Fprintf(os.Stderr, "measuring benchmark trajectory (threads=%d, scale=%s)...\n", maxT, sc.Name)
		var b *obs.Bench
		if *benchAllocs {
			// CollectBenchAllocs manages fresh/engine modes itself.
			//detlint:ignore taintfp inputs carry harness timing state; bench fingerprints come from det receipts, not timings
			b = harness.CollectBenchAllocs(in, maxT, sc.Name)
		} else {
			//detlint:ignore taintfp inputs carry harness timing state; bench fingerprints come from det receipts, not timings
			b = harness.CollectBench(in, maxT, sc.Name)
		}
		if *benchSweep != "" {
			var sweep []int
			for _, part := range strings.Split(*benchSweep, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || v < 1 {
					fmt.Fprintf(os.Stderr, "repro: bad -bench-sweep thread count %q\n", part)
					os.Exit(2)
				}
				sweep = append(sweep, v)
			}
			fmt.Fprintf(os.Stderr, "measuring deterministic thread sweep (threads=%v)...\n", sweep)
			// Keys already measured above (the t1 deterministic cells when
			// the sweep includes 1) keep their first measurement.
			have := make(map[string]bool, len(b.Entries))
			for _, e := range b.Entries {
				have[e.Key()] = true
			}
			//detlint:ignore taintfp inputs carry harness timing state; bench fingerprints come from det receipts, not timings
			for _, e := range harness.CollectBenchSweep(in, sweep, sc.Name).Entries {
				if !have[e.Key()] {
					b.Add(e)
				}
			}
		}
		if err := b.WriteFile(*benchPath); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", len(b.Entries), *benchPath)
	}
	if tr != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace (%d events) to %s — load in Perfetto or chrome://tracing\n",
			tr.Len(), *tracePath)
		fmt.Fprint(os.Stderr, tr.Summary())
	}
}
