// Command detlint statically checks this repository for determinism
// hazards: map iteration, wall-clock reads, global RNG draws, shared
// writes before a task's failsafe point, and scheduling-dependent
// goroutines/selects on the deterministic path.
//
// Usage:
//
//	go run ./cmd/detlint [-config detlint.conf] [-rules] [patterns...]
//
// Patterns follow the go tool ("./...", "internal/core"); the default is
// "./..." from the enclosing module root. Findings print one per line as
//
//	file:line: [rule] message
//
// and any finding makes the exit status 1. See DESIGN.md, "Determinism
// hazards and how we check them", for the rule catalogue and the
// //detlint:ignore suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"galois/internal/lint"
)

func main() {
	configPath := flag.String("config", "", "config file (default: detlint.conf at the module root, if present)")
	showRules := flag.Bool("rules", false, "list the analysis passes and exit")
	flag.Parse()

	if *showRules {
		for _, p := range lint.Passes() {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}

	n, err := run(*configPath, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// run returns the number of findings; a non-nil error means the analysis
// itself could not run.
func run(configPath string, patterns []string) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return 0, err
	}

	cfg := lint.DefaultConfig()
	switch {
	case configPath != "":
		if cfg, err = lint.ParseConfig(configPath); err != nil {
			return 0, err
		}
	default:
		if p := filepath.Join(modRoot, "detlint.conf"); fileExists(p) {
			if cfg, err = lint.ParseConfig(p); err != nil {
				return 0, err
			}
		}
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Match(patterns...)
	if err != nil {
		return 0, err
	}

	findings := lint.Run(cfg, pkgs)
	for _, f := range findings {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(modRoot, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "detlint: note: %s: %v\n", p.Path, terr)
		}
	}
	return len(findings), nil
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && !st.IsDir()
}
