// Command detlint statically checks this repository for determinism
// hazards: map iteration, wall-clock reads, global RNG draws, shared
// writes before a task's failsafe point, impure commit handlers,
// order-dependent values flowing into fingerprints, and
// scheduling-dependent goroutines/selects on the deterministic path.
//
// Usage:
//
//	go run ./cmd/detlint [flags] [patterns...]
//
//	-config file   config file (default: detlint.conf at the module root)
//	-rules         list the analysis passes and exit
//	-run list      comma-separated rule subset to run (e.g. failsafe,taintfp)
//	-json          write findings to stdout as a JSON array instead of text
//	-json-out f    write the JSON array to f and keep text on stdout
//	-nocache       disable the per-package findings cache (.cache/detlint)
//
// Patterns follow the go tool ("./...", "internal/core"); the default is
// "./..." from the enclosing module root. Findings print one per line as
//
//	file:line: [rule] message
//
// and any finding makes the exit status 1. Results are cached per package
// under <modroot>/.cache/detlint, keyed by the content of every source
// file in the package's module-internal import closure, so repeat runs
// re-analyze only what changed. See DESIGN.md, "Determinism hazards and
// how we check them" and "Effect analysis and the failsafe theorem", for
// the rule catalogue and the //detlint:ignore suppression syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"galois/internal/lint"
)

func main() {
	configPath := flag.String("config", "", "config file (default: detlint.conf at the module root, if present)")
	showRules := flag.Bool("rules", false, "list the analysis passes and exit")
	runRules := flag.String("run", "", "comma-separated subset of rules to run (default: all)")
	jsonOut := flag.Bool("json", false, "write findings to stdout as JSON instead of text")
	jsonPath := flag.String("json-out", "", "also write findings as JSON to this file")
	noCache := flag.Bool("nocache", false, "disable the per-package findings cache")
	flag.Parse()

	if *showRules {
		for _, p := range lint.Passes() {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}

	n, err := run(options{
		configPath: *configPath,
		runRules:   *runRules,
		jsonStdout: *jsonOut,
		jsonPath:   *jsonPath,
		noCache:    *noCache,
		patterns:   flag.Args(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

type options struct {
	configPath string
	runRules   string
	jsonStdout bool
	jsonPath   string
	noCache    bool
	patterns   []string
}

// jsonFinding is the machine-readable record for one finding; the file is
// module-relative so output is stable across checkouts.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// run returns the number of findings; a non-nil error means the analysis
// itself could not run.
func run(opts options) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return 0, err
	}

	cfg := lint.DefaultConfig()
	switch {
	case opts.configPath != "":
		if cfg, err = lint.ParseConfig(opts.configPath); err != nil {
			return 0, err
		}
	default:
		if p := filepath.Join(modRoot, "detlint.conf"); fileExists(p) {
			if cfg, err = lint.ParseConfig(p); err != nil {
				return 0, err
			}
		}
	}
	if opts.runRules != "" {
		if err := cfg.SetRules(opts.runRules); err != nil {
			return 0, err
		}
	}
	for _, prefix := range cfg.UnmatchedPrefixes(modRoot) {
		fmt.Fprintf(os.Stderr, "detlint: warning: config prefix %q matches no directory under %s\n", prefix, modRoot)
	}

	patterns := opts.patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		return 0, err
	}

	var cache *lint.Cache
	if !opts.noCache {
		// A cache that cannot be opened (read-only checkout, say) is not
		// worth failing the run over; analysis just goes uncached.
		cache, _ = lint.OpenCache(filepath.Join(modRoot, ".cache", "detlint"), cfg)
	}
	findings, _, err := lint.RunCached(cfg, loader, cache, patterns...)
	if err != nil {
		return 0, err
	}

	records := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil && !filepath.IsAbs(rel) {
			file = filepath.ToSlash(rel)
		}
		records = append(records, jsonFinding{File: file, Line: f.Pos.Line, Rule: f.Rule, Msg: f.Msg})
	}

	if opts.jsonStdout {
		if err := writeJSON(os.Stdout, records); err != nil {
			return 0, err
		}
	} else {
		for _, r := range records {
			fmt.Printf("%s:%d: [%s] %s\n", r.File, r.Line, r.Rule, r.Msg)
		}
	}
	if opts.jsonPath != "" {
		f, err := os.Create(opts.jsonPath)
		if err != nil {
			return 0, err
		}
		if err := writeJSON(f, records); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
	}

	// Cache hits skip loading entirely, so type errors only surface for
	// freshly analyzed packages.
	for _, p := range loader.Loaded() {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "detlint: note: %s: %v\n", p.Path, terr)
		}
	}
	return len(findings), nil
}

func writeJSON(w io.Writer, records []jsonFinding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && !st.IsDir()
}
