// Command sssp runs the single-source-shortest-paths extension benchmark
// (see internal/apps/sssp) with the on-demand determinism switch and the
// OBIM priority worklist.
package main

import (
	"flag"
	"fmt"
	"os"

	"galois"
	"galois/internal/apps/sssp"
	"galois/internal/graph"
	"galois/internal/para"
)

func main() {
	n := flag.Int("n", 500_000, "number of nodes")
	deg := flag.Int("deg", 4, "out-degree of the random graph")
	maxW := flag.Uint("maxw", 100, "maximum edge weight")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", para.DefaultThreads(), "worker threads")
	sched := flag.String("sched", "nondet", "galois scheduler: nondet|det")
	obim := flag.Bool("obim", true, "use the OBIM priority worklist (nondet only)")
	check := flag.Bool("check", false, "verify against Dijkstra (slow)")
	flag.Parse()

	fmt.Printf("generating weighted %d-node graph (seed %d)...\n", *n, *seed)
	g := graph.RandomWeighted(*n, *deg, uint32(*maxW), *seed)

	o := sssp.Options{}
	if *obim {
		o = sssp.DefaultOptions(uint32(*maxW))
	}
	opts := []galois.Option{galois.WithThreads(*threads)}
	if *sched == "det" {
		opts = append(opts, galois.WithSched(galois.Deterministic))
	}
	res := sssp.Galois(g, 0, o, opts...)

	reached := 0
	for _, d := range res.Dist {
		if d != sssp.Inf {
			reached++
		}
	}
	fmt.Printf("reached %d/%d nodes\n", reached, g.N())
	fmt.Printf("fingerprint %016x\n", res.Fingerprint())
	fmt.Println(res.Stats)
	if *check {
		want := sssp.Seq(g, 0)
		if want.Fingerprint() != res.Fingerprint() {
			fmt.Fprintln(os.Stderr, "sssp: MISMATCH with Dijkstra")
			os.Exit(1)
		}
		fmt.Println("verified against Dijkstra")
	}
}
