// Command tracecheck validates that a file parses as Chrome trace-event
// JSON (the format repro -trace emits and Perfetto loads). It exits 0 and
// prints the event count on success, nonzero with a diagnostic otherwise —
// the CI trace-smoke target uses it to prove emitted traces stay loadable
// without needing Perfetto in the build image.
package main

import (
	"fmt"
	"os"

	"galois/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	n, err := obs.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid Chrome trace JSON, %d events\n", os.Args[1], n)
}
