// Command mis runs the maximal-independent-set benchmark on a random k-out
// graph, with the paper's on-demand determinism switch (-sched). MIS output
// genuinely depends on the schedule, so -sched det is the easiest place to
// watch the portability property: the fingerprint is identical for every
// -threads value.
package main

import (
	"flag"
	"fmt"
	"os"

	"galois"
	"galois/internal/apps/mis"
	"galois/internal/graph"
	"galois/internal/para"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of nodes")
	deg := flag.Int("deg", 5, "out-degree of the random graph")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", para.DefaultThreads(), "worker threads")
	sched := flag.String("sched", "nondet", "galois scheduler: nondet|det")
	variant := flag.String("variant", "galois", "variant: galois|seq|pbbs")
	check := flag.Bool("check", true, "verify independence and maximality")
	flag.Parse()

	fmt.Printf("generating %d-node %d-out graph (seed %d)...\n", *n, *deg, *seed)
	g := graph.Symmetrize(graph.RandomKOut(*n, *deg, *seed))

	var res *mis.Result
	switch *variant {
	case "seq":
		res = mis.Seq(g)
	case "pbbs":
		res = mis.PBBS(g, *threads)
	case "galois":
		opts := []galois.Option{galois.WithThreads(*threads)}
		switch *sched {
		case "det":
			opts = append(opts, galois.WithSched(galois.Deterministic))
		case "nondet":
		default:
			fmt.Fprintf(os.Stderr, "mis: unknown scheduler %q\n", *sched)
			os.Exit(2)
		}
		res = mis.Galois(g, opts...)
	default:
		fmt.Fprintf(os.Stderr, "mis: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	if *check {
		if err := res.Check(g); err != nil {
			fmt.Fprintln(os.Stderr, "mis: INVALID RESULT:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("independent set size %d of %d nodes\n", res.Size(), g.N())
	fmt.Printf("fingerprint %016x\n", res.Fingerprint())
	fmt.Println(res.Stats)
}
