// Command galoisd serves the repository's analytics apps as deterministic
// network jobs. Every response carries a fingerprint receipt; POST /verify
// re-executes a receipt and reports match/mismatch, so a client can audit
// any answer it was ever given — including on a different machine or at a
// different thread count, which is the paper's portability property turned
// into an API contract.
//
// Determinism also makes results cacheable: a det job's output is a pure
// function of its normalized spec, so repeat submissions are served from a
// content-addressed result cache (-cache-bytes, default 64 MiB) without an
// engine execution — the response carries the same fingerprint with
// "cached": true. -cache-spotcheck re-executes a seeded deterministic
// fraction of hits through the verify path and evicts on any mismatch.
//
// Stateful sessions make mutation a first-class API: POST /sessions pins
// a long-lived mutable input (a dmr mesh, an sssp graph) server-side,
// POST /sessions/{id}/batches applies deterministic mutation batches
// against it, and every batch receipt extends a hash chain —
// POST /sessions/{id}/verify replays the whole chain from the recorded
// initial spec and checks it, optionally against the client's last
// receipt alone. Idle sessions are evicted after -session-idle with a
// tombstone link sealing the chain.
//
//	galoisd -addr :8090
//	curl -s localhost:8090/jobs -d '{"kind":"bfs","variant":"g-d","scale":"small"}'
//	curl -s localhost:8090/verify -d "$receipt"
//	curl -s localhost:8090/sessions -d '{"kind":"dmr","scale":"small","seed":42}'
//
// Endpoints: POST /jobs, POST /verify, GET /metrics, GET /kinds,
// GET /healthz, POST /sessions, GET|DELETE /sessions/{id},
// POST /sessions/{id}/batches, POST /sessions/{id}/verify.
// SIGINT/SIGTERM drain in-flight and queued work — session batches
// included — before exiting; new submissions are rejected with 503 while
// draining.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"galois/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once bound (for scripts using :0)")
	workers := flag.Int("workers", 0, "job-executing workers (default GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth (full queue => 429 + Retry-After)")
	engineCap := flag.Int("engine-cap", 0, "retained engines per thread-count key (default workers)")
	maxThreads := flag.Int("max-threads", 8, "clamp on per-job thread requests")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline when the spec omits one")
	drain := flag.Duration("drain", 2*time.Minute, "shutdown grace period for draining admitted jobs")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache byte budget; repeat det specs are served from cache at lookup speed (0 disables)")
	spotCheck := flag.Float64("cache-spotcheck", 0, "fraction of cache hits re-executed through the verify path as an honesty check (deterministic seeded selection; 0 disables, 1 checks every hit)")
	sessionIdle := flag.Duration("session-idle", 10*time.Minute, "evict sessions with no batch for this long, sealing a tombstone link (0 disables)")
	maxSessions := flag.Int("max-sessions", 64, "cap on live (un-evicted) sessions; creation beyond it gets 429")
	flag.Parse()

	s := serve.NewServer(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		EngineCap:      *engineCap,
		MaxThreads:     *maxThreads,
		DefaultTimeout: *timeout,
		CacheBytes:     *cacheBytes,
		CacheSpotCheck: *spotCheck,
		SessionIdle:    *sessionIdle,
		MaxSessions:    *maxSessions,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "galoisd: %v\n", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "galoisd: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "galoisd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	//detlint:ignore goroutineorder single HTTP acceptor; lifecycle joined via errc/signal below
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	//detlint:ignore goroutineorder lifecycle select: whichever of signal/serve-error arrives ends the process; no committed output depends on the order
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "galoisd: %v — draining\n", got)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "galoisd: %v\n", err)
		os.Exit(1)
	}

	// Drain job queue first (in-flight and queued jobs complete, receipts
	// delivered, new submissions 503), then stop accepting connections.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "galoisd: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "galoisd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "galoisd: done")
}
