// Command mm runs the maximal-matching extension benchmark (see
// internal/apps/mm) with the on-demand determinism switch.
package main

import (
	"flag"
	"fmt"
	"os"

	"galois"
	"galois/internal/apps/mm"
	"galois/internal/graph"
	"galois/internal/para"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of nodes")
	deg := flag.Int("deg", 5, "out-degree of the random graph")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", para.DefaultThreads(), "worker threads")
	sched := flag.String("sched", "nondet", "galois scheduler: nondet|det")
	variant := flag.String("variant", "galois", "variant: galois|seq|pbbs")
	check := flag.Bool("check", true, "verify matching validity and maximality")
	flag.Parse()

	fmt.Printf("generating %d-node %d-out graph (seed %d)...\n", *n, *deg, *seed)
	g := graph.Symmetrize(graph.RandomKOut(*n, *deg, *seed))

	var res *mm.Result
	switch *variant {
	case "seq":
		res = mm.Seq(g)
	case "pbbs":
		res = mm.PBBS(g, *threads)
	case "galois":
		opts := []galois.Option{galois.WithThreads(*threads)}
		if *sched == "det" {
			opts = append(opts, galois.WithSched(galois.Deterministic))
		}
		res = mm.Galois(g, opts...)
	default:
		fmt.Fprintf(os.Stderr, "mm: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	if *check {
		if err := res.Check(g); err != nil {
			fmt.Fprintln(os.Stderr, "mm: INVALID RESULT:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("matching size %d (%d nodes)\n", res.Size(), g.N())
	fmt.Printf("fingerprint %016x\n", res.Fingerprint())
	fmt.Println(res.Stats)
}
