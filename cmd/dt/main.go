// Command dt runs the Delaunay-triangulation benchmark on uniform random
// points in the unit square, with the paper's on-demand determinism switch
// (-sched) and the Lonestar-style online BRIO reordering.
package main

import (
	"flag"
	"fmt"
	"os"

	"galois"
	"galois/internal/apps/dt"
	"galois/internal/geom"
	"galois/internal/mesh"
	"galois/internal/para"
)

func main() {
	n := flag.Int("n", 200_000, "number of points")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", para.DefaultThreads(), "worker threads")
	sched := flag.String("sched", "nondet", "galois scheduler: nondet|det")
	variant := flag.String("variant", "galois", "variant: galois|seq|pbbs")
	check := flag.Bool("check", false, "verify the Delaunay property (slow)")
	flag.Parse()

	fmt.Printf("generating %d points (seed %d)...\n", *n, *seed)
	pts := geom.UniformPoints(*n, *seed)

	var res *dt.Result
	switch *variant {
	case "seq":
		res = dt.Seq(pts, *seed+1)
	case "pbbs":
		res = dt.PBBS(pts, *seed+1, *threads, 0)
	case "galois":
		opts := []galois.Option{galois.WithThreads(*threads)}
		switch *sched {
		case "det":
			opts = append(opts, galois.WithSched(galois.Deterministic))
		case "nondet":
		default:
			fmt.Fprintf(os.Stderr, "dt: unknown scheduler %q\n", *sched)
			os.Exit(2)
		}
		res = dt.Galois(pts, *seed+1, opts...)
	default:
		fmt.Fprintf(os.Stderr, "dt: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	if *check {
		if err := mesh.CheckConforming(res.Root); err != nil {
			fmt.Fprintln(os.Stderr, "dt: BROKEN MESH:", err)
			os.Exit(1)
		}
		if err := mesh.CheckDelaunay(res.Root); err != nil {
			fmt.Fprintln(os.Stderr, "dt: NOT DELAUNAY:", err)
			os.Exit(1)
		}
		fmt.Println("mesh verified: conforming and Delaunay")
	}
	fmt.Printf("inserted %d points, %d interior triangles\n",
		res.Inserted, mesh.CountTriangles(res.Root, true))
	fmt.Printf("fingerprint %016x\n", res.Fingerprint())
	fmt.Println(res.Stats)
}
