// Command dmr runs the Delaunay-mesh-refinement benchmark: build a
// Delaunay mesh over random points in the unit square, then refine every
// triangle with a minimum angle below 30 degrees. The refined mesh depends
// on the schedule, so the -sched det fingerprint demonstrates the paper's
// portability property directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"galois"
	"galois/internal/apps/dmr"
	"galois/internal/mesh"
	"galois/internal/para"
)

func main() {
	n := flag.Int("n", 100_000, "number of mesh points")
	seed := flag.Uint64("seed", 42, "input seed")
	threads := flag.Int("threads", para.DefaultThreads(), "worker threads")
	sched := flag.String("sched", "nondet", "galois scheduler: nondet|det")
	variant := flag.String("variant", "galois", "variant: galois|seq|pbbs")
	check := flag.Bool("check", false, "verify mesh quality and structure (slow)")
	flag.Parse()

	q := dmr.DefaultQuality()
	fmt.Printf("building input mesh over %d points (seed %d)...\n", *n, *seed)
	root := dmr.MakeInput(*n, *seed)
	before := mesh.CountTriangles(root, false)

	var res *dmr.Result
	switch *variant {
	case "seq":
		res = dmr.Seq(root, q)
	case "pbbs":
		res = dmr.PBBS(root, q, *threads, 0)
	case "galois":
		opts := []galois.Option{galois.WithThreads(*threads)}
		switch *sched {
		case "det":
			opts = append(opts, galois.WithSched(galois.Deterministic))
		case "nondet":
		default:
			fmt.Fprintf(os.Stderr, "dmr: unknown scheduler %q\n", *sched)
			os.Exit(2)
		}
		res = dmr.Galois(root, q, opts...)
	default:
		fmt.Fprintf(os.Stderr, "dmr: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	if *check {
		if err := res.Check(q); err != nil {
			fmt.Fprintln(os.Stderr, "dmr: INVALID MESH:", err)
			os.Exit(1)
		}
		fmt.Println("mesh verified: conforming, Delaunay, no bad triangles")
	}
	fmt.Printf("triangles: %d -> %d\n", before, mesh.CountTriangles(res.Root, false))
	fmt.Printf("fingerprint %016x\n", res.Fingerprint())
	fmt.Println(res.Stats)
}
