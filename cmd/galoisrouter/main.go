// Command galoisrouter fronts a set of galoisd backends with a routing
// tier. Because every deterministic job's output is a pure function of
// its canonical spec — independent of machine and thread count — routing
// is behavior-free: the same job mix yields byte-identical receipts
// whichever backend each job lands on, under whichever policy. The policy
// flag is therefore a pure performance knob, and POST /verify routes
// round-robin across ALL healthy backends on purpose, so receipts are
// continuously replayed on nodes that did not produce them.
//
//	galoisrouter -backends 127.0.0.1:8091,127.0.0.1:8092 -policy least-loaded
//	curl -s localhost:8090/jobs -d '{"kind":"bfs","variant":"g-d","scale":"small"}'
//	curl -s localhost:8090/verify -d "$receipt"   # may land on either backend
//
// Backends are health-probed via their GET /healthz; consecutive failures
// eject a backend and a cooldown plus one probe success restores it.
// Retries are bounded and happen only on dial-phase connection errors
// (the request provably never reached admission — no duplicate
// execution); 429 + Retry-After pass through as cluster backpressure.
// Sessions stick to the backend that created them. SIGINT/SIGTERM drain:
// new requests get 503 while in-flight proxied requests finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"galois/internal/router"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once bound (for scripts using :0)")
	backends := flag.String("backends", "", "comma-separated galoisd base URLs (required), e.g. 127.0.0.1:8091,127.0.0.1:8092")
	policy := flag.String("policy", "round-robin", "routing policy: round-robin|least-loaded|consistent-hash|weighted")
	weights := flag.String("weights", "", "comma-separated integer weights matching -backends (weighted policy; default all 1)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "health-probe period against each backend's /healthz (0 disables active probing)")
	ejectAfter := flag.Int("eject-after", 3, "consecutive probe/dial failures that eject a backend")
	recoverAfter := flag.Duration("recover-after", 5*time.Second, "cooldown before an ejected backend gets a half-open recovery probe")
	retries := flag.Int("retries", 2, "max retries per request on dial-phase connection errors (never after a backend may have admitted)")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes (bodies are buffered for retry replay)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight proxied requests")
	flag.Parse()

	if *backends == "" {
		fmt.Fprintln(os.Stderr, "galoisrouter: -backends is required")
		os.Exit(2)
	}
	var specs []router.BackendSpec
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			specs = append(specs, router.BackendSpec{URL: u, Weight: 1})
		}
	}
	if *weights != "" {
		ws := strings.Split(*weights, ",")
		if len(ws) != len(specs) {
			fmt.Fprintf(os.Stderr, "galoisrouter: -weights has %d entries for %d backends\n", len(ws), len(specs))
			os.Exit(2)
		}
		for i, w := range ws {
			n, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "galoisrouter: bad weight %q (want integer >= 1)\n", w)
				os.Exit(2)
			}
			specs[i].Weight = n
		}
	}

	rt, err := router.New(router.Config{
		Backends:      specs,
		Policy:        *policy,
		ProbeInterval: *probeInterval,
		EjectAfter:    *ejectAfter,
		RecoverAfter:  *recoverAfter,
		Retries:       *retries,
		MaxBody:       *maxBody,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "galoisrouter: %v\n", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "galoisrouter: %v\n", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "galoisrouter: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "galoisrouter: listening on %s — %d backends, policy %s\n",
		ln.Addr(), len(specs), rt.Policy())

	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	//detlint:ignore goroutineorder single HTTP acceptor; lifecycle joined via errc/signal below
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	//detlint:ignore goroutineorder lifecycle select: whichever of signal/serve-error arrives ends the process; no committed output depends on the order
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "galoisrouter: %v — draining\n", got)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "galoisrouter: %v\n", err)
		os.Exit(1)
	}

	// Flip to draining (new requests 503), wait for in-flight proxied
	// requests, then close the listener. The backends drain their own
	// admitted work; the router only stops feeding them.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "galoisrouter: drain incomplete: %v\n", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "galoisrouter: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "galoisrouter: done")
}
