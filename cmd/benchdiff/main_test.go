package main

import (
	"testing"

	"galois/internal/obs"
)

func entry(app string, wall int64, allocs uint64, mode, fp string) obs.BenchEntry {
	return obs.BenchEntry{App: app, Variant: "g-d", Sched: "det", Threads: 2,
		Scale: "small", WallNS: wall, AllocsPerOp: allocs, Mode: mode, Fingerprint: fp}
}

func bench(entries ...obs.BenchEntry) *obs.Bench {
	b := obs.NewBench()
	for _, e := range entries {
		b.Add(e)
	}
	return b
}

func TestDiffClean(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "", "aa"), entry("mis", 200, 60, "engine", "bb"))
	new := bench(entry("bfs", 105, 50, "", "aa"), entry("mis", 190, 55, "engine", "bb"))
	r := diff(old, new, 0.10)
	if r.compared != 2 || len(r.wallRegressions) != 0 || len(r.allocRegressions) != 0 ||
		len(r.behaviorChanges) != 0 || len(r.onlyOld) != 0 || len(r.onlyNew) != 0 {
		t.Fatalf("clean diff flagged: %+v", r)
	}
	if !r.allocsChecked {
		t.Fatal("allocs present in both files but not checked")
	}
}

func TestDiffWallRegression(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "", "aa"))
	// +10% exactly is allowed; strictly above fails.
	r := diff(old, bench(entry("bfs", 110, 50, "", "aa")), 0.10)
	if len(r.wallRegressions) != 0 {
		t.Fatalf("+10%% flagged: %+v", r.wallRegressions)
	}
	r = diff(old, bench(entry("bfs", 112, 50, "", "aa")), 0.10)
	if len(r.wallRegressions) != 1 {
		t.Fatalf("+12%% not flagged: %+v", r.wallRegressions)
	}
}

func TestDiffAllocRegressionIsStrict(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "engine", "aa"))
	r := diff(old, bench(entry("bfs", 100, 51, "engine", "aa")), 0.10)
	if len(r.allocRegressions) != 1 {
		t.Fatalf("+1 alloc not flagged: %+v", r.allocRegressions)
	}
	r = diff(old, bench(entry("bfs", 100, 49, "engine", "aa")), 0.10)
	if len(r.allocRegressions) != 0 {
		t.Fatalf("alloc improvement flagged: %+v", r.allocRegressions)
	}
}

func TestDiffSkipsAllocsAgainstV1(t *testing.T) {
	// A v1-era file has no allocation columns; the comparison must not
	// treat 0 -> n as a regression, it must skip allocs entirely.
	old := bench(entry("bfs", 100, 0, "", "aa"))
	r := diff(old, bench(entry("bfs", 100, 500, "", "aa")), 0.10)
	if r.allocsChecked || len(r.allocRegressions) != 0 {
		t.Fatalf("allocs compared against v1 file: %+v", r)
	}
}

func TestDiffFingerprintChangeIsBehavior(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "", "aa"))
	r := diff(old, bench(entry("bfs", 100, 50, "", "cc")), 0.10)
	if len(r.behaviorChanges) != 1 {
		t.Fatalf("fingerprint change not flagged: %+v", r)
	}
	// Nondet entries carry no reproducibility claim.
	o := entry("bfs", 100, 50, "", "aa")
	o.Variant, o.Sched = "g-n", "nondet"
	n := o
	n.Fingerprint = "dd"
	r = diff(bench(o), bench(n), 0.10)
	if len(r.behaviorChanges) != 0 {
		t.Fatalf("nondet fingerprint change flagged: %+v", r)
	}
}

func TestDiffKeySets(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "", "aa"), entry("dt", 100, 50, "", "aa"))
	new := bench(entry("bfs", 100, 50, "", "aa"), entry("pfp", 100, 50, "", "aa"))
	r := diff(old, new, 0.10)
	if len(r.onlyOld) != 1 || len(r.onlyNew) != 1 || r.compared != 1 {
		t.Fatalf("key sets wrong: %+v", r)
	}
	// Fresh and engine modes of one cell are distinct keys.
	old = bench(entry("bfs", 100, 50, "", "aa"), entry("bfs", 100, 10, "engine", "aa"))
	new = bench(entry("bfs", 100, 50, "", "aa"), entry("bfs", 100, 10, "engine", "aa"))
	if r := diff(old, new, 0.10); r.compared != 2 {
		t.Fatalf("modes collapsed: %+v", r)
	}
}
