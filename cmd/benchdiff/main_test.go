package main

import (
	"testing"

	"galois/internal/obs"
)

func entry(app string, wall int64, allocs uint64, mode, fp string) obs.BenchEntry {
	return obs.BenchEntry{App: app, Variant: "g-d", Sched: "det", Threads: 2,
		Scale: "small", WallNS: wall, AllocsPerOp: allocs, Mode: mode, Fingerprint: fp}
}

func bench(entries ...obs.BenchEntry) *obs.Bench {
	b := obs.NewBench()
	for _, e := range entries {
		b.Add(e)
	}
	return b
}

func TestDiffClean(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "", "aa"), entry("mis", 200, 60, "engine", "bb"))
	new := bench(entry("bfs", 105, 50, "", "aa"), entry("mis", 190, 55, "engine", "bb"))
	r := diff(old, new, 0.10)
	if r.compared != 2 || len(r.wallRegressions) != 0 || len(r.allocRegressions) != 0 ||
		len(r.behaviorChanges) != 0 || len(r.onlyOld) != 0 || len(r.onlyNew) != 0 {
		t.Fatalf("clean diff flagged: %+v", r)
	}
	if !r.allocsChecked {
		t.Fatal("allocs present in both files but not checked")
	}
}

func TestDiffWallRegression(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "", "aa"))
	// +10% exactly is allowed; strictly above fails.
	r := diff(old, bench(entry("bfs", 110, 50, "", "aa")), 0.10)
	if len(r.wallRegressions) != 0 {
		t.Fatalf("+10%% flagged: %+v", r.wallRegressions)
	}
	r = diff(old, bench(entry("bfs", 112, 50, "", "aa")), 0.10)
	if len(r.wallRegressions) != 1 {
		t.Fatalf("+12%% not flagged: %+v", r.wallRegressions)
	}
}

func TestDiffAllocRegressionIsStrict(t *testing.T) {
	// Small-count cells get zero allowance (50/100000 floors to 0): the
	// engine-mode steady state is a handful of allocs and +1 there is a
	// real per-construction cost.
	old := bench(entry("bfs", 100, 50, "engine", "aa"))
	r := diff(old, bench(entry("bfs", 100, 51, "engine", "aa")), 0.10)
	if len(r.allocRegressions) != 1 {
		t.Fatalf("+1 alloc not flagged: %+v", r.allocRegressions)
	}
	r = diff(old, bench(entry("bfs", 100, 49, "engine", "aa")), 0.10)
	if len(r.allocRegressions) != 0 {
		t.Fatalf("alloc improvement flagged: %+v", r.allocRegressions)
	}
}

func TestDiffAllocJitterAllowanceIsRelative(t *testing.T) {
	// Big-count cells tolerate GC measurement jitter up to 10 ppm of the
	// old value: 10_000_000/100000 = 100 allocs of allowance. +100 passes,
	// +101 fails.
	old := bench(entry("dmr", 100, 10_000_000, "", "aa"))
	r := diff(old, bench(entry("dmr", 100, 10_000_100, "", "aa")), 0.10)
	if len(r.allocRegressions) != 0 {
		t.Fatalf("within-allowance jitter flagged: %+v", r.allocRegressions)
	}
	r = diff(old, bench(entry("dmr", 100, 10_000_101, "", "aa")), 0.10)
	if len(r.allocRegressions) != 1 {
		t.Fatalf("above-allowance increase not flagged: %+v", r.allocRegressions)
	}
}

func TestDiffSkipsAllocsAgainstV1(t *testing.T) {
	// A v1-era file has no allocation columns; the comparison must not
	// treat 0 -> n as a regression, it must skip allocs entirely.
	old := bench(entry("bfs", 100, 0, "", "aa"))
	r := diff(old, bench(entry("bfs", 100, 500, "", "aa")), 0.10)
	if r.allocsChecked || len(r.allocRegressions) != 0 {
		t.Fatalf("allocs compared against v1 file: %+v", r)
	}
}

func TestDiffFingerprintChangeIsBehavior(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "", "aa"))
	r := diff(old, bench(entry("bfs", 100, 50, "", "cc")), 0.10)
	if len(r.behaviorChanges) != 1 {
		t.Fatalf("fingerprint change not flagged: %+v", r)
	}
	// Nondet entries carry no reproducibility claim.
	o := entry("bfs", 100, 50, "", "aa")
	o.Variant, o.Sched = "g-n", "nondet"
	n := o
	n.Fingerprint = "dd"
	r = diff(bench(o), bench(n), 0.10)
	if len(r.behaviorChanges) != 0 {
		t.Fatalf("nondet fingerprint change flagged: %+v", r)
	}
}

func TestDiffKeySets(t *testing.T) {
	old := bench(entry("bfs", 100, 50, "", "aa"), entry("dt", 100, 50, "", "aa"))
	new := bench(entry("bfs", 100, 50, "", "aa"), entry("pfp", 100, 50, "", "aa"))
	r := diff(old, new, 0.10)
	if len(r.onlyOld) != 1 || len(r.onlyNew) != 1 || r.compared != 1 {
		t.Fatalf("key sets wrong: %+v", r)
	}
	// Fresh and engine modes of one cell are distinct keys.
	old = bench(entry("bfs", 100, 50, "", "aa"), entry("bfs", 100, 10, "engine", "aa"))
	new = bench(entry("bfs", 100, 50, "", "aa"), entry("bfs", 100, 10, "engine", "aa"))
	if r := diff(old, new, 0.10); r.compared != 2 {
		t.Fatalf("modes collapsed: %+v", r)
	}
}

// serveEntry is a mode-"serve" measurement of the same cell entry()
// produces: end-to-end request latency under some client concurrency.
func serveEntry(app string, wall int64, clients int, fp string) obs.BenchEntry {
	return obs.BenchEntry{App: app, Variant: "g-d", Sched: "det", Threads: 2,
		Scale: "small", WallNS: wall, Mode: "serve", Clients: clients, Fingerprint: fp}
}

func TestDiffCrossModeFingerprintDrift(t *testing.T) {
	// A serve-mode entry has no exact-key counterpart in a pre-serving
	// trajectory, but its deterministic fingerprint must match the
	// in-process measurements of the same cell. Drift is a hard failure.
	old := bench(entry("bfs", 100, 50, "", "aa"), entry("bfs", 90, 10, "engine", "aa"))
	r := diff(old, bench(serveEntry("bfs", 5_000_000, 8, "ee")), 0.10)
	if r.crossChecked != 2 {
		t.Fatalf("cross-checked %d old entries, want 2", r.crossChecked)
	}
	if len(r.behaviorChanges) != 2 {
		t.Fatalf("cross-mode fingerprint drift not flagged per old mode: %+v", r)
	}
}

func TestDiffCrossModeSkipsWallAndAllocs(t *testing.T) {
	// Matching fingerprint across modes: no failure of any kind, even
	// though the serve-mode wall (request latency) is 50000x the scheduler
	// wall and the entry carries no allocation columns.
	old := bench(entry("bfs", 100, 50, "", "aa"))
	r := diff(old, bench(serveEntry("bfs", 5_000_000, 8, "aa")), 0.10)
	if len(r.behaviorChanges) != 0 || len(r.wallRegressions) != 0 || len(r.allocRegressions) != 0 {
		t.Fatalf("cross-mode comparison flagged perf columns: %+v", r)
	}
	if r.crossChecked != 1 || len(r.onlyNew) != 1 {
		t.Fatalf("cross-check accounting wrong: %+v", r)
	}

	// Nondet cells carry no cross-mode claim either.
	o := entry("bfs", 100, 50, "", "aa")
	o.Variant, o.Sched = "g-n", "nondet"
	n := serveEntry("bfs", 5_000_000, 8, "zz")
	n.Variant, n.Sched = "g-n", "nondet"
	if r := diff(bench(o), bench(n), 0.10); r.crossChecked != 0 || len(r.behaviorChanges) != 0 {
		t.Fatalf("nondet cross-mode check fired: %+v", r)
	}
}

func TestDiffServeClientLevelsAreDistinctKeys(t *testing.T) {
	old := bench(serveEntry("bfs", 100, 1, "aa"), serveEntry("bfs", 900, 8, "aa"))
	new := bench(serveEntry("bfs", 100, 1, "aa"), serveEntry("bfs", 900, 8, "aa"))
	if r := diff(old, new, 0.10); r.compared != 2 || len(r.onlyNew) != 0 {
		t.Fatalf("client levels collapsed: %+v", r)
	}
}

// threadEntry is entry with an explicit thread count — the sweep axis.
func threadEntry(app string, threads int, wall int64, fp string) obs.BenchEntry {
	e := entry(app, wall, 0, "", fp)
	e.Threads = threads
	return e
}

func TestDiffInFileSweepConsistency(t *testing.T) {
	old := bench(threadEntry("bfs", 1, 100, "aa"))
	// A consistent sweep: same fingerprint at every thread count. The
	// swept keys beyond t1 are new (no old counterpart) but must not fail.
	consistent := bench(threadEntry("bfs", 1, 100, "aa"), threadEntry("bfs", 2, 60, "aa"),
		threadEntry("bfs", 4, 40, "aa"), threadEntry("bfs", 8, 35, "aa"))
	r := diff(old, consistent, 0.10)
	if len(r.behaviorChanges) != 0 {
		t.Fatalf("consistent sweep flagged: %+v", r.behaviorChanges)
	}
	if r.sweepChecked != 1 {
		t.Fatalf("sweep cells checked = %d, want 1", r.sweepChecked)
	}

	// Fingerprint drift at one thread count of the NEW file is a behavior
	// failure even though that key has no OLD counterpart.
	drifted := bench(threadEntry("bfs", 1, 100, "aa"), threadEntry("bfs", 2, 60, "aa"),
		threadEntry("bfs", 4, 40, "XX"), threadEntry("bfs", 8, 35, "aa"))
	r = diff(old, drifted, 0.10)
	if len(r.behaviorChanges) != 1 {
		t.Fatalf("drifted sweep not flagged exactly once: %+v", r.behaviorChanges)
	}
}

func TestDiffCacheHitPermilleIsInformational(t *testing.T) {
	// Hit-rate movement on a matched key is reported but must not join
	// any fatal category: it describes the workload, not the code.
	o := serveEntry("bfs", 5_000_000, 8, "aa")
	n := serveEntry("bfs", 500_000, 8, "aa")
	n.CacheHitPermille = 900
	r := diff(bench(o), bench(n), 0.10)
	if len(r.cacheMoves) != 1 {
		t.Fatalf("hit-rate movement not reported: %+v", r)
	}
	if len(r.behaviorChanges) != 0 || len(r.wallRegressions) != 0 || len(r.allocRegressions) != 0 {
		t.Fatalf("informational cache column flagged as fatal: %+v", r)
	}
}

func TestDiffCachedEntryFingerprintStillPoliced(t *testing.T) {
	// A heavily-cached serve entry is policed exactly like a fresh one:
	// the receipt a cache hit returns must carry the fingerprint a fresh
	// execution would, so drift on a matched key is a behavior failure.
	o := serveEntry("bfs", 5_000_000, 8, "aa")
	n := serveEntry("bfs", 500_000, 8, "XX")
	n.CacheHitPermille = 900
	r := diff(bench(o), bench(n), 0.10)
	if len(r.behaviorChanges) != 1 {
		t.Fatalf("cached-entry fingerprint drift not flagged: %+v", r)
	}
	// And cross-mode: a cached serve measurement must agree with the
	// in-process trajectory of the same cell.
	old := bench(entry("bfs", 100, 50, "", "aa"))
	r = diff(old, bench(n), 0.10)
	if r.crossChecked != 1 || len(r.behaviorChanges) != 1 {
		t.Fatalf("cached entry escaped cross-mode policing: %+v", r)
	}
}

func TestDiffRepeatRatesAreDistinctKeys(t *testing.T) {
	// serve-mix entries at different repeat rates measure different
	// workloads: they must key apart (and apart from plain serve).
	mk := func(permille int, wall int64) obs.BenchEntry {
		e := serveEntry("bfs", wall, 8, "aa")
		e.Mode = "serve-mix"
		e.RepeatPermille = permille
		return e
	}
	old := bench(serveEntry("bfs", 900, 8, "aa"), mk(0, 900), mk(500, 500), mk(900, 200))
	new := bench(serveEntry("bfs", 900, 8, "aa"), mk(0, 900), mk(500, 500), mk(900, 200))
	if r := diff(old, new, 0.10); r.compared != 4 || len(r.onlyNew) != 0 {
		t.Fatalf("repeat rates collapsed: %+v", r)
	}
}

// sessionEntry is a mode-"serve-session" measurement: the fingerprint is
// the session's final chain hash and chain_len joins the key.
func sessionEntry(app string, threads, chainLen int, wall int64, fp string) obs.BenchEntry {
	return obs.BenchEntry{App: app, Variant: "g-d", Sched: "det", Threads: threads,
		Scale: "small", WallNS: wall, Mode: "serve-session", Clients: 4,
		ChainLen: chainLen, Fingerprint: fp}
}

func TestDiffServeSessionMatchedKeyDrift(t *testing.T) {
	// The acceptance gate: the final chain hash of a matched serve-session
	// key (same app/variant/threads/scale/clients/chain_len) must not move
	// between trajectory files.
	old := bench(sessionEntry("dmr", 2, 4, 1000, "chainA"))
	r := diff(old, bench(sessionEntry("dmr", 2, 4, 1000, "chainA")), 0.10)
	if r.compared != 1 || len(r.behaviorChanges) != 0 {
		t.Fatalf("identical serve-session entries flagged: %+v", r)
	}
	r = diff(old, bench(sessionEntry("dmr", 2, 4, 1000, "chainB")), 0.10)
	if len(r.behaviorChanges) != 1 {
		t.Fatalf("serve-session chain drift on matched key not flagged: %+v", r)
	}
}

func TestDiffServeSessionExcludedFromCrossMode(t *testing.T) {
	// A chain hash is a function of the whole mutation history — it will
	// never equal a one-shot result fingerprint of the same cell, and that
	// is not drift. Both directions must stay silent.
	old := bench(entry("dmr", 100, 50, "", "aa"), serveEntry("dmr", 900, 8, "aa"))
	r := diff(old, bench(sessionEntry("dmr", 2, 4, 1000, "chainA")), 0.10)
	if r.crossChecked != 0 || len(r.behaviorChanges) != 0 {
		t.Fatalf("serve-session entry joined the cross-mode pool: %+v", r)
	}
	// Reverse direction: an old serve-session entry must not police a new
	// one-shot entry of the same cell.
	old = bench(sessionEntry("dmr", 2, 4, 1000, "chainA"))
	r = diff(old, bench(entry("dmr", 100, 50, "", "aa")), 0.10)
	if r.crossChecked != 0 || len(r.behaviorChanges) != 0 {
		t.Fatalf("old serve-session entry policed a one-shot entry: %+v", r)
	}
}

func TestDiffServeSessionSweepGroup(t *testing.T) {
	// In-file: serve-session entries of one (app, variant, scale,
	// chain_len) cell must agree on the final chain across thread counts —
	// that is the chain's portability property — while sitting in the same
	// file as one-shot entries of the same app without colliding with them.
	oneShot := threadEntry("dmr", 1, 100, "aa")
	consistent := bench(oneShot,
		sessionEntry("dmr", 1, 4, 1200, "chainA"),
		sessionEntry("dmr", 4, 4, 600, "chainA"))
	r := diff(bench(), consistent, 0.10)
	if len(r.behaviorChanges) != 0 {
		t.Fatalf("consistent serve-session sweep flagged: %+v", r.behaviorChanges)
	}
	if r.sweepChecked != 1 {
		t.Fatalf("sweep cells checked = %d, want 1 (the session pair)", r.sweepChecked)
	}

	drifted := bench(oneShot,
		sessionEntry("dmr", 1, 4, 1200, "chainA"),
		sessionEntry("dmr", 4, 4, 600, "chainX"))
	r = diff(bench(), drifted, 0.10)
	if len(r.behaviorChanges) != 1 {
		t.Fatalf("cross-thread serve-session chain drift not flagged exactly once: %+v", r.behaviorChanges)
	}

	// Different chain lengths are different measurements, not drift.
	lengths := bench(
		sessionEntry("dmr", 1, 4, 1200, "chainA"),
		sessionEntry("dmr", 1, 9, 2400, "chainLonger"))
	if r := diff(bench(), lengths, 0.10); len(r.behaviorChanges) != 0 {
		t.Fatalf("chain-length difference flagged as drift: %+v", r.behaviorChanges)
	}
}

func TestDiffSweepIgnoresNondet(t *testing.T) {
	// Nondet fingerprints legitimately differ across thread counts.
	a := threadEntry("bfs", 1, 100, "aa")
	b := threadEntry("bfs", 4, 50, "zz")
	a.Variant, a.Sched = "g-n", "nondet"
	b.Variant, b.Sched = "g-n", "nondet"
	r := diff(bench(), bench(a, b), 0.10)
	if len(r.behaviorChanges) != 0 || r.sweepChecked != 0 {
		t.Fatalf("nondet sweep checked: %+v", r)
	}
}

// clusterEntry is one Mode "serve-cluster" measurement: the cell driven
// through a galoisrouter over n backends under the named policy.
func clusterEntry(app string, backends int, policy string, wall int64, fp string) obs.BenchEntry {
	return obs.BenchEntry{App: app, Variant: "g-d", Sched: "det", Threads: 2,
		Scale: "small", WallNS: wall, Mode: "serve-cluster", Clients: 8,
		Backends: backends, Policy: policy, Fingerprint: fp}
}

func TestDiffServeClusterJoinsCrossModePool(t *testing.T) {
	// Routing is behavior-free, so serve-cluster fingerprints are policed
	// against serve and in-process entries of the same cell — unlike
	// serve-session, which is excluded. Matching fingerprints: clean.
	old := bench(entry("bfs", 100, 50, "", "aa"), serveEntry("bfs", 5_000_000, 8, "aa"))
	r := diff(old, bench(clusterEntry("bfs", 2, "round-robin", 6_000_000, "aa")), 0.10)
	if r.crossChecked != 2 || len(r.behaviorChanges) != 0 {
		t.Fatalf("serve-cluster not cross-checked cleanly: %+v", r)
	}

	// A cluster fingerprint drifting from the in-process trajectory is the
	// routed tier breaking determinism — fatal per old entry.
	r = diff(old, bench(clusterEntry("bfs", 2, "round-robin", 6_000_000, "zz")), 0.10)
	if r.crossChecked != 2 || len(r.behaviorChanges) != 2 {
		t.Fatalf("serve-cluster fingerprint drift not flagged: %+v", r)
	}
}

func TestDiffClusterBackendsAndPolicyAreDistinctKeys(t *testing.T) {
	// The same cell at different cluster sizes or routing policies is a
	// different latency measurement: no wall comparison across them, and
	// none of the combinations collapse into one key.
	old := bench(
		clusterEntry("bfs", 2, "round-robin", 100, "aa"),
		clusterEntry("bfs", 2, "least-loaded", 900, "aa"),
		clusterEntry("bfs", 4, "round-robin", 150, "aa"))
	new := bench(
		clusterEntry("bfs", 2, "round-robin", 100, "aa"),
		clusterEntry("bfs", 2, "least-loaded", 900, "aa"),
		clusterEntry("bfs", 4, "round-robin", 150, "aa"))
	if r := diff(old, new, 0.10); r.compared != 3 || len(r.onlyNew) != 0 {
		t.Fatalf("cluster size/policy collapsed into one key: %+v", r)
	}
}

func TestDiffClusterSweepGroup(t *testing.T) {
	// In-file: every policy and backend count of one cell must agree with
	// each other and with in-process entries — the determinism-under-
	// cluster matrix as a trajectory-file invariant.
	agree := bench(
		threadEntry("bfs", 2, 100, "aa"),
		clusterEntry("bfs", 1, "round-robin", 500, "aa"),
		clusterEntry("bfs", 4, "consistent-hash", 400, "aa"))
	if r := diff(bench(), agree, 0.10); len(r.behaviorChanges) != 0 || r.sweepChecked != 1 {
		t.Fatalf("agreeing cluster sweep flagged: %+v", r)
	}
	drift := bench(
		threadEntry("bfs", 2, 100, "aa"),
		clusterEntry("bfs", 4, "consistent-hash", 400, "zz"))
	if r := diff(bench(), drift, 0.10); len(r.behaviorChanges) != 1 {
		t.Fatalf("cluster sweep drift not flagged: %+v", r)
	}
}

func TestDiffScalingEfficiencyGate(t *testing.T) {
	withEff := func(eff float64) obs.BenchEntry {
		e := entry("bfs", 100, 0, "", "aa")
		e.ScalingEfficiency = eff
		return e
	}
	// Exactly -10% is allowed; beyond fails hard.
	old := bench(withEff(0.80))
	r := diff(old, bench(withEff(0.72)), 0.10)
	if len(r.scalingRegressions) != 0 {
		t.Fatalf("-10%% flagged: %+v", r.scalingRegressions)
	}
	r = diff(old, bench(withEff(0.71)), 0.10)
	if len(r.scalingRegressions) != 1 {
		t.Fatalf("-11%% not flagged: %+v", r.scalingRegressions)
	}
	// Either side lacking the column (0 = no t1 sibling) skips the gate.
	r = diff(old, bench(withEff(0)), 0.10)
	if len(r.scalingRegressions) != 0 {
		t.Fatalf("absent NEW column flagged: %+v", r.scalingRegressions)
	}
	r = diff(bench(withEff(0)), bench(withEff(0.5)), 0.10)
	if len(r.scalingRegressions) != 0 {
		t.Fatalf("absent OLD column flagged: %+v", r.scalingRegressions)
	}
	// Improvement is fine.
	r = diff(old, bench(withEff(0.95)), 0.10)
	if len(r.scalingRegressions) != 0 {
		t.Fatalf("improvement flagged: %+v", r.scalingRegressions)
	}
}
