// Command benchdiff compares two benchmark-trajectory files
// (BENCH_<n>.json, internal/obs.Bench) and fails on regressions.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -wall-threshold 0.10 -wall-report-only OLD.json NEW.json
//
// Entries are matched by (app, variant, threads, scale, mode). Two kinds
// of movement are policed:
//
//   - Wall time: NEW slower than OLD by more than -wall-threshold
//     (default 10%) is a regression. Wall clocks are noisy — especially in
//     CI — so -wall-report-only demotes these to report-only.
//   - Allocations: an increase in allocs_per_op beyond 10 ppm of the old
//     value (old/100000, integer floor — exactly zero allowance for
//     small-count cells) is a regression. Allocation counts are a
//     deterministic floor per build plus occasional GC bookkeeping
//     allocations caught inside the measurement window, so the gate is
//     exact where counts are small and sub-ppm-tolerant where runs
//     allocate millions of objects. Skipped entirely when the OLD file
//     predates allocation columns (schema v1).
//   - Scaling efficiency: NEW's scaling_efficiency (wall_t1 / (threads ×
//     wall_tN), computed by the emitter from same-file t1 siblings) more
//     than 10% below OLD's on a matched key is a regression, always fatal.
//     The ratio divides out machine speed — both walls come from one
//     back-to-back measurement — so it stays gateable where raw wall is
//     noise. Skipped where either side lacks the column.
//
// Fingerprint changes between files with matching keys are also fatal:
// the trajectory is supposed to isolate performance movement from
// behavior movement, and a fingerprint change is the latter.
//
// cache_hit_permille movement is printed (CACHE lines) but never gates:
// hit rate describes the workload mix, not the code under test. Cached
// responses carry the same fingerprint a fresh run would, so cached
// entries participate in every fingerprint check above unchanged.
//
// Entries with no exact-key counterpart (a cell measured in a new mode,
// e.g. end-to-end through galoisd) are still fingerprint-policed: a
// deterministic cell's fingerprint is mode-independent, so it is compared
// against every old entry sharing (app, variant, threads, scale) whatever
// the mode — hard-failing on drift — while wall time and allocations are
// skipped across modes, where they measure different things.
//
// Mode "serve-cluster" entries (galoisload -targets/-router: the cell
// driven through a galoisrouter over N backends) participate in cross-mode
// policing like any serve entry: routing is behavior-free, so a cluster
// fingerprint must equal the single-node and in-process fingerprints of the
// same cell — drift means the routed tier broke determinism. Backend count
// and policy are part of the key, so each (cell, backends, policy) point is
// its own latency measurement.
//
// Mode "serve-session" entries are the exception to cross-mode policing:
// their fingerprint column carries a receipt-chain hash (a function of the
// whole mutation history), not a single run's result fingerprint, so they
// are never compared against one-shot entries of the same cell. They form
// their own sweep groups instead — all serve-session entries of one
// (app, variant, scale, chain_len) cell must agree on the final chain
// hash whatever the thread count or client level — and drift on an exactly
// matched key is fatal like any other entry (chain_len is part of the key).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"galois/internal/obs"
)

// change is one matched-key comparison that the policy flagged.
type change struct {
	key  string
	text string
}

// report is the outcome of one diff: what to print, and which findings are
// fatal under the active policy.
type report struct {
	wallRegressions  []change
	allocRegressions []change
	behaviorChanges  []change
	// scalingRegressions are matched-key drops in scaling_efficiency beyond
	// 10%. Always fatal: efficiency is a wall-time *ratio* of sibling
	// entries measured back-to-back on one machine, so the machine-speed
	// noise that makes raw wall gating unreliable in CI largely divides
	// out — a >10% drop means the parallel path got structurally slower
	// relative to its own serial baseline.
	scalingRegressions []change
	// cacheMoves tracks cache_hit_permille movement on matched keys.
	// Informational only, never fatal: hit rate is a property of the
	// workload mix the measurement ran, not of the code under test — what
	// must hold is that cached entries carry unchanged fingerprints, and
	// that is policed by the behavior checks like every other entry.
	cacheMoves       []change
	onlyOld, onlyNew []string
	compared         int
	crossChecked     int
	sweepChecked     int
	allocsChecked    bool
}

// sweepCheck enforces thread-independence inside one trajectory file: all
// deterministic entries of one (app, variant, scale) cell — across thread
// counts, modes and client levels — must report the same fingerprint. This
// is the portability property as a file invariant; it is what makes a
// committed thread sweep meaningful (a t8 entry whose fingerprint drifted
// from the t1 entry is a behavior bug, not a scaling data point). Returns
// the violations and the number of multi-entry cells checked.
func sweepCheck(b *obs.Bench) ([]change, int) {
	groups := make(map[string][]obs.BenchEntry)
	var order []string
	for _, e := range b.Entries {
		if e.Sched == "nondet" || e.Fingerprint == "" {
			continue
		}
		k := fmt.Sprintf("%s/%s scale=%s", e.App, e.Variant, e.Scale)
		if e.Mode == "serve-session" {
			// Chain hashes only compare against chain hashes of the same
			// length — never against one-shot result fingerprints.
			k = fmt.Sprintf("%s session l%d", k, e.ChainLen)
		}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	var out []change
	checked := 0
	for _, k := range order {
		es := groups[k]
		if len(es) < 2 {
			continue
		}
		checked++
		ref := es[0]
		for _, e := range es[1:] {
			if e.Fingerprint != ref.Fingerprint {
				out = append(out, change{k,
					fmt.Sprintf("fingerprint %s (t%d mode %q) != %s (t%d mode %q): det fingerprints are thread- and mode-independent",
						ref.Fingerprint, ref.Threads, ref.Mode, e.Fingerprint, e.Threads, e.Mode)})
			}
		}
	}
	return out, checked
}

// diff compares two trajectories under the given wall-regression
// threshold (e.g. 0.10 = +10% is the first failing slowdown).
func diff(old, new *obs.Bench, wallThreshold float64) report {
	var r report
	oldByKey := make(map[string]obs.BenchEntry, len(old.Entries))
	oldByCell := make(map[string][]obs.BenchEntry, len(old.Entries))
	for _, e := range old.Entries {
		oldByKey[e.Key()] = e
		// serve-session fingerprints are chain hashes; they never join the
		// cross-mode pool (either side).
		if e.Mode != "serve-session" {
			oldByCell[e.ModelessKey()] = append(oldByCell[e.ModelessKey()], e)
		}
	}
	r.allocsChecked = old.HasAllocs() && new.HasAllocs()
	seen := make(map[string]bool, len(new.Entries))
	for _, ne := range new.Entries {
		key := ne.Key()
		seen[key] = true
		oe, ok := oldByKey[key]
		if !ok {
			r.onlyNew = append(r.onlyNew, key)
			// Cross-mode fingerprint policing: no exact counterpart, but a
			// deterministic fingerprint must agree with every old
			// measurement of the same (app, variant, threads, scale) cell
			// regardless of mode. Wall and allocs are not comparable across
			// modes (request latency vs scheduler wall time), so only the
			// behavior contract is enforced here.
			if ne.Sched != "nondet" && ne.Fingerprint != "" && ne.Mode != "serve-session" {
				for _, ce := range oldByCell[ne.ModelessKey()] {
					if ce.Sched == "nondet" || ce.Fingerprint == "" {
						continue
					}
					r.crossChecked++
					if ce.Fingerprint != ne.Fingerprint {
						r.behaviorChanges = append(r.behaviorChanges, change{key,
							fmt.Sprintf("fingerprint %s (mode %q) -> %s (mode %q): det fingerprints are mode-independent",
								ce.Fingerprint, ce.Mode, ne.Fingerprint, ne.Mode)})
					}
				}
			}
			continue
		}
		r.compared++
		if oe.WallNS > 0 && ne.WallNS > 0 {
			ratio := float64(ne.WallNS) / float64(oe.WallNS)
			if ratio > 1+wallThreshold {
				r.wallRegressions = append(r.wallRegressions, change{key,
					fmt.Sprintf("wall %.2fms -> %.2fms (%+.1f%%)",
						float64(oe.WallNS)/1e6, float64(ne.WallNS)/1e6, (ratio-1)*100)})
			}
		}
		// The allocs gate allows an increase of old/100000 (10 ppm): alloc
		// counts are a deterministic floor plus occasional GC bookkeeping
		// allocations caught inside the measurement window, and on cells
		// allocating millions of objects per run that jitter survives even
		// min-of-k measurement. The allowance is relative, so small-count
		// cells (an engine-mode steady state is ~3 allocs/run) stay exactly
		// strict — a real +1-per-construction cost still fails there, while
		// per-task or per-round regressions on big cells exceed 10 ppm by
		// orders of magnitude and still fail too.
		if r.allocsChecked && oe.AllocsPerOp > 0 &&
			ne.AllocsPerOp > oe.AllocsPerOp+oe.AllocsPerOp/100000 {
			r.allocRegressions = append(r.allocRegressions, change{key,
				fmt.Sprintf("allocs/op %d -> %d (+%d)",
					oe.AllocsPerOp, ne.AllocsPerOp, ne.AllocsPerOp-oe.AllocsPerOp)})
		}
		// Scaling-efficiency gate: compared only where both files computed
		// the column (threads > 1 with a t1 sibling in the same document).
		// A drop beyond 10% of the old value fails hard — see the report
		// field for why this ratio is gateable where raw wall is not.
		if oe.ScalingEfficiency > 0 && ne.ScalingEfficiency > 0 {
			drop := 1 - ne.ScalingEfficiency/oe.ScalingEfficiency
			// The epsilon keeps an exactly-10% drop on the allowed side of
			// the boundary despite float division.
			if drop > 0.10+1e-9 {
				r.scalingRegressions = append(r.scalingRegressions, change{key,
					fmt.Sprintf("scaling_efficiency %.3f -> %.3f (%.1f%% drop)",
						oe.ScalingEfficiency, ne.ScalingEfficiency, drop*100)})
			}
		}
		if oe.CacheHitPermille != ne.CacheHitPermille {
			r.cacheMoves = append(r.cacheMoves, change{key,
				fmt.Sprintf("cache_hit_permille %d -> %d (informational)",
					oe.CacheHitPermille, ne.CacheHitPermille)})
		}
		// Deterministic-scheduler entries must reproduce the output and
		// schedule shape exactly; seq entries likewise. Nondet entries make
		// no such claim.
		if oe.Sched != "nondet" && oe.Fingerprint != "" && ne.Fingerprint != "" &&
			oe.Fingerprint != ne.Fingerprint {
			r.behaviorChanges = append(r.behaviorChanges, change{key,
				fmt.Sprintf("fingerprint %s -> %s", oe.Fingerprint, ne.Fingerprint)})
		}
	}
	//detlint:ordered removed-key collection is sorted immediately below
	for key := range oldByKey {
		if !seen[key] {
			r.onlyOld = append(r.onlyOld, key)
		}
	}
	sort.Strings(r.onlyOld)
	sort.Strings(r.onlyNew)
	// In-file consistency of the NEW trajectory: a thread sweep (or any
	// multi-mode cell) whose det fingerprints disagree is a behavior bug
	// regardless of what OLD contains.
	sweep, checked := sweepCheck(new)
	r.behaviorChanges = append(r.behaviorChanges, sweep...)
	r.sweepChecked = checked
	return r
}

func printChanges(label string, cs []change) {
	for _, c := range cs {
		fmt.Printf("%s %s: %s\n", label, c.key, c.text)
	}
}

func main() {
	wallThreshold := flag.Float64("wall-threshold", 0.10,
		"fractional wall-time slowdown that counts as a regression")
	wallReportOnly := flag.Bool("wall-report-only", false,
		"print wall regressions but do not fail on them (CI wall clocks are noisy)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		flag.Usage()
		os.Exit(2)
	}
	old, err := obs.ReadBenchFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	new, err := obs.ReadBenchFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	r := diff(old, new, *wallThreshold)
	fmt.Printf("benchdiff: %s -> %s: %d entries compared, %d cross-mode fingerprint checks, %d in-file sweep cells checked, %d only-old, %d only-new\n",
		flag.Arg(0), flag.Arg(1), r.compared, r.crossChecked, r.sweepChecked, len(r.onlyOld), len(r.onlyNew))
	for _, k := range r.onlyOld {
		fmt.Printf("removed %s\n", k)
	}
	for _, k := range r.onlyNew {
		fmt.Printf("added %s\n", k)
	}
	printChanges("WALL", r.wallRegressions)
	printChanges("SCALING", r.scalingRegressions)
	printChanges("ALLOC", r.allocRegressions)
	printChanges("CACHE", r.cacheMoves)
	printChanges("BEHAVIOR", r.behaviorChanges)
	if !r.allocsChecked {
		fmt.Println("note: allocation columns absent in one file; allocs not compared")
	}

	fail := len(r.behaviorChanges) > 0 || len(r.allocRegressions) > 0 ||
		len(r.scalingRegressions) > 0
	if !*wallReportOnly && len(r.wallRegressions) > 0 {
		fail = true
	}
	if fail {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
