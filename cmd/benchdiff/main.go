// Command benchdiff compares two benchmark-trajectory files
// (BENCH_<n>.json, internal/obs.Bench) and fails on regressions.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -wall-threshold 0.10 -wall-report-only OLD.json NEW.json
//
// Entries are matched by (app, variant, threads, scale, mode). Two kinds
// of movement are policed:
//
//   - Wall time: NEW slower than OLD by more than -wall-threshold
//     (default 10%) is a regression. Wall clocks are noisy — especially in
//     CI — so -wall-report-only demotes these to report-only.
//   - Allocations: any increase in allocs_per_op is a regression, with no
//     tolerance. Allocation counts are deterministic per build, so an
//     increase is a real code change, not noise. Skipped entirely when the
//     OLD file predates allocation columns (schema v1).
//
// Fingerprint changes between files with matching keys are also fatal:
// the trajectory is supposed to isolate performance movement from
// behavior movement, and a fingerprint change is the latter.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"galois/internal/obs"
)

// change is one matched-key comparison that the policy flagged.
type change struct {
	key  string
	text string
}

// report is the outcome of one diff: what to print, and which findings are
// fatal under the active policy.
type report struct {
	wallRegressions  []change
	allocRegressions []change
	behaviorChanges  []change
	onlyOld, onlyNew []string
	compared         int
	allocsChecked    bool
}

// diff compares two trajectories under the given wall-regression
// threshold (e.g. 0.10 = +10% is the first failing slowdown).
func diff(old, new *obs.Bench, wallThreshold float64) report {
	var r report
	oldByKey := make(map[string]obs.BenchEntry, len(old.Entries))
	for _, e := range old.Entries {
		oldByKey[e.Key()] = e
	}
	r.allocsChecked = old.HasAllocs() && new.HasAllocs()
	seen := make(map[string]bool, len(new.Entries))
	for _, ne := range new.Entries {
		key := ne.Key()
		seen[key] = true
		oe, ok := oldByKey[key]
		if !ok {
			r.onlyNew = append(r.onlyNew, key)
			continue
		}
		r.compared++
		if oe.WallNS > 0 && ne.WallNS > 0 {
			ratio := float64(ne.WallNS) / float64(oe.WallNS)
			if ratio > 1+wallThreshold {
				r.wallRegressions = append(r.wallRegressions, change{key,
					fmt.Sprintf("wall %.2fms -> %.2fms (%+.1f%%)",
						float64(oe.WallNS)/1e6, float64(ne.WallNS)/1e6, (ratio-1)*100)})
			}
		}
		if r.allocsChecked && oe.AllocsPerOp > 0 && ne.AllocsPerOp > oe.AllocsPerOp {
			r.allocRegressions = append(r.allocRegressions, change{key,
				fmt.Sprintf("allocs/op %d -> %d (+%d)",
					oe.AllocsPerOp, ne.AllocsPerOp, ne.AllocsPerOp-oe.AllocsPerOp)})
		}
		// Deterministic-scheduler entries must reproduce the output and
		// schedule shape exactly; seq entries likewise. Nondet entries make
		// no such claim.
		if oe.Sched != "nondet" && oe.Fingerprint != "" && ne.Fingerprint != "" &&
			oe.Fingerprint != ne.Fingerprint {
			r.behaviorChanges = append(r.behaviorChanges, change{key,
				fmt.Sprintf("fingerprint %s -> %s", oe.Fingerprint, ne.Fingerprint)})
		}
	}
	//detlint:ordered removed-key collection is sorted immediately below
	for key := range oldByKey {
		if !seen[key] {
			r.onlyOld = append(r.onlyOld, key)
		}
	}
	sort.Strings(r.onlyOld)
	sort.Strings(r.onlyNew)
	return r
}

func printChanges(label string, cs []change) {
	for _, c := range cs {
		fmt.Printf("%s %s: %s\n", label, c.key, c.text)
	}
}

func main() {
	wallThreshold := flag.Float64("wall-threshold", 0.10,
		"fractional wall-time slowdown that counts as a regression")
	wallReportOnly := flag.Bool("wall-report-only", false,
		"print wall regressions but do not fail on them (CI wall clocks are noisy)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		flag.Usage()
		os.Exit(2)
	}
	old, err := obs.ReadBenchFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	new, err := obs.ReadBenchFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	r := diff(old, new, *wallThreshold)
	fmt.Printf("benchdiff: %s -> %s: %d entries compared, %d only-old, %d only-new\n",
		flag.Arg(0), flag.Arg(1), r.compared, len(r.onlyOld), len(r.onlyNew))
	for _, k := range r.onlyOld {
		fmt.Printf("removed %s\n", k)
	}
	for _, k := range r.onlyNew {
		fmt.Printf("added %s\n", k)
	}
	printChanges("WALL", r.wallRegressions)
	printChanges("ALLOC", r.allocRegressions)
	printChanges("BEHAVIOR", r.behaviorChanges)
	if !r.allocsChecked {
		fmt.Println("note: allocation columns absent in one file; allocs not compared")
	}

	fail := len(r.behaviorChanges) > 0 || len(r.allocRegressions) > 0
	if !*wallReportOnly && len(r.wallRegressions) > 0 {
		fail = true
	}
	if fail {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
