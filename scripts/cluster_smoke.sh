#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the galoisrouter cluster tier.
#
# Starts TWO galoisd backends and one galoisrouter on ephemeral ports,
# drives a mixed det/nondet workload through the router with galoisload
# (whose per-seed fingerprint policing becomes a cross-backend determinism
# check, and whose -verify replays receipts through the router's
# round-robin verify path), then walks the headline portability demo with
# curl: submit one job, note which backend produced it (X-Galois-Backend),
# verify the receipt twice — round-robin guarantees the two verifies land
# on different backends, so at least one is a cross-node replay — and
# require match:true from both. A session created through the router must
# stick to its creating backend for every batch. Finishes with a SIGTERM
# drain of the router, then the backends. Fails on any request error,
# fingerprint mismatch, failed verification, broken stickiness, or a
# verify pair that never left one backend.
#
# Usage: scripts/cluster_smoke.sh [report-path]
set -eu

report=${1:-cluster-load.json}
tmp=$(mktemp -d)
trap 'status=$?
  [ -n "${router_pid:-}" ] && kill "$router_pid" 2>/dev/null
  [ -n "${b1_pid:-}" ] && kill "$b1_pid" 2>/dev/null
  [ -n "${b2_pid:-}" ] && kill "$b2_pid" 2>/dev/null
  rm -rf "$tmp"; exit $status' EXIT INT TERM

echo "cluster-smoke: building galoisd, galoisrouter and galoisload"
go build -o "$tmp/galoisd" ./cmd/galoisd
go build -o "$tmp/galoisrouter" ./cmd/galoisrouter
go build -o "$tmp/galoisload" ./cmd/galoisload

wait_addr() { # file pid name
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "cluster-smoke: $3 did not bind within 10s" >&2
            exit 1
        fi
        kill -0 "$2" 2>/dev/null || { echo "cluster-smoke: $3 exited early" >&2; exit 1; }
        sleep 0.1
    done
}

"$tmp/galoisd" -addr 127.0.0.1:0 -addr-file "$tmp/b1" &
b1_pid=$!
"$tmp/galoisd" -addr 127.0.0.1:0 -addr-file "$tmp/b2" &
b2_pid=$!
wait_addr "$tmp/b1" "$b1_pid" "backend 1"
wait_addr "$tmp/b2" "$b2_pid" "backend 2"
b1=$(cat "$tmp/b1")
b2=$(cat "$tmp/b2")
echo "cluster-smoke: backends on $b1 and $b2"

"$tmp/galoisrouter" -addr 127.0.0.1:0 -addr-file "$tmp/r" \
    -backends "$b1,$b2" -policy least-loaded -probe-interval 500ms &
router_pid=$!
wait_addr "$tmp/r" "$router_pid" "galoisrouter"
raddr=$(cat "$tmp/r")
echo "cluster-smoke: router on $raddr (least-loaded over 2 backends)"

hz=$(curl -sf "http://$raddr/healthz")
case "$hz" in
*'"ok":true'*'"healthy":2'*) echo "cluster-smoke: router healthz ok, 2 healthy backends" ;;
*) echo "cluster-smoke: router healthz unexpected: $hz" >&2; exit 1 ;;
esac

# Mixed workload through the router: det cells must agree on a single
# fingerprint per seed even though requests spread across both backends,
# and -verify replays receipts via the router's round-robin verify path —
# cross-node by construction.
"$tmp/galoisload" -router "$raddr" \
    -variants g-n,g-d,g-dnc -clients 1,4 -n 4 \
    -scale small -threads 2 -verify 4 -report "$report"

# Headline portability demo, by hand: one job, two verifies.
echo "cluster-smoke: cross-node verify"
spec='{"kind":"sssp","variant":"g-d","scale":"small","seed":4242}'
curl -sf -D "$tmp/h0" -o "$tmp/job" -X POST "http://$raddr/jobs" -d "$spec"
producer=$(tr -d '\r' < "$tmp/h0" | sed -n 's/^X-Galois-Backend: //p')
fp=$(sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p' "$tmp/job")
sp=$(sed -n 's/.*"spec":\({[^}]*}\).*/\1/p' "$tmp/job")
if [ -z "$producer" ] || [ -z "$fp" ] || [ -z "$sp" ]; then
    echo "cluster-smoke: job response malformed: $(cat "$tmp/job")" >&2
    exit 1
fi
receipt="{\"spec\":$sp,\"fingerprint\":\"$fp\",\"deterministic\":true}"
verifiers=""
for i in 1 2; do
    curl -sf -D "$tmp/hv" -o "$tmp/vr" -X POST "http://$raddr/verify" -d "$receipt"
    v=$(tr -d '\r' < "$tmp/hv" | sed -n 's/^X-Galois-Backend: //p')
    case "$(cat "$tmp/vr")" in
    *'"match":true'*) ;;
    *) echo "cluster-smoke: verify $i on $v failed: $(cat "$tmp/vr")" >&2; exit 1 ;;
    esac
    verifiers="$verifiers $v"
done
case "$verifiers" in
*"$producer"*) ;; # fine — one of the two may be the producer
esac
v1=${verifiers# }
v2=${v1#* }
v1=${v1%% *}
if [ "$v1" = "$v2" ]; then
    echo "cluster-smoke: both verifies landed on $v1 — round-robin broken" >&2
    exit 1
fi
echo "cluster-smoke: produced on $producer, verified on $v1 and $v2 (match both)"

# Session stickiness through the router: every batch must be served by the
# backend that created the session.
echo "cluster-smoke: sticky session"
curl -sf -D "$tmp/hs" -o "$tmp/sess" -X POST "http://$raddr/sessions" \
    -d '{"kind":"sssp","scale":"small","seed":7}'
owner=$(tr -d '\r' < "$tmp/hs" | sed -n 's/^X-Galois-Backend: //p')
sid=$(sed -n 's/.*"id":"\(s[0-9a-f-]*\)".*/\1/p' "$tmp/sess")
if [ -z "$owner" ] || [ -z "$sid" ]; then
    echo "cluster-smoke: session create malformed: $(cat "$tmp/sess")" >&2
    exit 1
fi
for seed in 1 2 3; do
    curl -sf -D "$tmp/hb" -o "$tmp/br" -X POST "http://$raddr/sessions/$sid/batches" \
        -d "{\"op\":\"reweight\",\"edges\":16,\"seed\":$seed}"
    served=$(tr -d '\r' < "$tmp/hb" | sed -n 's/^X-Galois-Backend: //p')
    if [ "$served" != "$owner" ]; then
        echo "cluster-smoke: batch $seed served by $served, owner is $owner — stickiness broken" >&2
        exit 1
    fi
done
vr=$(curl -sf -X POST "http://$raddr/sessions/$sid/verify")
case "$vr" in
*'"match":true'*) echo "cluster-smoke: session stuck to $owner, chain verified" ;;
*) echo "cluster-smoke: session chain verification failed: $vr" >&2; exit 1 ;;
esac

echo "cluster-smoke: draining router, then backends"
kill -TERM "$router_pid"
wait "$router_pid"
router_pid=
kill -TERM "$b1_pid" "$b2_pid"
wait "$b1_pid" "$b2_pid"
b1_pid=
b2_pid=
echo "cluster-smoke: ok (report in $report)"
