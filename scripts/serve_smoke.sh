#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the galoisd serving layer.
#
# Starts galoisd on an ephemeral port, drives a mixed workload through
# galoisload (deterministic and non-deterministic variants, two client
# concurrency levels), re-verifies receipts through POST /verify, and
# shuts the server down gracefully. Fails on any request error, any
# deterministic cell with more than one fingerprint, or any receipt that
# does not re-verify. Writes the load report to serve-load.json (CI
# uploads it as an artifact).
#
# Usage: scripts/serve_smoke.sh [report-path]
set -eu

report=${1:-serve-load.json}
tmp=$(mktemp -d)
trap 'status=$?; [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null; rm -rf "$tmp"; exit $status' EXIT INT TERM

echo "serve-smoke: building galoisd and galoisload"
go build -o "$tmp/galoisd" ./cmd/galoisd
go build -o "$tmp/galoisload" ./cmd/galoisload

"$tmp/galoisd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" &
server_pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: galoisd did not bind within 10s" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || { echo "serve-smoke: galoisd exited early" >&2; exit 1; }
    sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "serve-smoke: galoisd on $addr"

# Mixed workload: every registered kind, det and nondet variants, serial
# and concurrent clients; three receipts replayed through /verify.
"$tmp/galoisload" -addr "$addr" \
    -variants g-n,g-d,g-dnc -clients 1,4 -n 6 \
    -scale small -threads 2 -verify 3 -report "$report"

echo "serve-smoke: draining galoisd"
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=
echo "serve-smoke: ok (report in $report)"
