#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the galoisd serving layer.
#
# Starts galoisd on an ephemeral port, drives a mixed workload through
# galoisload (deterministic and non-deterministic variants, two client
# concurrency levels), re-verifies receipts through POST /verify, then
# walks the stateful-session API with curl — create a dmr session, chain
# three mutation batches, audit the whole chain from the last receipt,
# watch idle eviction seal a tombstone, and confirm the sealed chain still
# verifies while new batches get 410 — and shuts the server down
# gracefully. Fails on any request error, any deterministic cell with more
# than one fingerprint, any receipt that does not re-verify, or any chain
# that does not replay. Writes the load report to serve-load.json (CI
# uploads it as an artifact).
#
# Usage: scripts/serve_smoke.sh [report-path]
set -eu

report=${1:-serve-load.json}
tmp=$(mktemp -d)
trap 'status=$?; [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null; rm -rf "$tmp"; exit $status' EXIT INT TERM

echo "serve-smoke: building galoisd and galoisload"
go build -o "$tmp/galoisd" ./cmd/galoisd
go build -o "$tmp/galoisload" ./cmd/galoisload

# -session-idle is short so the eviction/tombstone path is observable in
# the session phase below; the load phases never idle that long mid-chain.
"$tmp/galoisd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -session-idle 2s &
server_pid=$!

i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: galoisd did not bind within 10s" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || { echo "serve-smoke: galoisd exited early" >&2; exit 1; }
    sleep 0.1
done
addr=$(cat "$tmp/addr")
echo "serve-smoke: galoisd on $addr"

# Health probe target: the cheap counters-only snapshot a routing tier
# polls. A fresh server is ok, not draining, and reports its queue bound
# and worker count.
hz=$(curl -sf "http://$addr/healthz")
case "$hz" in
*'"ok":true'*) ;;
*) echo "serve-smoke: healthz not ok: $hz" >&2; exit 1 ;;
esac
case "$hz" in
*'"queue_cap":'*'"in_flight":'*) echo "serve-smoke: healthz ok" ;;
*) echo "serve-smoke: healthz missing load fields: $hz" >&2; exit 1 ;;
esac

# Mixed workload: every registered kind, det and nondet variants, serial
# and concurrent clients; three receipts replayed through /verify; plus a
# stateful-session phase (two concurrent session clients, three chained
# batches each, full chain audit through POST /sessions/{id}/verify).
"$tmp/galoisload" -addr "$addr" \
    -variants g-n,g-d,g-dnc -clients 1,4 -n 6 \
    -sessions 2 -batches 3 \
    -scale small -threads 2 -verify 3 -report "$report"

# Warm-cache phase: the same deterministic spec submitted twice must hit
# the result cache on the resubmission — identical spec and fingerprint,
# cached:true on the second response only, hit counter advanced. The
# seed is outside galoisload's range so the first submission is cold.
echo "serve-smoke: warm-cache check"
spec='{"kind":"bfs","variant":"g-d","scale":"small","seed":7070,"threads":2}'
r1=$(curl -sf -X POST "http://$addr/jobs" -d "$spec")
hits_before=$(curl -sf "http://$addr/metrics" | sed -n 's/^serve\.rescache\.hits //p')
r2=$(curl -sf -X POST "http://$addr/jobs" -d "$spec")
hits_after=$(curl -sf "http://$addr/metrics" | sed -n 's/^serve\.rescache\.hits //p')
fp1=$(printf '%s' "$r1" | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
fp2=$(printf '%s' "$r2" | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
sp1=$(printf '%s' "$r1" | sed -n 's/.*"spec":\({[^}]*}\).*/\1/p')
sp2=$(printf '%s' "$r2" | sed -n 's/.*"spec":\({[^}]*}\).*/\1/p')
case "$r1" in
*'"cached":true'*) echo "serve-smoke: first submission unexpectedly cached" >&2; exit 1 ;;
esac
case "$r2" in
*'"cached":true'*) ;;
*) echo "serve-smoke: resubmission not served from cache: $r2" >&2; exit 1 ;;
esac
if [ -z "$fp1" ] || [ "$fp1" != "$fp2" ] || [ "$sp1" != "$sp2" ]; then
    echo "serve-smoke: cached receipt differs from fresh (fp $fp1 vs $fp2)" >&2
    exit 1
fi
if [ -z "$hits_after" ] || [ "${hits_before:-0}" -ge "$hits_after" ]; then
    echo "serve-smoke: cache hit counter did not advance ($hits_before -> $hits_after)" >&2
    exit 1
fi
echo "serve-smoke: warm-cache ok (fp $fp1, hits $hits_before -> $hits_after)"

# Session phase: the mutation API end to end. Create a dmr session, chain
# three refinement batches (each naming its predecessor), then audit the
# entire history from nothing but the final receipt.
echo "serve-smoke: session phase"
created=$(curl -sf -X POST "http://$addr/sessions" -d '{"kind":"dmr","scale":"small","seed":42}')
sid=$(printf '%s' "$created" | sed -n 's/.*"id":"\(s[0-9a-f-]*\)".*/\1/p')
prev=$(printf '%s' "$created" | sed -n 's/.*"head":"\([0-9a-f]*\)".*/\1/p')
if [ -z "$sid" ] || [ -z "$prev" ]; then
    echo "serve-smoke: session create malformed: $created" >&2
    exit 1
fi
for angle in 2400 2600 2800; do
    br=$(curl -sf -X POST "http://$addr/sessions/$sid/batches" \
        -d "{\"op\":\"refine\",\"angle_centideg\":$angle,\"prev\":\"$prev\"}")
    chain=$(printf '%s' "$br" | sed -n 's/.*"chain":"\([0-9a-f]*\)".*/\1/p')
    if [ -z "$chain" ]; then
        echo "serve-smoke: batch (angle $angle) malformed: $br" >&2
        exit 1
    fi
    prev=$chain
done
vr=$(curl -sf -X POST "http://$addr/sessions/$sid/verify" -d "{\"final_chain\":\"$prev\"}")
case "$vr" in
*'"match":true'*) echo "serve-smoke: session chain verified from last receipt ($prev)" ;;
*) echo "serve-smoke: chain verification failed: $vr" >&2; exit 1 ;;
esac

# Idle past -session-idle: the sweep on the next request must have sealed
# a tombstone; the chain stays readable and verifiable, new batches 410.
sleep 3
info=$(curl -sf "http://$addr/sessions/$sid")
case "$info" in
*'"evicted":true'*) ;;
*) echo "serve-smoke: session not evicted after idle: $info" >&2; exit 1 ;;
esac
case "$info" in
*'"op":"tombstone"'*) echo "serve-smoke: idle eviction sealed a tombstone" ;;
*) echo "serve-smoke: evicted session has no tombstone link: $info" >&2; exit 1 ;;
esac
vr=$(curl -sf -X POST "http://$addr/sessions/$sid/verify")
case "$vr" in
*'"match":true'*) ;;
*) echo "serve-smoke: evicted chain no longer verifies: $vr" >&2; exit 1 ;;
esac
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/sessions/$sid/batches" \
    -d '{"op":"refine","angle_centideg":2900}')
if [ "$code" != "410" ]; then
    echo "serve-smoke: batch against evicted session returned $code, want 410" >&2
    exit 1
fi
echo "serve-smoke: session phase ok"

echo "serve-smoke: draining galoisd"
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=
echo "serve-smoke: ok (report in $report)"
