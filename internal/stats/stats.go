// Package stats collects execution statistics for scheduler runs: commits,
// aborts, atomic mark updates, rounds and per-round commit ratios. These are
// the quantities reported in Figures 4 and 5 of the paper.
//
// Counters are kept per thread in cache-line padded slots and merged on
// demand, so collection does not perturb the parallel execution it measures.
package stats

import (
	"fmt"
	"sync/atomic"
	"time"
)

// cacheLine is the assumed cache line size for padding.
const cacheLine = 64

// threadCounters holds one thread's counters, padded to avoid false sharing.
type threadCounters struct {
	commits   uint64
	aborts    uint64
	pushes    uint64
	atomicOps uint64
	inspects  uint64
	_         [cacheLine - 5*8%cacheLine]byte
}

// Collector accumulates counters during a single scheduler run. It is sized
// for a fixed number of threads at construction.
type Collector struct {
	threads []threadCounters
	rounds  atomic.Uint64
	// windowSum accumulates window sizes to report the mean window.
	windowSum atomic.Uint64
	// barriers counts barrier crossings of the deterministic round loop;
	// phaseNS accumulates per-phase wall time (inspect, execute,
	// coordinate). Both are written from serial coordination sections only.
	barriers atomic.Uint64
	phaseNS  [3]atomic.Int64
	// roundTrace, if enabled, records (window, committed) per round.
	traceEnabled bool
	trace        []RoundSample
	start        time.Time
	elapsed      time.Duration
}

// RoundSample records one deterministic-scheduler round.
type RoundSample struct {
	Window    int
	Committed int
}

// NewCollector returns a collector for nthreads threads.
func NewCollector(nthreads int) *Collector {
	return &Collector{threads: make([]threadCounters, nthreads)}
}

// Reset prepares a retained collector for another run of nthreads threads,
// zeroing every counter. The per-thread slots are reused (grown only when
// nthreads exceeds the previous high-water mark), so a reused collector
// allocates nothing in steady state. The round-trace slice is dropped rather
// than truncated: a prior Snapshot's Stats.Trace aliases it, and reusing the
// backing array would corrupt that snapshot retroactively.
func (c *Collector) Reset(nthreads int) {
	if nthreads > len(c.threads) {
		c.threads = make([]threadCounters, nthreads)
	} else {
		for i := range c.threads {
			c.threads[i] = threadCounters{}
		}
	}
	c.rounds.Store(0)
	c.windowSum.Store(0)
	c.barriers.Store(0)
	for i := range c.phaseNS {
		c.phaseNS[i].Store(0)
	}
	c.traceEnabled = false
	c.trace = nil
	c.start = time.Time{}
	c.elapsed = 0
}

// EnableTrace turns on per-round tracing (single-threaded append from the
// scheduler's coordinator, so no locking is needed).
func (c *Collector) EnableTrace() { c.traceEnabled = true }

// Start records the beginning of the measured region.
func (c *Collector) Start() { c.start = time.Now() }

// Stop records the end of the measured region.
func (c *Collector) Stop() { c.elapsed = time.Since(c.start) }

// SetElapsed overrides the measured duration (used when the caller times the
// region itself).
func (c *Collector) SetElapsed(d time.Duration) { c.elapsed = d }

// Commit records a committed task on thread tid.
func (c *Collector) Commit(tid int) { c.threads[tid].commits++ }

// Abort records an aborted/failed task attempt on thread tid.
func (c *Collector) Abort(tid int) { c.threads[tid].aborts++ }

// Push records a newly created task on thread tid.
func (c *Collector) Push(tid int) { c.threads[tid].pushes++ }

// AtomicOp records n atomic shared-memory updates on thread tid. This is the
// paper's proxy for inter-task communication (Figure 5).
func (c *Collector) AtomicOp(tid int, n int) { c.threads[tid].atomicOps += uint64(n) }

// Inspect records an inspected task on thread tid.
func (c *Collector) Inspect(tid int) { c.threads[tid].inspects++ }

// Round records one deterministic round with the given window size and
// committed count. Called by the scheduler coordinator between barriers.
func (c *Collector) Round(window, committed int) {
	c.rounds.Add(1)
	c.windowSum.Add(uint64(window))
	if c.traceEnabled {
		c.trace = append(c.trace, RoundSample{Window: window, Committed: committed})
	}
}

// Barriers records n barrier crossings of the round loop. Called by the
// scheduler coordinator between barriers; the count is a pure function of
// the deterministic schedule, the thread count and the pipeline choice, so
// it is reproducible run to run (unlike the phase durations).
func (c *Collector) Barriers(n uint64) { c.barriers.Add(n) }

// Phase records one round's phase wall times in nanoseconds (inspect,
// execute, coordinate). Called by the scheduler coordinator.
func (c *Collector) Phase(insNS, exeNS, coNS int64) {
	c.phaseNS[0].Add(insNS)
	c.phaseNS[1].Add(exeNS)
	c.phaseNS[2].Add(coNS)
}

// Snapshot merges all per-thread counters into a Stats value.
func (c *Collector) Snapshot() Stats {
	var s Stats
	for i := range c.threads {
		t := &c.threads[i]
		s.Commits += t.commits
		s.Aborts += t.aborts
		s.Pushes += t.pushes
		s.AtomicOps += t.atomicOps
		s.Inspects += t.inspects
	}
	s.Rounds = c.rounds.Load()
	s.WindowSum = c.windowSum.Load()
	s.Barriers = c.barriers.Load()
	s.PhaseInspectNS = c.phaseNS[0].Load()
	s.PhaseExecuteNS = c.phaseNS[1].Load()
	s.PhaseCoordinateNS = c.phaseNS[2].Load()
	s.Elapsed = c.elapsed
	s.Trace = c.trace
	return s
}

// Stats is an immutable summary of one scheduler run.
type Stats struct {
	// Commits is the number of tasks that executed to completion.
	Commits uint64
	// Aborts is the number of failed task attempts (conflicts).
	Aborts uint64
	// Pushes is the number of dynamically created tasks.
	Pushes uint64
	// AtomicOps is the number of atomic updates to shared mark state.
	AtomicOps uint64
	// Inspects is the number of inspect-phase executions (deterministic
	// scheduler only).
	Inspects uint64
	// Rounds is the number of deterministic scheduling rounds.
	Rounds uint64
	// WindowSum is the sum of window sizes over all rounds.
	WindowSum uint64
	// Barriers is the number of barrier crossings the round loop performed —
	// the coordination cost determinism pays. Deterministic for a given
	// (input, thread count): the pipeline choice per round is a pure
	// function of (window, threads, options).
	Barriers uint64
	// PhaseInspectNS/PhaseExecuteNS/PhaseCoordinateNS are total wall time
	// spent in each DIG round phase, in nanoseconds. Observational (wall
	// clock), so unlike every other counter they vary run to run.
	PhaseInspectNS    int64
	PhaseExecuteNS    int64
	PhaseCoordinateNS int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Trace holds per-round samples if tracing was enabled.
	Trace []RoundSample
}

// AbortRatio returns aborts / (commits + aborts), the paper's abort ratio.
func (s Stats) AbortRatio() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// CommitsPerMicro returns committed tasks per microsecond of wall time
// (Figure 4's task execution rate).
func (s Stats) CommitsPerMicro() float64 {
	us := s.Elapsed.Seconds() * 1e6
	if us == 0 {
		return 0
	}
	return float64(s.Commits) / us
}

// AtomicsPerMicro returns atomic updates per microsecond (Figure 5's rate).
func (s Stats) AtomicsPerMicro() float64 {
	us := s.Elapsed.Seconds() * 1e6
	if us == 0 {
		return 0
	}
	return float64(s.AtomicOps) / us
}

// MeanWindow returns the average deterministic window size.
func (s Stats) MeanWindow() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return float64(s.WindowSum) / float64(s.Rounds)
}

// BarriersPerRound returns the mean barrier crossings per deterministic
// round — the headline coordination-overhead metric (2 is the semantic
// floor for a parallel round: inspect→execute and execute→next-inspect
// both require a rendezvous; batched sub-parallel rounds amortize below it).
func (s Stats) BarriersPerRound() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return float64(s.Barriers) / float64(s.Rounds)
}

// Add returns the element-wise sum of s and o (durations add; traces are
// dropped). Useful for aggregating phases of one logical run.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Commits:           s.Commits + o.Commits,
		Aborts:            s.Aborts + o.Aborts,
		Pushes:            s.Pushes + o.Pushes,
		AtomicOps:         s.AtomicOps + o.AtomicOps,
		Inspects:          s.Inspects + o.Inspects,
		Rounds:            s.Rounds + o.Rounds,
		WindowSum:         s.WindowSum + o.WindowSum,
		Barriers:          s.Barriers + o.Barriers,
		PhaseInspectNS:    s.PhaseInspectNS + o.PhaseInspectNS,
		PhaseExecuteNS:    s.PhaseExecuteNS + o.PhaseExecuteNS,
		PhaseCoordinateNS: s.PhaseCoordinateNS + o.PhaseCoordinateNS,
		Elapsed:           s.Elapsed + o.Elapsed,
	}
}

// String renders the stats in a compact single-line form.
func (s Stats) String() string {
	return fmt.Sprintf(
		"commits=%d aborts=%d (ratio %.4f) pushes=%d atomics=%d rounds=%d meanWindow=%.1f elapsed=%s",
		s.Commits, s.Aborts, s.AbortRatio(), s.Pushes, s.AtomicOps, s.Rounds, s.MeanWindow(), s.Elapsed)
}
