package stats

import (
	"strings"
	"testing"
	"time"
)

func TestCollectorMerge(t *testing.T) {
	c := NewCollector(4)
	for tid := 0; tid < 4; tid++ {
		for i := 0; i <= tid; i++ {
			c.Commit(tid)
		}
		c.Abort(tid)
		c.Push(tid)
		c.AtomicOp(tid, 10)
		c.Inspect(tid)
	}
	c.Round(100, 90)
	c.Round(50, 50)
	s := c.Snapshot()
	if s.Commits != 1+2+3+4 {
		t.Fatalf("commits = %d", s.Commits)
	}
	if s.Aborts != 4 || s.Pushes != 4 || s.Inspects != 4 {
		t.Fatalf("aborts/pushes/inspects = %d/%d/%d", s.Aborts, s.Pushes, s.Inspects)
	}
	if s.AtomicOps != 40 {
		t.Fatalf("atomics = %d", s.AtomicOps)
	}
	if s.Rounds != 2 || s.WindowSum != 150 {
		t.Fatalf("rounds = %d windowSum = %d", s.Rounds, s.WindowSum)
	}
	if s.MeanWindow() != 75 {
		t.Fatalf("mean window = %v", s.MeanWindow())
	}
}

func TestAbortRatio(t *testing.T) {
	var s Stats
	if s.AbortRatio() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	s = Stats{Commits: 75, Aborts: 25}
	if s.AbortRatio() != 0.25 {
		t.Fatalf("ratio = %v", s.AbortRatio())
	}
}

func TestRates(t *testing.T) {
	s := Stats{Commits: 1000, AtomicOps: 2000, Elapsed: time.Millisecond}
	if got := s.CommitsPerMicro(); got != 1.0 {
		t.Fatalf("commits/us = %v", got)
	}
	if got := s.AtomicsPerMicro(); got != 2.0 {
		t.Fatalf("atomics/us = %v", got)
	}
	var zero Stats
	if zero.CommitsPerMicro() != 0 || zero.AtomicsPerMicro() != 0 {
		t.Fatal("zero elapsed should give zero rates")
	}
}

func TestTrace(t *testing.T) {
	c := NewCollector(1)
	c.EnableTrace()
	c.Round(10, 8)
	c.Round(20, 20)
	s := c.Snapshot()
	if len(s.Trace) != 2 || s.Trace[0] != (RoundSample{10, 8}) || s.Trace[1] != (RoundSample{20, 20}) {
		t.Fatalf("trace = %v", s.Trace)
	}
}

func TestAdd(t *testing.T) {
	a := Stats{Commits: 1, Aborts: 2, Pushes: 3, AtomicOps: 4, Inspects: 5, Rounds: 6, WindowSum: 7, Elapsed: time.Second}
	b := Stats{Commits: 10, Aborts: 20, Pushes: 30, AtomicOps: 40, Inspects: 50, Rounds: 60, WindowSum: 70, Elapsed: time.Second}
	s := a.Add(b)
	if s.Commits != 11 || s.Aborts != 22 || s.Pushes != 33 || s.AtomicOps != 44 ||
		s.Inspects != 55 || s.Rounds != 66 || s.WindowSum != 77 || s.Elapsed != 2*time.Second {
		t.Fatalf("sum = %+v", s)
	}
}

func TestStringContainsFields(t *testing.T) {
	s := Stats{Commits: 42, Aborts: 7}
	str := s.String()
	for _, want := range []string{"commits=42", "aborts=7"} {
		if !strings.Contains(str, want) {
			t.Fatalf("%q missing %q", str, want)
		}
	}
}

func TestStartStop(t *testing.T) {
	c := NewCollector(1)
	c.Start()
	time.Sleep(2 * time.Millisecond)
	c.Stop()
	if c.Snapshot().Elapsed < time.Millisecond {
		t.Fatal("elapsed not measured")
	}
	c.SetElapsed(5 * time.Second)
	if c.Snapshot().Elapsed != 5*time.Second {
		t.Fatal("SetElapsed ignored")
	}
}
