// Package coredet reimplements the scheduling discipline of CoreDet-class
// deterministic thread schedulers (CoreDet, Kendo, DThreads — paper §5.2,
// §6): threads execute fixed-size quanta of logical instructions in
// parallel; every synchronization operation (lock, atomic update, barrier)
// is deferred to a serial phase at the quantum boundary, where pending
// operations execute one thread at a time in deterministic round-robin
// order.
//
// CoreDet obtains the instruction counts by compiler instrumentation; here
// programs report logical work explicitly via Thread.Work, which preserves
// the scheduling behaviour — the source of the Figure 6 slowdowns — without
// an instrumenting compiler. With Enabled=false the same API degrades to
// plain Go synchronization, giving the "without CoreDet" baseline of the
// same program text.
package coredet

import (
	"sync"
	"sync/atomic"
)

// DefaultQuantum is the default quantum length in logical instructions.
// CoreDet's evaluation uses quanta in the 1k-100k range; performance — and,
// as the paper notes pointedly, program output — depends on this tunable.
const DefaultQuantum = 50_000

// Runtime coordinates a set of deterministically scheduled threads.
type Runtime struct {
	// Enabled selects deterministic scheduling; false = plain pthreads.
	enabled bool
	quantum int64

	mu      sync.Mutex
	cond    *sync.Cond
	live    int
	waiting int
	round   uint64

	threads []*Thread

	syncOps atomic.Uint64
	quanta  atomic.Uint64
	work    atomic.Uint64
}

// New returns a runtime. quantum <= 0 selects DefaultQuantum.
func New(enabled bool, quantum int64) *Runtime {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	rt := &Runtime{enabled: enabled, quantum: quantum}
	rt.cond = sync.NewCond(&rt.mu)
	return rt
}

// SyncOps returns the number of synchronization operations performed.
func (rt *Runtime) SyncOps() uint64 { return rt.syncOps.Load() }

// Quanta returns the number of serialization rounds executed.
func (rt *Runtime) Quanta() uint64 { return rt.quanta.Load() }

// WorkDone returns the total logical instructions reported.
func (rt *Runtime) WorkDone() uint64 { return rt.work.Load() }

// Thread is one deterministically scheduled thread.
type Thread struct {
	rt    *Runtime
	id    int
	count int64
	// pending is the serialized operation this thread waits to execute;
	// it returns false to remain pending into the next round (blocked).
	pending func() bool
	// parked is true while the thread sits at the quantum boundary
	// (guarded by rt.mu).
	parked bool
	// released signals the parked thread to continue (guarded by rt.mu).
	released bool
}

// ID returns the thread's deterministic id.
func (t *Thread) ID() int { return t.id }

// Run spawns nthreads threads over body and waits for all of them.
func (rt *Runtime) Run(nthreads int, body func(*Thread)) {
	rt.threads = make([]*Thread, nthreads)
	for i := range rt.threads {
		rt.threads[i] = &Thread{rt: rt, id: i}
	}
	rt.live = nthreads
	var wg sync.WaitGroup
	wg.Add(nthreads)
	for _, t := range rt.threads {
		//detlint:ignore goroutineorder threads are identified by deterministic id and synchronize at logical-quantum round barriers; cross-thread effects are ordered by the quantum schedule, not launch order
		go func(t *Thread) {
			defer wg.Done()
			body(t)
			t.exit()
		}(t)
	}
	wg.Wait()
}

// Work accounts n logical instructions of thread-local computation. When
// the quantum is exhausted the thread parks at the quantum boundary until
// every live thread arrives (the deterministic round barrier).
func (t *Thread) Work(n int64) {
	t.rt.work.Add(uint64(n))
	if !t.rt.enabled {
		return
	}
	t.count += n
	if t.count >= t.rt.quantum {
		t.count = 0
		t.syncPoint(nil)
	}
}

// exit removes the thread from the round barrier.
func (t *Thread) exit() {
	if !t.rt.enabled {
		return
	}
	rt := t.rt
	rt.mu.Lock()
	rt.live--
	if rt.waiting == rt.live && rt.live > 0 {
		rt.serialPhase()
	}
	rt.mu.Unlock()
}

// syncPoint parks the thread at the quantum boundary with an optional
// serialized operation, blocking until the operation has executed (ops
// returning false stay pending across rounds — a blocked lock acquire).
func (t *Thread) syncPoint(op func() bool) {
	rt := t.rt
	rt.mu.Lock()
	t.pending = op
	t.released = false
	t.parked = true
	rt.waiting++
	if rt.waiting == rt.live {
		rt.serialPhase()
	}
	for !t.released {
		rt.cond.Wait()
	}
	rt.mu.Unlock()
}

// serialPhase runs with rt.mu held once every live thread is parked: it
// executes pending operations in thread-id order — the deterministic
// round-robin token of CoreDet — releases unblocked threads, and starts the
// next round. Threads whose operation stays blocked remain parked.
func (rt *Runtime) serialPhase() {
	rt.quanta.Add(1)
	stillBlocked := 0
	for _, t := range rt.threads {
		if !t.parked {
			continue
		}
		if t.pending == nil {
			t.parked = false
			t.released = true
			continue
		}
		rt.syncOps.Add(1)
		if t.pending() {
			t.pending = nil
			t.parked = false
			t.released = true
		} else {
			stillBlocked++
		}
	}
	rt.round++
	rt.waiting = stillBlocked
	rt.cond.Broadcast()
}

// Mutex is a deterministic mutex (plain sync.Mutex when disabled).
type Mutex struct {
	plain  sync.Mutex
	holder *Thread // guarded by rt.mu via the serial phase
}

// Lock acquires m; under deterministic scheduling the acquire happens in
// the serial phase and blocked threads retry in subsequent rounds.
func (t *Thread) Lock(m *Mutex) {
	if !t.rt.enabled {
		t.rt.syncOps.Add(1)
		m.plain.Lock()
		return
	}
	t.count = 0
	t.syncPoint(func() bool {
		if m.holder == nil {
			m.holder = t
			return true
		}
		return false
	})
}

// Unlock releases m.
func (t *Thread) Unlock(m *Mutex) {
	if !t.rt.enabled {
		t.rt.syncOps.Add(1)
		m.plain.Unlock()
		return
	}
	t.count = 0
	var bad bool
	t.syncPoint(func() bool {
		if m.holder != t {
			bad = true
			return true
		}
		m.holder = nil
		return true
	})
	if bad {
		panic("coredet: unlock of mutex not held by this thread")
	}
}

// AtomicAdd adds delta to *p as a synchronization operation and returns the
// new value.
func (t *Thread) AtomicAdd(p *int64, delta int64) int64 {
	if !t.rt.enabled {
		t.rt.syncOps.Add(1)
		return atomic.AddInt64(p, delta)
	}
	t.count = 0
	var out int64
	t.syncPoint(func() bool {
		*p += delta
		out = *p
		return true
	})
	return out
}

// AtomicCAS compare-and-swaps *p as a synchronization operation.
func (t *Thread) AtomicCAS(p *int64, old, new int64) bool {
	if !t.rt.enabled {
		t.rt.syncOps.Add(1)
		return atomic.CompareAndSwapInt64(p, old, new)
	}
	t.count = 0
	var ok bool
	t.syncPoint(func() bool {
		if *p == old {
			*p = new
			ok = true
		} else {
			ok = false
		}
		return true
	})
	return ok
}

// AtomicLoad reads *p as a synchronization operation. (CoreDet treats
// synchronizing loads like any other sync op; racy plain loads are the
// store-buffer case, which the benchmarked programs avoid.)
func (t *Thread) AtomicLoad(p *int64) int64 {
	if !t.rt.enabled {
		t.rt.syncOps.Add(1)
		return atomic.LoadInt64(p)
	}
	t.count = 0
	var out int64
	t.syncPoint(func() bool {
		out = *p
		return true
	})
	return out
}

// Barrier is a deterministic barrier for a fixed number of parties.
type Barrier struct {
	parties int
	plain   *plainBarrier
	arrived int
	gen     uint64
}

// NewBarrier returns a barrier for parties threads.
func NewBarrier(parties int) *Barrier {
	return &Barrier{parties: parties, plain: newPlainBarrier(parties)}
}

// BarrierWait blocks until all parties arrive.
func (t *Thread) BarrierWait(b *Barrier) {
	if !t.rt.enabled {
		t.rt.syncOps.Add(1)
		b.plain.wait()
		return
	}
	t.count = 0
	first := true
	var myGen uint64
	t.syncPoint(func() bool {
		if first {
			first = false
			myGen = b.gen
			b.arrived++
			if b.arrived == b.parties {
				b.arrived = 0
				b.gen++
				return true
			}
		}
		return b.gen != myGen
	})
}

// plainBarrier is a condvar barrier for the disabled mode.
type plainBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

func newPlainBarrier(parties int) *plainBarrier {
	b := &plainBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *plainBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
