package coredet

import (
	"testing"
)

func TestWorkOnlyCompletes(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		rt := New(enabled, 100)
		var sums [4]int64
		rt.Run(4, func(th *Thread) {
			for i := 0; i < 1000; i++ {
				sums[th.ID()]++
				th.Work(7)
			}
		})
		for i, s := range sums {
			if s != 1000 {
				t.Fatalf("enabled=%v: thread %d did %d iterations", enabled, i, s)
			}
		}
		if enabled && rt.Quanta() == 0 {
			t.Fatal("no quanta recorded")
		}
	}
}

func TestAtomicAddExactness(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		rt := New(enabled, 1000)
		var counter int64
		rt.Run(4, func(th *Thread) {
			for i := 0; i < 200; i++ {
				th.AtomicAdd(&counter, 1)
				th.Work(10)
			}
		})
		if counter != 800 {
			t.Fatalf("enabled=%v: counter = %d", enabled, counter)
		}
		if enabled && rt.SyncOps() < 800 {
			t.Fatalf("sync ops = %d, want >= 800", rt.SyncOps())
		}
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		rt := New(enabled, 500)
		var m Mutex
		var inside, violations, total int64
		rt.Run(4, func(th *Thread) {
			for i := 0; i < 50; i++ {
				th.Lock(&m)
				// Critical section: plain variables, protected by m.
				inside++
				if inside != 1 {
					violations++
				}
				total++
				inside--
				th.Unlock(&m)
				th.Work(20)
			}
		})
		if violations != 0 {
			t.Fatalf("enabled=%v: %d mutual-exclusion violations", enabled, violations)
		}
		if total != 200 {
			t.Fatalf("enabled=%v: total = %d", enabled, total)
		}
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	// Under deterministic scheduling, the interleaving of atomic updates
	// (observed through a non-commutative fold) must be identical across
	// runs for a fixed thread count.
	run := func() int64 {
		rt := New(true, 777)
		var acc int64
		rt.Run(4, func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.syncPoint(func() bool {
					acc = acc*31 + int64(th.ID()+1)
					return true
				})
				th.Work(int64(10 * (th.ID() + 1)))
			}
		})
		return acc
	}
	ref := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != ref {
			t.Fatalf("run %d: %x != %x — interleaving not deterministic", i, got, ref)
		}
	}
}

func TestQuantumAffectsInterleaving(t *testing.T) {
	// The paper's criticism: the quantum is a tunable that changes the
	// (deterministic) output. Demonstrate observability.
	run := func(quantum int64) int64 {
		rt := New(true, quantum)
		var acc int64
		rt.Run(4, func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.AtomicAdd(&acc, 0) // serialize
				th.syncPoint(func() bool { acc = acc*31 + int64(th.ID()+1); return true })
				th.Work(int64(13 * (th.ID() + 1)))
			}
		})
		return acc
	}
	if run(100) == run(10000) {
		t.Log("note: two quanta produced the same fold (possible but unexpected)")
	}
}

func TestBarrierRounds(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		rt := New(enabled, 300)
		b := NewBarrier(4)
		// Phase counters: all threads must see phase p complete before
		// any proceeds to p+1.
		var arrivals [8]int64
		rt.Run(4, func(th *Thread) {
			for p := 0; p < 8; p++ {
				th.AtomicAdd(&arrivals[p], 1)
				th.BarrierWait(b)
				if v := th.AtomicLoad(&arrivals[p]); v != 4 {
					t.Errorf("enabled=%v: phase %d saw %d arrivals after barrier", enabled, p, v)
				}
				th.Work(50)
			}
		})
	}
}

func TestCASSemantics(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		rt := New(enabled, 200)
		var slot int64
		var wins int64
		rt.Run(4, func(th *Thread) {
			if th.AtomicCAS(&slot, 0, int64(th.ID()+1)) {
				th.AtomicAdd(&wins, 1)
			}
			th.Work(10)
		})
		if wins != 1 {
			t.Fatalf("enabled=%v: %d CAS winners", enabled, wins)
		}
		if enabled && slot != 1 {
			// Deterministic round-robin: thread 0 always wins.
			t.Fatalf("winner = %d, want thread 0 (deterministic order)", slot)
		}
	}
}

func TestMutexContentionProgress(t *testing.T) {
	// Heavy contention on one lock with uneven hold times must still
	// complete (no lost wakeups across rounds).
	rt := New(true, 100)
	var m Mutex
	shared := int64(0)
	rt.Run(8, func(th *Thread) {
		for i := 0; i < 30; i++ {
			th.Lock(&m)
			shared++
			th.Work(int64(1 + th.ID()*37))
			th.Unlock(&m)
		}
	})
	if shared != 240 {
		t.Fatalf("shared = %d", shared)
	}
}

func TestThreadExitReleasesOthers(t *testing.T) {
	// Thread 0 exits immediately; others must still make progress.
	rt := New(true, 100)
	var done int64
	rt.Run(4, func(th *Thread) {
		if th.ID() == 0 {
			return
		}
		for i := 0; i < 100; i++ {
			th.AtomicAdd(&done, 1)
			th.Work(30)
		}
	})
	if done != 300 {
		t.Fatalf("done = %d", done)
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	rt := New(true, 100)
	panicked := make(chan bool, 1)
	rt.Run(2, func(th *Thread) {
		if th.ID() == 1 {
			defer func() { panicked <- recover() != nil }()
			var m Mutex
			th.Unlock(&m)
		}
	})
	if !<-panicked {
		t.Fatal("unlock by non-holder did not panic")
	}
}
