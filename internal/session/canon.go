package session

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Canonical encodings. A link's hash covers bytes, not JSON: every field
// is length-prefixed or fixed-width so no two distinct specs share an
// encoding, and a version byte leads so the scheme can evolve without
// old chains verifying against new rules. This mirrors rescache's key
// construction — same problem, same shape.

const canonVersion = 1

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// canonInit encodes the genesis payload. Threads is deliberately absent:
// the chain is thread-count independent.
func canonInit(is InitSpec) []byte {
	b := make([]byte, 0, 64)
	b = append(b, canonVersion)
	b = appendString(b, "init")
	b = appendString(b, is.Kind)
	b = appendString(b, is.Variant)
	b = appendString(b, is.Scale)
	b = binary.BigEndian.AppendUint64(b, is.Seed)
	return b
}

// canonTombstone encodes an eviction marker.
func canonTombstone(reason string) []byte {
	b := make([]byte, 0, 32)
	b = append(b, canonVersion)
	b = appendString(b, "tombstone")
	b = appendString(b, reason)
	return b
}

// canonRefine encodes dmr's refine batch.
func canonRefine(b *BatchSpec) ([]byte, error) {
	if b.AngleCentideg <= 0 || b.AngleCentideg > 3000 {
		return nil, fmt.Errorf("refine: angle_centideg %d out of range (0, 3000]", b.AngleCentideg)
	}
	out := make([]byte, 0, 32)
	out = append(out, canonVersion)
	out = appendString(out, "refine")
	out = appendUvarint(out, uint64(b.AngleCentideg))
	return out, nil
}

// canonReweight encodes sssp's reweight batch.
func canonReweight(b *BatchSpec) ([]byte, error) {
	if b.Edges <= 0 || b.Edges > 1<<16 {
		return nil, fmt.Errorf("reweight: edges %d out of range (0, 65536]", b.Edges)
	}
	out := make([]byte, 0, 32)
	out = append(out, canonVersion)
	out = appendString(out, "reweight")
	out = appendUvarint(out, uint64(b.Edges))
	out = binary.BigEndian.AppendUint64(out, b.Seed)
	return out, nil
}

// chainHash is the link function: SHA-256 over the previous link's raw
// hash, the length-prefixed canonical payload, and the two fingerprints
// the link attests to.
func chainHash(prev [sha256.Size]byte, payload []byte, stateFP, resultFP uint64) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{canonVersion})
	h.Write(prev[:])
	var lb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lb[:], uint64(len(payload)))
	h.Write(lb[:n])
	h.Write(payload)
	var fp [16]byte
	binary.BigEndian.PutUint64(fp[:8], stateFP)
	binary.BigEndian.PutUint64(fp[8:], resultFP)
	h.Write(fp[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// genesisPrev is the all-zero predecessor of the genesis link.
var genesisPrev [sha256.Size]byte

func chainHex(c [sha256.Size]byte) string { return hex.EncodeToString(c[:]) }

func chainFromHex(s string) ([sha256.Size]byte, error) {
	var out [sha256.Size]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != sha256.Size {
		return out, fmt.Errorf("bad chain fingerprint %q", s)
	}
	copy(out[:], raw)
	return out, nil
}

func fpHex(fp uint64) string { return fmt.Sprintf("%016x", fp) }
