package session

import (
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"galois/internal/inputs"
)

// ApplyRunner executes one batch during a live submission or a replay.
// The serving layer supplies it to interpose engine checkout, scheduler
// options, deadlines and metrics; prev is the raw chain hash of the
// preceding link and canon the batch's canonical encoding (together they
// key the result cache). It must return the post-state and result
// fingerprints from k.Apply.
type ApplyRunner func(k *Kind, state any, b BatchSpec, prev []byte, canon []byte) (stateFP, resultFP uint64, err error)

// Session is one pinned mutable input plus its receipt chain. All access
// is serialized by mu: batches against the same session execute one at a
// time (the state is the shared resource), which is also what makes the
// chain well-ordered.
type Session struct {
	ID string

	mu       sync.Mutex
	kind     *Kind
	init     InitSpec
	sc       inputs.Scale
	state    any
	links    []Link
	head     [sha256.Size]byte
	lastFP   uint64 // state fingerprint after the newest link
	lastUsed int64  // unix nanos of the last batch, injected by the caller
	evicted  bool
}

// Manager owns the session table. The ordered ids slice — not the map —
// drives every sweep, so iteration order is deterministic.
type Manager struct {
	mu       sync.Mutex
	kinds    *KindSet
	sessions map[string]*Session
	ids      []string
	tag      string // per-manager instance tag making ids globally unique
	nextID   int
	live     int
	maxLive  int
}

// NewManager returns a manager over kinds holding at most maxLive
// un-evicted sessions (default 64 when maxLive <= 0).
//
// Session ids carry a random per-manager instance tag: two galoisd
// processes must never mint the same id, because a routing tier keys its
// session-stickiness map on the id alone. The tag is serving metadata —
// ids never enter a chain hash or a receipt, so the randomness is
// behavior-free (and invisible to detlint's fingerprint taint).
func NewManager(kinds *KindSet, maxLive int) *Manager {
	if maxLive <= 0 {
		maxLive = 64
	}
	var buf [4]byte
	if _, err := cryptorand.Read(buf[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; a fixed tag only
		// costs cross-process uniqueness, never correctness of one process.
		copy(buf[:], "galo")
	}
	return &Manager{
		kinds:    kinds,
		sessions: make(map[string]*Session),
		tag:      hex.EncodeToString(buf[:]),
		maxLive:  maxLive,
	}
}

// Kinds returns the manager's kind set.
func (m *Manager) Kinds() *KindSet { return m.kinds }

// Live returns the number of un-evicted sessions.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// normalizeInit validates is against the kind set and fills defaults.
// g-n is rejected outright: a nondeterministic fingerprint cannot anchor
// a chain link.
func (m *Manager) normalizeInit(is InitSpec) (InitSpec, *Kind, inputs.Scale, error) {
	k := m.kinds.Lookup(is.Kind)
	if k == nil {
		return is, nil, inputs.Scale{}, fmt.Errorf("unknown session kind %q (have %v)", is.Kind, m.kinds.Names())
	}
	switch is.Variant {
	case "":
		is.Variant = "g-d"
	case "g-d", "g-dnc":
	case "g-n":
		return is, nil, inputs.Scale{}, fmt.Errorf("variant g-n cannot form a receipt chain (nondeterministic fingerprints); use g-d or g-dnc")
	default:
		return is, nil, inputs.Scale{}, fmt.Errorf("unknown variant %q (g-d|g-dnc)", is.Variant)
	}
	if is.Scale == "" {
		is.Scale = "small"
	}
	sc, err := inputs.ScaleByName(is.Scale)
	if err != nil {
		return is, nil, inputs.Scale{}, err
	}
	return is, k, sc, nil
}

// Create builds a session: derives the initial state through the kind's
// canonical Init and seals the genesis link over the canonical init spec
// and the initial state fingerprint. State construction runs on the
// caller's goroutine — it needs no engine, and its result is never served
// from a cache (a session is identified by its id, not its content).
func (m *Manager) Create(is InitSpec, now int64) (*Session, error) {
	is, k, sc, err := m.normalizeInit(is)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.live >= m.maxLive {
		m.mu.Unlock()
		return nil, ErrTooManySessions
	}
	m.live++ // reserve the slot before the (slow) build
	m.nextID++
	id := fmt.Sprintf("s%s-%d", m.tag, m.nextID)
	m.mu.Unlock()

	state, stateFP := k.Init(sc, is.Seed)
	chain := chainHash(genesisPrev, canonInit(is), stateFP, 0)
	s := &Session{
		ID:   id,
		kind: k,
		init: is,
		sc:   sc,
		state: state,
		links: []Link{{
			Index:   0,
			Prev:    chainHex(genesisPrev),
			Batch:   BatchSpec{Op: "init"},
			StateFP: fpHex(stateFP),
			Chain:   chainHex(chain),
		}},
		head:     chain,
		lastFP:   stateFP,
		lastUsed: now,
	}
	m.mu.Lock()
	m.sessions[id] = s
	m.ids = append(m.ids, id)
	m.mu.Unlock()
	return s, nil
}

// Get returns the session with that id (evicted sessions included — their
// chains remain readable).
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sessions[id]
	if s == nil {
		return nil, ErrNotFound
	}
	return s, nil
}

// EvictIdle sweeps sessions whose last batch is at least idle nanoseconds
// before now, dropping their state and sealing a tombstone link. Sessions
// mid-batch are skipped (they are, by definition, not idle). Returns the
// evicted ids in sweep order.
func (m *Manager) EvictIdle(now, idle int64) []string {
	if idle <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, id := range m.ids {
		s := m.sessions[id]
		if !s.mu.TryLock() {
			continue
		}
		if !s.evicted && now-s.lastUsed >= idle {
			s.evictLocked("idle")
			m.live--
			out = append(out, id)
		}
		s.mu.Unlock()
	}
	return out
}

// Close evicts one session with reason "closed". Idempotent.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sessions[id]
	if s == nil {
		return ErrNotFound
	}
	s.mu.Lock()
	if !s.evicted {
		s.evictLocked("closed")
		m.live--
	}
	s.mu.Unlock()
	return nil
}

// evictLocked seals the tombstone: a final chain link over the eviction
// reason and the last state fingerprint, so even the act of forgetting
// the state is attested. Caller holds s.mu.
func (s *Session) evictLocked(reason string) {
	chain := chainHash(s.head, canonTombstone(reason), s.lastFP, 0)
	s.links = append(s.links, Link{
		Index:   len(s.links),
		Prev:    chainHex(s.head),
		Batch:   BatchSpec{Op: "tombstone", Reason: reason},
		StateFP: fpHex(s.lastFP),
		Chain:   chainHex(chain),
	})
	s.head = chain
	s.state = nil
	s.evicted = true
}

// Init returns the session's normalized init spec.
func (s *Session) Init() InitSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.init
}

// Snapshot returns the init spec, a copy of the chain, and the evicted
// flag. It does not count as use (it never delays idle eviction).
func (s *Session) Snapshot() (InitSpec, []Link, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.init, append([]Link(nil), s.links...), s.evicted
}

// Batch applies one mutation batch, extending the chain by one link. The
// runner performs the actual execution (under the session lock, so
// batches serialize). A batch whose Prev names a historical link with an
// identical canonical encoding returns that recorded link with Replayed
// set — the idempotent-retry path — without re-executing.
func (s *Session) Batch(b BatchSpec, now int64, run ApplyRunner) (Link, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evicted {
		return Link{}, ErrEvicted
	}
	canon, err := s.kind.Canon(&b)
	if err != nil {
		return Link{}, err
	}
	if b.Prev != "" && b.Prev != chainHex(s.head) {
		if l, ok := s.replayLocked(b.Prev, canon); ok {
			return l, nil
		}
		return Link{}, ErrPrevMismatch
	}

	stateFP, resultFP, err := run(s.kind, s.state, b, s.head[:], canon)
	if err != nil {
		return Link{}, err
	}
	chain := chainHash(s.head, canon, stateFP, resultFP)
	link := Link{
		Index: len(s.links),
		Prev:  chainHex(s.head),
		// Serving-time controls are scrubbed from the recorded batch: the
		// chain (and any replay of it) covers only the canonical fields.
		Batch:    scrub(b),
		StateFP:  fpHex(stateFP),
		ResultFP: fpHex(resultFP),
		Chain:    chainHex(chain),
	}
	s.links = append(s.links, link)
	s.head = chain
	s.lastFP = stateFP
	s.lastUsed = now
	return link, nil
}

// replayLocked finds a historical link whose predecessor is prev and
// whose batch re-encodes to canon, i.e. the exact submission that built
// it. Caller holds s.mu.
func (s *Session) replayLocked(prev string, canon []byte) (Link, bool) {
	for i := 1; i < len(s.links); i++ {
		l := s.links[i]
		if l.Prev != prev || l.Batch.Op == "tombstone" {
			continue
		}
		rc, err := s.kind.Canon(&l.Batch)
		if err == nil && string(rc) == string(canon) {
			l.Replayed = true
			return l, true
		}
	}
	return Link{}, false
}

func scrub(b BatchSpec) BatchSpec {
	b.Prev, b.Threads, b.TimeoutMS = "", 0, 0
	return b
}

// Verify replays the recorded chain from the recorded init spec: fresh
// state, every batch re-applied through run, every link recomputed and
// compared field-for-field against the record. expectFinal, when
// non-empty, is additionally checked against the recomputed head — this
// is how a client holding only its last receipt audits the whole session.
// The replay works from a snapshot, so live batches are not blocked while
// it runs, and it works on evicted sessions (the chain outlives the
// state).
func (s *Session) Verify(expectFinal string, run ApplyRunner) (VerifyOutcome, error) {
	init, links, _ := s.Snapshot()
	return ReplayChain(s.kind, s.sc, init, links, expectFinal, run)
}

// ReplayChain is Verify's engine, exposed for offline audit: given a kind,
// an init spec and a recorded chain, recompute everything and report the
// first divergence.
func ReplayChain(k *Kind, sc inputs.Scale, init InitSpec, links []Link, expectFinal string, run ApplyRunner) (VerifyOutcome, error) {
	if len(links) == 0 {
		return VerifyOutcome{FailedIndex: -1, Reason: "empty chain"}, nil
	}
	state, stateFP := k.Init(sc, init.Seed)
	head := chainHash(genesisPrev, canonInit(init), stateFP, 0)
	lastFP := stateFP
	if got := chainHex(head); got != links[0].Chain {
		return VerifyOutcome{FailedIndex: 0, Links: len(links), FinalChain: got,
			Reason: fmt.Sprintf("genesis link: recomputed %s, recorded %s", got, links[0].Chain)}, nil
	}
	for i := 1; i < len(links); i++ {
		l := links[i]
		var chain [sha256.Size]byte
		var stFP, resFP uint64
		if l.Batch.Op == "tombstone" {
			chain = chainHash(head, canonTombstone(l.Batch.Reason), lastFP, 0)
			stFP = lastFP
		} else {
			canon, err := k.Canon(&l.Batch)
			if err != nil {
				return VerifyOutcome{FailedIndex: i, Links: len(links), FinalChain: chainHex(head),
					Reason: fmt.Sprintf("link %d: recorded batch does not canonicalize: %v", i, err)}, nil
			}
			var rerr error
			stFP, resFP, rerr = run(k, state, l.Batch, head[:], canon)
			if rerr != nil {
				return VerifyOutcome{}, fmt.Errorf("replaying link %d: %w", i, rerr)
			}
			chain = chainHash(head, canon, stFP, resFP)
			lastFP = stFP
			if fpHex(resFP) != l.ResultFP {
				return VerifyOutcome{FailedIndex: i, Links: len(links), FinalChain: chainHex(chain),
					Reason: fmt.Sprintf("link %d: recomputed result %s, recorded %s", i, fpHex(resFP), l.ResultFP)}, nil
			}
		}
		if got := chainHex(chain); got != l.Chain || fpHex(stFP) != l.StateFP {
			return VerifyOutcome{FailedIndex: i, Links: len(links), FinalChain: got,
				Reason: fmt.Sprintf("link %d: recomputed chain %s state %s, recorded chain %s state %s",
					i, got, fpHex(stFP), l.Chain, l.StateFP)}, nil
		}
		head = chain
	}
	out := VerifyOutcome{Match: true, FailedIndex: -1, Links: len(links), FinalChain: chainHex(head)}
	if expectFinal != "" && expectFinal != out.FinalChain {
		out.Match = false
		out.FailedIndex = len(links) - 1
		out.Reason = fmt.Sprintf("presented final chain %s != recomputed %s", expectFinal, out.FinalChain)
	}
	return out, nil
}
