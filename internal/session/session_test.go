package session

import (
	"errors"
	"fmt"
	"testing"

	"galois"
)

// testRunner executes batches directly (no engine pool, no admission) under
// the deterministic scheduler — the session layer's contract is the same
// whichever executor hosts it.
func testRunner(threads int) ApplyRunner {
	return func(k *Kind, state any, b BatchSpec, prev, canon []byte) (uint64, uint64, error) {
		stFP, resFP, _, err := k.Apply(state, b, []galois.Option{
			galois.WithThreads(threads), galois.WithSched(galois.Deterministic)})
		return stFP, resFP, err
	}
}

func newTestManager() *Manager { return NewManager(DefaultKinds(), 0) }

// ssspChain builds an n-batch sssp session (the cheap kind) and returns it.
func ssspChain(t *testing.T, m *Manager, n int) *Session {
	t.Helper()
	s, err := m.Create(InitSpec{Kind: "sssp", Seed: 42}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b := BatchSpec{Op: "reweight", Edges: 8 + i, Seed: uint64(100 + i)}
		if _, err := s.Batch(b, int64(i+2), testRunner(1)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	return s
}

// TestCreateNormalizesAndRejects covers init validation: defaults filled,
// g-n refused (a nondeterministic fingerprint cannot anchor a chain),
// unknown kinds/variants/scales refused.
func TestCreateNormalizesAndRejects(t *testing.T) {
	m := newTestManager()
	s, err := m.Create(InitSpec{Kind: "sssp", Seed: 42}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if is := s.Init(); is.Variant != "g-d" || is.Scale != "small" {
		t.Errorf("defaults not filled: %+v", is)
	}
	_, links, _ := s.Snapshot()
	if len(links) != 1 || links[0].Batch.Op != "init" || links[0].Index != 0 {
		t.Fatalf("genesis link malformed: %+v", links)
	}

	for _, is := range []InitSpec{
		{Kind: "sssp", Variant: "g-n"},
		{Kind: "nope"},
		{Kind: "sssp", Variant: "weird"},
		{Kind: "sssp", Scale: "galactic"},
	} {
		if _, err := m.Create(is, 1); err == nil {
			t.Errorf("Create(%+v): want error", is)
		}
	}
}

// TestChainVerifies: a multi-batch session replays byte-identically, from
// the recorded chain and from the last receipt alone; a wrong final
// fingerprint is flagged at the last link.
func TestChainVerifies(t *testing.T) {
	m := newTestManager()
	s := ssspChain(t, m, 3)
	_, links, _ := s.Snapshot()
	if len(links) != 4 {
		t.Fatalf("chain has %d links, want 4", len(links))
	}

	vo, err := s.Verify("", testRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if !vo.Match || vo.FailedIndex != -1 || vo.FinalChain != links[3].Chain {
		t.Fatalf("clean replay: %+v", vo)
	}

	// The last receipt alone authenticates the whole history.
	vo, err = s.Verify(links[3].Chain, testRunner(2))
	if err != nil {
		t.Fatal(err)
	}
	if !vo.Match {
		t.Fatalf("verify from last receipt (threads 2): %+v", vo)
	}

	vo, err = s.Verify(links[2].Chain, testRunner(1)) // stale receipt ≠ head
	if err != nil {
		t.Fatal(err)
	}
	if vo.Match || vo.FailedIndex != 3 {
		t.Fatalf("stale final fingerprint accepted: %+v", vo)
	}
}

// TestTamperDetection: corrupting any field of any middle link makes the
// replay fail at exactly that link.
func TestTamperDetection(t *testing.T) {
	m := newTestManager()
	s := ssspChain(t, m, 3)
	init, orig, _ := s.Snapshot()
	k := m.Kinds().Lookup("sssp")

	tampers := []struct {
		name string
		mut  func(*Link)
	}{
		{"chain", func(l *Link) { l.Chain = l.Chain[:63] + "0" }},
		{"state_fp", func(l *Link) { l.StateFP = "0123456789abcdef" }},
		{"result_fp", func(l *Link) { l.ResultFP = "0123456789abcdef" }},
		{"batch", func(l *Link) { l.Batch.Edges++ }},
	}
	for i := 1; i < len(orig); i++ {
		for _, tm := range tampers {
			links := append([]Link(nil), orig...)
			tm.mut(&links[i])
			if links[i] == orig[i] {
				// chain tamper may be a no-op if the last hex digit was already 0
				links[i].Chain = links[i].Chain[:63] + "1"
			}
			vo, err := ReplayChain(k, s.sc, init, links, "", testRunner(1))
			if err != nil {
				t.Fatalf("link %d %s: %v", i, tm.name, err)
			}
			if vo.Match || vo.FailedIndex != i {
				t.Errorf("link %d %s tamper: match=%v failed_index=%d, want failure at %d (%s)",
					i, tm.name, vo.Match, vo.FailedIndex, i, vo.Reason)
			}
		}
	}

	// Genesis tamper: a forged initial spec fails at link 0.
	forged := init
	forged.Seed++
	vo, err := ReplayChain(k, s.sc, forged, orig, "", testRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if vo.Match || vo.FailedIndex != 0 {
		t.Errorf("forged init seed: %+v, want failure at genesis", vo)
	}
}

// TestPrevReplayAndMismatch covers the idempotent-retry path: a duplicate
// submission naming a historical Prev gets the recorded link back without
// re-execution; a different batch against a stale Prev is rejected.
func TestPrevReplayAndMismatch(t *testing.T) {
	m := newTestManager()
	s, err := m.Create(InitSpec{Kind: "sssp", Seed: 42}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, links, _ := s.Snapshot()
	genesis := links[0].Chain

	b1 := BatchSpec{Op: "reweight", Edges: 8, Seed: 7, Prev: genesis}
	l1, err := s.Batch(b1, 2, testRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	b2 := BatchSpec{Op: "reweight", Edges: 9, Seed: 8, Prev: l1.Chain}
	l2, err := s.Batch(b2, 3, testRunner(1))
	if err != nil {
		t.Fatal(err)
	}

	// Retry of b1 (lost response): same Prev, same payload → recorded link,
	// marked Replayed, chain unextended.
	executions := 0
	counting := func(k *Kind, state any, b BatchSpec, prev, canon []byte) (uint64, uint64, error) {
		executions++
		return testRunner(1)(k, state, b, prev, canon)
	}
	got, err := s.Batch(b1, 4, counting)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Replayed || got.Chain != l1.Chain || executions != 0 {
		t.Errorf("idempotent retry: replayed=%v chain match=%v executions=%d",
			got.Replayed, got.Chain == l1.Chain, executions)
	}
	if _, links, _ := s.Snapshot(); len(links) != 3 {
		t.Errorf("replay extended the chain to %d links", len(links))
	}

	// A *different* batch against the stale genesis Prev is a lost race.
	_, err = s.Batch(BatchSpec{Op: "reweight", Edges: 30, Seed: 9, Prev: genesis}, 5, testRunner(1))
	if !errors.Is(err, ErrPrevMismatch) {
		t.Errorf("stale prev with new payload: err=%v, want ErrPrevMismatch", err)
	}

	// Prev naming the current head is the happy fast path.
	if _, err := s.Batch(BatchSpec{Op: "reweight", Edges: 10, Seed: 10, Prev: l2.Chain}, 6, testRunner(1)); err != nil {
		t.Errorf("prev=head: %v", err)
	}
}

// TestEvictionTombstone: idle eviction seals a tombstone link; the chain
// stays readable and verifiable, further batches get ErrEvicted, and the
// manager's live count drops.
func TestEvictionTombstone(t *testing.T) {
	m := newTestManager()
	s := ssspChain(t, m, 2)
	busy := ssspChain(t, m, 1) // recently used — must survive the sweep
	if m.Live() != 2 {
		t.Fatalf("live = %d, want 2", m.Live())
	}

	// s's last batch is at now=3; busy's at now=2... both old. Touch busy.
	if _, err := busy.Batch(BatchSpec{Op: "reweight", Edges: 8, Seed: 1}, 1_000, testRunner(1)); err != nil {
		t.Fatal(err)
	}
	evicted := m.EvictIdle(1_500, 1_000)
	if len(evicted) != 1 || evicted[0] != s.ID {
		t.Fatalf("evicted %v, want [%s]", evicted, s.ID)
	}
	if m.Live() != 1 {
		t.Errorf("live = %d after eviction, want 1", m.Live())
	}

	_, links, ev := s.Snapshot()
	last := links[len(links)-1]
	if !ev || last.Batch.Op != "tombstone" || last.Batch.Reason != "idle" {
		t.Fatalf("tombstone missing: evicted=%v last=%+v", ev, last)
	}
	if _, err := s.Batch(BatchSpec{Op: "reweight", Edges: 8, Seed: 1}, 2_000, testRunner(1)); !errors.Is(err, ErrEvicted) {
		t.Errorf("batch after eviction: err=%v, want ErrEvicted", err)
	}

	// The sealed chain — tombstone included — still replays.
	vo, err := s.Verify(last.Chain, testRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if !vo.Match {
		t.Errorf("evicted session fails verify: %+v", vo)
	}

	// Close is idempotent and tombstones with its own reason.
	if err := m.Close(busy.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(busy.ID); err != nil {
		t.Fatal(err)
	}
	if _, links, _ := busy.Snapshot(); links[len(links)-1].Batch.Reason != "closed" {
		t.Errorf("close tombstone reason = %q", links[len(links)-1].Batch.Reason)
	}
	if err := m.Close("s999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("close unknown: %v", err)
	}
	if m.Live() != 0 {
		t.Errorf("live = %d at end, want 0", m.Live())
	}
}

// TestSessionCap: creation beyond maxLive gets ErrTooManySessions until a
// session is evicted.
func TestSessionCap(t *testing.T) {
	m := NewManager(DefaultKinds(), 2)
	a, err := m.Create(InitSpec{Kind: "sssp", Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(InitSpec{Kind: "sssp", Seed: 2}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(InitSpec{Kind: "sssp", Seed: 3}, 1); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over cap: err=%v, want ErrTooManySessions", err)
	}
	if err := m.Close(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(InitSpec{Kind: "sssp", Seed: 3}, 1); err != nil {
		t.Errorf("create after close: %v", err)
	}
}

// TestChainThreadIndependence: the same batch sequence yields the same
// chain at different thread counts — for both kinds. This is the paper's
// portability property lifted to mutation chains.
func TestChainThreadIndependence(t *testing.T) {
	for _, kind := range []string{"sssp", "dmr"} {
		batch := BatchSpec{Op: "reweight", Edges: 16, Seed: 9}
		if kind == "dmr" {
			batch = BatchSpec{Op: "refine", AngleCentideg: 2600}
		}
		var chains []string
		for _, threads := range []int{1, 4} {
			m := newTestManager()
			s, err := m.Create(InitSpec{Kind: kind, Seed: 42}, 1)
			if err != nil {
				t.Fatal(err)
			}
			l, err := s.Batch(batch, 2, testRunner(threads))
			if err != nil {
				t.Fatal(err)
			}
			chains = append(chains, l.Chain)
		}
		if chains[0] != chains[1] {
			t.Errorf("%s: chain varies with threads: %s != %s", kind, chains[0], chains[1])
		}
	}
}

// TestGetAndSnapshotDoNotDelayEviction: reads are not "use".
func TestGetAndSnapshotDoNotDelayEviction(t *testing.T) {
	m := newTestManager()
	s := ssspChain(t, m, 1)
	if got, err := m.Get(s.ID); err != nil || got != s {
		t.Fatalf("Get: %v", err)
	}
	if _, err := m.Get("s999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown: %v", err)
	}
	s.Snapshot() // must not refresh lastUsed
	if evicted := m.EvictIdle(10_000, 1_000); len(evicted) != 1 {
		t.Errorf("snapshot delayed eviction: evicted %v", evicted)
	}
}

// TestVerifyOutcomeString keeps the failure reasons human-readable; a
// regression here turns audit logs into hashes only.
func TestVerifyOutcomeString(t *testing.T) {
	m := newTestManager()
	s := ssspChain(t, m, 1)
	init, links, _ := s.Snapshot()
	links[1].Batch.Edges++
	vo, err := ReplayChain(m.Kinds().Lookup("sssp"), s.sc, init, links, "", testRunner(1))
	if err != nil {
		t.Fatal(err)
	}
	if vo.Match || vo.Reason == "" {
		t.Errorf("tampered replay: %+v, want non-empty reason", vo)
	}
	if want := fmt.Sprintf("link %d", vo.FailedIndex); !contains(vo.Reason, want) {
		t.Errorf("reason %q does not name %s", vo.Reason, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
