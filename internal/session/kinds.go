package session

import (
	"fmt"
	"math"
	"sync"

	"galois"
	"galois/internal/apps/dmr"
	"galois/internal/apps/sssp"
	"galois/internal/graph"
	"galois/internal/inputs"
	"galois/internal/mesh"
	"galois/internal/rng"
	"galois/internal/stats"
)

// Kind defines one session type: how to build its initial state, how to
// canonically encode a batch, and how to apply a batch. Apply mutates
// state in place — the session lock serializes calls — and returns the
// post-state fingerprint plus the run's result fingerprint, both pure
// functions of (init spec, batch sequence) under deterministic scheduling.
type Kind struct {
	Name string
	// Init derives the initial state from the canonical input derivations
	// in internal/inputs and returns its state fingerprint.
	Init func(sc inputs.Scale, seed uint64) (state any, stateFP uint64)
	// Canon validates b and returns the bytes the chain hash covers.
	// Threads/TimeoutMS/Prev never appear in the encoding.
	Canon func(b *BatchSpec) ([]byte, error)
	// Apply executes one batch against state with the given scheduler
	// options (engine checkout belongs to the serving layer).
	Apply func(state any, b BatchSpec, opts []galois.Option) (stateFP, resultFP uint64, st stats.Stats, err error)
}

// KindSet is an ordered registry of session kinds.
type KindSet struct {
	mu    sync.RWMutex
	kinds map[string]*Kind
	names []string
}

// NewKindSet returns an empty kind set.
func NewKindSet() *KindSet { return &KindSet{kinds: make(map[string]*Kind)} }

// Register adds k; duplicate names panic (a config bug).
func (ks *KindSet) Register(k *Kind) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if _, dup := ks.kinds[k.Name]; dup {
		panic("session: duplicate kind " + k.Name)
	}
	ks.kinds[k.Name] = k
	ks.names = append(ks.names, k.Name)
}

// Lookup returns the kind named name, or nil.
func (ks *KindSet) Lookup(name string) *Kind {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return ks.kinds[name]
}

// Names returns the registered names in registration order.
func (ks *KindSet) Names() []string {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return append([]string(nil), ks.names...)
}

// dmrState pins the live mesh between batches. Refinement replaces
// elements, so the anchor moves with each batch.
type dmrState struct {
	root *mesh.Element
}

// ssspState pins the weighted graph; reweight batches perturb W in place
// and the result fingerprint is the SSSP distance fingerprint after the
// perturbation.
type ssspState struct {
	g    *graph.Weighted
	o    sssp.Options
	maxW uint32
}

// weightFP fingerprints the graph's weight array in edge-index order
// (deterministic: CSR layout is a pure function of the input derivation).
func weightFP(w []uint32) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	fp := uint64(offset64)
	for _, x := range w {
		fp = (fp ^ uint64(x)) * prime64
	}
	return fp
}

// DefaultKinds returns the standard session kinds: "dmr" (mesh refinement
// at a per-batch quality bound) and "sssp" (edge-weight perturbation plus
// re-solve on the pinned graph).
func DefaultKinds() *KindSet {
	ks := NewKindSet()
	ks.Register(&Kind{
		Name: "dmr",
		Init: func(sc inputs.Scale, seed uint64) (any, uint64) {
			root := inputs.DMRMesh(sc.DMRPoints, seed)
			return &dmrState{root: root}, mesh.Fingerprint(root, false)
		},
		Canon: func(b *BatchSpec) ([]byte, error) {
			if b.Op != "refine" {
				return nil, fmt.Errorf("dmr session: unknown op %q (want refine)", b.Op)
			}
			return canonRefine(b)
		},
		Apply: func(state any, b BatchSpec, opts []galois.Option) (uint64, uint64, stats.Stats, error) {
			st := state.(*dmrState)
			// The bound arrives in centidegrees so the canonical encoding
			// stays integral; the cosine is derived deterministically here.
			q := dmr.Quality{
				CosBound: math.Cos(float64(b.AngleCentideg) / 100 * math.Pi / 180),
				MinEdge2: 1e-10,
			}
			res := dmr.Galois(st.root, q, opts...)
			st.root = res.Root
			fp := res.Fingerprint()
			return fp, fp, res.Stats, nil
		},
	})
	ks.Register(&Kind{
		Name: "sssp",
		Init: func(sc inputs.Scale, seed uint64) (any, uint64) {
			g := inputs.SSSPGraph(sc.SSSPNodes, sc.SSSPDegree, sc.SSSPMaxW, seed)
			return &ssspState{g: g, o: sssp.DefaultOptions(sc.SSSPMaxW), maxW: sc.SSSPMaxW}, weightFP(g.W)
		},
		Canon: func(b *BatchSpec) ([]byte, error) {
			if b.Op != "reweight" {
				return nil, fmt.Errorf("sssp session: unknown op %q (want reweight)", b.Op)
			}
			return canonReweight(b)
		},
		Apply: func(state any, b BatchSpec, opts []galois.Option) (uint64, uint64, stats.Stats, error) {
			st := state.(*ssspState)
			reweight(st.g, st.maxW, b.Edges, b.Seed)
			res := sssp.Galois(st.g, 0, st.o, opts...)
			return weightFP(st.g.W), res.Fingerprint(), res.Stats, nil
		},
	})
	return ks
}

// reweight applies count seeded edge-weight perturbations to g. Each draw
// picks a node, one of its out-edges and a fresh weight; the reverse edge
// (the graph is symmetrized) gets the same weight so the graph stays an
// undirected weighting. The stream is a pure function of seed, so a
// replay reproduces the exact perturbation sequence.
func reweight(g *graph.Weighted, maxW uint32, count int, seed uint64) {
	r := rng.New(rng.Mix64(seed ^ 0x5e551044ee1d5eed))
	n := g.N()
	for i := 0; i < count; i++ {
		u := r.Intn(n)
		nbrs := g.Neighbors(u)
		if len(nbrs) == 0 {
			// Draw consumed; isolated nodes simply skip. Still deterministic.
			continue
		}
		slot := r.Intn(len(nbrs))
		w := uint32(r.Uint64n(uint64(maxW))) + 1
		lo, _ := g.EdgeRange(u)
		g.W[lo+int64(slot)] = w
		v := int(nbrs[slot])
		vlo, _ := g.EdgeRange(v)
		for j, x := range g.Neighbors(v) {
			if int(x) == u {
				g.W[vlo+int64(j)] = w
				break
			}
		}
	}
}
