package session

import (
	"crypto/sha256"
	"strings"
	"testing"
)

// TestCanonEncodingsInjective: no two distinct specs may share an
// encoding — length prefixes must prevent field-boundary ambiguity.
func TestCanonEncodingsInjective(t *testing.T) {
	mustRefine := func(angle int) []byte {
		b, err := canonRefine(&BatchSpec{Op: "refine", AngleCentideg: angle})
		if err != nil {
			t.Fatalf("refine %d: %v", angle, err)
		}
		return b
	}
	mustReweight := func(edges int, seed uint64) []byte {
		b, err := canonReweight(&BatchSpec{Op: "reweight", Edges: edges, Seed: seed})
		if err != nil {
			t.Fatalf("reweight %d/%d: %v", edges, seed, err)
		}
		return b
	}
	encs := map[string]string{
		"init dmr":         string(canonInit(InitSpec{Kind: "dmr", Variant: "g-d", Scale: "small", Seed: 42})),
		"init dmr seed 43": string(canonInit(InitSpec{Kind: "dmr", Variant: "g-d", Scale: "small", Seed: 43})),
		"init dmr g-dnc":   string(canonInit(InitSpec{Kind: "dmr", Variant: "g-dnc", Scale: "small", Seed: 42})),
		// Field-boundary probe: ("dm","rg-d") must not collide with ("dmr","g-d").
		"init boundary":  string(canonInit(InitSpec{Kind: "dm", Variant: "rg-d", Scale: "small", Seed: 42})),
		"tombstone idle": string(canonTombstone("idle")),
		"tombstone closed": string(canonTombstone("closed")),
		"refine 2500":    string(mustRefine(2500)),
		"refine 2501":    string(mustRefine(2501)),
		"reweight 16/1":  string(mustReweight(16, 1)),
		"reweight 16/2":  string(mustReweight(16, 2)),
		"reweight 17/1":  string(mustReweight(17, 1)),
	}
	seen := map[string]string{}
	for name, enc := range encs {
		if enc[0] != canonVersion {
			t.Errorf("%s: encoding does not lead with the version byte", name)
		}
		if prev, dup := seen[enc]; dup {
			t.Errorf("encoding collision: %q and %q produce identical bytes", prev, name)
		}
		seen[enc] = name
	}
}

// TestCanonValidation pins the batch parameter ranges.
func TestCanonValidation(t *testing.T) {
	for _, angle := range []int{0, -1, 3001} {
		if _, err := canonRefine(&BatchSpec{Op: "refine", AngleCentideg: angle}); err == nil {
			t.Errorf("refine angle %d: want range error", angle)
		}
	}
	for _, edges := range []int{0, -5, 1<<16 + 1} {
		if _, err := canonReweight(&BatchSpec{Op: "reweight", Edges: edges}); err == nil {
			t.Errorf("reweight edges %d: want range error", edges)
		}
	}
	if _, err := canonRefine(&BatchSpec{Op: "refine", AngleCentideg: 3000}); err != nil {
		t.Errorf("refine angle 3000 (inclusive bound): %v", err)
	}
	if _, err := canonReweight(&BatchSpec{Op: "reweight", Edges: 1 << 16}); err != nil {
		t.Errorf("reweight edges 65536 (inclusive bound): %v", err)
	}
}

// TestChainHashSensitivity: the link hash must react to every one of its
// four inputs, and to nothing else (recomputation is deterministic).
func TestChainHashSensitivity(t *testing.T) {
	var prev, prev2 [sha256.Size]byte
	prev2[0] = 1
	payload := canonTombstone("idle")
	base := chainHash(prev, payload, 10, 20)
	if base != chainHash(prev, payload, 10, 20) {
		t.Fatal("chainHash not deterministic")
	}
	variants := map[string][sha256.Size]byte{
		"prev":     chainHash(prev2, payload, 10, 20),
		"payload":  chainHash(prev, canonTombstone("closed"), 10, 20),
		"stateFP":  chainHash(prev, payload, 11, 20),
		"resultFP": chainHash(prev, payload, 10, 21),
	}
	for name, got := range variants {
		if got == base {
			t.Errorf("chainHash ignores %s", name)
		}
	}
}

// TestChainHexRoundtrip covers the receipt-presentation helpers.
func TestChainHexRoundtrip(t *testing.T) {
	var c [sha256.Size]byte
	for i := range c {
		c[i] = byte(i * 7)
	}
	s := chainHex(c)
	if len(s) != 64 || strings.ToLower(s) != s {
		t.Fatalf("chainHex %q: want 64 lowercase hex chars", s)
	}
	back, err := chainFromHex(s)
	if err != nil || back != c {
		t.Fatalf("roundtrip failed: %v", err)
	}
	for _, bad := range []string{"", "zz", s[:62], s + "00"} {
		if _, err := chainFromHex(bad); err == nil {
			t.Errorf("chainFromHex(%q): want error", bad)
		}
	}
	if got := fpHex(0xdeadbeef); got != "00000000deadbeef" {
		t.Errorf("fpHex = %q, want 16-digit zero-padded hex", got)
	}
}
