// Package session makes mutation a first-class, verifiable API. A session
// pins a long-lived mutable input (a mesh, a weighted graph) server-side;
// clients submit deterministic mutation batches against it and get back a
// receipt per batch. Each receipt's fingerprint covers the previous
// receipt's fingerprint, the canonical batch encoding, and the post-state
// fingerprint — a hash chain, so the entire session history is checkable
// from the last receipt alone: replaying the recorded batches from the
// recorded initial spec must reproduce every link byte-for-byte.
//
// The chain inherits the paper's portability property: a batch's state and
// result fingerprints are independent of machine and thread count under
// the deterministic scheduler, and per-batch thread counts are excluded
// from the canonical encoding, so the same batch sequence yields the same
// chain no matter how it was scheduled.
//
// This package is determinism-critical (detlint: critical): it never reads
// the wall clock (timestamps are injected by the serving layer), never
// iterates a map on a path that feeds a hash, and derives all randomness
// from explicit batch seeds.
package session

import (
	"errors"
	"fmt"
)

// InitSpec is the canonical description of a session's initial state: the
// session kind plus the (scale, seed) cell its input is derived from and
// the scheduler variant its batches run under. Threads is a serving-time
// default, not part of the canonical encoding — the chain must be
// identical across thread counts.
type InitSpec struct {
	Kind    string `json:"kind"`
	Variant string `json:"variant,omitempty"`
	Scale   string `json:"scale,omitempty"`
	Seed    uint64 `json:"seed"`
	Threads int    `json:"threads,omitempty"`
}

func (is InitSpec) String() string {
	return fmt.Sprintf("%s/%s/%s/seed%d", is.Kind, is.Variant, is.Scale, is.Seed)
}

// BatchSpec is one mutation batch. Exactly the operation fields participate
// in the canonical encoding (per kind); Threads, TimeoutMS and Prev are
// serving-time controls:
//
//   - Threads overrides the session's thread count for this batch only.
//   - TimeoutMS bounds queue wait + execution for this batch.
//   - Prev, when set, is the chain fingerprint the client believes is the
//     current head. If it names an older link whose batch encoding matches
//     this one, the recorded receipt is returned instead of re-executing —
//     the idempotent-retry path. If it mismatches the head otherwise, the
//     batch is rejected (the client lost a race and must refetch).
type BatchSpec struct {
	// Op selects the mutation: "refine" (dmr), "reweight" (sssp),
	// "tombstone" (server-generated eviction marker; rejected on submit).
	Op string `json:"op"`
	// AngleCentideg is refine's quality bound in centidegrees (0, 3000].
	AngleCentideg int `json:"angle_centideg,omitempty"`
	// Edges is reweight's number of edge-weight perturbations (0, 65536].
	Edges int `json:"edges,omitempty"`
	// Seed drives reweight's perturbation stream.
	Seed uint64 `json:"seed,omitempty"`
	// Reason is set on tombstone links only ("idle", "closed").
	Reason string `json:"reason,omitempty"`

	Prev      string `json:"prev,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// Link is one receipt in the chain. Index 0 is the genesis link (Op
// "init", hashing the canonical init spec); eviction appends a final
// tombstone link. Chain is hex SHA-256; StateFP/ResultFP are the %016x
// fingerprints the hash covers.
type Link struct {
	Index    int       `json:"index"`
	Prev     string    `json:"prev"`
	Batch    BatchSpec `json:"batch"`
	StateFP  string    `json:"state_fp"`
	ResultFP string    `json:"result_fp,omitempty"`
	Chain    string    `json:"chain"`

	// Replayed marks a response served from the recorded chain (idempotent
	// retry) rather than a fresh execution. Not part of the hash.
	Replayed bool `json:"replayed,omitempty"`
}

// VerifyOutcome reports a chain replay. FailedIndex is -1 on a full match,
// else the first link whose recomputation disagreed with the record.
type VerifyOutcome struct {
	Match       bool   `json:"match"`
	FailedIndex int    `json:"failed_index"`
	Links       int    `json:"links"`
	FinalChain  string `json:"final_chain"`
	Reason      string `json:"reason,omitempty"`
}

// Sentinel errors the serving layer maps to HTTP statuses.
var (
	// ErrEvicted: the session's state is gone (idle eviction or close);
	// its chain remains readable and verifiable.
	ErrEvicted = errors.New("session evicted")
	// ErrPrevMismatch: the batch named a Prev that is neither the current
	// head nor a replayable historical link.
	ErrPrevMismatch = errors.New("prev fingerprint does not match chain head")
	// ErrTooManySessions: the manager is at its live-session cap.
	ErrTooManySessions = errors.New("too many live sessions")
	// ErrNotFound: no session with that id.
	ErrNotFound = errors.New("no such session")
)
