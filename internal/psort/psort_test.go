package psort

import (
	"slices"
	"testing"
	"testing/quick"

	"galois/internal/rng"
)

func cmpInt(a, b int) int { return a - b }

func TestSmallInputs(t *testing.T) {
	for _, in := range [][]int{{}, {1}, {2, 1}, {3, 1, 2}, {1, 1, 1}} {
		got := append([]int(nil), in...)
		Sort(got, cmpInt, 4)
		want := append([]int(nil), in...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("in=%v got=%v want=%v", in, got, want)
		}
	}
}

func TestLargeRandom(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1 << 13, 1<<16 + 17, 1 << 18} {
		for _, threads := range []int{1, 3, 8} {
			in := make([]int, n)
			for i := range in {
				in[i] = r.Intn(1 << 20)
			}
			got := append([]int(nil), in...)
			Sort(got, cmpInt, threads)
			want := append([]int(nil), in...)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d threads=%d: mismatch", n, threads)
			}
		}
	}
}

func TestStability(t *testing.T) {
	type kv struct{ k, v int }
	r := rng.New(5)
	n := 1 << 16
	in := make([]kv, n)
	for i := range in {
		in[i] = kv{k: r.Intn(100), v: i}
	}
	got := append([]kv(nil), in...)
	Sort(got, func(a, b kv) int { return a.k - b.k }, 8)
	for i := 1; i < n; i++ {
		if got[i-1].k > got[i].k {
			t.Fatal("not sorted")
		}
		if got[i-1].k == got[i].k && got[i-1].v > got[i].v {
			t.Fatal("not stable")
		}
	}
}

func TestPropertySortedPermutation(t *testing.T) {
	property := func(seed uint64, threadsRaw uint8) bool {
		r := rng.New(seed)
		threads := int(threadsRaw%8) + 1
		n := r.Intn(1 << 15)
		in := make([]int, n)
		counts := map[int]int{}
		for i := range in {
			in[i] = r.Intn(1000)
			counts[in[i]]++
		}
		Sort(in, cmpInt, threads)
		for i := 1; i < n; i++ {
			if in[i-1] > in[i] {
				return false
			}
		}
		for _, v := range in {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSort1M(b *testing.B) {
	r := rng.New(9)
	base := make([]int, 1<<20)
	for i := range base {
		base[i] = int(r.Uint64())
	}
	work := make([]int, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		Sort(work, cmpInt, 8)
	}
}
