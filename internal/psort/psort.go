// Package psort provides a deterministic parallel merge sort, used by the
// DIG scheduler to order large generations of dynamically created tasks
// (the sort in Figure 2 line 5). The output is the unique sorted
// permutation for any comparison function that never reports equality for
// distinct elements (the scheduler's (parent, k) keys are unique), so
// parallelism cannot perturb determinism; for equal elements the merge is
// stable.
package psort

import (
	"slices"
	"sync"
)

// serialThreshold is the block size below which sorting inline beats
// spawning.
const serialThreshold = 1 << 13

// Sort sorts items in place with cmp (negative = a before b) using up to
// nthreads goroutines.
func Sort[T any](items []T, cmp func(a, b T) int, nthreads int) {
	SortScratch(items, cmp, nthreads, nil)
}

// SortScratch is Sort with a caller-provided merge buffer. The buffer is
// grown when too small and returned so callers that sort repeatedly (the
// DIG scheduler sorts every generation's children) can reuse it and keep
// their steady state allocation-free.
func SortScratch[T any](items []T, cmp func(a, b T) int, nthreads int, scratch []T) []T {
	n := len(items)
	if nthreads <= 1 || n <= serialThreshold {
		slices.SortStableFunc(items, cmp)
		return scratch
	}
	blocks := nthreads
	if n/blocks < serialThreshold/4 {
		blocks = n / (serialThreshold / 4)
		if blocks < 2 {
			slices.SortStableFunc(items, cmp)
			return scratch
		}
	}
	// Block boundaries.
	bounds := make([]int, blocks+1)
	for i := 0; i <= blocks; i++ {
		bounds[i] = n * i / blocks
	}
	// Sort blocks in parallel.
	var wg sync.WaitGroup
	for b := 0; b < blocks; b++ {
		wg.Add(1)
		//detlint:ignore goroutineorder each goroutine stable-sorts a disjoint static block; the result is a pure function of the input regardless of completion order
		go func(lo, hi int) {
			defer wg.Done()
			slices.SortStableFunc(items[lo:hi], cmp)
		}(bounds[b], bounds[b+1])
	}
	wg.Wait()
	// Iterative pairwise merging, each level's merges in parallel.
	if cap(scratch) < n {
		scratch = make([]T, n)
	}
	buf := scratch[:n]
	src, dst := items, buf
	for width := 1; width < blocks; width *= 2 {
		var mw sync.WaitGroup
		for b := 0; b < blocks; b += 2 * width {
			loIdx := b
			midIdx := min(b+width, blocks)
			hiIdx := min(b+2*width, blocks)
			lo, mid, hi := bounds[loIdx], bounds[midIdx], bounds[hiIdx]
			mw.Add(1)
			//detlint:ignore goroutineorder the merge tree is fixed by block indices, each merge writes a disjoint dst range, and levels are joined before the next begins
			go func(lo, mid, hi int) {
				defer mw.Done()
				mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], cmp)
			}(lo, mid, hi)
		}
		mw.Wait()
		src, dst = dst, src
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
	return scratch
}

// mergeInto merges the sorted runs a and b into out (stable: ties prefer a).
func mergeInto[T any](out, a, b []T, cmp func(x, y T) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(b[j], a[i]) < 0 {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}
