package para

import "sync"

// Pool is a persistent worker pool: a fixed set of goroutines that park
// between runs and execute scheduler bodies on demand. It is the
// persistent-worker substrate both Galois schedulers run on when driven
// through an engine (internal/core.Engine): Run replaces a per-call
// `go`-spawn fan-out with a signal to already-running workers, so the
// steady state of a repeatedly reused engine spawns no goroutines and
// allocates nothing per run.
//
// Determinism: like Run (the one-shot fork-join), the pool only decides
// WHICH goroutine executes body(tid) — the schedulers built on top order
// every cross-thread merge by round barrier and task id, so worker wakeup
// order cannot reach committed output.
//
// A Pool is not safe for concurrent Run calls; the schedulers serialize
// runs per engine. Workers are spawned lazily, so a Pool that only ever
// runs single-threaded costs nothing.
type Pool struct {
	// starts[i] wakes worker tid i+1 (tid 0 is the caller of Run).
	starts []chan struct{}
	wg     sync.WaitGroup
	body   func(int)
	closed bool
	// wakes counts worker wakeups over the pool's lifetime. Run wakes
	// exactly parties-1 workers — a run requesting fewer parties than the
	// pool holds must leave the surplus workers parked on their channels,
	// with no wake/sleep cycle (an 8-worker pool serving a t2 run wakes
	// one worker, not seven). The counter makes that property testable.
	wakes uint64
}

// NewPool returns an empty pool. Workers are spawned on first demand by
// Run, so the hint-free constructor is cheap.
func NewPool() *Pool { return &Pool{} }

// Workers returns the number of parked worker goroutines (excluding the
// caller, which always acts as tid 0).
func (p *Pool) Workers() int { return len(p.starts) }

// Run executes body(tid) for every tid in [0, parties), with tid 0 on the
// calling goroutine and the rest on pool workers, and returns when all
// have finished — the same contract as para.Run, minus the per-call
// goroutine spawns. The channel send/receive pairs order the write of
// p.body before every worker's read, and wg.Wait orders every worker's
// final read before Run returns.
func (p *Pool) Run(parties int, body func(tid int)) {
	if parties <= 1 {
		body(0)
		return
	}
	if p.closed {
		panic("para: Run on a closed Pool")
	}
	p.ensure(parties - 1)
	p.body = body
	p.wg.Add(parties - 1)
	// Wake ONLY the participating workers: tids >= parties stay parked on
	// their channels. Each send is a direct handoff to a goroutine already
	// blocked in receive, so waking k workers costs k channel operations
	// and zero spurious wakeups for the rest of the pool.
	for i := 0; i < parties-1; i++ {
		p.starts[i] <- struct{}{}
	}
	p.wakes += uint64(parties - 1)
	body(0)
	p.wg.Wait()
	// Drop the closure so the pool does not pin a finished run's state.
	p.body = nil
}

// Wakes returns the total worker wakeups Run has performed. Read it only
// between runs (it is written by Run on the caller's goroutine).
func (p *Pool) Wakes() uint64 { return p.wakes }

// ensure grows the worker set to at least k parked workers.
func (p *Pool) ensure(k int) {
	for len(p.starts) < k {
		start := make(chan struct{})
		tid := len(p.starts) + 1
		p.starts = append(p.starts, start)
		//detlint:ignore goroutineorder persistent-worker launch: workers are identified by tid, park on their own channel between runs, and the schedulers driving the pool order all cross-thread merges by round barrier and task id
		go func() {
			for range start {
				p.body(tid)
				p.wg.Done()
			}
		}()
	}
}

// Close retires all parked workers. The pool must not be running. Close is
// idempotent; Run after Close panics.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, start := range p.starts {
		close(start)
	}
	p.starts = nil
}
