package para

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIterations(t *testing.T) {
	for _, threads := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			seen := make([]atomic.Int32, n)
			For(threads, n, func(tid, i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("threads=%d n=%d: iteration %d ran %d times", threads, n, i, got)
				}
			}
		}
	}
}

func TestForChunkedSmallChunk(t *testing.T) {
	var sum atomic.Int64
	ForChunked(4, 1000, 1, func(tid, i int) { sum.Add(int64(i)) })
	if got := sum.Load(); got != 499500 {
		t.Fatalf("sum = %d, want 499500", got)
	}
}

func TestForBlockedPartition(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 10, 101} {
			covered := make([]atomic.Int32, n)
			ForBlocked(threads, n, func(tid, lo, hi int) {
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			for i := range covered {
				if covered[i].Load() != 1 {
					t.Fatalf("threads=%d n=%d: index %d covered %d times", threads, n, i, covered[i].Load())
				}
			}
		}
	}
}

func TestForBlockedBalance(t *testing.T) {
	// Block sizes must differ by at most one.
	sizes := map[int]int{}
	var mu sync.Mutex
	ForBlocked(7, 100, func(tid, lo, hi int) {
		mu.Lock()
		sizes[tid] = hi - lo
		mu.Unlock()
	})
	minS, maxS := 1<<30, 0
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS-minS > 1 {
		t.Fatalf("unbalanced blocks: min=%d max=%d", minS, maxS)
	}
}

func TestRunAllThreads(t *testing.T) {
	var mask atomic.Int64
	Run(8, func(tid int) { mask.Add(1 << tid) })
	if mask.Load() != (1<<8)-1 {
		t.Fatalf("mask = %x", mask.Load())
	}
}

func TestBarrierPhases(t *testing.T) {
	const parties = 6
	const phases = 50
	b := NewBarrier(parties)
	var counter atomic.Int64
	Run(parties, func(tid int) {
		for p := 0; p < phases; p++ {
			counter.Add(1)
			b.Wait()
			// After the barrier, all parties of this phase arrived.
			if got := counter.Load(); got < int64((p+1)*parties) {
				t.Errorf("phase %d: counter %d < %d", p, got, (p+1)*parties)
			}
			b.Wait()
		}
	})
	if counter.Load() != parties*phases {
		t.Fatalf("counter = %d", counter.Load())
	}
}

func TestBlockRangePureAndBalanced(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 8} {
		for _, n := range []int{0, 1, 5, 7, 8, 100, 101} {
			prevHi := 0
			for tid := 0; tid < workers; tid++ {
				lo, hi := BlockRange(n, workers, tid)
				lo2, hi2 := BlockRange(n, workers, tid)
				if lo != lo2 || hi != hi2 {
					t.Fatalf("n=%d workers=%d tid=%d: not a pure function", n, workers, tid)
				}
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d tid=%d: gap/overlap at %d (want %d)", n, workers, tid, lo, prevHi)
				}
				if size := hi - lo; size < n/workers || size > n/workers+1 {
					t.Fatalf("n=%d workers=%d tid=%d: block size %d", n, workers, tid, size)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: blocks end at %d", n, workers, prevHi)
			}
		}
	}
	// tid beyond the item count yields an empty range (workers > n).
	if lo, hi := BlockRange(2, 1, 5); lo != hi {
		t.Fatalf("out-of-range tid got [%d,%d)", lo, hi)
	}
}

// TestBarrierWaitDo pins the fused-serial-section contract: the callback
// runs exactly once per crossing, while every other party is inside the
// barrier (so it has exclusive access to shared state), and its writes are
// visible to all parties after release.
func TestBarrierWaitDo(t *testing.T) {
	const parties = 5
	const phases = 200
	b := NewBarrier(parties)
	var calls atomic.Int64
	serial := 0 // written only by callbacks; read by all after release
	Run(parties, func(tid int) {
		for p := 0; p < phases; p++ {
			b.WaitDo(func() {
				calls.Add(1)
				serial++ // exclusive: no lock needed
			})
			if serial != p+1 {
				t.Errorf("tid %d phase %d: serial = %d, want %d", tid, p, serial, p+1)
				return
			}
		}
	})
	if got := calls.Load(); got != phases {
		t.Fatalf("callback ran %d times over %d crossings", got, phases)
	}
}

func TestBarrierWaitDoNilIsWait(t *testing.T) {
	b := NewBarrier(3)
	var counter atomic.Int64
	Run(3, func(tid int) {
		counter.Add(1)
		b.WaitDo(nil)
		if counter.Load() != 3 {
			t.Errorf("tid %d released before all parties arrived", tid)
		}
	})
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must not block
	}
}

func TestPoolRunAllTids(t *testing.T) {
	p := NewPool()
	defer p.Close()
	for run := 0; run < 5; run++ {
		var mask atomic.Int64
		p.Run(8, func(tid int) { mask.Add(1 << tid) })
		if mask.Load() != (1<<8)-1 {
			t.Fatalf("run %d: mask = %x", run, mask.Load())
		}
	}
	if p.Workers() != 7 {
		t.Fatalf("workers = %d, want 7 (tid 0 is the caller)", p.Workers())
	}
}

func TestPoolGrowsLazily(t *testing.T) {
	p := NewPool()
	defer p.Close()
	if p.Workers() != 0 {
		t.Fatalf("fresh pool has %d workers", p.Workers())
	}
	p.Run(1, func(tid int) {
		if tid != 0 {
			t.Errorf("single-party run on tid %d", tid)
		}
	})
	if p.Workers() != 0 {
		t.Fatal("single-party run spawned workers")
	}
	p.Run(3, func(tid int) {})
	if p.Workers() != 2 {
		t.Fatalf("workers = %d after 3-party run", p.Workers())
	}
	p.Run(6, func(tid int) {})
	if p.Workers() != 5 {
		t.Fatalf("workers = %d after 6-party run", p.Workers())
	}
	// Shrinking party counts reuse a subset; the pool never shrinks.
	var mask atomic.Int64
	p.Run(2, func(tid int) { mask.Add(1 << tid) })
	if mask.Load() != 3 {
		t.Fatalf("2-party mask = %x", mask.Load())
	}
	if p.Workers() != 5 {
		t.Fatalf("pool shrank to %d workers", p.Workers())
	}
}

// TestPoolPartialRunParksNonParticipants pins the partial-run contract: a
// run requesting fewer parties than the pool holds wakes exactly parties-1
// workers and never runs the body on — or cycles the sleep of — the
// surplus workers. An 8-grown pool serving t2 runs must behave like a
// 2-worker pool, not wake/park six bystanders per round trip.
func TestPoolPartialRunParksNonParticipants(t *testing.T) {
	p := NewPool()
	defer p.Close()
	p.Run(8, func(tid int) {}) // grow to 7 parked workers
	if got := p.Wakes(); got != 7 {
		t.Fatalf("wakes after 8-party run = %d, want 7", got)
	}
	for run := 0; run < 10; run++ {
		var mask atomic.Int64
		p.Run(2, func(tid int) { mask.Add(1 << tid) })
		if mask.Load() != 3 {
			t.Fatalf("run %d: 2-party run touched tids %b, want only 0 and 1",
				run, mask.Load())
		}
	}
	if got := p.Wakes(); got != 17 {
		t.Fatalf("wakes after ten 2-party runs = %d, want 17 (7 + 10×1): surplus workers must stay parked", got)
	}
	if p.Workers() != 7 {
		t.Fatalf("pool shrank to %d workers", p.Workers())
	}
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	p := NewPool()
	defer p.Close()
	body := func(tid int) {}
	p.Run(4, body) // spawn
	allocs := testing.AllocsPerRun(100, func() { p.Run(4, body) })
	if allocs > 0 {
		t.Fatalf("steady-state pool Run allocates %.1f objects", allocs)
	}
}

func TestPoolCloseIsIdempotentAndRunPanics(t *testing.T) {
	p := NewPool()
	p.Run(4, func(tid int) {})
	p.Close()
	p.Close()
	// Single-party runs bypass the workers and stay legal semantically,
	// but multi-party runs on a closed pool must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Run on closed pool")
		}
	}()
	p.Run(2, func(tid int) {})
}

func TestPoolBodyPanicPropagates(t *testing.T) {
	// tid 0 runs on the caller, so a panic in the user body (which the
	// schedulers funnel through tid 0) surfaces on the Run caller.
	p := NewPool()
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	p.Run(1, func(tid int) { panic("boom") })
}
