// Package para provides the thread-pool substrate used by both schedulers:
// a fixed set of workers, a reusable barrier, and parallel-for loops with
// deterministic-output chunked partitioning (the `doall` of Figure 3).
package para

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultThreads returns the default worker count: GOMAXPROCS.
func DefaultThreads() int { return runtime.GOMAXPROCS(0) }

// For runs body(tid, i) for every i in [0, n) using nthreads goroutines.
// Iterations are distributed dynamically in chunks; the assignment of
// iterations to threads is non-deterministic but every iteration runs
// exactly once. Deterministic schedulers may use it freely for phases whose
// outcome is order-independent.
func For(nthreads, n int, body func(tid, i int)) {
	ForChunked(nthreads, n, 64, body)
}

// ForChunked is For with an explicit chunk size.
func ForChunked(nthreads, n, chunk int, body func(tid, i int)) {
	if n == 0 {
		return
	}
	if nthreads <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := nthreads
	if workers > n {
		workers = n
	}
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		//detlint:ignore goroutineorder fork-join: every index runs exactly once and results are stored into index-addressed slots; wg.Wait joins before any result is read
		go func(tid int) {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(tid, i)
				}
			}
		}(t)
	}
	wg.Wait()
}

// BlockRange returns the half-open range [lo, hi) of thread tid in a static
// block partition of n items over `workers` threads: the first n%workers
// threads receive one extra item. The boundaries are a pure function of
// (n, workers, tid), which is what makes a phase whose output slot depends
// only on its index deterministic under this partition. tid >= n yields an
// empty range.
func BlockRange(n, workers, tid int) (lo, hi int) {
	if workers <= 1 {
		if tid == 0 {
			return 0, n
		}
		return n, n
	}
	per := n / workers
	rem := n % workers
	lo = tid * per
	if tid < rem {
		lo += tid
	} else {
		lo += rem
	}
	hi = lo + per
	if tid < rem {
		hi++
	}
	return lo, hi
}

// ForBlocked runs body(tid, lo, hi) over a static block partition of [0, n):
// thread tid receives one contiguous range (see BlockRange). Useful when
// per-thread sequential order within a block matters or when the body
// amortizes work across its whole range.
func ForBlocked(nthreads, n int, body func(tid, lo, hi int)) {
	if n == 0 {
		return
	}
	if nthreads <= 1 {
		body(0, 0, n)
		return
	}
	workers := nthreads
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		lo, hi := BlockRange(n, workers, t)
		//detlint:ignore goroutineorder fork-join over a static block partition: block boundaries are a pure function of (nthreads, n), and wg.Wait joins before results are read
		go func(tid, lo, hi int) {
			defer wg.Done()
			body(tid, lo, hi)
		}(t, lo, hi)
	}
	wg.Wait()
}

// Run spawns nthreads workers running body(tid) and waits for all of them.
// This is the backbone of the persistent-worker scheduler loops.
func Run(nthreads int, body func(tid int)) {
	if nthreads <= 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(nthreads)
	for t := 0; t < nthreads; t++ {
		//detlint:ignore goroutineorder persistent-worker launch: workers are identified by tid and the schedulers built on Run order all cross-thread merges by round barrier and task id
		go func(tid int) {
			defer wg.Done()
			body(tid)
		}(t)
	}
	wg.Wait()
}

// Barrier is a reusable sense-reversing barrier for a fixed number of
// parties. It underlies the `barrier` statements in Figure 2.
type Barrier struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Uint32
	mu      sync.Mutex
	cond    sync.Cond // by value: no allocation beyond the Barrier itself
}

// NewBarrier returns a barrier for parties participants.
func NewBarrier(parties int) *Barrier {
	b := &Barrier{parties: int32(parties)}
	b.cond.L = &b.mu
	return b
}

// Wait blocks until all parties have called Wait for the current phase.
// The last arriving party releases the others. Waiting escalates:
// spin (cheap when all parties have a processor), then yield, then park
// on a condition variable. The parked fallback matters whenever parties
// outnumber available processors — a spinning waiter with its own idle P
// makes Gosched a no-op, so it burns a full OS timeslice before the
// straggler it is waiting on gets scheduled. Under job-server
// oversubscription that turns microsecond rounds into millisecond rounds;
// parking instead frees the processor for whoever has real work.
func (b *Barrier) Wait() { b.WaitDo(nil) }

// WaitDo is Wait with a fused serial section: the last party to arrive runs
// fn (if non-nil) before releasing the others. Every other party is blocked
// inside the barrier while fn runs, so fn has exclusive access to all state
// shared by the parties — it is a serial section that costs one barrier
// crossing instead of the two a "barrier; worker 0 works; barrier" pattern
// pays. All parties of one phase must pass equivalent callbacks (only the
// last arriver's runs, and which party arrives last is not deterministic);
// state written by fn is visible to every party after release via the
// release store of the barrier sense.
func (b *Barrier) WaitDo(fn func()) {
	if b.parties <= 1 {
		if fn != nil {
			fn()
		}
		return
	}
	sense := b.sense.Load()
	if b.count.Add(1) == b.parties {
		if fn != nil {
			fn()
		}
		b.count.Store(0)
		b.sense.Store(sense + 1)
		// Pairing the store with a lock/unlock of mu guarantees any
		// party that checked the sense under mu is already in cond.Wait
		// and will receive the broadcast — no missed wakeups.
		b.mu.Lock()
		//lint:ignore SA2001 empty critical section orders sense store before broadcast
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	spinLimit := 64
	if runtime.GOMAXPROCS(0) < int(b.parties) || runtime.NumCPU() < int(b.parties) {
		spinLimit = 0
	}
	for spins := 0; spins < spinLimit; spins++ {
		if b.sense.Load() != sense {
			return
		}
	}
	for yields := 0; yields < 4; yields++ {
		if b.sense.Load() != sense {
			return
		}
		runtime.Gosched()
	}
	b.mu.Lock()
	for b.sense.Load() == sense {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
