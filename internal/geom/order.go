package geom

import (
	"sort"

	"galois/internal/rng"
)

// UniformPoints generates n points uniformly at random in the unit square,
// deterministically in seed. This is the paper's dt/dmr input family
// (§4.2): "points randomly selected from the unit square".
func UniformPoints(n int, seed uint64) []Point {
	r := rng.New(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: r.Float64(), Y: r.Float64()}
	}
	return pts
}

// HilbertSort orders points along a Hilbert space-filling curve of the
// given order over their bounding box, in place. Spatially adjacent points
// become adjacent in the order, which keeps incremental-insertion walks
// short.
func HilbertSort(pts []Point) {
	if len(pts) < 2 {
		return
	}
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		minX = min(minX, p.X)
		minY = min(minY, p.Y)
		maxX = max(maxX, p.X)
		maxY = max(maxY, p.Y)
	}
	sx := maxX - minX
	sy := maxY - minY
	if sx == 0 {
		sx = 1
	}
	if sy == 0 {
		sy = 1
	}
	const order = 16 // 2^16 cells per axis
	const side = 1 << order
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		x := uint32((p.X - minX) / sx * (side - 1))
		y := uint32((p.Y - minY) / sy * (side - 1))
		keys[i] = hilbertD(order, x, y)
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]Point, len(pts))
	for i, j := range idx {
		out[i] = pts[j]
	}
	copy(pts, out)
}

// hilbertD maps cell (x, y) to its distance along a Hilbert curve of the
// given order (standard bit-twiddling conversion).
func hilbertD(order int, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// BRIO reorders points into a biased randomized insertion order (Amenta,
// Choi, Rote): points are shuffled, split into doubling-size rounds, and
// each round is Hilbert-sorted. Incremental Delaunay insertion in this
// order runs in expected O(n log n) time with short locate walks — the
// online reordering the Lonestar dt variant performs (§4.1).
func BRIO(pts []Point, seed uint64) []Point {
	out := append([]Point(nil), pts...)
	r := rng.New(seed)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	// Rounds of doubling size from the end: the last round holds about
	// half the points.
	end := len(out)
	for end > 0 {
		start := end / 2
		HilbertSort(out[start:end])
		end = start
	}
	return out
}
