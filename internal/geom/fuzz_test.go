package geom

import (
	"math"
	"testing"
)

// FuzzOrientConsistency checks predicate invariants on arbitrary float
// inputs: antisymmetry under argument swap and cyclic invariance — the
// properties the mesh code's correctness rests on.
func FuzzOrientConsistency(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 0.0, 1.0)
	f.Add(0.1, 0.1, 0.1, 0.1, 0.1, 0.1)
	f.Add(1e-300, 1e-300, 2e-300, 2e-300, 3e-300, 3.0000000001e-300)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		a, b, c := Point{X: ax, Y: ay}, Point{X: bx, Y: by}, Point{X: cx, Y: cy}
		o := Orient(a, b, c)
		if Orient(b, c, a) != o || Orient(c, a, b) != o {
			t.Fatalf("orientation not cyclic for %v %v %v", a, b, c)
		}
		if Orient(a, c, b) != -o {
			t.Fatalf("orientation not antisymmetric for %v %v %v", a, b, c)
		}
	})
}

// FuzzInCircleSymmetry checks that the in-circle predicate is invariant
// under cyclic permutation of the (CCW) triangle.
func FuzzInCircleSymmetry(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.2, 0.2)
	f.Add(0.0, 0.0, 1.0, 0.0, 0.5, 0.8, 0.5, -0.1)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e30 {
				return
			}
		}
		a, b, c := Point{X: ax, Y: ay}, Point{X: bx, Y: by}, Point{X: cx, Y: cy}
		d := Point{X: dx, Y: dy}
		if Orient(a, b, c) != 1 {
			return // predicate contract requires CCW input
		}
		s := InCircle(a, b, c, d)
		if InCircle(b, c, a, d) != s || InCircle(c, a, b, d) != s {
			t.Fatalf("in-circle not cyclic for %v %v %v %v", a, b, c, d)
		}
	})
}
