// Package geom provides the 2-D computational-geometry substrate for the
// Delaunay benchmarks: points, robust orientation and in-circle predicates,
// circumcenters, angle tests and spatially-local point orderings.
//
// Predicates use a floating-point filter with a conservative error bound
// and fall back to exact rational arithmetic (math/big) in the rare
// near-degenerate cases, following the structure (not the code) of
// Shewchuk's adaptive predicates. Exactness matters doubly here: it keeps
// the mesh structurally sound, and it keeps task neighborhoods — and
// therefore the deterministic schedule — a pure function of the input.
package geom

import (
	"math"
	"math/big"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// epsilon is the double-precision machine epsilon (2^-53).
const epsilon = 1.1102230246251565e-16

// Error-bound coefficients, conservative variants of Shewchuk's constants.
var (
	orientBound   = (3.0 + 16.0*epsilon) * epsilon
	incircleBound = (10.0 + 96.0*epsilon) * epsilon
)

// Orient computes the orientation of the triple (a, b, c):
// +1 if counterclockwise, -1 if clockwise, 0 if collinear. Exact.
func Orient(a, b, c Point) int {
	detleft := (a.X - c.X) * (b.Y - c.Y)
	detright := (a.Y - c.Y) * (b.X - c.X)
	det := detleft - detright
	var detsum float64
	switch {
	case detleft > 0:
		if detright <= 0 {
			return sign(det)
		}
		detsum = detleft + detright
	case detleft < 0:
		if detright >= 0 {
			return sign(det)
		}
		detsum = -detleft - detright
	default:
		return sign(det)
	}
	if det >= orientBound*detsum || -det >= orientBound*detsum {
		return sign(det)
	}
	return orientExact(a, b, c)
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

func orientExact(a, b, c Point) int {
	ax, ay := big.NewFloat(a.X), big.NewFloat(a.Y)
	bx, by := big.NewFloat(b.X), big.NewFloat(b.Y)
	cx, cy := big.NewFloat(c.X), big.NewFloat(c.Y)
	// Use big.Float with enough precision for exact products of doubles
	// (53*2 bits) and exact sums (a few more); 200 bits is ample.
	const prec = 200
	for _, f := range []*big.Float{ax, ay, bx, by, cx, cy} {
		f.SetPrec(prec)
	}
	t1 := new(big.Float).SetPrec(prec).Sub(ax, cx)
	t2 := new(big.Float).SetPrec(prec).Sub(by, cy)
	t3 := new(big.Float).SetPrec(prec).Sub(ay, cy)
	t4 := new(big.Float).SetPrec(prec).Sub(bx, cx)
	l := new(big.Float).SetPrec(prec).Mul(t1, t2)
	r := new(big.Float).SetPrec(prec).Mul(t3, t4)
	return l.Cmp(r)
}

// InCircle reports whether d lies strictly inside the circumcircle of the
// counterclockwise triangle (a, b, c): +1 inside, -1 outside, 0 on the
// circle. Exact.
func InCircle(a, b, c, d Point) int {
	adx := a.X - d.X
	ady := a.Y - d.Y
	bdx := b.X - d.X
	bdy := b.Y - d.Y
	cdx := c.X - d.X
	cdy := c.Y - d.Y

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (math.Abs(bdxcdy)+math.Abs(cdxbdy))*alift +
		(math.Abs(cdxady)+math.Abs(adxcdy))*blift +
		(math.Abs(adxbdy)+math.Abs(bdxady))*clift
	errbound := incircleBound * permanent
	if det > errbound || -det > errbound {
		return sign(det)
	}
	return inCircleExact(a, b, c, d)
}

func inCircleExact(a, b, c, d Point) int {
	// Exact 4x4 determinant over rationals (doubles convert exactly).
	ax := new(big.Rat).SetFloat64(a.X)
	ay := new(big.Rat).SetFloat64(a.Y)
	bx := new(big.Rat).SetFloat64(b.X)
	by := new(big.Rat).SetFloat64(b.Y)
	cx := new(big.Rat).SetFloat64(c.X)
	cy := new(big.Rat).SetFloat64(c.Y)
	dx := new(big.Rat).SetFloat64(d.X)
	dy := new(big.Rat).SetFloat64(d.Y)

	sub := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Sub(p, q) }
	mul := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Mul(p, q) }
	add := func(p, q *big.Rat) *big.Rat { return new(big.Rat).Add(p, q) }

	adx, ady := sub(ax, dx), sub(ay, dy)
	bdx, bdy := sub(bx, dx), sub(by, dy)
	cdx, cdy := sub(cx, dx), sub(cy, dy)

	alift := add(mul(adx, adx), mul(ady, ady))
	blift := add(mul(bdx, bdx), mul(bdy, bdy))
	clift := add(mul(cdx, cdx), mul(cdy, cdy))

	t1 := sub(mul(bdx, cdy), mul(cdx, bdy))
	t2 := sub(mul(cdx, ady), mul(adx, cdy))
	t3 := sub(mul(adx, bdy), mul(bdx, ady))

	det := add(add(mul(alift, t1), mul(blift, t2)), mul(clift, t3))
	return det.Sign()
}

// Circumcenter returns the circumcenter of triangle (a, b, c). The triangle
// must not be degenerate.
func Circumcenter(a, b, c Point) Point {
	abx := b.X - a.X
	aby := b.Y - a.Y
	acx := c.X - a.X
	acy := c.Y - a.Y
	d := 2 * (abx*acy - aby*acx)
	abl := abx*abx + aby*aby
	acl := acx*acx + acy*acy
	ux := (acy*abl - aby*acl) / d
	uy := (abx*acl - acx*abl) / d
	return Point{X: a.X + ux, Y: a.Y + uy}
}

// Dist2 returns the squared Euclidean distance between p and q.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// MinAngleBelow reports whether the smallest angle of triangle (a, b, c) is
// smaller than the angle whose cosine is cosBound. It compares squared
// cosines computed from dot products, avoiding trigonometric calls.
func MinAngleBelow(a, b, c Point, cosBound float64) bool {
	// The smallest angle is opposite the shortest side; equivalently the
	// largest cosine among the three vertex angles. cos θ at vertex a =
	// (ab·ac)/(|ab||ac|).
	cb2 := cosBound * cosBound
	check := func(p, q, r Point) bool {
		// angle at p
		ux, uy := q.X-p.X, q.Y-p.Y
		vx, vy := r.X-p.X, r.Y-p.Y
		dot := ux*vx + uy*vy
		if dot <= 0 {
			return false // angle >= 90°
		}
		// cos²θ > cos²bound  ⇔  θ < bound (for θ, bound in (0°, 90°))
		return dot*dot > cb2*(ux*ux+uy*uy)*(vx*vx+vy*vy)
	}
	return check(a, b, c) || check(b, c, a) || check(c, a, b)
}

// Cos30 is the cosine of the paper's 30-degree quality bound for Delaunay
// mesh refinement.
var Cos30 = math.Cos(30 * math.Pi / 180)

// InDiametralCircle reports whether p lies strictly inside the diametral
// circle of segment (a, b) — the encroachment test of Ruppert's algorithm.
func InDiametralCircle(a, b, p Point) bool {
	// p is inside the circle with diameter ab iff angle apb > 90°,
	// i.e. (a-p)·(b-p) < 0.
	return (a.X-p.X)*(b.X-p.X)+(a.Y-p.Y)*(b.Y-p.Y) < 0
}

// Midpoint returns the midpoint of segment (a, b).
func Midpoint(a, b Point) Point { return Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2} }
