package geom

import (
	"math"
	"testing"
	"testing/quick"

	"galois/internal/rng"
)

func TestOrientBasic(t *testing.T) {
	a := Point{0, 0}
	b := Point{1, 0}
	c := Point{0, 1}
	if Orient(a, b, c) != 1 {
		t.Fatal("ccw triple not detected")
	}
	if Orient(a, c, b) != -1 {
		t.Fatal("cw triple not detected")
	}
	if Orient(a, b, Point{2, 0}) != 0 {
		t.Fatal("collinear triple not detected")
	}
}

func TestOrientAntisymmetry(t *testing.T) {
	property := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{frac(ax), frac(ay)}, Point{frac(bx), frac(by)}, Point{frac(cx), frac(cy)}
		return Orient(a, b, c) == -Orient(a, c, b)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// frac maps arbitrary float64s into a sane finite range.
func frac(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	_, f := math.Modf(v)
	return math.Abs(f)
}

func TestOrientNearDegenerate(t *testing.T) {
	// Points nearly collinear: the filter must defer to exact arithmetic
	// and agree with the rational computation's sign.
	a := Point{0, 0}
	b := Point{1e-20, 1e-20}
	c := Point{2e-20, 2e-20}
	if Orient(a, b, c) != 0 {
		t.Fatal("exactly collinear tiny points misclassified")
	}
	// A point displaced by one ulp off a long line.
	p := Point{0.5, 0.5 + 1e-17}
	got := Orient(Point{0, 0}, Point{1, 1}, p)
	want := orientExact(Point{0, 0}, Point{1, 1}, p)
	if got != want {
		t.Fatalf("filtered orient %d != exact %d", got, want)
	}
}

func TestInCircleBasic(t *testing.T) {
	// Unit circle through (±1,0),(0,1), CCW.
	a, b, c := Point{-1, 0}, Point{1, 0}, Point{0, 1}
	if InCircle(a, b, c, Point{0, 0}) != 1 {
		t.Fatal("center not inside")
	}
	if InCircle(a, b, c, Point{2, 2}) != -1 {
		t.Fatal("far point not outside")
	}
	if InCircle(a, b, c, Point{0, -1}) != 0 {
		t.Fatal("cocircular point not on circle")
	}
}

func TestInCircleMatchesExact(t *testing.T) {
	r := rng.New(12)
	for i := 0; i < 2000; i++ {
		a := Point{r.Float64(), r.Float64()}
		b := Point{r.Float64(), r.Float64()}
		c := Point{r.Float64(), r.Float64()}
		d := Point{r.Float64(), r.Float64()}
		if Orient(a, b, c) <= 0 {
			a, b = b, a
		}
		if Orient(a, b, c) <= 0 {
			continue
		}
		if got, want := InCircle(a, b, c, d), inCircleExact(a, b, c, d); got != want {
			t.Fatalf("iter %d: filtered %d != exact %d", i, got, want)
		}
	}
}

func TestInCircleVertexOnCircle(t *testing.T) {
	a, b, c := Point{0, 0}, Point{1, 0}, Point{0.3, 0.8}
	for _, v := range []Point{a, b, c} {
		if InCircle(a, b, c, v) != 0 {
			t.Fatalf("triangle vertex %v not on own circumcircle", v)
		}
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 500; i++ {
		a := Point{r.Float64(), r.Float64()}
		b := Point{r.Float64(), r.Float64()}
		c := Point{r.Float64(), r.Float64()}
		if Orient(a, b, c) == 0 {
			continue
		}
		cc := Circumcenter(a, b, c)
		da, db, dc := Dist2(cc, a), Dist2(cc, b), Dist2(cc, c)
		scale := da + db + dc
		if math.Abs(da-db) > 1e-9*scale || math.Abs(db-dc) > 1e-9*scale {
			t.Fatalf("circumcenter not equidistant: %v %v %v", da, db, dc)
		}
	}
}

func TestMinAngleBelow(t *testing.T) {
	// Equilateral: min angle 60°, not below 30°.
	eq := []Point{{0, 0}, {1, 0}, {0.5, math.Sqrt(3) / 2}}
	if MinAngleBelow(eq[0], eq[1], eq[2], Cos30) {
		t.Fatal("equilateral flagged as bad")
	}
	// Sliver: tiny angle at the acute vertex.
	if !MinAngleBelow(Point{0, 0}, Point{1, 0}, Point{0.5, 0.01}, Cos30) {
		t.Fatal("sliver not flagged")
	}
	// Right isoceles: min angle 45°.
	if MinAngleBelow(Point{0, 0}, Point{1, 0}, Point{0, 1}, Cos30) {
		t.Fatal("right isoceles flagged as bad")
	}
	// Exactly ~29 degrees.
	theta := 29 * math.Pi / 180
	tri := []Point{{0, 0}, {1, 0}, {math.Cos(theta) * 2, math.Sin(theta) * 2}}
	if !MinAngleBelow(tri[0], tri[1], tri[2], Cos30) {
		t.Fatal("29-degree angle not flagged")
	}
}

func TestInDiametralCircle(t *testing.T) {
	a, b := Point{0, 0}, Point{2, 0}
	if !InDiametralCircle(a, b, Point{1, 0.5}) {
		t.Fatal("point inside diametral circle not detected")
	}
	if InDiametralCircle(a, b, Point{1, 1.5}) {
		t.Fatal("point outside diametral circle misdetected")
	}
	if InDiametralCircle(a, b, Point{1, 1}) {
		t.Fatal("boundary point should not be strictly inside")
	}
}

func TestUniformPointsDeterministic(t *testing.T) {
	a := UniformPoints(100, 3)
	b := UniformPoints(100, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
	for _, p := range a {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Fatalf("point out of unit square: %v", p)
		}
	}
}

func TestHilbertSortPreservesMultiset(t *testing.T) {
	pts := UniformPoints(500, 9)
	orig := map[Point]int{}
	for _, p := range pts {
		orig[p]++
	}
	HilbertSort(pts)
	got := map[Point]int{}
	for _, p := range pts {
		got[p]++
	}
	if len(orig) != len(got) {
		t.Fatal("multiset changed")
	}
	for p, c := range orig {
		if got[p] != c {
			t.Fatal("multiset changed")
		}
	}
}

func TestHilbertSortLocality(t *testing.T) {
	pts := UniformPoints(2000, 4)
	var before float64
	for i := 1; i < len(pts); i++ {
		before += math.Sqrt(Dist2(pts[i-1], pts[i]))
	}
	HilbertSort(pts)
	var after float64
	for i := 1; i < len(pts); i++ {
		after += math.Sqrt(Dist2(pts[i-1], pts[i]))
	}
	if after > before/4 {
		t.Fatalf("hilbert order did not improve locality: before=%v after=%v", before, after)
	}
}

func TestBRIOPreservesMultisetAndIsDeterministic(t *testing.T) {
	pts := UniformPoints(1000, 8)
	a := BRIO(pts, 1)
	b := BRIO(pts, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BRIO not deterministic")
		}
	}
	orig := map[Point]int{}
	for _, p := range pts {
		orig[p]++
	}
	for _, p := range a {
		orig[p]--
	}
	for _, c := range orig {
		if c != 0 {
			t.Fatal("BRIO changed the multiset")
		}
	}
}

func TestHilbertDistinctCells(t *testing.T) {
	seen := map[uint64]bool{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			d := hilbertD(3, x, y)
			if seen[d] {
				t.Fatalf("duplicate hilbert index %d", d)
			}
			seen[d] = true
			if d >= 64 {
				t.Fatalf("index %d out of range", d)
			}
		}
	}
}
