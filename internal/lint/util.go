package lint

import (
	"go/ast"
	"go/types"
)

// callee resolves a call to the package-level function or method it
// invokes, or nil for calls through function values, conversions and
// built-ins.
func (u *Unit) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := u.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isFuncFrom reports whether fn is the named package-level function of the
// package with import path pkgPath.
func isFuncFrom(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// baseIdent peels selector/index/star/paren chains off an expression and
// returns the identifier at its base: `(*p.f)[i].g` yields `p`. It returns
// nil when the base is not a plain identifier (a call result, a literal).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// namedCtx reports whether t (possibly behind a pointer) is the runtime's
// task context type: core.Ctx[T] from the module's internal/core package
// (the galois root package's Ctx is an alias of it, so both spellings
// resolve here).
func (u *Unit) namedCtx(t types.Type) bool {
	t = types.Unalias(t)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Ctx" || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), "internal/core")
}

// pathHasSuffix matches an import-path suffix on segment boundaries.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// declaredWithin reports whether obj's declaration lies inside the node n
// (used to separate a function's locals from captured or package state).
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() <= n.End()
}
