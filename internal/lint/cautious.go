package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cautiousPass approximates the paper's cautiousness contract (§2.1): a
// task body must perform all shared reads (via Ctx.Acquire) before its
// failsafe point and defer all shared writes into the Ctx.OnCommit
// closure, so that unwinding an aborted attempt needs no rollback.
//
// The static approximation: inside any function taking a *core.Ctx
// parameter that calls Acquire or OnCommit on it, flag writes that occur
// textually before the first such call and whose target is visibly shared —
// a captured or package-level variable, or memory reached through a
// pointer/map/slice parameter. Writes to locals (including locals that
// alias shared state through an intermediate variable) are deliberately
// not flagged: the pass under-approximates so that every finding is worth
// reading. Functions that take a Ctx but never call Acquire/OnCommit
// (helpers that only Push, commit closures) are skipped.
func cautiousPass() *Pass {
	p := &Pass{
		Name:       "cautious",
		Doc:        "shared write before the task's failsafe point",
		Everywhere: true,
	}
	p.Run = func(u *Unit) {
		u.inspect(func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					u.checkCautious(fn, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				u.checkCautious(fn, fn.Type, fn.Body)
			}
			return true
		})
	}
	return p
}

func (u *Unit) checkCautious(fnode ast.Node, ftype *ast.FuncType, body *ast.BlockStmt) {
	ctxParams := make(map[types.Object]bool)
	for _, field := range ftype.Params.List {
		t := u.Pkg.Info.TypeOf(field.Type)
		if t == nil || !u.namedCtx(t) {
			continue
		}
		for _, name := range field.Names {
			if obj := u.Pkg.Info.Defs[name]; obj != nil {
				ctxParams[obj] = true
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}

	// The failsafe point: the first Acquire or OnCommit call on the ctx.
	failsafe := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Acquire" && sel.Sel.Name != "OnCommit") {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !ctxParams[u.Pkg.Info.Uses[id]] {
			return true
		}
		if !failsafe.IsValid() || call.Pos() < failsafe {
			failsafe = call.Pos()
		}
		return true
	})
	if !failsafe.IsValid() {
		return
	}
	failLine := u.Pkg.Fset.Position(failsafe).Line

	ast.Inspect(body, func(n ast.Node) bool {
		// Writes inside nested literals execute at their call time, not
		// here; each literal is checked on its own if it takes a Ctx.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Pos() >= failsafe {
				return true
			}
			for _, lhs := range st.Lhs {
				u.checkSharedWrite(lhs, st.Tok == token.DEFINE, ctxParams, fnode, body, failLine)
			}
		case *ast.IncDecStmt:
			if st.Pos() >= failsafe {
				return true
			}
			u.checkSharedWrite(st.X, false, ctxParams, fnode, body, failLine)
		}
		return true
	})
}

func (u *Unit) checkSharedWrite(lhs ast.Expr, define bool, ctxParams map[types.Object]bool, fnode ast.Node, body *ast.BlockStmt, failLine int) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if define || id.Name == "_" {
			return
		}
		v, ok := u.Pkg.Info.ObjectOf(id).(*types.Var)
		if !ok || ctxParams[v] {
			return
		}
		if !declaredWithin(v, fnode) {
			u.Reportf(id.Pos(), "write to %s %q before the failsafe point (first Acquire/OnCommit at line %d); cautious tasks defer shared writes into OnCommit", varKind(v), v.Name(), failLine)
		}
		return
	}
	base := baseIdent(lhs)
	if base == nil {
		return
	}
	v, ok := u.Pkg.Info.ObjectOf(base).(*types.Var)
	if !ok || ctxParams[v] {
		return
	}
	if !declaredWithin(v, fnode) {
		u.Reportf(base.Pos(), "write through %s %q before the failsafe point (first Acquire/OnCommit at line %d); cautious tasks defer shared writes into OnCommit", varKind(v), v.Name(), failLine)
		return
	}
	// Declared within the function: a parameter (declared before the body)
	// writing through a reference type reaches the caller's memory; locals
	// are left alone.
	if v.Pos() < body.Pos() {
		switch v.Type().Underlying().(type) {
		case *types.Pointer, *types.Map, *types.Slice, *types.Chan:
			u.Reportf(base.Pos(), "write through parameter %q reaches shared state before the failsafe point (first Acquire/OnCommit at line %d); cautious tasks defer shared writes into OnCommit", v.Name(), failLine)
		}
	}
}

func varKind(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return "package variable"
	}
	return "captured variable"
}
