package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cacheModule lays out a module with a dependency edge (b imports a) and an
// independent package c, each holding one deliberate wallclock finding so
// cached and fresh results are distinguishable from "no findings".
func cacheModule(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod": "module example.test/cached\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"time\"\n\nfunc Stamp() int64 { return time.Now().UnixNano() }\n",
		"b/b.go": "package b\n\nimport (\n\t\"time\"\n\n\t\"example.test/cached/a\"\n)\n\nfunc Both() int64 { return a.Stamp() + time.Now().UnixNano() }\n",
		"c/c.go": "package c\n\nimport \"time\"\n\nfunc Alone() int64 { return time.Now().UnixNano() }\n",
	})
}

func cacheConfig() *Config {
	return &Config{CriticalPrefixes: []string{"*"}}
}

func runCachedAt(t *testing.T, root string, cache *Cache) ([]Finding, CacheStats) {
	t.Helper()
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, stats, err := RunCached(cacheConfig(), l, cache, "./...")
	if err != nil {
		t.Fatal(err)
	}
	return findings, stats
}

func TestCacheInvalidation(t *testing.T) {
	root := cacheModule(t)
	cache, err := OpenCache(filepath.Join(root, ".cache", "detlint"), cacheConfig())
	if err != nil {
		t.Fatal(err)
	}

	first, stats := runCachedAt(t, root, cache)
	if stats.Hits != 0 || stats.Misses != 3 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/3", stats.Hits, stats.Misses)
	}
	if len(first) != 3 {
		t.Fatalf("cold run found %d findings, want 3 wallclock: %v", len(first), first)
	}

	// Nothing changed: every package is served from the cache, and the
	// findings come back identical (fresh Cache handle, so only disk state
	// carries over).
	cache2, err := OpenCache(filepath.Join(root, ".cache", "detlint"), cacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	second, stats := runCachedAt(t, root, cache2)
	if stats.Hits != 3 || stats.Misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 3/0", stats.Hits, stats.Misses)
	}
	if len(second) != len(first) {
		t.Fatalf("warm run returned %d findings, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i].String() != second[i].String() {
			t.Errorf("finding %d changed across cache: %q vs %q", i, first[i], second[i])
		}
	}

	// Touch a file in a: a re-analyzes (its own file changed) and so does b
	// (its import closure includes a), but c's key is untouched.
	path := filepath.Join(root, "a", "a.go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	cache3, err := OpenCache(filepath.Join(root, ".cache", "detlint"), cacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	third, stats := runCachedAt(t, root, cache3)
	if stats.Hits != 1 || stats.Misses != 2 {
		t.Fatalf("after touching a/a.go: hits=%d misses=%d, want 1 hit (c) and 2 misses (a, b)", stats.Hits, stats.Misses)
	}
	if len(third) != len(first) {
		t.Fatalf("post-touch run returned %d findings, want %d", len(third), len(first))
	}
}

func TestCacheConfigChangeInvalidates(t *testing.T) {
	root := cacheModule(t)
	dir := filepath.Join(root, ".cache", "detlint")
	cfg := cacheConfig()
	cache, err := OpenCache(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, stats := runCachedAt(t, root, cache); stats.Misses != 3 {
		t.Fatalf("cold run misses=%d, want 3", stats.Misses)
	}

	// A different rule set is a different analysis: every entry misses.
	narrowed := &Config{CriticalPrefixes: []string{"*"}}
	if err := narrowed.SetRules("maprange"); err != nil {
		t.Fatal(err)
	}
	cache2, err := OpenCache(dir, narrowed)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, stats, err := RunCached(narrowed, l, cache2, "./..."); err != nil {
		t.Fatal(err)
	} else if stats.Hits != 0 || stats.Misses != 3 {
		t.Errorf("rule-change run: hits=%d misses=%d, want 0/3", stats.Hits, stats.Misses)
	}
}

func TestCacheSurvivesEmptyFindings(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":         "module example.test/clean\n\ngo 1.22\n",
		"quiet/quiet.go": "package quiet\n\nfunc Nothing() {}\n",
	})
	dir := filepath.Join(root, ".cache", "detlint")
	cache, err := OpenCache(dir, cacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	findings, stats := runCachedAt(t, root, cache)
	if len(findings) != 0 || stats.Misses != 1 {
		t.Fatalf("cold clean run: findings=%v misses=%d", findings, stats.Misses)
	}
	// An empty result is still a cache entry — silence must not force
	// eternal re-analysis.
	cache2, err := OpenCache(dir, cacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, stats := runCachedAt(t, root, cache2); stats.Hits != 1 || stats.Misses != 0 {
		t.Errorf("warm clean run: hits=%d misses=%d, want 1/0", stats.Hits, stats.Misses)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 1 || !strings.HasSuffix(names[0], ".json") {
		t.Errorf("cache dir holds %v, want one .json entry", names)
	}
}
