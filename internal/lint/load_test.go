package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for loader error-path tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadParseError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":      "module example.test/broken\n\ngo 1.22\n",
		"bad/bad.go":  "package bad\n\nfunc (     {\n",
		"ok/ok.go":    "package ok\n\nfunc Fine() {}\n",
		"ok/more.go":  "package ok\n\nfunc AlsoFine() {}\n",
		"empty/.keep": "",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPath("example.test/broken/bad"); err == nil {
		t.Error("loading a package with a syntax error did not fail")
	}
	// A parse failure in one package must not poison the loader.
	if _, err := l.LoadPath("example.test/broken/ok"); err != nil {
		t.Errorf("loading a clean package after a parse failure: %v", err)
	}
	if _, err := l.LoadPath("example.test/broken/empty"); err == nil ||
		!strings.Contains(err.Error(), "no Go source files") {
		t.Errorf("want a no-sources error for an empty directory, got %v", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":   "module example.test/cyc\n\ngo 1.22\n",
		"a/a.go":   "package a\n\nimport \"example.test/cyc/b\"\n\nvar X = b.Y\n",
		"b/b.go":   "package b\n\nimport \"example.test/cyc/a\"\n\nvar Y = 1\n\nvar Z = a.X\n",
		"ok/ok.go": "package ok\n\nfunc Fine() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	// The loading guard breaks the cycle at the inner import: the import
	// of a from b fails, which the checker records as a soft type error on
	// b (the linter keeps going; `go build` is the compilability gate).
	// Silence everywhere is the only wrong answer.
	joined := ""
	if _, err := l.LoadPath("example.test/cyc/a"); err != nil {
		joined += err.Error() + "\n"
	}
	for _, rel := range []string{"a", "b"} {
		if pkg, err := l.LoadPath("example.test/cyc/" + rel); err != nil {
			joined += err.Error() + "\n"
		} else {
			for _, te := range pkg.TypeErrors {
				joined += te.Error() + "\n"
			}
		}
	}
	if !strings.Contains(joined, "cycle") {
		t.Errorf("no load or type error mentions the import cycle; got: %q", joined)
	}
	// The loader survives the cycle and loads unrelated packages.
	if _, err := l.LoadPath("example.test/cyc/ok"); err != nil {
		t.Errorf("loading a clean package after a cycle: %v", err)
	}
}

func TestUnmatchedPrefixes(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":               "module example.test/conf\n\ngo 1.22\n",
		"internal/core/c.go":   "package core\n",
		"internal/extras/x.go": "package extras\n",
	})
	cfg := &Config{
		CriticalPrefixes: []string{"*", "internal/core", "internal/nonexistent"},
		ExemptPrefixes:   []string{"internal/extras", "internal/ghost"},
		RuleExemptions:   map[string][]string{"internal/phantom": {"wallclock"}},
	}
	got := cfg.UnmatchedPrefixes(root)
	want := []string{"internal/ghost", "internal/nonexistent", "internal/phantom"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("UnmatchedPrefixes = %v, want %v", got, want)
	}
	if got := (&Config{CriticalPrefixes: []string{"*"}}).UnmatchedPrefixes(root); len(got) != 0 {
		t.Errorf("wildcard-only config reported unmatched prefixes: %v", got)
	}
}

func TestLoadedReturnsTransitiveWorld(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module example.test/world\n\ngo 1.22\n",
		"top/t.go":   "package top\n\nimport \"example.test/world/dep\"\n\nvar V = dep.D\n",
		"dep/d.go":   "package dep\n\nvar D = 2\n",
		"lone/l.go":  "package lone\n\nvar L = 3\n",
		"other/o.go": "package other\n\nvar O = 4\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadPath("example.test/world/top"); err != nil {
		t.Fatal(err)
	}
	var rels []string
	for _, p := range l.Loaded() {
		rels = append(rels, p.Rel)
	}
	// Loading top pulls dep transitively; lone/other were never touched.
	if strings.Join(rels, ",") != "dep,top" {
		t.Errorf("Loaded() = %v, want [dep top]", rels)
	}
}
