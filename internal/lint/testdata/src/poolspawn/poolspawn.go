// Package poolspawn is a detlint test fixture: a persistent worker pool
// (the internal/para.Pool shape) whose worker launch must either be
// flagged by goroutineorder or carry an annotation stating the merge
// order. This is the substrate both schedulers run on when engine-driven,
// so the analyzer must not develop a blind spot for parked-worker spawns:
// they are fork-join in slow motion — the fork is at pool growth, the
// join at the end of every run.
package poolspawn

import "sync"

type pool struct {
	starts []chan struct{}
	wg     sync.WaitGroup
	body   func(int)
}

// growUnannotated spawns parked workers with no statement of how their
// results merge deterministically; the analyzer must flag it.
func (p *pool) growUnannotated(k int) {
	for len(p.starts) < k {
		start := make(chan struct{})
		tid := len(p.starts) + 1
		p.starts = append(p.starts, start)
		go func() { // want goroutineorder
			for range start {
				p.body(tid)
				p.wg.Done()
			}
		}()
	}
}

// growAnnotated is the accepted form: the suppression names the merge
// discipline (tid identity plus barrier/id-ordered merges above).
func (p *pool) growAnnotated(k int) {
	for len(p.starts) < k {
		start := make(chan struct{})
		tid := len(p.starts) + 1
		p.starts = append(p.starts, start)
		//detlint:ignore goroutineorder workers are identified by tid and park between runs; the scheduler above orders all cross-thread merges by round barrier and task id
		go func() {
			for range start {
				p.body(tid)
				p.wg.Done()
			}
		}()
	}
}

func (p *pool) run(parties int, body func(int)) {
	p.growAnnotated(parties - 1)
	p.body = body
	p.wg.Add(parties - 1)
	for i := 0; i < parties-1; i++ {
		p.starts[i] <- struct{}{}
	}
	body(0)
	p.wg.Wait()
}
