// Package globalrand is a detlint test fixture.
package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func globalDraws() (int, float64) {
	a := rand.Intn(10)                 // want globalrand
	b := rand.Float64()                // want globalrand
	rand.Shuffle(3, func(i, j int) {}) // want globalrand
	return a, b
}

func v2GlobalDraws() uint64 {
	return randv2.Uint64() // want globalrand
}

func seededLocalIsFine() int {
	// Caller-owned state from an explicit constant seed is deterministic.
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func v2SeededLocalIsFine() uint64 {
	r := randv2.New(randv2.NewPCG(1, 2))
	return r.Uint64()
}

func suppressed() int {
	//detlint:ignore globalrand jitter for a log sampling decision, not on the output path
	return rand.Intn(100)
}
