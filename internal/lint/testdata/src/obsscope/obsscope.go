// Package obsscope models the internal/obs situation for the rule-scoped
// exemption tests: a tracing package reads the wall clock by design
// (observational timestamps, never read back by scheduling) but must still
// build its event payloads deterministically. Under `exempt <pkg> wallclock`
// the clock reads below are tolerated while the map-range payload is still
// flagged.
package obsscope

import "time"

type event struct {
	TS   int64
	Args []int64
}

// stamp assigns an observational timestamp.
func stamp(e *event) {
	e.TS = time.Now().UnixNano() // want wallclock
}

// payloadFromCounts builds an event payload by ranging over a map — a
// determinism hazard no wallclock exemption covers: the payload order
// would vary run to run and break trace golden tests.
func payloadFromCounts(e *event, counts map[string]int64) {
	for _, v := range counts { // want maprange
		e.Args = append(e.Args, v)
	}
}
