// Package cautious is a detlint test fixture. It imports the real runtime
// context type so the pass resolves core.Ctx exactly as it does on
// production code.
package cautious

import (
	"galois/internal/core"
	"galois/internal/marks"
)

type node struct {
	lock marks.Lockable
	val  int
	hits int
}

var generation int

func eagerWrites(ctx *core.Ctx[*node], n *node) {
	n.val = 1      // want cautious // want failsafe
	generation = 2 // want cautious // want failsafe
	n.hits++       // want cautious // want failsafe
	ctx.Acquire(&n.lock)
	v := n.val + 1
	ctx.OnCommit(func(c *core.Ctx[*node]) {
		// Shared writes inside the commit closure are the contract.
		n.val = v
	})
}

func capturedWrite(shared []int) func(*core.Ctx[int], int) {
	return func(ctx *core.Ctx[int], i int) {
		shared[i] = i // want cautious // want failsafe
		var l marks.Lockable
		ctx.Acquire(&l)
	}
}

func suppressedWrite(ctx *core.Ctx[*node], n *node) {
	//detlint:ignore cautious,failsafe scratch field is task-private by construction
	n.hits = 0
	ctx.Acquire(&n.lock)
}

func localWritesAreFine(ctx *core.Ctx[*node], n *node, byValue node) {
	sum := 0
	sum += 3
	byValue.val = 9 // writes a parameter copy, not shared state
	scratch := make([]int, 4)
	scratch[0] = sum
	ctx.Acquire(&n.lock)
	ctx.OnCommit(func(c *core.Ctx[*node]) {
		n.val = sum
	})
}

func writesAfterAcquireAreAccepted(ctx *core.Ctx[*node], n *node) {
	ctx.Acquire(&n.lock)
	// The textual cautious pass checks the failsafe prefix only, so this
	// post-acquire write is its accepted blind spot. The interprocedural
	// failsafe pass enforces the stronger contract — task bodies re-run
	// under inspect/validate modes, so every direct shared write must sit
	// inside the OnCommit closure — and closes it.
	n.val = 7 // want failsafe
}

func helperWithoutAcquireIsSkipped(ctx *core.Ctx[*node], n *node) {
	// Helpers that never establish a neighborhood (only Push, say) are
	// out of scope for the approximation.
	n.val = 3
	ctx.Push(n)
}
