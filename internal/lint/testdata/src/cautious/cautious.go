// Package cautious is a detlint test fixture. It imports the real runtime
// context type so the pass resolves core.Ctx exactly as it does on
// production code.
package cautious

import (
	"galois/internal/core"
	"galois/internal/marks"
)

type node struct {
	lock marks.Lockable
	val  int
	hits int
}

var generation int

func eagerWrites(ctx *core.Ctx[*node], n *node) {
	n.val = 1      // want cautious
	generation = 2 // want cautious
	n.hits++       // want cautious
	ctx.Acquire(&n.lock)
	v := n.val + 1
	ctx.OnCommit(func(c *core.Ctx[*node]) {
		// Shared writes inside the commit closure are the contract.
		n.val = v
	})
}

func capturedWrite(shared []int) func(*core.Ctx[int], int) {
	return func(ctx *core.Ctx[int], i int) {
		shared[i] = i // want cautious
		var l marks.Lockable
		ctx.Acquire(&l)
	}
}

func suppressedWrite(ctx *core.Ctx[*node], n *node) {
	//detlint:ignore cautious scratch field is task-private by construction
	n.hits = 0
	ctx.Acquire(&n.lock)
}

func localWritesAreFine(ctx *core.Ctx[*node], n *node, byValue node) {
	sum := 0
	sum += 3
	byValue.val = 9 // writes a parameter copy, not shared state
	scratch := make([]int, 4)
	scratch[0] = sum
	ctx.Acquire(&n.lock)
	ctx.OnCommit(func(c *core.Ctx[*node]) {
		n.val = sum
	})
}

func writesAfterAcquireAreAccepted(ctx *core.Ctx[*node], n *node) {
	ctx.Acquire(&n.lock)
	// The pass checks the failsafe prefix only; post-acquire writes are
	// the (weaker) textual approximation's accepted blind spot.
	n.val = 7
}

func helperWithoutAcquireIsSkipped(ctx *core.Ctx[*node], n *node) {
	// Helpers that never establish a neighborhood (only Push, say) are
	// out of scope for the approximation.
	n.val = 3
	ctx.Push(n)
}
