// Package sessionscope models the internal/session situation: a session
// manager holds a map of live sessions whose receipts form a hash chain.
// Any map-iteration order leaking into a chain hash would make replay
// verification fail nondeterministically — the chain is the proof object,
// so the taint pass must catch the leak even through helper calls. The
// discipline the real package follows (an ordered ids slice drives every
// sweep; the map is lookup-only) is the clean path proven below.
package sessionscope

import "crypto/sha256"

type link struct {
	Chain [32]byte
}

type sess struct {
	id   string
	head [32]byte
}

type manager struct {
	sessions map[string]*sess
	ids      []string // insertion-ordered; the deterministic sweep axis
}

// chainHash is the link function — a fingerprint sink.
func chainHash(prev [32]byte, payload []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(payload)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// sealAllUnordered folds every session's head into one digest by ranging
// the map: two identical managers would disagree on the digest. This is
// exactly the bug the session package must never contain.
func sealAllUnordered(m *manager) [32]byte {
	var acc [32]byte
	for _, s := range m.sessions { // want maprange
		acc = chainHash(acc, s.head[:]) // want taintfp
	}
	return acc
}

// collectIDsForPayload gathers map keys into a payload that reaches the
// chain hash through a local: the taint survives the intermediate slice.
func collectIDsForPayload(m *manager, prev [32]byte) link {
	var payload []byte
	for id := range m.sessions { // want maprange
		payload = append(payload, id...)
	}
	return link{Chain: chainHash(prev, payload)} // want taintfp
}

// sealAllOrdered is the real package's discipline: the insertion-ordered
// ids slice drives the sweep, the map is only a lookup. No findings.
func sealAllOrdered(m *manager) [32]byte {
	var acc [32]byte
	for _, id := range m.ids {
		s := m.sessions[id]
		acc = chainHash(acc, s.head[:])
	}
	return acc
}

// evictIdleOrdered mirrors Manager.EvictIdle: iterate the ordered slice,
// look sessions up by id, seal a tombstone per eviction. Clean.
func evictIdleOrdered(m *manager, tomb []byte) []link {
	var out []link
	for _, id := range m.ids {
		s := m.sessions[id]
		out = append(out, link{Chain: chainHash(s.head, tomb)})
	}
	return out
}

// countLive may range the map freely: control flow and counters carry no
// order, and nothing here reaches a sink.
func countLive(m *manager) int {
	n := 0
	//detlint:ordered live-count is order-independent bookkeeping, never hashed
	for range m.sessions {
		n++
	}
	return n
}
