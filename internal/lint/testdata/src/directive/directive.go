// Package directive is a detlint test fixture for malformed //detlint:
// comments, which must themselves be reported rather than silently doing
// nothing.
package directive

//detlint:ignore maprange
func missingReason() {}

//detlint:frobnicate whatever
func unknownVerb() {}

//detlint:ignore
func missingRule() {}

//detlint:ordered reductions here are commutative
func orderedWithReasonIsWellFormed() {}

//detlint:ignore maprange,nosuchrule the second rule name does not exist
func unknownRuleInList() {}

//detlint:ignore maprange, wallclock a space splits the list, leaving an empty element
func emptyRuleElement() {}

//detlint:effects acquires=maybe,writes=none acquires only takes none or ctx
func badEffectsValue() {}

//detlint:effects acquires=none,writes=none
func effectsMissingReason() {}

//detlint:effects timing=none unknown claim key
func unknownEffectsKey() {}

//detlint:effects acquires=none,writes=shared stored hooks mutate a registry
func wellFormedEffects() {}
