// Package directive is a detlint test fixture for malformed //detlint:
// comments, which must themselves be reported rather than silently doing
// nothing.
package directive

//detlint:ignore maprange
func missingReason() {}

//detlint:frobnicate whatever
func unknownVerb() {}

//detlint:ignore
func missingRule() {}

//detlint:ordered reductions here are commutative
func orderedWithReasonIsWellFormed() {}
