// Package failsafe is a detlint test fixture for the interprocedural
// failsafe pass: shared writes hidden behind helper calls, effect
// declarations on dynamic calls, and the declaration-vs-inference check.
package failsafe

import (
	"galois/internal/core"
	"galois/internal/marks"
)

type node struct {
	lock marks.Lockable
	val  int
}

var generation int

// bumpNode writes through its parameter; deepBump hides the write one
// call deeper, so only an interprocedural summary can see it.
func bumpNode(n *node) { n.val++ }
func deepBump(n *node) { bumpNode(n) }

func bumpGlobal()     { generation++ }
func deepBumpGlobal() { bumpGlobal() }

func writesTwoCallsDeep(ctx *core.Ctx[*node], n *node) {
	deepBump(n) // want failsafe
	ctx.Acquire(&n.lock)
	ctx.OnCommit(func(c *core.Ctx[*node]) {
		deepBump(n) // the handler writes captured state: the contract
	})
}

func globalTwoCallsDeep(ctx *core.Ctx[*node], n *node) {
	deepBumpGlobal() // want failsafe
	ctx.Acquire(&n.lock)
}

// visit threads the acquirer closure one call down — the dmr pattern,
// where the operator's ctx.Acquire runs inside mesh helpers. The acquire
// still counts as the operator's own, and nothing here is a finding.
func visit(n *node, acq func(*node)) { acq(n) }

func acquiresThroughClosure(ctx *core.Ctx[*node], n *node) {
	visit(n, func(e *node) { ctx.Acquire(&e.lock) })
	ctx.OnCommit(func(c *core.Ctx[*node]) { n.val = 1 })
}

var hooks []func()

// runHooks makes a dynamic call the analyzer cannot resolve; the
// declaration vouches for it, so callers are not flagged.
//
//detlint:effects acquires=none,writes=none hooks only log to task-local buffers
func runHooks() {
	for _, h := range hooks {
		h()
	}
}

func trustsDeclaration(ctx *core.Ctx[*node], n *node) {
	runHooks()
	ctx.Acquire(&n.lock)
}

func dynamicUnproven(ctx *core.Ctx[*node], n *node) {
	for _, h := range hooks {
		h() // want failsafe
	}
	ctx.Acquire(&n.lock)
}

// misdeclared understates its effects: the declaration silences callers,
// so the declaration itself must be the finding.
//
//detlint:effects acquires=none,writes=none the claim is wrong on purpose
func misdeclared() { // want failsafe
	generation++
}

// A declaration may widen the inferred summary; callers then carry the
// declared shared write.
//
//detlint:effects acquires=none,writes=shared stored hooks mutate the registry
func writesByContract() {
	for _, h := range hooks {
		h()
	}
}

func callsDeclaredWriter(ctx *core.Ctx[*node], n *node) {
	writesByContract() // want failsafe
	ctx.Acquire(&n.lock)
}

func recWrite(n *node, depth int) {
	if depth == 0 {
		return
	}
	n.val = depth
	recWrite(n, depth-1)
}

func recursionStillCaught(ctx *core.Ctx[*node], n *node) {
	recWrite(n, 3) // want failsafe
	ctx.Acquire(&n.lock)
}

func suppressedHelperWrite(ctx *core.Ctx[*node], n *node) {
	//detlint:ignore failsafe scratch counter is task-private by construction
	deepBump(n)
	ctx.Acquire(&n.lock)
}

func freshWritesAreFine(ctx *core.Ctx[*node], n *node) {
	plan := make([]int, 0, 4)
	for i := 0; i < 3; i++ {
		plan = append(plan, i)
	}
	scratch := &node{}
	scratch.val = len(plan)
	ctx.Acquire(&n.lock)
	ctx.OnCommit(func(c *core.Ctx[*node]) { n.val = scratch.val })
}
