// Package commitpure is a detlint test fixture: a commit handler runs
// after conflict detection holding only its own task's neighborhood, so
// it may write captured state but must not touch package state, acquire,
// or make calls the analyzer cannot see.
package commitpure

import (
	"galois/internal/core"
	"galois/internal/marks"
)

type node struct {
	lock marks.Lockable
	val  int
}

var committed int

func handlerWritesPackageState(ctx *core.Ctx[*node], n *node) {
	ctx.Acquire(&n.lock)
	ctx.OnCommit(func(c *core.Ctx[*node]) {
		committed++ // want commitpure
		n.val = 1   // captured from the task: the contract
	})
}

func handlerAcquires(ctx *core.Ctx[*node], n *node) {
	ctx.Acquire(&n.lock)
	ctx.OnCommit(func(c *core.Ctx[*node]) { // want commitpure
		c.Acquire(&n.lock)
	})
}

// An OnCommit argument that is not a resolvable literal blinds both the
// purity check and the operator's own failsafe proof.
func handlerUnresolvable(ctx *core.Ctx[*node], n *node, h func(*core.Ctx[*node])) {
	ctx.Acquire(&n.lock)
	ctx.OnCommit(h) // want commitpure // want failsafe
}

// boundHelperIsResolved is the msf pattern: a helper bound in the operator
// body, executed inside the commit closure. Its captured writes are fine.
func boundHelperIsResolved(ctx *core.Ctx[*node], n *node) {
	bump := func() { n.val++ }
	ctx.Acquire(&n.lock)
	ctx.OnCommit(func(c *core.Ctx[*node]) {
		bump()
		c.Push(n)
	})
}

func handlerDynamicCall(ctx *core.Ctx[*node], n *node, h func()) {
	ctx.Acquire(&n.lock)
	ctx.OnCommit(func(c *core.Ctx[*node]) {
		h() // want commitpure
	})
}
