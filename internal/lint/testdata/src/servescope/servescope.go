// Package servescope models the internal/serve situation for the
// rule-scoped exemption tests: a job service measures request latency and
// enforces deadlines (wall-clock reads by design, never feeding job
// output) but must still assemble its responses deterministically. Under
// `exempt <pkg> wallclock` the clock reads below are tolerated while the
// map-range over the job-results map is still flagged.
package servescope

import "time"

type jobResult struct {
	Fingerprint uint64
	WallNS      int64
}

// timeJob measures end-to-end latency — observational only.
func timeJob(run func() uint64) jobResult {
	start := time.Now() // want wallclock
	fp := run()
	return jobResult{Fingerprint: fp, WallNS: time.Since(start).Nanoseconds()} // want wallclock
}

// expired enforces an admission deadline.
func expired(deadline time.Time) bool {
	return time.Now().After(deadline) // want wallclock
}

// fingerprintsOf collects the distinct fingerprints of a batch — ranging
// over the results map yields them in nondeterministic order, a hazard no
// wallclock exemption covers: two identical load runs would report
// differently ordered (and differently truncated) fingerprint lists.
func fingerprintsOf(results map[string]jobResult, max int) []uint64 {
	var fps []uint64
	for _, r := range results { // want maprange
		if len(fps) == max {
			break
		}
		fps = append(fps, r.Fingerprint)
	}
	return fps
}
