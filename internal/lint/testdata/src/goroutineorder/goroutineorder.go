// Package goroutineorder is a detlint test fixture.
package goroutineorder

func spawns(work func(int)) {
	for i := 0; i < 4; i++ {
		go work(i) // want goroutineorder
	}
}

func suppressedSpawn(results []int, compute func(int) int) {
	done := make(chan struct{})
	for i := range results {
		//detlint:ignore goroutineorder each goroutine writes only its own index; joined before read
		go func(i int) {
			results[i] = compute(i)
			done <- struct{}{}
		}(i)
	}
	for range results {
		<-done
	}
}

func racySelect(a, b chan int) int {
	select { // want goroutineorder
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func suppressedSelect(a, b chan int) int {
	//detlint:ignore goroutineorder both channels carry the same reduction value
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func singleCaseSelectIsFine(a chan int, stop chan struct{}) int {
	// One communication case plus default: no cross-channel race.
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}
