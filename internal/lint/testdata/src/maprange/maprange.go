// Package maprange is a detlint test fixture. Comments of the form
// `// want <rule>` mark lines the analyzer must flag.
package maprange

import "sort"

type table map[string]int

func plainRange(m map[string]int) int {
	sum := 0
	for _, v := range m { // want maprange
		sum += v
	}
	return sum
}

func namedMapType(t table) []string {
	var keys []string
	for k := range t { // want maprange
		keys = append(keys, k)
	}
	return keys
}

func sortedKeysAreFine(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []int
	for _, k := range keys { // slice range: not flagged
		out = append(out, m[k])
	}
	return out
}

func suppressedSameLine(m map[string]int) int {
	n := 0
	for range m { //detlint:ordered pure count, order cannot matter
		n++
	}
	return n
}

func suppressedLineAbove(m map[string]int) int {
	n := 0
	//detlint:ignore maprange commutative sum over values
	for _, v := range m {
		n += v
	}
	return n
}

func sliceAndChannelRangesAreFine(s []int, c chan int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	for v := range c {
		n += v
	}
	return n
}
