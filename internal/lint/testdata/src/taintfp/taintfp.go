// Package taintfp is a detlint test fixture: order-dependent values (map
// iteration, wall-clock reads) must not reach fingerprint sinks, unless
// the flow is broken by an in-place sort or annotated //detlint:ordered.
package taintfp

import (
	"crypto/sha256"
	"hash"
	"sort"
	"strconv"
	"time"
)

type receipt struct {
	Fingerprint string
}

// cachedReceipt mirrors the serve Receipt shape: Cached is serving
// metadata, and any read of it is a taint source.
type cachedReceipt struct {
	Fingerprint string
	Cached      bool
}

func hashUnsortedKeys(m map[string]int) [32]byte {
	h := sha256.New()
	for k := range m { // want maprange
		h.Write([]byte(k)) // want taintfp
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Collect, sort, emit: the canonical deterministic merge. The sort
// cleanses the collected slice, so the digest loop is clean.
func hashSortedKeys(m map[string]int) [32]byte {
	keys := make([]string, 0, len(m))
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// An //detlint:ordered annotation on the source kills the taint at its
// origin, so the sink downstream is clean too (and maprange is quiet).
func orderedSourceReachesSinkCleanly(m map[string]int) [32]byte {
	h := sha256.New()
	//detlint:ordered digest folds per-key contributions commutatively upstream
	for k := range m {
		h.Write([]byte(k))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func timestampIntoFingerprint() receipt {
	stamp := time.Now().String()       // want wallclock
	return receipt{Fingerprint: stamp} // want taintfp
}

func assignsFingerprintField(m map[string]bool, r *receipt) {
	var parts string
	for k := range m { // want maprange
		parts += k
	}
	r.Fingerprint = parts // want taintfp
}

// digestInto feeds its parameter into a hash sink; callers passing
// order-tainted data are flagged at the call site.
func digestInto(h hash.Hash, s string) {
	h.Write([]byte(s))
}

func passesTaintedToHelper(m map[string]int) {
	var joined string
	for k := range m { // want maprange
		joined += k
	}
	h := sha256.New()
	digestInto(h, joined) // want taintfp
}

// joinKeys returns internally order-tainted data; the taint survives the
// call boundary into the caller's sink.
func joinKeys(m map[string]int) string {
	var s string
	for k := range m { // want maprange
		s += k
	}
	return s
}

func sinksHelperResult(m map[string]int) receipt {
	return receipt{Fingerprint: joinKeys(m)} // want taintfp
}

func suppressedSink(m map[string]int) receipt {
	var s string
	//detlint:ignore maprange,taintfp harness-only digest, not a det receipt
	for k := range m {
		s += k
	}
	//detlint:ignore taintfp harness-only digest, not a det receipt
	return receipt{Fingerprint: s}
}

// The Cached flag describes which copy of a result answered a request,
// never what the result is: deriving fingerprint material from it would
// make a receipt's proof depend on cache state.
func cachedFlagIntoFingerprint(r cachedReceipt) receipt {
	mark := strconv.FormatBool(r.Cached)
	return receipt{Fingerprint: mark} // want taintfp
}

func cachedFlagIntoDigest(r cachedReceipt) [32]byte {
	h := sha256.New()
	h.Write([]byte(strconv.FormatBool(r.Cached))) // want taintfp
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Branching on the flag is fine — counting cache hits is observational
// bookkeeping, and control flow does not propagate taint.
func countsCacheHitsCleanly(rs []cachedReceipt) receipt {
	hits := 0
	for _, r := range rs {
		if r.Cached {
			hits++
		}
	}
	return receipt{Fingerprint: strconv.Itoa(hits)}
}

// recJoin exercises the taint-summary cycle guard.
func recJoin(m map[string]int, depth int) string {
	if depth == 0 {
		return ""
	}
	var s string
	for k := range m { // want maprange
		s += k
	}
	return s + recJoin(m, depth-1)
}
