// Package wallclock is a detlint test fixture.
package wallclock

import "time"

func readsClock() int64 {
	t := time.Now() // want wallclock
	return t.UnixNano()
}

func sinceAndUntil(start time.Time) (time.Duration, time.Duration) {
	a := time.Since(start) // want wallclock
	b := time.Until(start) // want wallclock
	return a, b
}

func suppressed() time.Time {
	//detlint:ignore wallclock diagnostic log timestamp, never feeds scheduling
	return time.Now()
}

func durationMathIsFine(d time.Duration) time.Duration {
	// Pure duration arithmetic and parsing do not read the clock.
	parsed, _ := time.ParseDuration("1s")
	return d + parsed.Round(time.Millisecond)
}

func aliasedCall() time.Time {
	// Taking the function value and calling through it is beyond the
	// pass's resolution — documented limitation, not flagged.
	now := time.Now
	return now()
}
