package lint

// taintFPPass tracks nondeterministically ordered values — map iteration,
// wall-clock reads, global RNG draws — to fingerprint sinks: hash/digest
// writes and receipt Fingerprint fields. The det-mode guarantee is that
// fingerprints are pure functions of the input, so order-dependent data
// must be sorted (an in-place sort cleanses the taint) or annotated with
// //detlint:ordered at the source, with a reason, before it may reach a
// sink. Flows compose across module calls through per-function taint
// summaries.
//
// Unlike failsafe/commitpure this pass scopes to the critical set: the
// serving and measurement layers hash plenty of data that never feeds a
// determinism receipt.
func taintFPPass() *Pass {
	p := &Pass{
		Name: "taintfp",
		Doc:  "nondeterministic iteration order flowing into a fingerprint sink",
	}
	p.Run = func(u *Unit) {
		for _, v := range u.world.CheckTaint(u.epkg) {
			u.Reportf(v.Pos, "%s", v.Msg)
		}
	}
	return p
}
