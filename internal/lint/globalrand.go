package lint

import (
	"go/ast"
)

// globalRandPass flags draws from math/rand's process-global source (and
// any top-level math/rand/v2 function, whose global state is always
// auto-seeded) in determinism-critical packages.
//
// The global source is seeded from entropy at process start, so anything
// derived from it differs run to run. The repository's replacement is
// galois/internal/rng: explicit 64-bit seeds, splittable streams, and no
// global state. Constructing a local generator from an explicit constant
// seed (rand.New(rand.NewSource(42))) is deterministic and therefore not
// flagged, though internal/rng is still preferred for splittability.
func globalRandPass() *Pass {
	p := &Pass{
		Name: "globalrand",
		Doc:  "draw from math/rand's process-global source",
	}
	// Constructors return caller-owned state and are allowed; every other
	// top-level function uses the global source.
	constructors := map[string]bool{
		"New": true, "NewSource": true, "NewZipf": true,
		"NewPCG": true, "NewChaCha8": true,
	}
	p.Run = func(u *Unit) {
		u.inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := u.callee(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand draw from caller-owned state.
			if fn.Signature().Recv() != nil {
				return true
			}
			if constructors[fn.Name()] {
				return true
			}
			u.Reportf(call.Pos(), "%s.%s draws from the process-global source; use galois/internal/rng with an explicit seed", path, fn.Name())
			return true
		})
	}
	return p
}
