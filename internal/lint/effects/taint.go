package effects

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Taint tracking for the taintfp pass: values whose content depends on a
// nondeterministic order — map iteration, wall-clock reads, global RNG
// draws — must not flow into fingerprint sinks (hash writes, receipt
// Fingerprint fields), because the det-mode guarantee is exactly that
// fingerprints are pure functions of the input.
//
// The analysis is object-based and flow-insensitive within one function
// region (a declaration plus its nested literals), with summaries for
// calls into module functions: whether a callee's return is internally
// order-tainted, which parameters' taint reaches its return, and which
// parameters it feeds into a sink. Two deliberate judgment calls keep the
// pass usable: passing a tainted value through an in-place sort cleanses
// it (collect-sort-emit is the canonical deterministic merge), and a
// //detlint:ordered annotation on the map range suppresses the source.

// taint is the lattice value for one object or expression.
type taint struct {
	src    string // non-empty: description of an internal nondet source
	params uint64 // parameter indices whose taint would flow here
}

func (t taint) union(u taint) taint {
	if t.src == "" {
		t.src = u.src
	}
	t.params |= u.params
	return t
}

func (t taint) zero() bool { return t.src == "" && t.params == 0 }

// taintSum is the cross-call summary of one function.
type taintSum struct {
	retSource  string // non-empty: return carries internally sourced taint
	retParams  uint64 // parameters whose taint flows to the return
	sinkParams uint64 // parameters that reach a fingerprint sink inside
}

// taintSummary computes (and memoizes) fn's taint summary. Cycles
// summarize as clean from the back edge.
func (w *World) taintSummary(fn *types.Func) *taintSum {
	if s, ok := w.taints[fn]; ok {
		return s
	}
	d, ok := w.decls[fn]
	if !ok {
		return nil
	}
	if w.taintOpen[fn] {
		return &taintSum{}
	}
	w.taintOpen[fn] = true
	defer delete(w.taintOpen, fn)
	ta := newTaintAnalysis(w, d.pkg, d.decl)
	ta.run()
	w.taints[fn] = ta.sum
	return ta.sum
}

// CheckTaint runs the source→sink analysis over every function declared
// in pkg and returns the violations.
func (w *World) CheckTaint(pkg *Pkg) []Violation {
	var out []Violation
	seen := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ta := newTaintAnalysis(w, pkg, fd)
			ta.report = true
			ta.run()
			for _, v := range ta.violations {
				key := fmt.Sprintf("%d:%s", v.Pos, v.Msg)
				if !seen[key] {
					seen[key] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

type taintAnalysis struct {
	w    *World
	pkg  *Pkg
	decl *ast.FuncDecl

	params   map[types.Object]int
	tainted  map[types.Object]taint
	cleansed map[types.Object]bool

	report     bool
	violations []Violation
	sum        *taintSum
}

func newTaintAnalysis(w *World, pkg *Pkg, decl *ast.FuncDecl) *taintAnalysis {
	ta := &taintAnalysis{
		w: w, pkg: pkg, decl: decl,
		params:   make(map[types.Object]int),
		tainted:  make(map[types.Object]taint),
		cleansed: make(map[types.Object]bool),
		sum:      &taintSum{},
	}
	idx := 0
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					ta.params[obj] = idx
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					ta.params[obj] = idx
				}
				idx++
			}
		}
	}
	return ta
}

func (ta *taintAnalysis) run() {
	// Propagation to fixpoint: taint only grows, so a few passes settle
	// the deepest realistic assignment chains.
	for i := 0; i < 6; i++ {
		if !ta.propagate() {
			break
		}
	}
	ta.finish()
}

// objTaint is the effective taint of a variable: sorting a collected
// slice in place restores a deterministic order, so a sorted variable's
// internal-source taint is forgiven (its parameter flows remain).
func (ta *taintAnalysis) objTaint(obj types.Object) taint {
	if obj == nil {
		return taint{}
	}
	t := ta.tainted[obj]
	if i, ok := ta.params[obj]; ok && i < 64 {
		t.params |= 1 << i
	}
	if ta.cleansed[obj] {
		t.src = ""
	}
	return t
}

// propagate performs one assignment-propagation pass; reports change.
func (ta *taintAnalysis) propagate() (changed bool) {
	info := ta.pkg.Info
	join := func(obj types.Object, t taint) {
		if obj == nil || t.zero() {
			return
		}
		old := ta.tainted[obj]
		nw := old.union(t)
		if nw != old {
			ta.tainted[obj] = nw
			changed = true
		}
	}
	joinExprTarget := func(e ast.Expr, t taint) {
		// Taint the base variable of the written path: writing a
		// tainted value into s[i] or x.f makes the container tainted.
		if base := baseIdentOf(e); base != nil {
			join(info.ObjectOf(base), t)
		}
	}
	ast.Inspect(ta.decl, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				var t taint
				if len(st.Rhs) == len(st.Lhs) {
					t = ta.exprTaint(st.Rhs[i])
				} else if len(st.Rhs) == 1 {
					t = ta.exprTaint(st.Rhs[0])
				}
				joinExprTarget(lhs, t)
			}
		case *ast.RangeStmt:
			t := ta.exprTaint(st.X)
			if typ := info.TypeOf(st.X); typ != nil {
				if _, isMap := typ.Underlying().(*types.Map); isMap {
					if ta.pkg.Ordered == nil || !ta.pkg.Ordered(st.Pos()) {
						t = t.union(taint{src: "iteration over map " + types.ExprString(st.X)})
					}
				}
			}
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if e != nil {
					joinExprTarget(e, t)
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					join(info.Defs[name], ta.exprTaint(st.Values[i]))
				}
			}
		case *ast.CallExpr:
			ta.noteCleanse(st)
		}
		return true
	})
	return changed
}

// noteCleanse records in-place sorts: sort.X(keys) / slices.Sort(keys)
// restore determinism for the sorted variable.
func (ta *taintAnalysis) noteCleanse(call *ast.CallExpr) {
	fn := staticCallee(ta.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return
	}
	path := fn.Pkg().Path()
	isSort := path == "sort" && sortMutators[fn.Name()]
	isSlices := path == "slices" && strings.HasPrefix(fn.Name(), "Sort")
	if !isSort && !isSlices {
		return
	}
	if base := baseIdentOf(call.Args[0]); base != nil {
		if obj := ta.pkg.Info.ObjectOf(base); obj != nil && !ta.cleansed[obj] {
			ta.cleansed[obj] = true
		}
	}
}

// exprTaint computes the taint of an expression's value.
func (ta *taintAnalysis) exprTaint(e ast.Expr) taint {
	info := ta.pkg.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return ta.objTaint(info.ObjectOf(x))
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return ta.objTaint(info.ObjectOf(x.Sel))
			}
		}
		t := ta.exprTaint(x.X)
		if x.Sel.Name == "Cached" {
			// A receipt's Cached flag is serving metadata — which copy of a
			// result answered, not what the result is. Any read of it is a
			// taint source so the flag can never be folded into a
			// fingerprint; branching on it (if r.Cached { hits++ }) stays
			// clean because control flow does not propagate taint.
			t = t.union(taint{src: "cache-status flag (Cached field read)"})
		}
		return t
	case *ast.IndexExpr:
		return ta.exprTaint(x.X)
	case *ast.IndexListExpr:
		return ta.exprTaint(x.X)
	case *ast.StarExpr:
		return ta.exprTaint(x.X)
	case *ast.SliceExpr:
		return ta.exprTaint(x.X)
	case *ast.TypeAssertExpr:
		return ta.exprTaint(x.X)
	case *ast.UnaryExpr:
		return ta.exprTaint(x.X)
	case *ast.BinaryExpr:
		return ta.exprTaint(x.X).union(ta.exprTaint(x.Y))
	case *ast.CompositeLit:
		var t taint
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.union(ta.exprTaint(kv.Value))
			} else {
				t = t.union(ta.exprTaint(el))
			}
		}
		return t
	case *ast.CallExpr:
		return ta.callTaint(x)
	}
	return taint{}
}

// callTaint computes the taint of a call's results and flags tainted
// arguments flowing into callee sink parameters.
func (ta *taintAnalysis) callTaint(call *ast.CallExpr) taint {
	info := ta.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return ta.exprTaint(call.Args[0])
		}
		return taint{}
	}
	if name, ok := builtinName(info, call); ok {
		switch name {
		case "len", "cap", "make", "new":
			// len(m) and cap are order-independent even on tainted
			// containers.
			return taint{}
		default:
			var t taint
			for _, a := range call.Args {
				t = t.union(ta.exprTaint(a))
			}
			return t
		}
	}
	fn := staticCallee(info, call)
	if fn != nil {
		fn = fn.Origin()
		if src := nondetSource(fn); src != "" {
			return taint{src: src}
		}
		if sum := ta.w.taintSummary(fn); sum != nil {
			args := alignArgs(call, fn)
			var t taint
			if sum.retSource != "" {
				t.src = sum.retSource
			}
			for i := 0; i < 64 && i < len(args); i++ {
				if args[i] == nil {
					continue
				}
				at := ta.exprTaint(args[i])
				if sum.retParams&(1<<i) != 0 {
					t = t.union(at)
				}
				if sum.sinkParams&(1<<i) != 0 && at.src != "" && ta.report {
					ta.violationf(call.Pos(), "order-dependent value (%s) passed to %s, which feeds it into a fingerprint sink; sort or annotate the source with //detlint:ordered", at.src, fn.Name())
				}
				if sum.sinkParams&(1<<i) != 0 {
					ta.sum.sinkParams |= at.params
				}
			}
			return t
		}
	}
	// External or unresolved call: results conservatively carry the
	// union of the argument (and receiver) taints — fmt.Sprintf of
	// map-ordered data is still map-ordered data.
	var t taint
	for _, a := range call.Args {
		t = t.union(ta.exprTaint(a))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		t = t.union(ta.exprTaint(sel.X))
	}
	return t
}

// nondetSource recognizes stdlib calls whose results are inherently
// order- or schedule-dependent.
func nondetSource(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "wall-clock read (time." + fn.Name() + ")"
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() == nil {
			return "global RNG draw (rand." + fn.Name() + ")"
		}
	}
	return ""
}

// finish walks once more to find sinks and fold returns into the summary.
func (ta *taintAnalysis) finish() {
	info := ta.pkg.Info
	ast.Inspect(ta.decl, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			ta.checkSinkCall(st)
			// Statement-position calls never flow through exprTaint, so
			// the callee-summary sink check (tainted argument reaching a
			// sink parameter) runs here; duplicates are deduplicated by
			// position upstream.
			ta.callTaint(st)
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !isFingerprintName(sel.Sel.Name) {
					continue
				}
				var t taint
				if len(st.Rhs) == len(st.Lhs) {
					t = ta.exprTaint(st.Rhs[i])
				} else if len(st.Rhs) == 1 {
					t = ta.exprTaint(st.Rhs[0])
				}
				ta.sinkHit(st.Pos(), t, "assignment to "+sel.Sel.Name+" field")
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && isFingerprintName(key.Name) {
					ta.sinkHit(kv.Pos(), ta.exprTaint(kv.Value), key.Name+" field")
				}
			}
		case *ast.ReturnStmt:
			for _, e := range st.Results {
				t := ta.exprTaint(e)
				if t.src != "" && ta.sum.retSource == "" {
					ta.sum.retSource = t.src
				}
				ta.sum.retParams |= t.params
			}
		}
		return true
	})
	// Named results assigned anywhere count as returned.
	if ta.decl.Type.Results != nil {
		for _, f := range ta.decl.Type.Results.List {
			for _, name := range f.Names {
				t := ta.objTaint(info.Defs[name])
				if t.src != "" && ta.sum.retSource == "" {
					ta.sum.retSource = t.src
				}
				ta.sum.retParams |= t.params
			}
		}
	}
}

// checkSinkCall flags tainted arguments to hash/digest writes and
// fingerprint constructors.
func (ta *taintAnalysis) checkSinkCall(call *ast.CallExpr) {
	fn := staticCallee(ta.pkg.Info, call)
	if fn == nil {
		return
	}
	sink := ""
	switch {
	case isHashSinkMethod(fn):
		sink = "hash " + fn.Name()
	case ta.isHashSinkRecv(call, fn):
		// hash.Hash embeds io.Writer, so Write resolves to an io method;
		// the receiver's static type identifies the digest.
		sink = "hash " + fn.Name()
	case isFingerprintName(fn.Name()):
		sink = fn.Name() + " call"
	}
	if sink == "" {
		return
	}
	for _, a := range call.Args {
		t := ta.exprTaint(a)
		ta.sinkHit(call.Pos(), t, sink)
	}
	// A tainted receiver state flowing into Sum is covered by the
	// argument writes that tainted it; receiver tracking is not needed.
}

// sinkHit records a violation (report mode) and the parameter flows
// (summary mode) for a value reaching a fingerprint sink.
func (ta *taintAnalysis) sinkHit(pos token.Pos, t taint, sink string) {
	if t.src != "" && ta.report {
		ta.violationf(pos, "order-dependent value reaches fingerprint sink (%s): %s; sort the data or annotate the source with //detlint:ordered", sink, t.src)
	}
	ta.sum.sinkParams |= t.params
}

func (ta *taintAnalysis) violationf(pos token.Pos, format string, args ...any) {
	ta.violations = append(ta.violations, Violation{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// isHashSinkMethod reports whether fn is a digest-building method of a
// hash or crypto package type (hash.Hash.Write, Sum32, …).
func isHashSinkMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || fn.Pkg() == nil {
		return false
	}
	if !isSinkMethodName(fn.Name()) {
		return false
	}
	return isHashPkgPath(fn.Pkg().Path())
}

// isHashSinkRecv reports whether the call is a sink-named method invoked
// on a value whose static type belongs to a hash or crypto package —
// catching interface methods inherited through embedding (io.Writer).
func (ta *taintAnalysis) isHashSinkRecv(call *ast.CallExpr, fn *types.Func) bool {
	if !isSinkMethodName(fn.Name()) {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := ta.pkg.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return isHashPkgPath(named.Obj().Pkg().Path())
}

func isSinkMethodName(name string) bool {
	switch name {
	case "Write", "WriteString", "Sum", "Sum32", "Sum64":
		return true
	}
	return false
}

func isHashPkgPath(path string) bool {
	return path == "hash" || strings.HasPrefix(path, "hash/") ||
		path == "crypto" || strings.HasPrefix(path, "crypto/")
}

// isFingerprintName matches the repository's fingerprint/receipt naming.
func isFingerprintName(name string) bool {
	return name == "Fingerprint" || name == "WriteFingerprint"
}

// alignArgs aligns a call's arguments with the callee's parameter
// indexing (receiver first for methods).
func alignArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
		return append([]ast.Expr{nil}, call.Args...)
	}
	return call.Args
}

// baseIdentOf peels selector/index/star/paren/slice chains to the base
// identifier, nil when the base is not one.
func baseIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
