// Package effects is detlint's interprocedural effect analyzer: the
// machinery behind the failsafe, commitpure and taintfp passes.
//
// It computes per-function *effect summaries* — what a function acquires
// (through the *core.Ctx protocol), which shared memory it writes, which
// function-valued parameters it calls — over a whole program at once, and
// then checks the paper's cautiousness contract (§2.1) at every operator
// entry point: a task body performs all shared reads through Ctx.Acquire
// before its failsafe point and defers every shared write into the
// Ctx.OnCommit closure, so a conflict detected at the failsafe point can
// abort the task by discarding it, with no rollback.
//
// "Shared" is decided by provenance, not syntax: a write lands in shared
// memory when the written location is reachable from a function parameter,
// a captured variable or package-level state; writes into memory the
// function allocated itself (a freshly built Cavity, a local plan slice)
// are invisible to other tasks and are never flagged. Provenance flows
// through assignments, slicing, range statements and call results, and
// effect summaries compose across static calls — including closures passed
// through function-typed parameters, the mesh.Acquirer pattern the dmr/dt
// operators use to thread ctx.Acquire two calls deep.
//
// Soundness caveats (documented in DESIGN.md §6): dynamic calls the
// analyzer cannot resolve (interface methods, stored function values)
// degrade to a finding unless the enclosing callee carries a checked
// //detlint:effects declaration; calls into other modules are assumed to
// write nothing but memory reachable from their arguments is not tracked
// beyond the sync/atomic special case; recursion is summarized from the
// first visit (an under-approximation).
package effects

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Pkg is one analyzed package, supplied by the lint driver.
type Pkg struct {
	// Path is the package's import path (diagnostic only).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	// Declared looks up a //detlint:effects declaration covering the
	// given position (a function declaration or literal start). Nil
	// callbacks mean "no declarations".
	Declared func(pos token.Pos) *Declared
	// Ordered reports whether a //detlint:ordered annotation covers the
	// given position (a map range). Nil means "never".
	Ordered func(pos token.Pos) bool
}

// Declared is a parsed //detlint:effects directive: the function's effect
// summary as claimed by the author, used where dynamic calls blind the
// analyzer. The claim is itself checked: a declaration that understates
// the statically inferred effects is a finding.
type Declared struct {
	Acquires bool // acquires=ctx: calls Ctx.Acquire, directly or transitively
	Writes   bool // writes=shared: writes memory visible outside the call
	Reads    bool // reads=shared (informational; not currently enforced)
	Reason   string
}

// EffectKind classifies one entry of a summary.
type EffectKind uint8

const (
	// WriteGlobal is a write to package-level state (any package's).
	WriteGlobal EffectKind = iota
	// WriteParam is a write through the memory of parameter Param.
	WriteParam
	// WriteCaptured is a write to memory captured from outside the
	// analyzed frame (only function literals can produce it).
	WriteCaptured
	// UnknownCall is a call whose effects the analyzer cannot see.
	UnknownCall
)

// Effect is one caller-visible effect of a function.
type Effect struct {
	Kind EffectKind
	// Param is the parameter index for WriteParam (receiver = 0 shifts
	// ordinary parameters up by one on methods).
	Param int
	// Pos is the position of the effect inside the summarized function.
	Pos token.Pos
	// Path describes the effect for reporting, innermost first
	// ("applyCavity: write through parameter cav").
	Path string
}

// Summary is the caller-visible behavior of one package-level function.
type Summary struct {
	// Acquires reports a transitive Ctx.Acquire call.
	Acquires bool
	// RegistersCommit reports a transitive Ctx.OnCommit call.
	RegistersCommit bool
	// Effects are the shared writes and unknown calls visible to callers.
	Effects []Effect
	// ParamCalls marks function-typed parameters the function may call
	// (directly or by forwarding them to another ParamCalls callee).
	ParamCalls map[int]bool
	// RetProv is the provenance of pointer-carrying return values,
	// expressed in the summarized function's own frame.
	RetProv prov
	// Declared is the author's //detlint:effects claim, if any. When
	// present it replaces the inferred effects for callers.
	Declared *Declared
	// inferred keeps the raw pre-declaration effects for the
	// declaration-vs-inference check.
	inferred         []Effect
	inferredAcquires bool
}

// Inferred returns the raw statically inferred effects and acquire flag,
// before any //detlint:effects declaration was applied.
func (s *Summary) Inferred() ([]Effect, bool) { return s.inferred, s.inferredAcquires }

// World holds the cross-package analysis state: every known function
// declaration, memoized summaries and taint facts.
type World struct {
	pkgs []*Pkg
	// paths is the set of analyzed package import paths; a function from
	// one of these with no body in decls is a dynamic-dispatch target.
	paths map[string]bool
	// decls maps package-level functions and methods to their syntax.
	decls map[*types.Func]*fnDecl
	sums  map[*types.Func]*Summary
	open  map[*types.Func]bool

	taints    map[*types.Func]*taintSum
	taintOpen map[*types.Func]bool
}

type fnDecl struct {
	decl *ast.FuncDecl
	pkg  *Pkg
}

// NewWorld indexes the given packages. Packages share one token.FileSet.
func NewWorld(pkgs []*Pkg) *World {
	w := &World{
		pkgs:      pkgs,
		paths:     make(map[string]bool),
		decls:     make(map[*types.Func]*fnDecl),
		sums:      make(map[*types.Func]*Summary),
		open:      make(map[*types.Func]bool),
		taints:    make(map[*types.Func]*taintSum),
		taintOpen: make(map[*types.Func]bool),
	}
	for _, p := range pkgs {
		w.paths[p.Path] = true
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					w.decls[fn] = &fnDecl{decl: fd, pkg: p}
				}
			}
		}
	}
	return w
}

// prov is a provenance set: which memory a value may reference. The low
// bits are category flags; parameter indices occupy the high bits.
type prov uint64

const (
	provFresh    prov = 1 << 0 // memory allocated inside the frame
	provGlobal   prov = 1 << 1 // package-level state
	provCaptured prov = 1 << 2 // variables captured from outside the frame
	provParamLo       = 8      // bit i+provParamLo: parameter i
	maxParams         = 48
)

func paramBit(i int) prov {
	if i >= maxParams {
		return provGlobal // overflow: treat conservatively as shared
	}
	return 1 << (provParamLo + i)
}

// shared reports whether the provenance includes any caller-visible memory.
func (p prov) shared() bool { return p&^provFresh != 0 }

// params iterates the parameter indices present in p.
func (p prov) params(f func(int)) {
	for i := 0; i < maxParams; i++ {
		if p&(1<<(provParamLo+i)) != 0 {
			f(i)
		}
	}
}

// frame is the per-function analysis state. A frame covers one root
// function (declaration or literal) plus every function literal it calls:
// closure effects are resolved against the root's scope, which is how a
// captured-ctx acquirer inside an operator counts as the operator's own
// acquire.
type frame struct {
	w    *World
	pkg  *Pkg
	root ast.Node      // *ast.FuncDecl or *ast.FuncLit
	ftyp *ast.FuncType // the root's type syntax
	body *ast.BlockStmt

	params map[types.Object]int // param object -> index (receiver = 0 on methods)
	vars   map[types.Object]prov
	// bindings maps local variables assigned exactly one function
	// literal to that literal, so calls through them resolve statically.
	bindings map[types.Object]*ast.FuncLit
	// analyzing guards against recursive literal inlining.
	analyzing map[*ast.FuncLit]bool

	// results
	acquires        bool
	registersCommit bool
	effects         []Effect
	effectSeen      map[string]bool
	pcalls          map[int]bool   // function-typed parameters this frame calls
	commits         []*ast.FuncLit // closures registered via OnCommit
	retProv         prov
}

// isModulePkg reports whether p is one of the analyzed packages.
func (w *World) isModulePkg(p *types.Package) bool {
	return p != nil && w.paths[p.Path()]
}

// newFrame prepares a frame for the function rooted at node.
func newFrame(w *World, pkg *Pkg, node ast.Node) *frame {
	fr := &frame{
		w: w, pkg: pkg, root: node,
		params:     make(map[types.Object]int),
		vars:       make(map[types.Object]prov),
		bindings:   make(map[types.Object]*ast.FuncLit),
		analyzing:  make(map[*ast.FuncLit]bool),
		effectSeen: make(map[string]bool),
		pcalls:     make(map[int]bool),
	}
	var ftyp *ast.FuncType
	var recv *ast.FieldList
	switch n := node.(type) {
	case *ast.FuncDecl:
		ftyp, recv, fr.body = n.Type, n.Recv, n.Body
	case *ast.FuncLit:
		ftyp, fr.body = n.Type, n.Body
	}
	fr.ftyp = ftyp
	idx := 0
	if recv != nil {
		for _, f := range recv.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					fr.params[obj] = idx
				}
				idx++
			}
			if len(f.Names) == 0 {
				idx++
			}
		}
	}
	if ftyp != nil && ftyp.Params != nil {
		for _, f := range ftyp.Params.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					fr.params[obj] = idx
				}
				idx++
			}
		}
	}
	for obj, i := range fr.params {
		fr.vars[obj] = paramBit(i)
	}
	return fr
}

// analyze runs the frame to a fixpoint: provenance first (so later
// statements see bindings made anywhere in the body), then one effect
// pass.
func (fr *frame) analyze() {
	if fr.body == nil {
		return
	}
	fr.collectBindings(fr.body)
	// Provenance fixpoint: assignments are order-independent here, so a
	// few passes converge (provenance sets only grow).
	for i := 0; i < 4; i++ {
		if !fr.provPass(fr.body) {
			break
		}
	}
	fr.effectPass(fr.body)
}

// collectBindings records local `name := func(...){...}` bindings in the
// whole root (including nested literals: msf binds helpers inside the
// operator body). A variable assigned more than once is not a binding.
func (fr *frame) collectBindings(body ast.Node) {
	count := make(map[types.Object]int)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := fr.pkg.Info.ObjectOf(id)
				if obj == nil {
					continue
				}
				count[obj]++
				if i < len(st.Rhs) && len(st.Lhs) == len(st.Rhs) {
					if lit, ok := ast.Unparen(st.Rhs[i]).(*ast.FuncLit); ok {
						fr.bindings[obj] = lit
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				obj := fr.pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				count[obj]++
				if i < len(st.Values) {
					if lit, ok := ast.Unparen(st.Values[i]).(*ast.FuncLit); ok {
						fr.bindings[obj] = lit
					}
				}
			}
		}
		return true
	})
	for obj, n := range count {
		if n > 1 {
			delete(fr.bindings, obj)
		}
	}
}

// provPass propagates provenance through one walk; reports change.
func (fr *frame) provPass(body ast.Node) (changed bool) {
	join := func(obj types.Object, p prov) {
		if obj == nil || p == 0 {
			return
		}
		if fr.vars[obj]|p != fr.vars[obj] {
			fr.vars[obj] |= p
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := fr.pkg.Info.ObjectOf(id)
				if obj == nil || !fr.isLocal(obj) {
					continue
				}
				var p prov
				if len(st.Rhs) == len(st.Lhs) {
					p = fr.provOf(st.Rhs[i])
				} else if len(st.Rhs) == 1 {
					// multi-value: call or type assert; join all.
					p = fr.provOf(st.Rhs[0])
				}
				join(obj, p)
			}
		case *ast.RangeStmt:
			p := fr.provOf(st.X)
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if e == nil {
					continue
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if obj := fr.pkg.Info.ObjectOf(id); obj != nil && fr.isLocal(obj) {
						join(obj, p)
					}
				}
			}
		case *ast.GenDecl:
			// var x = expr
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						if obj := fr.pkg.Info.Defs[name]; obj != nil {
							join(obj, fr.provOf(vs.Values[i]))
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// isLocal reports whether obj is declared inside the frame root (and is
// not one of its parameters).
func (fr *frame) isLocal(obj types.Object) bool {
	if _, isParam := fr.params[obj]; isParam {
		return false
	}
	return declaredWithin(obj, fr.root)
}

// classify places an object relative to the frame.
func (fr *frame) classify(obj types.Object) (p prov, kind string) {
	if obj == nil {
		return provFresh, "value"
	}
	if i, ok := fr.params[obj]; ok {
		return paramBit(i), "parameter"
	}
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return provGlobal, "package variable"
	}
	if declaredWithin(obj, fr.root) {
		if p, ok := fr.vars[obj]; ok && p != 0 {
			return p, "local"
		}
		return provFresh, "local"
	}
	return provCaptured, "captured variable"
}

// provOf computes the provenance of the memory an expression's value may
// reference. Plain values (numbers, bools) come out fresh; what matters is
// pointer-carrying data.
func (fr *frame) provOf(e ast.Expr) prov {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" || x.Name == "nil" {
			return provFresh
		}
		obj := fr.pkg.Info.ObjectOf(x)
		if _, isFn := obj.(*types.Func); isFn {
			return provFresh
		}
		// A value that cannot carry references (an int loop variable, say)
		// references nothing, wherever it was copied from: without this,
		// ranging over a shared slice would poison the scalar element
		// variable and every fresh slice it is appended into.
		if v, ok := obj.(*types.Var); ok && !pointerCarrying(v.Type()) {
			return provFresh
		}
		p, _ := fr.classify(obj)
		return p
	case *ast.SelectorExpr:
		// Qualified package identifier?
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := fr.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				p, _ := fr.classify(fr.pkg.Info.ObjectOf(x.Sel))
				return p
			}
		}
		return fr.provOf(x.X)
	case *ast.IndexExpr:
		return fr.provOf(x.X)
	case *ast.IndexListExpr:
		return fr.provOf(x.X)
	case *ast.StarExpr:
		return fr.provOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return fr.addrProv(x.X)
		}
		return provFresh
	case *ast.SliceExpr:
		// s[:0:0] deliberately drops the backing array: every append
		// reallocates, so the result is fresh.
		if x.Slice3 && isZeroLit(x.High) && isZeroLit(x.Max) {
			return provFresh
		}
		return fr.provOf(x.X)
	case *ast.CompositeLit:
		return provFresh
	case *ast.CallExpr:
		return fr.callProv(x)
	case *ast.TypeAssertExpr:
		return fr.provOf(x.X)
	case *ast.BinaryExpr, *ast.BasicLit, *ast.FuncLit:
		return provFresh
	}
	return provFresh
}

// addrProv is the provenance of an expression's *storage* — what `&e`
// references. It differs from provOf exactly where the scalar shortcut
// applies: a captured int carries no references, but its address does
// reference captured memory.
func (fr *frame) addrProv(e ast.Expr) prov {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return provFresh
		}
		p, _ := fr.classify(fr.pkg.Info.ObjectOf(x))
		return p
	case *ast.SelectorExpr:
		// Qualified package identifier?
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := fr.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				p, _ := fr.classify(fr.pkg.Info.ObjectOf(x.Sel))
				return p
			}
		}
		// &p.f through a pointer lands in the pointed-to memory; through a
		// value it lands in the value's own storage.
		if t := fr.pkg.Info.TypeOf(x.X); t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				return fr.provOf(x.X)
			}
		}
		return fr.addrProv(x.X)
	case *ast.IndexExpr:
		if t := fr.pkg.Info.TypeOf(x.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				return fr.provOf(x.X)
			}
		}
		return fr.addrProv(x.X) // array value: the array's own storage
	case *ast.StarExpr:
		return fr.provOf(x.X)
	case *ast.CompositeLit:
		return provFresh
	}
	return fr.provOf(e)
}

func isZeroLit(e ast.Expr) bool {
	b, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && b.Value == "0"
}

// callProv is the provenance of a call's results.
func (fr *frame) callProv(call *ast.CallExpr) prov {
	// Conversions look like calls.
	if fr.pkg.Info != nil {
		if tv, ok := fr.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			if len(call.Args) == 1 {
				return fr.provOf(call.Args[0])
			}
			return provFresh
		}
	}
	if name, ok := builtinName(fr.pkg.Info, call); ok {
		switch name {
		case "append":
			p := provFresh
			for _, a := range call.Args {
				p |= fr.provOf(a)
			}
			return p
		case "make", "new":
			return provFresh
		default:
			return provFresh
		}
	}
	if fn := staticCallee(fr.pkg.Info, call); fn != nil {
		fn = fn.Origin()
		if isCtxMethod(fn) {
			return provFresh
		}
		if sum := fr.w.summarize(fn); sum != nil {
			return fr.translateProv(sum.RetProv, call, fn)
		}
	}
	// Unknown callee: results may alias any pointer-carrying argument.
	p := provFresh
	for _, a := range call.Args {
		if pointerCarrying(fr.pkg.Info.TypeOf(a)) {
			p |= fr.provOf(a)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		p |= fr.provOf(sel.X)
	}
	return p
}

// translateProv rewrites a callee-frame provenance into this frame via the
// call's arguments.
func (fr *frame) translateProv(p prov, call *ast.CallExpr, fn *types.Func) prov {
	out := p & (provFresh | provGlobal)
	if p&provCaptured != 0 {
		out |= provGlobal // captured state of a package function: shared
	}
	args := fr.callArgs(call, fn)
	p.params(func(i int) {
		if i < len(args) && args[i] != nil {
			out |= fr.provOf(args[i])
		} else {
			out |= provFresh
		}
	})
	return out
}

// callArgs aligns the call's arguments with the callee's parameter
// indexing (receiver first for methods).
func (fr *frame) callArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
		return append([]ast.Expr{nil}, call.Args...)
	}
	return call.Args
}

// pointerCarrying reports whether values of t can reference other memory.
func pointerCarrying(t types.Type) bool {
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerCarrying(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return pointerCarrying(u.Elem())
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	}
	return false
}

// declaredWithin reports whether obj's declaration lies inside node n.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() <= n.End()
}

// builtinName identifies calls to builtins.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name, true
	}
	return "", false
}

// staticCallee resolves a call to a package-level function or method.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isCtxType reports whether t (possibly behind a pointer) is the runtime's
// core.Ctx[T] task context. The root package's galois.Ctx is an alias of
// it, materialized as *types.Alias since Go 1.23, so aliases unwrap first.
func isCtxType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Ctx" || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), "internal/core")
}

// isCtxMethod reports whether fn is a method on core.Ctx.
func isCtxMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isCtxType(sig.Recv().Type())
}

func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// atomicWriteMethods are the sync/atomic mutators; Load is a read.
var atomicWriteMethods = map[string]bool{
	"Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// isAtomicMethod reports whether fn is a sync/atomic method and whether it
// mutates its receiver.
func isAtomicMethod(fn *types.Func) (isAtomic, writes bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false, false
	}
	return true, atomicWriteMethods[fn.Name()]
}

// summarize computes (and memoizes) the caller-visible summary of a
// package-level function. Recursive cycles summarize from the partial
// state of the first visit.
func (w *World) summarize(fn *types.Func) *Summary {
	if s, ok := w.sums[fn]; ok {
		return s
	}
	d, ok := w.decls[fn]
	if !ok {
		return nil // external or bodyless: caller decides
	}
	if w.open[fn] {
		// Recursion: an empty summary for the back edge; the outer
		// visit completes the real one.
		return &Summary{}
	}
	w.open[fn] = true
	defer delete(w.open, fn)

	fr := newFrame(w, d.pkg, d.decl)
	fr.analyze()
	fr.collectReturns()

	sum := &Summary{
		Acquires:         fr.acquires,
		RegistersCommit:  fr.registersCommit,
		RetProv:          fr.retProv,
		Effects:          fr.effects,
		inferredAcquires: fr.acquires,
	}
	sum.inferred = sum.Effects
	sum.ParamCalls = fr.paramCalls()
	if d.pkg.Declared != nil {
		if decl := d.pkg.Declared(d.decl.Pos()); decl != nil {
			sum.Declared = decl
			// The declaration replaces the inferred summary for
			// callers; unknown calls are resolved by authority.
			sum.Acquires = decl.Acquires
			sum.Effects = nil
			if decl.Writes {
				sum.Effects = []Effect{{
					Kind: WriteGlobal, Pos: d.decl.Pos(),
					Path: fn.Name() + ": declared shared write (//detlint:effects)",
				}}
			}
		}
	}
	w.sums[fn] = sum
	return sum
}

// paramCalls extracts which function-typed parameters the frame calls.
// The effect pass records them as synthetic effects on fr.pcalls.
func (fr *frame) paramCalls() map[int]bool {
	if len(fr.pcalls) == 0 {
		return nil
	}
	out := make(map[int]bool, len(fr.pcalls))
	for i := range fr.pcalls {
		out[i] = true
	}
	return out
}

// collectReturns folds the provenance of every pointer-carrying return
// expression into fr.retProv.
func (fr *frame) collectReturns() {
	if fr.body == nil {
		return
	}
	ast.Inspect(fr.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			if pointerCarrying(fr.pkg.Info.TypeOf(e)) {
				fr.retProv |= fr.provOf(e)
			}
		}
		return true
	})
	// Named results assigned anywhere in the body.
	if fr.ftyp != nil && fr.ftyp.Results != nil {
		for _, f := range fr.ftyp.Results.List {
			for _, name := range f.Names {
				if obj := fr.pkg.Info.Defs[name]; obj != nil {
					if pointerCarrying(obj.Type()) {
						fr.retProv |= fr.vars[obj] | provFresh
					}
				}
			}
		}
	}
}

// addEffect records a deduplicated frame effect.
func (fr *frame) addEffect(e Effect) {
	key := fmt.Sprintf("%d/%d/%s", e.Kind, e.Param, e.Path)
	if fr.effectSeen[key] {
		return
	}
	fr.effectSeen[key] = true
	fr.effects = append(fr.effects, e)
}
