package effects

import (
	"go/ast"
	"go/token"
	"go/types"
)

// effectPass walks the statements under n, recording acquire events,
// commit registrations, shared writes and unresolvable calls. Nested
// function literal bodies are skipped: a literal's effects happen when it
// is *called*, so they enter through call-site resolution (direct calls,
// single-assignment bindings, and function-typed arguments to callees
// that invoke them) — defining a helper before the failsafe point and
// running it inside the commit closure is legal and must not be flagged.
func (fr *frame) effectPass(n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				fr.recordWrite(lhs, "assignment")
			}
		case *ast.IncDecStmt:
			fr.recordWrite(x.X, "update")
		case *ast.SendStmt:
			fr.recordProvWrite(fr.provOf(x.Chan), x.Pos(), "send on channel "+types.ExprString(x.Chan))
		case *ast.CallExpr:
			fr.handleCall(x)
		}
		return true
	})
}

// recordWrite classifies one write target. Storage writes (the variable
// itself, or a field/element of a value held directly in it) touch only
// the variable's own storage: locals and parameters are frame-private
// there (a parameter is a copy), while package-level and captured
// variables are shared. Reference writes — any path crossing a pointer,
// slice or map — land in whatever memory the base may reference, so the
// base's provenance decides.
func (fr *frame) recordWrite(lhs ast.Expr, what string) {
	obj, ref, ok := fr.lhsTarget(lhs)
	if ok && !ref {
		p, kind := fr.classify(obj)
		switch {
		case p&provGlobal != 0 && kind == "package variable":
			fr.addEffect(Effect{Kind: WriteGlobal, Pos: lhs.Pos(),
				Path: what + " to package variable " + obj.Name()})
		case kind == "captured variable":
			fr.addEffect(Effect{Kind: WriteCaptured, Pos: lhs.Pos(),
				Path: what + " to captured variable " + obj.Name()})
		}
		return
	}
	if !ok && !ref {
		return // blank identifier or unresolved
	}
	fr.recordProvWrite(fr.provOf(lhs), lhs.Pos(), what+" through "+types.ExprString(lhs))
}

// lhsTarget peels a write target down to its base variable, tracking
// whether the path crosses a reference (pointer, slice, map). ok=false
// with ref=true means the base is not a plain variable (a call result,
// say) and the write must be classified by provenance alone; ok=false
// with ref=false means there is nothing to record (blank identifier).
func (fr *frame) lhsTarget(e ast.Expr) (obj types.Object, ref bool, ok bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil, false, false
			}
			obj = fr.pkg.Info.ObjectOf(x)
			return obj, ref, obj != nil
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			ref = true
			e = x.X
		case *ast.SelectorExpr:
			if id, isIdent := x.X.(*ast.Ident); isIdent {
				if _, isPkg := fr.pkg.Info.Uses[id].(*types.PkgName); isPkg {
					obj = fr.pkg.Info.ObjectOf(x.Sel)
					return obj, ref, obj != nil
				}
			}
			if t := fr.pkg.Info.TypeOf(x.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					ref = true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			if t := fr.pkg.Info.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					ref = true
				}
			}
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return nil, true, false
		}
	}
}

// recordProvWrite emits effects for a reference write into memory of
// provenance p. Fresh memory is frame-private and produces nothing.
func (fr *frame) recordProvWrite(p prov, pos token.Pos, desc string) {
	if p&provGlobal != 0 {
		fr.addEffect(Effect{Kind: WriteGlobal, Pos: pos, Path: desc + " (package-level state)"})
	}
	if p&provCaptured != 0 {
		fr.addEffect(Effect{Kind: WriteCaptured, Pos: pos, Path: desc + " (captured state)"})
	}
	p.params(func(i int) {
		fr.addEffect(Effect{Kind: WriteParam, Param: i, Pos: pos, Path: desc})
	})
}

// sortMutators are the sort-package entry points that reorder their
// argument in place — the one stdlib family whose argument writes matter
// to the shared-state analysis.
var sortMutators = map[string]bool{
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

// handleCall dispatches one call expression: builtins, Ctx protocol
// methods, sync/atomic, function literals and bindings, summarized module
// functions, and the documented external-call assumption.
func (fr *frame) handleCall(call *ast.CallExpr) {
	info := fr.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion: evaluates its operand only
	}
	if name, ok := builtinName(info, call); ok {
		switch name {
		case "append", "copy", "delete", "clear":
			if len(call.Args) > 0 {
				fr.recordProvWrite(fr.provOf(call.Args[0]), call.Pos(),
					name+" into "+types.ExprString(call.Args[0]))
			}
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		fr.inlineLit(lit, call.Args)
		return
	}
	fn := staticCallee(info, call)
	if fn == nil {
		// Call through a function value: a single-assignment local
		// binding resolves statically; calling a function-typed
		// parameter is recorded for the caller to resolve; anything
		// else is opaque.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			obj := info.ObjectOf(id)
			if lit := fr.bindings[obj]; lit != nil {
				fr.inlineLit(lit, call.Args)
				return
			}
			if i, isParam := fr.params[obj]; isParam {
				fr.pcalls[i] = true
				return
			}
		}
		fr.addEffect(Effect{Kind: UnknownCall, Pos: call.Pos(),
			Path: "call through unresolved function value " + types.ExprString(call.Fun)})
		return
	}
	fn = fn.Origin()
	if isCtxMethod(fn) {
		switch fn.Name() {
		case "Acquire":
			fr.acquires = true
		case "OnCommit":
			fr.registersCommit = true
			if len(call.Args) == 1 {
				if lit := fr.resolveLit(call.Args[0]); lit != nil {
					fr.commits = append(fr.commits, lit)
				} else {
					fr.addEffect(Effect{Kind: UnknownCall, Pos: call.Pos(),
						Path: "OnCommit handler " + types.ExprString(call.Args[0]) + " is not a resolvable function literal"})
				}
			}
		}
		return // Push, PushWithID, CountAtomic, ... have no shared effect
	}
	if isAtomic, writes := isAtomicMethod(fn); isAtomic {
		if writes {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				fr.recordProvWrite(fr.provOf(sel.X), call.Pos(),
					"atomic "+fn.Name()+" on "+types.ExprString(sel.X))
			}
		}
		return
	}
	if _, known := fr.w.decls[fn]; known {
		fr.applySummary(fn, call)
		return
	}
	if fr.w.isModulePkg(fn.Pkg()) {
		fr.addEffect(Effect{Kind: UnknownCall, Pos: call.Pos(),
			Path: "dynamic call to " + fn.Name() + " (interface method or no analyzable body)"})
		return
	}
	// External call: assumed effect-free with respect to module shared
	// state (see the package doc), except the in-place sort family.
	if fn.Pkg() != nil && fn.Pkg().Path() == "sort" && sortMutators[fn.Name()] && len(call.Args) > 0 {
		fr.recordProvWrite(fr.provOf(call.Args[0]), call.Pos(),
			"sort."+fn.Name()+" of "+types.ExprString(call.Args[0]))
	}
}

// applySummary translates a summarized callee's effects into this frame
// through the call's arguments.
func (fr *frame) applySummary(fn *types.Func, call *ast.CallExpr) {
	sum := fr.w.summarize(fn)
	if sum == nil {
		fr.addEffect(Effect{Kind: UnknownCall, Pos: call.Pos(),
			Path: "call to " + fn.Name() + " with no analyzable body"})
		return
	}
	if sum.Acquires {
		fr.acquires = true
	}
	if sum.RegistersCommit {
		fr.registersCommit = true
	}
	args := fr.callArgs(call, fn)
	for _, e := range sum.Effects {
		path := fn.Name() + ": " + e.Path
		switch e.Kind {
		case WriteGlobal, WriteCaptured:
			fr.addEffect(Effect{Kind: WriteGlobal, Pos: call.Pos(), Path: path})
		case UnknownCall:
			fr.addEffect(Effect{Kind: UnknownCall, Pos: call.Pos(), Path: path})
		case WriteParam:
			if e.Param < len(args) && args[e.Param] != nil {
				fr.recordProvWrite(fr.provOf(args[e.Param]), call.Pos(), path)
			}
		}
	}
	for i := range sum.ParamCalls {
		if i >= len(args) || args[i] == nil {
			continue
		}
		fr.resolveParamCall(fn, call, args[i])
	}
}

// resolveParamCall accounts for a callee invoking the function value we
// pass as arg: a literal (or binding) inlines into this frame — the
// mesh.Acquirer pattern, where an operator's ctx.Acquire closure runs two
// calls deep — a forwarded parameter propagates to our own ParamCalls,
// and a named function merges its summary (with untracked arguments).
func (fr *frame) resolveParamCall(fn *types.Func, call *ast.CallExpr, arg ast.Expr) {
	if lit := fr.resolveLit(arg); lit != nil {
		fr.inlineLit(lit, nil)
		return
	}
	if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
		obj := fr.pkg.Info.ObjectOf(id)
		if j, isParam := fr.params[obj]; isParam {
			fr.pcalls[j] = true
			return
		}
		if f2, isFn := obj.(*types.Func); isFn {
			fr.mergeOpaqueCall(f2.Origin(), arg.Pos(), fn.Name())
			return
		}
	}
	if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
		if f2, isFn := fr.pkg.Info.Uses[sel.Sel].(*types.Func); isFn {
			fr.mergeOpaqueCall(f2.Origin(), arg.Pos(), fn.Name())
			return
		}
	}
	fr.addEffect(Effect{Kind: UnknownCall, Pos: arg.Pos(),
		Path: fn.Name() + " invokes unresolved function value " + types.ExprString(arg)})
}

// mergeOpaqueCall merges the summary of a function passed by reference:
// its argument-directed writes cannot be mapped (we do not see the call),
// so parameter writes degrade to an unknown-call effect.
func (fr *frame) mergeOpaqueCall(f2 *types.Func, pos token.Pos, via string) {
	if _, known := fr.w.decls[f2]; !known {
		if fr.w.isModulePkg(f2.Pkg()) {
			fr.addEffect(Effect{Kind: UnknownCall, Pos: pos,
				Path: via + " invokes " + f2.Name() + " (no analyzable body)"})
		}
		return
	}
	sum := fr.w.summarize(f2)
	if sum == nil {
		return
	}
	if sum.Acquires {
		fr.acquires = true
	}
	if sum.RegistersCommit {
		fr.registersCommit = true
	}
	for _, e := range sum.Effects {
		path := via + " invokes " + f2.Name() + ": " + e.Path
		switch e.Kind {
		case WriteGlobal, WriteCaptured:
			fr.addEffect(Effect{Kind: WriteGlobal, Pos: pos, Path: path})
		case UnknownCall:
			fr.addEffect(Effect{Kind: UnknownCall, Pos: pos, Path: path})
		case WriteParam:
			fr.addEffect(Effect{Kind: UnknownCall, Pos: pos,
				Path: via + " invokes " + f2.Name() + ", which writes through an argument the analyzer cannot see"})
		}
	}
}

// resolveLit resolves an expression to a function literal: either the
// literal itself or a single-assignment local bound to one.
func (fr *frame) resolveLit(e ast.Expr) *ast.FuncLit {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return x
	case *ast.Ident:
		return fr.bindings[fr.pkg.Info.ObjectOf(x)]
	}
	return nil
}

// inlineLit walks a function literal's body inside this frame. When the
// call arguments are known, the literal's parameters take on their
// provenance so writes through them classify correctly; when a callee
// invokes the literal (args == nil), its parameter writes are invisible —
// a documented under-approximation.
func (fr *frame) inlineLit(lit *ast.FuncLit, args []ast.Expr) {
	if fr.analyzing[lit] {
		return
	}
	fr.analyzing[lit] = true
	defer delete(fr.analyzing, lit)
	if args != nil && lit.Type.Params != nil {
		i := 0
		for _, f := range lit.Type.Params.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			for _, name := range f.Names {
				if obj := fr.pkg.Info.Defs[name]; obj != nil && i < len(args) {
					fr.vars[obj] |= fr.provOf(args[i])
				}
				i++
			}
		}
	}
	fr.effectPass(lit.Body)
}
