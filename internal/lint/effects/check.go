package effects

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Violation is one check failure, positioned inside the checked package.
type Violation struct {
	Pos token.Pos
	Msg string
}

// Operator is one discovered task-body entry point: a function
// declaration or literal taking a *core.Ctx parameter that transitively
// calls Acquire or registers a commit handler. Function literals that are
// themselves commit handlers are excluded — they run after the failsafe
// point by construction and are checked by CheckCommits instead.
type Operator struct {
	Name string
	Pos  token.Pos
	fr   *frame
}

// Operators discovers the task bodies declared in pkg.
func (w *World) Operators(pkg *Pkg) []*Operator {
	handlers := w.commitHandlers(pkg)
	var ops []*Operator
	consider := func(node ast.Node, ftyp *ast.FuncType, name string, pos token.Pos) {
		if !hasCtxParam(pkg.Info, ftyp) {
			return
		}
		fr := newFrame(w, pkg, node)
		fr.analyze()
		if !fr.acquires && !fr.registersCommit {
			// Takes a Ctx but never establishes a neighborhood or a
			// commit (helpers that only Push): no failsafe point to
			// check against.
			return
		}
		ops = append(ops, &Operator{Name: name, Pos: pos, fr: fr})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					consider(x, x.Type, x.Name.Name, x.Pos())
				}
			case *ast.FuncLit:
				if !handlers[x] {
					consider(x, x.Type, "function literal", x.Pos())
				}
			}
			return true
		})
	}
	return ops
}

// hasCtxParam reports whether the function type has a *core.Ctx parameter.
func hasCtxParam(info *types.Info, ftyp *ast.FuncType) bool {
	if ftyp == nil || ftyp.Params == nil {
		return false
	}
	for _, f := range ftyp.Params.List {
		if isCtxType(info.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

// commitHandlers collects every function literal registered as a commit
// handler anywhere in pkg (directly or through a single-assignment
// binding in the enclosing declaration).
func (w *World) commitHandlers(pkg *Pkg) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	for _, site := range w.commitSites(pkg) {
		if site.handler != nil {
			out[site.handler] = true
		}
	}
	return out
}

// commitSite is one ctx.OnCommit registration.
type commitSite struct {
	call    *ast.CallExpr
	handler *ast.FuncLit // nil when the argument does not resolve
	root    ast.Node     // enclosing top-level declaration
}

// commitSites finds every OnCommit registration in pkg.
func (w *World) commitSites(pkg *Pkg) []*commitSite {
	var sites []*commitSite
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// One throwaway frame per declaration supplies the binding
			// map used to resolve `h := func(...){...}; ctx.OnCommit(h)`.
			fr := newFrame(w, pkg, fd)
			fr.collectBindings(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pkg.Info, call)
				if fn == nil || fn.Name() != "OnCommit" || !isCtxMethod(fn.Origin()) {
					return true
				}
				site := &commitSite{call: call, root: fd}
				if len(call.Args) == 1 {
					site.handler = fr.resolveLit(call.Args[0])
				}
				sites = append(sites, site)
				return true
			})
		}
	}
	return sites
}

// CheckFailsafe verifies the cautiousness contract on one operator: the
// body reachable before the failsafe point — everything outside the
// registered commit handlers, including helpers any number of calls deep
// — must not write shared state. Bodies re-execute under the inspect and
// validate modes, so any pre-commit shared write breaks the rollback-free
// abort the failsafe point exists to provide.
func (op *Operator) CheckFailsafe() []Violation {
	var out []Violation
	for _, e := range op.fr.effects {
		switch e.Kind {
		case UnknownCall:
			out = append(out, Violation{Pos: e.Pos,
				Msg: "cannot prove the operator is cautious: " + e.Path + "; resolve the call or declare the callee's effects with //detlint:effects"})
		default:
			out = append(out, Violation{Pos: e.Pos,
				Msg: "shared write before the failsafe point: " + e.Path + "; cautious operators defer shared writes into ctx.OnCommit"})
		}
	}
	return out
}

// CheckCommits verifies commit purity for every OnCommit registration in
// pkg: a commit handler runs after conflict detection holding only its
// own task's neighborhood, so it may write memory reachable from what the
// task acquired (captured locals, the work item) but must not touch
// package-level state, acquire further neighborhoods, or make calls the
// analyzer cannot see.
func (w *World) CheckCommits(pkg *Pkg) []Violation {
	var out []Violation
	for _, site := range w.commitSites(pkg) {
		if site.handler == nil {
			var desc string
			if len(site.call.Args) == 1 {
				desc = types.ExprString(site.call.Args[0])
			} else {
				desc = "argument"
			}
			out = append(out, Violation{Pos: site.call.Pos(),
				Msg: "commit handler " + desc + " does not resolve to a function literal; its writes cannot be verified"})
			continue
		}
		fr := newFrame(w, pkg, site.handler)
		// A handler may call helpers bound in the enclosing operator
		// body (`compress := func(...){...}` defined before the commit,
		// executed inside it), so bindings resolve against the whole
		// enclosing declaration, not just the handler.
		if fd, ok := site.root.(*ast.FuncDecl); ok && fd.Body != nil {
			fr.collectBindings(fd.Body)
		}
		fr.analyze()
		if fr.acquires {
			out = append(out, Violation{Pos: site.handler.Pos(),
				Msg: "commit handler calls Acquire: neighborhoods must be fixed before the failsafe point, not during commit"})
		}
		for _, e := range fr.effects {
			switch e.Kind {
			case WriteGlobal:
				out = append(out, Violation{Pos: e.Pos,
					Msg: "commit handler writes state its task never acquired: " + e.Path})
			case UnknownCall:
				out = append(out, Violation{Pos: e.Pos,
					Msg: "cannot verify commit purity: " + e.Path + "; resolve the call or declare the callee's effects with //detlint:effects"})
			}
			// WriteCaptured / WriteParam: memory reachable from the
			// task's own acquired neighborhood — the contract.
		}
	}
	return out
}

// CheckDeclared verifies every //detlint:effects declaration in pkg
// against the statically inferred summary: a declaration may widen the
// analyzer's view (that is its purpose, for dynamic calls) but must never
// narrow it — understating inferred effects would turn the annotation
// into a silent suppression.
func (w *World) CheckDeclared(pkg *Pkg) []Violation {
	var out []Violation
	if pkg.Declared == nil {
		return out
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decl := pkg.Declared(fd.Pos())
			if decl == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := w.summarize(fn)
			if sum == nil {
				continue
			}
			inferred, acquires := sum.Inferred()
			if acquires && !decl.Acquires {
				out = append(out, Violation{Pos: fd.Pos(),
					Msg: fd.Name.Name + " declares acquires=none but calls Acquire (directly or transitively); fix the //detlint:effects claim"})
			}
			if !decl.Writes {
				for _, e := range inferred {
					if e.Kind == UnknownCall {
						continue // unknowns are what the declaration vouches for
					}
					out = append(out, Violation{Pos: fd.Pos(),
						Msg: fd.Name.Name + " declares writes=none but the analyzer infers a shared write (" + e.Path + "); fix the //detlint:effects claim"})
					break
				}
			}
		}
	}
	return out
}
