package lint

import (
	"os/exec"
	"testing"
)

// TestSelfApplication shells out the real CLI over the whole repository,
// exactly as CI does. The tree must stay hazard-free: any determinism
// hazard reintroduced anywhere in the module makes tier-1 `go test ./...`
// fail through this test.
func TestSelfApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI round-trip in -short mode")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/detlint", "./...")
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("detlint reported hazards or failed:\n%s\nerror: %v", out, err)
	}
}
