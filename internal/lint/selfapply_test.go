package lint

import (
	"encoding/json"
	"os/exec"
	"testing"
)

// TestSelfApplication shells out the real CLI over the whole repository,
// exactly as CI does. The tree must stay hazard-free: any determinism
// hazard reintroduced anywhere in the module makes tier-1 `go test ./...`
// fail through this test.
func TestSelfApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI round-trip in -short mode")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	// -nocache keeps this hermetic: a stale or poisoned cache entry must
	// never be able to hide a hazard from CI.
	for _, args := range [][]string{
		{"run", "./cmd/detlint", "-nocache", "./..."},
		{"run", "./cmd/detlint", "-nocache", "-run", "failsafe,commitpure,taintfp", "./..."},
	} {
		cmd := exec.Command("go", args...)
		cmd.Dir = modRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("detlint %v reported hazards or failed:\n%s\nerror: %v", args[2:], out, err)
		}
	}
}

// TestSelfApplicationJSON checks the machine-readable output path end to
// end: a clean tree must produce a valid, empty JSON array.
func TestSelfApplicationJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI round-trip in -short mode")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/detlint", "-nocache", "-json", "./...")
	cmd.Dir = modRoot
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("detlint -json failed:\n%s\nerror: %v", out, err)
	}
	var records []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Rule string `json:"rule"`
		Msg  string `json:"msg"`
	}
	if err := json.Unmarshal(out, &records); err != nil {
		t.Fatalf("detlint -json output is not a JSON array: %v\n%s", err, out)
	}
	if len(records) != 0 {
		t.Errorf("clean tree produced %d JSON findings: %+v", len(records), records)
	}
}
