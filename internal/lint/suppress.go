package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"galois/internal/lint/effects"
)

// directive is one parsed //detlint: comment.
//
// Three forms are recognized, all attaching to the line they appear on and
// to the line immediately below (so a directive can sit on its own line
// above the statement it suppresses):
//
//	//detlint:ignore <rule>[,<rule>...] <reason>
//	//detlint:ordered [<reason>]
//	//detlint:effects <key>=<value>[,<key>=<value>...] <reason>
//
// "ordered" asserts that the order of the annotated map iteration cannot
// reach committed output (for example because the loop body is commutative
// and associative, or the collected values are sorted before use); it
// suppresses both maprange and the taintfp source. "ignore all <reason>"
// suppresses every rule on the line. "effects" declares a function's
// effect summary where dynamic calls blind the interprocedural analyzer:
// keys are acquires (none|ctx), writes (none|shared) and reads
// (none|shared); the claim is itself checked against the statically
// inferred summary, so it can widen the analyzer's view but never narrow
// it. Every form except bare "ordered" requires a reason.
type directive struct {
	verb    string // "ignore", "ordered" or "effects"
	rules   []string
	reason  string
	effects *effects.Declared // non-nil for verb "effects"
	pos     token.Pos
}

const directivePrefix = "//detlint:"

// knownRules is the set of rule names valid in ignore lists.
func knownRules() map[string]bool {
	known := map[string]bool{"all": true}
	for _, p := range Passes() {
		known[p.Name] = true
	}
	return known
}

// parseDirective parses the text of one comment; ok is false for comments
// that are not detlint directives at all. A malformed directive returns
// ok=true with a non-empty err string so the runner can report it: silent
// misspellings would otherwise un-suppress nothing and suppress nothing.
func parseDirective(c *ast.Comment) (d directive, err string, ok bool) {
	text, found := strings.CutPrefix(c.Text, directivePrefix)
	if !found {
		return directive{}, "", false
	}
	d.pos = c.Pos()
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return d, "empty detlint directive", true
	}
	d.verb = fields[0]
	switch d.verb {
	case "ordered":
		d.rules = []string{"maprange", "taintfp"}
		d.reason = strings.Join(fields[1:], " ")
	case "ignore":
		if len(fields) < 2 {
			return d, "detlint:ignore needs a rule name", true
		}
		known := knownRules()
		d.rules = strings.Split(fields[1], ",")
		for _, r := range d.rules {
			if r == "" {
				return d, "empty rule name in detlint:ignore list " + fields[1] + " (no spaces inside the list)", true
			}
			if !known[r] {
				return d, "unknown rule " + r + " in detlint:ignore (have: " + ruleNames() + ", all)", true
			}
		}
		d.reason = strings.Join(fields[2:], " ")
		if d.reason == "" {
			return d, "detlint:ignore " + fields[1] + " needs a reason", true
		}
	case "effects":
		if len(fields) < 2 {
			return d, "detlint:effects needs claims (acquires=none|ctx, writes=none|shared, reads=none|shared)", true
		}
		decl := &effects.Declared{}
		for _, claim := range strings.Split(fields[1], ",") {
			key, val, cut := strings.Cut(claim, "=")
			if !cut {
				return d, "detlint:effects claim " + claim + " is not key=value", true
			}
			var set bool
			switch key {
			case "acquires":
				decl.Acquires, set = val == "ctx", val == "ctx" || val == "none"
			case "writes":
				decl.Writes, set = val == "shared", val == "shared" || val == "none"
			case "reads":
				decl.Reads, set = val == "shared", val == "shared" || val == "none"
			default:
				return d, "unknown detlint:effects key " + key + " (have: acquires, writes, reads)", true
			}
			if !set {
				return d, "bad detlint:effects value " + claim, true
			}
		}
		d.reason = strings.Join(fields[2:], " ")
		if d.reason == "" {
			return d, "detlint:effects " + fields[1] + " needs a reason", true
		}
		decl.Reason = d.reason
		d.effects = decl
	default:
		return d, "unknown detlint directive " + d.verb, true
	}
	return d, "", true
}

// indexDirectives builds the per-file line index of directives and returns
// it. Malformed directives are indexed under verb "malformed" with the
// error text as reason; the runner turns those into findings.
func indexDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]directive {
	idx := make(map[string]map[int][]directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, errText, ok := parseDirective(c)
				if !ok {
					continue
				}
				if errText != "" {
					d.verb = "malformed"
					d.reason = errText
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return idx
}

// at iterates the directives attached to pos: those on the same line and
// on the line above.
func (p *Package) at(pos token.Position, fn func(d directive) bool) {
	byLine := p.directives[pos.Filename]
	if byLine == nil {
		return
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if !fn(d) {
				return
			}
		}
	}
}

// suppressed reports whether a finding of rule at position pos is covered
// by an ignore/ordered directive on the same line or the line above.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	found := false
	p.at(pos, func(d directive) bool {
		if d.verb == "malformed" {
			return true
		}
		for _, r := range d.rules {
			if r == rule || r == "all" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// declaredEffects returns the //detlint:effects declaration covering pos
// (a function declaration start), or nil.
func (p *Package) declaredEffects(pos token.Position) *effects.Declared {
	var decl *effects.Declared
	p.at(pos, func(d directive) bool {
		if d.verb == "effects" && d.effects != nil {
			decl = d.effects
			return false
		}
		return true
	})
	return decl
}
