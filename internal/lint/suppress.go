package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //detlint: comment.
//
// Two forms are recognized, both attaching to the line they appear on and
// to the line immediately below (so a directive can sit on its own line
// above the statement it suppresses):
//
//	//detlint:ignore <rule>[,<rule>...] <reason>
//	//detlint:ordered [<reason>]
//
// "ordered" is shorthand for "ignore maprange": it asserts that the order
// of the annotated map iteration cannot reach committed output (for
// example because the loop body is commutative and associative).
// "ignore all <reason>" suppresses every rule on the line.
type directive struct {
	verb   string // "ignore" or "ordered"
	rules  []string
	reason string
	pos    token.Pos
}

const directivePrefix = "//detlint:"

// parseDirective parses the text of one comment; ok is false for comments
// that are not detlint directives at all. A malformed directive returns
// ok=true with a non-empty err string so the runner can report it: silent
// misspellings would otherwise un-suppress nothing and suppress nothing.
func parseDirective(c *ast.Comment) (d directive, err string, ok bool) {
	text, found := strings.CutPrefix(c.Text, directivePrefix)
	if !found {
		return directive{}, "", false
	}
	d.pos = c.Pos()
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return d, "empty detlint directive", true
	}
	d.verb = fields[0]
	switch d.verb {
	case "ordered":
		d.rules = []string{"maprange"}
		d.reason = strings.Join(fields[1:], " ")
	case "ignore":
		if len(fields) < 2 {
			return d, "detlint:ignore needs a rule name", true
		}
		d.rules = strings.Split(fields[1], ",")
		d.reason = strings.Join(fields[2:], " ")
		if d.reason == "" {
			return d, "detlint:ignore " + fields[1] + " needs a reason", true
		}
	default:
		return d, "unknown detlint directive " + d.verb, true
	}
	return d, "", true
}

// indexDirectives builds the per-file line index of directives and returns
// it. Malformed directives are indexed under verb "malformed" with the
// error text as reason; the runner turns those into findings.
func indexDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]directive {
	idx := make(map[string]map[int][]directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, errText, ok := parseDirective(c)
				if !ok {
					continue
				}
				if errText != "" {
					d.verb = "malformed"
					d.reason = errText
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding of rule at position pos is covered
// by an ignore/ordered directive on the same line or the line above.
func (p *Package) suppressed(rule string, pos token.Position) bool {
	byLine := p.directives[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.verb == "malformed" {
				continue
			}
			for _, r := range d.rules {
				if r == rule || r == "all" {
					return true
				}
			}
		}
	}
	return false
}
