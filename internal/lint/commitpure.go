package lint

// commitPurePass verifies the second half of the cautious-task contract:
// a commit handler runs after conflict detection, holding exactly the
// neighborhood its task acquired, so it may write memory reachable from
// the operator's captured state and work item but must not touch
// package-level state, acquire further neighborhoods, or make calls the
// effect analyzer cannot resolve. Handlers are found at every
// ctx.OnCommit registration (directly or through a single-assignment
// local binding); the check follows helpers interprocedurally.
func commitPurePass() *Pass {
	p := &Pass{
		Name:       "commitpure",
		Doc:        "commit handler writes only state acquired by its own task",
		Everywhere: true,
	}
	p.Run = func(u *Unit) {
		for _, v := range u.world.CheckCommits(u.epkg) {
			u.Reportf(v.Pos, "%s", v.Msg)
		}
	}
	return p
}
