package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config scopes the passes to the packages where determinism matters. It is
// read from one file (detlint.conf at the module root by default) with a
// line-oriented format:
//
//	# comment
//	critical <module-relative path prefix>
//	exempt   <module-relative path prefix>
//	exempt   <module-relative path prefix> <rule[,rule...]>
//
// "critical" marks packages on the deterministic path: all passes run
// there. "exempt" with one field removes packages from analysis entirely
// and wins over critical; it is the allowlist for measurement-only code
// (internal/stats, internal/harness) that reads the wall clock by design.
// "exempt" with a rule list disables only those rules for the prefix while
// every other pass still runs — the right scope for packages like
// internal/obs that read the clock by design (observational timestamps)
// but must still never range over maps or draw global randomness when
// building event payloads. The prefix "*" matches every package. Paths are
// module-relative ("internal/core"); a prefix matches itself and
// everything below it ("internal/apps" covers "internal/apps/bfs").
type Config struct {
	CriticalPrefixes []string
	ExemptPrefixes   []string
	// RuleExemptions maps a path prefix to the pass names disabled there.
	RuleExemptions map[string][]string
	// Rules, when non-empty, restricts the run to the named passes (the
	// CLI's -run flag). It participates in the analysis cache key.
	Rules []string
}

// DefaultConfig covers this repository's layout: every package is critical
// except the measurement and experiment-harness side.
func DefaultConfig() *Config {
	return &Config{
		CriticalPrefixes: []string{"*"},
		ExemptPrefixes:   []string{"internal/harness", "internal/stats", "internal/cachesim", "internal/linreg", "internal/lint", "examples"},
		RuleExemptions:   map[string][]string{"internal/obs": {"wallclock"}},
	}
}

// ParseConfig parses the configuration file at path.
func ParseConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &Config{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && !(len(fields) == 3 && fields[0] == "exempt") {
			return nil, fmt.Errorf("%s:%d: want `critical <prefix>`, `exempt <prefix>` or `exempt <prefix> <rule,...>`, got %q", path, i+1, line)
		}
		prefix := strings.Trim(fields[1], "/")
		switch fields[0] {
		case "critical":
			cfg.CriticalPrefixes = append(cfg.CriticalPrefixes, prefix)
		case "exempt":
			if len(fields) == 2 {
				cfg.ExemptPrefixes = append(cfg.ExemptPrefixes, prefix)
				break
			}
			known := make(map[string]bool)
			for _, p := range Passes() {
				known[p.Name] = true
			}
			for _, rule := range strings.Split(fields[2], ",") {
				rule = strings.TrimSpace(rule)
				if !known[rule] {
					return nil, fmt.Errorf("%s:%d: unknown rule %q (have: %s)", path, i+1, rule, ruleNames())
				}
				if cfg.RuleExemptions == nil {
					cfg.RuleExemptions = make(map[string][]string)
				}
				cfg.RuleExemptions[prefix] = append(cfg.RuleExemptions[prefix], rule)
			}
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q", path, i+1, fields[0])
		}
	}
	return cfg, nil
}

// Critical reports whether the module-relative package path rel is on the
// determinism-critical list.
func (c *Config) Critical(rel string) bool { return matchAny(c.CriticalPrefixes, rel) }

// Exempt reports whether rel is excluded from analysis.
func (c *Config) Exempt(rel string) bool { return matchAny(c.ExemptPrefixes, rel) }

// ExemptRule reports whether the named rule is disabled for rel by a
// rule-scoped exemption. Other rules still run on rel.
func (c *Config) ExemptRule(rel, rule string) bool {
	for prefix, rules := range c.RuleExemptions {
		if !matchAny([]string{prefix}, rel) {
			continue
		}
		for _, r := range rules {
			if r == rule {
				return true
			}
		}
	}
	return false
}

// RuleEnabled reports whether the named pass is part of this run: all
// passes when Rules is empty, otherwise only the listed ones.
func (c *Config) RuleEnabled(rule string) bool {
	if len(c.Rules) == 0 {
		return true
	}
	for _, r := range c.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// SetRules validates and installs a -run style rule subset.
func (c *Config) SetRules(list string) error {
	known := make(map[string]bool)
	for _, p := range Passes() {
		known[p.Name] = true
	}
	for _, r := range strings.Split(list, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if !known[r] {
			return fmt.Errorf("unknown rule %q (have: %s)", r, ruleNames())
		}
		c.Rules = append(c.Rules, r)
	}
	return nil
}

// UnmatchedPrefixes returns the configured path prefixes that do not name
// an existing directory under modRoot — almost always a typo or a stale
// entry after a package move, which would otherwise silently widen or
// narrow the analysis scope.
func (c *Config) UnmatchedPrefixes(modRoot string) []string {
	var out []string
	seen := make(map[string]bool)
	check := func(prefix string) {
		if prefix == "*" || prefix == "" || prefix == "." || seen[prefix] {
			return
		}
		seen[prefix] = true
		st, err := os.Stat(filepath.Join(modRoot, filepath.FromSlash(prefix)))
		if err != nil || !st.IsDir() {
			out = append(out, prefix)
		}
	}
	for _, p := range c.CriticalPrefixes {
		check(p)
	}
	for _, p := range c.ExemptPrefixes {
		check(p)
	}
	for p := range c.RuleExemptions {
		check(p)
	}
	sort.Strings(out)
	return out
}

func matchAny(prefixes []string, rel string) bool {
	for _, p := range prefixes {
		if p == "*" || p == rel || strings.HasPrefix(rel, p+"/") || (p == "." && rel == "") {
			return true
		}
	}
	return false
}
