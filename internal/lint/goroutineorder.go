package lint

import (
	"go/ast"
)

// goroutineOrderPass flags concurrency primitives whose outcome depends on
// scheduling, in determinism-critical packages.
//
// Two shapes are reported. A `go` statement on the deterministic path is
// only safe when whatever the goroutines produce is merged by a
// schedule-independent key (thread index, task id) — the analyzer cannot
// prove that, so every launch site must either be fixed or carry a
// //detlint:ignore goroutineorder annotation stating the merge order. A
// `select` with two or more ready communication cases picks one
// pseudo-randomly by language definition, so any multi-case select on the
// deterministic path is a hazard outright.
func goroutineOrderPass() *Pass {
	p := &Pass{
		Name: "goroutineorder",
		Doc:  "scheduling-dependent goroutine or select on the deterministic path",
	}
	p.Run = func(u *Unit) {
		u.inspect(func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				u.Reportf(st.Pos(), "goroutine launched on the deterministic path; results must be merged by thread index or task id — annotate //detlint:ignore goroutineorder with the merge order")
			case *ast.SelectStmt:
				comm := 0
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					u.Reportf(st.Pos(), "select over %d channels resolves ties pseudo-randomly; deterministic-path code must receive in a fixed order", comm)
				}
			}
			return true
		})
	}
	return p
}
