package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus everything the passes
// need to inspect it: syntax, type information and suppression directives.
type Package struct {
	// Path is the full import path ("galois/internal/core").
	Path string
	// Rel is the module-relative path ("internal/core", "" for the root).
	Rel string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// directives indexes //detlint: comments by file and line.
	directives map[string]map[int][]directive
	// TypeErrors collects soft type-check errors. The linter keeps going —
	// `go build` is the gate for compilability — but callers may surface
	// them when findings look wrong.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved recursively from
// source and everything else goes through go/importer's source importer.
type Loader struct {
	ModRoot string // absolute directory containing go.mod
	ModPath string // module path declared in go.mod
	Fset    *token.FileSet

	pkgs    map[string]*Package // keyed by import path
	loading map[string]bool     // import-cycle guard
	std     types.ImporterFrom
}

// NewLoader creates a loader for the module rooted at modRoot.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModRoot: abs,
		ModPath: modPath,
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     std,
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// LoadPath loads the module package with the given import path.
func (l *Loader) LoadPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.load(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
}

// LoadDir loads the package in dir under the synthetic import path ipath
// (empty: derived from the directory's position in the module). Fixture
// trees outside the module proper pass an explicit path.
func (l *Loader) LoadDir(dir string, ipath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if ipath == "" {
		rel, err := filepath.Rel(l.ModRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
		}
		ipath = l.ModPath
		if rel != "." {
			ipath += "/" + filepath.ToSlash(rel)
		}
	}
	return l.load(abs, ipath)
}

func (l *Loader) load(dir, ipath string) (*Package, error) {
	if p, ok := l.pkgs[ipath]; ok {
		return p, nil
	}
	if l.loading[ipath] {
		return nil, fmt.Errorf("lint: import cycle through %s", ipath)
	}
	l.loading[ipath] = true
	defer delete(l.loading, ipath)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// A directory may mix package main with tooling stubs; keep the
	// majority package and drop strays rather than failing the load.
	files = majorityPackage(files)

	pkg := &Package{
		Path: ipath,
		Rel:  relPath(l.ModPath, ipath),
		Dir:  dir,
		Fset: l.Fset,
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(ipath, l.Fset, files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", ipath, err)
	}
	pkg.Types = tpkg
	pkg.Files = files
	pkg.directives = indexDirectives(l.Fset, files)
	l.pkgs[ipath] = pkg
	return pkg, nil
}

// Loaded returns every package the loader has pulled in so far — the
// matched set plus all transitively imported module packages — sorted by
// import path. This is the natural "world" argument for RunProgram: even
// a partial pattern run can then resolve cross-package callees.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

func relPath(modPath, ipath string) string {
	if ipath == modPath {
		return ""
	}
	return strings.TrimPrefix(ipath, modPath+"/")
}

// goSources lists buildable non-test Go files in dir, sorted for
// deterministic load order.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func majorityPackage(files []*ast.File) []*ast.File {
	count := make(map[string]int)
	for _, f := range files {
		count[f.Name.Name]++
	}
	best := files[0].Name.Name
	for name, n := range count {
		if n > count[best] || (n == count[best] && name < best) {
			best = name
		}
	}
	var out []*ast.File
	for _, f := range files {
		if f.Name.Name == best {
			out = append(out, f)
		}
	}
	return out
}

// Match expands package patterns relative to the module root. Supported
// forms: "./...", "dir/...", "dir", "./dir". The "testdata" directory and
// hidden/underscore directories are always skipped, as the go tool does.
func (l *Loader) Match(patterns ...string) ([]*Package, error) {
	dirs, err := l.MatchDirs(patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		p, err := l.LoadDir(d, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// MatchDirs expands go-tool patterns to package directories without
// parsing or type-checking anything — the cheap half of Match, used by the
// analysis cache to decide what even needs loading.
func (l *Loader) MatchDirs(patterns ...string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		root := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			srcs, err := goSources(p)
			if err != nil {
				return err
			}
			if len(srcs) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
