package lint

// failsafePass is the interprocedural successor of the cautious pass: it
// proves, rather than approximates, that every operator is cautious. The
// effect analyzer (internal/lint/effects) summarizes per-function shared
// writes by provenance and composes them across static calls — including
// closures threaded through function-typed parameters — so a write hidden
// two helpers deep behind the operator body is flagged at the call that
// reaches it. It also verifies every //detlint:effects declaration against
// the inferred summary, so the escape hatch for dynamic calls cannot
// silently understate a function's behavior.
//
// Like cautious, it keys off the *core.Ctx parameter and therefore runs
// everywhere, not only on the critical set.
func failsafePass() *Pass {
	p := &Pass{
		Name:       "failsafe",
		Doc:        "interprocedural shared write before the task's failsafe point",
		Everywhere: true,
	}
	p.Run = func(u *Unit) {
		for _, op := range u.world.Operators(u.epkg) {
			for _, v := range op.CheckFailsafe() {
				u.Reportf(v.Pos, "%s", v.Msg)
			}
		}
		for _, v := range u.world.CheckDeclared(u.epkg) {
			u.Reportf(v.Pos, "%s", v.Msg)
		}
	}
	return p
}
