package lint

import (
	"go/ast"
	"go/types"
)

// mapRangePass flags `range` over a map in determinism-critical packages.
//
// Go randomizes map iteration order per run, so any map iteration whose
// effects can reach committed output breaks the paper's portability claim
// even on a single thread. The fix is to extract the keys, sort them, and
// range over the sorted slice (which this pass, being type-directed, does
// not flag). Iterations that are genuinely order-insensitive — pure
// reductions with commutative, associative combining — are annotated
// //detlint:ordered with a reason.
func mapRangePass() *Pass {
	p := &Pass{
		Name: "maprange",
		Doc:  "range over a map iterates in randomized order",
	}
	p.Run = func(u *Unit) {
		u.inspect(func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := u.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				u.Reportf(rs.For, "iteration over map %s has randomized order; sort the keys into a slice first, or annotate //detlint:ordered with why order cannot reach committed output", types.TypeString(t, nil))
			}
			return true
		})
	}
	return p
}
