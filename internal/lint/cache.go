package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// The analysis cache: per-package findings keyed by the content of every
// source file the package's analysis can observe. Because the effect
// passes are interprocedural, a package's findings depend not only on its
// own files but on everything it transitively imports inside the module —
// so the cache key hashes the package's module-internal import closure,
// discovered with an imports-only parse (no type checking). Editing one
// file therefore invalidates exactly the packages that can see it, and
// nothing else.
//
// Entries are JSON files under the cache directory (one per package), each
// carrying its key; a mismatched or unreadable entry is a miss. The key
// also folds in the tool version, the Go version, the configuration and
// the enabled rule set, so upgrades and config edits invalidate cleanly.

// cacheVersion invalidates every entry when the analysis itself changes.
const cacheVersion = "detlint-cache-v1"

// CacheStats counts cache outcomes for one run.
type CacheStats struct {
	Hits   int
	Misses int
}

// Cache is a per-package findings cache rooted at one directory.
type Cache struct {
	dir     string
	confSig string
	// fileHashes memoizes content hashes within one run.
	fileHashes map[string]string
	// imports memoizes the imports-only scan per package rel.
	imports map[string][]string
}

// OpenCache creates (if needed) and opens a findings cache in dir, keyed
// against the given configuration.
func OpenCache(dir string, cfg *Config) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{
		dir:        dir,
		confSig:    configSignature(cfg),
		fileHashes: make(map[string]string),
		imports:    make(map[string][]string),
	}, nil
}

// configSignature folds everything configuration-shaped into one string.
func configSignature(cfg *Config) string {
	var b strings.Builder
	b.WriteString(cacheVersion)
	b.WriteString("|go=")
	b.WriteString(runtime.Version())
	writeList := func(tag string, list []string) {
		sorted := append([]string(nil), list...)
		sort.Strings(sorted)
		b.WriteString("|" + tag + "=")
		b.WriteString(strings.Join(sorted, ","))
	}
	writeList("critical", cfg.CriticalPrefixes)
	writeList("exempt", cfg.ExemptPrefixes)
	writeList("rules", cfg.Rules)
	var rex []string
	for prefix, rules := range cfg.RuleExemptions {
		sorted := append([]string(nil), rules...)
		sort.Strings(sorted)
		rex = append(rex, prefix+":"+strings.Join(sorted, ","))
	}
	sort.Strings(rex)
	writeList("ruleexempt", rex)
	return b.String()
}

// cacheEntry is the on-disk format of one package's findings.
type cacheEntry struct {
	Key      string    `json:"key"`
	Findings []Finding `json:"findings"`
}

// entryPath maps a package rel path to its cache file.
func (c *Cache) entryPath(rel string) string {
	name := strings.ReplaceAll(rel, "/", "__")
	if name == "" {
		name = "_root_"
	}
	return filepath.Join(c.dir, name+".json")
}

// Key computes the cache key for the package at rel: a hash over the
// configuration signature and the (path, content-hash) of every source
// file in the package's module-internal import closure. An error means the
// closure could not be scanned; callers treat that as a miss.
func (c *Cache) Key(l *Loader, rel string) (string, error) {
	closure := make(map[string]bool)
	if err := c.importClosure(l, rel, closure); err != nil {
		return "", err
	}
	rels := make([]string, 0, len(closure))
	for r := range closure {
		rels = append(rels, r)
	}
	sort.Strings(rels)

	h := sha256.New()
	fmt.Fprintf(h, "%s\npkg=%s\n", c.confSig, rel)
	for _, r := range rels {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(r))
		names, err := goSources(dir)
		if err != nil {
			return "", err
		}
		for _, name := range names {
			path := filepath.Join(dir, name)
			fh, err := c.fileHash(path)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "%s/%s %s\n", r, name, fh)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (c *Cache) fileHash(path string) (string, error) {
	if fh, ok := c.fileHashes[path]; ok {
		return fh, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	fh := hex.EncodeToString(sum[:])
	c.fileHashes[path] = fh
	return fh, nil
}

// importClosure adds rel and every module-internal package it transitively
// imports to out, using an imports-only parse.
func (c *Cache) importClosure(l *Loader, rel string, out map[string]bool) error {
	if out[rel] {
		return nil
	}
	out[rel] = true
	deps, ok := c.imports[rel]
	if !ok {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
		names, err := goSources(dir)
		if err != nil {
			return err
		}
		seen := make(map[string]bool)
		fset := token.NewFileSet()
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				var depRel string
				switch {
				case path == l.ModPath:
					depRel = ""
				case strings.HasPrefix(path, l.ModPath+"/"):
					depRel = strings.TrimPrefix(path, l.ModPath+"/")
				default:
					continue
				}
				if !seen[depRel] {
					seen[depRel] = true
					deps = append(deps, depRel)
				}
			}
		}
		sort.Strings(deps)
		c.imports[rel] = deps
	}
	for _, dep := range deps {
		if err := c.importClosure(l, dep, out); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the cached findings for rel if the stored key matches.
func (c *Cache) Get(rel, key string) ([]Finding, bool) {
	data, err := os.ReadFile(c.entryPath(rel))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Key != key {
		return nil, false
	}
	return e.Findings, true
}

// Put stores the findings for rel under key. A failed write only costs the
// next run a re-analysis, so the error is returned for logging, not fatal.
func (c *Cache) Put(rel, key string, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	data, err := json.Marshal(cacheEntry{Key: key, Findings: findings})
	if err != nil {
		return err
	}
	tmp := c.entryPath(rel) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.entryPath(rel))
}

// RunCached is the cache-aware driver: patterns expand to package
// directories, cached packages contribute their stored findings, and only
// the misses are loaded and analyzed (against a world containing
// everything the loader pulled in, so cross-package summaries resolve).
// A nil cache degrades to plain load-and-run.
func RunCached(cfg *Config, l *Loader, cache *Cache, patterns ...string) ([]Finding, CacheStats, error) {
	var stats CacheStats
	dirs, err := l.MatchDirs(patterns...)
	if err != nil {
		return nil, stats, err
	}

	var out []Finding
	type missPkg struct {
		dir string
		rel string
		key string
	}
	var misses []missPkg
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, stats, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		key := ""
		if cache != nil {
			if key, err = cache.Key(l, rel); err == nil {
				if fs, ok := cache.Get(rel, key); ok {
					stats.Hits++
					out = append(out, fs...)
					continue
				}
			} else {
				key = "" // unscannable closure: analyze without caching
			}
		}
		stats.Misses++
		misses = append(misses, missPkg{dir: dir, rel: rel, key: key})
	}

	var pkgs []*Package
	for _, m := range misses {
		p, err := l.LoadDir(m.dir, "")
		if err != nil {
			return nil, stats, err
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) > 0 {
		fresh := RunProgram(cfg, pkgs, l.Loaded())
		byDir := make(map[string][]Finding)
		for _, f := range fresh {
			d := filepath.Dir(f.Pos.Filename)
			byDir[d] = append(byDir[d], f)
		}
		for i, m := range misses {
			fs := byDir[pkgs[i].Dir]
			if cache != nil && m.key != "" {
				if err := cache.Put(m.rel, m.key, fs); err != nil {
					return nil, stats, err
				}
			}
		}
		out = append(out, fresh...)
	}
	sortFindings(out)
	return out, stats, nil
}
