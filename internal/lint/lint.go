// Package lint implements detlint, a static determinism-hazard analyzer
// for this repository's deterministic runtime (see DESIGN.md, "Determinism
// hazards and how we check them").
//
// The paper's guarantee — committed output is a pure function of the input,
// independent of thread count and machine — is a runtime property that
// static analysis cannot prove, but its common failure modes are all
// syntactically visible: iterating an unordered map, reading the wall
// clock, drawing from a process-global RNG, writing shared state before a
// task's failsafe point, or racing goroutines/channels outside the
// scheduler's control. detlint flags each of those on the packages declared
// determinism-critical in detlint.conf. Deliberate exceptions carry a
// //detlint:ignore annotation with a reason, so every hazard in the tree is
// either fixed or argued for in place.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"galois/internal/lint/effects"
)

// Finding is one reported hazard.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Pass is one analysis. Run inspects a single package and reports through
// the Unit; suppression and scoping are handled by the runner.
type Pass struct {
	Name string
	// Doc is a one-line description, shown by `detlint -rules`.
	Doc string
	// Everywhere marks passes that run on all packages, not only the
	// determinism-critical set (they key off their own evidence, like a
	// Ctx parameter, rather than package identity).
	Everywhere bool
	Run        func(u *Unit)
}

// Passes returns all registered passes in reporting order.
func Passes() []*Pass {
	return []*Pass{
		mapRangePass(),
		wallClockPass(),
		globalRandPass(),
		cautiousPass(),
		failsafePass(),
		commitPurePass(),
		taintFPPass(),
		goroutineOrderPass(),
	}
}

// Unit is the per-(package, pass) context handed to a pass.
type Unit struct {
	Pkg  *Package
	Cfg  *Config
	pass *Pass

	// world and epkg back the interprocedural passes: the whole-program
	// effect analyzer and this package's view into it.
	world *effects.World
	epkg  *effects.Pkg

	findings []Finding
}

// Reportf records a finding at pos unless a directive suppresses it.
func (u *Unit) Reportf(pos token.Pos, format string, args ...any) {
	p := u.Pkg.Fset.Position(pos)
	if u.Pkg.suppressed(u.pass.Name, p) {
		return
	}
	u.findings = append(u.findings, Finding{Pos: p, Rule: u.pass.Name, Msg: fmt.Sprintf(format, args...)})
}

// Run executes every pass over every package and returns findings sorted by
// file, line and rule. Malformed //detlint: directives are reported as
// findings of the pseudo-rule "directive". The interprocedural passes
// resolve calls within the given packages only; use RunProgram to widen
// their world beyond the reported set.
func Run(cfg *Config, pkgs []*Package) []Finding {
	return RunProgram(cfg, pkgs, pkgs)
}

// RunProgram is Run with an explicit analysis world: findings are reported
// for pkgs, while the effect analyzer resolves cross-package calls against
// world (a superset of pkgs — typically everything the loader pulled in).
func RunProgram(cfg *Config, pkgs, world []*Package) []Finding {
	views := make(map[*Package]*effects.Pkg, len(world))
	var epkgs []*effects.Pkg
	addView := func(p *Package) {
		if _, ok := views[p]; !ok {
			views[p] = effectsView(p)
			epkgs = append(epkgs, views[p])
		}
	}
	for _, p := range world {
		addView(p)
	}
	for _, p := range pkgs {
		addView(p)
	}
	w := effects.NewWorld(epkgs)

	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, runPackage(cfg, pkg, w, views[pkg])...)
	}
	sortFindings(out)
	return out
}

// runPackage executes the enabled passes over one package and reports its
// malformed directives.
func runPackage(cfg *Config, pkg *Package, w *effects.World, epkg *effects.Pkg) []Finding {
	var out []Finding
	if cfg.Exempt(pkg.Rel) {
		return nil
	}
	critical := cfg.Critical(pkg.Rel)
	for _, pass := range Passes() {
		if !critical && !pass.Everywhere {
			continue
		}
		if !cfg.RuleEnabled(pass.Name) {
			continue
		}
		if cfg.ExemptRule(pkg.Rel, pass.Name) {
			continue
		}
		u := &Unit{Pkg: pkg, Cfg: cfg, pass: pass, world: w, epkg: epkg}
		pass.Run(u)
		out = append(out, u.findings...)
	}
	for _, byLine := range pkg.directives {
		for _, ds := range byLine {
			for _, d := range ds {
				if d.verb == "malformed" {
					out = append(out, Finding{
						Pos:  pkg.Fset.Position(d.pos),
						Rule: "directive",
						Msg:  d.reason,
					})
				}
			}
		}
	}
	return out
}

// effectsView adapts a loaded package to the effect analyzer's interface,
// wiring directive lookups into it: //detlint:effects declarations on
// function declarations and //detlint:ordered (or ignore taintfp)
// annotations on map ranges.
func effectsView(p *Package) *effects.Pkg {
	return &effects.Pkg{
		Path:  p.Path,
		Fset:  p.Fset,
		Files: p.Files,
		Info:  p.Info,
		Declared: func(pos token.Pos) *effects.Declared {
			return p.declaredEffects(p.Fset.Position(pos))
		},
		Ordered: func(pos token.Pos) bool {
			return p.suppressed("taintfp", p.Fset.Position(pos))
		},
	}
}

func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
}

// inspect walks every file of the unit's package.
func (u *Unit) inspect(fn func(ast.Node) bool) {
	for _, f := range u.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// ruleNames returns the names of all passes, for CLI help.
func ruleNames() string {
	var names []string
	for _, p := range Passes() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}
