// Package lint implements detlint, a static determinism-hazard analyzer
// for this repository's deterministic runtime (see DESIGN.md, "Determinism
// hazards and how we check them").
//
// The paper's guarantee — committed output is a pure function of the input,
// independent of thread count and machine — is a runtime property that
// static analysis cannot prove, but its common failure modes are all
// syntactically visible: iterating an unordered map, reading the wall
// clock, drawing from a process-global RNG, writing shared state before a
// task's failsafe point, or racing goroutines/channels outside the
// scheduler's control. detlint flags each of those on the packages declared
// determinism-critical in detlint.conf. Deliberate exceptions carry a
// //detlint:ignore annotation with a reason, so every hazard in the tree is
// either fixed or argued for in place.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported hazard.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Pass is one analysis. Run inspects a single package and reports through
// the Unit; suppression and scoping are handled by the runner.
type Pass struct {
	Name string
	// Doc is a one-line description, shown by `detlint -rules`.
	Doc string
	// Everywhere marks passes that run on all packages, not only the
	// determinism-critical set (they key off their own evidence, like a
	// Ctx parameter, rather than package identity).
	Everywhere bool
	Run        func(u *Unit)
}

// Passes returns all registered passes in reporting order.
func Passes() []*Pass {
	return []*Pass{
		mapRangePass(),
		wallClockPass(),
		globalRandPass(),
		cautiousPass(),
		goroutineOrderPass(),
	}
}

// Unit is the per-(package, pass) context handed to a pass.
type Unit struct {
	Pkg  *Package
	Cfg  *Config
	pass *Pass

	findings []Finding
}

// Reportf records a finding at pos unless a directive suppresses it.
func (u *Unit) Reportf(pos token.Pos, format string, args ...any) {
	p := u.Pkg.Fset.Position(pos)
	if u.Pkg.suppressed(u.pass.Name, p) {
		return
	}
	u.findings = append(u.findings, Finding{Pos: p, Rule: u.pass.Name, Msg: fmt.Sprintf(format, args...)})
}

// Run executes every pass over every package and returns findings sorted by
// file, line and rule. Malformed //detlint: directives are reported as
// findings of the pseudo-rule "directive".
func Run(cfg *Config, pkgs []*Package) []Finding {
	var out []Finding
	passes := Passes()
	for _, pkg := range pkgs {
		if cfg.Exempt(pkg.Rel) {
			continue
		}
		critical := cfg.Critical(pkg.Rel)
		for _, pass := range passes {
			if !critical && !pass.Everywhere {
				continue
			}
			if cfg.ExemptRule(pkg.Rel, pass.Name) {
				continue
			}
			u := &Unit{Pkg: pkg, Cfg: cfg, pass: pass}
			pass.Run(u)
			out = append(out, u.findings...)
		}
		for _, byLine := range pkg.directives {
			for _, ds := range byLine {
				for _, d := range ds {
					if d.verb == "malformed" {
						out = append(out, Finding{
							Pos:  pkg.Fset.Position(d.pos),
							Rule: "directive",
							Msg:  d.reason,
						})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// inspect walks every file of the unit's package.
func (u *Unit) inspect(fn func(ast.Node) bool) {
	for _, f := range u.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// ruleNames returns the names of all passes, for CLI help.
func ruleNames() string {
	var names []string
	for _, p := range Passes() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}
