package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := fixtureLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, pkg.TypeErrors)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want ([a-z]+)`)

// wantedFindings scans the fixture sources for `// want <rule>` marks.
func wantedFindings(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	want := make(map[string][]string) // "file:line" -> rules
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(pkg.Dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", path, i+1)
				want[key] = append(want[key], m[1])
			}
		}
	}
	return want
}

// checkFixture runs all passes over the named fixture with every package
// critical and compares findings against the `// want` marks exactly: a
// missing finding and an unexpected finding are both failures, which is
// what proves both halves of each pass — it catches the seeded hazards and
// it honors //detlint:ignore on the suppressed ones.
func checkFixture(t *testing.T, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	cfg := &Config{CriticalPrefixes: []string{"*"}}
	got := make(map[string][]string)
	for _, f := range Run(cfg, []*Package{pkg}) {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		got[key] = append(got[key], f.Rule)
	}
	want := wantedFindings(t, pkg)
	for key, rules := range want {
		sort.Strings(rules)
		g := got[key]
		sort.Strings(g)
		if strings.Join(rules, ",") != strings.Join(g, ",") {
			t.Errorf("%s: want rules %v, got %v", key, rules, g)
		}
	}
	for key, rules := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: unexpected finding(s) %v", key, rules)
		}
	}
}

func TestMapRangePass(t *testing.T)       { checkFixture(t, "maprange") }
func TestWallClockPass(t *testing.T)      { checkFixture(t, "wallclock") }
func TestGlobalRandPass(t *testing.T)     { checkFixture(t, "globalrand") }
func TestCautiousPass(t *testing.T)       { checkFixture(t, "cautious") }
func TestGoroutineOrderPass(t *testing.T) { checkFixture(t, "goroutineorder") }

// The interprocedural effect passes: shared writes hidden behind helper
// calls, commit-handler purity, and order-taint reaching fingerprint sinks.
func TestFailsafePass(t *testing.T)   { checkFixture(t, "failsafe") }
func TestCommitPurePass(t *testing.T) { checkFixture(t, "commitpure") }
func TestTaintFPPass(t *testing.T)    { checkFixture(t, "taintfp") }

// TestSessionScopeFixture pins the analyzer's coverage of the session
// layer's proof object: map-iteration order leaking into a chain hash is
// flagged (maprange at the loop, taintfp at the sink — including through
// an intermediate payload slice), while the real package's discipline —
// an insertion-ordered ids slice driving every sweep with the map demoted
// to lookups — produces no findings.
func TestSessionScopeFixture(t *testing.T) { checkFixture(t, "sessionscope") }

// TestPersistentWorkerPoolFixture pins the analyzer's coverage of the
// engine's persistent-worker substrate (internal/para.Pool): an
// unannotated parked-worker spawn is still a goroutineorder finding, and
// the annotated form documenting the merge order is accepted.
func TestPersistentWorkerPoolFixture(t *testing.T) { checkFixture(t, "poolspawn") }

// TestObsScopeAllRulesFire proves the obsscope fixture seeds real hazards:
// with no rule exemptions both the clock read and the map-range payload
// are flagged.
func TestObsScopeAllRulesFire(t *testing.T) { checkFixture(t, "obsscope") }

// TestObsScopeRuleExemption is the internal/obs configuration in miniature:
// `exempt <pkg> wallclock` silences only the wallclock rule, while an obs
// event payload built from a map range is still flagged.
func TestObsScopeRuleExemption(t *testing.T) {
	pkg := loadFixture(t, "obsscope")
	cfg := &Config{
		CriticalPrefixes: []string{"*"},
		RuleExemptions:   map[string][]string{"fixture/obsscope": {"wallclock"}},
	}
	findings := Run(cfg, []*Package{pkg})
	if len(findings) != 1 {
		t.Fatalf("want exactly the maprange finding, got %v", findings)
	}
	if findings[0].Rule != "maprange" {
		t.Fatalf("want maprange, got %s", findings[0])
	}
	for _, f := range findings {
		if f.Rule == "wallclock" {
			t.Fatalf("wallclock finding survived its rule-scoped exemption: %s", f)
		}
	}
}

// TestServeScopeAllRulesFire proves the servescope fixture seeds real
// hazards: with no rule exemptions the latency/deadline clock reads and
// the map-range over the job-results map are all flagged.
func TestServeScopeAllRulesFire(t *testing.T) { checkFixture(t, "servescope") }

// TestServeScopeRuleExemption is the internal/serve configuration in
// miniature: `exempt <pkg> wallclock` tolerates the serving layer's
// latency and deadline clock reads while a response assembled by ranging
// over a job-results map is still flagged.
func TestServeScopeRuleExemption(t *testing.T) {
	pkg := loadFixture(t, "servescope")
	cfg := &Config{
		CriticalPrefixes: []string{"*"},
		RuleExemptions:   map[string][]string{"fixture/servescope": {"wallclock"}},
	}
	findings := Run(cfg, []*Package{pkg})
	if len(findings) != 1 {
		t.Fatalf("want exactly the maprange finding, got %v", findings)
	}
	if findings[0].Rule != "maprange" {
		t.Fatalf("want maprange, got %s", findings[0])
	}
}

func TestMalformedDirectivesAreReported(t *testing.T) {
	pkg := loadFixture(t, "directive")
	cfg := &Config{CriticalPrefixes: []string{"*"}}
	findings := Run(cfg, []*Package{pkg})
	if len(findings) != 8 {
		t.Fatalf("want 8 directive findings, got %d: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Rule != "directive" {
			t.Errorf("want rule directive, got %s (%s)", f.Rule, f)
		}
	}
}

func TestScopingCriticalAndExempt(t *testing.T) {
	pkg := loadFixture(t, "maprange")

	// Not on the critical list: package-scoped passes stay silent.
	if got := Run(&Config{CriticalPrefixes: []string{"internal/never"}}, []*Package{pkg}); len(got) != 0 {
		t.Errorf("non-critical package produced findings: %v", got)
	}
	// Exempt wins over critical.
	cfg := &Config{CriticalPrefixes: []string{"*"}, ExemptPrefixes: []string{"fixture"}}
	if got := Run(cfg, []*Package{pkg}); len(got) != 0 {
		t.Errorf("exempt package produced findings: %v", got)
	}
}

func TestCautiousRunsOutsideCriticalScope(t *testing.T) {
	// The cautious and failsafe passes key off the Ctx parameter, not
	// package identity: a task body in a non-critical package is still
	// checked by both.
	pkg := loadFixture(t, "cautious")
	got := Run(&Config{CriticalPrefixes: []string{"internal/never"}}, []*Package{pkg})
	seen := map[string]bool{}
	for _, f := range got {
		seen[f.Rule] = true
		if f.Rule != "cautious" && f.Rule != "failsafe" {
			t.Errorf("unexpected rule outside critical scope: %s", f)
		}
	}
	if !seen["cautious"] || !seen["failsafe"] {
		t.Fatalf("cautious/failsafe did not both run outside the critical scope: %v", got)
	}
}

func TestConfigParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "detlint.conf")
	content := "# comment\ncritical internal/core\ncritical internal/apps\n\nexempt internal/harness\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rel      string
		critical bool
		exempt   bool
	}{
		{"internal/core", true, false},
		{"internal/core/sub", true, false},
		{"internal/corentine", false, false}, // prefix must stop at a path boundary
		{"internal/apps/bfs", true, false},
		{"internal/harness", false, true},
		{"internal/marks", false, false},
	}
	for _, c := range cases {
		if got := cfg.Critical(c.rel); got != c.critical {
			t.Errorf("Critical(%q) = %v, want %v", c.rel, got, c.critical)
		}
		if got := cfg.Exempt(c.rel); got != c.exempt {
			t.Errorf("Exempt(%q) = %v, want %v", c.rel, got, c.exempt)
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.conf")
	if err := os.WriteFile(bad, []byte("frobnicate internal/core\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseConfig(bad); err == nil {
		t.Error("malformed config accepted")
	}
}

func TestConfigParseRuleScopedExemptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "detlint.conf")
	content := "critical *\nexempt internal/obs wallclock\nexempt internal/stats\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Exempt("internal/obs") {
		t.Error("rule-scoped exemption must not exempt the whole package")
	}
	if !cfg.ExemptRule("internal/obs", "wallclock") {
		t.Error("wallclock not exempted for internal/obs")
	}
	if !cfg.ExemptRule("internal/obs/sub", "wallclock") {
		t.Error("rule exemption must cover subpackages")
	}
	if cfg.ExemptRule("internal/obs", "maprange") {
		t.Error("maprange wrongly exempted")
	}
	if cfg.ExemptRule("internal/core", "wallclock") {
		t.Error("wallclock exempted outside the prefix")
	}

	// Multiple rules per line.
	multi := filepath.Join(t.TempDir(), "multi.conf")
	if err := os.WriteFile(multi, []byte("exempt internal/obs wallclock,maprange\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	mcfg, err := ParseConfig(multi)
	if err != nil {
		t.Fatal(err)
	}
	if !mcfg.ExemptRule("internal/obs", "wallclock") || !mcfg.ExemptRule("internal/obs", "maprange") {
		t.Error("comma-separated rule list not parsed")
	}

	// Unknown rule names are configuration errors, not silent no-ops.
	bad := filepath.Join(t.TempDir(), "bad.conf")
	if err := os.WriteFile(bad, []byte("exempt internal/obs nosuchrule\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseConfig(bad); err == nil {
		t.Error("unknown rule name accepted")
	}
}

func TestMatchExpandsPatterns(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.Match("internal/marks")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Rel != "internal/marks" {
		t.Fatalf("Match(internal/marks) = %v", pkgs)
	}
	pkgs, err = l.Match("internal/apps/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("Match(internal/apps/...) found only %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		if !strings.HasPrefix(p.Rel, "internal/apps") {
			t.Errorf("unexpected package %s", p.Rel)
		}
	}
}
