package lint

import (
	"go/ast"
)

// wallClockPass flags wall-clock reads in determinism-critical packages.
//
// time.Now (and the Since/Until sugar over it) is the canonical source of
// run-to-run variation: any scheduling or algorithmic decision derived
// from it makes the committed output depend on machine speed and load.
// Measurement-only packages (internal/stats, internal/harness) are exempt
// via detlint.conf — they time runs but their values never feed back into
// task scheduling or output.
func wallClockPass() *Pass {
	p := &Pass{
		Name: "wallclock",
		Doc:  "wall-clock read on the deterministic path",
	}
	clockFuncs := map[string]bool{"Now": true, "Since": true, "Until": true}
	p.Run = func(u *Unit) {
		u.inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := u.callee(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "time" && clockFuncs[fn.Name()] {
				u.Reportf(call.Pos(), "time.%s reads the wall clock; deterministic-path code must not branch on real time (move measurement into internal/stats or internal/harness)", fn.Name())
			}
			return true
		})
	}
	return p
}
