package inputs

import (
	"galois/internal/apps/dmr"
	"galois/internal/apps/msf"
	"galois/internal/apps/pfp"
	"galois/internal/geom"
	"galois/internal/graph"
	"galois/internal/mesh"
)

// The builders below are the single source of truth for how a (sizes,
// seed) pair becomes a concrete input. The seed offsets (+1 for dt, +2 for
// pfp, and so on) are part of the derivation: every consumer that wants
// input-identical runs must go through these functions, never re-derive.

// BFSGraph is the bfs/mis input family: a symmetrized random k-out graph.
func BFSGraph(n, degree int, seed uint64) *graph.CSR {
	return graph.Symmetrize(graph.RandomKOut(n, degree, seed))
}

// DTPoints is the Delaunay input family: uniform points seeded at seed+1.
func DTPoints(n int, seed uint64) []geom.Point {
	return geom.UniformPoints(n, seed+1)
}

// PFPNetwork is the preflow-push input family: a random k-out flow network
// with capacities in [1, 100], seeded at seed+2.
func PFPNetwork(n, degree int, seed uint64) *pfp.Network {
	return pfp.RandomNetwork(n, degree, 100, seed+2)
}

// SSSPGraph is the shortest-paths input family: a weighted random k-out
// graph with weights in [1, maxW], seeded at seed+3.
func SSSPGraph(n, degree int, maxW uint32, seed uint64) *graph.Weighted {
	return graph.RandomWeighted(n, degree, maxW, seed+3)
}

// DMRMesh is the mesh-refinement input family: the Delaunay triangulation
// of n shrunken uniform points, seeded at seed+4 — the same derivation the
// harness runs (dmr.MakeInput at sc.Seed+4). Refinement mutates the mesh
// in place, so consumers that need a pristine mesh must call this again.
func DMRMesh(n int, seed uint64) *mesh.Element {
	return dmr.MakeInput(n, seed+4)
}

// MSFEdges is the spanning-forest input family: unique-key weighted edges
// over a symmetrized random k-out graph, seeded at seed+4. Returns the
// node count alongside the edges (msf.Galois wants both).
func MSFEdges(n, degree int, maxW uint32, seed uint64) (int, []msf.WEdge) {
	g := graph.Symmetrize(graph.RandomKOut(n, degree, seed+4))
	return g.N(), msf.RandomWeights(g, maxW, seed+4)
}
