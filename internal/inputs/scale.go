// Package inputs holds the canonical benchmark-input derivations: the
// scale table (input sizes per named scale) and the deterministic
// generators that turn (sizes, seed) into concrete graphs, point sets and
// flow networks. Both the experiment harness (internal/harness) and the
// job service (internal/serve) build their inputs through this package, so
// a job submitted to a server and the same cell run by the harness operate
// on byte-identical inputs — the precondition for comparing their
// fingerprints at all.
package inputs

import "fmt"

// Scale sizes the benchmark inputs. The paper's inputs (§4.2) are the Full
// scale; Default is about one-tenth of that so the whole matrix runs in
// minutes; Small is for tests and smoke runs.
type Scale struct {
	Name      string
	BFSNodes  int
	BFSDegree int
	DTPoints  int
	DMRPoints int
	PFPNodes  int
	PFPDegree int
	// SSSP and MSF are Lonestar-suite extensions beyond the paper's four
	// apps; their sizes are tuned so the DIG-scheduled variants stay in
	// the same wall-clock band as the paper apps at each scale.
	SSSPNodes  int
	SSSPDegree int
	SSSPMaxW   uint32
	MSFNodes   int
	MSFDegree  int
	MSFMaxW    uint32
	// PARSEC-side sizes (Figures 5 and 6).
	BSOptions   int
	BSRounds    int
	BTParticles int
	BTFrames    int
	FMTxns      int
	CavityTasks int
	Reps        int
	Seed        uint64
}

// SmallScale is for tests and smoke runs.
func SmallScale() Scale {
	return Scale{Name: "small", BFSNodes: 20_000, BFSDegree: 5,
		DTPoints: 4_000, DMRPoints: 2_000, PFPNodes: 4_000, PFPDegree: 4,
		SSSPNodes: 8_000, SSSPDegree: 4, SSSPMaxW: 100,
		MSFNodes: 1_000, MSFDegree: 4, MSFMaxW: 1000,
		BSOptions: 20_000, BSRounds: 2, BTParticles: 500, BTFrames: 10,
		FMTxns: 3_000, CavityTasks: 500, Reps: 1, Seed: 42}
}

// DefaultScale runs the matrix in minutes on a laptop-class machine.
func DefaultScale() Scale {
	return Scale{Name: "default", BFSNodes: 1_000_000, BFSDegree: 5,
		DTPoints: 120_000, DMRPoints: 60_000, PFPNodes: 1 << 17, PFPDegree: 4,
		SSSPNodes: 200_000, SSSPDegree: 4, SSSPMaxW: 100,
		MSFNodes: 10_000, MSFDegree: 4, MSFMaxW: 1000,
		BSOptions: 500_000, BSRounds: 5, BTParticles: 4_000, BTFrames: 60,
		FMTxns: 20_000, CavityTasks: 20_000, Reps: 3, Seed: 42}
}

// FullScale reproduces the paper's input sizes (§4.2). Budget accordingly.
func FullScale() Scale {
	return Scale{Name: "full", BFSNodes: 10_000_000, BFSDegree: 5,
		DTPoints: 10_000_000, DMRPoints: 2_500_000, PFPNodes: 1 << 23, PFPDegree: 4,
		SSSPNodes: 2_000_000, SSSPDegree: 4, SSSPMaxW: 100,
		MSFNodes: 500_000, MSFDegree: 4, MSFMaxW: 1000,
		BSOptions: 10_000_000, BSRounds: 10, BTParticles: 16_000, BTFrames: 260,
		FMTxns: 250_000, CavityTasks: 500_000, Reps: 3, Seed: 42}
}

// ScaleByName resolves small/default/full.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return SmallScale(), nil
	case "default", "":
		return DefaultScale(), nil
	case "full":
		return FullScale(), nil
	default:
		return Scale{}, fmt.Errorf("inputs: unknown scale %q (small|default|full)", name)
	}
}
