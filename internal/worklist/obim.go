package worklist

import (
	"sync/atomic"
)

// OBIM is an ordered-by-integer-metric worklist, the Galois scheduler's
// signature policy: tasks carry a small integer priority and workers drain
// lower-priority buckets first, best-effort. Like everything about the
// non-deterministic scheduler, the order is a performance hint only —
// data-driven algorithms such as delta-stepping-style bfs or preflow-push
// converge much faster near priority order, but remain correct under any
// order.
//
// Buckets are ChunkedLIFO worklists (per-thread chunks with stealing); a
// shared monotona-ish hint tracks the lowest possibly-nonempty level so
// pops do not scan from zero each time.
type OBIM[T any] struct {
	buckets []*ChunkedLIFO[T]
	minHint atomic.Int64
	size    atomic.Int64
}

// NewOBIM returns an OBIM with the given number of priority levels for
// nthreads threads. Priorities outside [0, levels) are clamped.
func NewOBIM[T any](nthreads, levels int) *OBIM[T] {
	if levels < 1 {
		levels = 1
	}
	o := &OBIM[T]{buckets: make([]*ChunkedLIFO[T], levels)}
	for i := range o.buckets {
		o.buckets[i] = NewChunkedLIFO[T](nthreads)
	}
	return o
}

func (o *OBIM[T]) clamp(prio int) int {
	if prio < 0 {
		return 0
	}
	if prio >= len(o.buckets) {
		return len(o.buckets) - 1
	}
	return prio
}

// PushPrio adds item at the given priority on thread tid's queue.
func (o *OBIM[T]) PushPrio(tid int, item T, prio int) {
	p := o.clamp(prio)
	o.buckets[p].Push(tid, item)
	o.size.Add(1)
	// Lower the hint if this push went below it.
	for {
		cur := o.minHint.Load()
		if int64(p) >= cur || o.minHint.CompareAndSwap(cur, int64(p)) {
			return
		}
	}
}

// Pop removes a task, preferring the lowest non-empty priority level. ok is
// false when no task was found in any bucket.
func (o *OBIM[T]) Pop(tid int) (item T, ok bool) {
	start := int(o.minHint.Load())
	if start < 0 {
		start = 0
	}
	for p := start; p < len(o.buckets); p++ {
		if it, ok := o.buckets[p].Pop(tid); ok {
			// Raise the hint past the empty prefix we scanned.
			// A racing lower-priority push re-lowers it after its
			// bucket insert, so items are never lost — at worst a
			// pop rescans.
			if p > start {
				o.minHint.CompareAndSwap(int64(start), int64(p))
			}
			o.size.Add(-1)
			return it, true
		}
	}
	// Retry the prefix once in case the hint was stale-high.
	for p := 0; p < start && p < len(o.buckets); p++ {
		if it, ok := o.buckets[p].Pop(tid); ok {
			o.minHint.Store(int64(p))
			o.size.Add(-1)
			return it, true
		}
	}
	var zero T
	return zero, false
}

// Size returns the number of queued tasks.
func (o *OBIM[T]) Size() int { return int(o.size.Load()) }
