// Package worklist provides the task pools used by the non-deterministic
// Galois scheduler: per-thread chunked LIFO stacks with random stealing
// (the Galois "ChunkedLIFO" family) and a simple shared FIFO.
//
// Worklists are generic over the task type and are only required to deliver
// each pushed task exactly once; ordering is best-effort, which is precisely
// the freedom the non-deterministic scheduler exploits.
package worklist

import (
	"sync"
	"sync/atomic"

	"galois/internal/rng"
)

// chunkSize is the number of tasks per chunk; chunking amortizes
// synchronization over the shared pool.
const chunkSize = 64

type chunk[T any] struct {
	items [chunkSize]T
	n     int
}

// ChunkedLIFO is a scalable worklist: each thread owns a current chunk for
// pushes and pops; full/spare chunks circulate through per-thread shelves
// with stealing. LIFO order maximizes locality for data-driven algorithms.
type ChunkedLIFO[T any] struct {
	perThread []localQueue[T]
	size      atomic.Int64
}

type localQueue[T any] struct {
	mu     sync.Mutex
	chunks []*chunk[T] // shelf of full or partial chunks, top at end
	cur    *chunk[T]   // private push/pop chunk, not visible to thieves
	rnd    *rng.Rand
	_      [24]byte // reduce false sharing between adjacent queues
}

// NewChunkedLIFO returns a worklist for nthreads threads.
func NewChunkedLIFO[T any](nthreads int) *ChunkedLIFO[T] {
	w := &ChunkedLIFO[T]{perThread: make([]localQueue[T], nthreads)}
	for i := range w.perThread {
		w.perThread[i].rnd = rng.New(uint64(i)*0x9e3779b9 + 1)
	}
	return w
}

// Push adds item on thread tid's queue.
func (w *ChunkedLIFO[T]) Push(tid int, item T) {
	q := &w.perThread[tid]
	if q.cur == nil {
		q.cur = &chunk[T]{}
	}
	if q.cur.n == chunkSize {
		q.mu.Lock()
		q.chunks = append(q.chunks, q.cur)
		q.mu.Unlock()
		q.cur = &chunk[T]{}
	}
	q.cur.items[q.cur.n] = item
	q.cur.n++
	w.size.Add(1)
}

// Pop removes a task, preferring thread tid's own queue and stealing
// otherwise. ok is false only if no task was found anywhere (which does not
// by itself imply global emptiness; see Size).
func (w *ChunkedLIFO[T]) Pop(tid int) (item T, ok bool) {
	q := &w.perThread[tid]
	if q.cur != nil && q.cur.n > 0 {
		q.cur.n--
		item = q.cur.items[q.cur.n]
		var zero T
		q.cur.items[q.cur.n] = zero
		w.size.Add(-1)
		return item, true
	}
	// Refill from own shelf.
	if c := w.takeChunk(tid); c != nil {
		q.cur = c
		return w.Pop(tid)
	}
	// Steal: probe other shelves starting from a random victim.
	n := len(w.perThread)
	if n > 1 {
		start := q.rnd.Intn(n)
		for i := 0; i < n; i++ {
			v := (start + i) % n
			if v == tid {
				continue
			}
			if c := w.takeChunk(v); c != nil {
				q.cur = c
				return w.Pop(tid)
			}
		}
	}
	var zero T
	return zero, false
}

func (w *ChunkedLIFO[T]) takeChunk(victim int) *chunk[T] {
	q := &w.perThread[victim]
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.chunks) == 0 {
		return nil
	}
	c := q.chunks[len(q.chunks)-1]
	q.chunks = q.chunks[:len(q.chunks)-1]
	return c
}

// Size returns the number of tasks currently in the worklist. It is exact
// when no concurrent pushes/pops are in flight.
func (w *ChunkedLIFO[T]) Size() int { return int(w.size.Load()) }

// ChunkedFIFO is a scalable approximately-first-in-first-out worklist:
// threads fill private chunks and append them to a shared queue; pops drain
// a private chunk taken from the queue's head. Order is FIFO at chunk
// granularity, which is what level-structured algorithms like BFS need from
// the non-deterministic scheduler to avoid pathological traversal orders.
type ChunkedFIFO[T any] struct {
	mu    sync.Mutex
	queue []*chunk[T]
	head  int
	local []fifoLocal[T]
	size  atomic.Int64
}

type fifoLocal[T any] struct {
	write *chunk[T] // being filled by this thread
	read  *chunk[T] // being drained by this thread
	pos   int       // next index to read in read-chunk
	_     [40]byte
}

// NewChunkedFIFO returns a worklist for nthreads threads.
func NewChunkedFIFO[T any](nthreads int) *ChunkedFIFO[T] {
	return &ChunkedFIFO[T]{local: make([]fifoLocal[T], nthreads)}
}

// Push adds item on thread tid's queue.
func (w *ChunkedFIFO[T]) Push(tid int, item T) {
	q := &w.local[tid]
	if q.write == nil {
		q.write = &chunk[T]{}
	}
	q.write.items[q.write.n] = item
	q.write.n++
	w.size.Add(1)
	if q.write.n == chunkSize {
		w.mu.Lock()
		w.queue = append(w.queue, q.write)
		w.mu.Unlock()
		q.write = nil
	}
}

// Pop removes a task in approximate FIFO order. ok is false if this thread
// found no task (shared queue empty and private chunks drained).
func (w *ChunkedFIFO[T]) Pop(tid int) (item T, ok bool) {
	q := &w.local[tid]
	if q.read != nil && q.pos < q.read.n {
		item = q.read.items[q.pos]
		q.pos++
		if q.pos == q.read.n {
			q.read = nil
		}
		w.size.Add(-1)
		return item, true
	}
	// Take the oldest shared chunk.
	w.mu.Lock()
	if w.head < len(w.queue) {
		q.read = w.queue[w.head]
		w.queue[w.head] = nil
		w.head++
		if w.head == len(w.queue) {
			w.queue = w.queue[:0]
			w.head = 0
		}
		w.mu.Unlock()
		q.pos = 0
		return w.Pop(tid)
	}
	w.mu.Unlock()
	// Fall back to this thread's partially filled write chunk.
	if q.write != nil && q.write.n > 0 {
		q.read = q.write
		q.pos = 0
		q.write = nil
		return w.Pop(tid)
	}
	// Steal another thread's write chunk? Not needed: residual items are
	// found because termination is detected via the scheduler's pending
	// count, and their owner threads drain them.
	var zero T
	return zero, false
}

// Size returns the number of queued tasks.
func (w *ChunkedFIFO[T]) Size() int { return int(w.size.Load()) }

// FIFO is a mutex-protected global queue, useful as a simple baseline
// worklist and for tests.
type FIFO[T any] struct {
	mu    sync.Mutex
	items []T
	head  int
}

// NewFIFO returns an empty FIFO.
func NewFIFO[T any]() *FIFO[T] { return &FIFO[T]{} }

// Push appends item.
func (f *FIFO[T]) Push(item T) {
	f.mu.Lock()
	f.items = append(f.items, item)
	f.mu.Unlock()
}

// Pop removes the oldest item.
func (f *FIFO[T]) Pop() (item T, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.head == len(f.items) {
		var zero T
		return zero, false
	}
	item = f.items[f.head]
	var zero T
	f.items[f.head] = zero
	f.head++
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
	}
	return item, true
}

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.items) - f.head
}
