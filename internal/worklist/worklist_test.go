package worklist

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestChunkedLIFOSingleThread(t *testing.T) {
	w := NewChunkedLIFO[int](1)
	const n = 1000
	for i := 0; i < n; i++ {
		w.Push(0, i)
	}
	if w.Size() != n {
		t.Fatalf("size = %d, want %d", w.Size(), n)
	}
	seen := map[int]bool{}
	for {
		v, ok := w.Pop(0)
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate pop of %d", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("popped %d items, want %d", len(seen), n)
	}
	if w.Size() != 0 {
		t.Fatalf("size after drain = %d", w.Size())
	}
}

func TestChunkedLIFOLocalOrder(t *testing.T) {
	// Within one thread and one chunk, order is LIFO.
	w := NewChunkedLIFO[int](1)
	for i := 0; i < 10; i++ {
		w.Push(0, i)
	}
	for i := 9; i >= 0; i-- {
		v, ok := w.Pop(0)
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
}

func TestChunkedLIFOStealing(t *testing.T) {
	const threads = 4
	const n = 10000
	w := NewChunkedLIFO[int](threads)
	// All work pushed on thread 0; other threads must steal it.
	for i := 0; i < n; i++ {
		w.Push(0, i)
	}
	var popped atomic.Int64
	var wg sync.WaitGroup
	for tid := 1; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				if _, ok := w.Pop(tid); !ok {
					return
				}
				popped.Add(1)
			}
		}(tid)
	}
	wg.Wait()
	// Thread 0's private chunk (up to chunkSize items) is not stealable;
	// drain it locally.
	for {
		if _, ok := w.Pop(0); !ok {
			break
		}
		popped.Add(1)
	}
	if popped.Load() != n {
		t.Fatalf("popped %d, want %d", popped.Load(), n)
	}
}

func TestChunkedLIFOConcurrentPushPop(t *testing.T) {
	const threads = 8
	const perThread = 5000
	w := NewChunkedLIFO[int](threads)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				w.Push(tid, i)
				if i%3 == 0 {
					if _, ok := w.Pop(tid); ok {
						consumed.Add(1)
					}
				}
			}
			for {
				if _, ok := w.Pop(tid); !ok {
					break
				}
				consumed.Add(1)
			}
		}(tid)
	}
	wg.Wait()
	// Every thread drains until personally empty; since all pushes
	// happened before the final drains started on each thread, stragglers
	// can remain only if a thread finished while another still held items
	// in its private chunk. Drain once more from thread 0.
	for {
		if _, ok := w.Pop(0); !ok {
			break
		}
		consumed.Add(1)
	}
	if got := consumed.Load(); got != threads*perThread {
		t.Fatalf("consumed %d, want %d", got, threads*perThread)
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO[string]()
	f.Push("a")
	f.Push("b")
	f.Push("c")
	if f.Len() != 3 {
		t.Fatalf("len = %d", f.Len())
	}
	for _, want := range []string{"a", "b", "c"} {
		got, ok := f.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %q,%v want %q", got, ok, want)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop from empty FIFO succeeded")
	}
}

func TestChunkedFIFOSingleThread(t *testing.T) {
	w := NewChunkedFIFO[int](1)
	const n = 500
	for i := 0; i < n; i++ {
		w.Push(0, i)
	}
	// Approximate FIFO becomes exact with a single producer/consumer.
	for i := 0; i < n; i++ {
		v, ok := w.Pop(0)
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := w.Pop(0); ok {
		t.Fatal("pop from empty succeeded")
	}
	if w.Size() != 0 {
		t.Fatalf("size = %d", w.Size())
	}
}

func TestChunkedFIFOMultiThreadDelivery(t *testing.T) {
	const threads = 4
	const perThread = 4000
	w := NewChunkedFIFO[int](threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				w.Push(tid, tid*perThread+i)
			}
		}(tid)
	}
	wg.Wait()
	seen := make([]bool, threads*perThread)
	var mu sync.Mutex
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				v, ok := w.Pop(tid)
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate delivery of %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}(tid)
	}
	wg.Wait()
	count := 0
	for _, s := range seen {
		if s {
			count++
		}
	}
	if count != threads*perThread {
		t.Fatalf("delivered %d, want %d", count, threads*perThread)
	}
}

func TestOBIMDeliversAll(t *testing.T) {
	o := NewOBIM[int](4, 8)
	const n = 5000
	for i := 0; i < n; i++ {
		o.PushPrio(i%4, i, i%11-1) // includes out-of-range priorities
	}
	if o.Size() != n {
		t.Fatalf("size = %d", o.Size())
	}
	seen := make([]bool, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for tid := 0; tid < 4; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for {
				v, ok := o.Pop(tid)
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}(tid)
	}
	wg.Wait()
	// Residual items can sit in other threads' private chunks after a
	// thread exits; drain from every tid.
	for tid := 0; tid < 4; tid++ {
		for {
			v, ok := o.Pop(tid)
			if !ok {
				break
			}
			seen[v] = true
		}
	}
	count := 0
	for _, s := range seen {
		if s {
			count++
		}
	}
	if count != n {
		t.Fatalf("delivered %d of %d", count, n)
	}
}

func TestOBIMPriorityOrderSingleThread(t *testing.T) {
	o := NewOBIM[int](1, 16)
	// Push in reverse priority order.
	for p := 15; p >= 0; p-- {
		o.PushPrio(0, p, p)
	}
	prev := -1
	for {
		v, ok := o.Pop(0)
		if !ok {
			break
		}
		if v < prev {
			t.Fatalf("priority inversion: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestOBIMHintRecovery(t *testing.T) {
	o := NewOBIM[int](1, 16)
	o.PushPrio(0, 1, 10)
	if v, ok := o.Pop(0); !ok || v != 1 {
		t.Fatal("high-priority item lost")
	}
	// Hint is now raised; a low-priority push must still be found.
	o.PushPrio(0, 2, 1)
	if v, ok := o.Pop(0); !ok || v != 2 {
		t.Fatal("low item after hint raise lost")
	}
	if _, ok := o.Pop(0); ok {
		t.Fatal("phantom item")
	}
}
