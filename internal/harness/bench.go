package harness

import (
	"fmt"
	"runtime"

	"galois"
	"galois/internal/apps/dmr"
	"galois/internal/obs"
)

// variantSched maps a harness variant name to its scheduler family for
// benchmark-trajectory entries.
func variantSched(variant string) string {
	switch variant {
	case "seq":
		return "seq"
	case "g-n":
		return "nondet"
	case "g-d", "g-dnc":
		return "det"
	case "pbbs":
		return "pbbs"
	default:
		return variant
	}
}

// BenchEntry converts one measured run into a benchmark-trajectory entry
// (BENCH_<n>.json). The fingerprint and round count make behavior
// regressions diffable independently of the wall-clock trajectory.
func BenchEntry(r Run, scale string) obs.BenchEntry {
	commits, aborts := r.Stats.Commits, r.Stats.Aborts
	ratio := 0.0
	if commits+aborts > 0 {
		ratio = float64(commits) / float64(commits+aborts)
	}
	return obs.BenchEntry{
		App:               r.App,
		Variant:           r.Variant,
		Sched:             variantSched(r.Variant),
		Threads:           r.Threads,
		Scale:             scale,
		WallNS:            r.Elapsed.Nanoseconds(),
		Commits:           commits,
		Aborts:            aborts,
		Rounds:            r.Stats.Rounds,
		CommitRatio:       ratio,
		MeanWindow:        r.Stats.MeanWindow(),
		Fingerprint:       fmt.Sprintf("%016x", r.Fingerprint),
		Barriers:          r.Stats.Barriers,
		BarriersPerRound:  r.Stats.BarriersPerRound(),
		PhaseInspectNS:    r.Stats.PhaseInspectNS,
		PhaseExecuteNS:    r.Stats.PhaseExecuteNS,
		PhaseCoordinateNS: r.Stats.PhaseCoordinateNS,
	}
}

// CollectBench measures every app × Galois-scheduler variant once at the
// given thread count and returns the trajectory document. Used by
// `repro -bench-json` and the benchmark suite to produce BENCH_<n>.json.
func CollectBench(in *Inputs, threads int, scale string) *obs.Bench {
	b := obs.NewBench()
	for _, app := range Apps {
		for _, variant := range []string{"g-n", "g-d", "g-dnc"} {
			if !HasVariant(app, variant) {
				continue
			}
			b.Add(BenchEntry(in.RunOnce(app, variant, threads, nil), scale))
		}
	}
	return b
}

// CollectBenchSweep measures the deterministic variants (g-d, g-dnc) of
// every app once per requested thread count and returns the trajectory
// entries. The sweep is the scaling axis of the benchmark trajectory:
// wall time may move with threads, but every deterministic fingerprint in
// the sweep must be identical across thread counts (the portability
// property) — benchdiff enforces that in-file, so a committed sweep pins
// thread-independence for the exact revision it measures.
func CollectBenchSweep(in *Inputs, threads []int, scale string) *obs.Bench {
	b := obs.NewBench()
	for _, app := range Apps {
		for _, variant := range []string{"g-d", "g-dnc"} {
			for _, th := range threads {
				b.Add(BenchEntry(in.RunOnce(app, variant, th, nil), scale))
			}
		}
	}
	return b
}

// MeasureAllocs runs fn reps times and returns its mean per-run heap
// allocation profile, from runtime.ReadMemStats deltas. Mallocs and
// TotalAlloc are cumulative and GC-independent, so the measurement needs no
// GC coordination; it does assume no unrelated goroutines are allocating.
func MeasureAllocs(reps int, fn func()) (allocsPerOp, bytesPerOp uint64) {
	if reps < 1 {
		reps = 1
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	n := uint64(reps)
	return (after.Mallocs - before.Mallocs) / n, (after.TotalAlloc - before.TotalAlloc) / n
}

// measureAllocsMin measures fn as tries independent single runs and returns
// the per-column minimum. A run's allocation count is a deterministic floor
// plus occasional non-negative runtime noise — GC-cycle bookkeeping
// allocations that land inside the ReadMemStats window on runs big enough
// to trigger collections (dt and dmr allocate millions of objects per run).
// A mean keeps that noise; the minimum of independent runs converges to the
// floor, which is what the strict allocs_per_op trajectory gate compares.
func measureAllocsMin(tries int, fn func()) (allocsPerOp, bytesPerOp uint64) {
	if tries < 1 {
		tries = 1
	}
	for i := 0; i < tries; i++ {
		a, by := MeasureAllocs(1, fn)
		if i == 0 || a < allocsPerOp {
			allocsPerOp = a
		}
		if i == 0 || by < bytesPerOp {
			bytesPerOp = by
		}
	}
	return allocsPerOp, bytesPerOp
}

// perRunBuildCost measures the allocations of the input-construction work
// RunOnce performs inside itself before its timed region (dmr rebuilds its
// mesh every run, pfp resets its network). Run.Elapsed already excludes
// this work, so the allocation columns subtract it too — both columns then
// describe the same region: the scheduled run.
func (in *Inputs) perRunBuildCost(app string) (allocs, bytes uint64) {
	switch app {
	case "dmr":
		q := dmr.DefaultQuality()
		return MeasureAllocs(1, func() {
			root := dmr.MakeInput(in.dmrPts, in.sc.Seed+4)
			_, _ = root, q
		})
	case "pfp":
		return MeasureAllocs(1, func() { in.pfpNet.Reset() })
	default:
		return 0, 0
	}
}

// CollectBenchAllocs measures every app × Galois-scheduler variant at the
// given thread count in both run-state modes — fresh state per run (Mode
// "", the v1-comparable baseline) and reusing one warm engine per cell
// (Mode "engine") — and returns the v2 trajectory with allocation columns
// filled in. The paired entries are the before/after allocation story of
// engine reuse; fingerprints are identical across the pair by the engine
// invariant. The columns cover the same region WallNS does (per-run input
// construction excluded); remaining app-side allocations — result arrays,
// commit closures, dt's output mesh — appear in both modes, so the pair's
// delta is the scheduler's own allocation cost. Each cell is the minimum
// over independent runs (see measureAllocsMin) so the committed columns are
// the deterministic floor, not floor-plus-GC-jitter.
func CollectBenchAllocs(in *Inputs, threads int, scale string) *obs.Bench {
	b := obs.NewBench()
	const tries = 3
	savedEngine := in.Engine
	defer func() { in.Engine = savedEngine }()
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	for _, app := range Apps {
		buildAllocs, buildBytes := in.perRunBuildCost(app)
		for _, variant := range []string{"g-n", "g-d", "g-dnc"} {
			if !HasVariant(app, variant) {
				continue
			}
			var last Run
			// Fresh: run state is built and discarded every run.
			in.Engine = nil
			in.RunOnce(app, variant, threads, nil) // warm app-side caches
			allocs, bytes := measureAllocsMin(tries, func() {
				last = in.RunOnce(app, variant, threads, nil)
			})
			e := BenchEntry(last, scale)
			e.AllocsPerOp, e.BytesPerOp = sub(allocs, buildAllocs), sub(bytes, buildBytes)
			b.Add(e)
			// Engine: same cell, steady state of a reused engine.
			eng := galois.NewEngine(galois.WithThreads(threads))
			in.Engine = eng
			in.RunOnce(app, variant, threads, nil) // warm the engine
			in.RunOnce(app, variant, threads, nil)
			allocs, bytes = measureAllocsMin(tries, func() {
				last = in.RunOnce(app, variant, threads, nil)
			})
			e = BenchEntry(last, scale)
			e.Mode = "engine"
			e.AllocsPerOp, e.BytesPerOp = sub(allocs, buildAllocs), sub(bytes, buildBytes)
			b.Add(e)
			eng.Close()
			in.Engine = nil
		}
	}
	return b
}
