package harness

import (
	"fmt"

	"galois/internal/obs"
)

// variantSched maps a harness variant name to its scheduler family for
// benchmark-trajectory entries.
func variantSched(variant string) string {
	switch variant {
	case "seq":
		return "seq"
	case "g-n":
		return "nondet"
	case "g-d", "g-dnc":
		return "det"
	case "pbbs":
		return "pbbs"
	default:
		return variant
	}
}

// BenchEntry converts one measured run into a benchmark-trajectory entry
// (BENCH_<n>.json). The fingerprint and round count make behavior
// regressions diffable independently of the wall-clock trajectory.
func BenchEntry(r Run, scale string) obs.BenchEntry {
	commits, aborts := r.Stats.Commits, r.Stats.Aborts
	ratio := 0.0
	if commits+aborts > 0 {
		ratio = float64(commits) / float64(commits+aborts)
	}
	return obs.BenchEntry{
		App:         r.App,
		Variant:     r.Variant,
		Sched:       variantSched(r.Variant),
		Threads:     r.Threads,
		Scale:       scale,
		WallNS:      r.Elapsed.Nanoseconds(),
		Commits:     commits,
		Aborts:      aborts,
		Rounds:      r.Stats.Rounds,
		CommitRatio: ratio,
		MeanWindow:  r.Stats.MeanWindow(),
		Fingerprint: fmt.Sprintf("%016x", r.Fingerprint),
	}
}

// CollectBench measures every app × Galois-scheduler variant once at the
// given thread count and returns the trajectory document. Used by
// `repro -bench-json` and the benchmark suite to produce BENCH_<n>.json.
func CollectBench(in *Inputs, threads int, scale string) *obs.Bench {
	b := obs.NewBench()
	for _, app := range Apps {
		for _, variant := range []string{"g-n", "g-d", "g-dnc"} {
			if !HasVariant(app, variant) {
				continue
			}
			b.Add(BenchEntry(in.RunOnce(app, variant, threads, nil), scale))
		}
	}
	return b
}
