package harness

import (
	"strings"
	"testing"

	"galois"
	"galois/internal/obs"
)

func smallInputs() *Inputs { return MakeInputs(SmallScale()) }

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "default", "full", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := ScaleByName("gigantic"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRunOnceAllCombos(t *testing.T) {
	in := smallInputs()
	for _, app := range Apps {
		for _, variant := range Variants {
			if !HasVariant(app, variant) {
				continue
			}
			r := in.RunOnce(app, variant, 2, nil)
			if r.Stats.Commits == 0 {
				t.Fatalf("%s/%s: zero commits", app, variant)
			}
			if r.Elapsed <= 0 {
				t.Fatalf("%s/%s: no elapsed time", app, variant)
			}
		}
	}
}

func TestDeterministicVariantsAgreeAcrossThreads(t *testing.T) {
	in := smallInputs()
	for _, app := range Apps {
		for _, variant := range []string{"g-d", "pbbs"} {
			if !HasVariant(app, variant) {
				continue
			}
			a := in.RunOnce(app, variant, 1, nil)
			b := in.RunOnce(app, variant, 4, nil)
			if a.Fingerprint != b.Fingerprint {
				t.Fatalf("%s/%s: fingerprint differs across thread counts", app, variant)
			}
		}
	}
}

// TestPortabilityThreadSweep is the paper's portability claim (§1, §5.1)
// as an executable regression: under the DIG scheduler — with and without
// the continuation optimization — every registered app commits a
// byte-identical output fingerprint at 1, 2, 4 and 8 threads, and
// attaching a trace sink (plus a metrics registry) leaves every one of
// those fingerprints unchanged — observability is non-perturbing.
func TestPortabilityThreadSweep(t *testing.T) {
	in := smallInputs()
	threads := []int{1, 2, 4, 8}
	for _, app := range Apps {
		for _, variant := range []string{"g-d", "g-dnc"} {
			var want uint64
			for i, th := range threads {
				r := in.RunOnce(app, variant, th, nil)
				if i == 0 {
					want = r.Fingerprint
					continue
				}
				if r.Fingerprint != want {
					t.Errorf("%s/%s: fingerprint %#x at %d threads, want %#x (as at %d threads)",
						app, variant, r.Fingerprint, th, want, threads[0])
				}
			}
			// Traced runs must commit the identical fingerprint.
			in.TraceSink = galois.NewTrace(8)
			in.Metrics = galois.NewMetrics(8)
			for _, th := range threads {
				r := in.RunOnce(app, variant, th, nil)
				if r.Fingerprint != want {
					t.Errorf("%s/%s: traced fingerprint %#x at %d threads != untraced %#x — tracing perturbed the run",
						app, variant, r.Fingerprint, th, want)
				}
			}
			in.TraceSink, in.Metrics = nil, nil
		}
	}
}

// TestTraceEventSequenceThreadInvariant is the trace-level portability
// claim: for a deterministic run, the canonical (timestamp-stripped) event
// sequence — generations, rounds, window decisions — is identical at 1, 2,
// 4 and 8 threads, because every structural event is a pure function of
// the schedule and the schedule is a pure function of the input.
func TestTraceEventSequenceThreadInvariant(t *testing.T) {
	in := smallInputs()
	for _, app := range Apps {
		for _, variant := range []string{"g-d", "g-dnc"} {
			var want []string
			for _, th := range []int{1, 2, 4, 8} {
				tr := galois.NewTrace(th)
				in.TraceSink = tr
				r := in.RunOnce(app, variant, th, nil)
				in.TraceSink = nil
				got := tr.CanonicalLines()
				// Every round reports its phase durations: exactly one
				// phases event per round, in canonical (duration-stripped)
				// form so the sequence stays thread-invariant.
				phases := 0
				for _, line := range got {
					if strings.HasPrefix(line, "phases ") {
						phases++
					}
				}
				if phases != int(r.Stats.Rounds) {
					t.Errorf("%s/%s t%d: %d phases events for %d rounds",
						app, variant, th, phases, r.Stats.Rounds)
				}
				if want == nil {
					want = got
					if len(want) == 0 {
						t.Fatalf("%s/%s: traced run emitted no events", app, variant)
					}
					continue
				}
				if len(got) != len(want) {
					t.Errorf("%s/%s: %d events at %d threads, want %d", app, variant, len(got), th, len(want))
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s/%s: event %d at %d threads = %q, want %q",
							app, variant, i, th, got[i], want[i])
						break
					}
				}
			}
		}
	}
}

// TestParallelCoordinationMatchesSerialOracle is the differential claim of
// the fused round pipeline at application level: for every app,
// deterministic variant and thread count, the default pipeline (parallel
// generation formation, static owner-computes ranges, gather fused into
// the execute phase, and serial round batching — small rounds drained
// inside one barrier callback) commits a byte-identical fingerprint AND an
// identical canonical event sequence to the serial worker-0 oracle, which
// runs every round unbatched through the plain inspect/execute/gather
// sequence. Because the oracle never batches, this is also the
// round-batching determinism suite: batched and unbatched execution must
// be observationally identical at every thread count.
func TestParallelCoordinationMatchesSerialOracle(t *testing.T) {
	in := smallInputs()
	oracle := smallInputs()
	oracle.SerialCoordinator = true
	for _, app := range Apps {
		for _, variant := range []string{"g-d", "g-dnc"} {
			for _, th := range []int{1, 2, 4, 8} {
				tr := galois.NewTrace(th)
				in.TraceSink = tr
				got := in.RunOnce(app, variant, th, nil)
				in.TraceSink = nil

				otr := galois.NewTrace(th)
				oracle.TraceSink = otr
				want := oracle.RunOnce(app, variant, th, nil)
				oracle.TraceSink = nil

				if got.Fingerprint != want.Fingerprint {
					t.Errorf("%s/%s t%d: fingerprint %#x, serial oracle %#x",
						app, variant, th, got.Fingerprint, want.Fingerprint)
					continue
				}
				gl, wl := tr.CanonicalLines(), otr.CanonicalLines()
				if len(gl) != len(wl) {
					t.Errorf("%s/%s t%d: %d events, serial oracle %d", app, variant, th, len(gl), len(wl))
					continue
				}
				for i := range gl {
					if gl[i] != wl[i] {
						t.Errorf("%s/%s t%d: event %d = %q, serial oracle %q",
							app, variant, th, i, gl[i], wl[i])
						break
					}
				}
			}
		}
	}
}

func TestSemanticAgreementAcrossVariants(t *testing.T) {
	// For confluent apps (bfs distances, dt mesh, pfp flow value, and
	// mis/dmr validity-checked elsewhere) the seq fingerprint is the
	// ground truth all variants must hit.
	in := smallInputs()
	for _, app := range []string{"bfs", "dt", "pfp"} {
		want := in.RunOnce(app, "seq", 1, nil).Fingerprint
		for _, variant := range []string{"g-n", "g-d", "g-dnc", "pbbs"} {
			if !HasVariant(app, variant) {
				continue
			}
			// bfs pbbs fingerprints include the parent tree, which
			// seq does not compute; skip that one comparison.
			if app == "bfs" && variant == "pbbs" {
				continue
			}
			got := in.RunOnce(app, variant, 4, nil).Fingerprint
			if got != want {
				t.Fatalf("%s/%s: fingerprint %x != seq %x", app, variant, got, want)
			}
		}
	}
}

func TestFiguresRenderAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure matrix is slow")
	}
	in := smallInputs()
	threads := []int{1, 2}
	for fig := 4; fig <= 12; fig++ {
		var sb strings.Builder
		if err := Figure(fig, in, threads, &sb); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if !strings.Contains(sb.String(), "Figure") {
			t.Fatalf("figure %d produced no output", fig)
		}
	}
}

func TestFigureRejectsUnknown(t *testing.T) {
	in := smallInputs()
	if err := Figure(3, in, []int{1}, &strings.Builder{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestDefaultThreadSweep(t *testing.T) {
	ts := DefaultThreadSweep()
	if len(ts) == 0 || ts[0] != 1 {
		t.Fatalf("sweep = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("sweep not increasing: %v", ts)
		}
	}
}

func TestWindowTraceRenders(t *testing.T) {
	in := smallInputs()
	tr := galois.NewTrace(2)
	var sb, diag strings.Builder
	if err := WindowTrace(in, 2, tr, &sb, &diag); err != nil {
		t.Fatal(err)
	}
	for _, app := range Apps {
		if !strings.Contains(sb.String(), app+":") {
			t.Fatalf("window trace missing %s", app)
		}
	}
	// The figure table and the progress diagnostics are separate streams.
	if strings.Contains(sb.String(), "tracing ") {
		t.Fatal("diagnostics leaked into the figure table")
	}
	if !strings.Contains(diag.String(), "tracing ") {
		t.Fatal("no progress diagnostics emitted")
	}
	// The sink accumulated all five app runs and exports valid Chrome JSON.
	if got := len(tr.Rounds()); got == 0 {
		t.Fatal("sink captured no rounds")
	}
	var js strings.Builder
	if err := tr.WriteChromeTrace(&js); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace([]byte(js.String())); err != nil {
		t.Fatalf("window-trace chrome export invalid: %v", err)
	}
}

func TestBenchEntryFromRun(t *testing.T) {
	in := smallInputs()
	r := in.RunOnce("mis", "g-d", 2, nil)
	e := BenchEntry(r, "small")
	if e.App != "mis" || e.Sched != "det" || e.Threads != 2 || e.Scale != "small" {
		t.Fatalf("entry = %+v", e)
	}
	if e.Commits == 0 || e.Rounds == 0 || e.WallNS <= 0 {
		t.Fatalf("entry missing measurements: %+v", e)
	}
	if e.CommitRatio <= 0 || e.CommitRatio > 1 {
		t.Fatalf("commit ratio out of range: %v", e.CommitRatio)
	}
	if len(e.Fingerprint) != 16 {
		t.Fatalf("fingerprint not 16 hex chars: %q", e.Fingerprint)
	}
	if variantSched("g-n") != "nondet" || variantSched("seq") != "seq" || variantSched("pbbs") != "pbbs" {
		t.Fatal("variant→sched mapping changed")
	}
}

func TestExtensionsRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions comparison is slow")
	}
	in := smallInputs()
	var sb strings.Builder
	if err := Extensions(in, 2, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"maximal matching", "boruvka", "sssp"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("extensions output missing %q", want)
		}
	}
}

func TestRunDetTunedVariants(t *testing.T) {
	in := smallInputs()
	for _, app := range Apps {
		in.RunDetTuned(t, "bfs", 2, 64, 0.9, true)
		_ = app
		break // one app suffices; the dispatch switch is the target
	}
	in.RunDetTuned(t, "pfp", 2, 0, 0, false)
}

// TestEngineReuseFingerprints is the harness-level engine invariant: for
// every app, deterministic runs that reuse one engine (three in a row, so
// the second and third hit fully warm state) commit fingerprints
// byte-identical to a fresh ForEach at every thread count, with and
// without the continuation optimization.
func TestEngineReuseFingerprints(t *testing.T) {
	in := smallInputs()
	for _, app := range Apps {
		for _, variant := range []string{"g-d", "g-dnc"} {
			for _, th := range []int{1, 2, 4, 8} {
				in.Engine = nil
				want := in.RunOnce(app, variant, th, nil).Fingerprint
				eng := galois.NewEngine(galois.WithThreads(th))
				in.Engine = eng
				for run := 0; run < 3; run++ {
					got := in.RunOnce(app, variant, th, nil).Fingerprint
					if got != want {
						t.Errorf("%s/%s t%d run %d: engine fingerprint %#x != fresh %#x",
							app, variant, th, run, got, want)
					}
				}
				eng.Close()
				in.Engine = nil
			}
		}
	}
}

// TestEngineSteadyStateAllocs checks the allocation payoff end-to-end: a
// warm engine-reused deterministic run of a real app allocates less than
// half of what a fresh run does (the residue is app-side — result arrays,
// input bookkeeping — which reuse cannot and should not remove).
func TestEngineSteadyStateAllocs(t *testing.T) {
	in := smallInputs()
	for _, app := range []string{"bfs", "mis"} {
		in.Engine = nil
		in.RunOnce(app, "g-d", 2, nil) // warm app-side caches
		freshAllocs, _ := MeasureAllocs(3, func() { in.RunOnce(app, "g-d", 2, nil) })

		eng := galois.NewEngine(galois.WithThreads(2))
		in.Engine = eng
		in.RunOnce(app, "g-d", 2, nil) // warm the engine
		in.RunOnce(app, "g-d", 2, nil)
		engineAllocs, _ := MeasureAllocs(3, func() { in.RunOnce(app, "g-d", 2, nil) })
		eng.Close()
		in.Engine = nil

		if engineAllocs*2 > freshAllocs {
			t.Errorf("%s: engine run allocates %d objects vs %d fresh — reuse saves less than half",
				app, engineAllocs, freshAllocs)
		}
		t.Logf("%s: allocs/run fresh=%d engine=%d", app, freshAllocs, engineAllocs)
	}
}

// TestBarrierAndPhaseCountersConsistent pins the new per-round coordination
// observability: for a deterministic run, Stats.Barriers (a) is nonzero,
// (b) is deterministic — two identical runs report the same count, (c)
// equals the sum of the per-round crossing counts the trace records
// (KindPhases Args[3]), and (d) is mirrored by the round.barriers metrics
// counter. Phase wall-time columns must be populated (the round loop
// always stamps them) and must sum to no more than the run's wall time.
// None of this instrumentation may perturb the committed fingerprint —
// the runs here are compared against an uninstrumented baseline.
func TestBarrierAndPhaseCountersConsistent(t *testing.T) {
	in := smallInputs()
	for _, app := range []string{"bfs", "mis"} {
		base := in.RunOnce(app, "g-d", 2, nil)
		reg := galois.NewMetrics(2)
		tr := galois.NewTrace(2)
		in.Metrics, in.TraceSink = reg, tr
		r1 := in.RunOnce(app, "g-d", 2, nil)
		in.Metrics, in.TraceSink = nil, nil
		r2 := in.RunOnce(app, "g-d", 2, nil)

		if r1.Fingerprint != base.Fingerprint {
			t.Errorf("%s: instrumented fingerprint %#x != baseline %#x", app, r1.Fingerprint, base.Fingerprint)
		}
		if r1.Stats.Barriers == 0 {
			t.Fatalf("%s: zero barrier crossings recorded", app)
		}
		if r1.Stats.Barriers != r2.Stats.Barriers {
			t.Errorf("%s: barrier count not deterministic: %d vs %d", app, r1.Stats.Barriers, r2.Stats.Barriers)
		}
		var fromTrace uint64
		for _, ev := range tr.Events() {
			if ev.Kind == obs.KindPhases {
				fromTrace += uint64(ev.Args[3])
			}
		}
		if fromTrace != r1.Stats.Barriers {
			t.Errorf("%s: trace records %d crossings, stats %d", app, fromTrace, r1.Stats.Barriers)
		}
		if got := reg.Counter("round.barriers").Value(); got != r1.Stats.Barriers {
			t.Errorf("%s: round.barriers counter %d, stats %d", app, got, r1.Stats.Barriers)
		}
		phases := r1.Stats.PhaseInspectNS + r1.Stats.PhaseExecuteNS + r1.Stats.PhaseCoordinateNS
		if r1.Stats.PhaseInspectNS <= 0 || r1.Stats.PhaseExecuteNS <= 0 || r1.Stats.PhaseCoordinateNS <= 0 {
			t.Errorf("%s: phase columns not populated: %+v", app, r1.Stats)
		}
		if phases > r1.Elapsed.Nanoseconds() {
			t.Errorf("%s: phase sum %dns exceeds wall %dns", app, phases, r1.Elapsed.Nanoseconds())
		}
	}
}
