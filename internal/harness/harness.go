// Package harness runs the paper's experiment matrix (§5): it generates
// the benchmark inputs, dispatches app × variant × thread-count runs, and
// renders each figure/table of the evaluation section. The cmd/repro
// binary and the repository's benchmarks are thin wrappers over it.
package harness

import (
	"fmt"
	"testing"
	"time"

	"galois"
	"galois/internal/apps/bfs"
	"galois/internal/apps/dmr"
	"galois/internal/apps/dt"
	"galois/internal/apps/mis"
	"galois/internal/apps/pfp"
	"galois/internal/cachesim"
	"galois/internal/geom"
	"galois/internal/graph"
	"galois/internal/inputs"
	"galois/internal/para"
	"galois/internal/stats"
)

// Scale sizes the benchmark inputs. The table lives in internal/inputs so
// the serving layer shares it; see inputs.Scale.
type Scale = inputs.Scale

// SmallScale is for tests and smoke runs.
func SmallScale() Scale { return inputs.SmallScale() }

// DefaultScale runs the matrix in minutes on a laptop-class machine.
func DefaultScale() Scale { return inputs.DefaultScale() }

// FullScale reproduces the paper's input sizes (§4.2). Budget accordingly.
func FullScale() Scale { return inputs.FullScale() }

// ScaleByName resolves small/default/full.
func ScaleByName(name string) (Scale, error) { return inputs.ScaleByName(name) }

// Apps is the irregular-benchmark list in presentation order.
var Apps = []string{"bfs", "dmr", "dt", "mis", "pfp"}

// Variants of the irregular apps.
var Variants = []string{"seq", "g-n", "g-d", "g-dnc", "pbbs"}

// Inputs holds the generated inputs for one scale, shared across runs.
// Median measurements are memoized so figures that revisit the same
// app/variant/threads cell (7, 9, 10, 12 overlap heavily) reuse them.
type Inputs struct {
	sc       Scale
	bfsGraph *graph.CSR
	dtPoints []geom.Point
	dmrPts   int
	pfpNet   *pfp.Network
	memo     map[string]Run

	// TraceSink, if non-nil, is attached to every Galois-variant run
	// dispatched through this Inputs. Sinks must be sized for the largest
	// thread count that will run. Tracing is non-perturbing (see
	// internal/obs), so measurements and fingerprints are unchanged.
	TraceSink galois.TraceSink
	// Metrics, if non-nil, is attached to every Galois-variant run.
	Metrics *galois.Metrics
	// Engine, if non-nil, supplies retained run state to every
	// Galois-variant run dispatched through this Inputs (galois.WithEngine).
	// Reuse changes neither outputs nor event sequences, only allocation
	// behavior; fingerprints are engine-invariant by construction (and
	// tested to be).
	Engine *galois.Engine
	// SerialCoordinator, if set, runs every deterministic-variant run
	// through the serial round-coordinator oracle
	// (galois.WithSerialCoordinator). Differential tests compare its
	// byte-identical output against the default parallel coordination.
	SerialCoordinator bool
}

// MakeInputs generates all inputs for sc once, through the canonical
// derivations in internal/inputs — the same ones the job service uses, so
// harness runs and served jobs of the same (scale, seed) cell are
// input-identical and their fingerprints directly comparable.
func MakeInputs(sc Scale) *Inputs {
	return &Inputs{
		sc:       sc,
		bfsGraph: inputs.BFSGraph(sc.BFSNodes, sc.BFSDegree, sc.Seed),
		dtPoints: inputs.DTPoints(sc.DTPoints, sc.Seed),
		dmrPts:   sc.DMRPoints,
		pfpNet:   inputs.PFPNetwork(sc.PFPNodes, sc.PFPDegree, sc.Seed),
		memo:     make(map[string]Run),
	}
}

// Run is the result of one measured app run.
type Run struct {
	App, Variant string
	Threads      int
	Elapsed      time.Duration
	Stats        stats.Stats
	Fingerprint  uint64
}

// galoisOpts translates a variant name to scheduler options, attaching the
// Inputs' trace sink and metrics registry when present.
func (in *Inputs) galoisOpts(variant string, threads int, profile *cachesim.Tracer) []galois.Option {
	opts := []galois.Option{galois.WithThreads(threads)}
	switch variant {
	case "g-n":
	case "g-d":
		opts = append(opts, galois.WithSched(galois.Deterministic))
	case "g-dnc":
		opts = append(opts, galois.WithSched(galois.Deterministic), galois.WithoutContinuation())
	default:
		panic("harness: not a galois variant: " + variant)
	}
	if in.SerialCoordinator && variant != "g-n" {
		opts = append(opts, galois.WithSerialCoordinator())
	}
	if profile != nil {
		opts = append(opts, galois.WithProfile(profile))
	}
	if in.TraceSink != nil {
		opts = append(opts, galois.WithTrace(in.TraceSink))
	}
	if in.Metrics != nil {
		opts = append(opts, galois.WithMetrics(in.Metrics))
	}
	if in.Engine != nil {
		opts = append(opts, galois.WithEngine(in.Engine))
	}
	return opts
}

// RunOnce executes one app/variant/threads combination and returns the
// measurement. profile may be nil; when set, abstract-location accesses are
// traced for the §5.4 locality analysis (supported for the Galois variants
// of all apps and the PBBS variants of dt/dmr).
func (in *Inputs) RunOnce(app, variant string, threads int, profile *cachesim.Tracer) Run {
	r := Run{App: app, Variant: variant, Threads: threads}
	start := time.Now()
	switch app {
	case "bfs":
		var res *bfs.Result
		switch variant {
		case "seq":
			res = bfs.Seq(in.bfsGraph, 0)
		case "pbbs":
			res = bfs.PBBS(in.bfsGraph, 0, threads)
		default:
			res = bfs.Galois(in.bfsGraph, 0, in.galoisOpts(variant, threads, profile)...)
		}
		r.Stats = res.Stats
		r.Fingerprint = res.Fingerprint()
	case "mis":
		var res *mis.Result
		switch variant {
		case "seq":
			res = mis.Seq(in.bfsGraph)
		case "pbbs":
			res = mis.PBBS(in.bfsGraph, threads)
		default:
			res = mis.Galois(in.bfsGraph, in.galoisOpts(variant, threads, profile)...)
		}
		r.Stats = res.Stats
		r.Fingerprint = res.Fingerprint()
	case "dt":
		var res *dt.Result
		switch variant {
		case "seq":
			res = dt.Seq(in.dtPoints, in.sc.Seed+3)
		case "pbbs":
			res = dt.PBBSProfiled(in.dtPoints, in.sc.Seed+3, threads, 0, profile)
		default:
			res = dt.Galois(in.dtPoints, in.sc.Seed+3, in.galoisOpts(variant, threads, profile)...)
		}
		r.Stats = res.Stats
		r.Fingerprint = res.Fingerprint()
	case "dmr":
		q := dmr.DefaultQuality()
		root := dmr.MakeInput(in.dmrPts, in.sc.Seed+4)
		start = time.Now() // exclude input construction
		var res *dmr.Result
		switch variant {
		case "seq":
			res = dmr.Seq(root, q)
		case "pbbs":
			res = dmr.PBBSProfiled(root, q, threads, 0, profile)
		default:
			res = dmr.Galois(root, q, in.galoisOpts(variant, threads, profile)...)
		}
		r.Stats = res.Stats
		r.Fingerprint = res.Fingerprint()
	case "pfp":
		in.pfpNet.Reset()
		start = time.Now()
		var val int64
		var st stats.Stats
		switch variant {
		case "seq":
			val, st = pfp.Seq(in.pfpNet)
		case "pbbs":
			// The paper has no PBBS pfp variant (§4.1); callers
			// should not request one.
			panic("harness: pfp has no pbbs variant")
		default:
			val, st = pfp.Galois(in.pfpNet, in.galoisOpts(variant, threads, profile)...)
		}
		r.Stats = st
		r.Fingerprint = uint64(val)
	default:
		panic("harness: unknown app " + app)
	}
	r.Elapsed = time.Since(start)
	return r
}

// RunDetTuned runs the deterministic variant of app with explicit window
// policy constants and/or the locality interleave disabled — the §3.3
// ablation hooks for the benchmark suite. tb is only used to fail fast on
// unknown apps.
func (in *Inputs) RunDetTuned(tb testing.TB, app string, threads, winInit int, winTarget float64, noInterleave bool) {
	opts := []galois.Option{galois.WithThreads(threads), galois.WithSched(galois.Deterministic)}
	if winInit > 0 || winTarget > 0 {
		opts = append(opts, galois.WithWindow(winInit, 0, winTarget))
	}
	if noInterleave {
		opts = append(opts, galois.WithLocalityInterleave(false))
	}
	switch app {
	case "bfs":
		bfs.Galois(in.bfsGraph, 0, opts...)
	case "mis":
		mis.Galois(in.bfsGraph, opts...)
	case "dt":
		dt.Galois(in.dtPoints, in.sc.Seed+3, opts...)
	case "dmr":
		dmr.Galois(dmr.MakeInput(in.dmrPts, in.sc.Seed+4), dmr.DefaultQuality(), opts...)
	case "pfp":
		in.pfpNet.Reset()
		pfp.Galois(in.pfpNet, opts...)
	default:
		tb.Fatalf("harness: unknown app %q", app)
	}
}

// RunMedian repeats RunOnce sc.Reps times and returns the run with the
// median elapsed time. Results are memoized per (app, variant, threads);
// deterministic inputs make repeat measurements redundant across figures.
func (in *Inputs) RunMedian(app, variant string, threads int) Run {
	key := fmt.Sprintf("%s/%s/%d", app, variant, threads)
	if r, ok := in.memo[key]; ok {
		return r
	}
	reps := in.sc.Reps
	if reps < 1 {
		reps = 1
	}
	runs := make([]Run, reps)
	for i := range runs {
		runs[i] = in.RunOnce(app, variant, threads, nil)
	}
	// Median by elapsed time (insertion sort, reps is tiny).
	for i := 1; i < len(runs); i++ {
		v := runs[i]
		j := i - 1
		for j >= 0 && runs[j].Elapsed > v.Elapsed {
			runs[j+1] = runs[j]
			j--
		}
		runs[j+1] = v
	}
	med := runs[len(runs)/2]
	in.memo[key] = med
	return med
}

// HasVariant reports whether app has the given variant.
func HasVariant(app, variant string) bool {
	if app == "pfp" && variant == "pbbs" {
		return false
	}
	return true
}

// DefaultThreadSweep returns 1,2,4,...,GOMAXPROCS (always including the
// max even if not a power of two).
func DefaultThreadSweep() []int {
	maxT := para.DefaultThreads()
	var ts []int
	for t := 1; t < maxT; t *= 2 {
		ts = append(ts, t)
	}
	ts = append(ts, maxT)
	// Dedup in case max is a power of two.
	if len(ts) >= 2 && ts[len(ts)-1] == ts[len(ts)-2] {
		ts = ts[:len(ts)-1]
	}
	return ts
}
