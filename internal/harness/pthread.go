package harness

import (
	"galois/internal/apps/bfs"
	"galois/internal/apps/mis"
	"galois/internal/coredet"
)

// pthreadBFS runs the pthread-style BFS on the shared bfs input.
func pthreadBFS(in *Inputs, threads int, rt *coredet.Runtime) {
	bfs.PThread(in.bfsGraph, 0, threads, rt)
}

// pthreadMIS runs the pthread-style MIS on the shared graph input.
func pthreadMIS(in *Inputs, threads int, rt *coredet.Runtime) {
	mis.PThread(in.bfsGraph, threads, rt)
}

// PThreadBFS exposes the pthread-style BFS for the benchmark suite.
func PThreadBFS(in *Inputs, threads int, rt *coredet.Runtime) { pthreadBFS(in, threads, rt) }

// PThreadMIS exposes the pthread-style MIS for the benchmark suite.
func PThreadMIS(in *Inputs, threads int, rt *coredet.Runtime) { pthreadMIS(in, threads, rt) }
