package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"galois"
	"galois/internal/apps/blackscholes"
	"galois/internal/apps/bodytrack"
	"galois/internal/apps/cavity"
	"galois/internal/apps/freqmine"
	"galois/internal/apps/mm"
	"galois/internal/apps/msf"
	"galois/internal/apps/sssp"
	"galois/internal/cachesim"
	"galois/internal/coredet"
	"galois/internal/graph"
	"galois/internal/linreg"
)

// WindowTrace renders the adaptive window's per-round evolution for one
// deterministic run of each app — the §3.2 calculateWindow mechanism made
// visible. Not a paper figure; a bonus diagnostic for the parameterless
// claim (the trace depends only on commit counts, never on threads).
//
// The per-round data comes from the obs trace sink tr, which accumulates
// every app's events and can afterwards be exported as Chrome trace JSON;
// pass nil to use a throwaway sink. Figure tables go to w; progress
// diagnostics go to diag (so `repro ... > table.txt` stays clean).
func WindowTrace(in *Inputs, threads int, tr *galois.Trace, w, diag io.Writer) error {
	if tr == nil {
		tr = galois.NewTrace(threads)
	}
	prev := in.TraceSink
	in.TraceSink = tr
	defer func() { in.TraceSink = prev }()

	fmt.Fprintf(w, "Adaptive window trace (threads=%d; identical for any thread count)\n", threads)
	for _, app := range Apps {
		fmt.Fprintf(diag, "tracing %s (g-d, %d threads)\n", app, threads)
		before := len(tr.Rounds())
		r := in.RunOnce(app, "g-d", threads, nil)
		rounds := tr.Rounds()[before:]
		fmt.Fprintf(w, "\n%s: %d rounds, mean window %.1f\n  round:window/committed ",
			app, r.Stats.Rounds, r.Stats.MeanWindow())
		step := len(rounds)/12 + 1
		for i := 0; i < len(rounds); i += step {
			fmt.Fprintf(w, " %d:%d/%d", i, rounds[i].Window, rounds[i].Committed)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Extensions renders the library-extension comparison (mm, msf, sssp —
// not paper figures): per variant timings plus the msf re-run of the
// paper's mis lesson, that a deterministic-by-construction algorithm beats
// deterministic scheduling of a non-deterministic one when it exists.
func Extensions(in *Inputs, threads int, w io.Writer) error {
	fmt.Fprintf(w, "Extensions (mm, msf, sssp) at %d threads\n", threads)
	g := graph.Symmetrize(graph.RandomKOut(in.sc.BFSNodes/10, 5, in.sc.Seed+20))
	wg := graph.RandomWeighted(in.sc.BFSNodes/10, 4, 100, in.sc.Seed+21)
	edges := msf.RandomWeights(g, 1000, in.sc.Seed+22)

	timeIt := func(name string, f func()) {
		start := time.Now()
		f()
		fmt.Fprintf(w, "  %-14s %12s\n", name, time.Since(start).Round(time.Microsecond))
	}
	fmt.Fprintln(w, "maximal matching:")
	timeIt("seq", func() { mm.Seq(g) })
	timeIt("g-n", func() { mm.Galois(g, galois.WithThreads(threads)) })
	timeIt("g-d", func() { mm.Galois(g, galois.WithThreads(threads), galois.WithSched(galois.Deterministic)) })
	timeIt("pbbs", func() { mm.PBBS(g, threads) })
	fmt.Fprintln(w, "boruvka spanning forest:")
	timeIt("seq (kruskal)", func() { msf.Seq(g.N(), edges) })
	timeIt("g-n", func() { msf.Galois(g.N(), edges, galois.WithThreads(threads)) })
	timeIt("g-d", func() {
		msf.Galois(g.N(), edges, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
	})
	timeIt("pbbs", func() { msf.PBBS(g.N(), edges, threads) })
	fmt.Fprintln(w, "sssp:")
	timeIt("seq (dijkstra)", func() { sssp.Seq(wg, 0) })
	timeIt("g-n obim", func() { sssp.Galois(wg, 0, sssp.DefaultOptions(100), galois.WithThreads(threads)) })
	timeIt("g-n fifo", func() { sssp.Galois(wg, 0, sssp.Options{}, galois.WithThreads(threads)) })
	timeIt("g-d", func() {
		sssp.Galois(wg, 0, sssp.Options{}, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
	})
	fmt.Fprintln(w, "\nNote the msf shape: the round-based deterministic-by-construction variant")
	fmt.Fprintln(w, "dominates DIG scheduling of contraction — the paper's mis lesson (§5.3).")
	return nil
}

// Figure runs the reproduction of one paper figure/table and writes it to w.
func Figure(n int, in *Inputs, threads []int, w io.Writer) error {
	if len(threads) == 0 {
		threads = DefaultThreadSweep()
	}
	switch n {
	case 4:
		return Fig4(in, threads, w)
	case 5:
		return Fig5(in, threads, w)
	case 6:
		return Fig6(in, threads, w)
	case 7:
		return Fig7(in, threads, w)
	case 8:
		return Fig8(in, w)
	case 9:
		return Fig9(in, threads, w)
	case 10:
		return Fig10(in, threads, w)
	case 11:
		return Fig11(in, threads, w)
	case 12:
		return Fig12(in, threads, w)
	default:
		return fmt.Errorf("harness: the paper has no figure %d in §5 (use 4-12)", n)
	}
}

func maxThreads(threads []int) int {
	m := 1
	for _, t := range threads {
		if t > m {
			m = t
		}
	}
	return m
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Fig4 reproduces Figure 4: task execution rates, abort ratios and round
// counts at 1 thread and at the maximum thread count.
func Fig4(in *Inputs, threads []int, w io.Writer) error {
	maxT := maxThreads(threads)
	fmt.Fprintf(w, "Figure 4: committed tasks/us, abort ratio, rounds (threads: 1 and %d)\n", maxT)
	fmt.Fprintf(w, "%-6s %-6s | %12s %12s %10s | %12s %12s %10s\n",
		"app", "var", "tasks/us@1", "abort@1", "rounds@1", fmt.Sprintf("tasks/us@%d", maxT),
		fmt.Sprintf("abort@%d", maxT), fmt.Sprintf("rounds@%d", maxT))
	for _, app := range Apps {
		for _, variant := range []string{"g-n", "g-d", "pbbs"} {
			if !HasVariant(app, variant) {
				continue
			}
			r1 := in.RunMedian(app, variant, 1)
			rm := in.RunMedian(app, variant, maxT)
			fmt.Fprintf(w, "%-6s %-6s | %12.3f %12.4f %10d | %12.3f %12.4f %10d\n",
				app, variant,
				r1.Stats.CommitsPerMicro(), r1.Stats.AbortRatio(), r1.Stats.Rounds,
				rm.Stats.CommitsPerMicro(), rm.Stats.AbortRatio(), rm.Stats.Rounds)
		}
	}
	fmt.Fprintln(w, "\nShape checks vs the paper: g-n abort ratios ~0; deterministic")
	fmt.Fprintln(w, "variants abort even at 1 thread; deterministic variants run in rounds.")
	return nil
}

// runParsec measures one PARSEC-side app; returns elapsed and sync-op rate.
func runParsec(in *Inputs, app string, threads int, enabled bool) (time.Duration, float64) {
	sc := in.sc
	rt := coredet.New(enabled, 0)
	start := time.Now()
	switch app {
	case "blackscholes":
		blackscholes.Run(blackscholes.GenPortfolio(sc.BSOptions, sc.Seed+10), sc.BSRounds, threads, rt)
	case "bodytrack":
		bodytrack.Run(bodytrack.Config{Particles: sc.BTParticles, Frames: sc.BTFrames}, threads, rt, sc.Seed+11)
	case "freqmine":
		cfg := freqmine.DefaultConfig()
		cfg.Transactions = sc.FMTxns
		freqmine.Run(cfg, freqmine.GenTransactions(cfg, sc.Seed+12), threads, rt)
	case "dmr-pt":
		cavity.Run(cavity.DMRProfile(sc.CavityTasks), threads, rt, sc.Seed+13)
	case "dt-pt":
		cavity.Run(cavity.DTProfile(sc.CavityTasks), threads, rt, sc.Seed+14)
	default:
		panic("harness: unknown parsec app " + app)
	}
	elapsed := time.Since(start)
	us := elapsed.Seconds() * 1e6
	rate := 0.0
	if us > 0 {
		rate = float64(rt.SyncOps()) / us
	}
	return elapsed, rate
}

// Fig5 reproduces Figure 5: atomic update rates, contrasting the PARSEC
// applications with the irregular benchmarks.
func Fig5(in *Inputs, threads []int, w io.Writer) error {
	maxT := maxThreads(threads)
	fmt.Fprintf(w, "Figure 5: atomic updates/us (threads: 1 and %d)\n", maxT)
	fmt.Fprintf(w, "%-14s %-6s | %14s %14s\n", "app", "var", "atomics/us@1", fmt.Sprintf("atomics/us@%d", maxT))
	for _, app := range Apps {
		for _, variant := range []string{"g-n", "g-d", "pbbs"} {
			if !HasVariant(app, variant) {
				continue
			}
			r1 := in.RunMedian(app, variant, 1)
			rm := in.RunMedian(app, variant, maxT)
			fmt.Fprintf(w, "%-14s %-6s | %14.3f %14.3f\n",
				app, variant, r1.Stats.AtomicsPerMicro(), rm.Stats.AtomicsPerMicro())
		}
	}
	for _, app := range []string{"blackscholes", "bodytrack", "freqmine"} {
		_, rate1 := runParsec(in, app, 1, false)
		_, rateM := runParsec(in, app, maxT, false)
		fmt.Fprintf(w, "%-14s %-6s | %14.3f %14.3f\n", app, "pt", rate1, rateM)
	}
	fmt.Fprintln(w, "\nShape check vs the paper: the PARSEC codes synchronize orders of")
	fmt.Fprintln(w, "magnitude less often than the irregular benchmarks.")
	return nil
}

// Fig6 reproduces Figure 6: speedups with and without CoreDet-style
// deterministic thread scheduling.
func Fig6(in *Inputs, threads []int, w io.Writer) error {
	apps := []string{"blackscholes", "bodytrack", "freqmine", "bfs-pt", "mis-pt", "dmr-pt", "dt-pt"}
	fmt.Fprintln(w, "Figure 6: speedup over plain 1-thread, with and without CoreDet")
	fmt.Fprintf(w, "%-14s %-8s |", "app", "mode")
	for _, t := range threads {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("t=%d", t))
	}
	fmt.Fprintln(w)
	var slowdowns, pbbsSlowdowns []float64
	maxT := maxThreads(threads)
	for _, app := range apps {
		base := in.runFig6(app, 1, false)
		var coredetMax, plainMax time.Duration
		for _, enabled := range []bool{false, true} {
			mode := "plain"
			if enabled {
				mode = "coredet"
			}
			fmt.Fprintf(w, "%-14s %-8s |", app, mode)
			for _, t := range threads {
				el := in.runFig6(app, t, enabled)
				fmt.Fprintf(w, " %8.2f", base.Seconds()/el.Seconds())
				if t == maxT {
					if enabled {
						coredetMax = el
					} else {
						plainMax = el
					}
				}
			}
			fmt.Fprintln(w)
		}
		sd := coredetMax.Seconds() / plainMax.Seconds()
		slowdowns = append(slowdowns, sd)
		switch app {
		case "bfs-pt", "mis-pt", "dmr-pt", "dt-pt":
			pbbsSlowdowns = append(pbbsSlowdowns, sd)
		}
	}
	fmt.Fprintf(w, "\nCoreDet slowdown at %d threads: median %.2fx over all apps;\n", maxT, median(slowdowns))
	fmt.Fprintf(w, "median %.2fx over the modified-PBBS programs (the paper's 3.7x; min 1.3x, max 55x)\n",
		median(pbbsSlowdowns))
	fmt.Fprintln(w, "Shape check: blackscholes tolerates CoreDet; the sync-heavy irregular")
	fmt.Fprintln(w, "codes (bfs, dmr, dt) collapse; the data-parallel mis survives.")
	return nil
}

func (in *Inputs) runFig6(app string, threads int, enabled bool) time.Duration {
	switch app {
	case "bfs-pt":
		start := time.Now()
		rtc := coredet.New(enabled, 0)
		bfsPT(in, threads, rtc)
		return time.Since(start)
	case "mis-pt":
		start := time.Now()
		rtc := coredet.New(enabled, 0)
		misPT(in, threads, rtc)
		return time.Since(start)
	default:
		el, _ := runParsec(in, app, threads, enabled)
		return el
	}
}

// Fig7 reproduces Figure 7: speedups of g-n, g-d and pbbs over the best
// sequential baseline.
func Fig7(in *Inputs, threads []int, w io.Writer) error {
	fmt.Fprintln(w, "Figure 7: speedup over best sequential baseline (Figure 8)")
	fmt.Fprintf(w, "%-6s %-6s |", "app", "var")
	for _, t := range threads {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("t=%d", t))
	}
	fmt.Fprintln(w)
	maxT := maxThreads(threads)
	var gnOverPbbs, gdOverPbbs []float64
	for _, app := range Apps {
		base := in.RunMedian(app, "seq", 1).Elapsed
		atMax := map[string]time.Duration{}
		for _, variant := range []string{"g-n", "g-d", "pbbs"} {
			if !HasVariant(app, variant) {
				continue
			}
			fmt.Fprintf(w, "%-6s %-6s |", app, variant)
			for _, t := range threads {
				r := in.RunMedian(app, variant, t)
				fmt.Fprintf(w, " %8.2f", base.Seconds()/r.Elapsed.Seconds())
				if t == maxT {
					atMax[variant] = r.Elapsed
				}
			}
			fmt.Fprintln(w)
		}
		if pb, ok := atMax["pbbs"]; ok {
			gnOverPbbs = append(gnOverPbbs, pb.Seconds()/atMax["g-n"].Seconds())
			gdOverPbbs = append(gdOverPbbs, pb.Seconds()/atMax["g-d"].Seconds())
		}
	}
	fmt.Fprintf(w, "\nAt %d threads: median g-n/pbbs %.2fx (paper 2.4x), median g-d/pbbs %.2fx (paper 0.62x)\n",
		maxT, median(gnOverPbbs), median(gdOverPbbs))
	return nil
}

// Fig8 reproduces Figure 8: the sequential baseline times.
func Fig8(in *Inputs, w io.Writer) error {
	fmt.Fprintln(w, "Figure 8: baseline sequential times (best 1-thread variant)")
	fmt.Fprintf(w, "%-6s %-10s %12s\n", "app", "variant", "time")
	for _, app := range Apps {
		r := in.RunMedian(app, "seq", 1)
		fmt.Fprintf(w, "%-6s %-10s %12s\n", app, "seq", r.Elapsed.Round(time.Millisecond))
	}
	return nil
}

// relToPBBS computes t_pbbs(p)/t_var(p) across the sweep.
func relToPBBS(in *Inputs, app, variant string, threads []int) (mean, maxV, i1, imax float64) {
	maxT := maxThreads(threads)
	var sum float64
	n := 0
	for _, t := range threads {
		pb := in.RunMedian(app, "pbbs", t).Elapsed.Seconds()
		v := in.RunMedian(app, variant, t).Elapsed.Seconds()
		rel := pb / v
		sum += rel
		n++
		if rel > maxV {
			maxV = rel
		}
		if t == 1 {
			i1 = rel
		}
		if t == maxT {
			imax = rel
		}
	}
	mean = sum / float64(n)
	return
}

// Fig9 reproduces Figure 9: performance relative to the PBBS variant.
func Fig9(in *Inputs, threads []int, w io.Writer) error {
	fmt.Fprintln(w, "Figure 9: performance relative to the pbbs variant (t_pbbs/t_var)")
	fmt.Fprintf(w, "%-6s %-6s | %8s %8s %8s %8s\n", "app", "var", "mean", "max", "I1", "Imax")
	var gdImax []float64
	for _, app := range Apps {
		if !HasVariant(app, "pbbs") {
			continue
		}
		for _, variant := range []string{"g-n", "g-d"} {
			mean, maxV, i1, imax := relToPBBS(in, app, variant, threads)
			fmt.Fprintf(w, "%-6s %-6s | %8.2f %8.2f %8.2f %8.2f\n", app, variant, mean, maxV, i1, imax)
			if variant == "g-d" {
				gdImax = append(gdImax, imax)
			}
		}
		fmt.Fprintf(w, "%-6s %-6s | %8.2f %8.2f %8.2f %8.2f\n", app, "pbbs", 1.0, 1.0, 1.0, 1.0)
	}
	fmt.Fprintf(w, "\nMedian g-d vs pbbs at max threads: %.2fx (paper: 0.62x, 0.70x without mis)\n",
		median(gdImax))
	return nil
}

// Fig10 reproduces Figure 10: the continuation-optimization ablation.
func Fig10(in *Inputs, threads []int, w io.Writer) error {
	fmt.Fprintln(w, "Figure 10: deterministic scheduling without the continuation optimization")
	fmt.Fprintf(w, "%-6s %-7s | %8s %8s %8s %8s\n", "app", "var", "mean", "max", "I1", "Imax")
	var improvements []float64
	maxT := maxThreads(threads)
	for _, app := range Apps {
		if HasVariant(app, "pbbs") {
			mean, maxV, i1, imax := relToPBBS(in, app, "g-dnc", threads)
			fmt.Fprintf(w, "%-6s %-7s | %8.2f %8.2f %8.2f %8.2f\n", app, "g-dnc", mean, maxV, i1, imax)
		}
		// Continuation improvement = t_g-dnc / t_g-d at max threads.
		nc := in.RunMedian(app, "g-dnc", maxT).Elapsed.Seconds()
		withC := in.RunMedian(app, "g-d", maxT).Elapsed.Seconds()
		improvements = append(improvements, nc/withC)
	}
	fmt.Fprintf(w, "\nContinuation optimization speedup (t_nocont/t_cont at %d threads):", maxT)
	for i, app := range Apps {
		fmt.Fprintf(w, " %s=%.2fx", app, improvements[i])
	}
	fmt.Fprintf(w, "\nmedian %.2fx (paper: 1.14x, largest for dmr and dt)\n", median(improvements))
	return nil
}

// profilable reports whether a variant routes its accesses through mark
// words, which is what the tracer instruments. The bfs/mis pbbs variants
// use raw atomics (no abstract locations), so they have no trace; the paper
// reads hardware counters, which see everything.
func profilable(app, variant string) bool {
	if variant != "pbbs" {
		return true
	}
	return app == "dt" || app == "dmr"
}

// profileRun runs app/variant at the given thread count with the locality
// tracer attached and returns the modeled memory report.
func (in *Inputs) profileRun(app, variant string, threads, cacheLocs int) cachesim.Report {
	tr := cachesim.NewTracer(threads)
	in.RunOnce(app, variant, threads, tr)
	return tr.Analyze(cacheLocs)
}

// fig11CacheLocs is the modeled cache capacity in abstract locations. It
// models the per-core cache hierarchy a task's working set lives in
// (thousands of graph nodes / triangles ≈ an L2): the non-deterministic
// scheduler's commit phase revisits its task's neighborhood while it is
// still resident, whereas under round-based scheduling the revisit happens
// after the rest of the window's inspect phase has swept through — once
// the window working set exceeds this capacity, every deterministic commit
// touch is a modeled DRAM request. Input-independent so the same number is
// comparable across apps and scales (the effect needs default scale or
// larger to appear, matching the paper's multi-megabyte windows).
func (in *Inputs) fig11CacheLocs(string) int { return 4096 }

// Fig11 reproduces Figure 11: modeled DRAM requests per variant (reuse
// distances beyond the modeled cache; see internal/cachesim for the
// substitution of hardware counters).
func Fig11(in *Inputs, threads []int, w io.Writer) error {
	maxT := maxThreads(threads)
	fmt.Fprintf(w, "Figure 11: modeled DRAM requests (reuse distance > cache) at %d threads\n", maxT)
	fmt.Fprintf(w, "%-6s %-6s | %14s %14s %14s %12s\n",
		"app", "var", "accesses", "dram-reqs", "mean-dist", "dram-ratio")
	for _, app := range Apps {
		cacheLocs := in.fig11CacheLocs(app)
		for _, variant := range []string{"g-n", "g-d", "pbbs"} {
			if !HasVariant(app, variant) || !profilable(app, variant) {
				continue
			}
			rep := in.profileRun(app, variant, maxT, cacheLocs)
			ratio := 0.0
			if rep.Accesses > 0 {
				ratio = float64(rep.DRAMRequests()) / float64(rep.Accesses)
			}
			fmt.Fprintf(w, "%-6s %-6s | %14d %14d %14.0f %12.4f\n",
				app, variant, rep.Accesses, rep.DRAMRequests(), rep.MeanReuseDistance, ratio)
		}
	}
	fmt.Fprintln(w, "\nShape check: deterministic variants lose the intra-task locality that")
	fmt.Fprintln(w, "g-n gets for free (inspect/execute split stretches reuse distances).")
	return nil
}

// Fig12 reproduces Figure 12: how well the linear locality model explains
// the efficiency gap: eff_var = B0 + B1*(PC_ref/PC_var)*eff_ref, ref = g-n.
func Fig12(in *Inputs, threads []int, w io.Writer) error {
	fmt.Fprintln(w, "Figure 12: R^2 of the locality model eff_var = B0 + B1*(PC_gn/PC_var)*eff_gn")
	fmt.Fprintf(w, "%-6s | %8s %8s %6s\n", "app", "R2", "B1", "pts")
	maxT := maxThreads(threads)
	for _, app := range Apps {
		cacheLocs := in.fig11CacheLocs(app)
		// Modeled counters per variant (measured once at max threads;
		// the modeled counter is schedule-, not timing-, dependent).
		pc := map[string]float64{}
		variants := []string{"g-n", "g-d"}
		if HasVariant(app, "pbbs") && profilable(app, "pbbs") {
			variants = append(variants, "pbbs")
		}
		for _, v := range variants {
			pc[v] = float64(in.profileRun(app, v, maxT, cacheLocs).DRAMRequests())
		}
		base := in.RunMedian(app, "seq", 1).Elapsed.Seconds()
		eff := func(variant string, t int) float64 {
			r := in.RunMedian(app, variant, t)
			return base / r.Elapsed.Seconds() / float64(t)
		}
		var xs, ys []float64
		for _, t := range threads {
			effRef := eff("g-n", t)
			for _, v := range variants[1:] {
				if pc[v] == 0 {
					continue
				}
				xs = append(xs, pc["g-n"]/pc[v]*effRef)
				ys = append(ys, eff(v, t))
			}
		}
		fit := linreg.OLS(xs, ys)
		fmt.Fprintf(w, "%-6s | %8.3f %8.3f %6d\n", app, fit.R2, fit.B1, fit.N)
	}
	fmt.Fprintln(w, "\nShape check: the locality-counter ratio explains most of the")
	fmt.Fprintln(w, "deterministic variants' efficiency loss (high R^2), as in the paper.")
	return nil
}

// bfsPT and misPT adapt the pthread variants to the shared inputs.
func bfsPT(in *Inputs, threads int, rt *coredet.Runtime) { pthreadBFS(in, threads, rt) }
func misPT(in *Inputs, threads int, rt *coredet.Runtime) { pthreadMIS(in, threads, rt) }
