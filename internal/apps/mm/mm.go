// Package mm implements maximal matching, the PBBS benchmark the paper
// excludes from its study only "because of its similarity to maximal
// independent set" (§4.1). It is included here as a library extension in
// the same four-variant structure; its tasks are edges rather than nodes,
// which exercises two-location neighborhoods under every scheduler.
//
//   - Seq: greedy matching in edge order (the lexicographically first
//     maximal matching).
//   - PBBS: deterministic reservations over edges — computes exactly the
//     lex-first matching for every thread count.
//   - Galois (non-deterministic or DIG-scheduled): one task per edge,
//     acquiring both endpoints; the matching depends on the schedule, so
//     DIG portability is observable.
package mm

import (
	"fmt"
	"hash/fnv"

	"galois"
	"galois/internal/detres"
	"galois/internal/graph"
	"galois/internal/stats"
)

// NoMatch marks an unmatched node.
const NoMatch = ^uint32(0)

// Edge is an undirected edge (U < V).
type Edge struct {
	U, V uint32
}

// EdgesOf enumerates the undirected edges of a symmetrized graph (u < v),
// in adjacency order — a deterministic function of the graph.
func EdgesOf(g *graph.CSR) []Edge {
	var edges []Edge
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if uint32(u) < v {
				edges = append(edges, Edge{U: uint32(u), V: v})
			}
		}
	}
	return edges
}

// Result is the output of one matching run.
type Result struct {
	// Mate[v] is v's matched partner (NoMatch if unmatched).
	Mate []uint32
	// Stats describes the run.
	Stats stats.Stats
}

// Size returns the number of matched edges.
func (r *Result) Size() int {
	n := 0
	for v, m := range r.Mate {
		if m != NoMatch && uint32(v) < m {
			n++
		}
	}
	return n
}

// Fingerprint hashes the mate array.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, m := range r.Mate {
		buf[0], buf[1], buf[2], buf[3] = byte(m), byte(m>>8), byte(m>>16), byte(m>>24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Check verifies matching consistency and maximality against g.
func (r *Result) Check(g *graph.CSR) error {
	for v, m := range r.Mate {
		if m == NoMatch {
			continue
		}
		if int(m) >= len(r.Mate) {
			return fmt.Errorf("mm: node %d matched out of range (%d)", v, m)
		}
		if r.Mate[m] != uint32(v) {
			return fmt.Errorf("mm: asymmetric match %d->%d but %d->%d", v, m, m, r.Mate[m])
		}
		// Must be an actual edge.
		found := false
		for _, w := range g.Neighbors(v) {
			if w == m {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("mm: matched pair (%d,%d) is not an edge", v, m)
		}
	}
	// Maximality: every edge has a matched endpoint.
	for u := 0; u < g.N(); u++ {
		if r.Mate[u] != NoMatch {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if r.Mate[v] == NoMatch {
				return fmt.Errorf("mm: edge (%d,%d) addable — matching not maximal", u, v)
			}
		}
	}
	return nil
}

// Seq computes the lexicographically-first maximal matching greedily.
func Seq(g *graph.CSR) *Result {
	mate := make([]uint32, g.N())
	for i := range mate {
		mate[i] = NoMatch
	}
	col := stats.NewCollector(1)
	col.Start()
	for _, e := range EdgesOf(g) {
		if mate[e.U] == NoMatch && mate[e.V] == NoMatch {
			mate[e.U] = e.V
			mate[e.V] = e.U
		}
		col.Commit(0)
	}
	col.Stop()
	return &Result{Mate: mate, Stats: col.Snapshot()}
}

// node carries the per-endpoint lock and match state for the Galois and
// PBBS variants.
type node struct {
	galois.Lockable
	mate uint32
}

// pbbsStep adapts matching to deterministic reservations: item i is edge i;
// reserving both endpoints with the edge's index as priority makes the
// committed matching exactly the greedy (lex-first) one.
type pbbsStep struct {
	edges []Edge
	nodes []node
}

func (s *pbbsStep) Reserve(i int, r *detres.Reserver) bool {
	e := s.edges[i]
	nu, nv := &s.nodes[e.U], &s.nodes[e.V]
	if nu.mate != NoMatch || nv.mate != NoMatch {
		return false // already covered; nothing to do
	}
	r.Reserve(&nu.Lockable)
	r.Reserve(&nv.Lockable)
	return true
}

func (s *pbbsStep) Commit(i int) {
	e := s.edges[i]
	// Both endpoints were free at reserve time and this item held both
	// reservations, so no lower-priority edge can have matched them.
	s.nodes[e.U].mate = e.V
	s.nodes[e.V].mate = e.U
}

// PBBS computes the lex-first maximal matching with deterministic
// reservations on nthreads threads.
func PBBS(g *graph.CSR, nthreads int) *Result {
	edges := EdgesOf(g)
	s := &pbbsStep{edges: edges, nodes: make([]node, g.N())}
	for i := range s.nodes {
		s.nodes[i].mate = NoMatch
	}
	st := detres.For(len(edges), s, detres.Options{Threads: nthreads})
	mate := make([]uint32, g.N())
	for i := range s.nodes {
		mate[i] = s.nodes[i].mate
	}
	return &Result{Mate: mate, Stats: st}
}

// Galois runs the edge-task matching under the given scheduler options.
func Galois(g *graph.CSR, opts ...galois.Option) *Result {
	edges := EdgesOf(g)
	nodes := make([]node, g.N())
	for i := range nodes {
		nodes[i].mate = NoMatch
	}
	st := galois.ForEach(edges, func(ctx *galois.Ctx[Edge], e Edge) {
		nu, nv := &nodes[e.U], &nodes[e.V]
		ctx.Acquire(&nu.Lockable)
		ctx.Acquire(&nv.Lockable)
		if nu.mate != NoMatch || nv.mate != NoMatch {
			return // covered; no-op commit
		}
		ctx.OnCommit(func(*galois.Ctx[Edge]) {
			nu.mate = e.V
			nv.mate = e.U
		})
	}, opts...)
	mate := make([]uint32, g.N())
	for i := range nodes {
		mate[i] = nodes[i].mate
	}
	return &Result{Mate: mate, Stats: st}
}
