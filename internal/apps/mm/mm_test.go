package mm

import (
	"testing"

	"galois"
	"galois/internal/graph"
)

func testGraph() *graph.CSR {
	return graph.Symmetrize(graph.RandomKOut(3000, 5, 42))
}

func TestEdgesOf(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	b.AddEdge(2, 1)
	edges := EdgesOf(b.Build())
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatalf("unnormalized edge %v", e)
		}
	}
}

func TestSeqValidMatching(t *testing.T) {
	g := testGraph()
	r := Seq(g)
	if err := r.Check(g); err != nil {
		t.Fatal(err)
	}
	if r.Size() == 0 {
		t.Fatal("empty matching")
	}
}

func TestSeqOnPath(t *testing.T) {
	// Path 0-1-2-3: lex-first matching = {(0,1), (2,3)}.
	g := graph.Chain(4)
	r := Seq(g)
	if r.Mate[0] != 1 || r.Mate[1] != 0 || r.Mate[2] != 3 || r.Mate[3] != 2 {
		t.Fatalf("mate = %v", r.Mate)
	}
}

func TestPBBSEqualsSeq(t *testing.T) {
	g := testGraph()
	want := Seq(g).Fingerprint()
	for _, threads := range []int{1, 2, 8} {
		r := PBBS(g, threads)
		if err := r.Check(g); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if r.Fingerprint() != want {
			t.Fatalf("threads=%d: not the lex-first matching", threads)
		}
	}
}

func TestGaloisNondetValid(t *testing.T) {
	g := testGraph()
	for _, threads := range []int{1, 4, 8} {
		r := Galois(g, galois.WithThreads(threads))
		if err := r.Check(g); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
	}
}

func TestGaloisDetPortable(t *testing.T) {
	g := testGraph()
	ref := Galois(g, galois.WithThreads(1), galois.WithSched(galois.Deterministic))
	if err := ref.Check(g); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, threads := range []int{2, 4, 8} {
		r := Galois(g, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if err := r.Check(g); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if r.Fingerprint() != want {
			t.Fatalf("threads=%d: matching differs across thread counts", threads)
		}
	}
}

func TestContinuationTransparency(t *testing.T) {
	g := graph.Symmetrize(graph.RandomKOut(1000, 4, 7))
	a := Galois(g, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	b := Galois(g, galois.WithThreads(4), galois.WithSched(galois.Deterministic),
		galois.WithoutContinuation())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("continuation optimization changed the matching")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	g := graph.Chain(4)
	// Asymmetric match.
	bad := &Result{Mate: []uint32{1, NoMatch, NoMatch, NoMatch}}
	if bad.Check(g) == nil {
		t.Fatal("asymmetric match not detected")
	}
	// Non-maximal (no matches at all).
	bad = &Result{Mate: []uint32{NoMatch, NoMatch, NoMatch, NoMatch}}
	if bad.Check(g) == nil {
		t.Fatal("non-maximal matching not detected")
	}
	// Matched non-edge.
	bad = &Result{Mate: []uint32{2, 3, 0, 1}}
	if bad.Check(g) == nil {
		t.Fatal("non-edge match not detected")
	}
}

func TestMatchingSizeBounds(t *testing.T) {
	// A maximal matching is at least half a maximum one; on the random
	// graph nearly all nodes should be covered.
	g := testGraph()
	r := Seq(g)
	covered := 0
	for _, m := range r.Mate {
		if m != NoMatch {
			covered++
		}
	}
	if covered < g.N()*8/10 {
		t.Fatalf("only %d/%d nodes covered", covered, g.N())
	}
}
