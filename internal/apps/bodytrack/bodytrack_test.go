package bodytrack

import (
	"testing"

	"galois/internal/coredet"
)

func smallConfig() Config { return Config{Particles: 500, Frames: 15} }

func TestTrackerConverges(t *testing.T) {
	// The particle filter should track the synthetic target to well
	// under the observation noise floor squared (0.02^2 = 4e-4 per
	// axis); allow slack for the small particle count.
	mse := Run(smallConfig(), 4, coredet.New(false, 0), 7)
	if mse > 5e-3 {
		t.Fatalf("tracking MSE %v too high — filter broken", mse)
	}
}

func TestSameResultAcrossThreadCountsPlain(t *testing.T) {
	// The filter partitions deterministically and resampling is
	// systematic, but per-thread jitter streams depend on the thread
	// count; with a fixed count results must be exactly reproducible.
	a := Run(smallConfig(), 4, coredet.New(false, 0), 7)
	b := Run(smallConfig(), 4, coredet.New(false, 0), 7)
	if a != b {
		t.Fatalf("same-config runs differ: %v vs %v", a, b)
	}
}

func TestCoreDetDeterministic(t *testing.T) {
	a := Run(smallConfig(), 4, coredet.New(true, 5000), 7)
	b := Run(smallConfig(), 4, coredet.New(true, 5000), 7)
	if a != b {
		t.Fatalf("coredet runs differ: %v vs %v", a, b)
	}
}

func TestSyncProfileIsBarrierDominated(t *testing.T) {
	rt := coredet.New(true, 0)
	cfg := smallConfig()
	Run(cfg, 4, rt, 7)
	// 4 barriers per frame, 4 threads: sync ops ≈ frames * 4 * 4 (plus
	// retried barrier polls). Must be orders of magnitude below the
	// particle count * frames.
	perFrame := float64(rt.SyncOps()) / float64(cfg.Frames)
	if perFrame > 200 {
		t.Fatalf("sync ops per frame = %v, expected barrier-dominated (<200)", perFrame)
	}
	if rt.SyncOps() == 0 {
		t.Fatal("no sync ops recorded — barriers not exercised")
	}
}
