// Package bodytrack is the repository's stand-in for the PARSEC bodytrack
// application (paper §4.1, §5.2). PARSEC bodytrack is an annealed particle
// filter tracking a human body across camera frames; reproducing its vision
// pipeline is out of scope, but its scheduling-relevant profile — the one
// that matters for Figures 5 and 6 — is a per-frame bulk-synchronous
// particle filter: medium-size parallel tasks (particle weighting),
// barriers between frame stages, and a small serial resampling stage.
//
// This package implements exactly that profile as a real (synthetic-data)
// particle filter tracking a 2-D target through noisy observations, over
// the coredet runtime. See DESIGN.md §3 for the substitution note.
package bodytrack

import (
	"math"

	"galois/internal/coredet"
	"galois/internal/rng"
)

// Config sizes the tracker.
type Config struct {
	Particles int
	Frames    int
}

// DefaultConfig mirrors the relative scale of PARSEC's native input:
// thousands of particles, a few hundred frames.
func DefaultConfig() Config { return Config{Particles: 4000, Frames: 60} }

// workPerParticle models the per-particle likelihood evaluation cost
// (PARSEC evaluates multi-camera edge/silhouette likelihoods; ours is a
// cheaper kernel, so we scale the reported logical cost to match the
// coarse-task profile).
const workPerParticle = 2000

// Run tracks a synthetic target and returns the mean squared tracking
// error (a deterministic checksum of the whole computation).
func Run(cfg Config, nthreads int, rt *coredet.Runtime, seed uint64) float64 {
	n := cfg.Particles
	// Ground-truth trajectory and observations.
	r := rng.New(seed)
	truthX := make([]float64, cfg.Frames)
	truthY := make([]float64, cfg.Frames)
	obsX := make([]float64, cfg.Frames)
	obsY := make([]float64, cfg.Frames)
	x, y := 0.5, 0.5
	for f := 0; f < cfg.Frames; f++ {
		x += 0.01 * math.Sin(float64(f)/5)
		y += 0.01 * math.Cos(float64(f)/7)
		truthX[f], truthY[f] = x, y
		obsX[f] = x + 0.02*r.NormFloat64()
		obsY[f] = y + 0.02*r.NormFloat64()
	}

	px := make([]float64, n)
	py := make([]float64, n)
	weights := make([]float64, n)
	cum := make([]float64, n)
	newX := make([]float64, n)
	newY := make([]float64, n)
	estX := make([]float64, cfg.Frames)
	estY := make([]float64, cfg.Frames)
	for i := 0; i < n; i++ {
		px[i] = 0.5
		py[i] = 0.5
	}

	barrier := coredet.NewBarrier(nthreads)
	partial := make([]float64, nthreads)

	rt.Run(nthreads, func(t *coredet.Thread) {
		id := t.ID()
		lo := n * id / nthreads
		hi := n * (id + 1) / nthreads
		// Per-thread deterministic jitter stream.
		jr := rng.New(seed ^ uint64(id+1)*0x9e3779b97f4a7c15)
		for f := 0; f < cfg.Frames; f++ {
			// Stage 1: propagate and weigh particles.
			var wsum float64
			for i := lo; i < hi; i++ {
				px[i] += 0.01 * jr.NormFloat64()
				py[i] += 0.01 * jr.NormFloat64()
				dx := px[i] - obsX[f]
				dy := py[i] - obsY[f]
				w := math.Exp(-(dx*dx + dy*dy) / (2 * 0.02 * 0.02))
				weights[i] = w
				wsum += w
				t.Work(workPerParticle)
			}
			partial[id] = wsum
			t.BarrierWait(barrier)
			// Stage 2 (serial on thread 0): normalize, estimate,
			// cumulative weights for resampling.
			if id == 0 {
				total := 0.0
				for _, p := range partial {
					total += p
				}
				if total == 0 {
					total = 1
				}
				acc := 0.0
				ex, ey := 0.0, 0.0
				for i := 0; i < n; i++ {
					wn := weights[i] / total
					ex += wn * px[i]
					ey += wn * py[i]
					acc += wn
					cum[i] = acc
				}
				estX[f], estY[f] = ex, ey
				t.Work(int64(n * 4))
			}
			t.BarrierWait(barrier)
			// Stage 3: systematic resampling of this thread's slice.
			for i := lo; i < hi; i++ {
				u := (float64(i) + 0.5) / float64(n)
				j := lowerBound(cum, u)
				newX[i] = px[j]
				newY[i] = py[j]
				t.Work(64)
			}
			t.BarrierWait(barrier)
			copy(px[lo:hi], newX[lo:hi])
			copy(py[lo:hi], newY[lo:hi])
			t.BarrierWait(barrier)
		}
	})

	// Mean squared tracking error.
	var mse float64
	for f := 0; f < cfg.Frames; f++ {
		dx := estX[f] - truthX[f]
		dy := estY[f] - truthY[f]
		mse += dx*dx + dy*dy
	}
	return mse / float64(cfg.Frames)
}

func lowerBound(a []float64, v float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(a) {
		lo--
	}
	return lo
}
