package msf

import (
	"fmt"
	"testing"
	"time"

	"galois"
	"galois/internal/graph"
)

// TestScalingGN guards against the quadratic contraction regression (LIFO
// survivor-swallows-all); it fails on gross slowdowns rather than timing
// noise by bounding the growth factor between doublings.
func TestScalingGN(t *testing.T) {
	var prev time.Duration
	for _, n := range []int{5000, 10000, 20000} {
		g := graph.Symmetrize(graph.RandomKOut(n, 5, 42))
		edges := RandomWeights(g, 1000, 7)
		start := time.Now()
		Galois(g.N(), edges)
		el := time.Since(start)
		if prev > 0 && el > prev*8 && el > 2*time.Second {
			t.Fatalf("superlinear blowup: n=%d took %s (previous size %s)", n, el, prev)
		}
		prev = el
	}
}

func TestScalingGD(t *testing.T) {
	g := graph.Symmetrize(graph.RandomKOut(8000, 5, 42))
	edges := RandomWeights(g, 1000, 7)
	start := time.Now()
	r := Galois(g.N(), edges, galois.WithSched(galois.Deterministic))
	el := time.Since(start)
	fmt.Printf("g-d n=8000: %s (rounds %d)\n", el, r.Stats.Rounds)
	if el > 2*time.Minute {
		t.Fatalf("deterministic msf too slow: %s", el)
	}
	want := Seq(g.N(), edges)
	if r.Fingerprint() != want.Fingerprint() {
		t.Fatal("MSF mismatch at scale")
	}
}
