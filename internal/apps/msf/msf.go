// Package msf implements minimum spanning forest with Boruvka's algorithm —
// a classic Lonestar-suite irregular "morph" benchmark in the same family
// as the paper's applications: tasks contract graph components, so the
// conflict structure changes as the algorithm runs, and neighborhoods are
// discovered dynamically by chasing forwarding pointers (as in dt/dmr).
//
//   - Seq: Kruskal (sort + union-find) — also the independent checker.
//   - Galois (non-deterministic or DIG-scheduled): one task per component:
//     find its lightest outgoing edge and contract it into the neighbor.
//   - PBBS: round-based data-parallel Boruvka (each round every component
//     picks its minimum edge; ties in the hooking direction resolve by
//     component id), deterministic by construction.
//
// Edge weights are made unique by packing a tiebreak into the key, so the
// minimum spanning forest is unique and every variant must produce the
// same edge set — which the tests assert.
//
// Boruvka also illustrates the paper's mis lesson (§5.3) from another
// angle: DIG scheduling of the contraction tasks is correct and portable,
// but late-stage components conflict with nearly everything, so the
// deterministic-by-construction round-based variant is far faster — when a
// natural deterministic algorithm exists, prefer it over deterministically
// scheduling a non-deterministic one.
package msf

import (
	"hash/fnv"
	"sort"
	"sync/atomic"

	"galois"
	"galois/internal/graph"
	"galois/internal/para"
	"galois/internal/rng"
	"galois/internal/stats"
)

// WEdge is a weighted undirected edge with a unique key: the upper 32 bits
// are the weight, the lower bits a deterministic tiebreak, so keys order
// totally and the MSF is unique.
type WEdge struct {
	Key  uint64
	U, V uint32
}

// Weight extracts the weight part of the key.
func (e WEdge) Weight() uint32 { return uint32(e.Key >> 32) }

// RandomWeights assigns deterministic pseudo-random weights in [1, maxW] to
// the undirected edges of a symmetrized graph, with unique keys.
func RandomWeights(g *graph.CSR, maxW uint32, seed uint64) []WEdge {
	var edges []WEdge
	idx := uint64(0)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if uint32(u) >= v {
				continue
			}
			w := uint32(rng.Mix64(uint64(u)<<32|uint64(v)^seed)%uint64(maxW)) + 1
			edges = append(edges, WEdge{Key: uint64(w)<<32 | idx, U: uint32(u), V: v})
			idx++
		}
	}
	return edges
}

// Result is the output of one MSF run.
type Result struct {
	// Chosen holds the keys of the forest's edges.
	Chosen []uint64
	// TotalWeight is the sum of chosen edge weights.
	TotalWeight uint64
	// Stats describes the run.
	Stats stats.Stats
}

// Fingerprint hashes the canonical (sorted) chosen-edge set.
func (r *Result) Fingerprint() uint64 {
	keys := append([]uint64(nil), r.Chosen...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range keys {
		for i := range buf {
			buf[i] = byte(k >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Seq computes the MSF with Kruskal's algorithm.
func Seq(n int, edges []WEdge) *Result {
	col := stats.NewCollector(1)
	col.Start()
	sorted := append([]WEdge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	res := &Result{}
	for _, e := range sorted {
		ru, rv := find(int32(e.U)), find(int32(e.V))
		if ru == rv {
			continue
		}
		parent[ru] = rv
		res.Chosen = append(res.Chosen, e.Key)
		res.TotalWeight += uint64(e.Weight())
		col.Commit(0)
	}
	col.Stop()
	res.Stats = col.Snapshot()
	return res
}

// component is a live contraction node for the Galois variant. Dead
// components forward to the component that absorbed them, exactly like
// dead mesh elements.
type component struct {
	galois.Lockable
	dead  bool
	repl  *component
	edges []WEdge
}

// Galois runs Boruvka contraction under the given scheduler options: the
// task pool is the set of live components; each task locates its lightest
// outgoing edge (skipping intra-component edges lazily) and merges with the
// neighbor at commit, re-enqueueing the survivor.
func Galois(n int, edges []WEdge, opts ...galois.Option) *Result {
	comps := make([]*component, n)
	for i := range comps {
		comps[i] = &component{}
	}
	for _, e := range edges {
		comps[e.U].edges = append(comps[e.U].edges, e)
		comps[e.V].edges = append(comps[e.V].edges, e)
	}

	// Chosen edges are recorded per worker and concatenated at the end;
	// the chosen SET is deterministic (the MSF is unique), so per-thread
	// attribution does not affect the canonical fingerprint.
	maxThreads := 64
	chosen := make([][]uint64, maxThreads)
	var total atomic.Uint64

	// compressed records (dead link, its live root at read time) pairs so
	// the commit phase can path-compress every forwarding chain the task
	// walked. The task owns all walked links (it acquired them), so it is
	// the round's unique writer of each — compression stays deterministic.
	type hop struct{ dead, root *component }

	// FIFO order keeps contraction balanced (Boruvka's round structure):
	// under LIFO a re-pushed survivor is popped immediately and swallows
	// its neighbors one by one, rescanning its whole edge list per merge —
	// quadratic. A scheduling hint only; the MSF is unique regardless.
	opts = append([]galois.Option{galois.WithFIFO()}, opts...)

	st := galois.ForEach(comps, func(ctx *galois.Ctx[*component], c0 *component) {
		var walked []hop
		acq := func(c *component) { ctx.Acquire(&c.Lockable) }
		res := func(c *component) *component {
			acq(c)
			start := c
			for c.dead {
				c = c.repl
				acq(c)
			}
			if start != c {
				walked = append(walked, hop{dead: start, root: c})
			}
			return c
		}
		c := res(c0)
		// Find the lightest edge leaving the component. Every edge's
		// far side is resolved (acquired) to test liveness; stale
		// intra-component edges are recorded for pruning at commit.
		best := WEdge{Key: ^uint64(0)}
		var bestOther *component
		keep := c.edges[:0:0]
		for _, e := range c.edges {
			ou := res(comps[e.U])
			ov := res(comps[e.V])
			other := ou
			if other == c {
				other = ov
			}
			if other == c {
				continue // self loop after contraction: prune
			}
			keep = append(keep, e)
			if e.Key < best.Key {
				best = e
				bestOther = other
			}
		}
		compress := func(survivor, absorbed *component) {
			for _, h := range walked {
				root := h.root
				if root == absorbed {
					root = survivor
				}
				h.dead.repl = root
			}
		}
		if bestOther == nil {
			// Isolated component: finished. Prune in commit.
			ctx.OnCommit(func(*galois.Ctx[*component]) {
				c.edges = keep
				compress(nil, nil)
			})
			return
		}
		o := bestOther
		ctx.OnCommit(func(cc *galois.Ctx[*component]) {
			// Merge smaller edge list into larger (small-to-large
			// keeps total edge movement O(m log n)).
			c.edges = keep
			survivor, absorbed := c, o
			if len(absorbed.edges) > len(survivor.edges) {
				survivor, absorbed = absorbed, survivor
			}
			absorbed.dead = true
			absorbed.repl = survivor
			survivor.edges = append(survivor.edges, absorbed.edges...)
			absorbed.edges = nil
			compress(survivor, absorbed)
			tid := cc.TID() % maxThreads
			chosen[tid] = append(chosen[tid], best.Key)
			total.Add(uint64(best.Weight()))
			cc.Push(survivor)
		})
	}, opts...)

	res := &Result{TotalWeight: total.Load(), Stats: st}
	for _, c := range chosen {
		res.Chosen = append(res.Chosen, c...)
	}
	return res
}

// PBBS computes the MSF with round-based data-parallel Boruvka: per round,
// every live component picks its minimum outgoing edge; the resulting hook
// graph is acyclic except for mutual pairs, which resolve toward the lower
// component id; contraction relabels by pointer jumping. Deterministic by
// construction for every thread count.
func PBBS(n int, edges []WEdge, nthreads int) *Result {
	col := stats.NewCollector(nthreads)
	col.Start()
	label := make([]uint32, n)
	for i := range label {
		label[i] = uint32(i)
	}
	live := append([]WEdge(nil), edges...)
	res := &Result{}
	const noEdge = ^uint64(0)
	minKey := make([]atomic.Uint64, n)
	minEdge := make([]WEdge, n)
	for len(live) > 0 {
		// Phase 1: per-component minimum outgoing edge (write-min).
		for i := range minKey {
			minKey[i].Store(noEdge)
		}
		para.For(nthreads, len(live), func(tid, i int) {
			e := live[i]
			for _, c := range [2]uint32{label[e.U], label[e.V]} {
				for {
					cur := minKey[c].Load()
					col.AtomicOp(tid, 1)
					if e.Key >= cur {
						break
					}
					if minKey[c].CompareAndSwap(cur, e.Key) {
						break
					}
				}
			}
		})
		// Record winners (sequential: needs the edge, not just key).
		for i := range minEdge {
			minEdge[i] = WEdge{Key: noEdge}
		}
		for _, e := range live {
			if minKey[label[e.U]].Load() == e.Key {
				minEdge[label[e.U]] = e
			}
			if minKey[label[e.V]].Load() == e.Key {
				minEdge[label[e.V]] = e
			}
		}
		// Phase 2: hook. Component c hooks toward the other side of
		// its min edge; mutual pairs keep the lower id as root.
		parent := make([]uint32, n)
		for i := range parent {
			parent[i] = uint32(i)
		}
		for c := 0; c < n; c++ {
			e := minEdge[c]
			if e.Key == noEdge || uint32(c) != label[e.U] && uint32(c) != label[e.V] {
				continue
			}
			other := label[e.U]
			if other == uint32(c) {
				other = label[e.V]
			}
			// Mutual hook resolves toward the smaller id.
			oe := minEdge[other]
			if oe.Key == e.Key && other < uint32(c) {
				parent[c] = other
				continue
			}
			if oe.Key == e.Key && other > uint32(c) {
				// This side is the root; the partner hooks here.
				res.Chosen = append(res.Chosen, e.Key)
				res.TotalWeight += uint64(e.Weight())
				col.Commit(0)
				continue
			}
			parent[c] = other
			res.Chosen = append(res.Chosen, e.Key)
			res.TotalWeight += uint64(e.Weight())
			col.Commit(0)
		}
		// Pointer jumping to full compression.
		for {
			changed := false
			for c := 0; c < n; c++ {
				if parent[parent[c]] != parent[c] {
					parent[c] = parent[parent[c]]
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		// Relabel nodes and drop intra-component edges.
		para.For(nthreads, n, func(tid, v int) {
			label[v] = parent[label[v]]
		})
		var next []WEdge
		for _, e := range live {
			if label[e.U] != label[e.V] {
				next = append(next, e)
			}
		}
		col.Round(len(live), len(live)-len(next))
		live = next
	}
	col.Stop()
	res.Stats = col.Snapshot()
	return res
}
