package msf

import (
	"testing"

	"galois"
	"galois/internal/graph"
)

func testInput() (int, []WEdge) {
	g := graph.Symmetrize(graph.RandomKOut(2000, 4, 42))
	return g.N(), RandomWeights(g, 1000, 7)
}

func TestUniqueKeys(t *testing.T) {
	_, edges := testInput()
	seen := map[uint64]bool{}
	for _, e := range edges {
		if seen[e.Key] {
			t.Fatal("duplicate edge key")
		}
		seen[e.Key] = true
	}
}

func TestSeqOnTinyGraph(t *testing.T) {
	// Triangle with weights 1, 2, 3: MSF = the two lightest edges.
	edges := []WEdge{
		{Key: 1<<32 | 0, U: 0, V: 1},
		{Key: 2<<32 | 1, U: 1, V: 2},
		{Key: 3<<32 | 2, U: 0, V: 2},
	}
	r := Seq(3, edges)
	if len(r.Chosen) != 2 || r.TotalWeight != 3 {
		t.Fatalf("chosen=%d weight=%d", len(r.Chosen), r.TotalWeight)
	}
}

func TestForestOnDisconnectedGraph(t *testing.T) {
	// Two disjoint edges: the forest has both.
	edges := []WEdge{
		{Key: 5<<32 | 0, U: 0, V: 1},
		{Key: 7<<32 | 1, U: 2, V: 3},
	}
	for _, r := range []*Result{Seq(4, edges), Galois(4, edges, galois.WithThreads(2)), PBBS(4, edges, 2)} {
		if len(r.Chosen) != 2 || r.TotalWeight != 12 {
			t.Fatalf("chosen=%d weight=%d", len(r.Chosen), r.TotalWeight)
		}
	}
}

func TestGaloisMatchesKruskal(t *testing.T) {
	n, edges := testInput()
	want := Seq(n, edges)
	for _, threads := range []int{1, 4, 8} {
		got := Galois(n, edges, galois.WithThreads(threads))
		if got.TotalWeight != want.TotalWeight {
			t.Fatalf("threads=%d: weight %d != kruskal %d", threads, got.TotalWeight, want.TotalWeight)
		}
		if got.Fingerprint() != want.Fingerprint() {
			// Unique weights => unique MSF: the edge SETS must match.
			t.Fatalf("threads=%d: edge set differs from kruskal", threads)
		}
	}
}

func TestGaloisDetMatchesKruskalAndIsPortable(t *testing.T) {
	n, edges := testInput()
	want := Seq(n, edges)
	var ref galois.Stats
	for i, threads := range []int{1, 2, 8} {
		got := Galois(n, edges, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("threads=%d: edge set differs", threads)
		}
		if i == 0 {
			ref = got.Stats
		} else if got.Stats.Commits != ref.Commits || got.Stats.Rounds != ref.Rounds {
			t.Fatalf("threads=%d: schedule differs", threads)
		}
	}
}

func TestPBBSMatchesKruskal(t *testing.T) {
	n, edges := testInput()
	want := Seq(n, edges)
	for _, threads := range []int{1, 4} {
		got := PBBS(n, edges, threads)
		if got.TotalWeight != want.TotalWeight || got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("threads=%d: PBBS MSF differs from kruskal (%d vs %d)",
				threads, got.TotalWeight, want.TotalWeight)
		}
	}
}

func TestSpanningTreeSize(t *testing.T) {
	// The test graph is connected with overwhelming probability: the
	// forest must have exactly n-1 edges.
	n, edges := testInput()
	r := Seq(n, edges)
	if len(r.Chosen) != n-1 {
		t.Fatalf("chosen %d edges, want %d (graph disconnected?)", len(r.Chosen), n-1)
	}
}

func TestContinuationTransparency(t *testing.T) {
	n, edges := testInput()
	a := Galois(n, edges, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	b := Galois(n, edges, galois.WithThreads(4), galois.WithSched(galois.Deterministic),
		galois.WithoutContinuation())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("continuation optimization changed the MSF")
	}
}

func TestGaloisOnGridGraph(t *testing.T) {
	g := graph.Grid2D(20)
	edges := RandomWeights(g, 100, 3)
	want := Seq(g.N(), edges)
	got := Galois(g.N(), edges, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("grid MSF differs")
	}
}

func TestEmptyEdgeSet(t *testing.T) {
	r := Galois(5, nil, galois.WithThreads(2))
	if len(r.Chosen) != 0 || r.TotalWeight != 0 {
		t.Fatalf("nonempty result for edgeless graph: %+v", r)
	}
}
