package freqmine

import (
	"testing"

	"galois/internal/coredet"
)

func smallConfig() Config {
	return Config{Transactions: 3000, Items: 120, MaxTxnLen: 10, MinSupport: 25}
}

// serialMine is an obviously-correct reference miner.
func serialMine(cfg Config, txns [][]uint16) (items, pairs int) {
	counts := make([]int, cfg.Items)
	for _, txn := range txns {
		for _, it := range txn {
			counts[it]++
		}
	}
	for _, c := range counts {
		if c >= cfg.MinSupport {
			items++
		}
	}
	pairCount := map[[2]uint16]int{}
	for _, txn := range txns {
		for i := 0; i < len(txn); i++ {
			for j := i + 1; j < len(txn); j++ {
				a, b := txn[i], txn[j]
				if counts[a] < cfg.MinSupport || counts[b] < cfg.MinSupport {
					continue
				}
				if a > b {
					a, b = b, a
				}
				pairCount[[2]uint16{a, b}]++
			}
		}
	}
	for _, c := range pairCount {
		if c >= cfg.MinSupport {
			pairs++
		}
	}
	return items, pairs
}

func TestMatchesSerialReference(t *testing.T) {
	cfg := smallConfig()
	txns := GenTransactions(cfg, 5)
	wantItems, wantPairs := serialMine(cfg, txns)
	if wantPairs == 0 {
		t.Fatal("degenerate workload: no frequent pairs")
	}
	for _, enabled := range []bool{false, true} {
		for _, threads := range []int{1, 4} {
			res := Run(cfg, txns, threads, coredet.New(enabled, 0))
			if res.FrequentItems != wantItems || res.FrequentPairs != wantPairs {
				t.Fatalf("enabled=%v threads=%d: got %d/%d, want %d/%d",
					enabled, threads, res.FrequentItems, res.FrequentPairs, wantItems, wantPairs)
			}
		}
	}
}

func TestChecksumStableAcrossThreads(t *testing.T) {
	cfg := smallConfig()
	txns := GenTransactions(cfg, 6)
	ref := Run(cfg, txns, 1, coredet.New(false, 0)).Checksum
	for _, threads := range []int{2, 4, 8} {
		if got := Run(cfg, txns, threads, coredet.New(false, 0)).Checksum; got != ref {
			t.Fatalf("threads=%d: checksum differs", threads)
		}
	}
}

func TestSyncProfileIsCoarse(t *testing.T) {
	cfg := smallConfig()
	txns := GenTransactions(cfg, 7)
	rt := coredet.New(true, 0)
	Run(cfg, txns, 4, rt)
	// Sync ops: chunked cursor grabs + per-thread merges + per-item
	// mining claims. Must be far below one per transaction.
	if rt.SyncOps() > uint64(cfg.Transactions)/4 {
		t.Fatalf("sync ops = %d — profile too fine-grained for freqmine", rt.SyncOps())
	}
	if rt.SyncOps() == 0 {
		t.Fatal("no sync ops recorded")
	}
}

func TestGenTransactionsShape(t *testing.T) {
	cfg := smallConfig()
	txns := GenTransactions(cfg, 8)
	if len(txns) != cfg.Transactions {
		t.Fatalf("got %d transactions", len(txns))
	}
	for _, txn := range txns {
		if len(txn) < 2 || len(txn) > cfg.MaxTxnLen+1 {
			t.Fatalf("transaction length %d out of range", len(txn))
		}
		seen := map[uint16]bool{}
		for _, it := range txn {
			if int(it) >= cfg.Items {
				t.Fatalf("item %d out of range", it)
			}
			if seen[it] {
				t.Fatal("duplicate item in transaction")
			}
			seen[it] = true
		}
	}
}
