// Package freqmine is the repository's stand-in for the PARSEC freqmine
// application (paper §4.1, §5.2). PARSEC freqmine is FP-growth frequent-
// itemset mining; its scheduling-relevant profile is two-phase: a parallel
// counting scan with per-thread accumulation and a coarse merge, then
// dynamically load-balanced mining of per-item projections, each a
// substantial chunk of work claimed from a shared counter. Synchronization
// is orders of magnitude rarer than in the irregular graph benchmarks
// (Figure 5), which is what the Figure 6 contrast needs.
//
// This package implements that two-phase miner for real over synthetic
// transactions: it counts exact co-occurrence pairs and reports frequent
// pairs (depth-2 FP-growth — full recursive growth adds depth, not
// different scheduling behaviour). See DESIGN.md §3.
package freqmine

import (
	"galois/internal/coredet"
	"galois/internal/rng"
)

// Config sizes the miner.
type Config struct {
	Transactions int
	Items        int
	MaxTxnLen    int
	MinSupport   int
}

// DefaultConfig gives a workload with a meaningful frequent-pair set.
func DefaultConfig() Config {
	return Config{Transactions: 20000, Items: 400, MaxTxnLen: 12, MinSupport: 60}
}

// GenTransactions produces a skewed synthetic basket dataset: item
// popularity follows a power-ish law so real frequent pairs exist.
func GenTransactions(cfg Config, seed uint64) [][]uint16 {
	r := rng.New(seed)
	txns := make([][]uint16, cfg.Transactions)
	for i := range txns {
		l := 2 + r.Intn(cfg.MaxTxnLen-1)
		seen := map[uint16]bool{}
		txn := make([]uint16, 0, l)
		for len(txn) < l {
			// Square the uniform draw to skew toward small ids.
			u := r.Float64()
			item := uint16(u * u * float64(cfg.Items))
			if !seen[item] {
				seen[item] = true
				txn = append(txn, item)
			}
		}
		txns[i] = txn
	}
	return txns
}

// Result summarizes a mining run.
type Result struct {
	FrequentItems int
	FrequentPairs int
	// Checksum folds the frequent pairs and supports deterministically.
	Checksum uint64
}

// Run mines txns on rt with nthreads threads.
func Run(cfg Config, txns [][]uint16, nthreads int, rt *coredet.Runtime) Result {
	items := cfg.Items
	// Phase 1: per-thread item counting; merge under a lock per thread
	// (coarse synchronization, as in freqmine's reduction).
	global := make([]int64, items)
	var mergeLock coredet.Mutex
	var cursor1 int64

	// Phase 2 state: for each frequent item, count joint occurrences
	// with every other frequent item across its transaction list.
	// Mining work is claimed item-by-item from a shared counter.
	var frequent []uint16
	byItem := make([][]int32, items)
	pairCounts := make([][]int64, 0) // indexed by frequent-item rank
	var cursor2 int64
	barrier := coredet.NewBarrier(nthreads)

	rt.Run(nthreads, func(t *coredet.Thread) {
		local := make([]int64, items)
		const chunk = 256
		for {
			start := t.AtomicAdd(&cursor1, chunk) - chunk
			if start >= int64(len(txns)) {
				break
			}
			end := min(start+chunk, int64(len(txns)))
			for _, txn := range txns[start:end] {
				for _, it := range txn {
					local[it]++
				}
				t.Work(int64(4 * len(txn)))
			}
		}
		t.Lock(&mergeLock)
		for i, c := range local {
			global[i] += c
		}
		t.Work(int64(items))
		t.Unlock(&mergeLock)
		t.BarrierWait(barrier)

		// Serial setup of phase 2 on thread 0.
		if t.ID() == 0 {
			for i := 0; i < items; i++ {
				if global[i] >= int64(cfg.MinSupport) {
					frequent = append(frequent, uint16(i))
				}
			}
			rank := make([]int32, items)
			for i := range rank {
				rank[i] = -1
			}
			for k, it := range frequent {
				rank[it] = int32(k)
			}
			for ti, txn := range txns {
				for _, it := range txn {
					if rank[it] >= 0 {
						byItem[it] = append(byItem[it], int32(ti))
					}
				}
			}
			pairCounts = make([][]int64, len(frequent))
			for k := range pairCounts {
				pairCounts[k] = make([]int64, len(frequent))
			}
			t.Work(int64(len(txns)))
		}
		t.BarrierWait(barrier)

		// Phase 2: mine projections, one frequent item at a time.
		for {
			k := t.AtomicAdd(&cursor2, 1) - 1
			if k >= int64(len(frequent)) {
				break
			}
			it := frequent[k]
			counts := pairCounts[k]
			for _, ti := range byItem[it] {
				for _, other := range txns[ti] {
					if other == it {
						continue
					}
					if g := global[other]; g >= int64(cfg.MinSupport) {
						// Rank lookup via binary search over the
						// sorted frequent list.
						counts[rankIndex(frequent, other)]++
					}
				}
				t.Work(int64(8 * len(txns[ti])))
			}
		}
	})

	res := Result{FrequentItems: len(frequent)}
	var h uint64 = 1469598103934665603
	for k := range pairCounts {
		for j, c := range pairCounts[k] {
			if j <= k {
				continue
			}
			// A pair counted from item k's projection; support is
			// symmetric, count once.
			if c >= int64(cfg.MinSupport) {
				res.FrequentPairs++
				h ^= uint64(k)<<32 ^ uint64(j)<<16 ^ uint64(c)
				h *= 1099511628211
			}
		}
	}
	res.Checksum = h
	return res
}

// rankIndex finds it in the sorted frequent list.
func rankIndex(frequent []uint16, it uint16) int32 {
	lo, hi := 0, len(frequent)
	for lo < hi {
		mid := (lo + hi) / 2
		if frequent[mid] < it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}
