package cavity

import (
	"testing"

	"galois/internal/coredet"
)

func TestAllTouchesHappen(t *testing.T) {
	cfg := Config{Elements: 256, Tasks: 500, CavitySize: 4, WorkPerTask: 100}
	for _, enabled := range []bool{false, true} {
		for _, threads := range []int{1, 4} {
			res := Run(cfg, threads, coredet.New(enabled, 1000), 9)
			want := int64(cfg.Tasks * cfg.CavitySize)
			if res.Touches != want {
				t.Fatalf("enabled=%v threads=%d: touches = %d, want %d",
					enabled, threads, res.Touches, want)
			}
		}
	}
}

func TestSyncProfileMatchesDMR(t *testing.T) {
	cfg := DMRProfile(300)
	rt := coredet.New(true, 5000)
	Run(cfg, 4, rt, 1)
	// Lock+unlock per cavity element plus a cursor claim per task.
	minOps := uint64(cfg.Tasks * (2*cfg.CavitySize + 1))
	if rt.SyncOps() < minOps {
		t.Fatalf("sync ops = %d, want >= %d", rt.SyncOps(), minOps)
	}
}

func TestDeterministicCavities(t *testing.T) {
	cfg := Config{Elements: 128, Tasks: 200, CavitySize: 5, WorkPerTask: 50}
	a := Run(cfg, 4, coredet.New(true, 500), 3)
	b := Run(cfg, 4, coredet.New(true, 500), 3)
	if a != b {
		t.Fatal("deterministic runs differ")
	}
}
