// Package cavity is the repository's stand-in for the pthread (non-
// deterministic PBBS) dmr and dt variants that the paper runs under CoreDet
// (§5.2, Figure 6). Porting the full mesh codes onto the coredet runtime
// would only change how locks are spelled; what determines their Figure 6
// behaviour is the synchronization profile: each fine-grained task locks a
// handful of mesh elements, does a few microseconds of geometry, unlocks,
// and occasionally creates follow-up work. This package distills exactly
// that profile into a kernel over real coredet mutexes, parameterized to
// the task grain and cavity size measured from our real dmr/dt runs
// (see DESIGN.md §3).
package cavity

import (
	"galois/internal/coredet"
	"galois/internal/rng"
)

// Config describes the kernel's profile.
type Config struct {
	// Elements is the size of the shared element pool (mesh size).
	Elements int
	// Tasks is the number of cavity operations to perform.
	Tasks int
	// CavitySize is the number of elements locked per task.
	CavitySize int
	// WorkPerTask is the logical instruction cost of one task's
	// geometry (the 3.8 us/task of dmr corresponds to a few thousand
	// scalar operations).
	WorkPerTask int64
}

// DMRProfile mirrors the measured Delaunay-mesh-refinement profile.
func DMRProfile(tasks int) Config {
	return Config{Elements: 1 << 16, Tasks: tasks, CavitySize: 6, WorkPerTask: 4000}
}

// DTProfile mirrors the measured Delaunay-triangulation profile (slightly
// larger cavities, cheaper per-task math).
func DTProfile(tasks int) Config {
	return Config{Elements: 1 << 16, Tasks: tasks, CavitySize: 8, WorkPerTask: 2500}
}

// Result summarizes a run.
type Result struct {
	// Touches counts element modifications; must equal Tasks*CavitySize.
	Touches int64
}

// Run executes the kernel on rt with nthreads threads. Tasks are claimed
// from a shared cursor; each task locks its (deterministically chosen,
// sorted — so no deadlock) cavity elements, mutates them, works, and
// unlocks.
func Run(cfg Config, nthreads int, rt *coredet.Runtime, seed uint64) Result {
	locks := make([]coredet.Mutex, cfg.Elements)
	counts := make([]int64, cfg.Elements)
	var cursor int64
	var touches int64

	rt.Run(nthreads, func(t *coredet.Thread) {
		var local int64
		for {
			i := t.AtomicAdd(&cursor, 1) - 1
			if i >= int64(cfg.Tasks) {
				break
			}
			// Deterministic cavity selection: distinct sorted
			// element indices derived from the task id.
			cav := make([]int, 0, cfg.CavitySize)
			h := rng.Mix64(uint64(i) ^ seed)
			for len(cav) < cfg.CavitySize {
				e := int(h % uint64(cfg.Elements))
				h = rng.Mix64(h)
				dup := false
				for _, x := range cav {
					if x == e {
						dup = true
						break
					}
				}
				if !dup {
					cav = append(cav, e)
				}
			}
			sortInts(cav)
			for _, e := range cav {
				t.Lock(&locks[e])
			}
			for _, e := range cav {
				counts[e]++
				local++
			}
			t.Work(cfg.WorkPerTask)
			for k := len(cav) - 1; k >= 0; k-- {
				t.Unlock(&locks[cav[k]])
			}
		}
		t.AtomicAdd(&touches, local)
	})
	return Result{Touches: touches}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
