package mis

import (
	"testing"

	"galois"
	"galois/internal/coredet"
	"galois/internal/graph"
)

func testGraph() *graph.CSR {
	return graph.Symmetrize(graph.RandomKOut(3000, 5, 42))
}

func TestSeqValid(t *testing.T) {
	g := testGraph()
	r := Seq(g)
	if err := r.Check(g); err != nil {
		t.Fatal(err)
	}
	if r.Size() == 0 {
		t.Fatal("empty MIS")
	}
}

func TestSeqOnTriangle(t *testing.T) {
	b := graph.NewBuilder(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		b.AddEdge(e[0], e[1])
		b.AddEdge(e[1], e[0])
	}
	g := b.Build()
	r := Seq(g)
	if err := r.Check(g); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 1 || !r.InSet[0] {
		t.Fatalf("lex-first MIS of triangle should be {0}, got size %d", r.Size())
	}
}

func TestSeqOnEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build() // no edges
	r := Seq(g)
	if r.Size() != 5 {
		t.Fatalf("MIS of edgeless graph = %d, want all 5", r.Size())
	}
}

func TestPBBSEqualsSeq(t *testing.T) {
	// The prefix-based algorithm computes exactly the lexicographically
	// first MIS, i.e. Seq's answer, for every thread count.
	g := testGraph()
	want := Seq(g).Fingerprint()
	for _, threads := range []int{1, 2, 4, 8} {
		r := PBBS(g, threads)
		if err := r.Check(g); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := r.Fingerprint(); got != want {
			t.Fatalf("threads=%d: fingerprint %x != seq %x", threads, got, want)
		}
	}
}

func TestGaloisNondetValid(t *testing.T) {
	g := testGraph()
	for _, threads := range []int{1, 4, 8} {
		r := Galois(g, galois.WithThreads(threads))
		if err := r.Check(g); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
	}
}

func TestGaloisDetValidAndPortable(t *testing.T) {
	// The central on-demand determinism claim on a schedule-sensitive
	// output: the DIG-scheduled MIS must be identical for every thread
	// count (but need not equal the lex-first MIS).
	g := testGraph()
	ref := Galois(g, galois.WithThreads(1), galois.WithSched(galois.Deterministic))
	if err := ref.Check(g); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, threads := range []int{2, 3, 4, 8} {
		r := Galois(g, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if err := r.Check(g); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := r.Fingerprint(); got != want {
			t.Fatalf("threads=%d: fingerprint %x != %x", threads, got, want)
		}
	}
}

func TestGaloisDetRepeatable(t *testing.T) {
	g := graph.Symmetrize(graph.RandomKOut(1000, 4, 7))
	a := Galois(g, galois.WithThreads(8), galois.WithSched(galois.Deterministic))
	b := Galois(g, galois.WithThreads(8), galois.WithSched(galois.Deterministic))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("repeated deterministic runs differ")
	}
}

func TestContinuationDoesNotChangeOutput(t *testing.T) {
	g := graph.Symmetrize(graph.RandomKOut(1000, 4, 9))
	with := Galois(g, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	without := Galois(g, galois.WithThreads(4), galois.WithSched(galois.Deterministic),
		galois.WithoutContinuation())
	if with.Fingerprint() != without.Fingerprint() {
		t.Fatal("continuation optimization changed the MIS")
	}
}

func TestGaloisDetOnDenseGraph(t *testing.T) {
	// Heavier conflicts: RMAT has high-degree hubs.
	g := graph.Symmetrize(graph.RMAT(10, 8, 3))
	r := Galois(g, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	if err := r.Check(g); err != nil {
		t.Fatal(err)
	}
	if r.Stats.Aborts == 0 {
		t.Fatal("expected round conflicts on a hub-heavy graph")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.Build()
	bad := &Result{InSet: []bool{true, true, true}}
	if bad.Check(g) == nil {
		t.Fatal("independence violation not detected")
	}
	bad = &Result{InSet: []bool{false, false, false}}
	if bad.Check(g) == nil {
		t.Fatal("maximality violation not detected")
	}
}

func TestPThreadValid(t *testing.T) {
	g := testGraph()
	for _, enabled := range []bool{false, true} {
		for _, threads := range []int{1, 4} {
			r := PThread(g, threads, coredet.New(enabled, 5000))
			if err := r.Check(g); err != nil {
				t.Fatalf("enabled=%v threads=%d: %v", enabled, threads, err)
			}
			// The prefix algorithm computes the lex-first MIS
			// regardless of scheduling (monotone writes).
			if r.Fingerprint() != Seq(g).Fingerprint() {
				t.Fatalf("enabled=%v threads=%d: not the lex-first MIS", enabled, threads)
			}
		}
	}
}

func TestPThreadSyncLight(t *testing.T) {
	// The data-parallel MIS performs far fewer serialized ops per unit
	// of work than a sync-per-edge code — the reason it survives
	// CoreDet in Figure 6.
	g := testGraph()
	rt := coredet.New(true, 5000)
	PThread(g, 4, rt)
	if rt.SyncOps() > uint64(g.N()) {
		t.Fatalf("sync ops %d > nodes %d — too fine-grained", rt.SyncOps(), g.N())
	}
}
