// Package mis implements the paper's maximal-independent-set benchmark
// (§4.1) in four variants:
//
//   - Seq: sequential greedy MIS by node id (the lexicographically first
//     MIS).
//   - PBBS: the data-parallel deterministic-by-construction prefix-based
//     greedy MIS of the PBBS suite. It computes exactly the
//     lexicographically-first MIS, so its output equals Seq for every
//     thread count.
//   - Galois (non-deterministic or DIG-scheduled): the Lonestar-style
//     formulation: one task per node acquires the node and its neighbors
//     and joins the set if no neighbor has joined. Its output depends on
//     the schedule — which is precisely what makes it the paper's test of
//     on-demand determinism (DIG makes the chosen schedule reproducible).
package mis

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"galois"
	"galois/internal/graph"
	"galois/internal/para"
	"galois/internal/stats"
)

// State of a node in the MIS computation.
type State uint8

// Node states.
const (
	Unknown State = iota
	In
	Out
)

// Result is the output of one MIS run.
type Result struct {
	// InSet[v] reports whether v is in the independent set.
	InSet []bool
	// Stats describes the run.
	Stats stats.Stats
}

// Fingerprint hashes the membership bitmap.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	for i, in := range r.InSet {
		if in {
			v := uint64(i)
			buf = append(buf[:0], byte(v), byte(v>>8), byte(v>>16), byte(v>>24), byte(v>>32))
			h.Write(buf)
		}
	}
	return h.Sum64()
}

// Size returns the number of set members.
func (r *Result) Size() int {
	n := 0
	for _, in := range r.InSet {
		if in {
			n++
		}
	}
	return n
}

// Check verifies independence and maximality of the result against g.
func (r *Result) Check(g *graph.CSR) error {
	for u := 0; u < g.N(); u++ {
		hasInNeighbor := false
		for _, v := range g.Neighbors(u) {
			if r.InSet[v] {
				hasInNeighbor = true
				if r.InSet[u] {
					return fmt.Errorf("mis: adjacent nodes %d and %d both in set", u, v)
				}
			}
		}
		if !r.InSet[u] && !hasInNeighbor {
			return fmt.Errorf("mis: node %d is excludable but has no neighbor in set", u)
		}
	}
	return nil
}

// Seq computes the lexicographically-first MIS greedily.
func Seq(g *graph.CSR) *Result {
	n := g.N()
	in := make([]bool, n)
	out := make([]bool, n)
	col := stats.NewCollector(1)
	col.Start()
	for u := 0; u < n; u++ {
		if out[u] {
			col.Commit(0)
			continue
		}
		in[u] = true
		for _, v := range g.Neighbors(u) {
			out[v] = true
		}
		col.Commit(0)
	}
	col.Stop()
	return &Result{InSet: in, Stats: col.Snapshot()}
}

// PBBS computes the lexicographically-first MIS with the PBBS prefix-based
// data-parallel algorithm: rounds over a prefix of the remaining nodes; a
// node decides In when every lower-id neighbor has decided Out, and Out
// when any lower-id neighbor is In. Both conditions are monotone, so the
// result is independent of thread count and equals Seq's output.
func PBBS(g *graph.CSR, nthreads int) *Result {
	n := g.N()
	// States are read concurrently with (monotone) writes, so they are
	// atomic; a node's state is written at most once.
	state := make([]atomic.Uint32, n)
	col := stats.NewCollector(nthreads)
	col.Start()
	remaining := make([]uint32, n)
	for i := range remaining {
		remaining[i] = uint32(i)
	}
	// Prefix size: like PBBS, a multiple of the worker count balances
	// wasted checks against rounds; the value affects performance only.
	prefix := n / 50
	if prefix < 256 {
		prefix = 256
	}
	for len(remaining) > 0 {
		p := prefix
		if p > len(remaining) {
			p = len(remaining)
		}
		cur := remaining[:p]
		decided := make([]atomic.Bool, p)
		// Iterate the prefix to a fixed point. Progress per sweep is
		// guaranteed: the smallest undecided node in the prefix has
		// all lower-id neighbors decided (lower ids outside the
		// prefix were decided in earlier prefixes).
		for {
			done := true
			para.For(nthreads, p, func(tid, i int) {
				if decided[i].Load() {
					return
				}
				u := cur[i]
				allLowerOut := true
				for _, v := range g.Neighbors(int(u)) {
					if v >= u {
						continue
					}
					switch State(state[v].Load()) {
					case In:
						state[u].Store(uint32(Out))
						decided[i].Store(true)
						col.AtomicOp(tid, 1)
						col.Commit(tid)
						return
					case Unknown:
						allLowerOut = false
					case Out:
					}
				}
				if allLowerOut {
					state[u].Store(uint32(In))
					decided[i].Store(true)
					col.AtomicOp(tid, 1)
					col.Commit(tid)
				}
			})
			for i := range decided {
				if !decided[i].Load() {
					done = false
					break
				}
			}
			if done {
				break
			}
		}
		col.Round(p, p)
		remaining = remaining[p:]
	}
	col.Stop()
	in := make([]bool, n)
	for i := range state {
		in[i] = State(state[i].Load()) == In
	}
	return &Result{InSet: in, Stats: col.Snapshot()}
}

// node is the Galois variants' per-node state.
type node struct {
	galois.Lockable
	state State
}

// Galois runs the Lonestar-style MIS under the given scheduler options: one
// task per node; the task acquires the node and all neighbors, reads their
// states, and joins the set iff no neighbor has joined.
func Galois(g *graph.CSR, opts ...galois.Option) *Result {
	n := g.N()
	nodes := make([]node, n)
	items := make([]uint32, n)
	for i := range items {
		items[i] = uint32(i)
	}
	st := galois.ForEach(items, func(ctx *galois.Ctx[uint32], u uint32) {
		nd := &nodes[u]
		ctx.Acquire(&nd.Lockable)
		anyIn := false
		for _, v := range g.Neighbors(int(u)) {
			m := &nodes[v]
			ctx.Acquire(&m.Lockable)
			if m.state == In {
				anyIn = true
			}
		}
		if anyIn {
			ctx.OnCommit(func(*galois.Ctx[uint32]) { nd.state = Out })
			return
		}
		ctx.OnCommit(func(*galois.Ctx[uint32]) { nd.state = In })
	}, opts...)
	in := make([]bool, n)
	for i := range nodes {
		in[i] = nodes[i].state == In
	}
	return &Result{InSet: in, Stats: st}
}
