package mis

import (
	"sync/atomic"

	"galois/internal/coredet"
	"galois/internal/graph"
)

// PThread is the pthread-style data-parallel prefix MIS the paper runs
// under CoreDet (§5.2): rounds over prefixes of the id order; threads claim
// work chunks from a shared cursor (a serialized RMW under CoreDet) but
// publish node states with plain monotone stores — which CoreDet-class
// systems handle in the parallel phase through store buffers, not the
// serial token. That distinction is why this data-parallel code is the one
// irregular benchmark that survives CoreDet in Figure 6, while the
// CAS-per-edge bfs collapses.
//
// The stores use sync/atomic only to keep the Go race detector satisfied;
// they deliberately do not pass through the coredet serial phase.
func PThread(g *graph.CSR, nthreads int, rt *coredet.Runtime) *Result {
	n := g.N()
	state := make([]int64, n) // 0 unknown, 1 in, 2 out
	prefix := n / 50
	if prefix < 256 {
		prefix = 256
	}
	var cursor int64
	barrier := coredet.NewBarrier(nthreads)
	base := 0
	done := false
	progress := make([]int64, nthreads*8) // padded per-thread undecided counts

	rt.Run(nthreads, func(t *coredet.Thread) {
		id := t.ID()
		for base < n {
			p := min(prefix, n-base)
			// Sweep the prefix to a fixed point.
			for {
				undecided := int64(0)
				const chunk = 64
				for {
					start := t.AtomicAdd(&cursor, chunk) - chunk
					if start >= int64(p) {
						break
					}
					end := min(start+chunk, int64(p))
					for i := start; i < end; i++ {
						u := base + int(i)
						if atomic.LoadInt64(&state[u]) != 0 {
							continue
						}
						decided := int64(1) // tentatively In
						for _, v := range g.Neighbors(u) {
							if int(v) >= u {
								continue
							}
							switch atomic.LoadInt64(&state[int(v)]) {
							case 1:
								decided = 2
							case 0:
								decided = 0
							}
							if decided != 1 {
								break
							}
						}
						t.Work(int64(4*g.Degree(u) + 8))
						if decided != 0 {
							atomic.StoreInt64(&state[u], decided)
						} else {
							undecided++
						}
					}
				}
				progress[id*8] = undecided
				t.BarrierWait(barrier)
				if id == 0 {
					total := int64(0)
					for k := 0; k < nthreads; k++ {
						total += progress[k*8]
					}
					done = total == 0
					cursor = 0
					if done {
						base += p
					}
				}
				t.BarrierWait(barrier)
				if done {
					break
				}
			}
		}
	})

	in := make([]bool, n)
	for i, s := range state {
		in[i] = s == 1
	}
	return &Result{InSet: in}
}
