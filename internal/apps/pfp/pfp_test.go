package pfp

import (
	"testing"

	"galois"
	"galois/internal/graph"
)

func smallNetwork(seed uint64) *Network {
	return RandomNetwork(800, 4, 100, seed)
}

func TestBuildPairsArcs(t *testing.T) {
	nw := smallNetwork(1)
	for a := range nw.cap {
		r := nw.rev[a]
		if nw.rev[r] != int64(a) {
			t.Fatalf("rev not involutive at %d", a)
		}
		if nw.head[nw.rev[a]] == nw.head[a] {
			t.Fatalf("arc %d and its reverse share a head", a)
		}
	}
}

func TestHandBuiltNetwork(t *testing.T) {
	// s=0 -> 1 -> 3=t with a parallel path through 2; max flow 7.
	// Edges grouped by source so the cap list below matches Build's
	// per-node consumption order.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // cap 4
	b.AddEdge(0, 2) // cap 3
	b.AddEdge(1, 3) // cap 5
	b.AddEdge(1, 2) // cap 1
	b.AddEdge(2, 3) // cap 4
	caps := []int64{4, 3, 5, 1, 4}
	i := 0
	nw := Build(b.Build(), func(u, k int) int64 { v := caps[i]; i++; return v }, 0, 3)
	if got := Dinic(nw); got != 7 {
		t.Fatalf("dinic = %d, want 7", got)
	}
	val, _ := Seq(nw)
	if val != 7 {
		t.Fatalf("seq = %d, want 7", val)
	}
	if err := nw.CheckPreflow(); err != nil {
		t.Fatal(err)
	}
}

func TestSeqMatchesDinic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		nw := smallNetwork(seed)
		want := Dinic(nw)
		got, st := Seq(nw)
		if got != want {
			t.Fatalf("seed %d: seq=%d dinic=%d", seed, got, want)
		}
		if err := nw.CheckPreflow(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.Commits == 0 {
			t.Fatal("no discharges recorded")
		}
		if want == 0 {
			t.Fatalf("seed %d: trivial instance (flow 0)", seed)
		}
	}
}

func TestGaloisNondetMatchesDinic(t *testing.T) {
	for _, threads := range []int{1, 4, 8} {
		nw := smallNetwork(7)
		want := Dinic(nw)
		got, _ := Galois(nw, galois.WithThreads(threads))
		if got != want {
			t.Fatalf("threads=%d: galois=%d dinic=%d", threads, got, want)
		}
		if err := nw.CheckPreflow(); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
	}
}

func TestGaloisDetMatchesDinicAndIsPortable(t *testing.T) {
	nw := smallNetwork(9)
	want := Dinic(nw)
	type snap struct {
		commits, rounds uint64
	}
	var ref *snap
	for _, threads := range []int{1, 2, 4, 8} {
		nw.Reset()
		got, st := Galois(nw, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if got != want {
			t.Fatalf("threads=%d: det galois=%d dinic=%d", threads, got, want)
		}
		if err := nw.CheckPreflow(); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if ref == nil {
			ref = &snap{commits: st.Commits, rounds: st.Rounds}
		} else if st.Commits != ref.commits || st.Rounds != ref.rounds {
			// The flow value is schedule-independent, but the DIG
			// schedule itself must not depend on thread count.
			t.Fatalf("threads=%d: schedule differs (%d/%d vs %d/%d)",
				threads, st.Commits, st.Rounds, ref.commits, ref.rounds)
		}
	}
}

func TestGaloisDetFinalStatePortable(t *testing.T) {
	// Stronger than the flow value: the entire residual network must be
	// identical across thread counts under DIG.
	ref := smallNetwork(11)
	want := Dinic(ref)
	if _, _ = Galois(ref, galois.WithThreads(1), galois.WithSched(galois.Deterministic)); false {
	}
	for _, threads := range []int{2, 8} {
		nw := smallNetwork(11)
		got, _ := Galois(nw, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if got != want {
			t.Fatalf("flow value mismatch")
		}
		for a := range nw.cap {
			if nw.cap[a] != ref.cap[a] {
				t.Fatalf("threads=%d: residual capacity differs at arc %d", threads, a)
			}
		}
	}
}

func TestContinuationTransparency(t *testing.T) {
	a := smallNetwork(13)
	Galois(a, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	b := smallNetwork(13)
	Galois(b, galois.WithThreads(4), galois.WithSched(galois.Deterministic), galois.WithoutContinuation())
	for i := range a.cap {
		if a.cap[i] != b.cap[i] {
			t.Fatalf("continuation optimization changed the residual network at arc %d", i)
		}
	}
}

func TestResetRestores(t *testing.T) {
	nw := smallNetwork(3)
	want := Dinic(nw)
	Seq(nw)
	nw.Reset()
	got, _ := Seq(nw)
	if got != want {
		t.Fatalf("after reset: %d != %d", got, want)
	}
}

func TestCheckPreflowDetectsViolation(t *testing.T) {
	nw := smallNetwork(2)
	Seq(nw)
	nw.cap[0] = -1
	if nw.CheckPreflow() == nil {
		t.Fatal("negative capacity not detected")
	}
}

func TestGridNetwork(t *testing.T) {
	g := graph.Grid2D(12)
	nw := Build(g, func(u, k int) int64 { return int64(1 + (u+k)%7) }, 0, g.N()-1)
	want := Dinic(nw)
	got, _ := Galois(nw, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	if got != want {
		t.Fatalf("grid: %d != %d", got, want)
	}
}
