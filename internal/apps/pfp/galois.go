package pfp

import (
	"galois"
	"galois/internal/stats"
)

// DefaultWaveBudget bounds how many times a task chain may re-push itself
// within one outer round before control returns to the global-relabeling
// loop. It trades relabeling freshness against round overhead; it does not
// affect the computed flow value.
const DefaultWaveBudget = 8

// task is one discharge attempt: node u with a remaining wave budget.
type task struct {
	u      int32
	budget int32
}

// Galois computes the max-flow value under the given scheduler options.
// Outer rounds perform a deterministic global relabeling and then run a
// Galois loop over the active nodes; tasks discharge one node (acquiring
// the node and its residual neighbors), activate neighbors, and re-push
// themselves while their wave budget lasts.
func Galois(nw *Network, opts ...galois.Option) (int64, stats.Stats) {
	n := nw.N
	s, t := nw.Source, nw.Sink
	nodes := nw.nodes
	var agg stats.Stats

	// Saturate source arcs (sequential, deterministic).
	lo, hi := nw.Arcs(s)
	for a := lo; a < hi; a++ {
		c := nw.cap[a]
		if c <= 0 {
			continue
		}
		nw.cap[a] = 0
		nw.cap[nw.rev[a]] += c
		nodes[nw.head[a]].excess += c
	}

	body := func(ctx *galois.Ctx[task], tk task) {
		u := int(tk.u)
		nu := &nodes[u]
		ctx.Acquire(&nu.Lockable)
		if nu.excess <= 0 || nu.height >= uint32(n) || u == s || u == t {
			return
		}
		ulo, uhi := nw.Arcs(u)
		// Acquire the full residual neighborhood; heights and arc
		// capacities of neighbors are both read and written.
		for a := ulo; a < uhi; a++ {
			ctx.Acquire(&nodes[nw.head[a]].Lockable)
		}
		// Plan the discharge on local state; pushes are recorded in a
		// deterministic order (arc order within waves), which keeps
		// the commit phase — including task creation — deterministic.
		excess := nu.excess
		height := nu.height
		pushedOnArc := make([]int64, uhi-ulo)
		type push struct {
			a int64
			d int64
		}
		var plan []push
		resid := func(a int64) int64 { return nw.cap[a] - pushedOnArc[a-ulo] }
		for excess > 0 && height < uint32(n) {
			pushedAny := false
			for a := ulo; a < uhi && excess > 0; a++ {
				v := nw.head[a]
				if resid(a) <= 0 || height != nodes[v].height+1 {
					continue
				}
				d := excess
				if r := resid(a); r < d {
					d = r
				}
				pushedOnArc[a-ulo] += d
				plan = append(plan, push{a: a, d: d})
				excess -= d
				pushedAny = true
			}
			if excess == 0 {
				break
			}
			if pushedAny {
				continue
			}
			// Relabel.
			minH := uint32(2 * n)
			for a := ulo; a < uhi; a++ {
				if resid(a) > 0 {
					if h := nodes[nw.head[a]].height; h < minH {
						minH = h
					}
				}
			}
			height = minH + 1
			if height > uint32(n) {
				height = uint32(n)
			}
		}
		ctx.OnCommit(func(c *galois.Ctx[task]) {
			for _, p := range plan {
				v := nw.head[p.a]
				nw.cap[p.a] -= p.d
				nw.cap[nw.rev[p.a]] += p.d
				was := nodes[v].excess
				nodes[v].excess = was + p.d
				if was == 0 && int(v) != s && int(v) != t &&
					nodes[v].height < uint32(n) && tk.budget > 1 {
					c.Push(task{u: int32(v), budget: tk.budget - 1})
				}
			}
			nu.excess = excess
			nu.height = height
			c.CountAtomic(3*len(plan) + 2)
			if excess > 0 && height < uint32(n) && tk.budget > 1 {
				c.Push(task{u: tk.u, budget: tk.budget - 1})
			}
		})
	}

	for {
		globalRelabelDet(nw)
		var active []task
		for u := 0; u < n; u++ {
			if u != s && u != t && nodes[u].excess > 0 && nodes[u].height < uint32(n) {
				active = append(active, task{u: int32(u), budget: DefaultWaveBudget})
			}
		}
		if len(active) == 0 {
			break
		}
		st := galois.ForEach(active, body, opts...)
		agg = agg.Add(st)
	}
	return nw.FlowValue(), agg
}

// globalRelabelDet recomputes heights as BFS distance to the sink over the
// reverse residual graph (unreachable nodes park at n). Deterministic and
// sequential; it runs between Galois rounds.
func globalRelabelDet(nw *Network) {
	n := nw.N
	nodes := nw.nodes
	for u := 0; u < n; u++ {
		nodes[u].height = uint32(n)
	}
	nodes[nw.Sink].height = 0
	q := make([]int32, 0, n)
	q = append(q, int32(nw.Sink))
	for head := 0; head < len(q); head++ {
		w := int(q[head])
		hw := nodes[w].height
		lo, hi := nw.Arcs(w)
		for a := lo; a < hi; a++ {
			x := int(nw.head[a])
			if nw.cap[nw.rev[a]] > 0 && nodes[x].height == uint32(n) && x != nw.Source {
				nodes[x].height = hw + 1
				q = append(q, int32(x))
			}
		}
	}
	nodes[nw.Source].height = uint32(n)
}
