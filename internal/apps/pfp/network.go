// Package pfp implements the paper's preflow-push benchmark (§4.1):
// Goldberg–Tarjan push–relabel maximum flow with the global relabeling
// heuristic, in three variants:
//
//   - Seq: an optimized sequential FIFO push–relabel with current-arc,
//     gap and periodic-global-relabel heuristics — the role hi_pr plays in
//     Figure 8.
//   - Galois (non-deterministic or DIG-scheduled): the Lonestar
//     formulation — a task discharges one active node (acquiring it and
//     its neighbors), activating neighbors as new tasks; outer rounds
//     interleave deterministic global relabelings.
//
// A separate Dinic implementation provides an independent correctness
// check of the computed flow value.
package pfp

import (
	"fmt"

	"galois/internal/graph"
	"galois/internal/marks"
	"galois/internal/rng"
)

// Network is a flow network in adjacency-array form with paired residual
// arcs: arc a and arc rev[a] are the two directions of one edge.
type Network struct {
	N      int
	Source int
	Sink   int
	// off[u] : off[u+1] is u's arc range.
	off []int64
	// head[a] is the target of arc a.
	head []uint32
	// cap[a] is the residual capacity of arc a (mutated by runs).
	cap []int64
	// rev[a] is the index of a's reverse arc.
	rev []int64
	// orig[a] is the original capacity (for flow extraction and reset).
	orig []int64
	// nodes[u] carries per-node algorithm state.
	nodes []node
}

type node struct {
	marks.Lockable
	height uint32
	excess int64
}

// Build constructs a network from a directed graph with the given per-edge
// capacity function. Parallel edges are kept; self loops dropped.
func Build(g *graph.CSR, capOf func(u int, k int) int64, source, sink int) *Network {
	n := g.N()
	type arc struct {
		u, v uint32
		c    int64
	}
	arcs := make([]arc, 0, 2*g.M())
	for u := 0; u < n; u++ {
		for k, v := range g.Neighbors(u) {
			if int(v) == u {
				continue
			}
			arcs = append(arcs, arc{u: uint32(u), v: v, c: capOf(u, k)})
		}
	}
	nw := &Network{N: n, Source: source, Sink: sink}
	nw.off = make([]int64, n+1)
	for _, a := range arcs {
		nw.off[a.u+1]++
		nw.off[a.v+1]++
	}
	for i := 0; i < n; i++ {
		nw.off[i+1] += nw.off[i]
	}
	m2 := 2 * len(arcs)
	nw.head = make([]uint32, m2)
	nw.cap = make([]int64, m2)
	nw.rev = make([]int64, m2)
	nw.orig = make([]int64, m2)
	cursor := make([]int64, n)
	copy(cursor, nw.off[:n])
	for _, a := range arcs {
		fw := cursor[a.u]
		cursor[a.u]++
		bw := cursor[a.v]
		cursor[a.v]++
		nw.head[fw] = a.v
		nw.cap[fw] = a.c
		nw.orig[fw] = a.c
		nw.rev[fw] = bw
		nw.head[bw] = a.u
		nw.cap[bw] = 0
		nw.orig[bw] = 0
		nw.rev[bw] = fw
	}
	nw.nodes = make([]node, n)
	return nw
}

// RandomNetwork generates the paper's pfp input family: a random k-out
// graph with uniform capacities in [1, maxCap], source 0, sink n-1.
func RandomNetwork(n, k int, maxCap int64, seed uint64) *Network {
	g := graph.RandomKOut(n, k, seed)
	r := rng.New(seed ^ 0xabcdef)
	caps := make([]int64, g.M())
	for i := range caps {
		caps[i] = 1 + int64(r.Uint64n(uint64(maxCap)))
	}
	return Build(g, func(u, k int) int64 {
		lo, _ := g.EdgeRange(u)
		return caps[lo+int64(k)]
	}, 0, n-1)
}

// Reset restores all residual capacities, heights and excesses.
func (nw *Network) Reset() {
	copy(nw.cap, nw.orig)
	for i := range nw.nodes {
		nw.nodes[i].height = 0
		nw.nodes[i].excess = 0
	}
}

// Arcs returns u's arc index range.
func (nw *Network) Arcs(u int) (lo, hi int64) { return nw.off[u], nw.off[u+1] }

// FlowValue returns the current excess at the sink (the max-flow value once
// no active node below height n remains).
func (nw *Network) FlowValue() int64 { return nw.nodes[nw.Sink].excess }

// CheckPreflow validates preflow invariants and capacity constraints:
// residual capacities within [0, cap+reverse-original], non-negative
// excess everywhere, and pairwise consistency of arc pairs.
func (nw *Network) CheckPreflow() error {
	for a := range nw.cap {
		if nw.cap[a] < 0 {
			return errf("negative residual capacity on arc %d", a)
		}
		pairSum := nw.cap[a] + nw.cap[nw.rev[a]]
		origSum := nw.orig[a] + nw.orig[nw.rev[a]]
		if pairSum != origSum {
			return errf("arc pair %d capacity not conserved: %d != %d", a, pairSum, origSum)
		}
	}
	for u := range nw.nodes {
		if u == nw.Source {
			continue
		}
		if nw.nodes[u].excess < 0 {
			return errf("negative excess at node %d", u)
		}
	}
	// Excess consistency: net inflow per node equals its excess.
	inflow := make([]int64, nw.N)
	for u := 0; u < nw.N; u++ {
		lo, hi := nw.Arcs(u)
		for a := lo; a < hi; a++ {
			f := nw.orig[a] - nw.cap[a] // flow on arc a (may be negative: reverse-direction flow)
			if f > 0 {
				inflow[nw.head[a]] += f
				inflow[u] -= f
			}
		}
	}
	for u := 0; u < nw.N; u++ {
		if u == nw.Source {
			continue
		}
		if inflow[u] != nw.nodes[u].excess {
			return errf("node %d: inflow %d != excess %d", u, inflow[u], nw.nodes[u].excess)
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("pfp: "+format, args...)
}
