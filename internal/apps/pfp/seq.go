package pfp

import "galois/internal/stats"

// Seq computes the max-flow value with an optimized sequential FIFO
// push–relabel: current-arc pointers, the gap heuristic, and periodic
// global relabeling — the standard hi_pr feature set (first phase only:
// it computes the maximum preflow, whose sink excess is the max-flow
// value).
func Seq(nw *Network) (int64, stats.Stats) {
	col := stats.NewCollector(1)
	col.Start()
	n := nw.N
	s, t := nw.Source, nw.Sink
	nodes := nw.nodes
	curArc := make([]int64, n)
	for u := 0; u < n; u++ {
		curArc[u] = nw.off[u]
	}
	// Gap heuristic bookkeeping: count of nodes at each height < n.
	heightCount := make([]int64, 2*n+1)

	queue := make([]int32, 0, n)
	inQueue := make([]bool, n)
	enqueue := func(u int) {
		if u != s && u != t && !inQueue[u] && nodes[u].excess > 0 && nodes[u].height < uint32(n) {
			inQueue[u] = true
			queue = append(queue, int32(u))
		}
	}

	globalRelabel := func() {
		// Heights = BFS distance to sink over reverse residual arcs;
		// unreachable nodes park at n (inactive in phase one).
		for u := 0; u < n; u++ {
			nodes[u].height = uint32(n)
		}
		nodes[t].height = 0
		bfs := make([]int32, 0, n)
		bfs = append(bfs, int32(t))
		for head := 0; head < len(bfs); head++ {
			w := int(bfs[head])
			hw := nodes[w].height
			lo, hi := nw.Arcs(w)
			for a := lo; a < hi; a++ {
				x := int(nw.head[a])
				// Residual arc x->w exists iff cap[rev[a]] > 0.
				if nw.cap[nw.rev[a]] > 0 && nodes[x].height == uint32(n) && x != s {
					nodes[x].height = hw + 1
					bfs = append(bfs, int32(x))
				}
			}
		}
		nodes[s].height = uint32(n)
		for i := range heightCount {
			heightCount[i] = 0
		}
		for u := 0; u < n; u++ {
			heightCount[nodes[u].height]++
		}
		for u := 0; u < n; u++ {
			curArc[u] = nw.off[u]
		}
		// Rebuild the queue under the new heights.
		queue = queue[:0]
		for u := range inQueue {
			inQueue[u] = false
		}
		for u := 0; u < n; u++ {
			enqueue(u)
		}
	}

	// Initialize: saturate source arcs.
	lo, hi := nw.Arcs(s)
	for a := lo; a < hi; a++ {
		c := nw.cap[a]
		if c <= 0 {
			continue
		}
		v := int(nw.head[a])
		nw.cap[a] = 0
		nw.cap[nw.rev[a]] += c
		nodes[v].excess += c
		col.AtomicOp(0, 1)
	}
	globalRelabel()

	relabels := 0
	sinceGlobal := 0
	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		inQueue[u] = false
		// Discharge u.
		for nodes[u].excess > 0 && nodes[u].height < uint32(n) {
			lo, hi := nw.Arcs(u)
			pushed := false
			for a := curArc[u]; a < hi; a++ {
				v := int(nw.head[a])
				if nw.cap[a] > 0 && nodes[u].height == nodes[v].height+1 {
					d := nodes[u].excess
					if nw.cap[a] < d {
						d = nw.cap[a]
					}
					nw.cap[a] -= d
					nw.cap[nw.rev[a]] += d
					nodes[u].excess -= d
					nodes[v].excess += d
					col.AtomicOp(0, 2)
					enqueue(v)
					curArc[u] = a
					pushed = true
					if nodes[u].excess == 0 {
						break
					}
				}
			}
			if nodes[u].excess == 0 {
				break
			}
			if pushed && curArc[u] < hi {
				continue
			}
			// Relabel: minimum neighbor height + 1 over residual arcs.
			oldH := nodes[u].height
			minH := uint32(2 * n)
			for a := lo; a < hi; a++ {
				if nw.cap[a] > 0 {
					if h := nodes[int(nw.head[a])].height; h < minH {
						minH = h
					}
				}
			}
			newH := minH + 1
			if newH > uint32(n) {
				newH = uint32(n)
			}
			heightCount[oldH]--
			nodes[u].height = newH
			heightCount[newH]++
			curArc[u] = lo
			relabels++
			sinceGlobal++
			col.AtomicOp(0, 1)
			// Gap heuristic: no nodes left at oldH means every node
			// above oldH (below n) is disconnected from the sink.
			if oldH < uint32(n) && heightCount[oldH] == 0 {
				for v := 0; v < n; v++ {
					if h := nodes[v].height; h > oldH && h < uint32(n) {
						heightCount[h]--
						nodes[v].height = uint32(n)
						heightCount[n]++
					}
				}
			}
			if sinceGlobal >= n {
				sinceGlobal = 0
				globalRelabel()
				break // u's queue status was rebuilt
			}
		}
		col.Commit(0)
		enqueue(u)
	}
	col.Stop()
	return nw.FlowValue(), col.Snapshot()
}

// Dinic computes the max-flow value with Dinic's algorithm — an
// independent checker for the push–relabel implementations. It uses its
// own capacity copy and leaves nw untouched.
func Dinic(nw *Network) int64 {
	caps := make([]int64, len(nw.orig))
	copy(caps, nw.orig)
	n := nw.N
	s, t := nw.Source, nw.Sink
	level := make([]int32, n)
	iter := make([]int64, n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		q := []int32{int32(s)}
		for head := 0; head < len(q); head++ {
			u := int(q[head])
			lo, hi := nw.Arcs(u)
			for a := lo; a < hi; a++ {
				v := int(nw.head[a])
				if caps[a] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					q = append(q, int32(v))
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, f int64) int64
	dfs = func(u int, f int64) int64 {
		if u == t {
			return f
		}
		_, hi := nw.Arcs(u)
		for ; iter[u] < hi; iter[u]++ {
			a := iter[u]
			v := int(nw.head[a])
			if caps[a] <= 0 || level[v] != level[u]+1 {
				continue
			}
			d := f
			if caps[a] < d {
				d = caps[a]
			}
			if got := dfs(v, d); got > 0 {
				caps[a] -= got
				caps[nw.rev[a]] += got
				return got
			}
		}
		return 0
	}

	const inf = int64(1) << 62
	var flow int64
	for bfs() {
		lo := nw.off
		for u := 0; u < n; u++ {
			iter[u] = lo[u]
		}
		for {
			f := dfs(s, inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}
