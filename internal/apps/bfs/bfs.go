// Package bfs implements the paper's breadth-first-search benchmark (§4.1)
// in four variants:
//
//   - Seq: an optimized sequential array-queue BFS — the role the
//     Schardl–Leiserson baseline plays in Figure 8.
//   - PBBS: a handwritten deterministic level-synchronous BFS in the style
//     of the PBBS suite: per level, candidate parents are combined with
//     write-min so the BFS tree is independent of thread count.
//   - Galois (non-deterministic or DIG-scheduled): the Lonestar-style
//     data-driven formulation: a task relaxes one node's distance and
//     creates tasks for improved neighbors.
//
// All variants compute the same distances (BFS distances are confluent);
// the deterministic variants additionally fix the parent tree.
package bfs

import (
	"hash/fnv"
	"math"
	"sync/atomic"

	"galois"
	"galois/internal/graph"
	"galois/internal/para"
	"galois/internal/scan"
	"galois/internal/stats"
)

// Inf is the distance of unreached nodes.
const Inf = math.MaxUint32

// Result is the output of one BFS run.
type Result struct {
	// Dist[v] is the BFS distance from the source (Inf if unreached).
	Dist []uint32
	// Parent[v] is the BFS tree parent (only set by the PBBS variant;
	// nil otherwise).
	Parent []uint32
	// Stats describes the run.
	Stats stats.Stats
}

// Fingerprint hashes the distance array (and parent array when present).
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	put := func(v uint32) {
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(buf[:])
	}
	for _, d := range r.Dist {
		put(d)
	}
	for _, p := range r.Parent {
		put(p)
	}
	return h.Sum64()
}

// Seq runs sequential BFS from src.
func Seq(g *graph.CSR, src int) *Result {
	n := g.N()
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = Inf
	}
	queue := make([]uint32, 0, n)
	dist[src] = 0
	queue = append(queue, uint32(src))
	c := stats.NewCollector(1)
	c.Start()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == Inf {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
		c.Commit(0)
	}
	c.Stop()
	return &Result{Dist: dist, Stats: c.Snapshot()}
}

// PBBS runs the handwritten deterministic level-synchronous BFS on nthreads
// threads. Per level it (1) proposes parents for undiscovered neighbors
// with an atomic write-min and (2) commits the minimum proposer, so the
// output tree is a pure function of the graph — the "determinism by
// construction" technique the PBBS codes use (§4.1).
func PBBS(g *graph.CSR, src, nthreads int) *Result {
	n := g.N()
	dist := make([]uint32, n)
	parent := make([]uint32, n)
	cand := make([]atomic.Uint32, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = Inf
		cand[i].Store(Inf)
	}
	col := stats.NewCollector(nthreads)
	col.Start()
	dist[src] = 0
	parent[src] = uint32(src)
	frontier := []uint32{uint32(src)}
	level := uint32(0)
	// Per-block next-frontier buffers, concatenated in block order so the
	// frontier sequence itself is deterministic.
	for len(frontier) > 0 {
		blocks := nthreads
		if blocks > len(frontier) {
			blocks = len(frontier)
		}
		nextBufs := make([][]uint32, blocks)
		// Phase 1: propose parents via write-min.
		para.ForBlocked(blocks, len(frontier), func(b, lo, hi int) {
			ops := 0
			for _, u := range frontier[lo:hi] {
				for _, v := range g.Neighbors(int(u)) {
					if dist[v] != Inf {
						continue
					}
					// writeMin(cand[v], u)
					for {
						cur := cand[v].Load()
						ops++
						if u >= cur {
							break
						}
						if cand[v].CompareAndSwap(cur, u) {
							ops++
							break
						}
					}
				}
			}
			col.AtomicOp(b, ops)
		})
		// Phase 2: commit minima and build the next frontier.
		para.ForBlocked(blocks, len(frontier), func(b, lo, hi int) {
			var buf []uint32
			for _, u := range frontier[lo:hi] {
				for _, v := range g.Neighbors(int(u)) {
					// cand[v] == u implies v was undiscovered in
					// phase 1 of this level and u is its unique
					// minimum proposer (node ids appear in at
					// most one frontier, so stale candidates
					// can never equal a current frontier node).
					if cand[v].Load() != u {
						continue
					}
					dist[v] = level + 1
					parent[v] = u
					buf = append(buf, v)
				}
				col.Commit(b)
			}
			nextBufs[b] = buf
		})
		// Deterministic parallel frontier packing (block order).
		frontier = scan.Pack(nextBufs, nthreads)
		level++
		col.Round(len(frontier), len(frontier))
	}
	col.Stop()
	return &Result{Dist: dist, Parent: parent, Stats: col.Snapshot()}
}

// node is the Galois variants' per-node state.
type node struct {
	galois.Lockable
	dist uint32
}

// Galois runs the Lonestar-style data-driven BFS under the given scheduler
// options. A task expands one node: it acquires the node and its neighbors,
// relaxes every improvable edge in its commit phase, and creates an
// expansion task for each improved neighbor. All decisions — including
// which tasks to create — derive from acquired state, so under DIG
// scheduling the entire task DAG is deterministic.
//
// The variant runs with a FIFO worklist hint (see galois.WithFIFO): with
// LIFO order the speculative scheduler would label nodes with long
// DFS-path distances first and then spend most of its time correcting them.
func Galois(g *graph.CSR, src int, opts ...galois.Option) *Result {
	n := g.N()
	nodes := make([]node, n)
	for i := range nodes {
		nodes[i].dist = Inf
	}
	nodes[src].dist = 0

	opts = append([]galois.Option{galois.WithFIFO()}, opts...)
	st := galois.ForEach([]uint32{uint32(src)}, func(ctx *galois.Ctx[uint32], u uint32) {
		nu := &nodes[u]
		ctx.Acquire(&nu.Lockable)
		d := nu.dist
		var improved []uint32
		for _, v := range g.Neighbors(int(u)) {
			nv := &nodes[v]
			ctx.Acquire(&nv.Lockable)
			if nv.dist > d+1 {
				improved = append(improved, v)
			}
		}
		if len(improved) == 0 {
			return
		}
		ctx.OnCommit(func(c *galois.Ctx[uint32]) {
			for _, v := range improved {
				nodes[v].dist = d + 1
				c.Push(v)
			}
		})
	}, opts...)

	dist := make([]uint32, n)
	for i := range nodes {
		dist[i] = nodes[i].dist
	}
	return &Result{Dist: dist, Stats: st}
}
