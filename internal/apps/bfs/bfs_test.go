package bfs

import (
	"testing"

	"galois"
	"galois/internal/coredet"
	"galois/internal/graph"
)

func testGraph() *graph.CSR {
	return graph.Symmetrize(graph.RandomKOut(5000, 5, 42))
}

func TestSeqOnChain(t *testing.T) {
	g := graph.Chain(10)
	r := Seq(g, 0)
	for i, d := range r.Dist {
		if d != uint32(i) {
			t.Fatalf("dist[%d] = %d", i, d)
		}
	}
}

func TestSeqUnreachable(t *testing.T) {
	// Two disconnected chains.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 2)
	r := Seq(b.Build(), 0)
	if r.Dist[2] != Inf || r.Dist[3] != Inf {
		t.Fatal("disconnected nodes should be Inf")
	}
	if r.Dist[1] != 1 {
		t.Fatalf("dist[1] = %d", r.Dist[1])
	}
}

func TestPBBSMatchesSeqDistances(t *testing.T) {
	g := testGraph()
	want := Seq(g, 0)
	for _, threads := range []int{1, 2, 8} {
		got := PBBS(g, 0, threads)
		for v := range want.Dist {
			if got.Dist[v] != want.Dist[v] {
				t.Fatalf("threads=%d: dist[%d] = %d, want %d", threads, v, got.Dist[v], want.Dist[v])
			}
		}
	}
}

func TestPBBSDeterministicTree(t *testing.T) {
	// The parent tree — not just distances — must be identical across
	// thread counts: that is the "determinism by construction" claim.
	g := testGraph()
	ref := PBBS(g, 0, 1).Fingerprint()
	for _, threads := range []int{2, 4, 8} {
		if got := PBBS(g, 0, threads).Fingerprint(); got != ref {
			t.Fatalf("threads=%d: fingerprint %x != %x", threads, got, ref)
		}
	}
}

func TestPBBSParentsValid(t *testing.T) {
	g := testGraph()
	r := PBBS(g, 0, 4)
	for v := range r.Parent {
		if r.Dist[v] == Inf {
			if r.Parent[v] != Inf {
				t.Fatalf("unreached node %d has parent", v)
			}
			continue
		}
		if v == 0 {
			continue
		}
		p := r.Parent[v]
		if r.Dist[p]+1 != r.Dist[v] {
			t.Fatalf("parent edge (%d->%d) not a tree edge: %d vs %d", p, v, r.Dist[p], r.Dist[v])
		}
	}
}

func TestGaloisNondetMatchesSeq(t *testing.T) {
	g := testGraph()
	want := Seq(g, 0)
	for _, threads := range []int{1, 4, 8} {
		got := Galois(g, 0, galois.WithThreads(threads))
		for v := range want.Dist {
			if got.Dist[v] != want.Dist[v] {
				t.Fatalf("threads=%d: dist[%d] = %d, want %d", threads, v, got.Dist[v], want.Dist[v])
			}
		}
	}
}

func TestGaloisDetMatchesSeq(t *testing.T) {
	g := testGraph()
	want := Seq(g, 0)
	for _, threads := range []int{1, 4} {
		got := Galois(g, 0, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		for v := range want.Dist {
			if got.Dist[v] != want.Dist[v] {
				t.Fatalf("threads=%d: dist[%d] = %d, want %d", threads, v, got.Dist[v], want.Dist[v])
			}
		}
	}
}

func TestGaloisDetPortableStats(t *testing.T) {
	// Distances are confluent, so for DIG the schedule itself — observable
	// through the exact commit count — must be thread-independent.
	g := graph.Symmetrize(graph.RandomKOut(2000, 5, 1))
	ref := Galois(g, 0, galois.WithThreads(1), galois.WithSched(galois.Deterministic))
	for _, threads := range []int{2, 8} {
		got := Galois(g, 0, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if got.Stats.Commits != ref.Stats.Commits {
			t.Fatalf("threads=%d: commits %d != %d (schedule not deterministic)",
				threads, got.Stats.Commits, ref.Stats.Commits)
		}
		if got.Stats.Rounds != ref.Stats.Rounds {
			t.Fatalf("threads=%d: rounds %d != %d", threads, got.Stats.Rounds, ref.Stats.Rounds)
		}
	}
}

func TestGaloisBaselineSchedulerMatches(t *testing.T) {
	g := graph.Symmetrize(graph.RandomKOut(2000, 5, 2))
	want := Seq(g, 0)
	got := Galois(g, 0, galois.WithThreads(4),
		galois.WithSched(galois.Deterministic), galois.WithoutContinuation())
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got.Dist[v], want.Dist[v])
		}
	}
}

func TestFingerprintSensitive(t *testing.T) {
	g := testGraph()
	a := Seq(g, 0)
	b := Seq(g, 1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different sources produced identical fingerprints")
	}
}

func TestGaloisOnGrid(t *testing.T) {
	g := graph.Grid2D(30)
	want := Seq(g, 0)
	got := Galois(g, 0, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got.Dist[v], want.Dist[v])
		}
	}
}

func TestPThreadMatchesSeq(t *testing.T) {
	g := graph.Symmetrize(graph.RandomKOut(2000, 5, 4))
	want := Seq(g, 0)
	for _, enabled := range []bool{false, true} {
		for _, threads := range []int{1, 4} {
			rt := coredet.New(enabled, 2000)
			got := PThread(g, 0, threads, rt)
			for v := range want.Dist {
				if got.Dist[v] != want.Dist[v] {
					t.Fatalf("enabled=%v threads=%d: dist[%d] = %d, want %d",
						enabled, threads, v, got.Dist[v], want.Dist[v])
				}
			}
			if enabled && rt.SyncOps() == 0 {
				t.Fatal("pthread bfs performed no sync ops under coredet")
			}
		}
	}
}

func TestPThreadSyncHeavy(t *testing.T) {
	// The paper's Figure 6 premise: pthread bfs does at least one sync
	// op per edge.
	g := graph.Symmetrize(graph.RandomKOut(1000, 5, 5))
	rt := coredet.New(true, 2000)
	PThread(g, 0, 4, rt)
	if rt.SyncOps() < uint64(g.M()) {
		t.Fatalf("sync ops %d < edges %d", rt.SyncOps(), g.M())
	}
}
