package bfs

import (
	"galois/internal/coredet"
	"galois/internal/graph"
)

// PThread is the "modified PBBS" non-deterministic pthread-style BFS the
// paper runs under CoreDet (§5.2): level-synchronous, with threads claiming
// frontier chunks from a shared cursor, racing to claim undiscovered
// neighbors with compare-and-swap, appending discoveries to a shared next
// frontier through an atomic tail, and a barrier per level. Every edge
// costs an atomic operation — the fine-grain synchronization profile that
// makes CoreDet-class schedulers collapse in Figure 6.
func PThread(g *graph.CSR, src, nthreads int, rt *coredet.Runtime) *Result {
	n := g.N()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = int64(Inf)
	}
	frontier := make([]int64, 0, n)
	next := make([]int64, n)
	var nextTail int64
	var cursor int64
	barrier := coredet.NewBarrier(nthreads)

	dist[src] = 0
	frontier = append(frontier, int64(src))
	level := int64(0)

	rt.Run(nthreads, func(t *coredet.Thread) {
		for {
			// Claim frontier chunks.
			const chunk = 16
			for {
				start := t.AtomicAdd(&cursor, chunk) - chunk
				if start >= int64(len(frontier)) {
					break
				}
				end := min(start+chunk, int64(len(frontier)))
				for _, u := range frontier[start:end] {
					for _, v := range g.Neighbors(int(u)) {
						t.Work(4)
						if t.AtomicCAS(&dist[v], int64(Inf), level+1) {
							slot := t.AtomicAdd(&nextTail, 1) - 1
							next[slot] = int64(v)
						}
					}
					t.Work(8)
				}
			}
			t.BarrierWait(barrier)
			// Thread 0 swaps frontiers.
			if t.ID() == 0 {
				frontier = append(frontier[:0], next[:nextTail]...)
				nextTail = 0
				cursor = 0
				level++
				t.Work(int64(len(frontier)))
			}
			t.BarrierWait(barrier)
			if len(frontier) == 0 {
				return
			}
		}
	})

	out := make([]uint32, n)
	for i, d := range dist {
		out[i] = uint32(d)
	}
	return &Result{Dist: out}
}
