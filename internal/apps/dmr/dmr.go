// Package dmr implements the paper's Delaunay mesh refinement benchmark
// (§4.1): iteratively fix triangles whose minimum angle is below 30° by
// inserting circumcenters (or splitting encroached boundary segments), in
// four variants:
//
//   - Seq: sequential refinement with a simple worklist.
//   - Galois (non-deterministic or DIG-scheduled): the Lonestar cavity
//     formulation — one task per bad triangle; the task builds its cavity
//     (acquiring everything it reads or rewires), retriangulates at
//     commit, and pushes newly created bad triangles.
//   - PBBS: handwritten determinism — rounds of deterministic reservations
//     over the current bad-triangle set.
//
// Unlike bfs/dt, the refined mesh genuinely depends on the schedule (which
// circumcenters get inserted), so the deterministic variants' fingerprints
// are the paper's portability claim made observable.
package dmr

import (
	"galois"
	"galois/internal/cachesim"
	"galois/internal/detres"
	"galois/internal/geom"
	"galois/internal/mesh"
	"galois/internal/rng"
	"galois/internal/stats"
)

// Quality is the refinement criterion.
type Quality struct {
	// CosBound is the cosine of the minimum-angle bound (default 30°).
	CosBound float64
	// MinEdge2 is the squared shortest-edge floor below which triangles
	// are never refined — a safety valve, since 30° exceeds Ruppert's
	// termination guarantee (default 1e-10, i.e. edges of 1e-5 in the
	// unit square).
	MinEdge2 float64
}

// DefaultQuality is the paper's 30-degree bound with the default floor.
func DefaultQuality() Quality {
	return Quality{CosBound: geom.Cos30, MinEdge2: 1e-10}
}

// MakeInput builds the benchmark input: a Delaunay mesh of n random points
// in the (slightly shrunken, so no input point sits on the boundary) unit
// square, guarded by boundary segments — the paper's "Delaunay triangulated
// mesh of randomly selected points from the unit square".
func MakeInput(n int, seed uint64) *mesh.Element {
	pts := geom.UniformPoints(n, seed)
	for i := range pts {
		pts[i].X = 0.02 + 0.96*pts[i].X
		pts[i].Y = 0.02 + 0.96*pts[i].Y
	}
	root, _ := mesh.BuildDelaunaySeq(mesh.NewUnitSquare(), geom.BRIO(pts, seed+1))
	return root
}

// Result is the output of one refinement run.
type Result struct {
	// Root is a live element of the refined mesh.
	Root *mesh.Element
	// Stats describes the run.
	Stats stats.Stats
}

// Fingerprint canonically hashes the refined mesh.
func (r *Result) Fingerprint() uint64 { return mesh.Fingerprint(r.Root, false) }

// Check validates the refined mesh: structurally conforming, locally
// Delaunay, and free of bad triangles.
func (r *Result) Check(q Quality) error {
	if err := mesh.CheckConforming(r.Root); err != nil {
		return err
	}
	if err := mesh.CheckDelaunay(r.Root); err != nil {
		return err
	}
	return mesh.CheckNoBad(r.Root, q.CosBound, q.MinEdge2)
}

// badTriangles scans the mesh for triangles violating q.
func badTriangles(root *mesh.Element, q Quality) []*mesh.Element {
	var bad []*mesh.Element
	for _, e := range mesh.Triangles(root) {
		if e.IsBad(q.CosBound, q.MinEdge2) {
			bad = append(bad, e)
		}
	}
	return bad
}

// refineOnce performs the read phase for one bad triangle: skip if stale,
// otherwise build the cavity. Shared by all variants.
func refineOnce(el *mesh.Element, q Quality, acq mesh.Acquirer) *mesh.Cavity {
	acq(el)
	if el.Dead || !el.IsBad(q.CosBound, q.MinEdge2) {
		return nil
	}
	return mesh.BuildRefinement(el, acq)
}

// applyCavity retriangulates and returns the follow-up work: new bad
// triangles, plus the original triangle if a segment split left it alive
// and still bad.
func applyCavity(el *mesh.Element, cav *mesh.Cavity, q Quality) (followUp []*mesh.Element) {
	created := cav.Retriangulate(nil)
	for _, t := range created {
		if !t.IsSegment() && t.IsBad(q.CosBound, q.MinEdge2) {
			followUp = append(followUp, t)
		}
	}
	if !el.Dead && el.IsBad(q.CosBound, q.MinEdge2) {
		followUp = append(followUp, el)
	}
	return followUp
}

// Seq refines the mesh rooted at root sequentially.
func Seq(root *mesh.Element, q Quality) *Result {
	col := stats.NewCollector(1)
	col.Start()
	work := badTriangles(root, q)
	last := root
	for len(work) > 0 {
		el := work[len(work)-1]
		work = work[:len(work)-1]
		cav := refineOnce(el, q, mesh.NoAcquire)
		if cav == nil {
			col.Commit(0)
			continue
		}
		work = append(work, applyCavity(el, cav, q)...)
		last = cav.Members[len(cav.Members)-1]
		col.Commit(0)
	}
	col.Stop()
	for last.Dead {
		last = last.Repl
	}
	return &Result{Root: last, Stats: col.Snapshot()}
}

// Galois refines the mesh under the given scheduler options.
func Galois(root *mesh.Element, q Quality, opts ...galois.Option) *Result {
	initial := badTriangles(root, q)
	anchor := root
	st := galois.ForEach(initial, func(ctx *galois.Ctx[*mesh.Element], el *mesh.Element) {
		cav := refineOnce(el, q, func(e *mesh.Element) { ctx.Acquire(&e.Lockable) })
		if cav == nil {
			return // stale or unrefinable: no-op commit
		}
		ctx.OnCommit(func(c *galois.Ctx[*mesh.Element]) {
			for _, nb := range applyCavity(el, cav, q) {
				c.Push(nb)
			}
		})
	}, opts...)
	for anchor.Dead {
		anchor = anchor.Repl
	}
	return &Result{Root: anchor, Stats: st}
}

// pbbsStep adapts refinement to deterministic reservations over one round's
// bad-triangle set.
type pbbsStep struct {
	q     Quality
	items []*mesh.Element
	cav   []*mesh.Cavity
	// next collects follow-up work per item (merged after the round in
	// item order, keeping the next round's order deterministic).
	next [][]*mesh.Element
}

func (s *pbbsStep) Reserve(i int, r *detres.Reserver) bool {
	cav := refineOnce(s.items[i], s.q, func(e *mesh.Element) { r.Reserve(&e.Lockable) })
	s.cav[i] = cav
	return cav != nil
}

func (s *pbbsStep) Commit(i int) {
	s.next[i] = applyCavity(s.items[i], s.cav[i], s.q)
}

// PBBS refines the mesh with rounds of deterministic reservations on
// nthreads threads; granularity is the fixed PBBS round size.
func PBBS(root *mesh.Element, q Quality, nthreads, granularity int) *Result {
	return PBBSProfiled(root, q, nthreads, granularity, nil)
}

// PBBSProfiled is PBBS with an optional locality tracer (paper §5.4).
func PBBSProfiled(root *mesh.Element, q Quality, nthreads, granularity int, pro *cachesim.Tracer) *Result {
	work := badTriangles(root, q)
	anchor := root
	var agg stats.Stats
	shuffle := rng.New(0x9e3779b9)
	for len(work) > 0 {
		// PBBS permutes the work items: neighbors in discovery order
		// are spatial neighbors, and a prefix of them would conflict
		// wholesale. The permutation is seeded, hence deterministic.
		shuffle.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
		step := &pbbsStep{
			q:     q,
			items: work,
			cav:   make([]*mesh.Cavity, len(work)),
			next:  make([][]*mesh.Element, len(work)),
		}
		st := detres.For(len(work), step, detres.Options{
			Threads: nthreads, Granularity: granularity, Profile: pro,
		})
		agg = agg.Add(st)
		work = work[:0]
		for _, f := range step.next {
			work = append(work, f...)
		}
	}
	for anchor.Dead {
		anchor = anchor.Repl
	}
	return &Result{Root: anchor, Stats: agg}
}
