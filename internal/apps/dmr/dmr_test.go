package dmr

import (
	"testing"

	"galois"
	"galois/internal/mesh"
)

func smallInput(t *testing.T) *mesh.Element {
	t.Helper()
	root := MakeInput(300, 3)
	if err := mesh.CheckConforming(root); err != nil {
		t.Fatalf("input mesh broken: %v", err)
	}
	return root
}

func TestMakeInputHasBadTriangles(t *testing.T) {
	root := smallInput(t)
	if len(badTriangles(root, DefaultQuality())) == 0 {
		t.Fatal("random input mesh has no bad triangles — benchmark would be trivial")
	}
}

func TestSeqRefines(t *testing.T) {
	q := DefaultQuality()
	r := Seq(smallInput(t), q)
	if err := r.Check(q); err != nil {
		t.Fatal(err)
	}
	if r.Stats.Commits == 0 {
		t.Fatal("no work recorded")
	}
}

func TestGaloisNondetRefines(t *testing.T) {
	q := DefaultQuality()
	for _, threads := range []int{1, 4, 8} {
		r := Galois(smallInput(t), q, galois.WithThreads(threads))
		if err := r.Check(q); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
	}
}

func TestGaloisDetPortable(t *testing.T) {
	// The refined mesh depends on the schedule; under DIG it must be
	// bit-identical for every thread count — the paper's portability
	// property on its flagship application.
	q := DefaultQuality()
	ref := Galois(smallInput(t), q, galois.WithThreads(1), galois.WithSched(galois.Deterministic))
	if err := ref.Check(q); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, threads := range []int{2, 4, 8} {
		r := Galois(smallInput(t), q, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if err := r.Check(q); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := r.Fingerprint(); got != want {
			t.Fatalf("threads=%d: refined mesh differs (%x vs %x)", threads, got, want)
		}
		if r.Stats.Commits != ref.Stats.Commits || r.Stats.Rounds != ref.Stats.Rounds {
			t.Fatalf("threads=%d: schedule differs", threads)
		}
	}
}

func TestGaloisNondetRunsVary(t *testing.T) {
	// Sanity check of the premise: without DIG, different runs are free
	// to (and on multiple threads essentially always do) produce
	// different refined meshes. If ten runs all collide, something is
	// suspiciously synchronized.
	q := DefaultQuality()
	first := Galois(smallInput(t), q, galois.WithThreads(8)).Fingerprint()
	varied := false
	for i := 0; i < 9 && !varied; i++ {
		varied = Galois(smallInput(t), q, galois.WithThreads(8)).Fingerprint() != first
	}
	if !varied {
		t.Log("warning: 10 non-deterministic runs produced identical meshes; not failing, but unexpected")
	}
}

func TestContinuationTransparency(t *testing.T) {
	q := DefaultQuality()
	with := Galois(smallInput(t), q, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	without := Galois(smallInput(t), q, galois.WithThreads(4), galois.WithSched(galois.Deterministic),
		galois.WithoutContinuation())
	if with.Fingerprint() != without.Fingerprint() {
		t.Fatal("continuation optimization changed the refined mesh")
	}
}

func TestPBBSRefinesAndIsPortable(t *testing.T) {
	q := DefaultQuality()
	ref := PBBS(smallInput(t), q, 1, 256)
	if err := ref.Check(q); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, threads := range []int{2, 8} {
		r := PBBS(smallInput(t), q, threads, 256)
		if err := r.Check(q); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if r.Fingerprint() != want {
			t.Fatalf("threads=%d: PBBS refined mesh differs", threads)
		}
	}
}

func TestSegmentSplitsHappen(t *testing.T) {
	// Refinement of a boundary-heavy input must split segments: verify
	// the final mesh has more segments than the initial four.
	q := DefaultQuality()
	r := Seq(MakeInput(50, 9), q)
	nseg := 0
	for _, e := range mesh.Live(r.Root) {
		if e.IsSegment() {
			nseg++
		}
	}
	if nseg <= 4 {
		t.Skipf("no segment splits on this input (segments=%d)", nseg)
	}
	if err := r.Check(q); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRepeats(t *testing.T) {
	q := DefaultQuality()
	a := Galois(smallInput(t), q, galois.WithThreads(8), galois.WithSched(galois.Deterministic))
	b := Galois(smallInput(t), q, galois.WithThreads(8), galois.WithSched(galois.Deterministic))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("repeated deterministic runs differ")
	}
}
