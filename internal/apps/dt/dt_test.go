package dt

import (
	"testing"

	"galois"
	"galois/internal/geom"
	"galois/internal/mesh"
)

const testSeed = 5

func testPoints(n int) []geom.Point { return geom.UniformPoints(n, 77) }

func TestSeqProducesDelaunay(t *testing.T) {
	r := Seq(testPoints(800), testSeed)
	if r.Inserted != 800 {
		t.Fatalf("inserted %d of 800", r.Inserted)
	}
	if err := mesh.CheckConforming(r.Root); err != nil {
		t.Fatal(err)
	}
	if err := mesh.CheckDelaunay(r.Root); err != nil {
		t.Fatal(err)
	}
}

func TestGaloisNondetMatchesSeq(t *testing.T) {
	pts := testPoints(600)
	want := Seq(pts, testSeed).Fingerprint()
	for _, threads := range []int{1, 4, 8} {
		r := Galois(pts, testSeed, galois.WithThreads(threads))
		if err := mesh.CheckConforming(r.Root); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if err := mesh.CheckDelaunay(r.Root); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := r.Fingerprint(); got != want {
			// The DT of points in general position is unique, so
			// even the non-deterministic variant must match.
			t.Fatalf("threads=%d: fingerprint %x != seq %x", threads, got, want)
		}
	}
}

func TestGaloisDetMatchesSeqAndIsPortable(t *testing.T) {
	pts := testPoints(600)
	want := Seq(pts, testSeed).Fingerprint()
	var refStats galois.Stats
	for i, threads := range []int{1, 2, 4, 8} {
		r := Galois(pts, testSeed, galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if err := mesh.CheckDelaunay(r.Root); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := r.Fingerprint(); got != want {
			t.Fatalf("threads=%d: fingerprint mismatch", threads)
		}
		// The schedule itself (commits, rounds) must be identical
		// across thread counts.
		if i == 0 {
			refStats = r.Stats
		} else {
			if r.Stats.Commits != refStats.Commits || r.Stats.Rounds != refStats.Rounds ||
				r.Stats.Aborts != refStats.Aborts {
				t.Fatalf("threads=%d: schedule differs: %v vs %v", threads, r.Stats, refStats)
			}
		}
	}
}

func TestGaloisBaselineSchedulerSameSchedule(t *testing.T) {
	pts := testPoints(400)
	with := Galois(pts, testSeed, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	without := Galois(pts, testSeed, galois.WithThreads(4), galois.WithSched(galois.Deterministic),
		galois.WithoutContinuation())
	if with.Fingerprint() != without.Fingerprint() {
		t.Fatal("continuation optimization changed the mesh")
	}
	if with.Stats.Commits != without.Stats.Commits || with.Stats.Rounds != without.Stats.Rounds {
		t.Fatalf("continuation optimization changed the schedule: %v vs %v", with.Stats, without.Stats)
	}
}

func TestPBBSMatchesSeqAndIsPortable(t *testing.T) {
	pts := testPoints(600)
	want := Seq(pts, testSeed).Fingerprint()
	var ref *Result
	for _, threads := range []int{1, 2, 8} {
		r := PBBS(pts, testSeed, threads, 64)
		if err := mesh.CheckDelaunay(r.Root); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := r.Fingerprint(); got != want {
			t.Fatalf("threads=%d: fingerprint mismatch", threads)
		}
		if ref == nil {
			ref = r
		} else if r.Stats.Commits != ref.Stats.Commits || r.Stats.Rounds != ref.Stats.Rounds {
			t.Fatalf("threads=%d: reservation schedule differs", threads)
		}
	}
}

func TestDuplicatePointsSkipped(t *testing.T) {
	pts := testPoints(200)
	pts = append(pts, pts[:50]...) // 50 duplicates
	r := Galois(pts, testSeed, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	if r.Inserted != 200 {
		t.Fatalf("inserted %d, want 200", r.Inserted)
	}
	if err := mesh.CheckDelaunay(r.Root); err != nil {
		t.Fatal(err)
	}
	want := Seq(testPoints(200), testSeed).Fingerprint()
	if r.Fingerprint() != want {
		t.Fatal("duplicates changed the triangulation")
	}
}

func TestTriangleCount(t *testing.T) {
	// 2n+1 triangles for n interior points (counting super triangles),
	// so n points yield 2n+1 total live triangles and the interior count
	// excludes those touching super vertices.
	pts := testPoints(300)
	r := Galois(pts, testSeed, galois.WithThreads(4))
	if got := mesh.CountTriangles(r.Root, false); got != 2*300+1 {
		t.Fatalf("total triangles = %d, want %d", got, 601)
	}
}

func TestGaloisDetAbortsExist(t *testing.T) {
	// Early rounds inspect many tasks that all conflict on the tiny
	// mesh, so the deterministic variant must record aborts even on one
	// thread (paper §5.1).
	r := Galois(testPoints(300), testSeed, galois.WithThreads(1), galois.WithSched(galois.Deterministic))
	if r.Stats.Aborts == 0 {
		t.Fatal("expected aborts in single-threaded DIG dt")
	}
}
