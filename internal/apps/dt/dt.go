// Package dt implements the paper's Delaunay triangulation benchmark
// (§4.1): incremental Bowyer–Watson insertion with biased randomized
// insertion order (BRIO), in four variants:
//
//   - Seq: sequential incremental insertion in BRIO order.
//   - Galois (non-deterministic or DIG-scheduled): one task per point. A
//     task finds its point's triangle through the point-location-by-
//     association structure, builds the insertion cavity (acquiring every
//     element it reads or rewires), and retriangulates at commit.
//   - PBBS: handwritten determinism via deterministic reservations
//     (internal/detres), the structure of the PBBS incremental dt code.
//
// The Delaunay triangulation of points in general position is unique, so
// every variant produces the same mesh — which the tests exploit — while
// the paper's determinism property concerns the schedule: the DIG and PBBS
// variants execute identical rounds for every thread count.
package dt

import (
	"sync/atomic"

	"galois"
	"galois/internal/cachesim"
	"galois/internal/detres"
	"galois/internal/geom"
	"galois/internal/mesh"
	"galois/internal/rng"
	"galois/internal/stats"
)

// Result is the output of one triangulation run.
type Result struct {
	// Root is a live element of the final mesh.
	Root *mesh.Element
	// Inserted is the number of points actually inserted (duplicates of
	// existing vertices are skipped).
	Inserted int
	// Stats describes the run.
	Stats stats.Stats
}

// Fingerprint canonically hashes the triangulation (super triangles
// excluded).
func (r *Result) Fingerprint() uint64 { return mesh.Fingerprint(r.Root, true) }

// Seq triangulates pts sequentially in BRIO order.
func Seq(pts []geom.Point, seed uint64) *Result {
	ordered := geom.BRIO(pts, seed)
	col := stats.NewCollector(1)
	col.Start()
	root := mesh.NewSuperTriangle()
	hint := root
	inserted := 0
	for _, p := range ordered {
		var ok bool
		hint, ok = mesh.InsertPointSeq(hint, p)
		if ok {
			inserted++
		}
		col.Commit(0)
	}
	col.Stop()
	return &Result{Root: hint, Inserted: inserted, Stats: col.Snapshot()}
}

// assoc is the shared point-location-by-association state: pointTri[i]
// points at (a recent ancestor of) the triangle containing point i.
type assoc struct {
	pts      []geom.Point
	pointTri []atomic.Pointer[mesh.Element]
	inserted atomic.Int64
}

func newAssoc(pts []geom.Point) (*assoc, *mesh.Element) {
	root := mesh.NewSuperTriangle()
	a := &assoc{pts: pts, pointTri: make([]atomic.Pointer[mesh.Element], len(pts))}
	root.Assoc = make([]int32, len(pts))
	for i := range pts {
		root.Assoc[i] = int32(i)
		a.pointTri[i].Store(root)
	}
	return a, root
}

// insertBody performs the read phase for point i: resolve the association
// hint, locate, and build the cavity. It returns nil if the point is a
// duplicate vertex.
func (a *assoc) insertBody(i int32, acq mesh.Acquirer) *mesh.Cavity {
	start := a.pointTri[i].Load()
	tri, onVertex := mesh.Locate(start, a.pts[i], acq)
	if onVertex {
		return nil
	}
	return mesh.BuildInsertion(tri, a.pts[i], acq)
}

// commitCavity applies a built cavity and refreshes the association of
// every point that lived in the killed triangles.
func (a *assoc) commitCavity(cav *mesh.Cavity) {
	created := cav.Retriangulate(a.pts)
	for _, e := range created {
		for _, idx := range e.Assoc {
			a.pointTri[idx].Store(e)
		}
	}
	a.inserted.Add(1)
}

func (a *assoc) root() *mesh.Element {
	e := a.pointTri[0].Load()
	for e.Dead {
		e = e.Repl
	}
	return e
}

// Galois triangulates pts under the given scheduler options; the insertion
// order (task priority under DIG) is the BRIO order derived from seed.
func Galois(pts []geom.Point, seed uint64, opts ...galois.Option) *Result {
	ordered := geom.BRIO(pts, seed)
	a, _ := newAssoc(ordered)
	items := make([]int32, len(ordered))
	for i := range items {
		items[i] = int32(i)
	}
	st := galois.ForEach(items, func(ctx *galois.Ctx[int32], i int32) {
		cav := a.insertBody(i, func(e *mesh.Element) { ctx.Acquire(&e.Lockable) })
		if cav == nil {
			return // duplicate point: no-op commit
		}
		ctx.OnCommit(func(*galois.Ctx[int32]) { a.commitCavity(cav) })
	}, opts...)
	return &Result{Root: a.root(), Inserted: int(a.inserted.Load()), Stats: st}
}

// pbbsStep adapts the association-based insertion to deterministic
// reservations.
type pbbsStep struct {
	a   *assoc
	cav []*mesh.Cavity // per item, built at reserve time
}

func (s *pbbsStep) Reserve(i int, r *detres.Reserver) bool {
	cav := s.a.insertBody(int32(i), func(e *mesh.Element) { r.Reserve(&e.Lockable) })
	s.cav[i] = cav
	return cav != nil
}

func (s *pbbsStep) Commit(i int) { s.a.commitCavity(s.cav[i]) }

// PBBS triangulates pts with the handwritten deterministic-reservations
// algorithm on nthreads threads. granularity is the PBBS codes' fixed round
// size (<=0 for the default).
func PBBS(pts []geom.Point, seed uint64, nthreads, granularity int) *Result {
	return PBBSProfiled(pts, seed, nthreads, granularity, nil)
}

// PBBSProfiled is PBBS with an optional locality tracer (paper §5.4).
func PBBSProfiled(pts []geom.Point, seed uint64, nthreads, granularity int, pro *cachesim.Tracer) *Result {
	// The PBBS dt randomizes its points offline (§4.1) rather than using
	// BRIO: under round-based reservations, spatially-sorted prefixes
	// would conflict wholesale (the §3.3 locality observation), so the
	// handwritten code wants a spatially *uniform* prefix.
	ordered := append([]geom.Point(nil), pts...)
	rng.New(seed).Shuffle(len(ordered), func(i, j int) { ordered[i], ordered[j] = ordered[j], ordered[i] })
	a, _ := newAssoc(ordered)
	step := &pbbsStep{a: a, cav: make([]*mesh.Cavity, len(ordered))}
	st := detres.For(len(ordered), step, detres.Options{
		Threads:     nthreads,
		Granularity: granularity,
		// Incremental insertion supports parallelism proportional to
		// the current mesh size; PBBS's dt ramps its prefix the same
		// way.
		Ramp:    true,
		Profile: pro,
	})
	return &Result{Root: a.root(), Inserted: int(a.inserted.Load()), Stats: st}
}
