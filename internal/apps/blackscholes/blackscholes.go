// Package blackscholes implements the PARSEC blackscholes kernel (paper
// §4.1, §5.2): closed-form Black–Scholes option pricing over a synthetic
// portfolio. It is the paper's representative coarse-grain, low-
// synchronization workload: threads price disjoint slices and synchronize
// only at start and end, which is why CoreDet-style deterministic
// scheduling barely hurts it (Figure 6).
//
// The pricing math is the real Black–Scholes formula (not a stub), so the
// kernel's arithmetic intensity is authentic; only the input portfolio is
// synthetic.
package blackscholes

import (
	"math"

	"galois/internal/coredet"
	"galois/internal/rng"
)

// Option is one European option.
type Option struct {
	Spot     float64 // current underlying price
	Strike   float64
	Rate     float64 // risk-free rate
	Vol      float64 // volatility
	Years    float64 // time to maturity
	IsPut    bool
	Expected float64 // filled by pricing
}

// GenPortfolio generates n options with PARSEC-like parameter ranges.
func GenPortfolio(n int, seed uint64) []Option {
	r := rng.New(seed)
	opts := make([]Option, n)
	for i := range opts {
		opts[i] = Option{
			Spot:   50 + 100*r.Float64(),
			Strike: 50 + 100*r.Float64(),
			Rate:   0.01 + 0.09*r.Float64(),
			Vol:    0.05 + 0.55*r.Float64(),
			Years:  0.1 + 2.0*r.Float64(),
			IsPut:  r.Uint64()&1 == 1,
		}
	}
	return opts
}

// cndf is the cumulative normal distribution function, computed via the
// complementary error function.
func cndf(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Price returns the Black–Scholes value of o.
func Price(o Option) float64 {
	sqrtT := math.Sqrt(o.Years)
	d1 := (math.Log(o.Spot/o.Strike) + (o.Rate+0.5*o.Vol*o.Vol)*o.Years) / (o.Vol * sqrtT)
	d2 := d1 - o.Vol*sqrtT
	discount := o.Strike * math.Exp(-o.Rate*o.Years)
	if o.IsPut {
		return discount*cndf(-d2) - o.Spot*cndf(-d1)
	}
	return o.Spot*cndf(d1) - discount*cndf(d2)
}

// workPerOption is the logical instruction cost reported per option priced
// (exp/log/erfc-dominated, a few hundred scalar ops).
const workPerOption = 300

// Run prices the portfolio on rt with nthreads threads, mirroring PARSEC's
// static partitioning and rounds: the PARSEC kernel reprices the portfolio
// `rounds` times. It returns the sum of all prices (a stable checksum).
func Run(opts []Option, rounds, nthreads int, rt *coredet.Runtime) float64 {
	partials := make([]float64, nthreads)
	rt.Run(nthreads, func(t *coredet.Thread) {
		id := t.ID()
		lo := len(opts) * id / nthreads
		hi := len(opts) * (id + 1) / nthreads
		var sum float64
		for round := 0; round < rounds; round++ {
			for i := lo; i < hi; i++ {
				p := Price(opts[i])
				opts[i].Expected = p
				sum += p
				t.Work(workPerOption)
			}
		}
		partials[id] = sum
	})
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}
