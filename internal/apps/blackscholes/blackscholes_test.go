package blackscholes

import (
	"math"
	"testing"

	"galois/internal/coredet"
)

func TestPriceKnownValue(t *testing.T) {
	// Standard textbook case: S=100, K=100, r=5%, sigma=20%, T=1.
	call := Option{Spot: 100, Strike: 100, Rate: 0.05, Vol: 0.2, Years: 1}
	got := Price(call)
	if math.Abs(got-10.4506) > 1e-3 {
		t.Fatalf("call price = %v, want ~10.4506", got)
	}
	put := call
	put.IsPut = true
	if math.Abs(Price(put)-5.5735) > 1e-3 {
		t.Fatalf("put price = %v, want ~5.5735", Price(put))
	}
}

func TestPutCallParity(t *testing.T) {
	for _, o := range GenPortfolio(200, 1) {
		call := o
		call.IsPut = false
		put := o
		put.IsPut = true
		lhs := Price(call) - Price(put)
		rhs := o.Spot - o.Strike*math.Exp(-o.Rate*o.Years)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(rhs)) {
			t.Fatalf("put-call parity violated: %v vs %v for %+v", lhs, rhs, o)
		}
	}
}

func TestPriceBounds(t *testing.T) {
	for _, o := range GenPortfolio(500, 2) {
		p := Price(o)
		if p < -1e-9 {
			t.Fatalf("negative price %v for %+v", p, o)
		}
		if !o.IsPut && p > o.Spot {
			t.Fatalf("call worth more than spot: %v > %v", p, o.Spot)
		}
		if o.IsPut && p > o.Strike {
			t.Fatalf("put worth more than strike: %v > %v", p, o.Strike)
		}
	}
}

func TestRunMatchesSerial(t *testing.T) {
	opts := GenPortfolio(5000, 3)
	var want float64
	for _, o := range opts {
		want += Price(o)
	}
	for _, enabled := range []bool{false, true} {
		for _, threads := range []int{1, 4} {
			got := Run(GenPortfolio(5000, 3), 1, threads, coredet.New(enabled, 0))
			if math.Abs(got-want) > 1e-6*math.Abs(want) {
				t.Fatalf("enabled=%v threads=%d: checksum %v != %v", enabled, threads, got, want)
			}
		}
	}
}

func TestCoreDetOverheadIsModest(t *testing.T) {
	// blackscholes is the workload CoreDet handles well: sync ops should
	// be tiny relative to work (only quantum boundaries).
	rt := coredet.New(true, 0)
	Run(GenPortfolio(20000, 4), 1, 4, rt)
	if rt.SyncOps() != 0 {
		t.Fatalf("blackscholes performed %d serialized sync ops, want 0", rt.SyncOps())
	}
	if rt.Quanta() == 0 {
		t.Fatal("no quanta recorded — Work accounting broken")
	}
}
