// Package sssp implements single-source shortest paths — a Lonestar-suite
// irregular benchmark beyond the paper's four, included as a library
// extension because it is the canonical client of the OBIM priority
// worklist (delta-stepping-style scheduling): the non-deterministic
// scheduler converges orders of magnitude faster when relaxations drain in
// approximate distance order, while correctness — and the deterministic
// schedule — never depend on it.
//
//   - Seq: Dijkstra with a binary heap (baseline and checker).
//   - Galois (non-deterministic or DIG-scheduled): data-driven chaotic
//     relaxation; a task expands one node, relaxing its incident edges
//     under acquired locks. The non-deterministic variant runs under OBIM
//     with priority = distance/delta.
//
// Distances are the unique fixed point, so every variant agrees — which
// the tests assert.
package sssp

import (
	"container/heap"
	"hash/fnv"
	"math"
	"sync/atomic"

	"galois"
	"galois/internal/graph"
	"galois/internal/stats"
)

// Inf is the distance of unreachable nodes.
const Inf = math.MaxUint64

// Result is the output of one run.
type Result struct {
	// Dist[v] is the shortest distance from the source (Inf if
	// unreachable).
	Dist []uint64
	// Stats describes the run.
	Stats stats.Stats
}

// Fingerprint hashes the distance array.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, d := range r.Dist {
		for i := range buf {
			buf[i] = byte(d >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// pqItem is a heap entry for Dijkstra.
type pqItem struct {
	v uint32
	d uint64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Seq runs Dijkstra from src.
func Seq(g *graph.Weighted, src int) *Result {
	col := stats.NewCollector(1)
	col.Start()
	n := g.N()
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	q := &pq{{v: uint32(src), d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d != dist[it.v] {
			continue // stale entry
		}
		col.Commit(0)
		lo, _ := g.EdgeRange(int(it.v))
		for i, w := range g.Neighbors(int(it.v)) {
			nd := it.d + uint64(g.W[lo+int64(i)])
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(q, pqItem{v: w, d: nd})
			}
		}
	}
	col.Stop()
	return &Result{Dist: dist, Stats: col.Snapshot()}
}

// node is the Galois variants' per-node state. dist is atomic because the
// OBIM priority hint reads it outside the node's lock (e.g. when an aborted
// task is requeued); all correctness-relevant reads and writes happen under
// the acquired lock, the atomicity only keeps the hint race-clean.
type node struct {
	galois.Lockable
	dist atomic.Uint64
}

// Options tunes the Galois variants.
type Options struct {
	// Delta is the OBIM bucket width for the non-deterministic
	// scheduler's priority (0 disables OBIM). A pure performance knob.
	Delta uint64
	// Levels is the OBIM bucket count (0 = default).
	Levels int
}

// DefaultOptions uses delta = maxWeight (the classic heuristic) with 512
// buckets.
func DefaultOptions(maxWeight uint32) Options {
	return Options{Delta: uint64(maxWeight), Levels: 512}
}

// Galois runs data-driven SSSP under the given scheduler options. A task
// expands one node: it acquires the node and its neighbors, relaxes every
// improvable edge at commit, and creates expansion tasks for improved
// neighbors (the same shape as the paper's bfs, with weights).
func Galois(g *graph.Weighted, src int, o Options, opts ...galois.Option) *Result {
	n := g.N()
	nodes := make([]node, n)
	for i := range nodes {
		nodes[i].dist.Store(Inf)
	}
	nodes[src].dist.Store(0)

	if o.Delta > 0 {
		levels := o.Levels
		if levels <= 0 {
			levels = 512
		}
		delta := o.Delta
		opts = append([]galois.Option{galois.WithPriority(func(u uint32) int {
			// Racy read as a hint only: the executing task
			// re-reads under its lock.
			d := nodes[u].dist.Load()
			if d == Inf {
				return levels - 1
			}
			return int(d / delta)
		}, levels)}, opts...)
	} else {
		opts = append([]galois.Option{galois.WithFIFO()}, opts...)
	}

	st := galois.ForEach([]uint32{uint32(src)}, func(ctx *galois.Ctx[uint32], u uint32) {
		nu := &nodes[u]
		ctx.Acquire(&nu.Lockable)
		d := nu.dist.Load()
		if d == Inf {
			return // defensive: tasks are only created for reached nodes
		}
		lo, _ := g.EdgeRange(int(u))
		type relax struct {
			v  uint32
			nd uint64
		}
		var improved []relax
		for i, v := range g.Neighbors(int(u)) {
			nv := &nodes[v]
			ctx.Acquire(&nv.Lockable)
			nd := d + uint64(g.W[lo+int64(i)])
			if nd < nv.dist.Load() {
				improved = append(improved, relax{v: v, nd: nd})
			}
		}
		if len(improved) == 0 {
			return
		}
		ctx.OnCommit(func(c *galois.Ctx[uint32]) {
			for _, r := range improved {
				nodes[r.v].dist.Store(r.nd)
				c.Push(r.v)
			}
		})
	}, opts...)

	dist := make([]uint64, n)
	for i := range nodes {
		dist[i] = nodes[i].dist.Load()
	}
	return &Result{Dist: dist, Stats: st}
}
