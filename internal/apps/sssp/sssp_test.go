package sssp

import (
	"testing"

	"galois"
	"galois/internal/graph"
)

func testGraph() *graph.Weighted {
	return graph.RandomWeighted(3000, 4, 100, 42)
}

func TestSeqOnHandBuilt(t *testing.T) {
	// 0 -1- 1 -1- 2, plus a heavy direct edge 0 -5- 2.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	csr := graph.Symmetrize(b.Build())
	w := make([]uint32, csr.M())
	setW := func(u int, v uint32, x uint32) {
		lo, _ := csr.EdgeRange(u)
		for i, n := range csr.Neighbors(u) {
			if n == v {
				w[lo+int64(i)] = x
			}
		}
	}
	setW(0, 1, 1)
	setW(1, 0, 1)
	setW(1, 2, 1)
	setW(2, 1, 1)
	setW(0, 2, 5)
	setW(2, 0, 5)
	g := &graph.Weighted{CSR: csr, W: w}
	r := Seq(g, 0)
	if r.Dist[0] != 0 || r.Dist[1] != 1 || r.Dist[2] != 2 {
		t.Fatalf("dist = %v", r.Dist)
	}
}

func TestGaloisNondetMatchesDijkstra(t *testing.T) {
	g := testGraph()
	want := Seq(g, 0)
	for _, threads := range []int{1, 4, 8} {
		got := Galois(g, 0, DefaultOptions(100), galois.WithThreads(threads))
		for v := range want.Dist {
			if got.Dist[v] != want.Dist[v] {
				t.Fatalf("threads=%d: dist[%d] = %d, want %d", threads, v, got.Dist[v], want.Dist[v])
			}
		}
	}
}

func TestGaloisWithoutOBIMMatches(t *testing.T) {
	g := testGraph()
	want := Seq(g, 0).Fingerprint()
	got := Galois(g, 0, Options{}, galois.WithThreads(4)).Fingerprint()
	if got != want {
		t.Fatal("FIFO-mode sssp differs from dijkstra")
	}
}

func TestGaloisDetMatchesAndIsPortable(t *testing.T) {
	g := testGraph()
	want := Seq(g, 0)
	var ref galois.Stats
	for i, threads := range []int{1, 2, 8} {
		got := Galois(g, 0, DefaultOptions(100),
			galois.WithThreads(threads), galois.WithSched(galois.Deterministic))
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("threads=%d: distances differ from dijkstra", threads)
		}
		if i == 0 {
			ref = got.Stats
		} else if got.Stats.Commits != ref.Commits || got.Stats.Rounds != ref.Rounds {
			t.Fatalf("threads=%d: schedule differs (%d/%d vs %d/%d)",
				threads, got.Stats.Commits, got.Stats.Rounds, ref.Commits, ref.Rounds)
		}
	}
}

func TestOBIMReducesWastedWork(t *testing.T) {
	// Priority scheduling should commit far fewer tasks than plain LIFO
	// on a weighted graph (fewer corrections of bad labels). Compare
	// task counts, which are timing-independent.
	g := graph.RandomWeighted(2000, 4, 1000, 7)
	obim := Galois(g, 0, DefaultOptions(1000), galois.WithThreads(1))
	fifo := Galois(g, 0, Options{}, galois.WithThreads(1))
	if obim.Stats.Commits > fifo.Stats.Commits*2 {
		t.Fatalf("obim commits %d vs fifo %d — priority order not helping",
			obim.Stats.Commits, fifo.Stats.Commits)
	}
	t.Logf("commits: obim=%d fifo=%d", obim.Stats.Commits, fifo.Stats.Commits)
}

func TestUnreachableNodes(t *testing.T) {
	// Two components: nodes in the far component stay at Inf.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	csr := graph.Symmetrize(b.Build())
	g := &graph.Weighted{CSR: csr, W: make([]uint32, csr.M())}
	for i := range g.W {
		g.W[i] = 1
	}
	r := Galois(g, 0, Options{}, galois.WithThreads(2))
	if r.Dist[2] != Inf || r.Dist[3] != Inf {
		t.Fatal("unreachable nodes have finite distance")
	}
	if r.Dist[1] != 1 {
		t.Fatalf("dist[1] = %d", r.Dist[1])
	}
}

func TestContinuationTransparency(t *testing.T) {
	g := graph.RandomWeighted(1000, 4, 50, 9)
	a := Galois(g, 0, Options{}, galois.WithThreads(4), galois.WithSched(galois.Deterministic))
	b := Galois(g, 0, Options{}, galois.WithThreads(4), galois.WithSched(galois.Deterministic),
		galois.WithoutContinuation())
	if a.Fingerprint() != b.Fingerprint() || a.Stats.Commits != b.Stats.Commits {
		t.Fatal("continuation optimization changed sssp execution")
	}
}
