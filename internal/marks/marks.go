// Package marks implements the mark words the Galois runtime associates with
// abstract memory locations (paper §2, Figure 3).
//
// Every abstract location that tasks may conflict on embeds a Lockable. A
// task attempt is represented by a Rec carrying the task's scheduling id.
// The non-deterministic scheduler uses compare-and-set acquisition
// (writeMarks in Figure 1b); the deterministic scheduler uses priority
// acquisition where the highest id wins (writeMarksMax in Figure 3).
//
// The paper's mark value 0 — "unowned" — is represented by a nil *Rec.
package marks

import "sync/atomic"

// Rec identifies one task attempt. Mark words point at the Rec of the task
// currently owning the location.
type Rec struct {
	// ID is the task's deterministic scheduling id. IDs are totally
	// ordered and strictly positive; ownership contests are resolved
	// toward the maximum id. For the non-deterministic scheduler the id
	// only needs to be unique.
	ID uint64
	// Prevented is set when another task stole one of this task's marks
	// (or held one first with a higher id), meaning this task cannot be
	// part of the round's independent set. It implements the flag
	// described for the continuation optimization in §3.3.
	Prevented atomic.Bool
}

// Reset prepares a Rec for reuse in a new round with the given id.
func (r *Rec) Reset(id uint64) {
	r.ID = id
	r.Prevented.Store(false)
}

// Lockable is a mark word for one abstract location. The zero value is an
// unowned mark. Data structures embed Lockable in every element that can be
// part of a task neighborhood (graph nodes, mesh triangles, ...).
type Lockable struct {
	mark atomic.Pointer[Rec]
}

// Holder returns the Rec currently owning the location, or nil.
func (l *Lockable) Holder() *Rec { return l.mark.Load() }

// TryAcquire attempts CAS acquisition for rec, as in Figure 1b's writeMarks.
// It returns (true, ops) on success or if rec already owns the location;
// (false, ops) if another task owns it. ops is the number of atomic
// operations performed, for the Figure 5 accounting.
func (l *Lockable) TryAcquire(rec *Rec) (ok bool, ops int) {
	cur := l.mark.Load()
	if cur == rec {
		return true, 1
	}
	if cur != nil {
		return false, 1
	}
	if l.mark.CompareAndSwap(nil, rec) {
		return true, 2
	}
	// Lost the race; re-check in case we raced with ourselves via an
	// aliased acquire (cannot happen: one goroutine per task attempt),
	// so this is a genuine conflict.
	return false, 2
}

// Release clears the mark if rec owns it, as in the unlock path of
// Figure 1b. Returns the number of atomic operations performed.
func (l *Lockable) Release(rec *Rec) (ops int) {
	if l.mark.Load() == rec {
		l.mark.CompareAndSwap(rec, nil)
		return 2
	}
	return 1
}

// WriteMax implements writeMarksMax from Figure 3 for a single location:
// install rec unless the current owner has a higher id. Unlike TryAcquire it
// never gives up early — determinism requires every task to contribute its
// id to the max computation at every location in its neighborhood.
//
// Returns:
//
//	owned  — whether rec holds the location after the call,
//	stole  — the Rec displaced by rec (nil if none), whose Prevented flag
//	         the caller must set (continuation optimization, §3.3),
//	ops    — atomic operations performed.
func (l *Lockable) WriteMax(rec *Rec) (owned bool, stole *Rec, ops int) {
	for {
		cur := l.mark.Load()
		ops++
		if cur == rec {
			return true, nil, ops
		}
		if cur != nil && cur.ID >= rec.ID {
			// A higher-priority task holds the mark; rec loses
			// this location. (Equal ids cannot occur across
			// distinct Recs because ids are unique per round.)
			return false, nil, ops
		}
		if l.mark.CompareAndSwap(cur, rec) {
			ops++
			return true, cur, ops
		}
		ops++
		// Contention: someone else updated the mark; retry. The
		// final outcome (max id) is unaffected by the interleaving.
	}
}

// ClearIfOwner clears the mark if rec owns it. Used at the end of a
// deterministic round; only the final owner's CAS succeeds, so every mark is
// cleared exactly once. Returns the number of atomic operations performed.
func (l *Lockable) ClearIfOwner(rec *Rec) (ops int) {
	if l.mark.Load() == rec {
		l.mark.CompareAndSwap(rec, nil)
		return 2
	}
	return 1
}

// OwnedBy reports whether rec currently owns the location.
func (l *Lockable) OwnedBy(rec *Rec) bool { return l.mark.Load() == rec }
