package marks

import (
	"sync"
	"testing"
	"testing/quick"

	"galois/internal/rng"
)

func TestTryAcquireRelease(t *testing.T) {
	var l Lockable
	a := &Rec{ID: 1}
	b := &Rec{ID: 2}

	if ok, _ := l.TryAcquire(a); !ok {
		t.Fatal("acquire of free mark failed")
	}
	if ok, _ := l.TryAcquire(a); !ok {
		t.Fatal("re-acquire by owner failed")
	}
	if ok, _ := l.TryAcquire(b); ok {
		t.Fatal("acquire of held mark succeeded")
	}
	l.Release(a)
	if l.Holder() != nil {
		t.Fatal("release did not clear mark")
	}
	if ok, _ := l.TryAcquire(b); !ok {
		t.Fatal("acquire after release failed")
	}
}

func TestReleaseByNonOwnerIsNoop(t *testing.T) {
	var l Lockable
	a := &Rec{ID: 1}
	b := &Rec{ID: 2}
	l.TryAcquire(a)
	l.Release(b)
	if l.Holder() != a {
		t.Fatal("release by non-owner changed the mark")
	}
}

func TestWriteMaxBasics(t *testing.T) {
	var l Lockable
	lo := &Rec{ID: 1}
	hi := &Rec{ID: 2}

	owned, stole, _ := l.WriteMax(lo)
	if !owned || stole != nil {
		t.Fatalf("WriteMax on free mark: owned=%v stole=%v", owned, stole)
	}
	owned, stole, _ = l.WriteMax(hi)
	if !owned || stole != lo {
		t.Fatalf("higher id should steal: owned=%v stole=%v", owned, stole)
	}
	owned, stole, _ = l.WriteMax(lo)
	if owned || stole != nil {
		t.Fatalf("lower id should lose: owned=%v stole=%v", owned, stole)
	}
	if l.Holder() != hi {
		t.Fatal("final holder is not the max id")
	}
	// Owner re-acquire is idempotent.
	owned, stole, _ = l.WriteMax(hi)
	if !owned || stole != nil {
		t.Fatalf("owner re-acquire: owned=%v stole=%v", owned, stole)
	}
}

func TestClearIfOwner(t *testing.T) {
	var l Lockable
	a := &Rec{ID: 1}
	b := &Rec{ID: 2}
	l.WriteMax(a)
	l.WriteMax(b)
	l.ClearIfOwner(a) // a no longer owns; must be a no-op
	if l.Holder() != b {
		t.Fatal("ClearIfOwner by non-owner cleared the mark")
	}
	l.ClearIfOwner(b)
	if l.Holder() != nil {
		t.Fatal("ClearIfOwner by owner did not clear")
	}
}

// TestWriteMaxPermutationInvariance is the determinism core of the paper's
// Figure 3: the final mark must be the maximum id regardless of the order
// in which tasks write, including under true concurrency.
func TestWriteMaxPermutationInvariance(t *testing.T) {
	property := func(ids []uint64, seed uint64) bool {
		if len(ids) == 0 {
			return true
		}
		recs := make([]*Rec, len(ids))
		var maxID uint64
		for i, id := range ids {
			id = id%1000 + 1 // nonzero, with collisions avoided below
			recs[i] = &Rec{ID: id}
		}
		// De-duplicate ids (the protocol requires uniqueness).
		seen := map[uint64]bool{}
		for _, r := range recs {
			for seen[r.ID] {
				r.ID++
			}
			seen[r.ID] = true
			if r.ID > maxID {
				maxID = r.ID
			}
		}
		var l Lockable
		order := rng.New(seed).Perm(len(recs))
		for _, i := range order {
			l.WriteMax(recs[i])
		}
		return l.Holder() != nil && l.Holder().ID == maxID
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMaxConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 200
	var l Lockable
	recs := make([][]*Rec, goroutines)
	for g := range recs {
		recs[g] = make([]*Rec, perG)
		for i := range recs[g] {
			recs[g][i] = &Rec{ID: uint64(g*perG+i) + 1}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, r := range recs[g] {
				l.WriteMax(r)
			}
		}(g)
	}
	wg.Wait()
	want := uint64(goroutines * perG)
	if h := l.Holder(); h == nil || h.ID != want {
		t.Fatalf("final holder id = %v, want %d", h, want)
	}
}

// TestWriteMaxEqualIDConcurrent races writeMarksMax calls that carry the
// SAME Rec (equal id) against each other and against distinct lower ids.
// Re-acquisition by the owner must always succeed, must never report the
// rec as stolen from itself, and the equal-id race must not corrupt the
// final max: the highest id still ends up holding the mark.
func TestWriteMaxEqualIDConcurrent(t *testing.T) {
	const goroutines = 8
	const iters = 500
	for trial := 0; trial < 20; trial++ {
		var l Lockable
		top := &Rec{ID: 1000}
		lower := make([]*Rec, goroutines)
		for i := range lower {
			lower[i] = &Rec{ID: uint64(i) + 1}
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					// Even goroutines hammer the shared (equal-id) rec;
					// odd ones contend with their own lower id.
					rec := top
					if g%2 == 1 {
						rec = lower[g]
					}
					owned, stole, _ := l.WriteMax(rec)
					if stole == rec {
						t.Error("WriteMax reported a rec stolen from itself")
						return
					}
					if rec == top && !owned {
						t.Error("equal-id re-acquisition by the max rec failed")
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if h := l.Holder(); h != top {
			t.Fatalf("trial %d: final holder %v, want the max-id rec", trial, h)
		}
	}
}

// TestPreventedWhenMarkLostLater pins the §3.3 protocol edge case: a task
// marks a location, then loses it to a higher id later in the same round.
// The stealer (not the loser) is responsible for setting the loser's
// Prevented flag, the loser's validation must fail, and round-end clearing
// must leave every mark empty exactly once — the loser's ClearIfOwner on
// the stolen location must be a no-op.
func TestPreventedWhenMarkLostLater(t *testing.T) {
	var l1, l2 Lockable
	loser := &Rec{ID: 1}
	stealer := &Rec{ID: 2}

	// The loser inspects its neighborhood {l1, l2} first and owns both.
	for _, l := range []*Lockable{&l1, &l2} {
		owned, stole, _ := l.WriteMax(loser)
		if !owned || stole != nil {
			t.Fatalf("loser failed to mark an empty location: owned=%v stole=%v", owned, stole)
		}
	}

	// Later in the round the higher-id task touches l2 and displaces it.
	owned, stole, _ := l2.WriteMax(stealer)
	if !owned || stole != loser {
		t.Fatalf("stealer: owned=%v stole=%v, want owned with the loser displaced", owned, stole)
	}
	stole.Prevented.Store(true) // stealer's obligation

	if !loser.Prevented.Load() {
		t.Fatal("loser not marked Prevented after losing a location it had marked")
	}
	if stealer.Prevented.Load() {
		t.Fatal("stealer spuriously Prevented")
	}

	// Commit-phase validation: the loser still owns l1 but not l2, so it
	// must not pass validation of its full neighborhood.
	if !l1.OwnedBy(loser) {
		t.Fatal("loser lost l1, which nobody contested")
	}
	if l2.OwnedBy(loser) {
		t.Fatal("loser still validates on the stolen location")
	}

	// Round end: every task clears its whole neighborhood; only the final
	// owner's clear may take effect.
	l1.ClearIfOwner(loser)
	l2.ClearIfOwner(loser) // no-op: stealer owns it
	if l2.Holder() != stealer {
		t.Fatal("loser's clear removed the stealer's mark")
	}
	l2.ClearIfOwner(stealer)
	if l1.Holder() != nil || l2.Holder() != nil {
		t.Fatal("marks not empty after round-end clearing")
	}

	// A fresh round reuses the Recs; Reset must drop the Prevented state.
	loser.Reset(7)
	if loser.Prevented.Load() {
		t.Fatal("Reset kept the Prevented flag")
	}
}

// TestWriteMaxPreventedCover verifies the continuation-optimization
// invariant: after all writes, every rec that does not own all its marks is
// either self-prevented (saw a higher id) or was stolen from (Prevented set
// by the stealer) — so "Prevented clear" == "owns everything it touched".
func TestWriteMaxPreventedCover(t *testing.T) {
	const nlocs = 20
	const ntasks = 50
	r := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		locs := make([]Lockable, nlocs)
		recs := make([]*Rec, ntasks)
		touched := make([][]int, ntasks)
		for i := range recs {
			recs[i] = &Rec{ID: uint64(i) + 1}
			n := 1 + r.Intn(4)
			for j := 0; j < n; j++ {
				touched[i] = append(touched[i], r.Intn(nlocs))
			}
		}
		var wg sync.WaitGroup
		for i := range recs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for _, li := range touched[i] {
					owned, stole, _ := locs[li].WriteMax(recs[i])
					if owned {
						if stole != nil {
							stole.Prevented.Store(true)
						}
					} else {
						recs[i].Prevented.Store(true)
					}
				}
			}(i)
		}
		wg.Wait()
		for i := range recs {
			ownsAll := true
			for _, li := range touched[i] {
				if !locs[li].OwnedBy(recs[i]) {
					ownsAll = false
					break
				}
			}
			if ownsAll == recs[i].Prevented.Load() {
				t.Fatalf("trial %d task %d: ownsAll=%v prevented=%v",
					trial, i, ownsAll, recs[i].Prevented.Load())
			}
		}
	}
}
