package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchSchema identifies the benchmark-trajectory file format. Bump on
// incompatible field changes so cross-PR diffs stay meaningful. v2 adds
// allocation columns (allocs_per_op, bytes_per_op) and the run mode
// ("" = fresh state per run, "engine" = reused engine); v1 files are still
// readable (their new fields decode as zero/absent).
const BenchSchema = "galois-bench/v2"

// benchSchemaV1 is the previous format, accepted on read so benchdiff can
// compare across the schema bump.
const benchSchemaV1 = "galois-bench/v1"

// BenchEntry is one measured app × variant × threads cell. Everything
// except WallNS is a pure function of the input under the deterministic
// scheduler, so diffs of trajectory files isolate performance movement
// from behavior movement: a fingerprint or round-count change is a
// semantic regression, a WallNS change is the perf trajectory.
type BenchEntry struct {
	App     string `json:"app"`
	Variant string `json:"variant"` // seq | g-n | g-d | g-dnc | pbbs
	Sched   string `json:"sched"`   // nondet | det | seq | pbbs
	Threads int    `json:"threads"`
	Scale   string `json:"scale"`
	WallNS  int64  `json:"wall_ns"`
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
	Rounds  uint64 `json:"rounds"`
	// CommitRatio is commits / (commits + aborts).
	CommitRatio float64 `json:"commit_ratio"`
	// MeanWindow is the mean DIG window size (0 for nondet runs).
	MeanWindow float64 `json:"mean_window"`
	// Fingerprint is the run's output fingerprint, in hex.
	Fingerprint string `json:"fingerprint"`
	// Mode distinguishes run-state handling: "" means fresh state per run
	// (the only mode v1 files have, so keys stay comparable across the
	// schema bump), "engine" means the run reused a warm engine, and
	// "serve" means the cell was measured end-to-end through galoisd —
	// WallNS is then request latency, not scheduler wall time, so wall
	// comparison across modes is meaningless; the fingerprint contract is
	// mode-independent. "serve-mix" is a serve measurement under the
	// repeat-rate workload knob (see RepeatPermille).
	Mode string `json:"mode,omitempty"`
	// Clients is the closed-loop client concurrency of a Mode "serve"
	// measurement (0 for in-process modes). Part of the key: the same
	// cell under different load levels is a different latency
	// measurement.
	Clients int `json:"clients,omitempty"`
	// CacheHitPermille is the fraction (‰) of the cell's requests served
	// from galoisd's result cache. Informational: benchdiff reports its
	// movement but never gates on it — hit rate is a property of the
	// workload mix, not of the code under test. The fingerprint contract
	// is unaffected: cached responses carry the same fingerprint a fresh
	// run would, and the differ polices exactly that.
	CacheHitPermille int `json:"cache_hit_permille,omitempty"`
	// RepeatPermille is the configured repeat rate (‰) of a Mode
	// "serve-mix" workload (galoisload -repeat-rate): the probability that
	// a request re-draws a hot spec instead of a never-seen one. Part of
	// the key — the same cell under different repeat rates is a different
	// latency measurement.
	RepeatPermille int `json:"repeat_permille,omitempty"`
	// Backends is the backend count of a Mode "serve-cluster" measurement
	// (galoisload -targets/-router): the cell was driven through a
	// galoisrouter spreading requests over that many galoisd instances.
	// Part of the key — the same cell at different cluster sizes is a
	// different latency measurement. The fingerprint contract is
	// unaffected: routing is behavior-free, so serve-cluster entries join
	// the cross-mode fingerprint pool against serve and in-process entries
	// of the same cell.
	Backends int `json:"backends,omitempty"`
	// Policy is the routing policy of a Mode "serve-cluster" measurement
	// (round-robin | least-loaded | consistent-hash | weighted). Part of
	// the key: policy changes which backend serves each request — a pure
	// performance choice whose latency is worth tracking separately — but
	// never the fingerprint.
	Policy string `json:"policy,omitempty"`
	// ChainLen is the receipt-chain length of a Mode "serve-session"
	// entry (galoisload -sessions): genesis plus the mutation batches the
	// measured session ran. Part of the key — the fingerprint of a
	// serve-session entry is the session's final chain hash, which is a
	// pure function of (init spec, batch sequence), so entries are only
	// comparable at equal chain length.
	ChainLen int `json:"chain_len,omitempty"`
	// AllocsPerOp/BytesPerOp are heap allocations and bytes per run
	// (runtime mallocs, measured around the whole run; 0 = not measured).
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  uint64 `json:"bytes_per_op,omitempty"`
	// Barriers is the measured number of barrier crossings the run's round
	// loop performed (deterministic scheduler only; counted at the
	// crossings themselves). Unlike wall time it is deterministic per
	// (input, threads), so its movement is a structural change to the
	// round pipeline, not noise.
	Barriers uint64 `json:"barriers,omitempty"`
	// BarriersPerRound is Barriers / Rounds — the coordination-overhead
	// headline (2.0 is the semantic floor for all-parallel rounds).
	BarriersPerRound float64 `json:"barriers_per_round,omitempty"`
	// PhaseInspectNS/PhaseExecuteNS/PhaseCoordinateNS are the run's total
	// wall time per DIG round phase. Observational (clock-derived), so
	// they carry measurement noise like WallNS does.
	PhaseInspectNS    int64 `json:"phase_inspect_ns,omitempty"`
	PhaseExecuteNS    int64 `json:"phase_execute_ns,omitempty"`
	PhaseCoordinateNS int64 `json:"phase_coordinate_ns,omitempty"`
	// ScalingEfficiency is wall_t1 / (threads × wall_tN) for entries with
	// threads > 1 whose cell has a threads=1 sibling (same app, variant,
	// scale, mode, load shape) in the same document — 1.0 is perfect
	// linear scaling, 1/threads means t_N wall equals t_1 wall. Computed
	// by the emitter (FillScalingEfficiency); 0 = no sibling, not
	// computed. benchdiff hard-fails on >10% drops at matched keys so
	// scaling cannot silently backslide.
	ScalingEfficiency float64 `json:"scaling_efficiency,omitempty"`
}

// Key identifies an entry for cross-file comparison. Entries measured
// through the serving layer additionally key on client concurrency;
// in-process entries keep their historical keys.
func (e BenchEntry) Key() string {
	k := fmt.Sprintf("%s/%s/t%d/%s/%s", e.App, e.Variant, e.Threads, e.Scale, e.Mode)
	if e.Clients > 0 {
		k += fmt.Sprintf("/c%d", e.Clients)
	}
	if e.RepeatPermille > 0 {
		k += fmt.Sprintf("/r%d", e.RepeatPermille)
	}
	if e.ChainLen > 0 {
		k += fmt.Sprintf("/l%d", e.ChainLen)
	}
	if e.Backends > 0 {
		k += fmt.Sprintf("/b%d", e.Backends)
	}
	if e.Policy != "" {
		k += "/" + e.Policy
	}
	return k
}

// ModelessKey identifies the deterministic cell an entry measures,
// ignoring how it was measured (mode, client load). Deterministic-variant
// entries sharing a ModelessKey must agree on fingerprint no matter the
// mode — that is the portability claim the trajectory files police.
func (e BenchEntry) ModelessKey() string {
	return fmt.Sprintf("%s/%s/t%d/%s", e.App, e.Variant, e.Threads, e.Scale)
}

// Bench is a benchmark-trajectory file: one JSON document per PR
// (BENCH_<n>.json) holding the entries measured at that point.
type Bench struct {
	Schema  string       `json:"schema"`
	Entries []BenchEntry `json:"entries"`
}

// NewBench returns an empty trajectory document.
func NewBench() *Bench { return &Bench{Schema: BenchSchema} }

// Add appends one entry.
func (b *Bench) Add(e BenchEntry) { b.Entries = append(b.Entries, e) }

// Sort orders entries by (app, variant, threads, scale) so serialized
// files diff cleanly across PRs regardless of measurement order.
func (b *Bench) Sort() {
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.App != c.App {
			return a.App < c.App
		}
		if a.Variant != c.Variant {
			return a.Variant < c.Variant
		}
		if a.Threads != c.Threads {
			return a.Threads < c.Threads
		}
		if a.Scale != c.Scale {
			return a.Scale < c.Scale
		}
		if a.Mode != c.Mode {
			return a.Mode < c.Mode
		}
		if a.Clients != c.Clients {
			return a.Clients < c.Clients
		}
		if a.RepeatPermille != c.RepeatPermille {
			return a.RepeatPermille < c.RepeatPermille
		}
		if a.ChainLen != c.ChainLen {
			return a.ChainLen < c.ChainLen
		}
		if a.Backends != c.Backends {
			return a.Backends < c.Backends
		}
		return a.Policy < c.Policy
	})
}

// siblingKey identifies an entry's thread-scaling family: everything Key()
// keys on except the thread count. Entries sharing a siblingKey are the
// same measurement at different thread counts.
func (e BenchEntry) siblingKey() string {
	t := e.Threads
	e.Threads = 0
	k := e.Key()
	e.Threads = t
	return k
}

// FillScalingEfficiency computes ScalingEfficiency for every entry with
// Threads > 1 that has a Threads == 1 sibling (same app, variant, scale,
// mode, load shape) in this document: wall_t1 / (threads × wall_tN).
// Entries without a sibling, or with an unmeasured wall on either side,
// keep 0. Idempotent — recomputes from wall columns each call.
func (b *Bench) FillScalingEfficiency() {
	t1 := make(map[string]int64)
	for _, e := range b.Entries {
		if e.Threads == 1 && e.WallNS > 0 {
			t1[e.siblingKey()] = e.WallNS
		}
	}
	for i := range b.Entries {
		e := &b.Entries[i]
		if e.Threads <= 1 || e.WallNS <= 0 {
			e.ScalingEfficiency = 0
			continue
		}
		base, ok := t1[e.siblingKey()]
		if !ok {
			e.ScalingEfficiency = 0
			continue
		}
		e.ScalingEfficiency = float64(base) / (float64(e.Threads) * float64(e.WallNS))
	}
}

// WriteFile serializes the document (sorted, indented, trailing newline)
// to path. Scaling-efficiency columns are (re)derived from the wall
// columns first, so emitters never fill them by hand.
func (b *Bench) WriteFile(path string) error {
	b.FillScalingEfficiency()
	b.Sort()
	if b.Schema == "" {
		b.Schema = BenchSchema
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchFile parses a trajectory file and checks its schema.
func ReadBenchFile(path string) (*Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != BenchSchema && b.Schema != benchSchemaV1 {
		return nil, fmt.Errorf("%s: schema %q, want %q (or %q)", path, b.Schema, BenchSchema, benchSchemaV1)
	}
	return &b, nil
}

// HasAllocs reports whether any entry carries allocation columns — false
// for v1-era files, letting differs skip allocation comparison against
// trajectories that never measured it.
func (b *Bench) HasAllocs() bool {
	for _, e := range b.Entries {
		if e.AllocsPerOp > 0 || e.BytesPerOp > 0 {
			return true
		}
	}
	return false
}
