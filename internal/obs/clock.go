package obs

import "time"

// clockEpoch anchors Nanotime; only differences of Nanotime values are
// meaningful.
var clockEpoch = time.Now()

// Nanotime returns a monotonic nanosecond timestamp for duration
// measurement. Wall-clock reads are confined to internal/obs (detlint's
// wallclock rule, see detlint.conf): schedulers may consume time only as
// observational data — never as an input to a scheduling decision — and
// keeping the clock behind this helper keeps that rule mechanically
// checkable in the packages that matter.
func Nanotime() int64 { return int64(time.Since(clockEpoch)) }
