package obs

import "fmt"

// Kind enumerates the event types the schedulers emit.
type Kind uint8

const (
	// KindRunStart opens a ForEach run.
	// Args: scheduler (0 nondet, 1 det), threads, initial tasks.
	KindRunStart Kind = iota
	// KindRunEnd closes a run. Args: commits, aborts, rounds.
	KindRunEnd
	// KindGenStart opens a DIG generation. Args: tasks in the generation.
	KindGenStart
	// KindGenEnd closes a generation. Args: tasks produced for the next.
	KindGenEnd
	// KindGenSort records the deterministic (id(parent), k) sort of the
	// produced tasks (§3.2). Args: tasks sorted.
	KindGenSort
	// KindRoundStart opens a DIG round. Args: window size, tasks pending
	// beyond the window.
	KindRoundStart
	// KindRoundEnd closes a round. Args: selected (attempted), committed,
	// failed.
	KindRoundEnd
	// KindWindow records one adaptive-window decision (§3.2).
	// Args: size before, size after, commit ratio in permille, grew (0/1).
	KindWindow
	// KindSuspend aggregates continuation suspensions at the failsafe
	// point for one round (§3.3). Args: tasks suspended.
	KindSuspend
	// KindResume aggregates continuation resumptions in the commit phase
	// of one round. Args: tasks resumed.
	KindResume
	// KindWorker is a non-deterministic worker's exit summary.
	// Args: commits, aborts.
	KindWorker
	// KindPhases records the measured per-round coordination cost of one
	// DIG round. Args: inspect ns, execute ns, coordinate ns, barrier
	// crossings. The durations are observational, like TS, and the
	// crossing count depends on the thread count (pipeline choice:
	// parallel rounds cross two barriers, batched serial rounds amortize
	// theirs) — so all four args are excluded from Canonical() and the
	// canonical sequence stays machine- and thread-count-invariant.
	KindPhases

	// The KindCache* events are emitted by the galoisd result cache
	// (internal/rescache), never by a scheduler run, and are observational
	// only: cache state is a function of request *arrival order*, so these
	// events make no canonical-sequence claim and must never feed a
	// fingerprint. Attach the cache to its own sink, not a run's.

	// KindCacheHit: a Get found its key.
	// Args: key prefix (low 64 bits), resident entries, resident bytes.
	KindCacheHit
	// KindCacheMiss: a Get found nothing.
	// Args: key prefix, resident entries, resident bytes.
	KindCacheMiss
	// KindCacheStore: a Put stored or replaced an entry.
	// Args: key prefix, entry size, resident bytes after.
	KindCacheStore
	// KindCacheEvict: an entry left the cache — budget pressure or an
	// explicit Remove (spot-check mismatch).
	// Args: key prefix, entry size, resident bytes after.
	KindCacheEvict
	// KindCacheCollapse: a submission joined an in-flight identical
	// execution instead of starting its own. Args: key prefix.
	KindCacheCollapse

	numKinds
)

var kindNames = [numKinds]string{
	"run-start", "run-end",
	"gen-start", "gen-end", "gen-sort",
	"round-start", "round-end", "window",
	"suspend", "resume", "worker", "phases",
	"cache-hit", "cache-miss", "cache-store", "cache-evict", "cache-collapse",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one trace record. Schedulers construct events without a
// timestamp; the sink stamps TS on emission. TS is observational only: it
// is never read by the scheduler and never part of the canonical encoding,
// so two runs of the same input produce identical canonical sequences
// regardless of machine or thread count (under the DIG scheduler).
type Event struct {
	// TS is nanoseconds since the trace started. Rendering only.
	TS int64
	// Kind selects the Args interpretation (see the Kind constants).
	Kind Kind
	// Gen is the DIG generation index (0 for non-generation events).
	Gen int32
	// Round is the global DIG round index (0 for non-round events).
	Round int32
	// Args is the kind-specific payload.
	Args [4]int64
}

// Canonical renders the event without its timestamp — the representation
// whose sequence is thread-count-invariant under the DIG scheduler. The
// run configuration (thread count in KindRunStart) is excluded too: it
// describes the machine, not the schedule.
func (e Event) Canonical() string {
	switch e.Kind {
	case KindRunStart:
		return fmt.Sprintf("run-start sched=%d items=%d", e.Args[0], e.Args[2])
	case KindWorker:
		// Worker summaries only occur under the non-deterministic
		// scheduler, where no invariance is claimed.
		return fmt.Sprintf("worker commits=%d aborts=%d", e.Args[0], e.Args[1])
	case KindPhases:
		// The payload is three wall-clock durations plus a thread-dependent
		// barrier-crossing count — observational like TS, so the canonical
		// form keeps only the event's position.
		return fmt.Sprintf("phases gen=%d round=%d", e.Gen, e.Round)
	default:
		return fmt.Sprintf("%s gen=%d round=%d args=%d,%d,%d,%d",
			e.Kind, e.Gen, e.Round, e.Args[0], e.Args[1], e.Args[2], e.Args[3])
	}
}
