package obs

import (
	"fmt"
	"time"
)

// Sink receives trace events from a scheduler. Emit is called with the
// emitting worker's thread id; implementations must support concurrent
// calls from distinct tids without synchronizing them against each other
// (the whole point is to observe without adding happens-before edges).
type Sink interface {
	Emit(tid int, ev Event)
}

// traceBuf is one thread's event buffer, padded so that two workers
// appending concurrently never share a cache line through the slice
// headers.
type traceBuf struct {
	evs []Event
	_   [64 - 24%64]byte
}

// Trace is the standard Sink: per-thread lock-free append buffers plus a
// monotonic clock for observational timestamps. Each tid's buffer is
// written only by that worker, so no locking is needed; readers (Events,
// CanonicalLines, WriteChromeTrace) must run after the traced loop has
// returned, which the scheduler's join guarantees.
type Trace struct {
	start time.Time
	bufs  []traceBuf
}

// NewTrace returns a trace sized for runs of up to `threads` workers.
// Attaching it to a run with more threads panics at loop start.
func NewTrace(threads int) *Trace {
	if threads < 1 {
		threads = 1
	}
	return &Trace{start: time.Now(), bufs: make([]traceBuf, threads)}
}

// Threads returns the number of per-thread buffers.
func (t *Trace) Threads() int { return len(t.bufs) }

// Emit implements Sink: it stamps the event with the time elapsed since
// the trace started and appends it to tid's buffer.
func (t *Trace) Emit(tid int, ev Event) {
	ev.TS = int64(time.Since(t.start))
	b := &t.bufs[tid]
	b.evs = append(b.evs, ev)
}

// Reset drops all buffered events and restarts the trace clock.
func (t *Trace) Reset() {
	for i := range t.bufs {
		t.bufs[i].evs = t.bufs[i].evs[:0]
	}
	t.start = time.Now()
}

// Len returns the total number of buffered events.
func (t *Trace) Len() int {
	n := 0
	for i := range t.bufs {
		n += len(t.bufs[i].evs)
	}
	return n
}

// Events returns a copy of all buffered events in (tid, emission) order.
// Structural DIG events all live on tid 0, so for deterministic runs this
// is exactly emission order.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, t.Len())
	for i := range t.bufs {
		out = append(out, t.bufs[i].evs...)
	}
	return out
}

// CanonicalLines renders every buffered event without timestamps, in
// (tid, emission) order. For DIG runs the result is a pure function of
// the schedule: identical across thread counts, machines and runs.
func (t *Trace) CanonicalLines() []string {
	out := make([]string, 0, t.Len())
	for i := range t.bufs {
		for _, ev := range t.bufs[i].evs {
			out = append(out, ev.Canonical())
		}
	}
	return out
}

// RoundInfo is the per-round view extracted from a trace: the quantities
// of the paper's adaptive-window discussion (§3.2).
type RoundInfo struct {
	Gen, Round int
	// Window is the number of tasks attempted (the round's window,
	// clamped to the tasks remaining).
	Window int64
	// Committed and Failed partition the attempted tasks.
	Committed, Failed int64
}

// Rounds extracts one RoundInfo per KindRoundEnd event, in round order.
func (t *Trace) Rounds() []RoundInfo {
	var out []RoundInfo
	for i := range t.bufs {
		for _, ev := range t.bufs[i].evs {
			if ev.Kind != KindRoundEnd {
				continue
			}
			out = append(out, RoundInfo{
				Gen: int(ev.Gen), Round: int(ev.Round),
				Window: ev.Args[0], Committed: ev.Args[1], Failed: ev.Args[2],
			})
		}
	}
	return out
}

// Summary renders a compact per-run digest of the trace.
func (t *Trace) Summary() string {
	var out string
	run := 0
	var rounds, gens int
	var minW, maxW int64
	for i := range t.bufs {
		for _, ev := range t.bufs[i].evs {
			switch ev.Kind {
			case KindRunStart:
				run++
				rounds, gens, minW, maxW = 0, 0, 0, 0
				sched := "nondet"
				if ev.Args[0] == 1 {
					sched = "det"
				}
				out += fmt.Sprintf("run %d: sched=%s threads=%d items=%d\n",
					run, sched, ev.Args[1], ev.Args[2])
			case KindGenStart:
				gens++
			case KindRoundEnd:
				rounds++
				if minW == 0 || ev.Args[0] < minW {
					minW = ev.Args[0]
				}
				if ev.Args[0] > maxW {
					maxW = ev.Args[0]
				}
			case KindRunEnd:
				out += fmt.Sprintf("  commits=%d aborts=%d generations=%d rounds=%d window=[%d..%d]\n",
					ev.Args[0], ev.Args[1], gens, rounds, minW, maxW)
			}
		}
	}
	return out
}
