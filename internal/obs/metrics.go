package obs

import (
	"fmt"
	"io"
	"sync"

	"galois/internal/stats"
)

// Registry holds named counters and histograms for one or more scheduler
// runs. Registration (Counter, Histogram) takes a lock; recording (Add,
// Observe) is lock-free per-thread, merged on read — the same
// no-perturbation design as internal/stats, which the registry subsumes:
// a run's final stats counters are published into it by the engine via
// PublishStats, and the histograms extend them with the per-round and
// per-acquire distributions stats cannot express.
type Registry struct {
	threads int

	mu      sync.Mutex
	byName  map[string]any // *Counter or *Histogram; lookup only, never ranged
	ordered []any          // registration order, for deterministic rendering
}

// NewRegistry returns a registry for runs of up to `threads` workers.
// Attaching it to a run with more threads panics at loop start.
func NewRegistry(threads int) *Registry {
	if threads < 1 {
		threads = 1
	}
	return &Registry{threads: threads, byName: make(map[string]any)}
}

// Threads returns the worker capacity the registry was sized for.
func (r *Registry) Threads() int { return r.threads }

// counterCell is one thread's count, padded against false sharing.
type counterCell struct {
	v uint64
	_ [64 - 8%64]byte
}

// Counter is a monotonically increasing per-thread counter.
type Counter struct {
	name  string
	cells []counterCell
}

// Add adds n on thread tid. Only tid may call this concurrently, so no
// synchronization is needed (single-writer per cell; readers merge after
// the run's join).
func (c *Counter) Add(tid int, n uint64) { c.cells[tid].v += n }

// Value merges all per-thread cells.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].v
	}
	return sum
}

// Histogram is a fixed-bucket per-thread histogram: values v are counted
// in the first bucket whose upper bound is >= v, with an implicit
// overflow bucket past the last bound. Bounds are fixed at registration,
// so recording never allocates.
type Histogram struct {
	name   string
	bounds []int64
	cells  [][]uint64 // [thread][bucket]
}

// Observe records v on thread tid (single-writer per row, like Counter).
func (h *Histogram) Observe(tid int, v int64) {
	row := h.cells[tid]
	for i, b := range h.bounds {
		if v <= b {
			row[i]++
			return
		}
	}
	row[len(h.bounds)]++
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Counts merges the per-thread rows; the last entry is the overflow
// bucket.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	for _, row := range h.cells {
		for i, v := range row {
			out[i] += v
		}
	}
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 {
	var sum uint64
	for _, v := range h.Counts() {
		sum += v
	}
	return sum
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different metric type panics.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as a histogram", name))
		}
		return c
	}
	c := &Counter{name: name, cells: make([]counterCell, r.threads)}
	r.byName[name] = c
	r.ordered = append(r.ordered, c)
	return c
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (ascending) on first use. Later calls
// ignore bounds; registering the name as a counter panics.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered as a counter", name))
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	h := &Histogram{name: name, bounds: append([]int64(nil), bounds...)}
	h.cells = make([][]uint64, r.threads)
	for i := range h.cells {
		h.cells[i] = make([]uint64, len(bounds)+1)
	}
	r.byName[name] = h
	r.ordered = append(r.ordered, h)
	return h
}

// Pow2Bounds returns {1, 2, 4, ..., max}, the standard bucket layout for
// count-valued histograms.
func Pow2Bounds(max int64) []int64 {
	var out []int64
	for b := int64(1); b <= max; b *= 2 {
		out = append(out, b)
	}
	return out
}

// WriteText renders every metric in registration order — deterministic,
// so two identical runs produce byte-identical dumps.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.ordered {
		switch m := m.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.name, m.Value()); err != nil {
				return err
			}
		case *Histogram:
			if _, err := fmt.Fprintf(w, "%s total=%d", m.name, m.Total()); err != nil {
				return err
			}
			counts := m.Counts()
			for i, b := range m.bounds {
				if counts[i] > 0 {
					if _, err := fmt.Fprintf(w, " le%d=%d", b, counts[i]); err != nil {
						return err
					}
				}
			}
			if counts[len(m.bounds)] > 0 {
				if _, err := fmt.Fprintf(w, " inf=%d", counts[len(m.bounds)]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// PublishStats copies a finished run's stats counters into the registry,
// so callers that only hold a registry see the full picture. Counters
// accumulate across runs.
func PublishStats(r *Registry, s stats.Stats) {
	r.Counter("run.commits").Add(0, s.Commits)
	r.Counter("run.aborts").Add(0, s.Aborts)
	r.Counter("run.pushes").Add(0, s.Pushes)
	r.Counter("run.atomic_ops").Add(0, s.AtomicOps)
	r.Counter("run.inspects").Add(0, s.Inspects)
	r.Counter("run.rounds").Add(0, s.Rounds)
}
