// Package obs is the observability layer for the schedulers: a trace sink
// fed at round and generation boundaries, a metrics registry of counters
// and fixed-bucket histograms, and a benchmark emitter that serializes
// harness runs into a diffable JSON trajectory.
//
// The load-bearing invariant is that observation never perturbs the
// schedule. Determinism is what makes deep tracing trustworthy — a
// deterministic run can be traced, diffed and replayed bit for bit — and
// the package preserves it by construction:
//
//   - Events carry a wall-clock timestamp for rendering only. Timestamps
//     are stamped inside the sink, never read by the scheduler, and are
//     excluded from the canonical event encoding that tests compare.
//   - Under the DIG scheduler every structural event (round start/end,
//     window decision, generation sort, suspend/resume aggregates) is
//     emitted from the serial coordinator section between barriers, so the
//     event sequence is a pure function of the schedule — identical for
//     every thread count, which TestTraceEventSequenceThreadInvariant
//     checks as a golden property.
//   - Sink buffers are per-thread and lock-free: each worker appends only
//     to its own padded buffer, so emission adds no synchronization edges
//     that could reorder the computation it observes.
//
// detlint classifies this package as determinism-critical with a
// rule-scoped wallclock exemption (detlint.conf): reading the clock to
// timestamp an event is fine, but trace *content* built from map
// iteration or global RNG would make the trace itself non-reproducible
// and is still flagged.
package obs
