package obs

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"galois/internal/stats"
)

// emitDetRun feeds tr the structural event shape of a tiny DIG run: one
// generation, two rounds, continuation aggregates, a window decision each
// round.
func emitDetRun(tr *Trace) {
	tr.Emit(0, Event{Kind: KindRunStart, Args: [4]int64{1, 2, 10, 0}})
	tr.Emit(0, Event{Kind: KindGenStart, Gen: 0, Args: [4]int64{10, 0, 0, 0}})
	tr.Emit(0, Event{Kind: KindRoundStart, Gen: 0, Round: 0, Args: [4]int64{8, 2, 0, 0}})
	tr.Emit(0, Event{Kind: KindRoundEnd, Gen: 0, Round: 0, Args: [4]int64{8, 6, 2, 0}})
	tr.Emit(0, Event{Kind: KindSuspend, Gen: 0, Round: 0, Args: [4]int64{8, 0, 0, 0}})
	tr.Emit(0, Event{Kind: KindResume, Gen: 0, Round: 0, Args: [4]int64{6, 0, 0, 0}})
	tr.Emit(0, Event{Kind: KindWindow, Gen: 0, Round: 0, Args: [4]int64{8, 7, 750, 0}})
	tr.Emit(0, Event{Kind: KindRoundStart, Gen: 0, Round: 1, Args: [4]int64{4, 0, 0, 0}})
	tr.Emit(0, Event{Kind: KindRoundEnd, Gen: 0, Round: 1, Args: [4]int64{4, 4, 0, 0}})
	tr.Emit(0, Event{Kind: KindWindow, Gen: 0, Round: 1, Args: [4]int64{7, 14, 1000, 1}})
	tr.Emit(0, Event{Kind: KindGenEnd, Gen: 0, Round: 2, Args: [4]int64{0, 0, 0, 0}})
	tr.Emit(0, Event{Kind: KindRunEnd, Args: [4]int64{10, 2, 2, 0}})
}

func TestTraceBuffersAndCanonical(t *testing.T) {
	tr := NewTrace(2)
	emitDetRun(tr)
	tr.Emit(1, Event{Kind: KindWorker, Args: [4]int64{5, 1, 0, 0}})
	if tr.Len() != 13 {
		t.Fatalf("Len = %d, want 13", tr.Len())
	}
	evs := tr.Events()
	if len(evs) != 13 {
		t.Fatalf("Events len = %d", len(evs))
	}
	// Timestamps are stamped and non-decreasing per buffer.
	for i := 1; i < 12; i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("timestamps not monotonic: %d < %d", evs[i].TS, evs[i-1].TS)
		}
	}
	// Canonical encoding must be timestamp-independent.
	for _, ev := range evs {
		ev2 := ev
		ev2.TS = ev.TS + 123456789
		if ev.Canonical() != ev2.Canonical() {
			t.Fatalf("canonical encoding depends on timestamp: %q", ev.Canonical())
		}
	}
	if n := len(tr.CanonicalLines()); n != 13 {
		t.Fatalf("CanonicalLines len = %d", n)
	}
	// The canonical encoding of run-start excludes the thread count: the
	// same schedule at another thread count must canonicalize identically.
	a := Event{Kind: KindRunStart, Args: [4]int64{1, 2, 10, 0}}
	b := Event{Kind: KindRunStart, Args: [4]int64{1, 8, 10, 0}}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("run-start canonical depends on thread count: %q vs %q", a.Canonical(), b.Canonical())
	}

	rounds := tr.Rounds()
	if len(rounds) != 2 || rounds[0].Window != 8 || rounds[0].Committed != 6 || rounds[1].Failed != 0 {
		t.Fatalf("rounds = %+v", rounds)
	}

	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}
}

func TestChromeTraceRoundTrips(t *testing.T) {
	tr := NewTrace(2)
	emitDetRun(tr)
	tr.Emit(1, Event{Kind: KindWorker, Args: [4]int64{5, 1, 0, 0}})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("emitted trace invalid: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("no events exported")
	}
	for _, want := range []string{`"round 0"`, `"round 1"`, `"generation 0"`, `"window"`, `"worker done"`, `"traceEvents"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"traceEvents": []}`,
		`{"traceEvents": [{"ph": "X"}]}`,
	} {
		if _, err := ValidateChromeTrace([]byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestSummaryMentionsRuns(t *testing.T) {
	tr := NewTrace(1)
	emitDetRun(tr)
	s := tr.Summary()
	for _, want := range []string{"sched=det", "rounds=2", "commits=10"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q in %q", want, s)
		}
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("demo.count")
	c.Add(0, 2)
	c.Add(3, 5)
	if c.Value() != 7 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("demo.count") != c {
		t.Fatal("re-registration returned a new counter")
	}

	h := r.Histogram("demo.hist", []int64{1, 2, 4})
	h.Observe(0, 1)
	h.Observe(1, 2)
	h.Observe(2, 3)
	h.Observe(3, 100) // overflow bucket
	counts := h.Counts()
	want := []uint64{1, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo.count 7") || !strings.Contains(out, "demo.hist total=4") {
		t.Fatalf("text dump = %q", out)
	}
	// Registration order is deterministic: counter before histogram.
	if strings.Index(out, "demo.count") > strings.Index(out, "demo.hist") {
		t.Fatalf("dump not in registration order: %q", out)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := NewRegistry(1)
	r.Counter("x")
	r.Histogram("x", []int64{1})
}

func TestPow2Bounds(t *testing.T) {
	got := Pow2Bounds(8)
	want := []int64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("bounds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v", got)
		}
	}
}

func TestPublishStats(t *testing.T) {
	r := NewRegistry(1)
	PublishStats(r, stats.Stats{Commits: 10, Aborts: 3, Rounds: 4})
	if r.Counter("run.commits").Value() != 10 || r.Counter("run.rounds").Value() != 4 {
		t.Fatal("published stats not visible")
	}
	// A second run accumulates.
	PublishStats(r, stats.Stats{Commits: 1})
	if r.Counter("run.commits").Value() != 11 {
		t.Fatal("counters did not accumulate across runs")
	}
}

func TestBenchRoundTrip(t *testing.T) {
	b := NewBench()
	b.Add(BenchEntry{App: "mis", Variant: "g-d", Sched: "det", Threads: 4, Scale: "small",
		WallNS: 12345, Commits: 100, Rounds: 7, CommitRatio: 0.9, Fingerprint: "00deadbeef"})
	b.Add(BenchEntry{App: "bfs", Variant: "g-n", Sched: "nondet", Threads: 4, Scale: "small",
		WallNS: 999, Commits: 50, CommitRatio: 1, Fingerprint: "01"})
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	// WriteFile sorts: bfs before mis.
	if got.Entries[0].App != "bfs" || got.Entries[1].App != "mis" {
		t.Fatalf("not sorted: %+v", got.Entries)
	}
	if got.Entries[1].Rounds != 7 || got.Entries[1].Fingerprint != "00deadbeef" {
		t.Fatalf("fields lost: %+v", got.Entries[1])
	}

	if _, err := ReadBenchFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFillScalingEfficiency(t *testing.T) {
	det := func(threads int, wall int64) BenchEntry {
		return BenchEntry{App: "bfs", Variant: "g-d", Sched: "det",
			Threads: threads, Scale: "small", WallNS: wall}
	}
	b := NewBench()
	b.Add(det(1, 800))
	b.Add(det(2, 400)) // perfect: 800/(2*400) = 1.0
	b.Add(det(4, 400)) // half:    800/(4*400) = 0.5
	serve := det(4, 100)
	serve.Mode = "serve"
	b.Add(serve) // different mode -> different family, no t1 sibling
	other := BenchEntry{App: "mis", Variant: "g-d", Sched: "det",
		Threads: 8, Scale: "small", WallNS: 100}
	b.Add(other) // no t1 sibling at all
	b.FillScalingEfficiency()
	if got := b.Entries[0].ScalingEfficiency; got != 0 {
		t.Fatalf("t1 entry got efficiency %v", got)
	}
	if got := b.Entries[1].ScalingEfficiency; got != 1.0 {
		t.Fatalf("t2 efficiency = %v, want 1.0", got)
	}
	if got := b.Entries[2].ScalingEfficiency; got != 0.5 {
		t.Fatalf("t4 efficiency = %v, want 0.5", got)
	}
	if got := b.Entries[3].ScalingEfficiency; got != 0 {
		t.Fatalf("serve-mode entry matched an in-process sibling: %v", got)
	}
	if got := b.Entries[4].ScalingEfficiency; got != 0 {
		t.Fatalf("siblingless entry got efficiency %v", got)
	}
	// WriteFile derives the column itself, so emitters cannot forget it.
	path := filepath.Join(t.TempDir(), "BENCH_eff.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range got.Entries {
		if e.App == "bfs" && e.Mode == "" && e.Threads == 4 && e.ScalingEfficiency != 0.5 {
			t.Fatalf("round-tripped efficiency = %v", e.ScalingEfficiency)
		}
	}
}
