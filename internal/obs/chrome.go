package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// chromeEvent is one record of the Chrome trace-event format, the JSON
// dialect Perfetto and chrome://tracing load. Complete events ("X") carry
// a duration; counter events ("C") plot their args; metadata events ("M")
// name processes and threads; instant events ("i") mark points.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace serializes the buffered events as Chrome trace-event
// JSON. Each ForEach run becomes one process (pid); DIG generations and
// rounds become nested duration slices on the coordinator track, the
// adaptive window and commit ratio become counter tracks, and
// non-deterministic worker summaries become instant events on their
// worker's track.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	var out []chromeEvent
	type span struct{ ts int64 }
	var runs []runSpan

	// Structural events are all emitted on tid 0, in order.
	pid := 0
	var runStart, genStart, roundStart span
	var roundWindow int64
	for _, ev := range t.bufs[0].evs {
		switch ev.Kind {
		case KindRunStart:
			pid++
			runStart = span{ev.TS}
			sched := "nondet"
			if ev.Args[0] == 1 {
				sched = "det"
			}
			out = append(out,
				chromeEvent{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{
					"name": fmt.Sprintf("galois run %d (%s, %d threads)", pid, sched, ev.Args[1])}},
				chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: 0,
					Args: map[string]any{"name": "coordinator"}})
		case KindRunEnd:
			out = append(out, chromeEvent{Name: "run", Ph: "X",
				TS: us(runStart.ts), Dur: us(ev.TS - runStart.ts), PID: pid, TID: 0,
				Args: map[string]any{"commits": ev.Args[0], "aborts": ev.Args[1], "rounds": ev.Args[2]}})
			runs = append(runs, runSpan{pid: pid, start: runStart.ts, end: ev.TS})
		case KindGenStart:
			genStart = span{ev.TS}
		case KindGenEnd:
			out = append(out, chromeEvent{Name: fmt.Sprintf("generation %d", ev.Gen), Ph: "X",
				TS: us(genStart.ts), Dur: us(ev.TS - genStart.ts), PID: pid, TID: 0,
				Args: map[string]any{"produced": ev.Args[0]}})
		case KindGenSort:
			out = append(out, chromeEvent{Name: "gen-sort", Ph: "i",
				TS: us(ev.TS), PID: pid, TID: 0, S: "t",
				Args: map[string]any{"tasks": ev.Args[0]}})
		case KindRoundStart:
			roundStart = span{ev.TS}
			roundWindow = ev.Args[0]
		case KindRoundEnd:
			out = append(out, chromeEvent{Name: fmt.Sprintf("round %d", ev.Round), Ph: "X",
				TS: us(roundStart.ts), Dur: us(ev.TS - roundStart.ts), PID: pid, TID: 0,
				Args: map[string]any{"window": roundWindow, "selected": ev.Args[0],
					"committed": ev.Args[1], "failed": ev.Args[2]}})
		case KindPhases:
			// Three phase slices nested under the round slice, laid out
			// end to end from the round start using the measured
			// durations.
			ts := roundStart.ts
			for i, name := range [...]string{"inspect", "execute", "coordinate"} {
				args := map[string]any{"ns": ev.Args[i]}
				if name == "coordinate" {
					// The round's barrier-crossing count rides with the
					// phase that pays for it.
					args["barriers"] = ev.Args[3]
				}
				out = append(out, chromeEvent{Name: name, Ph: "X",
					TS: us(ts), Dur: us(ev.Args[i]), PID: pid, TID: 0,
					Args: args})
				ts += ev.Args[i]
			}
		case KindWindow:
			out = append(out,
				chromeEvent{Name: "window", Ph: "C", TS: us(ev.TS), PID: pid,
					Args: map[string]any{"size": ev.Args[1]}},
				chromeEvent{Name: "commit ratio (permille)", Ph: "C", TS: us(ev.TS), PID: pid,
					Args: map[string]any{"ratio": ev.Args[2]}})
		case KindSuspend, KindResume:
			out = append(out, chromeEvent{Name: ev.Kind.String(), Ph: "C", TS: us(ev.TS), PID: pid,
				Args: map[string]any{"tasks": ev.Args[0]}})
		case KindWorker:
			out = append(out, workerInstant(ev, 0, pidAt(runs, pid, ev.TS)))
		}
	}
	// Worker summaries from the other threads. Their run attribution uses
	// the observational timestamp — acceptable because the Chrome export
	// is rendering-only, never compared.
	for tid := 1; tid < len(t.bufs); tid++ {
		for _, ev := range t.bufs[tid].evs {
			if ev.Kind == KindWorker {
				out = append(out, workerInstant(ev, tid, pidAt(runs, pid, ev.TS)))
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeDoc{TraceEvents: out, DisplayTimeUnit: "ms"})
}

func workerInstant(ev Event, tid, pid int) chromeEvent {
	return chromeEvent{Name: "worker done", Ph: "i", TS: us(ev.TS), PID: pid, TID: tid, S: "t",
		Args: map[string]any{"commits": ev.Args[0], "aborts": ev.Args[1]}}
}

// runSpan is one run's [start, end] timestamp interval, used to attribute
// worker events to their run in the Chrome export.
type runSpan struct {
	pid        int
	start, end int64
}

// pidAt finds the run whose span contains ts; fallback covers events
// stamped after the run-end event was stamped (the worker raced the
// coordinator's clock read, not its barrier).
func pidAt(runs []runSpan, fallback int, ts int64) int {
	for _, r := range runs {
		if ts >= r.start && ts <= r.end {
			return r.pid
		}
	}
	return fallback
}

// ValidateChromeTrace checks that data parses as Chrome trace-event JSON
// with a non-empty traceEvents array whose records all carry a name and a
// phase. It returns the event count.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("not valid trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, errors.New("trace has no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			return 0, fmt.Errorf("traceEvents[%d] missing name or ph", i)
		}
	}
	return len(doc.TraceEvents), nil
}
