package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"galois/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 0 || g.Degree(2) != 1 {
		t.Fatalf("degrees wrong: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors(0) = %v", nb)
	}
}

func TestBuilderPreservesInsertionOrder(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(1, 0)
	g := b.Build()
	nb := g.Neighbors(1)
	if nb[0] != 2 || nb[1] != 0 {
		t.Fatalf("insertion order not preserved: %v", nb)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestEdgeRange(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(1, 2)
	g := b.Build()
	lo, hi := g.EdgeRange(1)
	if lo != 1 || hi != 3 {
		t.Fatalf("range = [%d,%d)", lo, hi)
	}
}

func checkSymmetric(t *testing.T, g *CSR) {
	t.Helper()
	type edge struct{ u, v int }
	set := map[edge]bool{}
	for u := 0; u < g.N(); u++ {
		prev := -1
		for _, v := range g.Neighbors(u) {
			if int(v) == u {
				t.Fatal("self-loop present")
			}
			if int(v) <= prev {
				t.Fatal("adjacency not sorted/deduped")
			}
			prev = int(v)
			set[edge{u, int(v)}] = true
		}
	}
	for e := range set {
		if !set[edge{e.v, e.u}] {
			t.Fatalf("missing reverse edge of (%d,%d)", e.u, e.v)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate after symmetrization
	b.AddEdge(2, 2) // self loop dropped
	b.AddEdge(3, 4)
	b.AddEdge(3, 4) // parallel edge deduped
	g := Symmetrize(b.Build())
	checkSymmetric(t, g)
	if g.M() != 4 { // (0,1),(1,0),(3,4),(4,3)
		t.Fatalf("m = %d, want 4", g.M())
	}
}

func TestSymmetrizeProperty(t *testing.T) {
	property := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		b := NewBuilder(n)
		m := r.Intn(120)
		for i := 0; i < m; i++ {
			b.AddEdge(r.Intn(n), r.Intn(n))
		}
		g := Symmetrize(b.Build())
		// Symmetric, no self loops, sorted unique lists.
		for u := 0; u < g.N(); u++ {
			prev := -1
			for _, v := range g.Neighbors(u) {
				if int(v) == u || int(v) <= prev {
					return false
				}
				prev = int(v)
				found := false
				for _, w := range g.Neighbors(int(v)) {
					if int(w) == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomKOutShape(t *testing.T) {
	g := RandomKOut(100, 5, 1)
	if g.N() != 100 || g.M() != 500 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 5 {
			t.Fatalf("degree(%d) = %d", u, g.Degree(u))
		}
		seen := map[uint32]bool{}
		for _, v := range g.Neighbors(u) {
			if int(v) == u {
				t.Fatal("self loop")
			}
			if seen[v] {
				t.Fatal("duplicate target")
			}
			seen[v] = true
		}
	}
}

func TestRandomKOutDeterministic(t *testing.T) {
	a := RandomKOut(200, 4, 7)
	b := RandomKOut(200, 4, 7)
	c := RandomKOut(200, 4, 8)
	same := func(x, y *CSR) bool {
		if x.N() != y.N() || x.M() != y.M() {
			return false
		}
		for u := 0; u < x.N(); u++ {
			xn, yn := x.Neighbors(u), y.Neighbors(u)
			for i := range xn {
				if xn[i] != yn[i] {
					return false
				}
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different graphs")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(4)
	if g.N() != 16 {
		t.Fatalf("n = %d", g.N())
	}
	// Corner has degree 2, edge 3, interior 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(1) != 3 {
		t.Fatalf("edge degree = %d", g.Degree(1))
	}
	if g.Degree(5) != 4 {
		t.Fatalf("interior degree = %d", g.Degree(5))
	}
	checkSymmetric(t, Symmetrize(g))
}

func TestChain(t *testing.T) {
	g := Chain(5)
	if g.M() != 8 {
		t.Fatalf("m = %d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Fatal("chain degrees wrong")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(8, 4, 3)
	if g.N() != 256 || g.M() != 1024 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) == u {
				t.Fatal("self loop in RMAT output")
			}
		}
	}
	// Scale-free shape: max degree far above mean.
	maxDeg := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 10 {
		t.Fatalf("max degree %d too uniform for RMAT", maxDeg)
	}
}

func TestSortU32(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(200)
		a := make([]uint32, n)
		for i := range a {
			a[i] = uint32(r.Uint64n(50))
		}
		want := append([]uint32(nil), a...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sortU32(a)
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("trial %d: sortU32 mismatch at %d", trial, i)
			}
		}
	}
}

func TestRandomWeightedSymmetricWeights(t *testing.T) {
	g := RandomWeighted(500, 4, 100, 9)
	if len(g.W) != g.M() {
		t.Fatalf("weights %d != edges %d", len(g.W), g.M())
	}
	weightOf := func(u int, v uint32) uint32 {
		lo, _ := g.EdgeRange(u)
		for i, w := range g.Neighbors(u) {
			if w == v {
				return g.W[lo+int64(i)]
			}
		}
		t.Fatalf("edge (%d,%d) missing", u, v)
		return 0
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			wuv := weightOf(u, v)
			wvu := weightOf(int(v), uint32(u))
			if wuv != wvu || wuv < 1 || wuv > 100 {
				t.Fatalf("asymmetric or out-of-range weight (%d,%d): %d vs %d", u, v, wuv, wvu)
			}
		}
	}
}
