package graph

import (
	"bytes"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := Symmetrize(RandomKOut(500, 5, 3))
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("shape mismatch: %v vs %v", got, g)
	}
	for u := 0; u < g.N(); u++ {
		a, b := g.Neighbors(u), got.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("edge mismatch at %d[%d]", u, i)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadCSR(bytes.NewReader([]byte("not a graph at all........"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCSR(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	g := RandomKOut(50, 3, 1)
	var buf bytes.Buffer
	g.WriteTo(&buf)
	data := buf.Bytes()
	for _, cut := range []int{8, 16, 32, len(data) / 2, len(data) - 1} {
		if _, err := ReadCSR(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsCorruptOffsets(t *testing.T) {
	g := RandomKOut(10, 2, 1)
	var buf bytes.Buffer
	g.WriteTo(&buf)
	data := buf.Bytes()
	// Corrupt the second offset (header is 32 bytes, offsets follow).
	data[32+8] = 0xff
	if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt offsets accepted")
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	g := NewBuilder(3).Build()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 3 || got.M() != 0 {
		t.Fatalf("shape %v", got)
	}
}
