package graph

import (
	"bytes"
	"testing"
)

// FuzzReadCSR asserts the binary parser never panics and never accepts a
// structurally invalid graph: whatever it returns must pass the same
// validation WriteTo-produced graphs do.
func FuzzReadCSR(f *testing.F) {
	// Seed corpus: valid graphs of various shapes plus mutations.
	for _, g := range []*CSR{
		NewBuilder(0).Build(),
		NewBuilder(3).Build(),
		RandomKOut(10, 2, 1),
		Symmetrize(RandomKOut(20, 3, 2)),
	} {
		var buf bytes.Buffer
		g.WriteTo(&buf)
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("GALOISGR garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted graphs must be structurally sound.
		n := g.N()
		if n < 0 {
			t.Fatal("negative node count")
		}
		for u := 0; u < n; u++ {
			lo, hi := g.EdgeRange(u)
			if lo > hi || hi > int64(g.M()) {
				t.Fatalf("bad edge range for %d: [%d,%d)", u, lo, hi)
			}
			for _, v := range g.Neighbors(u) {
				if int(v) >= n {
					t.Fatalf("edge target %d out of range", v)
				}
			}
		}
	})
}
