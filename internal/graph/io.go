package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary format: magic, version, n, m (little-endian uint64), then n+1
// offsets (int64) and m edges (uint32). Generating the paper's full-scale
// inputs (10M nodes) takes longer than reading them back, so cmd users can
// cache them on disk.
const (
	ioMagic   = 0x47414c4f49534752 // "GALOISGR"
	ioVersion = 1
)

// WriteTo serializes g. It returns the number of bytes written.
func (g *CSR) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var total int64
	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		n, err := bw.Write(buf[:])
		total += int64(n)
		return err
	}
	for _, v := range []uint64{ioMagic, ioVersion, uint64(g.N()), uint64(g.M())} {
		if err := put(v); err != nil {
			return total, err
		}
	}
	var buf8 [8]byte
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint64(buf8[:], uint64(o))
		n, err := bw.Write(buf8[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	var buf4 [4]byte
	for _, e := range g.edges {
		binary.LittleEndian.PutUint32(buf4[:], e)
		n, err := bw.Write(buf4[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadCSR deserializes a graph written by WriteTo.
func ReadCSR(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if magic != ioMagic {
		return nil, fmt.Errorf("graph: bad magic %x", magic)
	}
	version, err := get()
	if err != nil {
		return nil, err
	}
	if version != ioVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	n64, err := get()
	if err != nil {
		return nil, err
	}
	m64, err := get()
	if err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 36
	if n64 > maxReasonable || m64 > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	g := &CSR{
		offsets: make([]int64, n64+1),
		edges:   make([]uint32, m64),
	}
	var buf8 [8]byte
	for i := range g.offsets {
		if _, err := io.ReadFull(br, buf8[:]); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		g.offsets[i] = int64(binary.LittleEndian.Uint64(buf8[:]))
	}
	var buf4 [4]byte
	for i := range g.edges {
		if _, err := io.ReadFull(br, buf4[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edges: %w", err)
		}
		g.edges[i] = binary.LittleEndian.Uint32(buf4[:])
	}
	// Structural validation: offsets monotone and in range.
	if g.offsets[0] != 0 || g.offsets[n64] != int64(m64) {
		return nil, fmt.Errorf("graph: corrupt offset bounds")
	}
	for i := 0; i < int(n64); i++ {
		if g.offsets[i] > g.offsets[i+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	for _, e := range g.edges {
		if uint64(e) >= n64 {
			return nil, fmt.Errorf("graph: edge target %d out of range", e)
		}
	}
	return g, nil
}
