package graph

import (
	"galois/internal/rng"
)

// RandomKOut generates the paper's random-graph input family (§4.2): n
// nodes, each with k out-edges to uniformly random distinct targets
// (excluding self-loops). The result is deterministic in (n, k, seed).
//
// The paper's bfs/mis input is RandomKOut(10M, 5) symmetrized; pfp uses
// RandomKOut(2^23, 4) as a capacity network.
func RandomKOut(n, k int, seed uint64) *CSR {
	if k >= n {
		panic("graph: RandomKOut requires k < n")
	}
	b := NewBuilder(n)
	r := rng.New(seed)
	targets := make([]uint32, 0, k)
	for u := 0; u < n; u++ {
		targets = targets[:0]
	pick:
		for len(targets) < k {
			v := uint32(r.Uint64n(uint64(n)))
			if int(v) == u {
				continue
			}
			for _, w := range targets {
				if w == v {
					continue pick
				}
			}
			targets = append(targets, v)
		}
		for _, v := range targets {
			b.AddEdge(u, int(v))
		}
	}
	return b.Build()
}

// Grid2D generates a 4-connected sqrt-n x sqrt-n torus-free grid. Useful as
// a high-diameter contrast input for bfs and as a structured flow network.
func Grid2D(side int) *CSR {
	n := side * side
	b := NewBuilder(n)
	id := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				b.AddEdge(id(x, y), id(x+1, y))
				b.AddEdge(id(x+1, y), id(x, y))
			}
			if y+1 < side {
				b.AddEdge(id(x, y), id(x, y+1))
				b.AddEdge(id(x, y+1), id(x, y))
			}
		}
	}
	return b.Build()
}

// Chain generates a path graph of n nodes (worst case for level-synchronous
// parallelism; used in tests).
func Chain(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(i+1, i)
	}
	return b.Build()
}

// RMAT generates a scale-free graph with 2^scale nodes and edgeFactor
// edges per node using the R-MAT recursive quadrant model with the standard
// (0.57, 0.19, 0.19, 0.05) parameters. Self-loops are kept out; parallel
// edges may occur (callers wanting simple graphs should Symmetrize).
func RMAT(scale, edgeFactor int, seed uint64) *CSR {
	n := 1 << scale
	m := n * edgeFactor
	b := NewBuilder(n)
	r := rng.New(seed)
	const a, bb, c = 0.57, 0.19, 0.19
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < a:
				// upper-left: nothing to add
			case p < a+bb:
				v |= 1 << bit
			case p < a+bb+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			e--
			continue
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// Weighted pairs a CSR with per-edge weights (indexed like the edge array).
type Weighted struct {
	*CSR
	// W[e] is the weight of edge index e (see EdgeRange).
	W []uint32
}

// RandomWeighted generates a symmetrized random k-out graph with uniform
// edge weights in [1, maxW]; the two directions of an undirected edge get
// the same weight. Deterministic in the seed.
func RandomWeighted(n, k int, maxW uint32, seed uint64) *Weighted {
	g := Symmetrize(RandomKOut(n, k, seed))
	w := make([]uint32, g.M())
	for u := 0; u < g.N(); u++ {
		lo, _ := g.EdgeRange(u)
		for i, v := range g.Neighbors(u) {
			a, b := uint64(u), uint64(v)
			if a > b {
				a, b = b, a
			}
			// Key on the undirected pair so both directions agree.
			w[lo+int64(i)] = uint32(rng.Mix64(a<<32|b^seed)%uint64(maxW)) + 1
		}
	}
	return &Weighted{CSR: g, W: w}
}
