// Package graph provides the graph substrate for the irregular benchmarks:
// a compact CSR (compressed sparse row) topology, edge-list builders,
// deterministic random generators for the paper's inputs, and a simple
// binary interchange format.
//
// Topology is separated from per-node algorithm state: applications allocate
// their own node arrays (embedding galois.Lockable) indexed by node id, so
// one loaded topology can serve many algorithm variants.
package graph

import "fmt"

// CSR is an immutable directed graph in compressed sparse row form. Node
// ids are dense in [0, N()).
type CSR struct {
	// offsets has length N()+1; the out-edges of node u are
	// edges[offsets[u]:offsets[u+1]].
	offsets []int64
	edges   []uint32
}

// N returns the number of nodes.
func (g *CSR) N() int { return len(g.offsets) - 1 }

// M returns the number of directed edges.
func (g *CSR) M() int { return len(g.edges) }

// Degree returns the out-degree of node u.
func (g *CSR) Degree(u int) int { return int(g.offsets[u+1] - g.offsets[u]) }

// Neighbors returns the out-neighbors of u. The returned slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(u int) []uint32 { return g.edges[g.offsets[u]:g.offsets[u+1]] }

// EdgeRange returns the edge-index range [lo, hi) of u's out-edges, for use
// with per-edge payload arrays maintained by applications.
func (g *CSR) EdgeRange(u int) (lo, hi int64) { return g.offsets[u], g.offsets[u+1] }

// String summarizes the graph.
func (g *CSR) String() string { return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M()) }

// Builder accumulates directed edges and produces a CSR.
type Builder struct {
	n    int
	srcs []uint32
	dsts []uint32
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge appends the directed edge (u, v). It panics on out-of-range ids.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.srcs = append(b.srcs, uint32(u))
	b.dsts = append(b.dsts, uint32(v))
}

// Build produces the CSR. Edges keep insertion order within each node's
// adjacency list (counting sort by source), which keeps construction
// deterministic for deterministic edge streams.
func (b *Builder) Build() *CSR {
	offsets := make([]int64, b.n+1)
	for _, u := range b.srcs {
		offsets[u+1]++
	}
	for i := 0; i < b.n; i++ {
		offsets[i+1] += offsets[i]
	}
	edges := make([]uint32, len(b.srcs))
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for i, u := range b.srcs {
		edges[cursor[u]] = b.dsts[i]
		cursor[u]++
	}
	return &CSR{offsets: offsets, edges: edges}
}

// Symmetrize returns the undirected closure of g: for every edge (u,v) both
// (u,v) and (v,u) are present, self-loops are dropped, and duplicate edges
// are removed. Adjacency lists come out sorted.
func Symmetrize(g *CSR) *CSR {
	n := g.N()
	// Count degrees of the symmetrized multigraph first.
	deg := make([]int64, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) == u {
				continue
			}
			deg[u+1]++
			deg[v+1]++
		}
	}
	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	edges := make([]uint32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) == u {
				continue
			}
			edges[cursor[u]] = v
			cursor[u]++
			edges[cursor[v]] = uint32(u)
			cursor[v]++
		}
	}
	// Sort and dedupe each adjacency list in place.
	out := NewBuilder(n)
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		adj := edges[lo:hi]
		sortU32(adj)
		var prev uint32 = ^uint32(0)
		for _, v := range adj {
			if v != prev {
				out.AddEdge(u, int(v))
				prev = v
			}
		}
	}
	return out.Build()
}

// sortU32 sorts a small-to-medium uint32 slice (insertion sort below a
// threshold, simple quicksort above) without allocating.
func sortU32(a []uint32) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	sortU32(a[:hi+1])
	sortU32(a[lo:])
}
