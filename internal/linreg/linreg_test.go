package linreg

import (
	"math"
	"testing"

	"galois/internal/rng"
)

func TestPerfectLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	f := OLS(x, y)
	if math.Abs(f.B0-1) > 1e-12 || math.Abs(f.B1-2) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
}

func TestNoisyLine(t *testing.T) {
	r := rng.New(4)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := r.Float64() * 10
		x = append(x, xi)
		y = append(y, 2+3*xi+0.1*r.NormFloat64())
	}
	f := OLS(x, y)
	if math.Abs(f.B1-3) > 0.05 || math.Abs(f.B0-2) > 0.1 {
		t.Fatalf("fit = %+v", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestUncorrelated(t *testing.T) {
	r := rng.New(5)
	var x, y []float64
	for i := 0; i < 2000; i++ {
		x = append(x, r.Float64())
		y = append(y, r.Float64())
	}
	f := OLS(x, y)
	if f.R2 > 0.02 {
		t.Fatalf("R2 = %v for independent data", f.R2)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if f := OLS(nil, nil); f.N != 0 || f.R2 != 0 {
		t.Fatalf("empty fit = %+v", f)
	}
	if f := OLS([]float64{1}, []float64{2}); f.R2 != 0 {
		t.Fatalf("single-point fit = %+v", f)
	}
	// Zero variance in x.
	f := OLS([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.B1 != 0 || math.Abs(f.B0-2) > 1e-12 {
		t.Fatalf("constant-x fit = %+v", f)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OLS([]float64{1}, []float64{1, 2})
}
