// Package linreg provides ordinary least squares for the efficiency model
// of the paper's §5.4 (Figure 12): eff_var = B0 + B1 * (PC_ref/PC_var) *
// eff_ref. Fitting that model is a simple linear regression of eff_var
// against the composite predictor x = (PC_ref/PC_var) * eff_ref; the
// reported quantity is R².
package linreg

import "math"

// Fit is an ordinary-least-squares fit y ≈ B0 + B1*x.
type Fit struct {
	B0, B1 float64
	// R2 is the coefficient of determination.
	R2 float64
	// N is the number of points fitted.
	N int
}

// OLS fits y against x. It panics on length mismatch; with fewer than two
// points or zero variance in x it returns a degenerate fit (B1 = 0,
// R2 = 0).
func OLS(x, y []float64) Fit {
	if len(x) != len(y) {
		panic("linreg: length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Fit{N: len(x)}
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{B0: my, N: len(x)}
	}
	b1 := sxy / sxx
	b0 := my - b1*mx
	var ssRes float64
	for i := range x {
		e := y[i] - (b0 + b1*x[i])
		ssRes += e * e
	}
	r2 := 0.0
	if syy > 0 {
		r2 = 1 - ssRes/syy
	}
	if math.IsNaN(r2) || r2 < 0 {
		r2 = 0
	}
	return Fit{B0: b0, B1: b1, R2: r2, N: len(x)}
}
