// Package rng provides small, fast, deterministic pseudo-random number
// generators used for input generation and randomized scheduling decisions.
//
// All experiment inputs in this repository are derived from these generators
// with fixed seeds so every run, on every machine, sees byte-identical
// inputs. The generators are splittable: independent streams can be derived
// from a parent seed, which keeps input generation deterministic even when
// it is itself parallelized.
package rng

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It has a
// 64-bit state, passes BigCrush, and is primarily used here to seed and
// derive other streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a high-quality 64-bit
// mixing function, useful for hashing task ids into priorities.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256**-style generator with convenience helpers. The zero
// value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniform 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the ratio method is
// overkill here; we use the Box-Muller transform, which is exact and
// dependency-free.
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher-Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
