package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicStreams(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Splitting must be reproducible.
	parent2 := New(7)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("split streams not reproducible")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	property := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(9)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := draws / n
	for b, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d has %d draws, want ~%d", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("len = %d, want %d", len(p), n)
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	for bit := 0; bit < 64; bit += 7 {
		x := uint64(0x123456789abcdef)
		d := Mix64(x) ^ Mix64(x^(1<<bit))
		pop := 0
		for d != 0 {
			pop++
			d &= d - 1
		}
		if pop < 16 || pop > 48 {
			t.Fatalf("bit %d: popcount %d far from 32", bit, pop)
		}
	}
}
