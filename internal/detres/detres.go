// Package detres implements PBBS-style deterministic reservations — the
// "speculative_for" idiom the handwritten deterministic PBBS programs use
// (paper §4.1): items are processed in rounds over a prefix of a fixed
// priority order; each item reserves the shared locations it needs with a
// priority write (minimum index wins), and items whose reservations all
// held commit. The committed set, and hence the output, is a pure function
// of the input order — independent of thread count.
//
// Reservations reuse the mark words of package marks: a minimum-index
// reservation is a maximum-id mark under the order-reversing encoding
// id = ^index, so the same WriteMax/ClearIfOwner machinery serves both the
// DIG scheduler and this substrate.
package detres

import (
	"galois/internal/cachesim"
	"galois/internal/marks"
	"galois/internal/para"
	"galois/internal/stats"
)

// Step defines one speculative item. Reserve runs first (possibly
// repeatedly, in different rounds); it must only read shared state and
// reserve — via the provided Reserver — every location it read or intends
// to write. Commit runs if every reservation held; it applies the item's
// writes and must succeed.
//
// Reserve may return false to abandon the item (already done / nothing to
// do); abandoned items count as committed without calling Commit.
type Step interface {
	Reserve(i int, r *Reserver) bool
	Commit(i int)
}

// Reserver reserves locations on behalf of item i.
type Reserver struct {
	rec      *marks.Rec
	acquired []*marks.Lockable
	ops      int
	lost     bool
	pro      *cachesim.Tracer
	tid      int
}

// Reserve claims l with the current item's priority (minimum item index
// wins). Like writeMarksMax, it never fails early: every location is
// stamped so the final owner is deterministic.
func (r *Reserver) Reserve(l *marks.Lockable) {
	if r.pro != nil {
		r.pro.Touch(r.tid, l)
	}
	owned, _, ops := l.WriteMax(r.rec)
	r.ops += ops
	if owned {
		r.acquired = append(r.acquired, l)
	} else {
		r.lost = true
	}
}

// Options configures For.
type Options struct {
	// Threads is the worker count (<=0 means GOMAXPROCS).
	Threads int
	// Granularity is the round size — the fixed, tunable round
	// parameter of the PBBS codes the paper contrasts with its adaptive
	// window (<=0 means 4096).
	Granularity int
	// Ramp grows the round size with the number of items committed so
	// far: size = max(Granularity, committed/8). Incremental algorithms
	// (Delaunay insertion) need it because early items all conflict;
	// the committed count is thread-independent, so determinism is
	// preserved.
	Ramp bool
	// Profile, if non-nil, records reserved locations for the §5.4
	// locality analysis.
	Profile *cachesim.Tracer
}

// For runs items [0, n) through step under deterministic reservations and
// returns run statistics.
func For(n int, step Step, opt Options) stats.Stats {
	threads := opt.Threads
	if threads <= 0 {
		threads = para.DefaultThreads()
	}
	gran := opt.Granularity
	if gran <= 0 {
		if opt.Ramp {
			// Ramped loops start tiny (everything conflicts until
			// the structure grows) and scale with commits.
			gran = 16
		} else {
			gran = 4096
		}
	}
	col := stats.NewCollector(threads)
	col.Start()

	type slot struct {
		idx int
		res Reserver
		rec marks.Rec
		// done: abandoned at reserve time (counts as committed).
		done bool
		// failed: lost a reservation this round.
		failed bool
	}
	pending := make([]*slot, n)
	for i := range pending {
		pending[i] = &slot{idx: i}
	}

	committedTotal := 0
	for len(pending) > 0 {
		p := gran
		if opt.Ramp && committedTotal/8 > p {
			p = committedTotal / 8
		}
		if p > len(pending) {
			p = len(pending)
		}
		cur, rest := pending[:p:p], pending[p:]

		// Reserve phase.
		para.For(threads, p, func(tid, k int) {
			s := cur[k]
			// Priority: smaller item index = higher priority, via
			// the order-reversing encoding (0 is reserved for
			// "free", and ^idx is never 0 for valid indices).
			s.rec.Reset(^uint64(s.idx))
			s.res = Reserver{rec: &s.rec, pro: opt.Profile, tid: tid}
			s.done = !step.Reserve(s.idx, &s.res)
			col.AtomicOp(tid, s.res.ops)
			col.Inspect(tid)
		})

		// Commit phase.
		para.For(threads, p, func(tid, k int) {
			s := cur[k]
			ops := 0
			if s.done {
				s.failed = false
				col.Commit(tid)
			} else {
				held := !s.res.lost
				if held {
					for _, l := range s.res.acquired {
						if !l.OwnedBy(&s.rec) {
							held = false
							break
						}
					}
				}
				if held {
					step.Commit(s.idx)
					if opt.Profile != nil {
						// The write phase revisits the
						// reserved locations (§5.4).
						for _, l := range s.res.acquired {
							opt.Profile.Touch(tid, l)
						}
					}
					s.failed = false
					col.Commit(tid)
				} else {
					s.failed = true
					col.Abort(tid)
				}
			}
			for _, l := range s.res.acquired {
				ops += l.ClearIfOwner(&s.rec)
			}
			s.res.acquired = nil
			col.AtomicOp(tid, ops)
		})

		// Failed items keep their priority: they precede the untried
		// suffix in the next round.
		var next []*slot
		committed := 0
		for _, s := range cur {
			if s.failed {
				next = append(next, s)
			} else {
				committed++
			}
		}
		col.Round(p, committed)
		committedTotal += committed
		if committed == 0 {
			// The minimum-index item always holds all its
			// reservations.
			panic("detres: round committed nothing")
		}
		pending = append(next, rest...)
	}
	col.Stop()
	return col.Snapshot()
}
