package detres

import (
	"fmt"
	"sync/atomic"
	"testing"

	"galois/internal/marks"
	"galois/internal/rng"
)

// counterStep increments shared cells; each item reserves the cells it
// touches. The final non-commutative fold exposes the execution order.
type counterStep struct {
	cells   []marks.Lockable
	values  []uint64
	touches [][]int
	commits atomic.Int64
}

func newCounterStep(ncells, nitems int, seed uint64) *counterStep {
	r := rng.New(seed)
	s := &counterStep{
		cells:   make([]marks.Lockable, ncells),
		values:  make([]uint64, ncells),
		touches: make([][]int, nitems),
	}
	for i := range s.touches {
		n := 1 + r.Intn(3)
		for j := 0; j < n; j++ {
			s.touches[i] = append(s.touches[i], r.Intn(ncells))
		}
	}
	return s
}

func (s *counterStep) Reserve(i int, r *Reserver) bool {
	for _, c := range s.touches[i] {
		r.Reserve(&s.cells[c])
	}
	return true
}

func (s *counterStep) Commit(i int) {
	for _, c := range s.touches[i] {
		s.values[c] = s.values[c]*31 + uint64(i+1)
	}
	s.commits.Add(1)
}

func (s *counterStep) fingerprint() uint64 {
	var h uint64 = 1469598103934665603
	for _, v := range s.values {
		h = (h ^ v) * 1099511628211
	}
	return h
}

func TestAllItemsCommitExactlyOnce(t *testing.T) {
	for _, threads := range []int{1, 4, 8} {
		s := newCounterStep(32, 2000, 1)
		st := For(2000, s, Options{Threads: threads, Granularity: 128})
		if got := s.commits.Load(); got != 2000 {
			t.Fatalf("threads=%d: %d commits, want 2000", threads, got)
		}
		if st.Commits != 2000 {
			t.Fatalf("threads=%d: stats commits = %d", threads, st.Commits)
		}
	}
}

func TestDeterministicAcrossThreadCounts(t *testing.T) {
	ref := newCounterStep(32, 2000, 2)
	refStats := For(2000, ref, Options{Threads: 1, Granularity: 128})
	for _, threads := range []int{2, 4, 8} {
		s := newCounterStep(32, 2000, 2)
		st := For(2000, s, Options{Threads: threads, Granularity: 128})
		if s.fingerprint() != ref.fingerprint() {
			t.Fatalf("threads=%d: execution order differs", threads)
		}
		if st.Rounds != refStats.Rounds || st.Commits != refStats.Commits || st.Aborts != refStats.Aborts {
			t.Fatalf("threads=%d: schedule differs: %v vs %v", threads, st, refStats)
		}
	}
}

func TestPriorityOrderRespected(t *testing.T) {
	// All items share one cell: commits must occur in strict index order
	// (minimum index wins every round).
	s := newCounterStep(1, 300, 3)
	for i := range s.touches {
		s.touches[i] = []int{0}
	}
	For(300, s, Options{Threads: 4, Granularity: 64})
	var want uint64
	for i := 0; i < 300; i++ {
		want = want*31 + uint64(i+1)
	}
	if s.values[0] != want {
		t.Fatalf("fold = %x, want strict index order %x", s.values[0], want)
	}
}

// abandonStep abandons every odd item at reserve time.
type abandonStep struct {
	counterStep
}

func (s *abandonStep) Reserve(i int, r *Reserver) bool {
	if i%2 == 1 {
		return false
	}
	return s.counterStep.Reserve(i, r)
}

func TestAbandonedItemsCountAsDone(t *testing.T) {
	s := &abandonStep{*newCounterStep(16, 500, 4)}
	st := For(500, s, Options{Threads: 4, Granularity: 100})
	if got := s.commits.Load(); got != 250 {
		t.Fatalf("commits = %d, want 250", got)
	}
	if st.Commits != 500 { // abandoned count as committed work items
		t.Fatalf("stats commits = %d, want 500", st.Commits)
	}
}

func TestRampGrowsRounds(t *testing.T) {
	// With ramping, round sizes grow with commits; total rounds must be
	// far below items/granularity for a conflict-free workload.
	n := 10_000
	s := newCounterStep(100_000, n, 5)
	for i := range s.touches {
		s.touches[i] = []int{i * 7 % 100_000} // all distinct: no conflicts
	}
	st := For(n, s, Options{Threads: 4, Granularity: 16, Ramp: true})
	// Round sizes grow by 9/8 per conflict-free round: ~log_{9/8}(n/16)
	// rounds, far below the n/16 of the fixed policy.
	if st.Rounds > 80 {
		t.Fatalf("ramped rounds = %d, expected logarithmic growth", st.Rounds)
	}
	noRamp := newCounterStep(100_000, n, 5)
	for i := range noRamp.touches {
		noRamp.touches[i] = []int{i * 7 % 100_000}
	}
	st2 := For(n, noRamp, Options{Threads: 4, Granularity: 16})
	if st2.Rounds != uint64((n+15)/16) {
		t.Fatalf("fixed rounds = %d, want %d", st2.Rounds, (n+15)/16)
	}
}

func TestStatsAbortsOnConflicts(t *testing.T) {
	// All items share a cell and arrive in one big round: everything but
	// the winner aborts each round.
	s := newCounterStep(1, 64, 6)
	for i := range s.touches {
		s.touches[i] = []int{0}
	}
	st := For(64, s, Options{Threads: 4, Granularity: 64})
	if st.Aborts == 0 {
		t.Fatal("expected aborts under total conflict")
	}
	if st.Rounds != 64 {
		t.Fatalf("rounds = %d, want 64 (one commit per round)", st.Rounds)
	}
}

func TestMarksClearedBetweenRounds(t *testing.T) {
	s := newCounterStep(8, 200, 7)
	For(200, s, Options{Threads: 4, Granularity: 32})
	for i := range s.cells {
		if s.cells[i].Holder() != nil {
			t.Fatalf("cell %d still marked after completion", i)
		}
	}
}

func TestRepeatability(t *testing.T) {
	fps := map[uint64]bool{}
	for rep := 0; rep < 3; rep++ {
		s := newCounterStep(16, 1000, 8)
		For(1000, s, Options{Threads: 8, Granularity: 64})
		fps[s.fingerprint()] = true
	}
	if len(fps) != 1 {
		t.Fatalf("got %d distinct outcomes across repeats", len(fps))
	}
}

func ExampleFor() {
	// Reserve-and-commit over a shared counter: deterministic total
	// regardless of thread count.
	var cell marks.Lockable
	total := 0
	step := stepFuncs{
		reserve: func(i int, r *Reserver) bool { r.Reserve(&cell); return true },
		commit:  func(i int) { total += i },
	}
	For(10, step, Options{Threads: 4})
	fmt.Println(total)
	// Output: 45
}

type stepFuncs struct {
	reserve func(int, *Reserver) bool
	commit  func(int)
}

func (s stepFuncs) Reserve(i int, r *Reserver) bool { return s.reserve(i, r) }
func (s stepFuncs) Commit(i int)                    { s.commit(i) }
