// Package rescache is the content-addressed result cache of the serving
// stack. It exists because of the paper's central property: a deterministic
// run's output is a pure function of its canonical spec, independent of
// machine and thread count. That makes caching *sound* — a result stored
// under the hash of a normalized spec is, by construction, byte-identical
// to what a fresh execution of that spec would produce, and the fingerprint
// receipt stored with it is the proof (POST /verify can re-derive it at any
// time).
//
// The package provides three pieces, composed by internal/serve:
//
//   - Key / KeyOf: a canonical, field-ordered byte encoding of the
//     semantic spec fields hashed to a fixed-size address. Non-semantic
//     fields (timeout, trace) are excluded; non-deterministic (g-n) specs
//     are rejected — their output is not a function of the spec.
//   - Cache: a byte-budget LRU over opaque result values, safe for
//     concurrent use, with counters and optional trace-sink events.
//   - Flight: singleflight collapse of concurrent identical submissions
//     onto one execution.
//
// Everything here is deterministic given its inputs: no wall clock, no
// global RNG, no map iteration reaches any output.
package rescache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// keyVersion is the first byte of every key preimage. Bump it whenever the
// encoding below changes shape, so keys from different encodings can never
// alias.
const keyVersion = 1

// linkKeyVersion leads session-link key preimages; a distinct constant so
// a link key can never alias a one-shot job key even if their payloads
// coincide byte-for-byte.
const linkKeyVersion = 2

// ErrNondeterministic is returned by KeyOf for g-n specs: a speculative
// run's output depends on scheduling, so it has no content address.
var ErrNondeterministic = errors.New("rescache: non-deterministic (g-n) specs have no cache key")

// Key is the content address of one canonical deterministic job spec: the
// SHA-256 of the spec's normalized field-ordered encoding.
type Key [sha256.Size]byte

// String renders a short prefix of the key for logs and error messages.
func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// Low64 returns the key's leading 8 bytes as an int64, for trace-event
// args (events carry int64 payloads; a prefix is enough to correlate).
func (k Key) Low64() int64 { return int64(binary.BigEndian.Uint64(k[:8])) }

// KeyOf hashes the semantic fields of a normalized spec to its cache key.
//
// The encoding is canonical: a fixed version byte, then the fields in a
// fixed order, strings length-prefixed (uvarint) so adjacent fields can
// never re-segment into each other ("ab","c" and "a","bc" hash apart).
// Because the caller passes *normalized* values, two JSON specs that are
// semantically identical — different field order, defaults spelled out or
// omitted — reach this function with identical arguments and collide onto
// the same key. Timeout and trace flags are intentionally absent: they
// change how a run is supervised, not what it computes.
//
// KeyOf rejects g-n variants (ErrNondeterministic) and un-normalized
// arguments (empty strings, non-positive threads): a key must only ever be
// derived from a spec the server has validated.
func KeyOf(kind, variant, scale string, seed uint64, threads int) (Key, error) {
	if variant == "g-n" {
		return Key{}, ErrNondeterministic
	}
	if kind == "" || variant == "" || scale == "" || threads <= 0 {
		return Key{}, fmt.Errorf("rescache: spec not normalized (kind=%q variant=%q scale=%q threads=%d)",
			kind, variant, scale, threads)
	}
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	field := func(s string) {
		n := binary.PutUvarint(buf[:], uint64(len(s)))
		h.Write(buf[:n])
		h.Write([]byte(s))
	}
	h.Write([]byte{keyVersion})
	field(kind)
	field(variant)
	field(scale)
	binary.BigEndian.PutUint64(buf[:8], seed)
	h.Write(buf[:8])
	n := binary.PutUvarint(buf[:], uint64(threads))
	h.Write(buf[:n])
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// KeyOfLink addresses one session mutation batch by its chain prefix: the
// raw chain hash of the preceding link plus the batch's canonical
// encoding. This is what makes session results cacheable at all — a chain
// hash transitively covers the init spec and every batch before this one,
// so (prev, canon) pins the exact state the batch runs against, and the
// link it produces is a pure function of the pair. Session *creation* has
// no such key: a session is addressed by identity (its id), not content.
//
// prev must be a raw chain hash (sha256.Size bytes) and canon non-empty;
// both arrive pre-validated from internal/session.
func KeyOfLink(prev []byte, canon []byte) (Key, error) {
	if len(prev) != sha256.Size || len(canon) == 0 {
		return Key{}, fmt.Errorf("rescache: malformed link key preimage (prev=%d bytes, canon=%d bytes)",
			len(prev), len(canon))
	}
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	h.Write([]byte{linkKeyVersion})
	h.Write(prev)
	n := binary.PutUvarint(buf[:], uint64(len(canon)))
	h.Write(buf[:n])
	h.Write(canon)
	var k Key
	h.Sum(k[:0])
	return k, nil
}
