package rescache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightCollapses(t *testing.T) {
	f := NewFlight()
	k := testKey(1)
	var execs atomic.Int64
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	leaders := make([]bool, n)
	entered := make(chan struct{})
	var enteredOnce sync.Once
	call := func(i int) {
		defer wg.Done()
		v, err, leader := f.Do(context.Background(), k, func() (any, error) {
			execs.Add(1)
			enteredOnce.Do(func() { close(entered) })
			<-release // hold the flight open until every follower has joined
			return "result", nil
		})
		if err != nil {
			t.Errorf("Do: %v", err)
		}
		results[i], leaders[i] = v, leader
	}
	wg.Add(1)
	go call(0)
	<-entered // the leader is registered and blocked: followers must join it
	for i := 1; i < n; i++ {
		wg.Add(1)
		go call(i)
	}
	time.Sleep(10 * time.Millisecond) // let followers reach the select
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	nLeaders := 0
	for i := 0; i < n; i++ {
		if results[i] != "result" {
			t.Fatalf("caller %d got %v", i, results[i])
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Fatalf("%d leaders, want 1", nLeaders)
	}
}

func TestFlightSequentialCallsRunFresh(t *testing.T) {
	f := NewFlight()
	k := testKey(1)
	var execs int
	for i := 0; i < 3; i++ {
		_, err, leader := f.Do(context.Background(), k, func() (any, error) {
			execs++
			return i, nil
		})
		if err != nil || !leader {
			t.Fatalf("call %d: err=%v leader=%v", i, err, leader)
		}
	}
	if execs != 3 {
		t.Fatalf("sequential calls executed %d times, want 3", execs)
	}
	if f.Inflight() != 0 {
		t.Fatalf("flight not drained: %d", f.Inflight())
	}
}

func TestFlightFollowerDeadline(t *testing.T) {
	f := NewFlight()
	k := testKey(1)
	release := make(chan struct{})
	started := make(chan struct{})
	go f.Do(context.Background(), k, func() (any, error) {
		close(started)
		<-release
		return "late", nil
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err, leader := f.Do(ctx, k, func() (any, error) { return "never", nil })
	if leader {
		t.Fatal("second caller became leader while first was in flight")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower past its deadline got %v, want DeadlineExceeded", err)
	}
	close(release) // leader must still finish cleanly
	for f.Inflight() != 0 {
		time.Sleep(time.Millisecond)
	}
}

func TestFlightLeaderPanicReleasesFollowers(t *testing.T) {
	f := NewFlight()
	k := testKey(1)
	entered := make(chan struct{})
	boom := make(chan struct{})

	var followerErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		f.Do(context.Background(), k, func() (any, error) {
			close(entered)
			<-boom
			panic("engine blew up")
		})
	}()
	go func() {
		defer wg.Done()
		<-entered
		time.Sleep(5 * time.Millisecond) // give the follower time to join
		_, followerErr, _ = f.Do(context.Background(), k, func() (any, error) {
			return "fresh", nil
		})
	}()
	time.Sleep(15 * time.Millisecond)
	close(boom)
	wg.Wait()

	// The second caller either joined the flight (ErrLeaderPanic) or
	// arrived after cleanup and led its own successful run; both are
	// correct — what must never happen is a hang, which wg.Wait() above
	// already disproves.
	if followerErr != nil && !errors.Is(followerErr, ErrLeaderPanic) {
		t.Fatalf("follower error = %v, want nil or ErrLeaderPanic", followerErr)
	}
	if f.Inflight() != 0 {
		t.Fatalf("panicked flight left %d calls registered", f.Inflight())
	}
}

func TestFlightErrorSharedWithFollowers(t *testing.T) {
	f := NewFlight()
	k := testKey(1)
	wantErr := errors.New("execution failed")
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, _ := f.Do(context.Background(), k, func() (any, error) {
			close(started)
			<-release
			return nil, wantErr
		})
		if !errors.Is(err, wantErr) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-started
	done := make(chan error, 1)
	go func() {
		_, err, _ := f.Do(context.Background(), k, func() (any, error) { return "no", nil })
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	if err := <-done; !errors.Is(err, wantErr) {
		t.Fatalf("follower err = %v, want leader's %v", err, wantErr)
	}
}
