package rescache

import (
	"context"
	"errors"
	"sync"
)

// ErrLeaderPanic is what followers of a collapsed flight receive when the
// leader's execution panicked. The panic itself propagates on the leader's
// goroutine; followers get this error instead of hanging on a channel that
// would otherwise never close.
var ErrLeaderPanic = errors.New("rescache: in-flight leader panicked")

// call is one in-flight execution. done is closed exactly once, after val,
// err and panicked are final, so followers that observe the close also
// observe the outcome (channel-close happens-before).
type call struct {
	done     chan struct{}
	val      any
	err      error
	panicked bool
}

// Flight collapses concurrent executions keyed by cache Key: the first
// caller for a key becomes the leader and runs the function; callers that
// arrive while it is in flight become followers and share the leader's
// outcome. Sharing is sound for exactly the reason caching is — a
// deterministic job's result is a pure function of its key, so the
// follower's would-have-been execution and the leader's are
// indistinguishable.
type Flight struct {
	mu    sync.Mutex
	calls map[Key]*call
}

// NewFlight returns an empty flight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[Key]*call)}
}

// Inflight returns the number of keys currently executing.
func (f *Flight) Inflight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// Do executes fn under k, collapsing concurrent calls: one leader runs fn,
// followers block until it finishes and adopt its outcome. leader reports
// which role this call played.
//
// Followers wait under their own ctx — a follower whose deadline expires
// gets ctx.Err() without disturbing the flight. A leader panic is re-raised
// on the leader's goroutine after the flight is cleaned up; followers
// receive ErrLeaderPanic. The call is deregistered *before* done is closed,
// so a request arriving after completion starts fresh (and, in the serving
// stack, finds the result in the cache) instead of joining a spent flight.
func (f *Flight) Do(ctx context.Context, k Key, fn func() (any, error)) (val any, err error, leader bool) {
	f.mu.Lock()
	if c, ok := f.calls[k]; ok {
		f.mu.Unlock()
		//detlint:ignore goroutineorder follower wait: the adopted outcome is a pure function of the shared key (that is what makes collapsing sound), and the only schedule-dependent choice — finish vs. the follower's own deadline — never reaches a committed result
		select {
		case <-c.done:
			if c.panicked {
				return nil, ErrLeaderPanic, false
			}
			return c.val, c.err, false
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	c := &call{done: make(chan struct{})}
	f.calls[k] = c
	f.mu.Unlock()

	defer func() {
		f.mu.Lock()
		delete(f.calls, k)
		f.mu.Unlock()
		if r := recover(); r != nil {
			c.panicked = true
			close(c.done)
			panic(r)
		}
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, c.err, true
}
