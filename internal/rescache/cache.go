package rescache

import (
	"sync"

	"galois/internal/obs"
)

// entry is one resident cache line. Entries form an intrusive doubly-linked
// LRU list (head = most recently used); the map is used for lookup and
// delete only and is never ranged, so cache behavior is independent of map
// iteration order.
type entry struct {
	key        Key
	val        any
	size       int64
	prev, next *entry
}

// Counters is a point-in-time snapshot of a Cache's statistics.
type Counters struct {
	// Hits/Misses count Get outcomes; Stores counts successful Puts,
	// Evictions counts entries pushed out by the byte budget, Rejects
	// counts Puts refused because a single entry exceeded the whole
	// budget.
	Hits, Misses, Stores, Evictions, Rejects uint64
	// Entries and Bytes describe current residency; Budget is the
	// configured byte budget.
	Entries int
	Bytes   int64
	Budget  int64
}

// Cache is a byte-budget LRU over opaque result values, safe for concurrent
// use. Values are treated as immutable once stored: callers must copy
// before mutating what Get returns.
//
// An optional obs.Sink receives one event per state change (hit, miss,
// store, evict). obs.Trace buffers are single-writer per tid, so the cache
// serializes every emission under its own mutex and owns tid 0 of its sink;
// give the cache a dedicated sink rather than sharing one with a scheduler
// run.
type Cache struct {
	mu     sync.Mutex
	budget int64
	m      map[Key]*entry
	head   *entry // most recently used
	tail   *entry // least recently used
	bytes  int64
	sink   obs.Sink

	hits, misses, stores, evictions, rejects uint64
}

// New returns a cache with the given byte budget. Budgets <= 0 would admit
// nothing; New clamps them to 1 so a zero-value misconfiguration degrades
// to "reject everything" rather than dividing the serving path.
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = 1
	}
	return &Cache{budget: budget, m: make(map[Key]*entry)}
}

// SetSink attaches a trace sink for cache events. Call before the cache is
// shared with concurrent users.
func (c *Cache) SetSink(s obs.Sink) { c.sink = s }

// emit sends a cache event through the sink. Caller must hold c.mu — that
// is what serializes writers onto the sink's tid-0 buffer.
func (c *Cache) emit(kind obs.Kind, args [4]int64) {
	if c.sink != nil {
		c.sink.Emit(0, obs.Event{Kind: kind, Args: args})
	}
}

// Event emits an arbitrary cache-related event through the cache's sink,
// serialized with the cache's own emissions. The serving layer uses this
// for events the cache cannot observe itself (in-flight collapse).
func (c *Cache) Event(kind obs.Kind, args [4]int64) {
	c.mu.Lock()
	c.emit(kind, args)
	c.mu.Unlock()
}

// Get returns the value stored under k and marks it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok {
		c.misses++
		c.emit(obs.KindCacheMiss, [4]int64{k.Low64(), int64(len(c.m)), c.bytes})
		return nil, false
	}
	c.hits++
	c.moveFront(e)
	c.emit(obs.KindCacheHit, [4]int64{k.Low64(), int64(len(c.m)), c.bytes})
	return e.val, true
}

// Put stores v under k, charging size bytes against the budget and evicting
// least-recently-used entries until the cache fits. A single entry larger
// than the whole budget is rejected (stored nowhere, counted in Rejects).
// Storing an existing key replaces its value and size.
func (c *Cache) Put(k Key, v any, size int64) bool {
	if size <= 0 {
		size = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		c.rejects++
		return false
	}
	if e, ok := c.m[k]; ok {
		c.bytes += size - e.size
		e.val, e.size = v, size
		c.moveFront(e)
	} else {
		e = &entry{key: k, val: v, size: size}
		c.m[k] = e
		c.pushFront(e)
		c.bytes += size
	}
	c.stores++
	c.emit(obs.KindCacheStore, [4]int64{k.Low64(), size, c.bytes})
	// Evict from the cold end until we fit. The just-stored entry is at
	// the head and fits the budget by the check above, so the loop always
	// terminates with at least it resident.
	for c.bytes > c.budget && c.tail != nil {
		c.evict(c.tail)
	}
	return true
}

// Remove deletes k (honesty enforcement: a spot-check mismatch evicts the
// entry it contradicted). Reports whether the key was resident.
func (c *Cache) Remove(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.m, k)
	c.bytes -= e.size
	c.emit(obs.KindCacheEvict, [4]int64{e.key.Low64(), e.size, c.bytes})
	return true
}

// Counters snapshots the cache's statistics.
func (c *Cache) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Counters{
		Hits: c.hits, Misses: c.misses, Stores: c.stores,
		Evictions: c.evictions, Rejects: c.rejects,
		Entries: len(c.m), Bytes: c.bytes, Budget: c.budget,
	}
}

// evict removes e under the budget pressure path. Caller holds c.mu.
func (c *Cache) evict(e *entry) {
	c.unlink(e)
	delete(c.m, e.key)
	c.bytes -= e.size
	c.evictions++
	c.emit(obs.KindCacheEvict, [4]int64{e.key.Low64(), e.size, c.bytes})
}

// --- intrusive LRU list (caller holds c.mu) ---

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveFront(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
