package rescache

import (
	"errors"
	"testing"
)

func mustKey(t *testing.T, kind, variant, scale string, seed uint64, threads int) Key {
	t.Helper()
	k, err := KeyOf(kind, variant, scale, seed, threads)
	if err != nil {
		t.Fatalf("KeyOf(%s,%s,%s,%d,%d): %v", kind, variant, scale, seed, threads, err)
	}
	return k
}

func TestKeyOfStable(t *testing.T) {
	a := mustKey(t, "bfs", "g-d", "small", 42, 2)
	b := mustKey(t, "bfs", "g-d", "small", 42, 2)
	if a != b {
		t.Fatalf("identical specs hashed apart: %s vs %s", a, b)
	}
}

func TestKeyOfFieldSeparation(t *testing.T) {
	// Every semantic field must move the key, and adjacent string fields
	// must not re-segment into each other.
	base := mustKey(t, "bfs", "g-d", "small", 42, 2)
	distinct := []Key{
		mustKey(t, "sssp", "g-d", "small", 42, 2),
		mustKey(t, "bfs", "g-dnc", "small", 42, 2),
		mustKey(t, "bfs", "g-d", "default", 42, 2),
		mustKey(t, "bfs", "g-d", "small", 43, 2),
		mustKey(t, "bfs", "g-d", "small", 42, 4),
	}
	seen := map[Key]bool{base: true}
	for _, k := range distinct {
		if seen[k] {
			t.Fatalf("distinct specs collided on %s", k)
		}
		seen[k] = true
	}
	// Re-segmentation: ("ab","c") vs ("a","bc") as kind/variant would
	// collide under naive concatenation. Not normal specs, but the
	// encoding must hold for any strings.
	x := mustKey(t, "ab", "c", "small", 0, 1)
	y := mustKey(t, "a", "bc", "small", 0, 1)
	if x == y {
		t.Fatal("length prefixing failed: adjacent fields re-segmented")
	}
}

func TestKeyOfRejectsNondeterministic(t *testing.T) {
	_, err := KeyOf("bfs", "g-n", "small", 42, 2)
	if !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("g-n spec: got err %v, want ErrNondeterministic", err)
	}
}

func TestKeyOfLink(t *testing.T) {
	prev := make([]byte, 32)
	prev2 := make([]byte, 32)
	prev2[31] = 1
	canon := []byte{1, 'r', 'e', 'f'}

	a, err := KeyOfLink(prev, canon)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KeyOfLink(prev, canon)
	if err != nil || a != b {
		t.Fatalf("identical preimages hashed apart: %s vs %s (%v)", a, b, err)
	}
	// Both the chain prefix and the batch payload must move the key.
	if k, _ := KeyOfLink(prev2, canon); k == a {
		t.Fatal("prev does not move the link key")
	}
	if k, _ := KeyOfLink(prev, []byte{1, 'r', 'e', 'g'}); k == a {
		t.Fatal("canon does not move the link key")
	}
	// Link keys live in the same cache as spec keys (KeyOf) — the version
	// byte must keep the two preimage spaces apart. A spec key's preimage
	// can't be forged from (prev, canon) anyway, but cheap insurance.
	if spec := mustKey(t, "bfs", "g-d", "small", 42, 2); spec == a {
		t.Fatal("link key collided with a spec key")
	}

	for _, bad := range []struct {
		prev, canon []byte
	}{
		{nil, canon},
		{prev[:31], canon},
		{append(prev, 0), canon},
		{prev, nil},
		{prev, []byte{}},
	} {
		if _, err := KeyOfLink(bad.prev, bad.canon); err == nil {
			t.Errorf("KeyOfLink(%d-byte prev, %d-byte canon): expected error",
				len(bad.prev), len(bad.canon))
		}
	}
}

func TestKeyOfRejectsUnnormalized(t *testing.T) {
	cases := []struct {
		kind, variant, scale string
		threads              int
	}{
		{"", "g-d", "small", 1},
		{"bfs", "", "small", 1},
		{"bfs", "g-d", "", 1},
		{"bfs", "g-d", "small", 0},
		{"bfs", "g-d", "small", -1},
	}
	for _, c := range cases {
		if _, err := KeyOf(c.kind, c.variant, c.scale, 0, c.threads); err == nil {
			t.Errorf("KeyOf(%q,%q,%q,th=%d): expected error", c.kind, c.variant, c.scale, c.threads)
		}
	}
}
