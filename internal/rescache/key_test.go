package rescache

import (
	"errors"
	"testing"
)

func mustKey(t *testing.T, kind, variant, scale string, seed uint64, threads int) Key {
	t.Helper()
	k, err := KeyOf(kind, variant, scale, seed, threads)
	if err != nil {
		t.Fatalf("KeyOf(%s,%s,%s,%d,%d): %v", kind, variant, scale, seed, threads, err)
	}
	return k
}

func TestKeyOfStable(t *testing.T) {
	a := mustKey(t, "bfs", "g-d", "small", 42, 2)
	b := mustKey(t, "bfs", "g-d", "small", 42, 2)
	if a != b {
		t.Fatalf("identical specs hashed apart: %s vs %s", a, b)
	}
}

func TestKeyOfFieldSeparation(t *testing.T) {
	// Every semantic field must move the key, and adjacent string fields
	// must not re-segment into each other.
	base := mustKey(t, "bfs", "g-d", "small", 42, 2)
	distinct := []Key{
		mustKey(t, "sssp", "g-d", "small", 42, 2),
		mustKey(t, "bfs", "g-dnc", "small", 42, 2),
		mustKey(t, "bfs", "g-d", "default", 42, 2),
		mustKey(t, "bfs", "g-d", "small", 43, 2),
		mustKey(t, "bfs", "g-d", "small", 42, 4),
	}
	seen := map[Key]bool{base: true}
	for _, k := range distinct {
		if seen[k] {
			t.Fatalf("distinct specs collided on %s", k)
		}
		seen[k] = true
	}
	// Re-segmentation: ("ab","c") vs ("a","bc") as kind/variant would
	// collide under naive concatenation. Not normal specs, but the
	// encoding must hold for any strings.
	x := mustKey(t, "ab", "c", "small", 0, 1)
	y := mustKey(t, "a", "bc", "small", 0, 1)
	if x == y {
		t.Fatal("length prefixing failed: adjacent fields re-segmented")
	}
}

func TestKeyOfRejectsNondeterministic(t *testing.T) {
	_, err := KeyOf("bfs", "g-n", "small", 42, 2)
	if !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("g-n spec: got err %v, want ErrNondeterministic", err)
	}
}

func TestKeyOfRejectsUnnormalized(t *testing.T) {
	cases := []struct {
		kind, variant, scale string
		threads              int
	}{
		{"", "g-d", "small", 1},
		{"bfs", "", "small", 1},
		{"bfs", "g-d", "", 1},
		{"bfs", "g-d", "small", 0},
		{"bfs", "g-d", "small", -1},
	}
	for _, c := range cases {
		if _, err := KeyOf(c.kind, c.variant, c.scale, 0, c.threads); err == nil {
			t.Errorf("KeyOf(%q,%q,%q,th=%d): expected error", c.kind, c.variant, c.scale, c.threads)
		}
	}
}
