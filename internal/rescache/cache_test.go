package rescache

import (
	"fmt"
	"sync"
	"testing"

	"galois/internal/obs"
)

func testKey(i int) Key {
	k, err := KeyOf("bfs", "g-d", "small", uint64(i), 1)
	if err != nil {
		panic(err)
	}
	return k
}

func TestCacheGetPut(t *testing.T) {
	c := New(1 << 20)
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache returned a hit")
	}
	if !c.Put(k, "v1", 100) {
		t.Fatal("Put under budget rejected")
	}
	v, ok := c.Get(k)
	if !ok || v.(string) != "v1" {
		t.Fatalf("Get = %v,%v; want v1,true", v, ok)
	}
	cc := c.Counters()
	if cc.Hits != 1 || cc.Misses != 1 || cc.Stores != 1 || cc.Entries != 1 || cc.Bytes != 100 {
		t.Fatalf("counters = %+v", cc)
	}
}

func TestCacheEvictionUnderBudget(t *testing.T) {
	c := New(300)
	for i := 0; i < 5; i++ {
		c.Put(testKey(i), i, 100)
	}
	cc := c.Counters()
	if cc.Bytes > 300 {
		t.Fatalf("resident bytes %d exceed budget 300", cc.Bytes)
	}
	if cc.Entries != 3 || cc.Evictions != 2 {
		t.Fatalf("entries=%d evictions=%d; want 3,2", cc.Entries, cc.Evictions)
	}
	// LRU order: the two oldest (0, 1) were evicted, 2..4 remain.
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(testKey(i)); ok {
			t.Fatalf("key %d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.Get(testKey(i)); !ok {
			t.Fatalf("key %d should be resident", i)
		}
	}
}

func TestCacheLRUTouchOnGet(t *testing.T) {
	c := New(300)
	for i := 0; i < 3; i++ {
		c.Put(testKey(i), i, 100)
	}
	c.Get(testKey(0)) // 0 becomes most recent; 1 is now coldest
	c.Put(testKey(3), 3, 100)
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("key 1 should have been the LRU victim")
	}
	if _, ok := c.Get(testKey(0)); !ok {
		t.Fatal("recently-touched key 0 was evicted")
	}
}

func TestCacheOversizedEntryRejected(t *testing.T) {
	c := New(100)
	if c.Put(testKey(1), "big", 101) {
		t.Fatal("entry above the whole budget was accepted")
	}
	cc := c.Counters()
	if cc.Rejects != 1 || cc.Entries != 0 {
		t.Fatalf("counters = %+v; want 1 reject, 0 entries", cc)
	}
}

func TestCacheReplaceAccountsBytes(t *testing.T) {
	c := New(1000)
	k := testKey(1)
	c.Put(k, "a", 100)
	c.Put(k, "b", 250)
	cc := c.Counters()
	if cc.Entries != 1 || cc.Bytes != 250 {
		t.Fatalf("after replace: entries=%d bytes=%d; want 1,250", cc.Entries, cc.Bytes)
	}
	if v, _ := c.Get(k); v.(string) != "b" {
		t.Fatalf("replace kept the old value %v", v)
	}
}

func TestCacheRemove(t *testing.T) {
	c := New(1000)
	k := testKey(1)
	c.Put(k, "v", 10)
	if !c.Remove(k) {
		t.Fatal("Remove of resident key reported false")
	}
	if c.Remove(k) {
		t.Fatal("Remove of absent key reported true")
	}
	cc := c.Counters()
	if cc.Entries != 0 || cc.Bytes != 0 {
		t.Fatalf("after remove: %+v", cc)
	}
}

func TestCacheConcurrent(t *testing.T) {
	// Hammer the cache from many goroutines; correctness here is "no
	// race, budget respected" (run under -race in CI).
	c := New(64 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := testKey((g*31 + i) % 64)
				if v, ok := c.Get(k); ok {
					if fmt.Sprint(v) == "" {
						t.Error("empty value resident")
					}
				} else {
					c.Put(k, fmt.Sprintf("v%d", i), 1<<10)
				}
				if i%97 == 0 {
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if cc := c.Counters(); cc.Bytes > cc.Budget {
		t.Fatalf("resident %d bytes over budget %d", cc.Bytes, cc.Budget)
	}
}

func TestCacheSinkEvents(t *testing.T) {
	c := New(250)
	sink := obs.NewTrace(1)
	c.SetSink(sink)
	k := testKey(1)
	c.Get(k)           // miss
	c.Put(k, "v", 100) // store
	c.Get(k)           // hit
	c.Put(testKey(2), "w", 100)
	c.Put(testKey(3), "x", 100) // evicts k (LRU after touch order 1,2,3 → victim 1)
	c.Remove(testKey(2))        // explicit evict event

	var kinds []obs.Kind
	for _, ev := range sink.Events() {
		kinds = append(kinds, ev.Kind)
	}
	want := []obs.Kind{
		obs.KindCacheMiss, obs.KindCacheStore, obs.KindCacheHit,
		obs.KindCacheStore, obs.KindCacheStore, obs.KindCacheEvict,
		obs.KindCacheEvict,
	}
	if len(kinds) != len(want) {
		t.Fatalf("event kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}
