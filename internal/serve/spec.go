package serve

import (
	"encoding/json"
	"fmt"
)

// Spec is the wire form of one job: what to run and under which scheduler
// parameters. The zero values of optional fields are filled in by
// normalize, and the normalized spec — not the raw request — is what a
// Receipt carries, so re-executing a receipt needs no access to server
// defaults.
type Spec struct {
	// Kind names a registered job kind (bfs, sssp, mis, msf, pfp).
	Kind string `json:"kind"`
	// Variant selects the scheduler: g-n (speculative, non-deterministic),
	// g-d (DIG-scheduled deterministic) or g-dnc (deterministic without
	// the continuation optimization). Default g-d.
	Variant string `json:"variant,omitempty"`
	// Scale names the input size (small | default | full). Default small.
	Scale string `json:"scale,omitempty"`
	// Seed seeds the deterministic input derivation. Part of the job
	// identity: same (kind, scale, seed) means byte-identical input.
	Seed uint64 `json:"seed"`
	// Threads is the worker count for the run. Deterministic variants
	// produce the same fingerprint for every value — the portability
	// property the service exists to demonstrate.
	Threads int `json:"threads,omitempty"`
	// TimeoutMS bounds queue wait + execution; expired jobs are rejected
	// with 504 before they start. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace requests a Chrome trace-event capture of the run, returned
	// inline in the response (not part of the receipt).
	Trace bool `json:"trace,omitempty"`
}

// Deterministic reports whether the spec's variant has a reproducible
// fingerprint.
func (s Spec) Deterministic() bool { return s.Variant != "g-n" }

// String is the spec's canonical one-line form, used in logs and reports.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%s/%s/seed%d/t%d", s.Kind, s.Variant, s.Scale, s.Seed, s.Threads)
}

// Receipt is the verifiable part of a job response: the normalized spec
// plus the result fingerprint. POST /verify re-executes the spec and
// compares fingerprints; for deterministic variants a mismatch means the
// receipt was tampered with or the serving stack broke determinism.
type Receipt struct {
	Spec          Spec   `json:"spec"`
	Fingerprint   string `json:"fingerprint"` // %016x
	Deterministic bool   `json:"deterministic"`
	// Cached reports that this response was served from the result cache
	// rather than a fresh execution. It describes transport, not identity:
	// it is excluded from verification (POST /verify compares fingerprints
	// only) and must never flow into a fingerprint — detlint's taintfp
	// pass treats any read of a Cached field as tainted, so the compiler
	// of receipts cannot launder serving metadata into a proof.
	Cached bool `json:"cached,omitempty"`
}

// JobResult is the full POST /jobs response: the receipt plus run
// measurements and the optional trace capture.
type JobResult struct {
	Receipt Receipt `json:"receipt"`
	// WallNS is the execution time of the run itself; QueueNS is the time
	// the job spent admitted but waiting for a worker.
	WallNS  int64  `json:"wall_ns"`
	QueueNS int64  `json:"queue_ns"`
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
	Rounds  uint64 `json:"rounds"`
	// EngineHit reports whether the run reused a pooled engine (the
	// allocation-free steady-state path) rather than constructing one.
	EngineHit bool `json:"engine_hit"`
	// Trace is the Chrome trace-event JSON of the run when Spec.Trace was
	// set (loadable in Perfetto or chrome://tracing).
	Trace json.RawMessage `json:"trace,omitempty"`
}

// Healthz is the GET /healthz response: a cheap load/liveness snapshot —
// counters only, no engine checkout, no lock beyond the pool's — built for
// high-frequency polling by a routing tier. OK is false only while the
// server drains; the load fields let a prober distinguish "alive and idle"
// from "alive and saturated" (queue_depth near queue_cap with in_flight at
// the worker count means new submissions are about to see 429s).
type Healthz struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
	// QueueDepth is the number of admitted tasks waiting for a worker;
	// QueueCap is the admission queue bound (full queue => 429).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// InFlight is the number of tasks currently executing on workers.
	InFlight int64 `json:"in_flight"`
	Workers  int   `json:"workers"`
	// SessionsLive counts live (un-evicted) sessions pinned on this
	// backend.
	SessionsLive int `json:"sessions_live"`
	// Pool summarizes engine-pool checkout statistics.
	Pool HealthzPool `json:"pool"`
}

// HealthzPool is the engine-pool slice of a Healthz snapshot.
type HealthzPool struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Transients uint64 `json:"transients"`
}

// VerifyResult is the POST /verify response.
type VerifyResult struct {
	Match         bool   `json:"match"`
	Deterministic bool   `json:"deterministic"`
	Expect        string `json:"expect"`
	Got           string `json:"got"`
	WallNS        int64  `json:"wall_ns"`
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

// httpError is an error with an HTTP status and optional Retry-After
// seconds, produced by admission and validation.
type httpError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}
