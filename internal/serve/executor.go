package serve

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"

	"galois"
	"galois/internal/obs"
)

// task is one admitted unit of work. Implementations run on a worker
// goroutine — tid is that worker's metric cell (>= 1; cell 0 is the
// handler side) — and deliver their own outcome (each task owns a
// buffered reply channel, so a worker never blocks on a submitter that
// stopped listening).
type task interface {
	run(tid int)
}

// executor is the execution substrate shared by one-shot jobs and session
// batches: the bounded admission queue, the worker pool, the engine pool,
// graceful drain, and the metrics registry. Policy — caching, input
// resolution, chains — lives above it in Server; the executor only knows
// how to admit a task and hand it a worker and an engine.
type executor struct {
	queueDepth int
	queue      chan task
	workers    sync.WaitGroup
	pool       *EnginePool

	// inflight counts tasks currently executing on a worker (admitted
	// tasks still queued are visible as len(queue) instead). It is the
	// load signal a routing tier reads from GET /healthz, so it must be
	// cheap: one atomic per task, no locks, no engine checkout.
	inflight atomic.Int64

	// admitMu orders submissions against shutdown: submitters hold the
	// read side across the draining check and the queue send, drain holds
	// the write side while flipping the flag and closing the queue, so no
	// send can race the close.
	admitMu    sync.RWMutex
	isDraining bool

	// met collects serving metrics. Cell 0 is the handler side (guarded
	// by metMu — handlers run on arbitrary goroutines); cells 1..Workers
	// are single-writer per worker.
	met   *obs.Registry
	metMu sync.Mutex
}

// newExecutor builds the substrate and starts its workers.
func newExecutor(workers, queueDepth, engineCap int) *executor {
	x := &executor{
		queueDepth: queueDepth,
		queue:      make(chan task, queueDepth),
		pool:       NewEnginePool(engineCap),
		met:        obs.NewRegistry(workers + 1),
	}
	x.workers.Add(workers)
	for w := 0; w < workers; w++ {
		//detlint:ignore goroutineorder task executors: each task's outcome returns over its own buffered channel and every deterministic result is a pure function of its spec, so worker scheduling never reaches committed output
		go x.worker(w)
	}
	return x
}

func (x *executor) worker(wid int) {
	defer x.workers.Done()
	for t := range x.queue {
		x.inflight.Add(1)
		t.run(wid + 1)
		x.inflight.Add(-1)
	}
}

// InFlight reports the number of tasks currently executing on workers.
func (x *executor) InFlight() int64 { return x.inflight.Load() }

// count bumps a handler-side counter (metric cell 0, mutex-guarded).
func (x *executor) count(name string) {
	c := x.met.Counter(name)
	x.metMu.Lock()
	c.Add(0, 1)
	x.metMu.Unlock()
}

// admit places t on the queue, or rejects it: 503 while draining, 429
// with Retry-After when the queue is full. Once admit returns nil the
// task will run — a queued task is never dropped, even during drain.
func (x *executor) admit(t task) *httpError {
	x.admitMu.RLock()
	defer x.admitMu.RUnlock()
	if x.isDraining {
		x.count("serve.reject.draining")
		return errf(http.StatusServiceUnavailable, "server is draining; not accepting jobs")
	}
	select {
	case x.queue <- t:
	default:
		x.count("serve.reject.full")
		return &httpError{status: http.StatusTooManyRequests,
			msg: "job queue full", retryAfter: 1}
	}
	x.count("serve.admit")
	return nil
}

// withEngine checks an engine out of the pool for the duration of fn,
// with panic containment: a panicking run discards the engine (its
// retained state is suspect) instead of returning it to the pool, and
// surfaces as a 500 rather than killing the worker.
func (x *executor) withEngine(threads, tid int, fn func(eng *galois.Engine, engineHit bool)) (herr *httpError) {
	eng, transient := x.pool.Get(threads)
	defer func() {
		if r := recover(); r != nil {
			x.pool.Discard(threads, eng, transient)
			x.met.Counter("serve.panic").Add(tid, 1)
			herr = errf(http.StatusInternalServerError, "run panicked: %v", r)
			return
		}
		x.pool.Put(threads, eng, transient)
	}()
	fn(eng, !transient)
	return nil
}

// drain flips admission to draining, lets the workers finish everything
// already admitted, then closes the engine pool. Returns ctx.Err() if the
// drain outlives ctx (workers keep draining regardless).
func (x *executor) drain(ctx context.Context) error {
	x.admitMu.Lock()
	if !x.isDraining {
		x.isDraining = true
		close(x.queue)
	}
	x.admitMu.Unlock()

	done := make(chan struct{})
	//detlint:ignore goroutineorder shutdown join: signals only that all workers exited; no result flows through it
	go func() {
		x.workers.Wait()
		close(done)
	}()
	//detlint:ignore goroutineorder shutdown wait: chooses between "drained" and "caller gave up"; job results are unaffected
	select {
	case <-done:
		x.pool.Drain()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (x *executor) draining() bool {
	x.admitMu.RLock()
	defer x.admitMu.RUnlock()
	return x.isDraining
}

// schedOpts translates a normalized (variant, threads) pair plus a
// checked-out engine into scheduler options — the single translation
// point for every execution path (one-shot jobs, session batches, chain
// replays).
func schedOpts(variant string, threads int, eng *galois.Engine, sink *galois.Trace) []galois.Option {
	opts := []galois.Option{galois.WithEngine(eng), galois.WithThreads(threads)}
	switch variant {
	case "g-d":
		opts = append(opts, galois.WithSched(galois.Deterministic))
	case "g-dnc":
		opts = append(opts, galois.WithSched(galois.Deterministic), galois.WithoutContinuation())
	}
	if sink != nil {
		opts = append(opts, galois.WithTrace(sink))
	}
	return opts
}
