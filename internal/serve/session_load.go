package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"galois/internal/obs"
	"galois/internal/rng"
	"galois/internal/session"
)

// SessionLoadConfig describes one chained-mutation load phase: Sessions
// concurrent session clients, each creating one session (kinds assigned
// round-robin) and driving Batches chained mutation batches against it,
// then auditing the whole chain through the server-side verify replay.
//
// Every batch a client submits is drawn from a per-client partitioned
// seeded stream — a pure function of (Seed, client index) — so the
// workload is deterministic: the lowest-indexed client of each kind
// produces a canonical batch sequence whose final chain hash is
// comparable across runs, machines and thread counts, and is reported as
// the kind's bench fingerprint.
type SessionLoadConfig struct {
	Kinds   []string // session kinds (default: dmr, sssp registration order)
	Variant string   // g-d (default) or g-dnc
	// Sessions is the number of concurrent session clients (default 1);
	// Batches the chain length each drives (default 3).
	Sessions  int
	Batches   int
	Scale     string
	Seed      uint64
	Threads   int
	TimeoutMS int64
	// Verify disables the final chain audit when false is explicitly
	// wanted; the zero value of SkipVerify keeps audits on by default.
	SkipVerify bool
}

// SessionCellStat aggregates the sessions of one kind.
type SessionCellStat struct {
	Kind     string `json:"kind"`
	Sessions int    `json:"sessions"`
	Batches  int    `json:"batches"`
	// ChainLen is links per session (genesis + batches).
	ChainLen int `json:"chain_len"`
	// FinalChain is the lowest-indexed client's final chain hash — the
	// canonical, run-to-run comparable fingerprint of this cell.
	FinalChain string `json:"final_chain"`
	// MedianNS/MaxNS summarize end-to-end batch latency.
	MedianNS int64  `json:"median_ns"`
	MaxNS    int64  `json:"max_ns"`
	Commits  uint64 `json:"commits"`
	Aborts   uint64 `json:"aborts"`
	Rounds   uint64 `json:"rounds"`
}

// SessionReport is the outcome of one RunSessionLoad phase.
type SessionReport struct {
	Sessions   int   `json:"sessions"`
	Batches    int   `json:"batches"`
	OK         int   `json:"ok"`
	Rejected   int   `json:"rejected"`
	Errors     int   `json:"errors"`
	DurationNS int64 `json:"duration_ns"`
	// VerifyFailures lists sessions whose server-side chain replay did not
	// match — each is a determinism violation.
	VerifyFailures []string          `json:"verify_failures,omitempty"`
	Cells          []SessionCellStat `json:"cells"`
	ErrorSamples   []string          `json:"error_samples,omitempty"`
}

// sessionClientAcc is one client's private accumulator, merged by client
// index after the join.
type sessionClientAcc struct {
	kind       string
	lats       []int64
	finalChain string
	chainLen   int
	last       *BatchResult
	batches    int
	rejected   int
	errs       []string
	verifyFail string
}

// sessionBatches derives client ci's deterministic batch sequence for
// kind: refine batches walk an ascending quality bound (with seeded
// jitter, capped under the 3000-centidegree limit) so each does real
// incremental refinement; reweight batches draw perturbation counts and
// seeds from the same stream.
func sessionBatches(kind string, n int, seed uint64, ci int) []session.BatchSpec {
	rnd := rng.New(rng.Mix64(seed ^ (uint64(ci)+1)*0x9e3779b97f4a7c15))
	out := make([]session.BatchSpec, 0, n)
	for i := 0; i < n; i++ {
		switch kind {
		case "dmr":
			angle := 2000 + ((i+1)*900)/n + int(rnd.Uint64n(100))
			out = append(out, session.BatchSpec{Op: "refine", AngleCentideg: angle})
		default: // sssp
			out = append(out, session.BatchSpec{Op: "reweight",
				Edges: 16 + int(rnd.Uint64n(16)), Seed: rnd.Uint64()})
		}
	}
	return out
}

// RunSessionLoad drives one chained-mutation load phase against the
// server behind c. 429 rejections back off and retry; any other error is
// terminal for that client's remaining batches.
func RunSessionLoad(ctx context.Context, c *Client, cfg SessionLoadConfig) (*SessionReport, error) {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = []string{"dmr", "sssp"}
	}
	if cfg.Variant == "" {
		cfg.Variant = "g-d"
	}
	sessions := cfg.Sessions
	if sessions < 1 {
		sessions = 1
	}
	batches := cfg.Batches
	if batches < 1 {
		batches = 3
	}

	accs := make([]sessionClientAcc, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(sessions)
	for ci := 0; ci < sessions; ci++ {
		accs[ci].kind = cfg.Kinds[ci%len(cfg.Kinds)]
		//detlint:ignore goroutineorder session load clients: each goroutine writes only its own accumulator slot and slots are merged by client index after the join
		go func(ci int) {
			defer wg.Done()
			acc := &accs[ci]
			si, err := createSessionRetry(ctx, c, session.InitSpec{
				Kind: acc.kind, Variant: cfg.Variant, Scale: cfg.Scale,
				Seed: cfg.Seed, Threads: cfg.Threads,
			}, acc)
			if err != nil {
				acc.errs = append(acc.errs, fmt.Sprintf("create %s: %v", acc.kind, err))
				return
			}
			prev := si.Head
			for _, b := range sessionBatches(acc.kind, batches, cfg.Seed, ci) {
				b.Prev = prev
				b.Threads = cfg.Threads
				b.TimeoutMS = cfg.TimeoutMS
				for {
					t0 := time.Now()
					br, err := c.SessionBatch(ctx, si.ID, b)
					if err != nil {
						if ae, ok := err.(*APIError); ok && ae.IsRetryable() && ctx.Err() == nil {
							acc.rejected++
							back := ae.RetryAfter
							if back <= 0 {
								back = 50 * time.Millisecond
							}
							time.Sleep(back)
							continue
						}
						acc.errs = append(acc.errs, fmt.Sprintf("%s batch: %v", si.ID, err))
						return
					}
					acc.batches++
					acc.lats = append(acc.lats, time.Since(t0).Nanoseconds())
					acc.last = br
					prev = br.Link.Chain
					acc.finalChain = br.Link.Chain
					acc.chainLen = br.Link.Index + 1
					break
				}
				if ctx.Err() != nil {
					return
				}
			}
			if cfg.SkipVerify {
				return
			}
			// The audit: replay the whole chain server-side against the
			// final receipt this client holds.
			vo, err := c.SessionVerify(ctx, si.ID, acc.finalChain, cfg.Threads)
			if err != nil {
				acc.errs = append(acc.errs, fmt.Sprintf("%s verify: %v", si.ID, err))
				return
			}
			if !vo.Match {
				acc.verifyFail = fmt.Sprintf("%s (%s): replay diverged at link %d: %s",
					si.ID, acc.kind, vo.FailedIndex, vo.Reason)
			}
		}(ci)
	}
	wg.Wait()

	rep := &SessionReport{Sessions: sessions, Batches: batches,
		DurationNS: time.Since(start).Nanoseconds()}
	cellIdx := map[string]int{}
	for _, k := range cfg.Kinds {
		if _, ok := cellIdx[k]; !ok {
			cellIdx[k] = len(rep.Cells)
			rep.Cells = append(rep.Cells, SessionCellStat{Kind: k, Batches: batches})
		}
	}
	latsByCell := make([][]int64, len(rep.Cells))
	for ci := range accs {
		acc := &accs[ci]
		rep.OK += acc.batches
		rep.Rejected += acc.rejected
		rep.Errors += len(acc.errs)
		if len(rep.ErrorSamples) < 5 {
			rep.ErrorSamples = append(rep.ErrorSamples, acc.errs...)
		}
		if acc.verifyFail != "" {
			rep.VerifyFailures = append(rep.VerifyFailures, acc.verifyFail)
		}
		cs := &rep.Cells[cellIdx[acc.kind]]
		cs.Sessions++
		latsByCell[cellIdx[acc.kind]] = append(latsByCell[cellIdx[acc.kind]], acc.lats...)
		// The canonical fingerprint is the lowest-indexed client's final
		// chain; clients are merged in index order, so first wins.
		if cs.FinalChain == "" && acc.finalChain != "" {
			cs.FinalChain = acc.finalChain
			cs.ChainLen = acc.chainLen
		}
		if acc.last != nil {
			cs.Commits, cs.Aborts, cs.Rounds = acc.last.Commits, acc.last.Aborts, acc.last.Rounds
		}
	}
	for i := range rep.Cells {
		lats := latsByCell[i]
		if len(lats) > 0 {
			sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
			rep.Cells[i].MedianNS = lats[len(lats)/2]
			rep.Cells[i].MaxNS = lats[len(lats)-1]
		}
	}
	return rep, nil
}

// createSessionRetry creates a session, backing off on 429 (the
// live-session cap under load behaves like queue pressure).
func createSessionRetry(ctx context.Context, c *Client, is session.InitSpec, acc *sessionClientAcc) (*SessionInfo, error) {
	for {
		si, err := c.CreateSession(ctx, is)
		if err != nil {
			if ae, ok := err.(*APIError); ok && ae.IsRetryable() && ctx.Err() == nil {
				acc.rejected++
				back := ae.RetryAfter
				if back <= 0 {
					back = 50 * time.Millisecond
				}
				time.Sleep(back)
				continue
			}
			return nil, err
		}
		return si, nil
	}
}

// BenchEntries converts a session load report into Mode "serve-session"
// trajectory entries: wall_ns is median end-to-end batch latency, the
// fingerprint column carries the canonical client's final chain hash, and
// chain_len joins the key — chains are only comparable at equal length.
// benchdiff treats fingerprint drift on a matched key as a hard failure,
// exactly like det receipts.
func (rep *SessionReport) BenchEntries(cfg SessionLoadConfig) []obs.BenchEntry {
	variant := cfg.Variant
	if variant == "" {
		variant = "g-d"
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = 1
	}
	var out []obs.BenchEntry
	for _, cs := range rep.Cells {
		if cs.Sessions == 0 || cs.FinalChain == "" {
			continue
		}
		ratio := 0.0
		if cs.Commits+cs.Aborts > 0 {
			ratio = float64(cs.Commits) / float64(cs.Commits+cs.Aborts)
		}
		out = append(out, obs.BenchEntry{
			App: cs.Kind, Variant: variant, Sched: "det",
			Threads: threads, Scale: cfg.Scale,
			WallNS:  cs.MedianNS,
			Commits: cs.Commits, Aborts: cs.Aborts, Rounds: cs.Rounds,
			CommitRatio: ratio,
			Fingerprint: cs.FinalChain,
			Mode:        "serve-session",
			Clients:     rep.Sessions,
			ChainLen:    cs.ChainLen,
		})
	}
	return out
}
