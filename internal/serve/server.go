package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"galois"
	"galois/internal/obs"
	"galois/internal/rescache"
	"galois/internal/session"
	"galois/internal/stats"
)

// Config sizes a Server. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the admission queue; a full queue rejects with
	// 429 + Retry-After. Default 64.
	QueueDepth int
	// Workers is the number of job-executing goroutines. Default
	// GOMAXPROCS.
	Workers int
	// EngineCap is the engine pool's retained-engine cap per thread-count
	// key. Default Workers (so a steady mixed workload never constructs
	// engines after warmup).
	EngineCap int
	// DefaultThreads is the per-job thread count when the spec omits it.
	// Default 1.
	DefaultThreads int
	// MaxThreads clamps per-job thread requests. Default 8.
	MaxThreads int
	// DefaultTimeout bounds queue wait + execution when the spec omits
	// timeout_ms. Default 60s.
	DefaultTimeout time.Duration
	// MaxBody bounds request bodies. Default 1 MiB.
	MaxBody int64
	// Registry supplies the job kinds. Default DefaultRegistry().
	Registry *Registry
	// SessionKinds supplies the session kinds. Default
	// session.DefaultKinds().
	SessionKinds *session.KindSet
	// MaxSessions caps live (un-evicted) sessions. Default 64.
	MaxSessions int
	// SessionIdle > 0 starts the eviction janitor: a session with no
	// batch for this long loses its pinned state and gains a tombstone
	// link. 0 disables time-based eviction (explicit DELETE still works).
	SessionIdle time.Duration
	// CacheBytes > 0 enables the content-addressed result cache with that
	// byte budget; 0 (the default) disables caching entirely. cmd/galoisd
	// defaults the flag to 64 MiB — the zero default here keeps embedded
	// and test servers cache-free unless they opt in.
	CacheBytes int64
	// CacheSpotCheck is the fraction of cache hits re-executed through
	// the verify path as an honesty check (0 disables, 1 re-executes every
	// hit). Selection is deterministic, drawn from a seeded private
	// stream.
	CacheSpotCheck float64
	// CacheSpotSeed seeds the spot-check selector. Default 1.
	CacheSpotSeed uint64
	// CacheSink optionally receives cache trace events (hit, miss, store,
	// evict, collapse). The cache serializes all emissions onto tid 0 of
	// this sink; do not share it with a traced scheduler run.
	CacheSink obs.Sink
}

func (c *Config) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EngineCap <= 0 {
		c.EngineCap = c.Workers
	}
	if c.DefaultThreads <= 0 {
		c.DefaultThreads = 1
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = DefaultRegistry()
	}
	if c.SessionKinds == nil {
		c.SessionKinds = session.DefaultKinds()
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.CacheSpotSeed == 0 {
		c.CacheSpotSeed = 1
	}
}

// job is one admitted one-shot unit of work.
type job struct {
	srv      *Server
	spec     Spec
	kind     *Kind
	deadline time.Time
	admitted time.Time
	// ckey is the result-cache address of the spec when store or recheck
	// is set. store caches the outcome after a successful run; recheck
	// serves from the cache if the key was filled while the job queued
	// (a verify re-execution can land the result first) so an admitted
	// spec never executes twice. Honesty re-executions (verify,
	// spot-check) set store without recheck — they exist to run.
	ckey    rescache.Key
	store   bool
	recheck bool
	// done receives the outcome exactly once. Buffered so a worker never
	// blocks on a submitter that stopped waiting (client disconnect).
	done chan jobOutcome
}

// run implements task: execute on a worker and deliver the outcome.
func (j *job) run(tid int) { j.done <- j.srv.runJob(tid, j) }

type jobOutcome struct {
	res *JobResult
	err *httpError
}

// Server is the deterministic analytics job service. Create with
// NewServer, expose via Handler, stop with Shutdown. Execution mechanics
// (admission, workers, engines, drain) live in the executor; the Server
// layers policy on top: spec normalization, the result cache, and the
// session subsystem.
type Server struct {
	cfg      Config
	reg      *Registry
	inputs   *inputCache
	exec     *executor
	sessions *session.Manager
	mux      *http.ServeMux

	// cache/flight/spot are nil unless Config.CacheBytes enabled caching:
	// the result cache, the singleflight group collapsing identical
	// in-flight submissions, and the deterministic hit spot-checker.
	cache  *rescache.Cache
	flight *rescache.Flight
	spot   *spotChecker

	// janitorStop ends the idle-eviction janitor; nil when SessionIdle=0.
	janitorStop chan struct{}
	janitorDone sync.WaitGroup
}

// NewServer builds a server from cfg and starts its workers.
func NewServer(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Registry,
		inputs:   newInputCache(),
		exec:     newExecutor(cfg.Workers, cfg.QueueDepth, cfg.EngineCap),
		sessions: session.NewManager(cfg.SessionKinds, cfg.MaxSessions),
	}
	if cfg.CacheBytes > 0 {
		s.cache = rescache.New(cfg.CacheBytes)
		if cfg.CacheSink != nil {
			s.cache.SetSink(cfg.CacheSink)
		}
		s.flight = rescache.NewFlight()
		if cfg.CacheSpotCheck > 0 {
			s.spot = newSpotChecker(cfg.CacheSpotCheck, cfg.CacheSpotSeed)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /verify", s.handleVerify)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /kinds", s.handleKinds)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionClose)
	s.mux.HandleFunc("POST /sessions/{id}/batches", s.handleSessionBatch)
	s.mux.HandleFunc("POST /sessions/{id}/verify", s.handleSessionVerify)
	if cfg.SessionIdle > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone.Add(1)
		//detlint:ignore goroutineorder eviction janitor: eviction timing is wall-clock policy by design; the tombstone link it seals is a pure function of the chain head and reason, never of when the sweep ran
		go s.janitor(cfg.SessionIdle)
	}
	return s
}

// janitor periodically evicts idle sessions. The sweep itself is also run
// inline by the session handlers, so eviction is visible to clients even
// without the ticker; the janitor's job is freeing pinned state on a
// server nobody is talking to.
func (s *Server) janitor(idle time.Duration) {
	defer s.janitorDone.Done()
	t := time.NewTicker(idle / 2)
	defer t.Stop()
	for {
		//detlint:ignore goroutineorder janitor tick-vs-stop: eviction timing is wall-clock policy by design; the tombstone link is a pure function of the chain head and reason
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.sweepSessions()
		}
	}
}

// sweepSessions evicts sessions idle past the configured threshold.
func (s *Server) sweepSessions() {
	if s.cfg.SessionIdle <= 0 {
		return
	}
	for range s.sessions.EvictIdle(time.Now().UnixNano(), s.cfg.SessionIdle.Nanoseconds()) {
		s.exec.count("serve.session.evict")
	}
}

// Handler returns the server's HTTP interface.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics registry (counters accumulate for
// the life of the server).
func (s *Server) Metrics() *obs.Registry { return s.exec.met }

// Sessions returns the server's session manager.
func (s *Server) Sessions() *session.Manager { return s.sessions }

// PoolCounters snapshots the engine pool's checkout statistics.
func (s *Server) PoolCounters() PoolCounters { return s.exec.pool.Counters() }

// CacheCounters snapshots the result cache's statistics; the zero value
// when caching is disabled.
func (s *Server) CacheCounters() rescache.Counters {
	if s.cache == nil {
		return rescache.Counters{}
	}
	return s.cache.Counters()
}

// count bumps a handler-side counter (metric cell 0, mutex-guarded).
func (s *Server) count(name string) { s.exec.count(name) }

// normalize validates a raw spec against the registry and config and fills
// defaults, returning the canonical spec a receipt will carry.
func (s *Server) normalize(spec Spec) (Spec, *Kind, *httpError) {
	kind := s.reg.Lookup(spec.Kind)
	if kind == nil {
		return spec, nil, errf(http.StatusBadRequest, "unknown job kind %q (have %v)", spec.Kind, s.reg.Names())
	}
	switch spec.Variant {
	case "":
		spec.Variant = "g-d"
	case "g-n", "g-d", "g-dnc":
	default:
		return spec, nil, errf(http.StatusBadRequest, "unknown variant %q (g-n|g-d|g-dnc)", spec.Variant)
	}
	if spec.Scale == "" {
		spec.Scale = "small"
	}
	switch spec.Scale {
	case "small", "default", "full":
	default:
		return spec, nil, errf(http.StatusBadRequest, "unknown scale %q (small|default|full)", spec.Scale)
	}
	if spec.Threads <= 0 {
		spec.Threads = s.cfg.DefaultThreads
	}
	if spec.Threads > s.cfg.MaxThreads {
		return spec, nil, errf(http.StatusBadRequest, "threads %d exceeds server limit %d", spec.Threads, s.cfg.MaxThreads)
	}
	if spec.TimeoutMS < 0 {
		return spec, nil, errf(http.StatusBadRequest, "negative timeout_ms")
	}
	return spec, kind, nil
}

// Execute runs one job through admission: it is the common path of
// POST /jobs and POST /verify, and is also the in-process API the load
// generator's -inprocess mode and the tests use directly.
func (s *Server) Execute(ctx context.Context, spec Spec) (*JobResult, error) {
	res, herr := s.execute(ctx, spec)
	if herr != nil {
		return nil, herr
	}
	return res, nil
}

func (s *Server) execute(ctx context.Context, spec Spec) (*JobResult, *httpError) {
	return s.executeMode(ctx, spec, false)
}

// executeMode is the common execution path. bypassCache marks honesty
// re-executions — POST /verify and cache spot-checks — which must reach a
// real engine run: they skip both the cache lookup and the singleflight
// join (their outcome still refreshes the cache, but is never read from
// it, so verification can never become circular).
func (s *Server) executeMode(ctx context.Context, spec Spec, bypassCache bool) (*JobResult, *httpError) {
	spec, kind, herr := s.normalize(spec)
	if herr != nil {
		return nil, herr
	}
	timeout := s.cfg.DefaultTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	key, cacheable := s.cacheKey(spec, kind)
	if !cacheable || bypassCache {
		return s.enqueue(ctx, spec, kind, key, cacheable, false, timeout)
	}

	if v, ok := s.cache.Get(key); ok {
		return s.serveHit(ctx, key, spec, v.(*cachedResult))
	}
	s.count("serve.cache.miss")

	// Collapse concurrent identical submissions onto one execution. The
	// leader detaches from its own request context (bounded by the job
	// deadline instead): a leader disconnect must not poison the outcome
	// its followers are waiting to share. Followers wait under their own
	// context plus the same deadline.
	wctx, wcancel := context.WithTimeout(ctx, timeout)
	defer wcancel()
	v, ferr, leader := s.flight.Do(wctx, key, func() (any, error) {
		lctx, lcancel := context.WithTimeout(context.WithoutCancel(ctx), timeout)
		defer lcancel()
		res, lerr := s.enqueue(lctx, spec, kind, key, true, true, timeout)
		return jobOutcome{res: res, err: lerr}, nil
	})
	if ferr != nil {
		if errors.Is(ferr, rescache.ErrLeaderPanic) {
			return nil, errf(http.StatusInternalServerError, "job %s: %v", spec, ferr)
		}
		return nil, errf(http.StatusGatewayTimeout,
			"request context canceled while job %s in flight: %v", spec, ferr)
	}
	out := v.(jobOutcome)
	if !leader {
		s.count("serve.cache.collapse")
		s.cache.Event(obs.KindCacheCollapse, [4]int64{key.Low64()})
		if out.res != nil {
			// Followers get their own copy: results must never be shared
			// mutable between responses.
			shared := *out.res
			return &shared, out.err
		}
	}
	return out.res, out.err
}

// serveHit answers a request from a resident cache entry, first giving the
// spot-checker its chance to re-execute the spec and compare fingerprints.
// A mismatch is the cache caught lying: the entry is evicted and the fresh
// (true) result is served. A spot-check that cannot run — draining, queue
// full, deadline — skips rather than fails: honesty enforcement needs an
// engine, and the hit is still backed by a verifiable receipt.
func (s *Server) serveHit(ctx context.Context, key rescache.Key, spec Spec, cr *cachedResult) (*JobResult, *httpError) {
	s.count("serve.cache.hit")
	if s.spot != nil && s.spot.pick() {
		s.count("serve.cache.spotcheck")
		fresh, herr := s.executeMode(ctx, spec, true)
		switch {
		case herr != nil:
			s.count("serve.cache.spotcheck.skip")
		case fresh.Receipt.Fingerprint != cr.Receipt.Fingerprint:
			s.count("serve.cache.spotcheck.mismatch")
			s.cache.Remove(key)
			return fresh, nil
		}
	}
	return cr.result(), nil
}

// enqueue runs one job through admission and waits for its outcome: the
// tail of every execution path, cached or not.
func (s *Server) enqueue(ctx context.Context, spec Spec, kind *Kind, key rescache.Key, store, recheck bool, timeout time.Duration) (*JobResult, *httpError) {
	now := time.Now()
	j := &job{
		srv:      s,
		spec:     spec,
		kind:     kind,
		deadline: now.Add(timeout),
		admitted: now,
		ckey:     key,
		store:    store,
		recheck:  recheck,
		done:     make(chan jobOutcome, 1),
	}
	if herr := s.exec.admit(j); herr != nil {
		return nil, herr
	}

	// The job is admitted: a worker will run it and deliver the outcome on
	// the buffered done channel whether or not anyone is still listening.
	//detlint:ignore goroutineorder admission wait: this select only decides whether the HTTP response gets written; the job's committed result is a pure function of its spec and is delivered via the buffered channel regardless
	select {
	case out := <-j.done:
		return out.res, out.err
	case <-ctx.Done():
		return nil, errf(http.StatusGatewayTimeout, "request context canceled while job %s in flight: %v", spec, ctx.Err())
	}
}

// runJob executes one job on a pooled engine and assembles its result.
func (s *Server) runJob(tid int, j *job) jobOutcome {
	if time.Now().After(j.deadline) {
		s.exec.met.Counter("serve.timeout").Add(tid, 1)
		return jobOutcome{err: errf(http.StatusGatewayTimeout,
			"job %s exceeded its deadline while queued", j.spec)}
	}
	if j.recheck {
		if v, ok := s.cache.Get(j.ckey); ok {
			// Queued-then-cached: the result landed (via a verify or
			// spot-check re-execution) while this job waited for a worker.
			// Serving the resident copy keeps the one-execution-per-spec
			// property instead of running the same pure function twice.
			s.exec.met.Counter("serve.cache.hit_queued").Add(tid, 1)
			return jobOutcome{res: v.(*cachedResult).result()}
		}
	}
	ent, err := s.inputs.get(j.kind, j.spec.Scale, j.spec.Seed)
	if err != nil {
		return jobOutcome{err: errf(http.StatusBadRequest, "building input: %v", err)}
	}
	if ent.exclusive {
		// Mutable input: this job gets exclusive use, restored to its
		// initial state first, so serialized jobs see identical inputs.
		ent.runMu.Lock()
		defer ent.runMu.Unlock()
		j.kind.Reset(ent.data)
	}

	var res *JobResult
	herr := s.exec.withEngine(j.spec.Threads, tid, func(eng *galois.Engine, engineHit bool) {
		var sink *galois.Trace
		if j.spec.Trace {
			sink = galois.NewTrace(j.spec.Threads)
		}
		opts := schedOpts(j.spec.Variant, j.spec.Threads, eng, sink)

		start := time.Now()
		fp, st := j.kind.Run(ent.data, opts)
		wall := time.Since(start)

		s.recordRun(tid, j.spec, st, wall)
		res = &JobResult{
			Receipt: Receipt{
				Spec:          j.spec,
				Fingerprint:   fmt.Sprintf("%016x", fp),
				Deterministic: j.spec.Deterministic(),
			},
			WallNS:    wall.Nanoseconds(),
			QueueNS:   start.Sub(j.admitted).Nanoseconds(),
			Commits:   st.Commits,
			Aborts:    st.Aborts,
			Rounds:    st.Rounds,
			EngineHit: engineHit,
		}
		if sink != nil {
			var buf bytes.Buffer
			if err := sink.WriteChromeTrace(&buf); err == nil {
				res.Trace = json.RawMessage(buf.Bytes())
			}
		}
	})
	if herr != nil {
		return jobOutcome{err: errf(herr.status, "job %s: %s", j.spec, herr.msg)}
	}
	if j.store {
		// Store before delivering the outcome: once the submitter (or a
		// flight follower) sees the receipt, the cache already has it, so
		// an immediate identical resubmission is a guaranteed hit.
		cr := &cachedResult{
			Receipt: res.Receipt,
			WallNS:  res.WallNS,
			Commits: res.Commits,
			Aborts:  res.Aborts,
			Rounds:  res.Rounds,
		}
		s.cache.Put(j.ckey, cr, cr.size())
	}
	return jobOutcome{res: res}
}

// recordRun publishes one finished run into the server's metrics.
func (s *Server) recordRun(tid int, spec Spec, st stats.Stats, wall time.Duration) {
	s.exec.met.Counter("serve.complete").Add(tid, 1)
	s.exec.met.Histogram("serve.job.wall_ms", obs.Pow2Bounds(1<<16)).Observe(tid, wall.Milliseconds())
	prefix := "serve.kind." + spec.Kind
	s.exec.met.Counter(prefix+".jobs").Add(tid, 1)
	s.exec.met.Counter(prefix+".commits").Add(tid, st.Commits)
	s.exec.met.Counter(prefix+".aborts").Add(tid, st.Aborts)
}

// Shutdown drains the server: new submissions are rejected with 503,
// queued and in-flight work all completes and delivers its receipts —
// session batches included — the workers exit, and the engine pool is
// closed. Returns ctx.Err() if the drain outlives ctx (workers keep
// draining regardless).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.janitorStop != nil {
		select {
		case <-s.janitorStop:
		default:
			close(s.janitorStop)
		}
		s.janitorDone.Wait()
	}
	return s.exec.drain(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.exec.draining() }

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, herr *httpError) {
	if herr.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(herr.retryAfter))
	}
	writeJSON(w, herr.status, errorBody{Error: herr.msg})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, errf(http.StatusBadRequest, "decoding request: %v", err))
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if !s.decode(w, r, &spec) {
		return
	}
	res, herr := s.execute(r.Context(), spec)
	if herr != nil {
		writeError(w, herr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var rcpt Receipt
	if !s.decode(w, r, &rcpt) {
		return
	}
	if rcpt.Fingerprint == "" {
		writeError(w, errf(http.StatusBadRequest, "receipt has no fingerprint"))
		return
	}
	// Verification bypasses the cache and the singleflight join: a
	// receipt is only a proof because /verify reaches a real engine run.
	res, herr := s.executeMode(r.Context(), rcpt.Spec, true)
	if herr != nil {
		writeError(w, herr)
		return
	}
	vr := VerifyResult{
		Match:         res.Receipt.Fingerprint == rcpt.Fingerprint,
		Deterministic: res.Receipt.Deterministic,
		Expect:        rcpt.Fingerprint,
		Got:           res.Receipt.Fingerprint,
		WallNS:        res.WallNS,
	}
	s.count("serve.verify")
	if !vr.Match {
		s.count("serve.verify.mismatch")
	}
	writeJSON(w, http.StatusOK, vr)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var buf bytes.Buffer
	_ = s.exec.met.WriteText(&buf)
	pc := s.exec.pool.Counters()
	fmt.Fprintf(&buf, "serve.pool.hits %d\n", pc.Hits)
	fmt.Fprintf(&buf, "serve.pool.misses %d\n", pc.Misses)
	fmt.Fprintf(&buf, "serve.pool.transients %d\n", pc.Transients)
	fmt.Fprintf(&buf, "serve.queue.depth %d\n", len(s.exec.queue))
	fmt.Fprintf(&buf, "serve.queue.cap %d\n", s.cfg.QueueDepth)
	fmt.Fprintf(&buf, "serve.inflight %d\n", s.exec.InFlight())
	fmt.Fprintf(&buf, "serve.sessions.live %d\n", s.sessions.Live())
	if s.cache != nil {
		cc := s.cache.Counters()
		fmt.Fprintf(&buf, "serve.rescache.hits %d\n", cc.Hits)
		fmt.Fprintf(&buf, "serve.rescache.misses %d\n", cc.Misses)
		fmt.Fprintf(&buf, "serve.rescache.stores %d\n", cc.Stores)
		fmt.Fprintf(&buf, "serve.rescache.evictions %d\n", cc.Evictions)
		fmt.Fprintf(&buf, "serve.rescache.rejects %d\n", cc.Rejects)
		fmt.Fprintf(&buf, "serve.rescache.entries %d\n", cc.Entries)
		fmt.Fprintf(&buf, "serve.rescache.bytes_resident %d\n", cc.Bytes)
		fmt.Fprintf(&buf, "serve.rescache.bytes_budget %d\n", cc.Budget)
	}
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"kinds":         s.reg.Names(),
		"session_kinds": s.sessions.Kinds().Names(),
	})
}

// Healthz snapshots the server's load state: the probe target of a routing
// tier. Deliberately cheap — counters and queue length only, never an
// engine checkout — so a router polling every backend at a high rate costs
// the backends nothing.
func (s *Server) Healthz() Healthz {
	pc := s.exec.pool.Counters()
	draining := s.Draining()
	return Healthz{
		OK:           !draining,
		Draining:     draining,
		QueueDepth:   len(s.exec.queue),
		QueueCap:     s.cfg.QueueDepth,
		InFlight:     s.exec.InFlight(),
		Workers:      s.cfg.Workers,
		SessionsLive: s.sessions.Live(),
		Pool:         HealthzPool{Hits: pc.Hits, Misses: pc.Misses, Transients: pc.Transients},
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Healthz())
}
