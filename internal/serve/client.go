package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"galois/internal/session"
)

// APIError is a non-2xx server response surfaced to client callers.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Msg)
}

// IsRetryable reports whether the error is a 429 queue-full rejection — the
// one condition a closed-loop client should back off and retry.
func (e *APIError) IsRetryable() bool { return e.Status == http.StatusTooManyRequests }

// Client talks to a galoisd server. The zero value is not usable; call
// NewClient with the server's base URL (e.g. "http://127.0.0.1:8080").
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at base. hc may be nil for
// http.DefaultClient semantics with no overall request timeout (job
// deadlines are enforced server-side).
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// BaseURL returns the server base URL the client was constructed with.
func (c *Client) BaseURL() string { return c.base }

// post sends v as JSON and decodes the 2xx response into out.
func (c *Client) post(ctx context.Context, path string, v, out any) error {
	return c.do(ctx, http.MethodPost, path, v, out)
}

// do sends v (when non-nil) as JSON via method and decodes the 2xx
// response into out.
func (c *Client) do(ctx context.Context, method, path string, v, out any) error {
	var rd io.Reader
	if v != nil {
		body, err := json.Marshal(v)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if v != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func apiError(resp *http.Response) error {
	var eb errorBody
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
		eb.Error = strings.TrimSpace(string(data))
	}
	ae := &APIError{Status: resp.StatusCode, Msg: eb.Error}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		ae.RetryAfter = time.Duration(ra) * time.Second
	}
	return ae
}

// Submit runs one job and returns its result.
func (c *Client) Submit(ctx context.Context, spec Spec) (*JobResult, error) {
	var res JobResult
	if err := c.post(ctx, "/jobs", spec, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Verify re-executes a receipt on the server and returns the comparison.
func (c *Client) Verify(ctx context.Context, rcpt Receipt) (*VerifyResult, error) {
	var vr VerifyResult
	if err := c.post(ctx, "/verify", rcpt, &vr); err != nil {
		return nil, err
	}
	return &vr, nil
}

// CreateSession opens a stateful session and returns its info (including
// the genesis link of the receipt chain).
func (c *Client) CreateSession(ctx context.Context, is session.InitSpec) (*SessionInfo, error) {
	var si SessionInfo
	if err := c.post(ctx, "/sessions", is, &si); err != nil {
		return nil, err
	}
	return &si, nil
}

// Session fetches a session's info and full receipt chain.
func (c *Client) Session(ctx context.Context, id string) (*SessionInfo, error) {
	var si SessionInfo
	if err := c.do(ctx, http.MethodGet, "/sessions/"+id, nil, &si); err != nil {
		return nil, err
	}
	return &si, nil
}

// CloseSession evicts a session (sealing a "closed" tombstone link) and
// returns its final info.
func (c *Client) CloseSession(ctx context.Context, id string) (*SessionInfo, error) {
	var si SessionInfo
	if err := c.do(ctx, http.MethodDelete, "/sessions/"+id, nil, &si); err != nil {
		return nil, err
	}
	return &si, nil
}

// SessionBatch submits one mutation batch and returns the new chain link.
func (c *Client) SessionBatch(ctx context.Context, id string, b session.BatchSpec) (*BatchResult, error) {
	var br BatchResult
	if err := c.post(ctx, "/sessions/"+id+"/batches", b, &br); err != nil {
		return nil, err
	}
	return &br, nil
}

// SessionVerify replays a session's chain server-side; finalChain, when
// non-empty, is additionally checked against the recomputed head (the
// last-receipt audit).
func (c *Client) SessionVerify(ctx context.Context, id, finalChain string, threads int) (*session.VerifyOutcome, error) {
	var out session.VerifyOutcome
	req := sessionVerifyRequest{FinalChain: finalChain, Threads: threads}
	if err := c.post(ctx, "/sessions/"+id+"/verify", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the server's load/liveness snapshot.
func (c *Client) Healthz(ctx context.Context) (*Healthz, error) {
	var h Healthz
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the plain-text metrics dump.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", apiError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Kinds lists the job kinds the server accepts.
func (c *Client) Kinds(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/kinds", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	var out struct {
		Kinds []string `json:"kinds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Kinds, nil
}
