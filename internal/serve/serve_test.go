package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"galois"
	"galois/internal/apps/msf"
	"galois/internal/apps/sssp"
	"galois/internal/harness"
	"galois/internal/inputs"
	"galois/internal/obs"
)

// newTestServer returns a started server and an HTTP client bound to it,
// torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		_ = s.Shutdown(context.Background())
		ts.Close()
	})
	return s, NewClient(ts.URL, ts.Client())
}

func submitOK(t *testing.T, c *Client, spec Spec) *JobResult {
	t.Helper()
	res, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit %s: %v", spec, err)
	}
	return res
}

// detKinds returns the default registry's kinds (registration order);
// every one supports the deterministic variants.
func detKinds() []string { return []string{"bfs", "mis", "sssp", "msf", "pfp", "dt", "dmr"} }

// TestDeterminismUnderLoad is the subsystem's load-bearing invariant: for
// every deterministic job kind × {g-d, g-dnc}, the fingerprint is
// byte-identical whether the server runs jobs one at a time, under 16-way
// concurrent load mixed with other kinds (including non-deterministic
// jobs), or the work is executed directly in-process — and identical
// across job thread counts — at server GOMAXPROCS 2 and 8.
func TestDeterminismUnderLoad(t *testing.T) {
	for _, procs := range []int{2, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			testDeterminismUnderLoad(t)
		})
	}
}

func testDeterminismUnderLoad(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4, QueueDepth: 128})
	ctx := context.Background()

	// Serial pass: every det cell at threads 1, 2 and 4 must agree —
	// the paper's portability property surfaced through the API.
	serial := make(map[string]string)
	for _, kind := range detKinds() {
		for _, variant := range []string{"g-d", "g-dnc"} {
			var fp string
			for _, threads := range []int{1, 2, 4} {
				res := submitOK(t, c, Spec{Kind: kind, Variant: variant,
					Scale: "small", Seed: 42, Threads: threads})
				if fp == "" {
					fp = res.Receipt.Fingerprint
				} else if res.Receipt.Fingerprint != fp {
					t.Errorf("%s/%s: fingerprint varies with threads: t%d got %s, want %s",
						kind, variant, threads, res.Receipt.Fingerprint, fp)
				}
			}
			serial[kind+"/"+variant] = fp
		}
	}

	// 16-way mixed concurrent load, g-n jobs interleaved as noise.
	rep, err := RunLoad(ctx, c, LoadConfig{
		Kinds:    detKinds(),
		Variants: []string{"g-n", "g-d", "g-dnc"},
		Clients:  16, PerClient: 3,
		Scale: "small", Seed: 42, Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("load run had %d errors: %v", rep.Errors, rep.ErrorSamples)
	}
	if len(rep.Mismatches) > 0 {
		t.Fatalf("determinism violated under load: %v", rep.Mismatches)
	}
	for _, cs := range rep.Cells {
		if !cs.Deterministic() || cs.Requests == 0 {
			continue
		}
		want := serial[cs.Kind+"/"+cs.Variant]
		if len(cs.Fingerprints) != 1 || cs.Fingerprints[0] != want {
			t.Errorf("%s/%s under load: fingerprints %v, want exactly [%s] (serial run)",
				cs.Kind, cs.Variant, cs.Fingerprints, want)
		}
	}

	// Direct in-process execution must agree too. bfs/mis/pfp/dt/dmr go
	// through the experiment harness (shared derivations in
	// internal/inputs — the dmr cell also proves the server's Exclusive
	// mesh reset reproduces a fresh build); sssp/msf call their app entry
	// points directly.
	in := harness.MakeInputs(harness.SmallScale())
	for _, app := range []string{"bfs", "mis", "pfp", "dt", "dmr"} {
		for _, variant := range []string{"g-d", "g-dnc"} {
			got := fmt.Sprintf("%016x", in.RunOnce(app, variant, 2, nil).Fingerprint)
			if want := serial[app+"/"+variant]; got != want {
				t.Errorf("%s/%s: harness fingerprint %s != served %s", app, variant, got, want)
			}
		}
	}
	sc := inputs.SmallScale()
	detOpts := func(nc bool) []galois.Option {
		opts := []galois.Option{galois.WithThreads(2), galois.WithSched(galois.Deterministic)}
		if nc {
			opts = append(opts, galois.WithoutContinuation())
		}
		return opts
	}
	sg := inputs.SSSPGraph(sc.SSSPNodes, sc.SSSPDegree, sc.SSSPMaxW, 42)
	mn, medges := inputs.MSFEdges(sc.MSFNodes, sc.MSFDegree, sc.MSFMaxW, 42)
	for _, nc := range []bool{false, true} {
		variant := "g-d"
		if nc {
			variant = "g-dnc"
		}
		got := fmt.Sprintf("%016x", sssp.Galois(sg, 0, sssp.DefaultOptions(sc.SSSPMaxW), detOpts(nc)...).Fingerprint())
		if want := serial["sssp/"+variant]; got != want {
			t.Errorf("sssp/%s: direct fingerprint %s != served %s", variant, got, want)
		}
		got = fmt.Sprintf("%016x", msf.Galois(mn, medges, detOpts(nc)...).Fingerprint())
		if want := serial["msf/"+variant]; got != want {
			t.Errorf("msf/%s: direct fingerprint %s != served %s", variant, got, want)
		}
	}
}

// TestEnginePoolSteadyState pins the engine-reuse property at the serving
// layer: a warmed server handles repeated identical jobs without
// constructing engines — every request after the first is a pool hit.
func TestEnginePoolSteadyState(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	spec := Spec{Kind: "mis", Variant: "g-d", Scale: "small", Seed: 42, Threads: 2}
	const reps = 10
	for i := 0; i < reps; i++ {
		res := submitOK(t, c, spec)
		if i > 0 && !res.EngineHit {
			t.Errorf("request %d: engine constructed on a warmed server", i)
		}
	}
	pc := s.PoolCounters()
	if pc.Misses != 1 || pc.Transients != 0 || pc.Hits != reps-1 {
		t.Errorf("pool counters after %d identical serial jobs: %+v, want 1 miss, %d hits, 0 transients",
			reps, pc, reps-1)
	}
}

// TestTraceCapture: a job with trace:true returns a structurally valid
// Chrome trace and the identical fingerprint to its untraced twin (the
// obs non-perturbation invariant, end to end through the server).
func TestTraceCapture(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	plain := submitOK(t, c, Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 42, Threads: 2})
	traced := submitOK(t, c, Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 42, Threads: 2, Trace: true})
	if len(traced.Trace) == 0 {
		t.Fatal("trace requested but response carries none")
	}
	if _, err := obs.ValidateChromeTrace(traced.Trace); err != nil {
		t.Fatalf("returned trace invalid: %v", err)
	}
	if traced.Receipt.Fingerprint != plain.Receipt.Fingerprint {
		t.Errorf("tracing perturbed the result: %s != %s",
			traced.Receipt.Fingerprint, plain.Receipt.Fingerprint)
	}
	if len(plain.Trace) != 0 {
		t.Error("untraced job response carries a trace")
	}
}

// TestMetricsEndpoint smoke-checks the /metrics text: admission counters,
// per-kind totals and pool lines all present after a couple of jobs.
func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	submitOK(t, c, Spec{Kind: "pfp", Variant: "g-d", Scale: "small", Seed: 42})
	submitOK(t, c, Spec{Kind: "pfp", Variant: "g-d", Scale: "small", Seed: 42})
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"serve.admit 2", "serve.complete 2",
		"serve.kind.pfp.jobs 2", "serve.kind.pfp.commits ",
		"serve.job.wall_ms total=2",
		"serve.pool.hits 1", "serve.pool.misses 1",
		"serve.queue.depth 0",
	} {
		if !containsLinePrefix(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func containsLinePrefix(text, prefix string) bool {
	for start := 0; start <= len(text); {
		end := start
		for end < len(text) && text[end] != '\n' {
			end++
		}
		line := text[start:end]
		if len(line) >= len(prefix) && line[:len(prefix)] == prefix {
			return true
		}
		start = end + 1
	}
	return false
}

// TestKindsEndpoint lists the registry in registration order, and the
// raw endpoint additionally advertises the session kinds.
func TestKindsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	kinds, err := c.Kinds(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := detKinds()
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}

	resp, err := http.Get(c.BaseURL() + "/kinds")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		SessionKinds []string `json:"session_kinds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(body.SessionKinds) != fmt.Sprint([]string{"dmr", "sssp"}) {
		t.Errorf("session_kinds = %v, want [dmr sssp]", body.SessionKinds)
	}
}
