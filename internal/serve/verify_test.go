package serve

import (
	"context"
	"net/http"
	"testing"
)

// TestVerifyRoundTrip: a receipt from a completed deterministic job
// re-executes to a match; tampering with the fingerprint or the spec is
// detected.
func TestVerifyRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	res := submitOK(t, c, Spec{Kind: "msf", Variant: "g-d", Scale: "small", Seed: 7, Threads: 2})

	vr, err := c.Verify(ctx, res.Receipt)
	if err != nil {
		t.Fatal(err)
	}
	if !vr.Match || !vr.Deterministic {
		t.Fatalf("genuine receipt did not verify: %+v", vr)
	}

	// Tampered fingerprint: the receipt claims a result the job cannot
	// produce.
	forged := res.Receipt
	forged.Fingerprint = "deadbeefdeadbeef"
	vr, err = c.Verify(ctx, forged)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Match {
		t.Fatal("tampered fingerprint verified as a match")
	}
	if vr.Expect != forged.Fingerprint || vr.Got != res.Receipt.Fingerprint {
		t.Errorf("mismatch report wrong: %+v", vr)
	}

	// Tampered spec (different seed => different input => different
	// fingerprint) must also report a mismatch.
	reseeded := res.Receipt
	reseeded.Spec.Seed++
	vr, err = c.Verify(ctx, reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Match {
		t.Fatal("receipt with tampered seed verified as a match")
	}

	// A thread-count change is NOT tampering for a deterministic job:
	// the fingerprint is thread-invariant, so the receipt still verifies
	// — the portability property, as an API behavior.
	rethreaded := res.Receipt
	rethreaded.Spec.Threads = 4
	vr, err = c.Verify(ctx, rethreaded)
	if err != nil {
		t.Fatal(err)
	}
	if !vr.Match {
		t.Fatalf("deterministic receipt failed to verify at a different thread count: %+v", vr)
	}
}

// TestVerifyNondetReceipt: g-n receipts are accepted but marked
// non-deterministic — their fingerprints carry no reproducibility promise.
func TestVerifyNondetReceipt(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	res := submitOK(t, c, Spec{Kind: "mis", Variant: "g-n", Scale: "small", Seed: 42, Threads: 2})
	if res.Receipt.Deterministic {
		t.Fatal("g-n receipt marked deterministic")
	}
	vr, err := c.Verify(context.Background(), res.Receipt)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Deterministic {
		t.Error("verify of a g-n receipt reported deterministic")
	}
}

// TestBadRequests covers spec validation at the HTTP boundary.
func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxThreads: 4})
	ctx := context.Background()
	for _, spec := range []Spec{
		{Kind: "nope"},
		{Kind: "bfs", Variant: "g-x"},
		{Kind: "bfs", Scale: "galactic"},
		{Kind: "bfs", Threads: 64},
		{Kind: "bfs", TimeoutMS: -1},
	} {
		_, err := c.Submit(ctx, spec)
		ae, ok := err.(*APIError)
		if !ok || ae.Status != http.StatusBadRequest {
			t.Errorf("spec %+v: got %v, want 400", spec, err)
		}
	}
	// Empty-fingerprint receipts are rejected before execution.
	_, err := c.Verify(ctx, Receipt{Spec: Spec{Kind: "bfs"}})
	if ae, ok := err.(*APIError); !ok || ae.Status != http.StatusBadRequest {
		t.Errorf("fingerprint-less receipt: got %v, want 400", err)
	}
}
