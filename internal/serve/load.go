package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"galois/internal/obs"
	"galois/internal/rng"
)

// LoadConfig describes one closed-loop load phase: Clients concurrent
// clients, each submitting PerClient jobs drawn round-robin from the
// kinds × variants cell matrix (offset per client, so the server sees a
// mixed workload at every instant).
type LoadConfig struct {
	Kinds    []string
	Variants []string
	// Clients is the closed-loop concurrency (default 1); PerClient is
	// the number of jobs each client submits (default one sweep of the
	// cell matrix).
	Clients   int
	PerClient int
	Scale     string
	Seed      uint64
	Threads   int
	TimeoutMS int64

	// Mix enables the cache-workload knob: instead of every request in a
	// cell carrying Seed, each request draws — from a per-client seeded
	// stream, so the workload is deterministic and detlint-clean — either
	// a hot spec (probability RepeatRate, seed = Seed + a zipf(ZipfS) rank
	// over HotSpecs ranks) or a cold spec with a never-repeated seed. The
	// knob sweeps galoisd's result-cache hit rate: RepeatRate 0 is
	// all-unique traffic (every request a miss), 0.9 is heavy repeat
	// traffic dominated by the zipf head.
	Mix bool
	// RepeatRate is the hot-spec probability in [0,1] (with Mix).
	RepeatRate float64
	// ZipfS is the zipf exponent of the hot-spec popularity distribution
	// (default 1.1); HotSpecs is the number of hot seeds per cell
	// (default 8).
	ZipfS    float64
	HotSpecs int

	// ClusterBackends and ClusterPolicy label a run whose Client points at
	// a galoisrouter instead of a single galoisd: the backend count and
	// routing policy of the cluster behind it. They only affect reporting
	// (bench entries become Mode "serve-cluster", keyed by both) — the
	// load loop itself is identical, which is the point: the cluster is
	// API-compatible with one backend, and the per-seed fingerprint
	// policing in RunLoad then checks determinism *across backends*, since
	// requests for one seed land on whichever backends the policy picks.
	ClusterBackends int
	ClusterPolicy   string
}

// CellStat aggregates one (kind, variant) cell of a load run.
type CellStat struct {
	Kind    string `json:"kind"`
	Variant string `json:"variant"`
	// Requests counts completed jobs; Fingerprints lists the distinct
	// fingerprints observed for the base seed (a deterministic cell must
	// have exactly one — under a Mix workload every other seed is policed
	// the same way per seed, but only the base seed's fingerprints are
	// reported, keeping the column comparable across runs and workloads).
	Requests     int      `json:"requests"`
	Fingerprints []string `json:"fingerprints"`
	// CacheHits counts responses served from galoisd's result cache
	// (receipt carried cached: true).
	CacheHits int `json:"cache_hits,omitempty"`
	// MedianNS/MaxNS summarize end-to-end request latency.
	MedianNS int64 `json:"median_ns"`
	MaxNS    int64 `json:"max_ns"`
	// Commits/Aborts/Rounds are from the cell's last completed job.
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
	Rounds  uint64 `json:"rounds"`
}

// Deterministic reports whether the cell's variant promises a single
// fingerprint.
func (c CellStat) Deterministic() bool { return c.Variant != "g-n" }

// Report is the outcome of one RunLoad phase.
type Report struct {
	Clients    int   `json:"clients"`
	Requests   int   `json:"requests"`
	OK         int   `json:"ok"`
	Rejected   int   `json:"rejected"` // 429 retries (closed loop retried them)
	Errors     int   `json:"errors"`
	DurationNS int64 `json:"duration_ns"`
	// CacheHits totals the per-cell cache-hit counts.
	CacheHits int `json:"cache_hits,omitempty"`
	// Mismatches lists deterministic cells that observed more than one
	// fingerprint — each is a determinism violation.
	Mismatches []string   `json:"mismatches"`
	Cells      []CellStat `json:"cells"`
	// Receipts holds one receipt per cell (the last completed job), ready
	// to be replayed through POST /verify.
	Receipts []Receipt `json:"receipts"`
	// ErrorSamples holds up to a few error strings for diagnosis.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// cellAcc is one client's private accumulator for one cell; accumulators
// are merged client-by-client after the join, so aggregation order is a
// pure function of (client index, cell index), not goroutine scheduling.
type cellAcc struct {
	lats []int64
	// fpBySeed tracks the distinct fingerprints observed per submitted
	// seed: under a Mix workload different requests in a cell carry
	// different seeds, and the determinism contract is per spec, so
	// fingerprints must be compared within a seed, never across seeds.
	fpBySeed  map[uint64]map[string]bool
	last      *JobResult
	requests  int
	cacheHits int
}

// observe folds one completed request into the accumulator.
func (a *cellAcc) observe(seed uint64, latNS int64, res *JobResult) {
	a.requests++
	a.lats = append(a.lats, latNS)
	if a.fpBySeed == nil {
		a.fpBySeed = make(map[uint64]map[string]bool)
	}
	set := a.fpBySeed[seed]
	if set == nil {
		set = make(map[string]bool)
		a.fpBySeed[seed] = set
	}
	set[res.Receipt.Fingerprint] = true
	if res.Receipt.Cached {
		a.cacheHits++
	}
	a.last = res
}

// mixDraw picks the seed for one Mix-workload request: a zipf-ranked hot
// seed with probability rate, otherwise a cold seed unique to (client
// level, repeat rate, client, request) that no other request will ever
// draw — level and rate are part of the offset because successive
// RunLoad calls in a sweep share one warm server, and a cold seed
// re-drawn at the next sweep point would be a spurious cache hit (hot
// seeds sharing warmth across the sweep is the workload's point; cold
// seeds doing so is an accounting bug). zipfCum is the precomputed
// cumulative distribution over the hot ranks.
func mixDraw(rnd *rng.Rand, rate float64, zipfCum []float64, base uint64, clients, ratePermille, ci, perClient, r int) uint64 {
	if rnd.Float64() < rate {
		return base + uint64(zipfRank(zipfCum, rnd.Float64()))
	}
	return base + coldSeedBase + uint64(clients)*coldLevelStride +
		uint64(ratePermille)*coldRateStride + uint64(ci)*uint64(perClient) + uint64(r)
}

// coldSeedBase offsets cold (never-repeated) seeds far away from the hot
// range so the two can never collide; the strides keep the cold ranges
// of different client levels and repeat rates disjoint.
const (
	coldSeedBase    = 1 << 32
	coldLevelStride = 1 << 26
	coldRateStride  = 1 << 16
)

// zipfCumulative precomputes the cumulative zipf(s) distribution over n
// ranks: weight(i) ∝ 1/(i+1)^s, normalized.
func zipfCumulative(n int, s float64) []float64 {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	total := 0.0
	for i := range cum {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// zipfRank inverts the cumulative distribution for a uniform draw u in
// [0,1).
func zipfRank(cum []float64, u float64) int {
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// RunLoad drives one closed-loop load phase against the server behind c
// and aggregates the results. A 429 rejection backs off for the server's
// Retry-After and retries the same job (counted in Rejected); any other
// error is terminal for that request.
func RunLoad(ctx context.Context, c *Client, cfg LoadConfig) (*Report, error) {
	if len(cfg.Kinds) == 0 || len(cfg.Variants) == 0 {
		return nil, fmt.Errorf("serve: load config needs at least one kind and one variant")
	}
	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	type cell struct{ kind, variant string }
	var cells []cell
	for _, k := range cfg.Kinds {
		for _, v := range cfg.Variants {
			cells = append(cells, cell{k, v})
		}
	}
	perClient := cfg.PerClient
	if perClient < 1 {
		perClient = len(cells)
	}

	zipfS := cfg.ZipfS
	if zipfS <= 0 {
		zipfS = 1.1
	}
	hotSpecs := cfg.HotSpecs
	if hotSpecs <= 0 {
		hotSpecs = 8
	}
	// Shared read-only after construction; only Mix clients consult it.
	zipfCum := zipfCumulative(hotSpecs, zipfS)
	ratePermille := int(cfg.RepeatRate*1000 + 0.5)

	accs := make([][]cellAcc, clients) // [client][cell]
	rejects := make([]int, clients)
	errCounts := make([]int, clients)
	errSamples := make([][]string, clients)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(clients)
	for ci := 0; ci < clients; ci++ {
		accs[ci] = make([]cellAcc, len(cells))
		//detlint:ignore goroutineorder load clients: each goroutine writes only its own accumulator row and rows are merged by (client, cell) index after the join
		go func(ci int) {
			defer wg.Done()
			// Partitioned seeded stream: client ci's draws are a pure
			// function of (cfg.Seed, ci), independent of scheduling.
			var rnd *rng.Rand
			if cfg.Mix {
				rnd = rng.New(rng.Mix64(cfg.Seed ^ (uint64(ci)+1)*0x9e3779b97f4a7c15))
			}
			for r := 0; r < perClient; r++ {
				// Stagger clients by their whole stretch so the union of
				// client walks covers the cell matrix as evenly as the
				// request budget allows (offsetting by just ci would leave
				// the tail of the matrix unvisited when clients*perClient
				// is small relative to it).
				idx := (ci*perClient + r) % len(cells)
				cl := cells[idx]
				seed := cfg.Seed
				if cfg.Mix {
					seed = mixDraw(rnd, cfg.RepeatRate, zipfCum, cfg.Seed, clients, ratePermille, ci, perClient, r)
				}
				spec := Spec{Kind: cl.kind, Variant: cl.variant, Scale: cfg.Scale,
					Seed: seed, Threads: cfg.Threads, TimeoutMS: cfg.TimeoutMS}
				acc := &accs[ci][idx]
				for {
					t0 := time.Now()
					res, err := c.Submit(ctx, spec)
					if err != nil {
						if ae, ok := err.(*APIError); ok && ae.IsRetryable() && ctx.Err() == nil {
							rejects[ci]++
							back := ae.RetryAfter
							if back <= 0 {
								back = 50 * time.Millisecond
							}
							time.Sleep(back)
							continue
						}
						errCounts[ci]++
						if len(errSamples[ci]) < 3 {
							errSamples[ci] = append(errSamples[ci], fmt.Sprintf("%s: %v", spec, err))
						}
						break
					}
					acc.observe(seed, time.Since(t0).Nanoseconds(), res)
					break
				}
				if ctx.Err() != nil {
					return
				}
			}
		}(ci)
	}
	wg.Wait()

	rep := &Report{Clients: clients, DurationNS: time.Since(start).Nanoseconds()}
	for ci := 0; ci < clients; ci++ {
		rep.Rejected += rejects[ci]
		rep.Errors += errCounts[ci]
		rep.ErrorSamples = append(rep.ErrorSamples, errSamples[ci]...)
	}
	for idx := range cells {
		cs := CellStat{Kind: cells[idx].kind, Variant: cells[idx].variant}
		var lats []int64
		fpBySeed := make(map[uint64]map[string]bool)
		var last *JobResult
		for ci := 0; ci < clients; ci++ {
			acc := &accs[ci][idx]
			cs.Requests += acc.requests
			cs.CacheHits += acc.cacheHits
			lats = append(lats, acc.lats...)
			for seed, set := range acc.fpBySeed { //detlint:ordered per-seed set union; order-independent, consumed via sorted seed walk below
				dst := fpBySeed[seed]
				if dst == nil {
					dst = make(map[string]bool)
					fpBySeed[seed] = dst
				}
				for fp := range set { //detlint:ordered set union, same argument
					dst[fp] = true
				}
			}
			if acc.last != nil {
				last = acc.last
			}
		}
		// Determinism is a per-spec contract: every seed must have exactly
		// one fingerprint; only the base seed's set is reported as the
		// cell's Fingerprints column.
		var seeds []uint64
		for seed := range fpBySeed { //detlint:ordered collected then sorted immediately below
			seeds = append(seeds, seed)
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		for _, seed := range seeds {
			set := fpBySeed[seed]
			var fps []string
			for fp := range set { //detlint:ordered collected then sorted immediately below
				fps = append(fps, fp)
			}
			sort.Strings(fps)
			if seed == cfg.Seed {
				cs.Fingerprints = fps
			}
			if cs.Deterministic() && len(fps) > 1 {
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("%s/%s seed %d: %v", cs.Kind, cs.Variant, seed, fps))
			}
		}
		if len(lats) > 0 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			cs.MedianNS = lats[len(lats)/2]
			cs.MaxNS = lats[len(lats)-1]
		}
		if last != nil {
			cs.Commits, cs.Aborts, cs.Rounds = last.Commits, last.Aborts, last.Rounds
			rep.Receipts = append(rep.Receipts, last.Receipt)
		}
		rep.Requests += cs.Requests
		rep.OK += cs.Requests
		rep.CacheHits += cs.CacheHits
		rep.Cells = append(rep.Cells, cs)
	}
	return rep, nil
}

// BenchEntries converts a load report into benchmark-trajectory entries
// with Mode "serve" (or "serve-mix" under the repeat-rate knob,
// "serve-cluster" when driven through a galoisrouter): wall_ns
// is the median end-to-end request latency of the cell under this report's
// client concurrency, cache_hit_permille records how much of that latency
// was lookup-speed cache service, and the fingerprint column carries the
// same determinism contract as every other mode — a det-cell fingerprint
// must match the in-process trajectory entries for the same (app, variant,
// threads, scale).
func (rep *Report) BenchEntries(cfg LoadConfig) []obs.BenchEntry {
	mode := "serve"
	repeatPermille := 0
	if cfg.Mix {
		mode = "serve-mix"
		repeatPermille = int(cfg.RepeatRate*1000 + 0.5)
	}
	if cfg.ClusterBackends > 0 {
		// Routed through a galoisrouter: latency is a property of the
		// (backend count, policy) pair, so both join the key. Fingerprints
		// stay in the cross-mode pool — routing is behavior-free, and
		// benchdiff checking serve-cluster fingerprints against serve and
		// in-process entries is exactly the portability claim.
		mode = "serve-cluster"
	}
	var out []obs.BenchEntry
	for _, cs := range rep.Cells {
		if cs.Requests == 0 {
			continue
		}
		sched := "det"
		if cs.Variant == "g-n" {
			sched = "nondet"
		}
		fp := ""
		if len(cs.Fingerprints) == 1 {
			fp = cs.Fingerprints[0]
		}
		commits, aborts := cs.Commits, cs.Aborts
		ratio := 0.0
		if commits+aborts > 0 {
			ratio = float64(commits) / float64(commits+aborts)
		}
		threads := cfg.Threads
		if threads <= 0 {
			threads = 1
		}
		out = append(out, obs.BenchEntry{
			App: cs.Kind, Variant: cs.Variant, Sched: sched,
			Threads: threads, Scale: cfg.Scale,
			WallNS:  cs.MedianNS,
			Commits: commits, Aborts: aborts, Rounds: cs.Rounds,
			CommitRatio:      ratio,
			Fingerprint:      fp,
			Mode:             mode,
			Clients:          rep.Clients,
			CacheHitPermille: cs.CacheHits * 1000 / cs.Requests,
			RepeatPermille:   repeatPermille,
			Backends:         cfg.ClusterBackends,
			Policy:           cfg.ClusterPolicy,
		})
	}
	return out
}
