package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"galois/internal/obs"
)

// LoadConfig describes one closed-loop load phase: Clients concurrent
// clients, each submitting PerClient jobs drawn round-robin from the
// kinds × variants cell matrix (offset per client, so the server sees a
// mixed workload at every instant).
type LoadConfig struct {
	Kinds    []string
	Variants []string
	// Clients is the closed-loop concurrency (default 1); PerClient is
	// the number of jobs each client submits (default one sweep of the
	// cell matrix).
	Clients   int
	PerClient int
	Scale     string
	Seed      uint64
	Threads   int
	TimeoutMS int64
}

// CellStat aggregates one (kind, variant) cell of a load run.
type CellStat struct {
	Kind    string `json:"kind"`
	Variant string `json:"variant"`
	// Requests counts completed jobs; Fingerprints lists the distinct
	// fingerprints observed (a deterministic cell must have exactly one).
	Requests     int      `json:"requests"`
	Fingerprints []string `json:"fingerprints"`
	// MedianNS/MaxNS summarize end-to-end request latency.
	MedianNS int64 `json:"median_ns"`
	MaxNS    int64 `json:"max_ns"`
	// Commits/Aborts/Rounds are from the cell's last completed job.
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
	Rounds  uint64 `json:"rounds"`
}

// Deterministic reports whether the cell's variant promises a single
// fingerprint.
func (c CellStat) Deterministic() bool { return c.Variant != "g-n" }

// Report is the outcome of one RunLoad phase.
type Report struct {
	Clients    int   `json:"clients"`
	Requests   int   `json:"requests"`
	OK         int   `json:"ok"`
	Rejected   int   `json:"rejected"` // 429 retries (closed loop retried them)
	Errors     int   `json:"errors"`
	DurationNS int64 `json:"duration_ns"`
	// Mismatches lists deterministic cells that observed more than one
	// fingerprint — each is a determinism violation.
	Mismatches []string   `json:"mismatches"`
	Cells      []CellStat `json:"cells"`
	// Receipts holds one receipt per cell (the last completed job), ready
	// to be replayed through POST /verify.
	Receipts []Receipt `json:"receipts"`
	// ErrorSamples holds up to a few error strings for diagnosis.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// cellAcc is one client's private accumulator for one cell; accumulators
// are merged client-by-client after the join, so aggregation order is a
// pure function of (client index, cell index), not goroutine scheduling.
type cellAcc struct {
	lats     []int64
	fps      map[string]bool
	last     *JobResult
	requests int
}

// RunLoad drives one closed-loop load phase against the server behind c
// and aggregates the results. A 429 rejection backs off for the server's
// Retry-After and retries the same job (counted in Rejected); any other
// error is terminal for that request.
func RunLoad(ctx context.Context, c *Client, cfg LoadConfig) (*Report, error) {
	if len(cfg.Kinds) == 0 || len(cfg.Variants) == 0 {
		return nil, fmt.Errorf("serve: load config needs at least one kind and one variant")
	}
	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	type cell struct{ kind, variant string }
	var cells []cell
	for _, k := range cfg.Kinds {
		for _, v := range cfg.Variants {
			cells = append(cells, cell{k, v})
		}
	}
	perClient := cfg.PerClient
	if perClient < 1 {
		perClient = len(cells)
	}

	accs := make([][]cellAcc, clients) // [client][cell]
	rejects := make([]int, clients)
	errCounts := make([]int, clients)
	errSamples := make([][]string, clients)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(clients)
	for ci := 0; ci < clients; ci++ {
		accs[ci] = make([]cellAcc, len(cells))
		//detlint:ignore goroutineorder load clients: each goroutine writes only its own accumulator row and rows are merged by (client, cell) index after the join
		go func(ci int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				// Stagger clients by their whole stretch so the union of
				// client walks covers the cell matrix as evenly as the
				// request budget allows (offsetting by just ci would leave
				// the tail of the matrix unvisited when clients*perClient
				// is small relative to it).
				idx := (ci*perClient + r) % len(cells)
				cl := cells[idx]
				spec := Spec{Kind: cl.kind, Variant: cl.variant, Scale: cfg.Scale,
					Seed: cfg.Seed, Threads: cfg.Threads, TimeoutMS: cfg.TimeoutMS}
				acc := &accs[ci][idx]
				for {
					t0 := time.Now()
					res, err := c.Submit(ctx, spec)
					if err != nil {
						if ae, ok := err.(*APIError); ok && ae.IsRetryable() && ctx.Err() == nil {
							rejects[ci]++
							back := ae.RetryAfter
							if back <= 0 {
								back = 50 * time.Millisecond
							}
							time.Sleep(back)
							continue
						}
						errCounts[ci]++
						if len(errSamples[ci]) < 3 {
							errSamples[ci] = append(errSamples[ci], fmt.Sprintf("%s: %v", spec, err))
						}
						break
					}
					acc.requests++
					acc.lats = append(acc.lats, time.Since(t0).Nanoseconds())
					if acc.fps == nil {
						acc.fps = make(map[string]bool)
					}
					acc.fps[res.Receipt.Fingerprint] = true
					acc.last = res
					break
				}
				if ctx.Err() != nil {
					return
				}
			}
		}(ci)
	}
	wg.Wait()

	rep := &Report{Clients: clients, DurationNS: time.Since(start).Nanoseconds()}
	for ci := 0; ci < clients; ci++ {
		rep.Rejected += rejects[ci]
		rep.Errors += errCounts[ci]
		rep.ErrorSamples = append(rep.ErrorSamples, errSamples[ci]...)
	}
	for idx := range cells {
		cs := CellStat{Kind: cells[idx].kind, Variant: cells[idx].variant}
		var lats []int64
		fps := make(map[string]bool)
		var last *JobResult
		for ci := 0; ci < clients; ci++ {
			acc := &accs[ci][idx]
			cs.Requests += acc.requests
			lats = append(lats, acc.lats...)
			for fp := range acc.fps { //detlint:ordered distinct-fingerprint set union; rendered sorted below
				fps[fp] = true
			}
			if acc.last != nil {
				last = acc.last
			}
		}
		for fp := range fps { //detlint:ordered collected then sorted immediately below
			cs.Fingerprints = append(cs.Fingerprints, fp)
		}
		sort.Strings(cs.Fingerprints)
		if len(lats) > 0 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			cs.MedianNS = lats[len(lats)/2]
			cs.MaxNS = lats[len(lats)-1]
		}
		if last != nil {
			cs.Commits, cs.Aborts, cs.Rounds = last.Commits, last.Aborts, last.Rounds
			rep.Receipts = append(rep.Receipts, last.Receipt)
		}
		if cs.Deterministic() && len(cs.Fingerprints) > 1 {
			rep.Mismatches = append(rep.Mismatches,
				fmt.Sprintf("%s/%s: %v", cs.Kind, cs.Variant, cs.Fingerprints))
		}
		rep.Requests += cs.Requests
		rep.OK += cs.Requests
		rep.Cells = append(rep.Cells, cs)
	}
	return rep, nil
}

// BenchEntries converts a load report into benchmark-trajectory entries
// with Mode "serve": wall_ns is the median end-to-end request latency of
// the cell under this report's client concurrency, and the fingerprint
// column carries the same determinism contract as every other mode — a
// det-cell fingerprint must match the in-process trajectory entries for
// the same (app, variant, threads, scale).
func (rep *Report) BenchEntries(cfg LoadConfig) []obs.BenchEntry {
	var out []obs.BenchEntry
	for _, cs := range rep.Cells {
		if cs.Requests == 0 {
			continue
		}
		sched := "det"
		if cs.Variant == "g-n" {
			sched = "nondet"
		}
		fp := ""
		if len(cs.Fingerprints) == 1 {
			fp = cs.Fingerprints[0]
		}
		commits, aborts := cs.Commits, cs.Aborts
		ratio := 0.0
		if commits+aborts > 0 {
			ratio = float64(commits) / float64(commits+aborts)
		}
		threads := cfg.Threads
		if threads <= 0 {
			threads = 1
		}
		out = append(out, obs.BenchEntry{
			App: cs.Kind, Variant: cs.Variant, Sched: sched,
			Threads: threads, Scale: cfg.Scale,
			WallNS:  cs.MedianNS,
			Commits: commits, Aborts: aborts, Rounds: cs.Rounds,
			CommitRatio: ratio,
			Fingerprint: fp,
			Mode:        "serve",
			Clients:     rep.Clients,
		})
	}
	return out
}
