package serve

import (
	"sync"

	"galois"
)

// EnginePool checks reusable galois.Engine instances in and out. Engines
// are keyed by thread count — an engine's worker pool and barriers are
// built for one parallelism — and each key grows lazily to capPerKey
// retained engines. When every pooled engine of a key is checked out the
// pool hands back a transient engine that is closed on return instead of
// retained, so admission never blocks on engine availability; with the
// worker count at or below the cap, the steady state of a warmed server
// is all hits.
//
// An Engine is single-run-at-a-time (a second concurrent run panics — see
// galois.Engine), which is exactly why the pool exists: checkout grants
// the holder exclusive use, and the pool never hands one engine to two
// jobs.
type EnginePool struct {
	mu        sync.Mutex
	capPerKey int
	idle      map[int][]*galois.Engine
	live      map[int]int // created-and-retained engines per key
	closed    bool

	hits, misses, transients uint64
}

// PoolCounters is a snapshot of the pool's checkout statistics.
type PoolCounters struct {
	// Hits are checkouts served by an idle pooled engine (no
	// construction). Misses grew the pool by one engine. Transients were
	// handed a throwaway engine because the key was at capacity.
	Hits, Misses, Transients uint64
}

// NewEnginePool returns a pool retaining up to capPerKey engines per
// thread-count key (minimum 1).
func NewEnginePool(capPerKey int) *EnginePool {
	if capPerKey < 1 {
		capPerKey = 1
	}
	return &EnginePool{
		capPerKey: capPerKey,
		idle:      make(map[int][]*galois.Engine),
		live:      make(map[int]int),
	}
}

// Get checks an engine for the given thread count out of the pool,
// constructing one if no idle engine exists. transient engines must not be
// returned to the idle set; Put handles that given the same flag back.
func (p *EnginePool) Get(threads int) (eng *galois.Engine, transient bool) {
	p.mu.Lock()
	if q := p.idle[threads]; len(q) > 0 {
		eng = q[len(q)-1]
		p.idle[threads] = q[:len(q)-1]
		p.hits++
		p.mu.Unlock()
		return eng, false
	}
	if p.closed || p.live[threads] >= p.capPerKey {
		p.transients++
		p.mu.Unlock()
		return galois.NewEngine(galois.WithThreads(threads)), true
	}
	p.live[threads]++
	p.misses++
	p.mu.Unlock()
	return galois.NewEngine(galois.WithThreads(threads)), false
}

// Put returns a checked-out engine. Transient engines, and any engine
// returned after Drain, are closed instead of retained.
func (p *EnginePool) Put(threads int, eng *galois.Engine, transient bool) {
	p.mu.Lock()
	if transient || p.closed {
		if !transient {
			p.live[threads]--
		}
		p.mu.Unlock()
		eng.Close()
		return
	}
	p.idle[threads] = append(p.idle[threads], eng)
	p.mu.Unlock()
}

// Discard closes a checked-out engine without returning it — for engines
// whose run panicked and whose retained state is suspect.
func (p *EnginePool) Discard(threads int, eng *galois.Engine, transient bool) {
	p.mu.Lock()
	if !transient {
		p.live[threads]--
	}
	p.mu.Unlock()
	eng.Close()
}

// Drain closes every idle engine and marks the pool closed: engines still
// checked out are closed as they come back, and future Gets return
// transients. Idempotent.
func (p *EnginePool) Drain() {
	p.mu.Lock()
	p.closed = true
	var toClose []*galois.Engine
	for _, q := range p.idle { //detlint:ordered closing engines; order has no observable effect
		toClose = append(toClose, q...)
	}
	p.idle = make(map[int][]*galois.Engine)
	p.mu.Unlock()
	for _, eng := range toClose {
		eng.Close()
	}
}

// Counters snapshots the checkout statistics.
func (p *EnginePool) Counters() PoolCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolCounters{Hits: p.hits, Misses: p.misses, Transients: p.transients}
}
