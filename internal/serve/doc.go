// Package serve turns the repository's graph-analytics apps into a
// deterministic network job service — the serving-layer proof of the
// paper's portability claim (§3): a job submitted to a loaded multi-tenant
// server returns the same fingerprint as the same job run alone, at any
// thread count, on any machine.
//
// The pieces:
//
//   - Job registry (Registry, Kind): maps a job kind plus JSON parameters
//     (scale, variant, seed, threads) onto a runnable closure over the
//     existing app entry points. Inputs are derived through
//     internal/inputs — the same derivations the experiment harness uses —
//     and cached per (input family, scale, seed).
//   - Engine pool (EnginePool): checks reusable galois.Engine instances in
//     and out, keyed by thread count and lazily grown to a cap, so
//     steady-state request handling rides the engine's allocation-free
//     path instead of rebuilding run state per request.
//   - Admission control (Server): a bounded job queue with explicit
//     rejection (HTTP 429 + Retry-After) when full, per-job deadlines, and
//     graceful shutdown that completes every admitted job while new
//     submissions get 503.
//   - Result cache (internal/rescache): deterministic jobs are pure
//     functions of their normalized spec, so results are content-
//     addressed — a byte-budgeted LRU keyed by the canonical spec hash
//     serves repeat submissions at lookup speed, singleflight collapses
//     concurrent identical submissions onto one execution, and seeded
//     spot-checks re-execute a fraction of hits through the verify path,
//     evicting on mismatch. Cached responses carry the same receipt a
//     fresh run would, plus a cached flag that is excluded from
//     verification.
//   - Fingerprint receipts (Receipt): every response carries the result
//     fingerprint and the exact normalized job spec; POST /verify
//     re-executes a receipt and reports match/mismatch — determinism as an
//     API feature, not just a test property.
//   - Observability: an obs.Registry per server (admission counters, job
//     latency histogram, per-kind commit/abort totals) exported at
//     GET /metrics as plain text, plus optional per-job Chrome trace
//     capture returned inline.
//
// Determinism note: the server itself is full of wall-clock reads and
// scheduling-dependent concurrency — deadlines, Retry-After, worker
// goroutines racing on a queue. None of it reaches committed job output:
// every deterministic job's result is a pure function of its normalized
// spec, which is exactly what the receipts make checkable. detlint keeps
// the package honest with a rule-scoped exemption (wallclock only); map
// iteration, global randomness and unannotated fork points are still
// flagged here like everywhere else.
package serve
