package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"galois"
	"galois/internal/rescache"
	"galois/internal/session"
	"galois/internal/stats"
)

// SessionInfo is the wire shape of GET /sessions/{id} and the creation
// response: the normalized init spec plus the full receipt chain.
type SessionInfo struct {
	ID      string           `json:"id"`
	Init    session.InitSpec `json:"init"`
	Evicted bool             `json:"evicted"`
	Head    string           `json:"head"`
	Links   []session.Link   `json:"links"`
}

// BatchResult is the wire shape of POST /sessions/{id}/batches: the new
// chain link plus the run's serving-side measurements. A replayed link
// (idempotent retry) carries Replayed and zero measurements.
type BatchResult struct {
	ID        string       `json:"id"`
	Link      session.Link `json:"link"`
	WallNS    int64        `json:"wall_ns"`
	QueueNS   int64        `json:"queue_ns"`
	Commits   uint64       `json:"commits"`
	Aborts    uint64       `json:"aborts"`
	Rounds    uint64       `json:"rounds"`
	EngineHit bool         `json:"engine_hit"`
}

// sessionVerifyRequest is the optional body of POST /sessions/{id}/verify:
// a client holding only its final receipt posts that chain fingerprint and
// the server checks the full replay against it.
type sessionVerifyRequest struct {
	FinalChain string `json:"final_chain,omitempty"`
	Threads    int    `json:"threads,omitempty"`
}

// cachedLink is the result-cache payload for one session batch, keyed by
// rescache.KeyOfLink(prev, canon). Because the key pins the exact chain
// prefix, the fingerprints are pure functions of the key — which is what
// makes caching them sound. They are used as a cross-check, never as a
// substitute for execution (the state must actually advance), so a hit
// costs nothing and a mismatch is a determinism alarm.
type cachedLink struct {
	stateFP  uint64
	resultFP uint64
}

func (c *cachedLink) size() int64 { return 64 }

// batchOutcome carries one batch task's result over its done channel.
type batchOutcome struct {
	res *BatchResult
	err *httpError
}

// batchTask is one admitted session mutation batch. It shares the
// executor substrate with one-shot jobs: same queue, same workers, same
// engine pool, same deadline semantics. The session's own lock serializes
// batches against the same state; batches on different sessions run
// concurrently on different workers.
type batchTask struct {
	srv      *Server
	sess     *session.Session
	b        session.BatchSpec
	variant  string
	threads  int
	deadline time.Time
	admitted time.Time
	done     chan batchOutcome
}

func (t *batchTask) run(tid int) { t.done <- t.srv.runBatch(tid, t) }

// runBatch executes one session batch on a worker.
func (s *Server) runBatch(tid int, t *batchTask) batchOutcome {
	if time.Now().After(t.deadline) {
		s.exec.met.Counter("serve.timeout").Add(tid, 1)
		return batchOutcome{err: errf(http.StatusGatewayTimeout,
			"session %s batch exceeded its deadline while queued", t.sess.ID)}
	}
	var (
		wall      time.Duration
		queued    = time.Since(t.admitted)
		st        stats.Stats
		engineHit bool
	)
	runner := func(k *session.Kind, state any, b session.BatchSpec, prev, canon []byte) (uint64, uint64, error) {
		var stateFP, resultFP uint64
		var aerr error
		herr := s.exec.withEngine(t.threads, tid, func(eng *galois.Engine, hit bool) {
			engineHit = hit
			opts := schedOpts(t.variant, t.threads, eng, nil)
			start := time.Now()
			stateFP, resultFP, st, aerr = k.Apply(state, b, opts)
			wall = time.Since(start)
		})
		if herr != nil {
			return 0, 0, errors.New(herr.msg)
		}
		if aerr != nil {
			return 0, 0, aerr
		}
		s.checkLinkCache(tid, prev, canon, stateFP, resultFP)
		return stateFP, resultFP, nil
	}
	now := time.Now().UnixNano() //detlint:ordered idle-eviction bookkeeping only: session.Batch stores the timestamp as lastUsed and never feeds it into the chain hash
	link, err := t.sess.Batch(t.b, now, runner)
	if err != nil {
		return batchOutcome{err: sessionError(t.sess.ID, err)}
	}
	s.exec.met.Counter("serve.session.batch").Add(tid, 1)
	if link.Replayed {
		s.exec.met.Counter("serve.session.batch.replayed").Add(tid, 1)
		return batchOutcome{res: &BatchResult{ID: t.sess.ID, Link: link}}
	}
	s.recordRun(tid, Spec{Kind: "session." + t.sess.Init().Kind, Variant: t.variant, Threads: t.threads}, st, wall)
	return batchOutcome{res: &BatchResult{
		ID: t.sess.ID, Link: link,
		WallNS: wall.Nanoseconds(), QueueNS: queued.Nanoseconds(),
		Commits: st.Commits, Aborts: st.Aborts, Rounds: st.Rounds,
		EngineHit: engineHit,
	}}
}

// checkLinkCache cross-checks a freshly computed batch result against the
// chain-prefix-keyed cache and refreshes the entry. Unlike one-shot jobs,
// a hit can never skip execution — the pinned state must advance — so the
// cache's value here is purely evidential: an agreeing entry (from an
// identical session elsewhere, or a previous life of this chain prefix)
// confirms cross-run determinism, a disagreeing one is evicted and
// counted as a determinism alarm.
func (s *Server) checkLinkCache(tid int, prev, canon []byte, stateFP, resultFP uint64) {
	if s.cache == nil {
		return
	}
	key, err := rescache.KeyOfLink(prev, canon)
	if err != nil {
		return
	}
	if v, ok := s.cache.Get(key); ok {
		cl := v.(*cachedLink)
		if cl.stateFP == stateFP && cl.resultFP == resultFP {
			s.exec.met.Counter("serve.session.chain.confirm").Add(tid, 1)
		} else {
			s.exec.met.Counter("serve.session.chain.mismatch").Add(tid, 1)
			s.cache.Remove(key)
		}
	}
	cl := &cachedLink{stateFP: stateFP, resultFP: resultFP}
	s.cache.Put(key, cl, cl.size())
}

// verifyOutcomeBox carries one verify task's result over its done channel.
type verifyOutcomeBox struct {
	out *session.VerifyOutcome
	err *httpError
}

// verifyTask replays a session's whole chain on one worker with one
// checked-out engine. It bypasses the link cache entirely — read and
// write — because an audit is only evidence if it reaches real runs.
type verifyTask struct {
	srv      *Server
	sess     *session.Session
	expect   string
	variant  string
	threads  int
	deadline time.Time
	done     chan verifyOutcomeBox
}

func (t *verifyTask) run(tid int) { t.done <- t.srv.runSessionVerify(tid, t) }

func (s *Server) runSessionVerify(tid int, t *verifyTask) verifyOutcomeBox {
	if time.Now().After(t.deadline) {
		s.exec.met.Counter("serve.timeout").Add(tid, 1)
		return verifyOutcomeBox{err: errf(http.StatusGatewayTimeout,
			"session %s verify exceeded its deadline while queued", t.sess.ID)}
	}
	var out session.VerifyOutcome
	var verr error
	herr := s.exec.withEngine(t.threads, tid, func(eng *galois.Engine, hit bool) {
		runner := func(k *session.Kind, state any, b session.BatchSpec, prev, canon []byte) (uint64, uint64, error) {
			stateFP, resultFP, _, err := k.Apply(state, b, schedOpts(t.variant, t.threads, eng, nil))
			return stateFP, resultFP, err
		}
		out, verr = t.sess.Verify(t.expect, runner)
	})
	if herr != nil {
		return verifyOutcomeBox{err: herr}
	}
	if verr != nil {
		return verifyOutcomeBox{err: errf(http.StatusInternalServerError, "session %s replay: %v", t.sess.ID, verr)}
	}
	s.exec.met.Counter("serve.session.verify").Add(tid, 1)
	if !out.Match {
		s.exec.met.Counter("serve.session.verify.mismatch").Add(tid, 1)
	}
	return verifyOutcomeBox{out: &out}
}

// sessionError maps session-package sentinels onto HTTP statuses.
func sessionError(id string, err error) *httpError {
	switch {
	case errors.Is(err, session.ErrNotFound):
		return errf(http.StatusNotFound, "session %s: %v", id, err)
	case errors.Is(err, session.ErrEvicted):
		return errf(http.StatusGone, "session %s: %v (chain remains readable via GET and verifiable via POST verify)", id, err)
	case errors.Is(err, session.ErrPrevMismatch):
		return errf(http.StatusConflict, "session %s: %v", id, err)
	case errors.Is(err, session.ErrTooManySessions):
		return &httpError{status: http.StatusTooManyRequests, msg: err.Error(), retryAfter: 1}
	default:
		return errf(http.StatusBadRequest, "session %s: %v", id, err)
	}
}

// sessionInfo snapshots a session into its wire shape.
func sessionInfo(s *session.Session) *SessionInfo {
	init, links, evicted := s.Snapshot()
	return &SessionInfo{
		ID: s.ID, Init: init, Evicted: evicted,
		Head: links[len(links)-1].Chain, Links: links,
	}
}

// jsonDecoderLenient is decode() without the error writing, for handlers
// whose body is optional.
func jsonDecoderLenient(w http.ResponseWriter, r *http.Request, maxBody int64) *json.Decoder {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	return dec
}

func isEmptyBody(err error) bool { return errors.Is(err, io.EOF) }

// --- session HTTP handlers ---

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.sweepSessions()
	var is session.InitSpec
	if !s.decode(w, r, &is) {
		return
	}
	if s.exec.draining() {
		writeError(w, errf(http.StatusServiceUnavailable, "server is draining; not accepting sessions"))
		return
	}
	if is.Threads > s.cfg.MaxThreads {
		writeError(w, errf(http.StatusBadRequest, "threads %d exceeds server limit %d", is.Threads, s.cfg.MaxThreads))
		return
	}
	if is.Threads <= 0 {
		is.Threads = s.cfg.DefaultThreads
	}
	now := time.Now().UnixNano() //detlint:ordered idle-eviction bookkeeping only: session.Create stores the timestamp as lastUsed and never feeds it into the chain hash
	sess, err := s.sessions.Create(is, now)
	if err != nil {
		writeError(w, sessionError("(new)", err))
		return
	}
	s.count("serve.session.create")
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.sweepSessions()
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, sessionError(r.PathValue("id"), err))
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sessions.Close(id); err != nil {
		writeError(w, sessionError(id, err))
		return
	}
	s.count("serve.session.close")
	sess, err := s.sessions.Get(id)
	if err != nil {
		writeError(w, sessionError(id, err))
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Server) handleSessionBatch(w http.ResponseWriter, r *http.Request) {
	s.sweepSessions()
	id := r.PathValue("id")
	var b session.BatchSpec
	if !s.decode(w, r, &b) {
		return
	}
	sess, err := s.sessions.Get(id)
	if err != nil {
		writeError(w, sessionError(id, err))
		return
	}
	threads := b.Threads
	if threads <= 0 {
		threads = sess.Init().Threads
	}
	if threads <= 0 {
		threads = s.cfg.DefaultThreads
	}
	if threads > s.cfg.MaxThreads {
		writeError(w, errf(http.StatusBadRequest, "threads %d exceeds server limit %d", threads, s.cfg.MaxThreads))
		return
	}
	timeout := s.cfg.DefaultTimeout
	if b.TimeoutMS > 0 {
		timeout = time.Duration(b.TimeoutMS) * time.Millisecond
	}
	now := time.Now()
	t := &batchTask{
		srv: s, sess: sess, b: b,
		variant: sess.Init().Variant, threads: threads,
		deadline: now.Add(timeout), admitted: now,
		done: make(chan batchOutcome, 1),
	}
	if herr := s.exec.admit(t); herr != nil {
		writeError(w, herr)
		return
	}
	//detlint:ignore goroutineorder admission wait: decides only whether the HTTP response gets written; the chain link is sealed under the session lock regardless
	select {
	case out := <-t.done:
		if out.err != nil {
			writeError(w, out.err)
			return
		}
		writeJSON(w, http.StatusOK, out.res)
	case <-r.Context().Done():
		writeError(w, errf(http.StatusGatewayTimeout,
			"request context canceled while session %s batch in flight: %v", id, r.Context().Err()))
	}
}

func (s *Server) handleSessionVerify(w http.ResponseWriter, r *http.Request) {
	s.sweepSessions()
	id := r.PathValue("id")
	var req sessionVerifyRequest
	// The body is optional: verifying against the recorded chain alone
	// needs no input from the client.
	dec := jsonDecoderLenient(w, r, s.cfg.MaxBody)
	if err := dec.Decode(&req); err != nil && !isEmptyBody(err) {
		writeError(w, errf(http.StatusBadRequest, "decoding request: %v", err))
		return
	}
	sess, err := s.sessions.Get(id)
	if err != nil {
		writeError(w, sessionError(id, err))
		return
	}
	threads := req.Threads
	if threads <= 0 {
		threads = s.cfg.DefaultThreads
	}
	if threads > s.cfg.MaxThreads {
		writeError(w, errf(http.StatusBadRequest, "threads %d exceeds server limit %d", threads, s.cfg.MaxThreads))
		return
	}
	t := &verifyTask{
		srv: s, sess: sess, expect: req.FinalChain,
		variant: sess.Init().Variant, threads: threads,
		deadline: time.Now().Add(s.cfg.DefaultTimeout),
		done:     make(chan verifyOutcomeBox, 1),
	}
	if herr := s.exec.admit(t); herr != nil {
		writeError(w, herr)
		return
	}
	//detlint:ignore goroutineorder admission wait: decides only whether the HTTP response gets written; the replay outcome is a pure function of the recorded chain
	select {
	case out := <-t.done:
		if out.err != nil {
			writeError(w, out.err)
			return
		}
		writeJSON(w, http.StatusOK, out.out)
	case <-r.Context().Done():
		writeError(w, errf(http.StatusGatewayTimeout,
			"request context canceled while session %s verify in flight: %v", id, r.Context().Err()))
	}
}
