package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestHealthzSnapshot checks the probe target a routing tier depends on:
// GET /healthz reports queue capacity, worker count, pool counters and the
// in-flight gauge, without ever touching an engine.
func TestHealthzSnapshot(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 5})
	ctx := context.Background()

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if !h.OK || h.Draining {
		t.Fatalf("fresh server not ok: %+v", h)
	}
	if h.QueueCap != 5 || h.Workers != 2 {
		t.Fatalf("config not reflected: %+v", h)
	}
	if h.InFlight != 0 || h.QueueDepth != 0 {
		t.Fatalf("idle server reports load: %+v", h)
	}
	if h.Pool.Hits != 0 || h.Pool.Misses != 0 {
		t.Fatalf("idle server reports pool traffic: %+v", h)
	}

	// One executed job moves the pool counters (a miss constructs the
	// engine) and leaves the gauges back at zero.
	submitOK(t, c, Spec{Kind: "bfs", Variant: "g-d", Scale: "small"})
	h, err = c.Healthz(ctx)
	if err != nil {
		t.Fatalf("healthz after job: %v", err)
	}
	if h.Pool.Misses == 0 {
		t.Fatalf("pool counters not reflected after a job: %+v", h)
	}
	if h.InFlight != 0 || h.QueueDepth != 0 {
		t.Fatalf("drained server still reports load: %+v", h)
	}
}

// blockingTask parks a worker until released, making the in-flight gauge
// observable at a known value.
type blockingTask struct {
	started chan struct{}
	release chan struct{}
	done    chan struct{}
}

func (b *blockingTask) run(tid int) {
	close(b.started)
	<-b.release
	close(b.done)
}

// TestHealthzInFlightGauge pins one worker on a blocking task and checks
// the gauge reads 1 while it runs and 0 after it finishes.
func TestHealthzInFlightGauge(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	bt := &blockingTask{
		started: make(chan struct{}),
		release: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if herr := s.exec.admit(bt); herr != nil {
		t.Fatalf("admit: %v", herr)
	}
	<-bt.started
	if got := s.Healthz().InFlight; got != 1 {
		t.Fatalf("in_flight while task runs = %d, want 1", got)
	}
	close(bt.release)
	<-bt.done
	// The worker decrements after run returns; wait for it to land.
	deadline := time.Now().Add(2 * time.Second)
	for s.Healthz().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in_flight did not return to 0: %d", s.Healthz().InFlight)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHealthzDraining checks a draining server reports ok:false — the
// signal a router uses to stop sending work before the listener closes.
func TestHealthzDraining(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Shutdown(context.Background())
	}()
	wg.Wait()
	h := s.Healthz()
	if h.OK || !h.Draining {
		t.Fatalf("draining server healthz = %+v, want ok:false draining:true", h)
	}
}
