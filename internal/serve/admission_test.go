package serve

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestQueueFullRejects: with one worker busy and the queue at capacity,
// the next submission is rejected with 429 and a Retry-After header —
// explicit backpressure instead of unbounded buffering.
func TestQueueFullRejects(t *testing.T) {
	started := make(chan struct{}, 8)
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1,
		Registry: slowRegistry(300*time.Millisecond, started)})
	ctx := context.Background()
	spec := Spec{Kind: "slow", Scale: "small"}

	resA := make(chan error, 1)
	go func() { _, err := c.Submit(ctx, spec); resA <- err }()
	<-started // A is running
	resB := make(chan error, 1)
	go func() { _, err := c.Submit(ctx, spec); resB <- err }()
	waitFor(t, func() bool { return len(s.exec.queue) == 1 }) // B is queued

	_, err := c.Submit(ctx, spec)
	ae, ok := err.(*APIError)
	if !ok || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("queue-full submission: got %v, want 429", err)
	}
	if !ae.IsRetryable() || ae.RetryAfter <= 0 {
		t.Errorf("429 without usable Retry-After: %+v", ae)
	}
	// The admitted jobs are unaffected by the rejection.
	if err := <-resA; err != nil {
		t.Errorf("job A: %v", err)
	}
	if err := <-resB; err != nil {
		t.Errorf("job B: %v", err)
	}
}

// TestQueuedJobDeadline: a job whose deadline expires while queued is
// rejected with 504 when a worker reaches it; it never executes.
func TestQueuedJobDeadline(t *testing.T) {
	started := make(chan struct{}, 8)
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 8,
		Registry: slowRegistry(250*time.Millisecond, started)})
	ctx := context.Background()

	resA := make(chan error, 1)
	go func() { _, err := s.Execute(ctx, Spec{Kind: "slow", Scale: "small"}); resA <- err }()
	<-started // A occupies the only worker for 250ms

	// B can only start after A, 250ms from now, but its budget is 50ms.
	_, err := s.Execute(ctx, Spec{Kind: "slow", Scale: "small", TimeoutMS: 50})
	if status(err) != http.StatusGatewayTimeout {
		t.Fatalf("expired queued job: got %v, want 504", err)
	}
	if err := <-resA; err != nil {
		t.Errorf("job A: %v", err)
	}
	// B never ran: only A signalled started.
	select {
	case <-started:
		t.Error("expired job was executed anyway")
	default:
	}
}

// TestRequestContextCancel: an HTTP client that gives up does not cancel
// the admitted job — the worker completes it and the outcome is delivered
// to the buffered channel — but the submitter gets an error promptly.
func TestRequestContextCancel(t *testing.T) {
	started := make(chan struct{}, 8)
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 8,
		Registry: slowRegistry(200*time.Millisecond, started)})

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { _, err := s.Execute(ctx, Spec{Kind: "slow", Scale: "small"}); res <- err }()
	<-started
	cancel()
	if err := <-res; status(err) != http.StatusGatewayTimeout {
		t.Fatalf("canceled submitter: got %v, want 504-style error", err)
	}
	// The worker still finishes the job and the server drains cleanly.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
