package serve

import (
	"sync"

	"galois"
	"galois/internal/apps/bfs"
	"galois/internal/apps/dmr"
	"galois/internal/apps/dt"
	"galois/internal/apps/mis"
	"galois/internal/apps/msf"
	"galois/internal/apps/pfp"
	"galois/internal/apps/sssp"
	"galois/internal/geom"
	"galois/internal/graph"
	"galois/internal/inputs"
	"galois/internal/mesh"
	"galois/internal/stats"
)

// Kind is one registered job kind: how to build its input for a (scale,
// seed) cell and how to run it. Run closures wrap the existing app entry
// points; the scheduler variant arrives pre-translated in opts, so a Kind
// is variant-agnostic.
type Kind struct {
	// Name is the job kind as it appears in Spec.Kind.
	Name string
	// Family keys the input cache. Kinds that operate on the same input
	// (bfs and mis both run on the k-out graph) share a family so the
	// server builds the input once.
	Family string
	// Exclusive marks inputs that runs mutate in place (pfp's flow
	// network). The server then serializes jobs on that input and calls
	// Reset before each run, so every job still starts from the same
	// deterministic state.
	Exclusive bool
	// Build constructs the input for one (scale sizes, seed) cell through
	// the canonical derivations in internal/inputs.
	Build func(sc inputs.Scale, seed uint64) any
	// Reset restores an Exclusive input to its initial state. Nil for
	// shared read-only inputs.
	Reset func(data any)
	// Run executes one job over data with the given scheduler options and
	// returns the result fingerprint and run statistics.
	Run func(data any, opts []galois.Option) (uint64, stats.Stats)
}

// Registry maps job-kind names to their runnable definitions. Lookup is
// lock-free after construction-time registration; tests may register extra
// kinds before the server starts serving.
type Registry struct {
	mu    sync.RWMutex
	kinds map[string]*Kind
	names []string // registration order, for deterministic listings
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{kinds: make(map[string]*Kind)} }

// Register adds k; re-registering a name panics (a config bug, not a
// runtime condition).
func (r *Registry) Register(k *Kind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.kinds[k.Name]; dup {
		panic("serve: duplicate job kind " + k.Name)
	}
	if k.Family == "" {
		k.Family = k.Name
	}
	r.kinds[k.Name] = k
	r.names = append(r.names, k.Name)
}

// Lookup returns the kind registered under name, or nil.
func (r *Registry) Lookup(name string) *Kind {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.kinds[name]
}

// Names returns the registered kind names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// ssspData bundles the weighted graph with the scheduling options derived
// from its weight range (the OBIM delta heuristic for g-n runs).
type ssspData struct {
	g *graph.Weighted
	o sssp.Options
}

// msfInput bundles the node count with the weighted edge list.
type msfInput struct {
	n     int
	edges []msf.WEdge
}

// dtInput bundles the canonical point set with the seed dt.Galois needs
// for its BRIO shuffle. The points are never mutated (BRIO copies), so dt
// is a shared, cacheable kind.
type dtInput struct {
	pts  []geom.Point
	seed uint64
}

// dmrInput carries the (size, seed) cell and the current mesh root.
// Refinement consumes the mesh, so rebuilding it IS the reset: Build
// leaves root nil and Reset — which the server calls before every run of
// an Exclusive kind — derives a pristine mesh through inputs.DMRMesh.
type dmrInput struct {
	n    int
	seed uint64
	root *mesh.Element
}

// DefaultRegistry returns all seven paper/Lonestar apps: the stateless
// kinds (bfs, mis, sssp, msf, dt) plus the in-place mutators (pfp, dmr),
// which go through the Exclusive-input machinery — the server serializes
// their runs and resets the input before each one. A job's receipt
// fingerprints the result, not the bulk output, so even the mesh apps fit
// request/response serving; clients that want the mesh itself use a
// session (internal/session) instead.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register(&Kind{
		Name:   "bfs",
		Family: "kout-graph",
		Build: func(sc inputs.Scale, seed uint64) any {
			return inputs.BFSGraph(sc.BFSNodes, sc.BFSDegree, seed)
		},
		Run: func(data any, opts []galois.Option) (uint64, stats.Stats) {
			res := bfs.Galois(data.(*graph.CSR), 0, opts...)
			return res.Fingerprint(), res.Stats
		},
	})
	r.Register(&Kind{
		Name:   "mis",
		Family: "kout-graph",
		Build: func(sc inputs.Scale, seed uint64) any {
			return inputs.BFSGraph(sc.BFSNodes, sc.BFSDegree, seed)
		},
		Run: func(data any, opts []galois.Option) (uint64, stats.Stats) {
			res := mis.Galois(data.(*graph.CSR), opts...)
			return res.Fingerprint(), res.Stats
		},
	})
	r.Register(&Kind{
		Name: "sssp",
		Build: func(sc inputs.Scale, seed uint64) any {
			return &ssspData{
				g: inputs.SSSPGraph(sc.SSSPNodes, sc.SSSPDegree, sc.SSSPMaxW, seed),
				o: sssp.DefaultOptions(sc.SSSPMaxW),
			}
		},
		Run: func(data any, opts []galois.Option) (uint64, stats.Stats) {
			d := data.(*ssspData)
			res := sssp.Galois(d.g, 0, d.o, opts...)
			return res.Fingerprint(), res.Stats
		},
	})
	r.Register(&Kind{
		Name: "msf",
		Build: func(sc inputs.Scale, seed uint64) any {
			n, edges := inputs.MSFEdges(sc.MSFNodes, sc.MSFDegree, sc.MSFMaxW, seed)
			return &msfInput{n: n, edges: edges}
		},
		Run: func(data any, opts []galois.Option) (uint64, stats.Stats) {
			d := data.(*msfInput)
			res := msf.Galois(d.n, d.edges, opts...)
			return res.Fingerprint(), res.Stats
		},
	})
	r.Register(&Kind{
		Name:      "pfp",
		Exclusive: true,
		Build: func(sc inputs.Scale, seed uint64) any {
			return inputs.PFPNetwork(sc.PFPNodes, sc.PFPDegree, seed)
		},
		Reset: func(data any) { data.(*pfp.Network).Reset() },
		Run: func(data any, opts []galois.Option) (uint64, stats.Stats) {
			val, st := pfp.Galois(data.(*pfp.Network), opts...)
			return uint64(val), st
		},
	})
	r.Register(&Kind{
		Name: "dt",
		Build: func(sc inputs.Scale, seed uint64) any {
			return &dtInput{pts: inputs.DTPoints(sc.DTPoints, seed), seed: seed}
		},
		Run: func(data any, opts []galois.Option) (uint64, stats.Stats) {
			d := data.(*dtInput)
			// seed+3 is the harness's BRIO-shuffle derivation for dt; keep
			// it so served fingerprints match harness fingerprints.
			res := dt.Galois(d.pts, d.seed+3, opts...)
			return res.Fingerprint(), res.Stats
		},
	})
	r.Register(&Kind{
		Name:      "dmr",
		Exclusive: true,
		Build: func(sc inputs.Scale, seed uint64) any {
			return &dmrInput{n: sc.DMRPoints, seed: seed}
		},
		Reset: func(data any) {
			d := data.(*dmrInput)
			d.root = inputs.DMRMesh(d.n, d.seed)
		},
		Run: func(data any, opts []galois.Option) (uint64, stats.Stats) {
			d := data.(*dmrInput)
			res := dmr.Galois(d.root, dmr.DefaultQuality(), opts...)
			return res.Fingerprint(), res.Stats
		},
	})
	return r
}
