package serve

import (
	"fmt"
	"sync"

	"galois/internal/inputs"
)

// cachedInput is one built input cell. Exclusive inputs (pfp's mutable
// network) carry a run mutex: the holder has exclusive use of the data for
// the duration of one job, and Reset restores the initial state before
// every run, so serialized jobs all observe the same deterministic input.
type cachedInput struct {
	build sync.Once
	data  any
	err   error

	exclusive bool
	runMu     sync.Mutex
}

// inputCache builds inputs on first use and shares them between jobs,
// keyed by (input family, scale, seed). Construction runs outside the
// cache lock (inputs can be hundreds of megabytes), guarded per-entry by
// sync.Once so concurrent first requests build each cell exactly once.
type inputCache struct {
	mu sync.Mutex
	m  map[string]*cachedInput
}

func newInputCache() *inputCache {
	return &inputCache{m: make(map[string]*cachedInput)}
}

// get returns the built input cell for kind at (scale, seed).
func (c *inputCache) get(kind *Kind, scale string, seed uint64) (*cachedInput, error) {
	key := fmt.Sprintf("%s/%s/%d", kind.Family, scale, seed)
	c.mu.Lock()
	ent := c.m[key]
	if ent == nil {
		ent = &cachedInput{exclusive: kind.Exclusive}
		c.m[key] = ent
	}
	c.mu.Unlock()
	ent.build.Do(func() {
		sc, err := inputs.ScaleByName(scale)
		if err != nil {
			ent.err = err
			return
		}
		ent.data = kind.Build(sc, seed)
	})
	return ent, ent.err
}
