package serve

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"galois"
	"galois/internal/inputs"
	"galois/internal/stats"
)

// poolCheckouts is the total number of engine checkouts — every execution
// checks out exactly one engine, so this counts executions.
func poolCheckouts(s *Server) uint64 {
	pc := s.PoolCounters()
	return pc.Hits + pc.Misses + pc.Transients
}

// receiptBytes marshals a receipt with its serving-metadata flag cleared:
// the verifiable identity of a response, which must be byte-identical
// between a cached response and the fresh run that produced it.
func receiptBytes(t *testing.T, r Receipt) string {
	t.Helper()
	r.Cached = false
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal receipt: %v", err)
	}
	return string(data)
}

func TestCacheHitServesWithoutExecution(t *testing.T) {
	s, c := newTestServer(t, Config{CacheBytes: 1 << 20})
	spec := Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 7}

	fresh := submitOK(t, c, spec)
	if fresh.Receipt.Cached {
		t.Fatal("first submission reported cached")
	}
	execs := poolCheckouts(s)

	hit := submitOK(t, c, spec)
	if !hit.Receipt.Cached {
		t.Fatal("second identical submission not served from cache")
	}
	if got := poolCheckouts(s); got != execs {
		t.Fatalf("cache hit executed an engine: checkouts %d -> %d", execs, got)
	}
	if hit.Receipt.Fingerprint != fresh.Receipt.Fingerprint {
		t.Fatalf("cached fingerprint %s != fresh %s", hit.Receipt.Fingerprint, fresh.Receipt.Fingerprint)
	}
	if receiptBytes(t, hit.Receipt) != receiptBytes(t, fresh.Receipt) {
		t.Fatalf("cached receipt identity differs from fresh:\n%s\n%s",
			receiptBytes(t, hit.Receipt), receiptBytes(t, fresh.Receipt))
	}
	if hit.QueueNS != 0 {
		t.Fatalf("cache hit reported queue time %d", hit.QueueNS)
	}
	if cc := s.CacheCounters(); cc.Hits != 1 || cc.Stores != 1 {
		t.Fatalf("cache counters %+v; want 1 hit, 1 store", cc)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	s, c := newTestServer(t, Config{CacheBytes: 1 << 20})

	// Semantically identical specs — defaults omitted vs spelled out, and
	// a non-semantic timeout difference — must collide on one key.
	implicit := Spec{Kind: "bfs", Seed: 7}
	explicit := Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 7, Threads: 1, TimeoutMS: 30_000}
	for _, pair := range [][2]Spec{{implicit, explicit}} {
		var keys [2]string
		for i, raw := range pair {
			spec, kind, herr := s.normalize(raw)
			if herr != nil {
				t.Fatalf("normalize %s: %v", raw, herr)
			}
			key, ok := s.cacheKey(spec, kind)
			if !ok {
				t.Fatalf("det spec %s not cacheable", spec)
			}
			keys[i] = key.String()
		}
		if keys[0] != keys[1] {
			t.Fatalf("semantically identical specs keyed apart: %s vs %s", keys[0], keys[1])
		}
	}

	// End to end: submitting the explicit form after the implicit one is a
	// cache hit with the same fingerprint.
	a := submitOK(t, c, implicit)
	b := submitOK(t, c, explicit)
	if !b.Receipt.Cached || b.Receipt.Fingerprint != a.Receipt.Fingerprint {
		t.Fatalf("normalized forms did not share a cache line: cached=%v fp %s vs %s",
			b.Receipt.Cached, b.Receipt.Fingerprint, a.Receipt.Fingerprint)
	}

	// Never cacheable: g-n (non-deterministic), pfp (Exclusive mutable
	// input), traced requests (per-execution capture).
	uncacheable := []Spec{
		{Kind: "bfs", Variant: "g-n", Seed: 7},
		{Kind: "pfp", Variant: "g-d", Seed: 7},
		{Kind: "bfs", Variant: "g-d", Seed: 7, Trace: true},
	}
	for _, raw := range uncacheable {
		spec, kind, herr := s.normalize(raw)
		if herr != nil {
			t.Fatalf("normalize %s: %v", raw, herr)
		}
		if _, ok := s.cacheKey(spec, kind); ok {
			t.Errorf("spec %s should not be cacheable", spec)
		}
	}
	// And behaviorally: a repeat pfp submission executes again.
	pfpSpec := Spec{Kind: "pfp", Variant: "g-d", Seed: 7}
	submitOK(t, c, pfpSpec)
	before := poolCheckouts(s)
	res := submitOK(t, c, pfpSpec)
	if res.Receipt.Cached || poolCheckouts(s) != before+1 {
		t.Fatal("Exclusive-input spec was served from cache")
	}
}

// gatedKind registers a job kind whose Run blocks until release is closed,
// counting executions — the instrument for overlap and queue tests.
func gatedKind(name string, fp uint64, execs *atomic.Int64, entered chan<- string, release <-chan struct{}) *Kind {
	return &Kind{
		Name:   name,
		Family: "gate-" + name,
		Build:  func(sc inputs.Scale, seed uint64) any { return &struct{}{} },
		Run: func(data any, opts []galois.Option) (uint64, stats.Stats) {
			execs.Add(1)
			select {
			case entered <- name:
			default:
			}
			<-release
			return fp, stats.Stats{Commits: 1}
		},
	}
}

func TestConcurrentIdenticalBurstExecutesOnce(t *testing.T) {
	reg := DefaultRegistry()
	var execs atomic.Int64
	entered := make(chan string, 1)
	release := make(chan struct{})
	reg.Register(gatedKind("slow", 0xabcdef, &execs, entered, release))
	s, _ := newTestServer(t, Config{CacheBytes: 1 << 20, Workers: 4, Registry: reg})

	spec := Spec{Kind: "slow", Variant: "g-d", Seed: 1}
	const n = 16
	results := make([]*JobResult, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := s.Execute(context.Background(), spec)
			if err != nil {
				t.Errorf("execute %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	<-entered // one execution is in flight and holding the gate
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("16-way identical burst executed %d times, want exactly 1", got)
	}
	if got := poolCheckouts(s); got != 1 {
		t.Fatalf("16-way identical burst checked out %d engines, want exactly 1", got)
	}
	want := receiptBytes(t, results[0].Receipt)
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d missing", i)
		}
		if res.Receipt.Fingerprint != "0000000000abcdef" {
			t.Fatalf("result %d fingerprint %s", i, res.Receipt.Fingerprint)
		}
		if receiptBytes(t, res.Receipt) != want {
			t.Fatalf("receipt %d differs:\n%s\n%s", i, receiptBytes(t, res.Receipt), want)
		}
	}
}

func TestQueuedThenCachedDoesNotDoubleExecute(t *testing.T) {
	reg := DefaultRegistry()
	var execs atomic.Int64
	entered := make(chan string, 1)
	release := make(chan struct{})
	reg.Register(gatedKind("block", 0x111, &execs, entered, release))
	s, _ := newTestServer(t, Config{CacheBytes: 1 << 20, Workers: 1, Registry: reg})

	// Occupy the single worker.
	blockDone := make(chan struct{})
	go func() {
		defer close(blockDone)
		if _, err := s.Execute(context.Background(), Spec{Kind: "block", Variant: "g-d"}); err != nil {
			t.Errorf("block job: %v", err)
		}
	}()
	<-entered

	// Queue a bfs job behind it, then land its result in the cache while
	// it waits (as a verify re-execution would).
	spec, kind, herr := s.normalize(Spec{Kind: "bfs", Variant: "g-d", Seed: 99})
	if herr != nil {
		t.Fatalf("normalize: %v", herr)
	}
	key, ok := s.cacheKey(spec, kind)
	if !ok {
		t.Fatal("bfs spec not cacheable")
	}
	resCh := make(chan *JobResult, 1)
	go func() {
		res, err := s.Execute(context.Background(), spec)
		if err != nil {
			t.Errorf("queued job: %v", err)
		}
		resCh <- res
	}()
	for len(s.exec.queue) == 0 { // wait until the job is admitted behind the gate
		runtime.Gosched()
	}
	injected := &cachedResult{Receipt: Receipt{Spec: spec, Fingerprint: "00000000feedface", Deterministic: true}}
	s.cache.Put(key, injected, injected.size())

	checkoutsBefore := poolCheckouts(s)
	close(release)
	<-blockDone
	res := <-resCh

	if res == nil {
		t.Fatal("queued job returned nothing")
	}
	if !res.Receipt.Cached || res.Receipt.Fingerprint != "00000000feedface" {
		t.Fatalf("queued-then-cached job did not serve the resident entry: cached=%v fp=%s",
			res.Receipt.Cached, res.Receipt.Fingerprint)
	}
	if got := poolCheckouts(s); got != checkoutsBefore {
		t.Fatalf("queued-then-cached job executed anyway: checkouts %d -> %d", checkoutsBefore, got)
	}
	if v := s.exec.met.Counter("serve.cache.hit_queued").Value(); v != 1 {
		t.Fatalf("serve.cache.hit_queued = %d, want 1", v)
	}
}

func TestSpotCheckMismatchEvicts(t *testing.T) {
	s, c := newTestServer(t, Config{CacheBytes: 1 << 20, CacheSpotCheck: 1})
	spec := Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 5}
	fresh := submitOK(t, c, spec)

	// Corrupt the resident entry: the spot-check must catch the lie.
	nspec, kind, _ := s.normalize(spec)
	key, _ := s.cacheKey(nspec, kind)
	corrupt := &cachedResult{Receipt: Receipt{Spec: nspec, Fingerprint: "00000000deadbeef", Deterministic: true}}
	s.cache.Put(key, corrupt, corrupt.size())

	res := submitOK(t, c, spec)
	if res.Receipt.Cached {
		t.Fatal("mismatched entry served as a cache hit")
	}
	if res.Receipt.Fingerprint != fresh.Receipt.Fingerprint {
		t.Fatalf("spot-check served %s, want the true fingerprint %s",
			res.Receipt.Fingerprint, fresh.Receipt.Fingerprint)
	}
	if _, ok := s.cache.Get(key); ok {
		t.Fatal("corrupt entry survived the spot-check mismatch")
	}
	if v := s.exec.met.Counter("serve.cache.spotcheck.mismatch").Value(); v != 1 {
		t.Fatalf("spotcheck.mismatch = %d, want 1", v)
	}
}

func TestSpotCheckMatchKeepsEntry(t *testing.T) {
	s, c := newTestServer(t, Config{CacheBytes: 1 << 20, CacheSpotCheck: 1})
	spec := Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 6}
	fresh := submitOK(t, c, spec)

	res := submitOK(t, c, spec)
	if !res.Receipt.Cached || res.Receipt.Fingerprint != fresh.Receipt.Fingerprint {
		t.Fatalf("honest hit not served: cached=%v fp=%s", res.Receipt.Cached, res.Receipt.Fingerprint)
	}
	if v := s.exec.met.Counter("serve.cache.spotcheck").Value(); v != 1 {
		t.Fatalf("spotcheck = %d, want 1", v)
	}
	if v := s.exec.met.Counter("serve.cache.spotcheck.mismatch").Value(); v != 0 {
		t.Fatalf("spotcheck.mismatch = %d, want 0", v)
	}
	nspec, kind, _ := s.normalize(spec)
	key, _ := s.cacheKey(nspec, kind)
	if _, ok := s.cache.Get(key); !ok {
		t.Fatal("honest entry evicted by a matching spot-check")
	}
}

func TestVerifyBypassesCache(t *testing.T) {
	s, c := newTestServer(t, Config{CacheBytes: 1 << 20})
	spec := Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 8}
	nspec, kind, _ := s.normalize(spec)
	key, _ := s.cacheKey(nspec, kind)

	// Plant a forged entry, then verify a receipt carrying the forged
	// fingerprint. If /verify consulted the cache it would "confirm" the
	// forgery; a real re-execution exposes it.
	forged := &cachedResult{Receipt: Receipt{Spec: nspec, Fingerprint: "00000000deadbeef", Deterministic: true}}
	s.cache.Put(key, forged, forged.size())
	vr, err := c.Verify(context.Background(), forged.Receipt)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if vr.Match {
		t.Fatal("verification of a forged receipt matched — /verify read the cache")
	}
}

func TestCachedReceiptVerifies(t *testing.T) {
	_, c := newTestServer(t, Config{CacheBytes: 1 << 20})
	spec := Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 9}
	submitOK(t, c, spec)
	hit := submitOK(t, c, spec)
	if !hit.Receipt.Cached {
		t.Fatal("second submission not cached")
	}
	vr, err := c.Verify(context.Background(), hit.Receipt)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !vr.Match {
		t.Fatalf("cached receipt failed verification: expect %s got %s", vr.Expect, vr.Got)
	}
}

func TestCachedFlagExcludedFromReceiptIdentity(t *testing.T) {
	r := Receipt{Spec: Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Threads: 1}, Fingerprint: "aa", Deterministic: true}
	plain, _ := json.Marshal(r)
	if strings.Contains(string(plain), "cached") {
		t.Fatalf("uncached receipt serializes a cached field: %s", plain)
	}
	c := r
	c.Cached = true
	if c.Fingerprint != r.Fingerprint || c.Spec != r.Spec {
		t.Fatal("setting Cached changed receipt identity")
	}
}

func TestCacheMetricsExposed(t *testing.T) {
	_, c := newTestServer(t, Config{CacheBytes: 1 << 20})
	spec := Spec{Kind: "bfs", Variant: "g-d", Scale: "small", Seed: 11}
	submitOK(t, c, spec)
	submitOK(t, c, spec)
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		// misses is 2 for one cold submit: the handler-side Get plus the
		// flight leader's queued recheck.
		"serve.rescache.hits 1", "serve.rescache.misses 2", "serve.rescache.stores 1",
		"serve.rescache.entries 1", "serve.rescache.bytes_budget 1048576",
		"serve.cache.hit 1", "serve.cache.miss 1",
	} {
		if !containsLinePrefix(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
