package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"galois"
	"galois/internal/inputs"
	"galois/internal/stats"
)

// slowRegistry returns the default registry plus a "slow" kind whose runs
// block for d (signalling each start on started, if non-nil) — the lever
// the admission and shutdown tests use to hold jobs in flight and in
// queue deterministically.
func slowRegistry(d time.Duration, started chan struct{}) *Registry {
	reg := DefaultRegistry()
	reg.Register(&Kind{
		Name:  "slow",
		Build: func(inputs.Scale, uint64) any { return struct{}{} },
		Run: func(_ any, _ []galois.Option) (uint64, stats.Stats) {
			if started != nil {
				started <- struct{}{}
			}
			time.Sleep(d)
			return 42, stats.Stats{}
		},
	})
	return reg
}

// TestShutdownDrainsAdmittedJobs pins the shutdown contract: with jobs
// in flight and queued, Shutdown completes every admitted job and returns
// its receipt, new submissions are rejected with 503, and nothing is
// silently dropped.
func TestShutdownDrainsAdmittedJobs(t *testing.T) {
	started := make(chan struct{}, 8)
	s := NewServer(Config{Workers: 1, QueueDepth: 8,
		Registry: slowRegistry(100*time.Millisecond, started)})
	ctx := context.Background()
	spec := Spec{Kind: "slow", Scale: "small"}

	const jobs = 3
	var wg sync.WaitGroup
	results := make([]*JobResult, jobs)
	errs := make([]error, jobs)
	wg.Add(jobs)
	for i := 0; i < jobs; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Execute(ctx, spec)
		}(i)
	}
	// One job running, two queued.
	<-started
	waitFor(t, func() bool { return len(s.exec.queue) == 2 })

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(ctx) }()
	waitFor(t, s.Draining)

	// New work is rejected while draining...
	if _, err := s.Execute(ctx, spec); status(err) != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: got %v, want 503", err)
	}

	// ...but everything admitted completes and returns a receipt.
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("admitted job %d dropped during shutdown: %v", i, errs[i])
		}
		if results[i].Receipt.Fingerprint != "000000000000002a" {
			t.Errorf("job %d receipt fingerprint = %q", i, results[i].Receipt.Fingerprint)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// And the server stays closed.
	if _, err := s.Execute(ctx, spec); status(err) != http.StatusServiceUnavailable {
		t.Errorf("submission after shutdown: got %v, want 503", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown not idempotent: %v", err)
	}
}

// status extracts an httpError/APIError status, 0 otherwise.
func status(err error) int {
	switch e := err.(type) {
	case *httpError:
		return e.status
	case *APIError:
		return e.Status
	}
	return 0
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
