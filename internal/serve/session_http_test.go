package serve

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"galois/internal/session"
)

func apiStatus(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		t.Fatal("want an API error, got success")
	}
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	return ae.Status
}

// TestSessionLifecycleHTTP walks the whole session API end to end: create,
// chained batches, verify (with and without the final receipt), GET, close,
// and the post-close 410.
func TestSessionLifecycleHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 32})
	ctx := context.Background()

	si, err := c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Scale: "small", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if si.Init.Variant != "g-d" || len(si.Links) != 1 || si.Head != si.Links[0].Chain {
		t.Fatalf("creation response malformed: %+v", si)
	}

	prev := si.Head
	var last *BatchResult
	for i := 0; i < 3; i++ {
		br, err := c.SessionBatch(ctx, si.ID, session.BatchSpec{
			Op: "reweight", Edges: 8 + i, Seed: uint64(100 + i), Prev: prev})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if br.Link.Index != i+1 || br.Link.Prev != prev {
			t.Fatalf("batch %d link mischained: %+v", i, br.Link)
		}
		prev = br.Link.Chain
		last = br
	}

	// Audit from the recorded chain alone, then from the final receipt.
	for _, final := range []string{"", last.Link.Chain} {
		vo, err := c.SessionVerify(ctx, si.ID, final, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !vo.Match || vo.Links != 4 || vo.FinalChain != last.Link.Chain {
			t.Fatalf("verify(final=%q): %+v", final, vo)
		}
	}
	// A forged final receipt is flagged at the last link.
	vo, err := c.SessionVerify(ctx, si.ID, si.Head, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vo.Match || vo.FailedIndex != 3 {
		t.Fatalf("forged final receipt accepted: %+v", vo)
	}

	got, err := c.Session(ctx, si.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Links) != 4 || got.Evicted {
		t.Fatalf("GET after 3 batches: %+v", got)
	}

	closed, err := c.CloseSession(ctx, si.ID)
	if err != nil {
		t.Fatal(err)
	}
	tomb := closed.Links[len(closed.Links)-1]
	if !closed.Evicted || tomb.Batch.Op != "tombstone" || tomb.Batch.Reason != "closed" {
		t.Fatalf("close did not tombstone: %+v", closed)
	}
	// The sealed chain still verifies; new batches are Gone.
	if vo, err := c.SessionVerify(ctx, si.ID, tomb.Chain, 0); err != nil || !vo.Match {
		t.Fatalf("verify after close: %+v, %v", vo, err)
	}
	_, err = c.SessionBatch(ctx, si.ID, session.BatchSpec{Op: "reweight", Edges: 8, Seed: 1})
	if got := apiStatus(t, err); got != http.StatusGone {
		t.Errorf("batch after close: status %d, want 410", got)
	}
}

// TestSessionChainThreadIndependence drives the identical dmr batch
// sequence through sessions at per-batch thread counts 1, 2 and 4, at
// GOMAXPROCS 2 and 8 — every run must produce the identical chain, and a
// receipt minted at one thread count must verify at another. This is the
// acceptance property: the chain is a pure function of (init, batches).
func TestSessionChainThreadIndependence(t *testing.T) {
	angles := []int{2400, 2600, 2800}
	type run struct {
		label string
		chain string
	}
	var runs []run
	for _, procs := range []int{2, 8} {
		old := runtime.GOMAXPROCS(procs)
		_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 32})
		ctx := context.Background()
		for _, threads := range []int{1, 2, 4} {
			si, err := c.CreateSession(ctx, session.InitSpec{Kind: "dmr", Scale: "small", Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			var head string
			for _, a := range angles {
				br, err := c.SessionBatch(ctx, si.ID, session.BatchSpec{
					Op: "refine", AngleCentideg: a, Threads: threads})
				if err != nil {
					t.Fatal(err)
				}
				head = br.Link.Chain
			}
			runs = append(runs, run{fmt.Sprintf("procs=%d threads=%d", procs, threads), head})
			// Cross-check: replay at a different thread count against this
			// receipt.
			vo, err := c.SessionVerify(ctx, si.ID, head, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !vo.Match {
				t.Errorf("%s: verify at threads=3 diverged: %+v", runs[len(runs)-1].label, vo)
			}
		}
		runtime.GOMAXPROCS(old)
	}
	for _, r := range runs[1:] {
		if r.chain != runs[0].chain {
			t.Errorf("chain differs across schedules: %s=%s, %s=%s",
				runs[0].label, runs[0].chain, r.label, r.chain)
		}
	}
}

// TestSessionPrevSemanticsHTTP: idempotent retry returns the recorded link
// with replayed set; a conflicting Prev is a 409.
func TestSessionPrevSemanticsHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 32})
	ctx := context.Background()
	si, err := c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b1 := session.BatchSpec{Op: "reweight", Edges: 8, Seed: 7, Prev: si.Head}
	l1, err := c.SessionBatch(ctx, si.ID, b1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionBatch(ctx, si.ID, session.BatchSpec{
		Op: "reweight", Edges: 9, Seed: 8, Prev: l1.Link.Chain}); err != nil {
		t.Fatal(err)
	}

	retry, err := c.SessionBatch(ctx, si.ID, b1) // lost-response retry
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Link.Replayed || retry.Link.Chain != l1.Link.Chain {
		t.Errorf("retry: replayed=%v chain-match=%v", retry.Link.Replayed, retry.Link.Chain == l1.Link.Chain)
	}

	_, err = c.SessionBatch(ctx, si.ID, session.BatchSpec{
		Op: "reweight", Edges: 30, Seed: 9, Prev: si.Head})
	if got := apiStatus(t, err); got != http.StatusConflict {
		t.Errorf("conflicting prev: status %d, want 409", got)
	}
}

// TestSessionIdleEvictionHTTP: a short -session-idle evicts between
// requests (the lazy sweep on the next handler call is enough — no janitor
// tick required), seals a tombstone, keeps the chain verifiable, and
// answers further batches with 410.
func TestSessionIdleEvictionHTTP(t *testing.T) {
	// The idle window must comfortably exceed the gap between the create
	// and batch requests, which -race stretches well past anything a bare
	// run sees — hence seconds, not tens of milliseconds.
	const idle = 2 * time.Second
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8, SessionIdle: idle})
	ctx := context.Background()
	si, err := c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionBatch(ctx, si.ID, session.BatchSpec{Op: "reweight", Edges: 8, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(idle + idle/2)

	got, err := c.Session(ctx, si.ID) // GET triggers the sweep and shows the result
	if err != nil {
		t.Fatal(err)
	}
	tomb := got.Links[len(got.Links)-1]
	if !got.Evicted || tomb.Batch.Op != "tombstone" || tomb.Batch.Reason != "idle" {
		t.Fatalf("idle eviction missing: %+v", got)
	}
	if vo, err := c.SessionVerify(ctx, si.ID, tomb.Chain, 0); err != nil || !vo.Match {
		t.Fatalf("evicted chain fails verify: %+v, %v", vo, err)
	}
	_, err = c.SessionBatch(ctx, si.ID, session.BatchSpec{Op: "reweight", Edges: 8, Seed: 2})
	if got := apiStatus(t, err); got != http.StatusGone {
		t.Errorf("batch after idle eviction: status %d, want 410", got)
	}
}

// TestSessionErrorsHTTP pins the remaining status mappings: unknown id,
// g-n creation, session cap, bad batch op, oversized threads.
func TestSessionErrorsHTTP(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxSessions: 1, MaxThreads: 4})
	ctx := context.Background()

	if got := apiStatus(t, errOf(c.Session(ctx, "s999"))); got != http.StatusNotFound {
		t.Errorf("GET unknown: %d, want 404", got)
	}
	_, err := c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Variant: "g-n", Seed: 1})
	if got := apiStatus(t, err); got != http.StatusBadRequest {
		t.Errorf("g-n create: %d, want 400", got)
	}

	si, err := c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Seed: 2})
	if got := apiStatus(t, err); got != http.StatusTooManyRequests {
		t.Errorf("create over cap: %d, want 429", got)
	}

	_, err = c.SessionBatch(ctx, si.ID, session.BatchSpec{Op: "refine", AngleCentideg: 2500})
	if got := apiStatus(t, err); got != http.StatusBadRequest {
		t.Errorf("wrong op for kind: %d, want 400", got)
	}
	_, err = c.SessionBatch(ctx, si.ID, session.BatchSpec{Op: "reweight", Edges: 8, Seed: 1, Threads: 64})
	if got := apiStatus(t, err); got != http.StatusBadRequest {
		t.Errorf("oversized threads: %d, want 400", got)
	}
}

func errOf[T any](_ T, err error) error { return err }

// TestSessionConcurrentBatches: concurrent submissions against one session
// serialize on the session lock; every submission either extends the chain
// or conflicts cleanly (409) — and the final chain still verifies.
func TestSessionConcurrentBatches(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	ctx := context.Background()
	si, err := c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.SessionBatch(ctx, si.ID, session.BatchSpec{
				Op: "reweight", Edges: 4 + i, Seed: uint64(i)})
		}(i)
	}
	wg.Wait()
	ok := 0
	for i, err := range errs {
		if err == nil {
			ok++
		} else if ae, isAPI := err.(*APIError); !isAPI || ae.Status != http.StatusTooManyRequests {
			t.Errorf("batch %d: %v", i, err)
		}
	}
	if ok == 0 {
		t.Fatal("no concurrent batch succeeded")
	}
	got, err := c.Session(ctx, si.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Links) != ok+1 {
		t.Errorf("chain has %d links after %d successful batches", len(got.Links), ok)
	}
	if vo, err := c.SessionVerify(ctx, si.ID, got.Head, 0); err != nil || !vo.Match {
		t.Fatalf("verify after concurrent batches: %+v, %v", vo, err)
	}
}

// TestSessionLinkCacheCrossCheck: with the result cache enabled, a second
// identical session confirms the first's links (serve.session.chain.confirm);
// a poisoned cache entry raises the mismatch alarm and is evicted.
func TestSessionLinkCacheCrossCheck(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueDepth: 32, CacheBytes: 1 << 20})
	ctx := context.Background()
	batch := session.BatchSpec{Op: "reweight", Edges: 8, Seed: 7}

	for i := 0; i < 2; i++ {
		si, err := c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.SessionBatch(ctx, si.ID, batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.exec.met.Counter("serve.session.chain.confirm").Value(); got != 1 {
		t.Errorf("chain.confirm = %d after identical twin session, want 1", got)
	}

	// Poison: same prefix, wrong fingerprints — the next identical run must
	// flag and evict it.
	si, err := c.CreateSession(ctx, session.InitSpec{Kind: "sssp", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	k := s.sessions.Kinds().Lookup("sssp")
	canon, err := k.Canon(&session.BatchSpec{Op: batch.Op, Edges: batch.Edges, Seed: batch.Seed})
	if err != nil {
		t.Fatal(err)
	}
	prevRaw, err := hex.DecodeString(si.Head)
	if err != nil {
		t.Fatal(err)
	}
	s.checkLinkCache(0, prevRaw, canon, 0xbad, 0xbad)
	before := s.exec.met.Counter("serve.session.chain.mismatch").Value()
	if _, err := c.SessionBatch(ctx, si.ID, batch); err != nil {
		t.Fatal(err)
	}
	if got := s.exec.met.Counter("serve.session.chain.mismatch").Value(); got != before+1 {
		t.Errorf("chain.mismatch = %d, want %d (poisoned entry must alarm)", got, before+1)
	}
}
