package serve

// Result-cache glue: everything the server layers on top of
// internal/rescache. The soundness argument lives with the cache package;
// what belongs here is policy — which specs are cacheable, what a cached
// value carries, how hits are spot-checked against fresh executions, and
// how the deterministic spot-check selector draws.

import (
	"encoding/json"
	"sync"

	"galois/internal/rescache"
	"galois/internal/rng"
)

// cachedResult is the cache-resident value for one spec key: the receipt
// plus the run measurements of the execution that produced it. The stored
// Receipt always has Cached=false — the flag describes how a particular
// response was served, not the result itself, and must never be part of
// the stored (or fingerprinted) identity.
type cachedResult struct {
	Receipt Receipt `json:"receipt"`
	WallNS  int64   `json:"wall_ns"`
	Commits uint64  `json:"commits"`
	Aborts  uint64  `json:"aborts"`
	Rounds  uint64  `json:"rounds"`
}

// cacheEntryOverhead approximates the per-entry bookkeeping bytes (map
// slot, list links, headers) charged on top of the encoded payload.
const cacheEntryOverhead = 256

// size is the byte charge of this entry against the cache budget: its
// encoded size plus fixed overhead.
func (cr *cachedResult) size() int64 {
	data, err := json.Marshal(cr)
	if err != nil {
		return cacheEntryOverhead
	}
	return int64(len(data)) + cacheEntryOverhead
}

// result materializes a fresh JobResult for one cache hit. Receipt.Cached
// is set on the copy only; WallNS et al. report the producing execution
// (that is what the fingerprint attests to), QueueNS is zero because a
// lookup never queues, and EngineHit is false because no engine ran.
func (cr *cachedResult) result() *JobResult {
	res := &JobResult{
		Receipt: cr.Receipt,
		WallNS:  cr.WallNS,
		Commits: cr.Commits,
		Aborts:  cr.Aborts,
		Rounds:  cr.Rounds,
	}
	res.Receipt.Cached = true
	return res
}

// cacheKey computes the content address of a normalized spec and reports
// whether its result may be cached at all: deterministic variants only
// (g-n output is not a function of the spec), shared read-only inputs only
// (Exclusive kinds — pfp's mutable network, dmr's consumed mesh — reset
// state between runs, and a one-shot cache entry would skip exactly that
// reset; mutation-as-a-workload belongs to sessions, where batch results
// are keyed by chain prefix and cross-checked, never served — see
// checkLinkCache), untraced requests only (a trace
// is a capture of one execution, not part of the result), and only when a
// cache is configured.
func (s *Server) cacheKey(spec Spec, kind *Kind) (rescache.Key, bool) {
	if s.cache == nil || !spec.Deterministic() || kind.Exclusive || spec.Trace {
		return rescache.Key{}, false
	}
	key, err := rescache.KeyOf(spec.Kind, spec.Variant, spec.Scale, spec.Seed, spec.Threads)
	if err != nil {
		return rescache.Key{}, false
	}
	return key, true
}

// spotChecker deterministically selects the configured fraction of cache
// hits for honesty re-execution. The stream is seeded and private — no
// global RNG — so a server replayed against the same request sequence
// spot-checks the same hits.
type spotChecker struct {
	mu     sync.Mutex
	rnd    *rng.Rand
	always bool
	// threshold selects a hit when the next 64-bit draw falls below it;
	// fraction f maps to f·2⁶⁴.
	threshold uint64
}

func newSpotChecker(fraction float64, seed uint64) *spotChecker {
	sp := &spotChecker{rnd: rng.New(seed)}
	if fraction >= 1 {
		sp.always = true
	} else {
		sp.threshold = uint64(fraction * (1 << 63) * 2)
	}
	return sp
}

// pick draws the next selection decision.
func (sp *spotChecker) pick() bool {
	sp.mu.Lock()
	u := sp.rnd.Uint64()
	sp.mu.Unlock()
	return sp.always || u < sp.threshold
}
