package core

import (
	"testing"

	"galois/internal/stats"
)

// TestExecTaskPinsWorkerTid pins the second half of the det-scheduler shard
// fix: the prevented and committed-without-commitFn branches of execTask
// never reset the ctx, and exec chunks are claimed dynamically, so a worker
// can reach its first exec task of a run on a ctx whose tid is still the
// zero value. The mark-clearing epilogue flushes atomic-op counts through
// tid-sharded collector slots, so a stale tid aims the flush at another
// worker's shard — a data race. execTask must pin the tid on entry.
func TestExecTaskPinsWorkerTid(t *testing.T) {
	col := stats.NewCollector(4)
	ctx := &Ctx[int]{}
	ctx.prepare(4, true, col, Defaults(), nil)

	var tsk detTask[int]
	tsk.rec.Reset(1)
	tsk.rec.Prevented.Store(true) // take the no-reset prevented branch
	execTask(ctx, &tsk, func(*Ctx[int], int) {}, 3, true)
	if ctx.tid != 3 {
		t.Fatalf("execTask left ctx.tid = %d, want executing worker 3", ctx.tid)
	}

	// Same for the committed-without-commitFn branch.
	ctx2 := &Ctx[int]{}
	ctx2.prepare(4, true, col, Defaults(), nil)
	var tsk2 detTask[int]
	tsk2.rec.Reset(2)
	execTask(ctx2, &tsk2, func(*Ctx[int], int) {}, 2, true)
	if ctx2.tid != 2 {
		t.Fatalf("execTask left ctx.tid = %d, want executing worker 2", ctx2.tid)
	}
}
