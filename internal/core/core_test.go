package core

import (
	"fmt"
	"hash/fnv"

	"galois/internal/cachesim"
	"sync/atomic"
	"testing"

	"galois/internal/marks"
	"galois/internal/rng"
)

// cell is a shared abstract location with a value.
type cell struct {
	marks.Lockable
	value uint64
	hits  uint64
}

func optsFor(s Sched, threads int, more ...func(*Options)) Options {
	o := Defaults()
	o.Sched = s
	o.Threads = threads
	for _, f := range more {
		f(&o)
	}
	return o
}

// fingerprintCells hashes cell values in index order, capturing both the
// final values and (through non-commutative updates) the commit order.
func fingerprintCells(cells []*cell) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range cells {
		v := c.value
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func TestDisjointTasksBothSchedulers(t *testing.T) {
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		t.Run(sched.String(), func(t *testing.T) {
			cells := make([]*cell, 1000)
			items := make([]int, len(cells))
			for i := range cells {
				cells[i] = &cell{}
				items[i] = i
			}
			st := ForEach(items, func(ctx *Ctx[int], i int) {
				c := cells[i]
				ctx.Acquire(&c.Lockable)
				ctx.OnCommit(func(*Ctx[int]) { c.value++ })
			}, optsFor(sched, 4))
			for i, c := range cells {
				if c.value != 1 {
					t.Fatalf("cell %d = %d, want 1", i, c.value)
				}
			}
			if st.Commits != uint64(len(cells)) {
				t.Fatalf("commits = %d, want %d", st.Commits, len(cells))
			}
		})
	}
}

func TestConflictingTasksBothSchedulers(t *testing.T) {
	// Each task increments two cells from a small pool; heavy conflicts.
	// Every increment must happen exactly once under both schedulers.
	const ntasks = 2000
	const ncells = 16
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		for _, threads := range []int{1, 4, 8} {
			name := fmt.Sprintf("%v/t%d", sched, threads)
			t.Run(name, func(t *testing.T) {
				cells := make([]*cell, ncells)
				for i := range cells {
					cells[i] = &cell{}
				}
				r := rng.New(7)
				type task struct{ a, b int }
				items := make([]task, ntasks)
				for i := range items {
					items[i] = task{a: r.Intn(ncells), b: r.Intn(ncells)}
				}
				st := ForEach(items, func(ctx *Ctx[task], tk task) {
					ca, cb := cells[tk.a], cells[tk.b]
					ctx.Acquire(&ca.Lockable)
					ctx.Acquire(&cb.Lockable)
					ctx.OnCommit(func(*Ctx[task]) {
						ca.value++
						cb.value++
					})
				}, optsFor(sched, threads))
				var total uint64
				for _, c := range cells {
					total += c.value
				}
				if total != 2*ntasks {
					t.Fatalf("total increments = %d, want %d", total, 2*ntasks)
				}
				if st.Commits != ntasks {
					t.Fatalf("commits = %d, want %d", st.Commits, ntasks)
				}
			})
		}
	}
}

// runOrderSensitive runs a workload whose final state encodes the per-cell
// commit order (non-commutative update), returning the fingerprint.
func runOrderSensitive(t *testing.T, opt Options) uint64 {
	t.Helper()
	const ntasks = 3000
	const ncells = 64
	cells := make([]*cell, ncells)
	for i := range cells {
		cells[i] = &cell{}
	}
	r := rng.New(99)
	type task struct {
		id   uint64
		a, b int
	}
	items := make([]task, ntasks)
	for i := range items {
		items[i] = task{id: uint64(i + 1), a: r.Intn(ncells), b: r.Intn(ncells)}
	}
	st := ForEach(items, func(ctx *Ctx[task], tk task) {
		ca, cb := cells[tk.a], cells[tk.b]
		ctx.Acquire(&ca.Lockable)
		ctx.Acquire(&cb.Lockable)
		ctx.OnCommit(func(*Ctx[task]) {
			ca.value = ca.value*31 + tk.id
			cb.value = cb.value*37 + tk.id
		})
	}, opt)
	if st.Commits != ntasks {
		t.Fatalf("commits = %d, want %d", st.Commits, ntasks)
	}
	return fingerprintCells(cells)
}

// TestDeterministicPortability is the paper's central claim: under DIG
// scheduling the output is identical across thread counts and runs.
func TestDeterministicPortability(t *testing.T) {
	ref := runOrderSensitive(t, optsFor(Deterministic, 1))
	for _, threads := range []int{1, 2, 3, 4, 7, 8} {
		for rep := 0; rep < 2; rep++ {
			got := runOrderSensitive(t, optsFor(Deterministic, threads))
			if got != ref {
				t.Fatalf("threads=%d rep=%d: fingerprint %x != ref %x", threads, rep, got, ref)
			}
		}
	}
}

// TestContinuationTransparency: the §3.3 continuation optimization must not
// change the schedule, only its cost.
func TestContinuationTransparency(t *testing.T) {
	with := runOrderSensitive(t, optsFor(Deterministic, 4))
	without := runOrderSensitive(t, optsFor(Deterministic, 4, func(o *Options) { o.Continuation = false }))
	if with != without {
		t.Fatalf("continuation optimization changed the output: %x vs %x", with, without)
	}
}

// TestWindowPolicyTransparency: window constants change performance, and in
// general may change which serialization is chosen — but for a fixed policy
// the result must be thread-independent. Here we additionally check that the
// baseline scheduler agrees with itself under different windows only in
// commit COUNTS (all tasks commit), not fingerprints.
func TestWindowPolicyThreadIndependence(t *testing.T) {
	for _, winInit := range []int{8, 128, 4096} {
		ref := runOrderSensitive(t, optsFor(Deterministic, 1, func(o *Options) { o.WindowInit = winInit }))
		for _, threads := range []int{2, 8} {
			got := runOrderSensitive(t, optsFor(Deterministic, threads, func(o *Options) { o.WindowInit = winInit }))
			if got != ref {
				t.Fatalf("winInit=%d threads=%d: fingerprint differs", winInit, threads)
			}
		}
	}
}

func TestNonDeterministicCompletes(t *testing.T) {
	// The non-deterministic scheduler gives no output guarantee, but all
	// tasks must commit exactly once even under heavy conflicts.
	for _, threads := range []int{1, 4, 8} {
		_ = runOrderSensitive(t, optsFor(NonDeterministic, threads))
	}
}

func TestDynamicTaskCreation(t *testing.T) {
	// Each initial task spawns a chain of children; total commits must be
	// initial * depth, under both schedulers and with/without continuation.
	const initial = 200
	const depth = 5
	type task struct {
		cell  int
		depth int
	}
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		for _, cont := range []bool{true, false} {
			name := fmt.Sprintf("%v/cont=%v", sched, cont)
			t.Run(name, func(t *testing.T) {
				cells := make([]*cell, initial)
				items := make([]task, initial)
				for i := range cells {
					cells[i] = &cell{}
					items[i] = task{cell: i, depth: depth}
				}
				st := ForEach(items, func(ctx *Ctx[task], tk task) {
					c := cells[tk.cell]
					ctx.Acquire(&c.Lockable)
					ctx.OnCommit(func(cc *Ctx[task]) {
						c.value++
						if tk.depth > 1 {
							cc.Push(task{cell: tk.cell, depth: tk.depth - 1})
						}
					})
				}, optsFor(sched, 4, func(o *Options) { o.Continuation = cont }))
				want := uint64(initial * depth)
				if st.Commits != want {
					t.Fatalf("commits = %d, want %d", st.Commits, want)
				}
				for i, c := range cells {
					if c.value != depth {
						t.Fatalf("cell %d = %d, want %d", i, c.value, depth)
					}
				}
			})
		}
	}
}

// TestChildOrderDeterminism: children are scheduled in (parent id, k) order,
// so a non-commutative fold over child commits must be reproducible.
func TestChildOrderDeterminism(t *testing.T) {
	run := func(threads int) uint64 {
		var acc cell
		type task struct {
			id    uint64
			depth int
		}
		items := make([]task, 50)
		for i := range items {
			items[i] = task{id: uint64(i + 1), depth: 3}
		}
		ForEach(items, func(ctx *Ctx[task], tk task) {
			ctx.Acquire(&acc.Lockable)
			ctx.OnCommit(func(cc *Ctx[task]) {
				acc.value = acc.value*1099511628211 + tk.id
				if tk.depth > 1 {
					cc.Push(task{id: tk.id*2 + 1, depth: tk.depth - 1})
					cc.Push(task{id: tk.id*2 + 2, depth: tk.depth - 1})
				}
			})
		}, optsFor(Deterministic, threads))
		return acc.value
	}
	ref := run(1)
	for _, threads := range []int{2, 4, 8} {
		if got := run(threads); got != ref {
			t.Fatalf("threads=%d: child order fingerprint %x != %x", threads, got, ref)
		}
	}
}

// TestFullySerializedProgress: all tasks share one location; the DIG
// scheduler must still make progress (at least one commit per round) and
// terminate; the non-deterministic scheduler must not livelock.
func TestFullySerializedProgress(t *testing.T) {
	const ntasks = 300
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		t.Run(sched.String(), func(t *testing.T) {
			var c cell
			items := make([]int, ntasks)
			for i := range items {
				items[i] = i + 1
			}
			st := ForEach(items, func(ctx *Ctx[int], i int) {
				ctx.Acquire(&c.Lockable)
				ctx.OnCommit(func(*Ctx[int]) { c.value += uint64(i) })
			}, optsFor(sched, 8, func(o *Options) { o.Trace = true }))
			if st.Commits != ntasks {
				t.Fatalf("commits = %d, want %d", st.Commits, ntasks)
			}
			want := uint64(ntasks * (ntasks + 1) / 2)
			if c.value != want {
				t.Fatalf("sum = %d, want %d", c.value, want)
			}
			if sched == Deterministic {
				for i, s := range st.Trace {
					if s.Committed < 1 {
						t.Fatalf("round %d committed %d tasks", i, s.Committed)
					}
				}
			}
		})
	}
}

// TestDeterministicAbortsAtOneThread reproduces the paper's observation
// (§5.1) that deterministic variants abort even at one thread, because
// conflicting tasks can be inspected in the same round.
func TestDeterministicAbortsAtOneThread(t *testing.T) {
	var c cell
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	st := ForEach(items, func(ctx *Ctx[int], i int) {
		ctx.Acquire(&c.Lockable)
		ctx.OnCommit(func(*Ctx[int]) { c.value++ })
	}, optsFor(Deterministic, 1))
	if st.Aborts == 0 {
		t.Fatal("expected aborts under single-threaded DIG scheduling of conflicting tasks")
	}
	if st.Commits != 500 {
		t.Fatalf("commits = %d, want 500", st.Commits)
	}
}

func TestPreassignedIDs(t *testing.T) {
	// Children pushed with explicit ids execute in id order; verify with
	// a non-commutative fold.
	run := func(threads int) uint64 {
		var acc cell
		seed := []int{-1}
		ForEach(seed, func(ctx *Ctx[int], i int) {
			ctx.Acquire(&acc.Lockable)
			if i < 0 {
				ctx.OnCommit(func(cc *Ctx[int]) {
					// Push in scrambled order with ids that
					// demand execution in 0..31 item order.
					for _, id := range rng.New(5).Perm(32) {
						cc.PushWithID(id, uint64(id)+1)
					}
				})
				return
			}
			ctx.OnCommit(func(*Ctx[int]) { acc.value = acc.value*31 + uint64(i) })
		}, optsFor(Deterministic, threads, func(o *Options) {
			o.PreassignedIDs = true
			o.LocalityInterleave = false
			// Small window to force multiple rounds over children.
			o.WindowInit = 4
		}))
		return acc.value
	}
	// Children conflict on acc, so the fold observes the commit order.
	// The order follows pre-assigned ids modulo window dynamics (within a
	// round the max id commits first); what must hold is that it is
	// identical for every thread count, and independent of the scrambled
	// push order because the ids — not creation order — define it.
	ref := run(1)
	if ref == 0 {
		t.Fatal("children did not run")
	}
	for _, th := range []int{2, 8} {
		if got := run(th); got != ref {
			t.Fatalf("preassigned ids: threads=%d got %x want %x", th, got, ref)
		}
	}
}

func TestUserPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("user panic did not propagate")
		}
	}()
	ForEach([]int{1}, func(ctx *Ctx[int], i int) {
		panic("user bug")
	}, optsFor(NonDeterministic, 1))
}

func TestAcquireAfterOnCommitPanics(t *testing.T) {
	var c cell
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for non-cautious task")
		}
	}()
	ForEach([]int{1}, func(ctx *Ctx[int], i int) {
		ctx.OnCommit(func(*Ctx[int]) {})
		ctx.Acquire(&c.Lockable)
	}, optsFor(NonDeterministic, 1))
}

func TestOnCommitTwicePanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for double OnCommit")
		}
	}()
	ForEach([]int{1}, func(ctx *Ctx[int], i int) {
		ctx.OnCommit(func(*Ctx[int]) {})
		ctx.OnCommit(func(*Ctx[int]) {})
	}, optsFor(NonDeterministic, 1))
}

func TestEmptyInput(t *testing.T) {
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		st := ForEach(nil, func(ctx *Ctx[int], i int) {}, optsFor(sched, 4))
		if st.Commits != 0 {
			t.Fatalf("commits = %d for empty input", st.Commits)
		}
	}
}

func TestReadOnlyTasks(t *testing.T) {
	// Tasks that never call OnCommit (pure reads) must commit normally.
	var c cell
	var reads atomic.Uint64
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		reads.Store(0)
		items := make([]int, 100)
		st := ForEach(items, func(ctx *Ctx[int], i int) {
			ctx.Acquire(&c.Lockable)
			reads.Add(1) // test-side effect, not shared program state
		}, optsFor(sched, 4))
		if st.Commits != 100 {
			t.Fatalf("%v: commits = %d, want 100", sched, st.Commits)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	cells := make([]*cell, 100)
	items := make([]int, 100)
	for i := range cells {
		cells[i] = &cell{}
		items[i] = i
	}
	st := ForEach(items, func(ctx *Ctx[int], i int) {
		ctx.Acquire(&cells[i].Lockable)
		ctx.OnCommit(func(*Ctx[int]) { cells[i].value++ })
	}, optsFor(Deterministic, 2, func(o *Options) { o.Trace = true }))
	if st.Inspects < st.Commits {
		t.Fatalf("inspects (%d) < commits (%d)", st.Inspects, st.Commits)
	}
	if st.AtomicOps == 0 {
		t.Fatal("atomic ops not counted")
	}
	if st.Rounds == 0 {
		t.Fatal("rounds not counted")
	}
	var committed int
	for _, s := range st.Trace {
		committed += s.Committed
	}
	if committed != 100 {
		t.Fatalf("trace commits = %d, want 100", committed)
	}
}

func TestDuplicateAcquireIsIdempotent(t *testing.T) {
	// A task may acquire the same location repeatedly (e.g. a cavity
	// walk revisiting an element); both schedulers must treat that as a
	// single neighborhood membership.
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		var c cell
		items := make([]int, 200)
		st := ForEach(items, func(ctx *Ctx[int], i int) {
			for k := 0; k < 3; k++ {
				ctx.Acquire(&c.Lockable)
			}
			ctx.OnCommit(func(*Ctx[int]) { c.value++ })
		}, optsFor(sched, 4))
		if st.Commits != 200 || c.value != 200 {
			t.Fatalf("%v: commits=%d value=%d", sched, st.Commits, c.value)
		}
	}
}

func TestMarksClearedAfterDeterministicRun(t *testing.T) {
	cells := make([]*cell, 64)
	for i := range cells {
		cells[i] = &cell{}
	}
	items := make([]int, 500)
	r := rng.New(3)
	for i := range items {
		items[i] = r.Intn(64)
	}
	ForEach(items, func(ctx *Ctx[int], i int) {
		ctx.Acquire(&cells[i].Lockable)
		ctx.OnCommit(func(*Ctx[int]) { cells[i].value++ })
	}, optsFor(Deterministic, 4))
	for i, c := range cells {
		if c.Holder() != nil {
			t.Fatalf("cell %d still marked after run", i)
		}
	}
}

func TestPushFromInspectPhase(t *testing.T) {
	// Pushes before OnCommit (phase 1) are legal and must only take
	// effect if the task commits; totals must match across schedulers.
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		for _, cont := range []bool{true, false} {
			var c cell
			type job struct{ depth int }
			items := []job{{2}, {2}, {2}}
			st := ForEach(items, func(ctx *Ctx[job], j job) {
				ctx.Acquire(&c.Lockable)
				if j.depth > 1 {
					ctx.Push(job{depth: j.depth - 1}) // phase-1 push
				}
				ctx.OnCommit(func(*Ctx[job]) { c.value++ })
			}, optsFor(sched, 4, func(o *Options) { o.Continuation = cont }))
			if st.Commits != 6 || c.value != 6 {
				t.Fatalf("%v/cont=%v: commits=%d value=%d", sched, cont, st.Commits, c.value)
			}
		}
	}
}

func TestMixedPhasePushOrdering(t *testing.T) {
	// Pushes from phase 1 and from the commit closure share the parent's
	// (id, k) sequence; the combined child order must be deterministic.
	run := func(threads int) uint64 {
		var acc cell
		type job struct {
			id    uint64
			depth int
		}
		items := []job{{id: 1, depth: 2}, {id: 2, depth: 2}}
		ForEach(items, func(ctx *Ctx[job], j job) {
			ctx.Acquire(&acc.Lockable)
			if j.depth > 1 {
				ctx.Push(job{id: j.id * 10, depth: 1}) // k=1 (phase 1)
			}
			ctx.OnCommit(func(c *Ctx[job]) {
				acc.value = acc.value*31 + j.id
				if j.depth > 1 {
					c.Push(job{id: j.id*10 + 1, depth: 1}) // k=2 (commit)
				}
			})
		}, optsFor(Deterministic, threads))
		return acc.value
	}
	ref := run(1)
	for _, th := range []int{2, 8} {
		if got := run(th); got != ref {
			t.Fatalf("threads=%d: %x != %x", th, got, ref)
		}
	}
}

func TestDeterministicLocalityTrace(t *testing.T) {
	// The profiled access multiset — and therefore the modeled memory
	// report — must be identical across runs and thread counts under DIG.
	run := func(threads int) (uint64, uint64) {
		cells := make([]*cell, 64)
		for i := range cells {
			cells[i] = &cell{}
		}
		items := make([]int, 800)
		r := rng.New(13)
		for i := range items {
			items[i] = r.Intn(64)
		}
		tr := cachesim.NewTracer(threads)
		o := optsFor(Deterministic, threads)
		o.Profile = tr
		ForEach(items, func(ctx *Ctx[int], i int) {
			ctx.Acquire(&cells[i].Lockable)
			ctx.Acquire(&cells[(i+7)%64].Lockable)
			ctx.OnCommit(func(*Ctx[int]) { cells[i].value++ })
		}, o)
		rep := tr.Analyze(16)
		return rep.Accesses, rep.DRAMRequests()
	}
	accA, dramA := run(1)
	for _, threads := range []int{2, 8} {
		acc, dram := run(threads)
		if acc != accA || dram != dramA {
			t.Fatalf("threads=%d: locality trace differs (%d/%d vs %d/%d)",
				threads, acc, dram, accA, dramA)
		}
	}
}
