package core

import "galois/internal/obs"

// emit forwards ev to the run's trace sink, if any. Structural scheduler
// events (run, generation, round, window) are emitted only from serial
// sections — before workers fork, after they join, or inside worker 0's
// coordinator block between barriers — so the event sequence is a pure
// function of the schedule and never perturbs it.
func emit(sink obs.Sink, tid int, ev obs.Event) {
	if sink != nil {
		sink.Emit(tid, ev)
	}
}

// coreMetrics bundles the registry instruments the schedulers record into.
// All instruments are per-thread and lock-free to record, so attaching a
// registry does not add synchronization to the run.
type coreMetrics struct {
	// tasksPerRound counts committed tasks per deterministic round.
	tasksPerRound *obs.Histogram
	// abortsPerRound counts failed tasks per deterministic round.
	abortsPerRound *obs.Histogram
	// failDepth is the neighborhood size already acquired when an Acquire
	// failed — how deep into its neighborhood a task got before losing.
	failDepth *obs.Histogram
	// phaseInspect/phaseExec/phaseCoord are the per-round wall durations
	// of the three DIG round phases, in nanoseconds. They quantify the
	// serial coordination fraction the parallel coordinator removes;
	// purely observational (never read back by the scheduler).
	phaseInspect *obs.Histogram
	phaseExec    *obs.Histogram
	phaseCoord   *obs.Histogram
	// barriers counts barrier crossings of the round loop — measured at
	// the crossings themselves (each barrier callback increments once), so
	// barriers/round is a recorded quantity, not an estimate.
	barriers *obs.Counter
}

// newCoreMetrics registers the scheduler instruments in reg, or returns nil
// when no registry is attached.
func newCoreMetrics(reg *obs.Registry) *coreMetrics {
	if reg == nil {
		return nil
	}
	return &coreMetrics{
		tasksPerRound:  reg.Histogram("round.committed", obs.Pow2Bounds(1<<20)),
		abortsPerRound: reg.Histogram("round.failed", obs.Pow2Bounds(1<<20)),
		failDepth:      reg.Histogram("acquire.fail_depth", obs.Pow2Bounds(1<<12)),
		phaseInspect:   reg.Histogram("round.inspect_ns", obs.Pow2Bounds(1<<30)),
		phaseExec:      reg.Histogram("round.execute_ns", obs.Pow2Bounds(1<<30)),
		phaseCoord:     reg.Histogram("round.coordinate_ns", obs.Pow2Bounds(1<<30)),
		barriers:       reg.Counter("round.barriers"),
	}
}
