package core

import (
	"testing"
	"testing/quick"

	"galois/internal/marks"
	"galois/internal/rng"
)

// specWorkload is a randomly generated fixed task set: task i touches
// locs[i] (its whole neighborhood, read+write) and folds its id into every
// location it owns when it commits.
type specWorkload struct {
	nlocs int
	locs  [][]int
}

func genWorkload(seed uint64) specWorkload {
	r := rng.New(seed)
	w := specWorkload{nlocs: 4 + r.Intn(40)}
	ntasks := 1 + r.Intn(400)
	w.locs = make([][]int, ntasks)
	for i := range w.locs {
		n := 1 + r.Intn(4)
		seen := map[int]bool{}
		for len(w.locs[i]) < n {
			l := r.Intn(w.nlocs)
			if !seen[l] {
				seen[l] = true
				w.locs[i] = append(w.locs[i], l)
			}
		}
	}
	return w
}

// interpret executes the DIG specification of Figure 2 directly and
// sequentially: deterministic ids by position, windowed rounds, owner =
// maximum id per location, commit iff the task owns its entire
// neighborhood, failed tasks precede the untried remainder. It returns the
// per-location fold values and the number of rounds.
// Tasks may be pre-permuted (the locality interleave); `order` gives each
// scheduling slot its original task index, whose value is folded, while the
// scheduling id is the slot position — exactly the scheduler's labeling.
func interpret(w specWorkload, order []int, opt Options) ([]uint64, int) {
	values := make([]uint64, w.nlocs)
	type task struct {
		id   uint64 // scheduling priority (slot position)
		tag  uint64 // folded value (original index + 1)
		locs []int
	}
	next := make([]*task, len(order))
	for slot, orig := range order {
		next[slot] = &task{id: uint64(slot) + 1, tag: uint64(orig) + 1, locs: w.locs[orig]}
	}
	win := newWindowPolicy(len(next), opt)
	rounds := 0
	for len(next) > 0 {
		rounds++
		p := win.next(len(next))
		cur, rest := next[:p], next[p:]
		// Interference resolution: max id per location.
		owner := make([]uint64, w.nlocs)
		for _, t := range cur {
			for _, l := range t.locs {
				if t.id > owner[l] {
					owner[l] = t.id
				}
			}
		}
		var failed []*task
		committed := 0
		for _, t := range cur {
			ownsAll := true
			for _, l := range t.locs {
				if owner[l] != t.id {
					ownsAll = false
					break
				}
			}
			if !ownsAll {
				failed = append(failed, t)
				continue
			}
			committed++
			for _, l := range t.locs {
				values[l] = values[l]*31 + t.tag
			}
		}
		win.update(p, committed)
		next = append(failed, rest...)
	}
	return values, rounds
}

// runScheduler executes the same workload on the real DIG scheduler.
func runScheduler(w specWorkload, opt Options) ([]uint64, int) {
	type cell struct {
		marks.Lockable
		value uint64
	}
	cells := make([]*cell, w.nlocs)
	for i := range cells {
		cells[i] = &cell{}
	}
	items := make([]int, len(w.locs))
	for i := range items {
		items[i] = i
	}
	st := ForEach(items, func(ctx *Ctx[int], i int) {
		id := uint64(i) + 1
		for _, l := range w.locs[i] {
			ctx.Acquire(&cells[l].Lockable)
		}
		ctx.OnCommit(func(*Ctx[int]) {
			for _, l := range w.locs[i] {
				cells[l].value = cells[l].value*31 + id
			}
		})
	}, opt)
	values := make([]uint64, w.nlocs)
	for i, c := range cells {
		values[i] = c.value
	}
	return values, int(st.Rounds)
}

// TestSchedulerMatchesSpecification checks, over random workloads, that the
// parallel DIG implementation executes exactly the schedule the paper's
// pseudocode defines — same commits per round, same per-location commit
// orders, same round count — for both the continuation and baseline
// schedulers at several thread counts.
func TestSchedulerMatchesSpecification(t *testing.T) {
	property := func(seed uint64) bool {
		w := genWorkload(seed)
		opt := Defaults()
		opt.Sched = Deterministic
		opt.LocalityInterleave = false // spec interprets raw input order
		order := make([]int, len(w.locs))
		for i := range order {
			order[i] = i
		}
		specVals, specRounds := interpret(w, order, opt)
		for _, threads := range []int{1, 3, 8} {
			for _, cont := range []bool{true, false} {
				o := opt
				o.Threads = threads
				o.Continuation = cont
				got, rounds := runScheduler(w, o)
				if rounds != specRounds {
					t.Logf("seed %d threads %d cont %v: rounds %d != spec %d",
						seed, threads, cont, rounds, specRounds)
					return false
				}
				for l := range got {
					if got[l] != specVals[l] {
						t.Logf("seed %d threads %d cont %v: loc %d: %x != spec %x",
							seed, threads, cont, l, got[l], specVals[l])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSpecInterleaveStillDeterministic repeats the comparison with the
// locality interleave enabled on both sides, using the same permutation the
// scheduler applies.
func TestSchedulerMatchesSpecificationWithInterleave(t *testing.T) {
	property := func(seed uint64) bool {
		w := genWorkload(seed)
		opt := Defaults()
		opt.Sched = Deterministic
		opt.Threads = 4
		// Apply the scheduler's interleave permutation to the spec's
		// scheduling order; folded tags stay the original indices.
		win := newWindowPolicy(len(w.locs), opt)
		order := make([]int, len(w.locs))
		for i := range order {
			order[i] = i
		}
		order = interleavePermute(order, win.size)
		specVals, specRounds := interpret(w, order, opt)
		got, rounds := runScheduler(w, opt)
		if rounds != specRounds {
			return false
		}
		for l := range got {
			if got[l] != specVals[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerMatchesSpecificationWithChildren extends the conformance
// check to dynamic task creation: committed tasks spawn children (a
// deterministic function of the task), children are ordered by
// (parent id, creation index) and form the next generation. The spec
// interpreter and the scheduler must agree on every per-location fold.
func TestSchedulerMatchesSpecificationWithChildren(t *testing.T) {
	type specTask struct {
		tag   uint64 // folded identity
		locs  []int
		depth int
	}
	// childrenOf derives children deterministically from a task.
	childrenOf := func(w specWorkload, t specTask) []specTask {
		if t.depth == 0 {
			return nil
		}
		n := int(t.tag % 3)
		var out []specTask
		for k := 0; k < n; k++ {
			tag := t.tag*1000003 + uint64(k) + 1
			nl := 1 + int(tag%3)
			var locs []int
			for j := 0; j < nl; j++ {
				l := int((tag >> (8 * j)) % uint64(w.nlocs))
				dup := false
				for _, e := range locs {
					if e == l {
						dup = true
					}
				}
				if !dup {
					locs = append(locs, l)
				}
			}
			out = append(out, specTask{tag: tag, locs: locs, depth: t.depth - 1})
		}
		return out
	}

	interpretGen := func(w specWorkload, roots []specTask, opt Options) []uint64 {
		values := make([]uint64, w.nlocs)
		type st struct {
			id uint64
			t  specTask
		}
		gen := roots
		for len(gen) > 0 {
			next := make([]*st, len(gen))
			for i := range gen {
				next[i] = &st{id: uint64(i) + 1, t: gen[i]}
			}
			win := newWindowPolicy(len(next), opt)
			type key struct {
				parent, k uint64
			}
			var produced []specTask
			var producedKeys []key
			for len(next) > 0 {
				p := win.next(len(next))
				cur, rest := next[:p], next[p:]
				owner := make([]uint64, w.nlocs)
				for _, s := range cur {
					for _, l := range s.t.locs {
						if s.id > owner[l] {
							owner[l] = s.id
						}
					}
				}
				var failed []*st
				committed := 0
				for _, s := range cur {
					owns := true
					for _, l := range s.t.locs {
						if owner[l] != s.id {
							owns = false
							break
						}
					}
					if !owns {
						failed = append(failed, s)
						continue
					}
					committed++
					for _, l := range s.t.locs {
						values[l] = values[l]*31 + s.t.tag
					}
					for k, c := range childrenOf(w, s.t) {
						produced = append(produced, c)
						producedKeys = append(producedKeys, key{parent: s.id, k: uint64(k) + 1})
					}
				}
				win.update(p, committed)
				next = append(failed, rest...)
			}
			// Sort children by (parent, k) — stable indices preserve
			// the lexicographic order since keys are unique.
			idx := make([]int, len(produced))
			for i := range idx {
				idx[i] = i
			}
			for i := 1; i < len(idx); i++ {
				v := idx[i]
				j := i - 1
				for j >= 0 && (producedKeys[idx[j]].parent > producedKeys[v].parent ||
					(producedKeys[idx[j]].parent == producedKeys[v].parent &&
						producedKeys[idx[j]].k > producedKeys[v].k)) {
					idx[j+1] = idx[j]
					j--
				}
				idx[j+1] = v
			}
			// Fresh slice: gen aliases the caller's roots on the
			// first generation and must not be overwritten.
			gen = make([]specTask, 0, len(produced))
			for _, i := range idx {
				gen = append(gen, produced[i])
			}
		}
		return values
	}

	runSched := func(w specWorkload, roots []specTask, opt Options) []uint64 {
		type cell struct {
			marks.Lockable
			value uint64
		}
		cells := make([]*cell, w.nlocs)
		for i := range cells {
			cells[i] = &cell{}
		}
		ForEach(roots, func(ctx *Ctx[specTask], tk specTask) {
			for _, l := range tk.locs {
				ctx.Acquire(&cells[l].Lockable)
			}
			ctx.OnCommit(func(c *Ctx[specTask]) {
				for _, l := range tk.locs {
					cells[l].value = cells[l].value*31 + tk.tag
				}
				for _, ch := range childrenOf(w, tk) {
					c.Push(ch)
				}
			})
		}, opt)
		values := make([]uint64, w.nlocs)
		for i, c := range cells {
			values[i] = c.value
		}
		return values
	}

	property := func(seed uint64) bool {
		w := genWorkload(seed)
		roots := make([]specTask, len(w.locs))
		for i := range roots {
			roots[i] = specTask{tag: uint64(i) + 1, locs: w.locs[i], depth: 2}
		}
		opt := Defaults()
		opt.Sched = Deterministic
		opt.LocalityInterleave = false
		want := interpretGen(w, roots, opt)
		for _, threads := range []int{1, 4} {
			for _, cont := range []bool{true, false} {
				o := opt
				o.Threads = threads
				o.Continuation = cont
				got := runSched(w, roots, o)
				for l := range got {
					if got[l] != want[l] {
						t.Logf("seed %d threads %d cont %v loc %d: %x != %x",
							seed, threads, cont, l, got[l], want[l])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
