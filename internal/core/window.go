package core

const (
	// defaultWindowMin is the window floor. A policy constant, not a
	// machine parameter: it is never tuned per machine and the window
	// sequence it produces depends only on commit counts.
	defaultWindowMin = 16
	// defaultWindowTarget is the commit-ratio target of the adaptive
	// policy in §3.2: below it the window shrinks proportionally, at or
	// above it the window doubles.
	defaultWindowTarget = 0.95
	// windowInitDivisor sets the default initial window to n/div.
	windowInitDivisor = 64
	// windowMax bounds window growth (purely to bound per-round memory).
	windowMax = 1 << 22
)

// windowPolicy implements calculateWindow from Figure 2. Its state evolves
// as a pure function of (attempted, committed) pairs, which are themselves
// independent of the number of executing threads — this is the paper's
// portability argument for the adaptive scheme.
type windowPolicy struct {
	size   int
	min    int
	target float64
}

// newWindowPolicy returns the policy for a generation of n tasks.
func newWindowPolicy(n int, opt Options) windowPolicy {
	minW := opt.WindowMin
	if minW <= 0 {
		minW = defaultWindowMin
	}
	target := opt.WindowTarget
	if target <= 0 || target > 1 {
		target = defaultWindowTarget
	}
	size := opt.WindowInit
	if size <= 0 {
		size = n / windowInitDivisor
	}
	if size < minW {
		size = minW
	}
	if size > windowMax {
		size = windowMax
	}
	return windowPolicy{size: size, min: minW, target: target}
}

// next returns the window for a round with `remaining` tasks pending.
func (w *windowPolicy) next(remaining int) int {
	if w.size > remaining {
		return remaining
	}
	return w.size
}

// windowDecision records one update step for observability: the window
// before and after, the commit ratio that drove the step (in permille, so
// it stays integral for trace encoding), and the direction taken.
type windowDecision struct {
	Before, After int
	RatioPermille int64
	Grew          bool
}

// update adjusts the window after a round that attempted `attempted` tasks
// and committed `committed` of them, and returns the decision taken.
func (w *windowPolicy) update(attempted, committed int) windowDecision {
	if attempted == 0 {
		return windowDecision{Before: w.size, After: w.size}
	}
	before := w.size
	ratio := float64(committed) / float64(attempted)
	permille := int64(committed) * 1000 / int64(attempted)
	if ratio < w.target {
		// Shrink proportionally toward the target commit ratio.
		w.size = int(float64(attempted)*ratio/w.target) + 1
		if w.size < w.min {
			w.size = w.min
		}
		return windowDecision{Before: before, After: w.size, RatioPermille: permille}
	}
	// At or above target: double, from the larger of the policy size and
	// what was actually attempted (the attempt may have been clamped by
	// the number of remaining tasks).
	base := w.size
	if attempted > base {
		base = attempted
	}
	w.size = base * 2
	if w.size > windowMax {
		w.size = windowMax
	}
	return windowDecision{Before: before, After: w.size, RatioPermille: permille,
		Grew: w.size > before}
}
