package core

import "math/bits"

// genArena is the backing storage for one generation: the task records, the
// deterministic-order pointer slice, and a second pointer slice used as the
// destination of the locality interleave. Arenas are sized in power-of-two
// classes so an engine can recycle them across generations and runs whose
// sizes differ (a BFS frontier grows and shrinks by orders of magnitude
// within one run). The per-task scratch slices (acquired, children) live in
// the task records, so recycling an arena also recycles every task's
// neighborhood and child buffers at their high-water capacity.
type genArena[T any] struct {
	tasks []detTask[T]
	order []*detTask[T]
	perm  []*detTask[T]
}

// arenaClass returns the free-list class for a generation of n tasks: the
// exponent of the smallest power of two >= n (floored so tiny generations
// share one class).
func arenaClass(n int) int {
	if n <= 16 {
		return 4
	}
	return bits.Len(uint(n - 1))
}

// genFreeList is a size-classed free list of generation arenas, one slot per
// power-of-two class. One slot suffices because at most one generation is
// live at a time within a run: the scheduler releases generation g before
// taking storage for generation g+1, so a steady-state run ping-pongs on the
// same arena(s) and allocates nothing.
type genFreeList[T any] struct {
	byClass [65]*genArena[T]
}

// take returns an arena with capacity for n tasks, recycling a free one of
// the right class when available.
func (fl *genFreeList[T]) take(n int) *genArena[T] {
	c := arenaClass(n)
	if a := fl.byClass[c]; a != nil {
		fl.byClass[c] = nil
		return a
	}
	capacity := 1 << c
	a := &genArena[T]{
		tasks: make([]detTask[T], capacity),
		order: make([]*detTask[T], capacity),
		perm:  make([]*detTask[T], capacity),
	}
	return a
}

// put returns an arena to the free list. The class slot holds one arena;
// a displaced arena is dropped to the garbage collector (this only happens
// when generation sizes oscillate faster than reuse, which recycling by
// class makes rare).
func (fl *genFreeList[T]) put(a *genArena[T]) {
	fl.byClass[arenaClass(len(a.tasks))] = a
}

// generation owns one DIG generation: its task storage and the tasks'
// deterministic order, including id assignment (§3.2: a task's id is its
// position in the generation's sorted order; 0 is reserved for "unowned").
type generation[T any] struct {
	arena *genArena[T]
	// tasks is the generation in deterministic order; it aliases
	// arena.order (or arena.perm after an interleave).
	tasks []*detTask[T]
}

// fill populates the generation with n tasks produced by item, resetting
// recycled task records while preserving their scratch capacity.
func (g *generation[T]) fill(n int, item func(int) T) {
	backing := g.arena.tasks[:n]
	order := g.arena.order[:n]
	for i := range backing {
		t := &backing[i]
		t.item = item(i)
		t.acquired = t.acquired[:0]
		t.children = t.children[:0]
		t.commitFn = nil
		t.failed = false
		order[i] = t
	}
	g.tasks = order
}

func (g *generation[T]) len() int { return len(g.tasks) }

// interleave applies the locality-aware round placement of §3.3 for an
// initial window w0 (see interleaveSrc), permuting into the arena's second
// pointer slice so repeated runs allocate nothing. Used by the serial
// coordinator oracle; the parallel formation pass applies interleaveSrc
// per output slot instead.
func (g *generation[T]) interleave(w0 int) {
	n := len(g.tasks)
	buckets := interleaveBuckets(n, w0)
	if buckets <= 1 {
		return
	}
	full := g.arena.perm
	dst := full[:n]
	for p := range dst {
		dst[p] = g.tasks[interleaveSrc(p, n, buckets)]
	}
	// Ping-pong the two pointer slices so a later fill reuses both.
	g.arena.perm = g.arena.order
	g.arena.order = full
	g.tasks = dst
}

// assignIDs gives every task its deterministic id: its position in the
// generation's order, offset by one because id 0 means "unowned" in the
// marks protocol (§3.2).
func (g *generation[T]) assignIDs() {
	for i, t := range g.tasks {
		t.rec.Reset(uint64(i) + 1)
	}
}
