package core

import (
	"fmt"
	"testing"

	"galois/internal/obs"
	"galois/internal/rng"
)

// tracedOrderSensitive runs an order-sensitive conflict workload (with
// dynamically created children) under the given options with a trace
// attached, returning the cell fingerprint and the canonical event lines.
// The workload covers both round pipelines when driven with a large
// initial window: early rounds exceed serialSpan×nthreads (parallel
// static-range phases with fused gather), and conflict-driven shrinking
// plus generation tails drop rounds into the batched serial path.
func tracedOrderSensitive(t *testing.T, ntasks int, opt Options) (uint64, []string) {
	t.Helper()
	const ncells = 48
	cells := make([]*cell, ncells)
	for i := range cells {
		cells[i] = &cell{}
	}
	r := rng.New(42)
	type task struct {
		id    uint64
		a, b  int
		depth int
	}
	items := make([]task, ntasks)
	for i := range items {
		items[i] = task{id: uint64(i + 1), a: r.Intn(ncells), b: r.Intn(ncells)}
	}
	tr := obs.NewTrace(opt.Threads)
	opt.Sink = tr
	st := ForEach(items, func(ctx *Ctx[task], tk task) {
		ca, cb := cells[tk.a], cells[tk.b]
		ctx.Acquire(&ca.Lockable)
		ctx.Acquire(&cb.Lockable)
		if tk.depth < 1 && tk.id%5 == 0 {
			ctx.Push(task{id: tk.id * 31, a: tk.b, b: tk.a, depth: tk.depth + 1})
		}
		ctx.OnCommit(func(*Ctx[task]) {
			ca.value = ca.value*31 + tk.id
			cb.value = cb.value*37 + tk.id
		})
	}, opt)
	want := uint64(ntasks + ntasks/5)
	if st.Commits != want {
		t.Fatalf("commits = %d, want %d", st.Commits, want)
	}
	return fingerprintCells(cells), tr.CanonicalLines()
}

// TestParallelCoordinatorMatchesSerialOracle is the differential claim of
// the fused round pipeline: for every pipeline mix — parallel rounds on
// static owner-computes ranges with gather fused into execute, and batched
// serial rounds drained inside one barrier callback — the default pipeline
// commits a byte-identical fingerprint AND an identical canonical event
// sequence to the serial worker-0 oracle, across thread counts and with
// and without the continuation optimization.
func TestParallelCoordinatorMatchesSerialOracle(t *testing.T) {
	const ntasks = 3000
	for _, winInit := range []int{0, 4096} {
		for _, cont := range []bool{true, false} {
			// The oracle's output is thread-invariant (portability), so one
			// serial-coordinator reference per configuration suffices.
			refOpt := optsFor(Deterministic, 2, func(o *Options) {
				o.Continuation = cont
				o.WindowInit = winInit
				o.SerialCoordinator = true
			})
			refFP, refEvents := tracedOrderSensitive(t, ntasks, refOpt)
			for _, threads := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("win=%d/cont=%v/t%d", winInit, cont, threads), func(t *testing.T) {
					opt := optsFor(Deterministic, threads, func(o *Options) {
						o.Continuation = cont
						o.WindowInit = winInit
					})
					fp, events := tracedOrderSensitive(t, ntasks, opt)
					if fp != refFP {
						t.Fatalf("fingerprint %#x, serial oracle %#x", fp, refFP)
					}
					if len(events) != len(refEvents) {
						t.Fatalf("%d events, serial oracle %d", len(events), len(refEvents))
					}
					for i := range events {
						if events[i] != refEvents[i] {
							t.Fatalf("event %d = %q, serial oracle %q", i, events[i], refEvents[i])
						}
					}
				})
			}
		}
	}
}

// TestSerialFastPathPinnedEvents pins the exact canonical event sequence of
// a run whose only round is sub-parallel (w <= nthreads, the serial fast
// path), and checks the sequence is identical across thread counts and
// under the serial-coordinator oracle — the fast path may skip the claim
// counters and the scan, but not a single structural event.
func TestSerialFastPathPinnedEvents(t *testing.T) {
	want := []string{
		"run-start sched=1 items=2",
		"gen-start gen=0 round=0 args=2,0,0,0",
		"round-start gen=0 round=0 args=2,0,0,0",
		"phases gen=0 round=0",
		"round-end gen=0 round=0 args=2,2,0,0",
		"suspend gen=0 round=0 args=2,0,0,0",
		"resume gen=0 round=0 args=2,0,0,0",
		"window gen=0 round=0 args=16,32,1000,1",
		"gen-end gen=0 round=0 args=0,0,0,0",
		"run-end gen=0 round=0 args=2,0,1,0",
	}
	var c1, c2 cell
	for _, threads := range []int{1, 2, 4, 8} {
		for _, serialCoord := range []bool{false, true} {
			t.Run(fmt.Sprintf("t%d/oracle=%v", threads, serialCoord), func(t *testing.T) {
				tr := obs.NewTrace(threads)
				ForEach([]int{0, 1}, func(ctx *Ctx[int], i int) {
					c := &c1
					if i == 1 {
						c = &c2
					}
					ctx.Acquire(&c.Lockable)
					ctx.OnCommit(func(*Ctx[int]) { c.value++ })
				}, optsFor(Deterministic, threads, func(o *Options) {
					o.Sink = tr
					o.SerialCoordinator = serialCoord
				}))
				got := tr.CanonicalLines()
				if len(got) != len(want) {
					t.Fatalf("event lines = %q, want %q", got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("event %d = %q, want %q", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestForcedConflictSerialFallback drives the scheduler's degenerate case:
// every task acquires one shared cell, so each round commits exactly one
// task and the window policy shrinks to its floor. Those tiny rounds all
// fall below serialSpan×nthreads, forcing the batched serial path to carry
// essentially the whole run at every thread count — the deterministic
// fallback when contention defeats parallelism. The run must commit the
// same fingerprint and canonical event sequence as the unbatched serial
// oracle, and the order-sensitive cell value pins that the one-commit
// rounds happened in deterministic id order.
func TestForcedConflictSerialFallback(t *testing.T) {
	const ntasks = 60
	items := make([]int, ntasks)
	for i := range items {
		items[i] = i
	}
	run := func(threads int, serialCoord bool, cont bool) (uint64, []string) {
		var c cell
		tr := obs.NewTrace(threads)
		st := ForEach(items, func(ctx *Ctx[int], i int) {
			ctx.Acquire(&c.Lockable)
			ctx.OnCommit(func(*Ctx[int]) { c.value = c.value*31 + uint64(i+1) })
		}, optsFor(Deterministic, threads, func(o *Options) {
			o.Continuation = cont
			o.Sink = tr
			o.SerialCoordinator = serialCoord
		}))
		if st.Commits != ntasks {
			t.Fatalf("commits = %d, want %d", st.Commits, ntasks)
		}
		if st.Aborts == 0 {
			t.Fatal("forced-conflict workload aborted nothing")
		}
		return c.value, tr.CanonicalLines()
	}
	for _, cont := range []bool{true, false} {
		refFP, refEvents := run(2, true, cont)
		for _, threads := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("cont=%v/t%d", cont, threads), func(t *testing.T) {
				fp, events := run(threads, false, cont)
				if fp != refFP {
					t.Fatalf("fingerprint %#x, serial oracle %#x", fp, refFP)
				}
				if len(events) != len(refEvents) {
					t.Fatalf("%d events, serial oracle %d", len(events), len(refEvents))
				}
				for i := range events {
					if events[i] != refEvents[i] {
						t.Fatalf("event %d = %q, serial oracle %q", i, events[i], refEvents[i])
					}
				}
			})
		}
	}
}
