package core

import (
	"fmt"
	"testing"

	"galois/internal/obs"
	"galois/internal/rng"
)

// tracedOrderSensitive runs an order-sensitive conflict workload (with
// dynamically created children) under the given options with a trace
// attached, returning the cell fingerprint and the canonical event lines.
// The workload covers every round pipeline when driven with a large
// initial window: early rounds exceed parGatherMin (scan-based gather),
// conflict-driven shrinking passes through the classic chunked pipeline,
// and generation tails drop under the thread count (serial fast path).
func tracedOrderSensitive(t *testing.T, ntasks int, opt Options) (uint64, []string) {
	t.Helper()
	const ncells = 48
	cells := make([]*cell, ncells)
	for i := range cells {
		cells[i] = &cell{}
	}
	r := rng.New(42)
	type task struct {
		id    uint64
		a, b  int
		depth int
	}
	items := make([]task, ntasks)
	for i := range items {
		items[i] = task{id: uint64(i + 1), a: r.Intn(ncells), b: r.Intn(ncells)}
	}
	tr := obs.NewTrace(opt.Threads)
	opt.Sink = tr
	st := ForEach(items, func(ctx *Ctx[task], tk task) {
		ca, cb := cells[tk.a], cells[tk.b]
		ctx.Acquire(&ca.Lockable)
		ctx.Acquire(&cb.Lockable)
		if tk.depth < 1 && tk.id%5 == 0 {
			ctx.Push(task{id: tk.id * 31, a: tk.b, b: tk.a, depth: tk.depth + 1})
		}
		ctx.OnCommit(func(*Ctx[task]) {
			ca.value = ca.value*31 + tk.id
			cb.value = cb.value*37 + tk.id
		})
	}, opt)
	want := uint64(ntasks + ntasks/5)
	if st.Commits != want {
		t.Fatalf("commits = %d, want %d", st.Commits, want)
	}
	return fingerprintCells(cells), tr.CanonicalLines()
}

// TestParallelCoordinatorMatchesSerialOracle is the differential claim of
// the parallel round coordination: for every pipeline mix — windows large
// enough for the scan-based gather, classic chunked rounds, and serial
// fast-path rounds — the parallel coordinator commits a byte-identical
// fingerprint AND an identical canonical event sequence to the retired
// serial worker-0 coordinator, across thread counts and with and without
// the continuation optimization.
func TestParallelCoordinatorMatchesSerialOracle(t *testing.T) {
	const ntasks = 3000
	for _, winInit := range []int{0, 4096} {
		for _, cont := range []bool{true, false} {
			// The oracle's output is thread-invariant (portability), so one
			// serial-coordinator reference per configuration suffices.
			refOpt := optsFor(Deterministic, 2, func(o *Options) {
				o.Continuation = cont
				o.WindowInit = winInit
				o.SerialCoordinator = true
			})
			refFP, refEvents := tracedOrderSensitive(t, ntasks, refOpt)
			for _, threads := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("win=%d/cont=%v/t%d", winInit, cont, threads), func(t *testing.T) {
					opt := optsFor(Deterministic, threads, func(o *Options) {
						o.Continuation = cont
						o.WindowInit = winInit
					})
					fp, events := tracedOrderSensitive(t, ntasks, opt)
					if fp != refFP {
						t.Fatalf("fingerprint %#x, serial oracle %#x", fp, refFP)
					}
					if len(events) != len(refEvents) {
						t.Fatalf("%d events, serial oracle %d", len(events), len(refEvents))
					}
					for i := range events {
						if events[i] != refEvents[i] {
							t.Fatalf("event %d = %q, serial oracle %q", i, events[i], refEvents[i])
						}
					}
				})
			}
		}
	}
}

// TestSerialFastPathPinnedEvents pins the exact canonical event sequence of
// a run whose only round is sub-parallel (w <= nthreads, the serial fast
// path), and checks the sequence is identical across thread counts and
// under the serial-coordinator oracle — the fast path may skip the claim
// counters and the scan, but not a single structural event.
func TestSerialFastPathPinnedEvents(t *testing.T) {
	want := []string{
		"run-start sched=1 items=2",
		"gen-start gen=0 round=0 args=2,0,0,0",
		"round-start gen=0 round=0 args=2,0,0,0",
		"phases gen=0 round=0",
		"round-end gen=0 round=0 args=2,2,0,0",
		"suspend gen=0 round=0 args=2,0,0,0",
		"resume gen=0 round=0 args=2,0,0,0",
		"window gen=0 round=0 args=16,32,1000,1",
		"gen-end gen=0 round=0 args=0,0,0,0",
		"run-end gen=0 round=0 args=2,0,1,0",
	}
	var c1, c2 cell
	for _, threads := range []int{1, 2, 4, 8} {
		for _, serialCoord := range []bool{false, true} {
			t.Run(fmt.Sprintf("t%d/oracle=%v", threads, serialCoord), func(t *testing.T) {
				tr := obs.NewTrace(threads)
				ForEach([]int{0, 1}, func(ctx *Ctx[int], i int) {
					c := &c1
					if i == 1 {
						c = &c2
					}
					ctx.Acquire(&c.Lockable)
					ctx.OnCommit(func(*Ctx[int]) { c.value++ })
				}, optsFor(Deterministic, threads, func(o *Options) {
					o.Sink = tr
					o.SerialCoordinator = serialCoord
				}))
				got := tr.CanonicalLines()
				if len(got) != len(want) {
					t.Fatalf("event lines = %q, want %q", got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("event %d = %q, want %q", i, got[i], want[i])
					}
				}
			})
		}
	}
}
