package core

import "galois/internal/psort"

// interleavePermute reorders a generation's tasks so that tasks adjacent in
// the original iteration order land in different scheduling windows — the
// locality-aware round placement of §3.3. Applications lay out tasks with
// high locality close together; executed in one window those tasks would
// conflict, so the scheduler deals them round-robin into ceil(n/w0) buckets
// (w0 = the initial window) and concatenates the buckets. The permutation is
// a pure function of (n, w0): deterministic and thread-independent.
func interleavePermute[S ~[]E, E any](tasks S, w0 int) S {
	n := len(tasks)
	if n <= 2 || w0 <= 0 || w0 >= n {
		return tasks
	}
	buckets := (n + w0 - 1) / w0
	if buckets <= 1 {
		return tasks
	}
	out := make(S, 0, n)
	for b := 0; b < buckets; b++ {
		for i := b; i < n; i += buckets {
			out = append(out, tasks[i])
		}
	}
	return out
}

// sortChildren orders dynamically created tasks deterministically with a
// parallel merge sort (the sort of Figure 2 line 5; keys are unique, so
// parallelism cannot perturb the order). In the default mode the key is
// the lexicographic pair (id(parent), k) of §3.2; with pre-assigned ids
// (§3.3) the user-supplied id leads the key and (parent, k) breaks ties
// deterministically. scratch is the reusable merge buffer (engine-retained),
// grown and returned by psort.SortScratch.
func sortChildren[T any](cs []child[T], preassigned bool, threads int, scratch []child[T]) []child[T] {
	if preassigned {
		return psort.SortScratch(cs, func(a, b child[T]) int {
			switch {
			case a.pre != b.pre:
				return cmpU64(a.pre, b.pre)
			case a.parent != b.parent:
				return cmpU64(a.parent, b.parent)
			default:
				return cmpU64(a.k, b.k)
			}
		}, threads, scratch)
	}
	return psort.SortScratch(cs, func(a, b child[T]) int {
		if a.parent != b.parent {
			return cmpU64(a.parent, b.parent)
		}
		return cmpU64(a.k, b.k)
	}, threads, scratch)
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
