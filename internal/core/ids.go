package core

import "galois/internal/psort"

// The locality interleave reorders a generation's tasks so that tasks
// adjacent in the original iteration order land in different scheduling
// windows — the locality-aware round placement of §3.3. Applications lay
// out tasks with high locality close together; executed in one window those
// tasks would conflict, so the scheduler deals them round-robin into
// ceil(n/w0) buckets (w0 = the initial window) and concatenates the
// buckets. The permutation is a pure function of (n, w0): deterministic and
// thread-independent. interleaveBuckets and interleaveSrc are its single
// definition — every consumer (the parallel generation formation, the
// serial-oracle permute, the spec tests) derives each output slot from
// them, so there is exactly one copy of the permutation to get right.

// interleaveBuckets returns the bucket count of the interleave for n tasks
// and initial window w0, or <= 1 when the interleave is the identity (the
// historical guards: trivial generations, degenerate windows, single
// bucket).
func interleaveBuckets(n, w0 int) int {
	if n <= 2 || w0 <= 0 || w0 >= n {
		return 1
	}
	return (n + w0 - 1) / w0
}

// interleaveSrc returns the source index of output position p under the
// interleave of n tasks into `buckets` buckets (buckets > 1). Bucket b
// holds the sources {b, b+buckets, ...}; the first n%buckets buckets hold
// one extra element. Inverting the concatenation analytically makes every
// output slot a pure function of its index — the property that lets the
// formation pass run under a static parallel partition with no intermediate
// buffer.
func interleaveSrc(p, n, buckets int) int {
	q, rem := n/buckets, n%buckets
	var b, j int
	if p < rem*(q+1) {
		b, j = p/(q+1), p%(q+1)
	} else {
		p -= rem * (q + 1)
		b, j = rem+p/q, p%q
	}
	return b + j*buckets
}

// interleavePermute applies the locality interleave out of place. It is the
// reference form used by the spec and window tests; the scheduler itself
// uses interleaveSrc directly (parallel formation) or
// generation.interleave (serial oracle).
func interleavePermute[S ~[]E, E any](tasks S, w0 int) S {
	n := len(tasks)
	buckets := interleaveBuckets(n, w0)
	if buckets <= 1 {
		return tasks
	}
	out := make(S, n)
	for p := range out {
		out[p] = tasks[interleaveSrc(p, n, buckets)]
	}
	return out
}

// sortChildren orders dynamically created tasks deterministically with a
// parallel merge sort (the sort of Figure 2 line 5; keys are unique, so
// parallelism cannot perturb the order). In the default mode the key is
// the lexicographic pair (id(parent), k) of §3.2; with pre-assigned ids
// (§3.3) the user-supplied id leads the key and (parent, k) breaks ties
// deterministically. scratch is the reusable merge buffer (engine-retained),
// grown and returned by psort.SortScratch.
func sortChildren[T any](cs []child[T], preassigned bool, threads int, scratch []child[T]) []child[T] {
	if preassigned {
		return psort.SortScratch(cs, func(a, b child[T]) int {
			switch {
			case a.pre != b.pre:
				return cmpU64(a.pre, b.pre)
			case a.parent != b.parent:
				return cmpU64(a.parent, b.parent)
			default:
				return cmpU64(a.k, b.k)
			}
		}, threads, scratch)
	}
	return psort.SortScratch(cs, func(a, b child[T]) int {
		if a.parent != b.parent {
			return cmpU64(a.parent, b.parent)
		}
		return cmpU64(a.k, b.k)
	}, threads, scratch)
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
