package core

import (
	"runtime"
	"sync/atomic"

	"galois/internal/obs"
	"galois/internal/stats"
	"galois/internal/worklist"
)

// obimAdapter binds a priority function to an OBIM worklist.
type obimAdapter[T any] struct {
	obim *worklist.OBIM[T]
	prio func(T) int
}

func (a *obimAdapter[T]) Push(tid int, item T)  { a.obim.PushPrio(tid, item, a.prio(item)) }
func (a *obimAdapter[T]) Pop(tid int) (T, bool) { return a.obim.Pop(tid) }

// pickWorklist selects the run's worklist, reusing the engine-retained one
// when its kind and size fit. A drained worklist is structurally empty, so
// reuse is invisible to the run; the chunks it accumulated stay allocated,
// which is the reuse win. OBIM worklists are rebuilt per run — they embed
// the run's priority function and bucket count, which may change.
func pickWorklist[T any](st *engState[T], opt Options, nthreads int) interface {
	Push(tid int, item T)
	Pop(tid int) (T, bool)
} {
	switch {
	case opt.Priority != nil:
		fn, ok := opt.Priority.(func(T) int)
		if !ok {
			panic("galois: WithPriority function does not match the loop's item type")
		}
		levels := opt.PriorityLevels
		if levels <= 0 {
			levels = 64
		}
		return &obimAdapter[T]{obim: worklist.NewOBIM[T](nthreads, levels), prio: fn}
	case opt.FIFO:
		if st.fifo == nil || st.fifoThreads < nthreads {
			st.fifo = worklist.NewChunkedFIFO[T](nthreads)
			st.fifoThreads = nthreads
		}
		return st.fifo
	default:
		if st.lifo == nil || st.lifoThreads < nthreads {
			st.lifo = worklist.NewChunkedLIFO[T](nthreads)
			st.lifoThreads = nthreads
		}
		return st.lifo
	}
}

// runNonDeterministic is the speculative scheduler of Figure 1b: each
// worker repeatedly pops an arbitrary task, acquires its neighborhood marks
// with compare-and-set as the body executes, and either commits (running
// the deferred write phase and enqueueing created tasks) or aborts on
// conflict (releasing its marks and retrying the task later). It runs on
// the engine's persistent worker pool and reuses the engine-retained
// contexts, mark records and worklist.
func runNonDeterministic[T any](e *Engine, st *engState[T], items []T, body func(*Ctx[T], T), opt Options, col *stats.Collector) {
	nthreads := opt.Threads
	met := e.metricsFor(opt.Metrics)

	st.ensure(nthreads)
	for _, ctx := range st.ctxs[:nthreads] {
		ctx.prepare(nthreads, false, col, opt, met)
	}

	wl := pickWorklist(st, opt, nthreads)

	// Seed the worklist round-robin so workers start with local work and
	// the initial distribution is balanced.
	for i, it := range items {
		wl.Push(i%nthreads, it)
	}

	// pending counts tasks that exist but have not committed. Workers
	// terminate when it reaches zero; while any worker holds a popped
	// task, pending stays positive, so termination detection is exact.
	var pending atomic.Int64
	pending.Store(int64(len(items)))

	e.pool.Run(nthreads, func(tid int) {
		ctx := st.ctxs[tid]
		// Per-worker tallies for the worker-summary trace event. The
		// event goes to the worker's own lock-free buffer, so emission
		// adds no synchronization between workers.
		var commits, aborts int64
		rec := st.recs[tid]
		// Ids only need to be unique for the non-deterministic marks
		// protocol (§2.1); pointer identity of rec provides that, and
		// a nonzero ID keeps invariants uniform with DIG mode.
		rec.Reset(uint64(tid) + 1)

		backoff := 0
		for {
			item, ok := wl.Pop(tid)
			if !ok {
				if pending.Load() == 0 {
					emit(opt.Sink, tid, obs.Event{Kind: obs.KindWorker,
						Args: [4]int64{commits, aborts}})
					return
				}
				runtime.Gosched()
				continue
			}

			ctx.reset(tid, modeDirect, rec)
			if conflicted := ctx.runBody(body, item); conflicted {
				// Roll back: release every mark acquired so
				// far and retry the task later (Figure 1b
				// lines 7-8). Cautious tasks performed no
				// shared writes, so no state is restored.
				for _, l := range ctx.acquired {
					ctx.ops += l.Release(ctx.rec)
				}
				ctx.flushOps()
				col.Abort(tid)
				aborts++
				wl.Push(tid, item)
				// Brief backoff reduces livelock between
				// symmetric conflicting tasks.
				backoff++
				if backoff > 2 {
					runtime.Gosched()
				}
				continue
			}
			backoff = 0

			// Commit: run the deferred write phase while still
			// holding all neighborhood marks, then publish
			// created tasks, then release.
			if ctx.commitFn != nil {
				ctx.inCommit = true
				ctx.commitFn(ctx)
				ctx.inCommit = false
				ctx.traceCommitTouches(ctx.acquired)
			}
			if n := len(ctx.children); n > 0 {
				pending.Add(int64(n))
				for _, ch := range ctx.children {
					wl.Push(tid, ch.item)
					col.Push(tid)
				}
			}
			for _, l := range ctx.acquired {
				ctx.ops += l.Release(ctx.rec)
			}
			ctx.flushOps()
			col.Commit(tid)
			commits++
			pending.Add(-1)
		}
	})
}
