package core

import (
	"fmt"
	"testing"

	"galois/internal/obs"
)

// TestEmptyRunEventSequence pins the empty-loop contract: under both
// schedulers an empty item set emits exactly run-start and run-end — no
// rounds, no generations and, notably, no worker summaries (the
// non-deterministic path used to fork workers that each emitted one even
// with nothing to do).
func TestEmptyRunEventSequence(t *testing.T) {
	for _, sched := range []Sched{NonDeterministic, Deterministic} {
		t.Run(sched.String(), func(t *testing.T) {
			tr := obs.NewTrace(4)
			st := ForEach(nil, func(ctx *Ctx[int], i int) {
				t.Error("body ran for empty input")
			}, optsFor(sched, 4, func(o *Options) { o.Sink = tr }))
			if st.Commits != 0 || st.Aborts != 0 || st.Rounds != 0 {
				t.Fatalf("empty run stats = %+v", st)
			}
			lines := tr.CanonicalLines()
			want := []string{
				fmt.Sprintf("run-start sched=%d items=0", int(sched)),
				"run-end gen=0 round=0 args=0,0,0,0",
			}
			if len(lines) != len(want) {
				t.Fatalf("event lines = %q, want %q", lines, want)
			}
			for i := range want {
				if lines[i] != want[i] {
					t.Fatalf("event %d = %q, want %q", i, lines[i], want[i])
				}
			}
		})
	}
}

// conflictRun executes the heavy-conflict workload of
// TestConflictingTasksBothSchedulers once with the given options and
// returns the cell fingerprint plus the run's stats. Fresh cells each call
// keep runs independent.
func conflictRun(t *testing.T, opt Options) (uint64, uint64) {
	t.Helper()
	const ntasks = 800
	const ncells = 16
	cells := make([]*cell, ncells)
	for i := range cells {
		cells[i] = &cell{}
	}
	items := make([]int, ntasks)
	for i := range items {
		items[i] = i
	}
	st := ForEach(items, func(ctx *Ctx[int], i int) {
		a, b := cells[i%ncells], cells[(i*7+3)%ncells]
		ctx.Acquire(&a.Lockable)
		ctx.Acquire(&b.Lockable)
		ctx.OnCommit(func(*Ctx[int]) {
			a.value = a.value*31 + uint64(i)
			b.value = b.value*17 + uint64(i)
		})
	}, opt)
	return fingerprintCells(cells), st.Commits
}

// TestEngineReuseMatchesFresh is the core-level engine invariant: runs that
// reuse one engine's retained state are fingerprint-identical to fresh
// ForEach runs, for the DIG scheduler with and without the continuation
// optimization, at several thread counts, across repeated reuse.
func TestEngineReuseMatchesFresh(t *testing.T) {
	for _, cont := range []bool{true, false} {
		for _, threads := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("cont=%v/t%d", cont, threads), func(t *testing.T) {
				opt := optsFor(Deterministic, threads, func(o *Options) { o.Continuation = cont })
				wantFP, wantCommits := conflictRun(t, opt)

				eng := NewEngine(threads)
				defer eng.Close()
				opt.Engine = eng
				for run := 0; run < 3; run++ {
					fp, commits := conflictRun(t, opt)
					if fp != wantFP {
						t.Fatalf("reused run %d: fingerprint %#x, fresh %#x", run, fp, wantFP)
					}
					if commits != wantCommits {
						t.Fatalf("reused run %d: commits %d, fresh %d", run, commits, wantCommits)
					}
				}
			})
		}
	}
}

// TestEngineNonDetReuse drives the non-deterministic scheduler repeatedly on
// one engine over both worklist kinds; every reused run must still commit
// each task exactly once, and the retained worklists must actually be
// reused rather than rebuilt.
func TestEngineNonDetReuse(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	for _, fifo := range []bool{false, true} {
		for run := 0; run < 3; run++ {
			cells := make([]*cell, 64)
			for i := range cells {
				cells[i] = &cell{}
			}
			items := make([]int, 500)
			for i := range items {
				items[i] = i % len(cells)
			}
			st := ForEach(items, func(ctx *Ctx[int], i int) {
				c := cells[i]
				ctx.Acquire(&c.Lockable)
				ctx.OnCommit(func(*Ctx[int]) { c.value++ })
			}, optsFor(NonDeterministic, 4, func(o *Options) {
				o.FIFO = fifo
				o.Engine = eng
			}))
			if st.Commits != uint64(len(items)) {
				t.Fatalf("fifo=%v run %d: commits = %d, want %d", fifo, run, st.Commits, len(items))
			}
			var total uint64
			for _, c := range cells {
				total += c.value
			}
			if total != uint64(len(items)) {
				t.Fatalf("fifo=%v run %d: %d increments, want %d", fifo, run, total, len(items))
			}
		}
	}
	es := stateFor[int](eng)
	if es.lifo == nil || es.fifo == nil {
		t.Fatal("engine retained no worklists after reuse")
	}
}

// TestEngineStateIsPerItemType checks that one engine can serve loops over
// distinct item types, each with its own retained state.
func TestEngineStateIsPerItemType(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	var c1, c2 cell
	opt := optsFor(Deterministic, 2)
	st := RunOn(eng, []int{1, 2, 3}, func(ctx *Ctx[int], i int) {
		ctx.Acquire(&c1.Lockable)
		ctx.OnCommit(func(*Ctx[int]) { c1.value += uint64(i) })
	}, opt)
	if st.Commits != 3 {
		t.Fatalf("int run commits = %d", st.Commits)
	}
	st = RunOn(eng, []string{"a", "bb"}, func(ctx *Ctx[string], s string) {
		ctx.Acquire(&c2.Lockable)
		ctx.OnCommit(func(*Ctx[string]) { c2.value += uint64(len(s)) })
	}, opt)
	if st.Commits != 2 || c2.value != 3 {
		t.Fatalf("string run commits = %d value = %d", st.Commits, c2.value)
	}
	if stateFor[int](eng) == nil || stateFor[string](eng) == nil {
		t.Fatal("missing per-type state")
	}
	if len(eng.states) != 2 {
		t.Fatalf("engine holds %d typed states, want 2", len(eng.states))
	}
}

// TestEngineSteadyStateAllocs is the allocation-free-steady-state claim of
// the engine refactor, at core level: once warm, a deterministic run of
// read-only tasks on a reused engine performs (near) zero heap allocations.
// The bound is deliberately a small constant — the residue is the worker
// dispatch closure and collector snapshot plumbing, not per-task state.
func TestEngineSteadyStateAllocs(t *testing.T) {
	var c cell
	items := make([]int, 512)
	for _, cont := range []bool{true, false} {
		opt := optsFor(Deterministic, 2, func(o *Options) { o.Continuation = cont })
		eng := NewEngine(2)
		opt.Engine = eng
		run := func() {
			ForEach(items, func(ctx *Ctx[int], i int) {
				ctx.Acquire(&c.Lockable)
			}, opt)
		}
		run() // warm: arenas, ctxs, barrier, pool workers
		run()
		allocs := testing.AllocsPerRun(10, run)
		eng.Close()
		// A fresh run allocates hundreds of objects (tasks, contexts,
		// worklist chunks); steady state measures 3 and must stay a small
		// constant.
		if allocs > 8 {
			t.Errorf("cont=%v: steady-state allocs/run = %.0f, want <= 8", cont, allocs)
		}
	}
}

// TestEngineSteadyStateAllocsParallelGather is the same claim for the
// parallel round pipeline: a window large enough to stay above the serial
// batching bound (w > serialSpan×nthreads) runs static-range phases with
// gather fused into execute, and must reuse the collector's per-worker
// lanes and produced buffer, not allocate them per round.
func TestEngineSteadyStateAllocsParallelGather(t *testing.T) {
	// Disjoint tasks keep every round at the full window (all commit, no
	// shrinking), so each round of each run exercises the parallel pipeline.
	cells := make([]cell, 2048)
	items := make([]int, len(cells))
	for i := range items {
		items[i] = i
	}
	opt := optsFor(Deterministic, 2, func(o *Options) { o.WindowInit = 2048 })
	eng := NewEngine(2)
	defer eng.Close()
	opt.Engine = eng
	run := func() {
		ForEach(items, func(ctx *Ctx[int], i int) {
			ctx.Acquire(&cells[i].Lockable)
		}, opt)
	}
	run()
	run()
	allocs := testing.AllocsPerRun(10, run)
	if allocs > 8 {
		t.Errorf("steady-state allocs/run with parallel gather = %.0f, want <= 8", allocs)
	}
}

// TestEngineMisusePanics pins the engine's guard rails: running on a closed
// engine and starting a second run while one is in flight both panic.
func TestEngineMisusePanics(t *testing.T) {
	eng := NewEngine(1)
	eng.Close()
	eng.Close() // idempotent
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for run on closed engine")
			}
		}()
		RunOn(eng, []int{1}, func(*Ctx[int], int) {}, optsFor(Deterministic, 1))
	}()

	eng2 := NewEngine(1)
	defer eng2.Close()
	eng2.running.Store(true) // simulate an in-flight run
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for concurrent runs on one engine")
			}
		}()
		RunOn(eng2, []int{1}, func(*Ctx[int], int) {}, optsFor(Deterministic, 1))
	}()
	eng2.running.Store(false)
}

// TestEngineConcurrentRunPanics drives the guard with a genuinely in-flight
// run — the first RunOn blocks inside a task body while a second goroutine
// calls RunOn on the same engine — pinning the contract the serving layer's
// engine pool relies on: sharing one engine across concurrent jobs fails
// loudly at the second call, it does not corrupt retained run state.
func TestEngineConcurrentRunPanics(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Close()

	inBody := make(chan struct{})
	release := make(chan struct{})
	firstDone := make(chan struct{})
	second := make(chan any, 1)
	//detlint:ignore goroutineorder test choreography: channels order body-entry, second call and release explicitly
	go func() {
		defer close(firstDone)
		RunOn(eng, []int{1}, func(*Ctx[int], int) {
			inBody <- struct{}{}
			<-release
		}, optsFor(Deterministic, 1))
	}()
	<-inBody // first run is mid-task, engine in use
	//detlint:ignore goroutineorder test choreography: the recovered panic is the only cross-goroutine result, delivered on a buffered channel
	go func() {
		defer func() { second <- recover() }()
		RunOn(eng, []int{2}, func(*Ctx[int], int) {}, optsFor(Deterministic, 1))
		second <- nil
	}()
	if got := <-second; got == nil {
		t.Fatal("second RunOn on a busy engine did not panic")
	}
	close(release) // let the first run finish cleanly
	<-firstDone

	// The engine is still usable after the rejected call: the guard
	// protected the in-flight run rather than poisoning the engine.
	st := RunOn(eng, []int{1, 2, 3}, func(*Ctx[int], int) {}, optsFor(Deterministic, 1))
	if st.Commits != 3 {
		t.Fatalf("engine unusable after guarded rejection: %+v", st)
	}
}

// TestDetRunSeversCtxScratchAliases pins the fix for a det→nondet engine
// reuse race. inspectTask swaps task-owned scratch through the contexts, so
// without severing, each ctx would leave a deterministic run still aliasing
// the last task buffer it touched — memory in the generation arena that
// later runs hand to *other* workers (a retried task migrates between
// workers). The nondeterministic scheduler treats leftover ctx scratch as
// private ([:0] + append), so a surviving alias lets two workers grow one
// backing array concurrently. The white-box check asserts every det run
// leaves no alias behind; the alternating det/nondet reuse below is the
// integration surface the race detector watches.
func TestDetRunSeversCtxScratchAliases(t *testing.T) {
	const threads = 4
	eng := NewEngine(threads)
	defer eng.Close()
	detOpt := optsFor(Deterministic, threads, func(o *Options) { o.Engine = eng })
	nonOpt := optsFor(NonDeterministic, threads, func(o *Options) { o.Engine = eng })
	for run := 0; run < 3; run++ {
		conflictRun(t, detOpt)
		st := stateFor[int](eng)
		for i, ctx := range st.ctxs {
			if ctx.acquired != nil || ctx.children != nil {
				t.Fatalf("run %d: ctx %d still aliases task scratch (acquired cap %d, children cap %d)",
					run, i, cap(ctx.acquired), cap(ctx.children))
			}
		}
		conflictRun(t, nonOpt)
	}
}
