package core

import "galois/internal/obs"

// commitCollector owns the serial end-of-round step of the DIG scheduler:
// it gathers the children of committed tasks, compacts failed tasks in
// front of the untried remainder (failed tasks keep their priority), and
// adapts the window. Its produced buffer is engine-retained scratch, so a
// reused engine gathers children without allocating; the buffer is reset at
// each generation start and consumed when the next generation is formed.
type commitCollector[T any] struct {
	produced []child[T]
}

// reset prepares the collector for a new generation, keeping capacity.
func (cc *commitCollector[T]) reset() { cc.produced = cc.produced[:0] }

// gather processes the finished round r: harvests children, compacts the
// failed tasks, records statistics and trace events, and updates the
// window policy. It runs serially (worker 0, between barriers).
//
// The failed compaction is in place: cur and rest are adjacent views of
// r.next, so moving the nf failed task pointers into next[w-nf:w] makes
// failed++rest contiguous at next[w-nf:] with no allocation. The copy
// scans backward, writing from slot w-1 down: at read index i the write
// index is w-1-(failed seen so far) >= i, so a write never lands on a slot
// the scan has yet to read (a forward copy would).
func (cc *commitCollector[T]) gather(r *roundExecutor[T]) {
	committed := 0
	nf := 0
	for _, t := range r.cur {
		if t.failed {
			nf++
			continue
		}
		committed++
		if len(t.children) > 0 {
			cc.produced = append(cc.produced, t.children...)
		}
		// Drop the commit closure (it can pin arbitrary user state) but
		// keep the acquired/children buffers: their capacity is the
		// engine's per-task scratch, recycled by the next fill.
		t.commitFn = nil
	}
	if committed == 0 {
		// The max-id task in every round owns all of its marks by
		// construction (§3.2).
		panic("galois: deterministic round committed no tasks")
	}
	if nf > 0 {
		// Failed tasks keep their priority: they precede untried tasks
		// in the next round.
		j := r.w - 1
		for i := r.w - 1; i >= 0; i-- {
			t := r.cur[i]
			if t.failed {
				r.next[j] = t
				j--
			}
		}
	}
	r.col.Round(len(r.cur), committed)
	emit(r.sink, 0, obs.Event{Kind: obs.KindRoundEnd, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(len(r.cur)), int64(committed), int64(nf)}})
	if r.opt.Continuation {
		// §3.3 continuation aggregates: every task in the round
		// suspended at its failsafe point during inspect; the committed
		// ones resumed.
		emit(r.sink, 0, obs.Event{Kind: obs.KindSuspend, Gen: r.genIdx,
			Round: r.round, Args: [4]int64{int64(len(r.cur))}})
		emit(r.sink, 0, obs.Event{Kind: obs.KindResume, Gen: r.genIdx,
			Round: r.round, Args: [4]int64{int64(committed)}})
	}
	if r.met != nil {
		r.met.tasksPerRound.Observe(0, int64(committed))
		r.met.abortsPerRound.Observe(0, int64(nf))
	}
	dec := r.win.update(len(r.cur), committed)
	grew := int64(0)
	if dec.Grew {
		grew = 1
	}
	emit(r.sink, 0, obs.Event{Kind: obs.KindWindow, Gen: r.genIdx, Round: r.round,
		Args: [4]int64{int64(dec.Before), int64(dec.After), dec.RatioPermille, grew}})
	r.next = r.next[r.w-nf:]
}
