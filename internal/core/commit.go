package core

// gatherLane is one worker's share of a round's gather, written only by
// its owning worker during the execute phase: the failed tasks of the
// worker's static window range (in range order) and the children its
// committed tasks produced. The pad keeps neighboring lanes' slice headers
// off each other's cache lines — the headers are rewritten every append.
type gatherLane[T any] struct {
	failed   []*detTask[T]
	children []child[T]
	_        [128 - 2*24]byte // two 24-byte slice headers, padded to 128
}

// commitCollector owns the end-of-round gather of the DIG scheduler: the
// children of committed tasks are collected and failed tasks are compacted
// in front of the untried remainder (failed tasks keep their priority).
// Two pipelines produce the identical result:
//
//   - gather: the serial walk (the differential-testing oracle, and the
//     pipeline of batched sub-parallel rounds);
//   - per-worker lanes: during the execute phase each worker appends its
//     static range's failed tasks and children to its own lane, so the
//     gather costs no extra phase and no extra barrier. Concatenating the
//     failed lanes in tid order reproduces the serial compaction order
//     exactly (static ranges are ascending in tid, range order is window
//     order). Children lanes accumulate across the generation's rounds and
//     are merged once at generation end — their order is irrelevant,
//     because every generation is sorted by globally-unique child keys
//     ((parent, k), or (pre, parent, k) under preassigned ids) before
//     forming the next, so any deterministic concatenation yields the same
//     next generation.
//
// All buffers are engine-retained scratch: the produced buffer and every
// lane keep their capacity across rounds and runs, so a reused engine
// gathers without allocating.
type commitCollector[T any] struct {
	produced []child[T]
	lanes    []gatherLane[T]
}

// ensureLanes grows the lane set to at least n workers. Serial (pre-fork).
func (cc *commitCollector[T]) ensureLanes(n int) {
	if len(cc.lanes) < n {
		lanes := make([]gatherLane[T], n)
		copy(lanes, cc.lanes)
		cc.lanes = lanes
	}
}

// reset prepares the collector for a new generation, keeping capacity.
func (cc *commitCollector[T]) reset() {
	cc.produced = cc.produced[:0]
	for i := range cc.lanes {
		cc.lanes[i].failed = cc.lanes[i].failed[:0]
		cc.lanes[i].children = cc.lanes[i].children[:0]
	}
}

// mergeFailed closes a parallel round's gather (a barrier callback, so all
// execute-phase lane writes are visible and no worker runs): concatenate
// the per-worker failed lanes, in tid order, into the failed-first prefix
// next[w-nf:w] — the same contents the serial backward compaction produces
// — and return nf. O(nf), not O(window).
func (cc *commitCollector[T]) mergeFailed(r *roundExecutor[T]) int {
	nf := 0
	for i := 0; i < r.nthreads; i++ {
		nf += len(cc.lanes[i].failed)
	}
	if nf == r.w {
		// The max-id task in every round owns all of its marks by
		// construction (§3.2).
		panic("galois: deterministic round committed no tasks")
	}
	j := r.w - nf
	for i := 0; i < r.nthreads; i++ {
		lane := &cc.lanes[i]
		j += copy(r.next[j:r.w], lane.failed)
		lane.failed = lane.failed[:0]
	}
	return nf
}

// mergeProduced concatenates the per-worker children lanes onto the
// produced buffer (which already holds the children of any serially
// gathered rounds) and returns it. Runs once per generation, inside the
// closing coordination callback; the concatenation order is fixed (tid
// ascending) but immaterial — endGeneration sorts by unique keys next.
func (cc *commitCollector[T]) mergeProduced(nthreads int) []child[T] {
	for i := 0; i < nthreads; i++ {
		lane := &cc.lanes[i]
		if len(lane.children) > 0 {
			cc.produced = append(cc.produced, lane.children...)
			lane.children = lane.children[:0]
		}
	}
	return cc.produced
}

// gather is the serial pipeline (a barrier callback: the oracle's round
// close, or one batched sub-parallel round): harvest children, compact
// failed tasks, and finish the round. It is the differential-testing
// oracle the lane pipeline is compared against.
//
// The failed compaction is in place: cur and rest are adjacent views of
// r.next, so moving the nf failed task pointers into next[w-nf:w] makes
// failed++rest contiguous at next[w-nf:] with no allocation. The copy
// scans backward, writing from slot w-1 down: at read index i the write
// index is w-1-(failed seen so far) >= i, so a write never lands on a slot
// the scan has yet to read (a forward copy would).
func (cc *commitCollector[T]) gather(r *roundExecutor[T]) {
	committed := 0
	nf := 0
	for _, t := range r.cur {
		if t.failed {
			nf++
			continue
		}
		committed++
		if len(t.children) > 0 {
			cc.produced = append(cc.produced, t.children...)
		}
		// See execRange: same closure-drop, same buffer retention.
		t.commitFn = nil
	}
	if committed == 0 {
		// The max-id task in every round owns all of its marks by
		// construction (§3.2).
		panic("galois: deterministic round committed no tasks")
	}
	if nf > 0 {
		// Failed tasks keep their priority: they precede untried tasks
		// in the next round.
		j := r.w - 1
		for i := r.w - 1; i >= 0; i-- {
			t := r.cur[i]
			if t.failed {
				r.next[j] = t
				j--
			}
		}
	}
	r.finishRound(committed, nf)
}
