package core

import (
	"math/bits"

	"galois/internal/scan"
)

// commitCollector owns the end-of-round gather of the DIG scheduler: the
// children of committed tasks are collected in window order and failed
// tasks are compacted in front of the untried remainder (failed tasks keep
// their priority). Two pipelines produce the identical result:
//
//   - gather: the serial walk on worker 0 (the differential-testing oracle,
//     and the cheaper pipeline for small windows);
//   - scanCounts + place: the PBBS-style deterministic compaction — each
//     worker records per-chunk counts during the execute phase, an
//     exclusive scan over the chunk counts (one entry per chunk, not per
//     task) turns them into output offsets, and all workers then write
//     failed pointers and children into slots that are pure functions of
//     each task's window index. Chunk boundaries are pure functions of
//     (w, chunk), so concatenating chunks in index order reproduces the
//     serial append/compaction order exactly.
//
// All buffers are engine-retained scratch: the produced buffer, the chunk
// count arrays, the scan's block scratch and the failed-task staging area
// keep their capacity across rounds and runs, so a reused engine gathers
// without allocating.
type commitCollector[T any] struct {
	produced []child[T]

	// Parallel-gather scratch: per-chunk counts (scanned in place into
	// exclusive offsets), the scan's block buffers, and the staging area
	// failed tasks are placed into before the serial copy back into the
	// pending list (placement cannot write next[w-nf:w] directly while
	// other placers still read cur, which aliases next[:w]).
	failCounts  []int64
	childCounts []int64
	scanScratch scan.Scratch
	failScratch []*detTask[T]
}

// reset prepares the collector for a new generation, keeping capacity.
func (cc *commitCollector[T]) reset() { cc.produced = cc.produced[:0] }

// prepareCounts sizes the per-chunk count arrays for a gatherPar round of
// r.w tasks in chunks of r.chunk. No zeroing: every chunk is claimed by
// exactly one worker during the execute phase, which overwrites both slots.
func (cc *commitCollector[T]) prepareCounts(r *roundExecutor[T]) {
	nchunks := int((int64(r.w) + r.chunk - 1) / r.chunk)
	if cap(cc.failCounts) < nchunks {
		n := 1 << bits.Len(uint(nchunks-1))
		cc.failCounts = make([]int64, n)
		cc.childCounts = make([]int64, n)
	}
	cc.failCounts = cc.failCounts[:nchunks]
	cc.childCounts = cc.childCounts[:nchunks]
}

// scanCounts is the serial heart of the parallel gather (a barrier
// callback, so all execute-phase writes are visible and no worker runs):
// exclusive scans turn the per-chunk counts into placement offsets, the
// produced buffer grows to its final size for this round, and the staging
// area for failed tasks is sized. O(chunks), not O(window).
func (cc *commitCollector[T]) scanCounts(r *roundExecutor[T]) {
	nchunks := len(cc.failCounts)
	nf := scan.ExclusiveSumScratch(cc.failCounts[:nchunks], r.nthreads, &cc.scanScratch)
	nch := scan.ExclusiveSumScratch(cc.childCounts[:nchunks], r.nthreads, &cc.scanScratch)
	committed := r.w - int(nf)
	if committed == 0 {
		// The max-id task in every round owns all of its marks by
		// construction (§3.2).
		panic("galois: deterministic round committed no tasks")
	}
	r.nf = int(nf)
	base := len(cc.produced)
	r.childBase = base
	need := base + int(nch)
	if need > cap(cc.produced) {
		grown := make([]child[T], need, max(need, 2*cap(cc.produced)))
		copy(grown, cc.produced)
		cc.produced = grown
	} else {
		cc.produced = cc.produced[:need]
	}
	if int(nf) > cap(cc.failScratch) {
		cc.failScratch = make([]*detTask[T], 1<<bits.Len(uint(nf-1)))
	}
}

// place is one worker's share of the parallel gather: claim chunks and
// write each task's outcome into its deterministic slot — failed tasks into
// the staging area at the chunk's scanned fail offset, children into the
// produced buffer at the chunk's scanned child offset. Within a chunk both
// offsets advance in window-index order, so the global result equals the
// serial walk's append order; across chunks the exclusive scan guarantees
// the slots are disjoint.
func (cc *commitCollector[T]) place(r *roundExecutor[T]) {
	produced := cc.produced
	for {
		start := r.plcCtr.Add(r.chunk) - r.chunk
		if start >= int64(len(r.cur)) {
			return
		}
		end := min(start+r.chunk, int64(len(r.cur)))
		c := start / r.chunk
		fo := cc.failCounts[c]
		co := int64(r.childBase) + cc.childCounts[c]
		for _, t := range r.cur[start:end] {
			if t.failed {
				cc.failScratch[fo] = t
				fo++
				continue
			}
			if len(t.children) > 0 {
				co += int64(copy(produced[co:], t.children))
			}
			// Drop the commit closure (it can pin arbitrary user state)
			// but keep the acquired/children buffers: their capacity is
			// the engine's per-task scratch, recycled by the next fill.
			t.commitFn = nil
		}
	}
}

// gather is the serial pipeline (worker 0 or a barrier callback): harvest
// children, compact failed tasks, and finish the round. It is the
// differential-testing oracle the parallel pipeline is compared against.
//
// The failed compaction is in place: cur and rest are adjacent views of
// r.next, so moving the nf failed task pointers into next[w-nf:w] makes
// failed++rest contiguous at next[w-nf:] with no allocation. The copy
// scans backward, writing from slot w-1 down: at read index i the write
// index is w-1-(failed seen so far) >= i, so a write never lands on a slot
// the scan has yet to read (a forward copy would).
func (cc *commitCollector[T]) gather(r *roundExecutor[T]) {
	committed := 0
	nf := 0
	for _, t := range r.cur {
		if t.failed {
			nf++
			continue
		}
		committed++
		if len(t.children) > 0 {
			cc.produced = append(cc.produced, t.children...)
		}
		// See place: same closure-drop, same buffer retention.
		t.commitFn = nil
	}
	if committed == 0 {
		// The max-id task in every round owns all of its marks by
		// construction (§3.2).
		panic("galois: deterministic round committed no tasks")
	}
	if nf > 0 {
		// Failed tasks keep their priority: they precede untried tasks
		// in the next round.
		j := r.w - 1
		for i := r.w - 1; i >= 0; i-- {
			t := r.cur[i]
			if t.failed {
				r.next[j] = t
				j--
			}
		}
	}
	r.finishRound(committed, nf)
}
