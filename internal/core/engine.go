package core

import (
	"galois/internal/para"
	"galois/internal/stats"
)

// ForEach executes the unordered-algorithm loop of Figure 1a over the
// initial task pool `items` with the scheduler selected in opt, and returns
// the run's statistics. It blocks until every task (including dynamically
// created ones) has committed.
func ForEach[T any](items []T, body func(*Ctx[T], T), opt Options) stats.Stats {
	if opt.Threads <= 0 {
		opt.Threads = para.DefaultThreads()
	}
	col := stats.NewCollector(opt.Threads)
	if opt.Trace {
		col.EnableTrace()
	}
	col.Start()
	switch opt.Sched {
	case Deterministic:
		runDeterministic(items, body, opt, col)
	default:
		runNonDeterministic(items, body, opt, col)
	}
	col.Stop()
	return col.Snapshot()
}
