package core

import (
	"fmt"
	"sync/atomic"

	"galois/internal/marks"
	"galois/internal/obs"
	"galois/internal/para"
	"galois/internal/stats"
	"galois/internal/worklist"
)

// Engine owns the run state both schedulers reuse across loops: the
// persistent worker pool, barriers, the statistics collector, registered
// metrics instruments, and — per item type — generation arenas, contexts and
// gather/sort scratch. A fresh run allocates this state on demand; every
// later run of similar shape finds it warm, so the steady state of a
// repeatedly driven engine allocates (near) zero.
//
// Reuse never reaches committed output: the deterministic schedule is a pure
// function of the task set and ids (§3.2), and recycled storage is fully
// reinitialized before tasks see it, so an engine-reused run is
// fingerprint-identical to a fresh one. An Engine runs one loop at a time
// (concurrent RunOn calls panic). The zero value is not usable; call
// NewEngine.
type Engine struct {
	threads int
	pool    *para.Pool
	bars    map[int]*para.Barrier
	col     *stats.Collector
	// states holds one *engState[T] per item type T, keyed by the typed
	// nil any((*T)(nil)) — a comparable, allocation-free type token.
	states map[any]any
	// mets caches the coreMetrics bundle per registry so reuse does not
	// re-register (or re-allocate) instruments every run.
	mets    map[*obs.Registry]*coreMetrics
	running atomic.Bool
	closed  bool
}

// NewEngine returns an engine whose runs default to the given thread count
// (<= 0 means para.DefaultThreads). Workers and per-type state are created
// lazily by the first run that needs them.
func NewEngine(threads int) *Engine {
	if threads <= 0 {
		threads = para.DefaultThreads()
	}
	return &Engine{
		threads: threads,
		pool:    para.NewPool(),
		bars:    make(map[int]*para.Barrier),
		states:  make(map[any]any),
		mets:    make(map[*obs.Registry]*coreMetrics),
	}
}

// Threads returns the engine's default thread count.
func (e *Engine) Threads() int { return e.threads }

// Close retires the engine's worker goroutines and marks it unusable.
// Idempotent; running on a closed engine panics.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.pool.Close()
}

// barrier returns the engine's reusable barrier for the given party count.
func (e *Engine) barrier(parties int) *para.Barrier {
	b := e.bars[parties]
	if b == nil {
		b = para.NewBarrier(parties)
		e.bars[parties] = b
	}
	return b
}

// metricsFor returns the (cached) scheduler instrument bundle for reg.
func (e *Engine) metricsFor(reg *obs.Registry) *coreMetrics {
	if reg == nil {
		return nil
	}
	if m := e.mets[reg]; m != nil {
		return m
	}
	m := newCoreMetrics(reg)
	e.mets[reg] = m
	return m
}

// collector returns the engine's statistics collector, reset for a run of
// the given thread count.
func (e *Engine) collector(threads int) *stats.Collector {
	if e.col == nil {
		e.col = stats.NewCollector(threads)
	} else {
		e.col.Reset(threads)
	}
	return e.col
}

// engState is the per-item-type slice of an engine's retained state. Methods
// cannot introduce type parameters, so the engine stores these behind `any`
// and the generic free function stateFor recovers the typed view.
type engState[T any] struct {
	// ctxs are the per-worker execution contexts; their acquired/children
	// scratch capacity persists across runs.
	ctxs []*Ctx[T]
	// recs are the per-worker mark records of the non-deterministic
	// scheduler (pointers, so growth never moves a record under a run).
	recs []*marks.Rec
	// free recycles generation arenas by size class (DIG scheduler).
	free genFreeList[T]
	// commit is the end-of-round collector; its produced buffer, chunk
	// count arrays and scan scratch are the gather's retained storage.
	commit commitCollector[T]
	// sortScratch is the merge buffer for sorting generations of children.
	sortScratch []child[T]
	// exec is the retained DIG executor: its barrier callbacks and worker
	// closure are built once, so the round hot loop constructs nothing.
	exec *roundExecutor[T]

	// Retained non-deterministic worklists, with the thread counts they
	// were built for (worklists size per-thread queues at construction).
	lifo        *worklist.ChunkedLIFO[T]
	lifoThreads int
	fifo        *worklist.ChunkedFIFO[T]
	fifoThreads int
}

// ensure grows the per-worker state to at least n workers.
func (st *engState[T]) ensure(n int) {
	for len(st.ctxs) < n {
		st.ctxs = append(st.ctxs, &Ctx[T]{})
		st.recs = append(st.recs, &marks.Rec{})
	}
}

// stateFor returns the engine's retained state for item type T, creating it
// on first use.
func stateFor[T any](e *Engine) *engState[T] {
	key := any((*T)(nil))
	if s, ok := e.states[key]; ok {
		return s.(*engState[T])
	}
	s := &engState[T]{}
	e.states[key] = s
	return s
}

// RunOn executes the unordered-algorithm loop of Figure 1a over the initial
// task pool `items` on the given engine, with the scheduler selected in opt,
// and returns the run's statistics. It blocks until every task (including
// dynamically created ones) has committed. The engine's retained state is
// reused; the run's committed output and event sequence are identical to a
// fresh ForEach with the same options.
func RunOn[T any](e *Engine, items []T, body func(*Ctx[T], T), opt Options) stats.Stats {
	if e.closed {
		panic("galois: run on a closed Engine")
	}
	if !e.running.CompareAndSwap(false, true) {
		panic("galois: concurrent RunOn calls on one Engine — an Engine runs one loop at a time; give each concurrent job its own Engine (e.g. check one out of a pool)")
	}
	defer e.running.Store(false)

	if opt.Threads <= 0 {
		opt.Threads = e.threads
	}
	// Per-thread sinks and registries are sized at construction; growing
	// them lock-free mid-run is impossible, so undersizing is a programming
	// error caught before any worker starts.
	if tr, ok := opt.Sink.(*obs.Trace); ok && tr != nil && tr.Threads() < opt.Threads {
		panic(fmt.Sprintf("galois: trace sized for %d threads attached to a %d-thread run",
			tr.Threads(), opt.Threads))
	}
	if opt.Metrics != nil && opt.Metrics.Threads() < opt.Threads {
		panic(fmt.Sprintf("galois: metrics registry sized for %d threads attached to a %d-thread run",
			opt.Metrics.Threads(), opt.Threads))
	}
	// Workers beyond the runtime's parallelism budget cannot execute in
	// parallel — they only add barrier traffic and scheduler churn under
	// oversubscription — and by the portability property the worker count
	// never reaches committed output or the canonical event sequence (the
	// DIG schedule is a pure function of task ids; the non-deterministic
	// scheduler makes no output claim at all). So requested threads above
	// GOMAXPROCS are capped, "parameterless" style: the knob adapts to the
	// machine instead of asking the user to. The floor of 2 keeps
	// cross-worker interleavings real even on single-processor runtimes,
	// where the differential and race suites still have to exercise the
	// parallel pipelines.
	if w := maxUsefulWorkers(); opt.Threads > w {
		opt.Threads = w
	}
	col := e.collector(opt.Threads)
	if opt.Trace {
		col.EnableTrace()
	}
	sched := int64(0)
	if opt.Sched == Deterministic {
		sched = 1
	}
	emit(opt.Sink, 0, obs.Event{Kind: obs.KindRunStart,
		Args: [4]int64{sched, int64(opt.Threads), int64(len(items))}})
	col.Start()
	// An empty loop runs no scheduler at all: the event sequence is exactly
	// run-start/run-end with zero rounds and no worker events, under both
	// schedulers (previously the non-deterministic path forked workers that
	// each emitted a worker summary for an empty run).
	if len(items) > 0 {
		st := stateFor[T](e)
		switch opt.Sched {
		case Deterministic:
			runDeterministic(e, st, items, body, opt, col)
		default:
			runNonDeterministic(e, st, items, body, opt, col)
		}
	}
	col.Stop()
	snap := col.Snapshot()
	emit(opt.Sink, 0, obs.Event{Kind: obs.KindRunEnd,
		Args: [4]int64{int64(snap.Commits), int64(snap.Aborts), int64(snap.Rounds)}})
	if opt.Metrics != nil {
		obs.PublishStats(opt.Metrics, snap)
	}
	return snap
}

// maxUsefulWorkers is the largest worker count a run benefits from:
// GOMAXPROCS, floored at 2 so parallel code paths keep running with real
// concurrency everywhere (see the cap in RunOn).
func maxUsefulWorkers() int {
	w := para.DefaultThreads()
	if w < 2 {
		w = 2
	}
	return w
}

// ForEach executes the loop with transient state: on the engine supplied in
// opt if any, otherwise on a fresh single-run engine. It is the one-shot
// form of RunOn; repeated callers should hold an Engine and pass it via
// Options.Engine (galois.WithEngine) to amortize run state.
func ForEach[T any](items []T, body func(*Ctx[T], T), opt Options) stats.Stats {
	if opt.Engine != nil {
		return RunOn(opt.Engine, items, body, opt)
	}
	e := NewEngine(opt.Threads)
	defer e.Close()
	return RunOn(e, items, body, opt)
}
