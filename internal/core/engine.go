package core

import (
	"fmt"

	"galois/internal/obs"
	"galois/internal/para"
	"galois/internal/stats"
)

// ForEach executes the unordered-algorithm loop of Figure 1a over the
// initial task pool `items` with the scheduler selected in opt, and returns
// the run's statistics. It blocks until every task (including dynamically
// created ones) has committed.
func ForEach[T any](items []T, body func(*Ctx[T], T), opt Options) stats.Stats {
	if opt.Threads <= 0 {
		opt.Threads = para.DefaultThreads()
	}
	// Per-thread sinks and registries are sized at construction; growing
	// them lock-free mid-run is impossible, so undersizing is a programming
	// error caught before any worker starts.
	if tr, ok := opt.Sink.(*obs.Trace); ok && tr != nil && tr.Threads() < opt.Threads {
		panic(fmt.Sprintf("galois: trace sized for %d threads attached to a %d-thread run",
			tr.Threads(), opt.Threads))
	}
	if opt.Metrics != nil && opt.Metrics.Threads() < opt.Threads {
		panic(fmt.Sprintf("galois: metrics registry sized for %d threads attached to a %d-thread run",
			opt.Metrics.Threads(), opt.Threads))
	}
	col := stats.NewCollector(opt.Threads)
	if opt.Trace {
		col.EnableTrace()
	}
	sched := int64(0)
	if opt.Sched == Deterministic {
		sched = 1
	}
	emit(opt.Sink, 0, obs.Event{Kind: obs.KindRunStart,
		Args: [4]int64{sched, int64(opt.Threads), int64(len(items))}})
	col.Start()
	switch opt.Sched {
	case Deterministic:
		runDeterministic(items, body, opt, col)
	default:
		runNonDeterministic(items, body, opt, col)
	}
	col.Stop()
	st := col.Snapshot()
	emit(opt.Sink, 0, obs.Event{Kind: obs.KindRunEnd,
		Args: [4]int64{int64(st.Commits), int64(st.Aborts), int64(st.Rounds)}})
	if opt.Metrics != nil {
		obs.PublishStats(opt.Metrics, st)
	}
	return st
}
