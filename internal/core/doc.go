// Package core implements the two Galois schedulers of the paper: the
// non-deterministic speculative scheduler of §2.1 (Figure 1b) and the
// deterministic interference-graph (DIG) scheduler of §3 (Figures 2-3),
// including the §3.3 optimizations. The public API lives in the root
// package galois; core is generic over the task item type.
//
// # Execution protocol
//
// A task body runs under one of three modes (see Ctx):
//
//   - modeDirect (non-deterministic): Acquire locks each location with
//     compare-and-set as the body reads it; a conflict unwinds the body via
//     a panic sentinel, releases the marks, and requeues the task. Because
//     tasks are cautious — no shared writes before the OnCommit closure —
//     unwinding is the entire rollback.
//   - modeInspect (DIG phase 1): Acquire performs writeMarksMax: the
//     highest task id wins each location, displaced owners get their
//     Prevented flag set, and losing tasks self-flag but keep marking (the
//     max over a fixed set is order-independent only if every element
//     participates). The cumulative marks are the round's interference
//     graph; nobody mutates shared program state in this phase.
//   - modeValidate (DIG phase 2, baseline): the body re-executes; Acquire
//     asserts ownership and unwinds on the first mismatch. With the
//     continuation optimization the re-execution is skipped: the Prevented
//     flag alone decides, and the closure saved at inspect time resumes.
//
// # Why the Prevented flag equals mark validation
//
// Task t fails to own location l at the end of inspect iff some other task
// u with id(u) > id(t) marked l this round. Two cases: u marked l after t
// (u observed t's mark and stole it, setting t.Prevented), or before
// (t observed u's mark, lost the WriteMax, and self-set t.Prevented).
// Either way Prevented(t) is set; conversely Prevented(t) is only ever set
// in those two situations. So Prevented(t) <=> t does not own its whole
// neighborhood <=> t is outside the round's unique independent set. The
// spec-conformance property tests (spec_test.go) check this equivalence
// against a direct sequential interpreter of Figure 2, with and without
// the optimization, across thread counts.
//
// # Why the commit phase is race- and determinism-safe
//
// Committed tasks within one round have disjoint neighborhoods (they all
// own everything they touched), so their write phases touch disjoint
// locations. A validating re-execution (baseline mode) can run while other
// tasks commit, but every location it reads it owns — if control flow ever
// reaches a location it does not own, Acquire unwinds it before the value
// is used — so it observes exactly the frozen inspect-time state.
//
// # Mark lifecycle
//
// Every round starts with all marks nil: after selectAndExec each task
// CASes its own record out of every location it recorded (ClearIfOwner),
// and exactly one task — the final owner — succeeds per location. A task
// resets its Prevented flag at the start of its own inspect, strictly
// before writing any marks, so no stealer's flag write can be lost.
//
// # Determinism inventory
//
// The deterministic schedule is a pure function of the input because every
// input to every scheduling decision is: (i) the generation order — the
// caller's slice order, then sorted (parent id, creation index) keys of
// committed pushes, optionally pre-permuted by the deterministic
// interleave; (ii) the window sequence — a pure function of per-round
// commit counts (window.go); (iii) mark resolution — max over a round's
// ids per location, order-independent. Thread count, chunking, stealing
// and timing can change which worker executes what and in which order
// within a phase, but phases are barrier-separated and every cross-phase
// value is one of (i)-(iii).
//
// # Structure and state reuse
//
// The DIG pipeline is phase-structured across four files: generation.go
// owns task storage and deterministic id assignment (generation, backed by
// size-classed recyclable arenas), round.go owns the inspect/selectAndExec
// phase loop and chunked work distribution (roundExecutor), commit.go owns
// the serial end-of-round gather/compact/adapt step (commitCollector), and
// det.go orchestrates the generation lifecycle. Both schedulers run on the
// persistent worker pool of internal/para.
//
// All run state lives in an Engine (engine.go): the pool, barriers, the
// collector and — per item type — arenas, contexts, worklists and scratch.
// ForEach builds a transient engine per call; RunOn reuses a caller-held
// one, whose steady state allocates (near) zero per run. Reuse is inert to
// determinism: recycled storage is fully reinitialized before tasks see it,
// so engine-reused runs are fingerprint-identical to fresh ones.
package core
