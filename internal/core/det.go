package core

import (
	"sync/atomic"

	"galois/internal/marks"
	"galois/internal/obs"
	"galois/internal/para"
	"galois/internal/stats"
)

// detTask is the scheduler-side record for one task in the current
// generation. Its rec is the task's identity in the marks protocol; the id
// stored in rec is the task's position in the generation's deterministic
// order (§3.2).
type detTask[T any] struct {
	rec      marks.Rec
	item     T
	acquired []*marks.Lockable
	commitFn func(*Ctx[T])
	children []child[T]
	// failed records this round's outcome: the task was not in the
	// selected independent set and is retried next round.
	failed bool
}

// runDeterministic is the DIG scheduler of Figure 2. Tasks execute in
// generations: the initial tasks form generation zero; tasks created during
// a generation are collected, sorted by their deterministic keys, and form
// the next generation (todo/next in the pseudocode). Within a generation,
// execution proceeds in rounds over an adaptively sized window.
func runDeterministic[T any](items []T, body func(*Ctx[T], T), opt Options, col *stats.Collector) {
	if len(items) == 0 {
		return
	}
	nthreads := opt.Threads
	met := newCoreMetrics(opt.Metrics)

	ctxs := make([]*Ctx[T], nthreads)
	for i := range ctxs {
		ctxs[i] = &Ctx[T]{threads: nthreads, det: true, col: col, pro: opt.Profile, met: met}
	}

	gen := makeGeneration[T](len(items), func(i int) T { return items[i] })
	for genIdx := int32(0); len(gen) > 0; genIdx++ {
		win := newWindowPolicy(len(gen), opt)
		if opt.LocalityInterleave {
			gen = interleavePermute(gen, win.size)
		}
		// Ids are positions in the generation's deterministic order;
		// 0 is reserved for "unowned" (nil mark), so ids start at 1.
		for i, t := range gen {
			t.rec.Reset(uint64(i) + 1)
		}
		emit(opt.Sink, 0, obs.Event{Kind: obs.KindGenStart, Gen: genIdx,
			Args: [4]int64{int64(len(gen))}})
		produced := runGeneration(gen, body, opt, col, ctxs, &win, nthreads, genIdx, met)
		emit(opt.Sink, 0, obs.Event{Kind: obs.KindGenEnd, Gen: genIdx,
			Args: [4]int64{int64(len(produced))}})
		if len(produced) == 0 {
			return
		}
		sortChildren(produced, opt.PreassignedIDs, opt.Threads)
		emit(opt.Sink, 0, obs.Event{Kind: obs.KindGenSort, Gen: genIdx,
			Args: [4]int64{int64(len(produced))}})
		gen = makeGeneration[T](len(produced), func(i int) T { return produced[i].item })
	}
}

// makeGeneration allocates a generation of n tasks with one backing array.
func makeGeneration[T any](n int, item func(int) T) []*detTask[T] {
	backing := make([]detTask[T], n)
	gen := make([]*detTask[T], n)
	for i := range backing {
		backing[i].item = item(i)
		gen[i] = &backing[i]
	}
	return gen
}

// runGeneration executes one generation to completion and returns the tasks
// it created. Workers are persistent across rounds and synchronize with a
// barrier, mirroring the barrier structure of Figure 2; worker 0 doubles as
// the round coordinator.
func runGeneration[T any](gen []*detTask[T], body func(*Ctx[T], T), opt Options,
	col *stats.Collector, ctxs []*Ctx[T], win *windowPolicy, nthreads int,
	genIdx int32, met *coreMetrics) []child[T] {

	var (
		produced []child[T]
		next     = gen
		cur      []*detTask[T]
		rest     []*detTask[T]
		done     bool
		insCtr   atomic.Int64
		exeCtr   atomic.Int64
		chunk    int64
	)
	sink := opt.Sink
	// round is written only in serial sections (pre-fork, then worker 0's
	// coordinator block), like the rest of the round state.
	round := int32(-1)

	setupRound := func() {
		if len(next) == 0 {
			done = true
			return
		}
		w := win.next(len(next))
		cur, rest = next[:w:w], next[w:]
		round++
		emit(sink, 0, obs.Event{Kind: obs.KindRoundStart, Gen: genIdx, Round: round,
			Args: [4]int64{int64(w), int64(len(rest))}})
		chunk = int64(w / (nthreads * 8))
		if chunk < 1 {
			chunk = 1
		}
		if chunk > 64 {
			chunk = 64
		}
		insCtr.Store(0)
		exeCtr.Store(0)
	}
	setupRound()
	if done {
		return nil
	}

	bar := para.NewBarrier(nthreads)
	para.Run(nthreads, func(tid int) {
		ctx := ctxs[tid]
		for {
			if done {
				return
			}
			// Phase 1: inspect (Figure 2 line 14).
			for {
				start := insCtr.Add(chunk) - chunk
				if start >= int64(len(cur)) {
					break
				}
				end := min(start+chunk, int64(len(cur)))
				for _, t := range cur[start:end] {
					inspectTask(ctx, t, body, tid, opt.Continuation)
				}
			}
			bar.Wait()
			// Phase 2: selectAndExec (Figure 2 line 19).
			for {
				start := exeCtr.Add(chunk) - chunk
				if start >= int64(len(cur)) {
					break
				}
				end := min(start+chunk, int64(len(cur)))
				for _, t := range cur[start:end] {
					execTask(ctx, t, body, tid, opt.Continuation)
				}
			}
			bar.Wait()
			// Coordination: gather results, adapt the window, form
			// the next round (Figure 2 lines 9-12). Worker 0 runs
			// this serially between barriers.
			if tid == 0 {
				committed := 0
				var failed []*detTask[T]
				for _, t := range cur {
					if t.failed {
						failed = append(failed, t)
						continue
					}
					committed++
					if len(t.children) > 0 {
						produced = append(produced, t.children...)
					}
					t.children = nil
					t.commitFn = nil
					t.acquired = nil
				}
				if committed == 0 {
					// The max-id task in every round owns all
					// of its marks by construction (§3.2).
					panic("galois: deterministic round committed no tasks")
				}
				col.Round(len(cur), committed)
				emit(sink, 0, obs.Event{Kind: obs.KindRoundEnd, Gen: genIdx, Round: round,
					Args: [4]int64{int64(len(cur)), int64(committed), int64(len(failed))}})
				if opt.Continuation {
					// §3.3 continuation aggregates: every task in the
					// round suspended at its failsafe point during
					// inspect; the committed ones resumed.
					emit(sink, 0, obs.Event{Kind: obs.KindSuspend, Gen: genIdx,
						Round: round, Args: [4]int64{int64(len(cur))}})
					emit(sink, 0, obs.Event{Kind: obs.KindResume, Gen: genIdx,
						Round: round, Args: [4]int64{int64(committed)}})
				}
				if met != nil {
					met.tasksPerRound.Observe(0, int64(committed))
					met.abortsPerRound.Observe(0, int64(len(failed)))
				}
				dec := win.update(len(cur), committed)
				grew := int64(0)
				if dec.Grew {
					grew = 1
				}
				emit(sink, 0, obs.Event{Kind: obs.KindWindow, Gen: genIdx, Round: round,
					Args: [4]int64{int64(dec.Before), int64(dec.After), dec.RatioPermille, grew}})
				if len(failed) > 0 {
					// Failed tasks keep their priority: they
					// precede untried tasks in the next round.
					next = append(failed, rest...)
				} else {
					next = rest
				}
				setupRound()
			}
			bar.Wait()
		}
	})
	return produced
}

// inspectTask runs one task up to (through) its failsafe point in inspect
// mode, performing writeMarksMax over its neighborhood. With the
// continuation optimization the registered commit closure and any phase-1
// children are retained for resumption; without it they are discarded and
// the commit phase re-executes the body.
func inspectTask[T any](ctx *Ctx[T], t *detTask[T], body func(*Ctx[T], T), tid int, keepCont bool) {
	// Clear last round's outcome before writing any marks: stealers only
	// touch this rec after its first mark write, so no flag update can
	// be lost (see marks.Rec.Prevented).
	t.rec.Prevented.Store(false)
	ctx.reset(tid, modeInspect, &t.rec)
	ctx.acquired = t.acquired[:0]
	ctx.children = t.children[:0]
	ctx.runBody(body, t.item)
	t.acquired = ctx.acquired
	if keepCont {
		t.commitFn = ctx.commitFn
		t.children = ctx.children
	} else {
		t.commitFn = nil
		t.children = ctx.children[:0]
	}
	ctx.flushOps()
	ctx.col.Inspect(tid)
}

// execTask decides whether t is in the round's independent set and, if so,
// commits it. Either way it clears the marks t still owns, so every mark is
// unowned again by the end of the phase.
func execTask[T any](ctx *Ctx[T], t *detTask[T], body func(*Ctx[T], T), tid int, continuation bool) {
	if continuation {
		// §3.3: the prevented flag subsumes mark re-validation — it
		// is set iff some location of t ended up owned by a higher id.
		if t.rec.Prevented.Load() {
			t.failed = true
			ctx.col.Abort(tid)
		} else {
			t.failed = false
			if t.commitFn != nil {
				ctx.reset(tid, modeInspect, &t.rec)
				ctx.children = t.children
				ctx.nchild = childMax(t.children)
				ctx.inCommit = true
				t.commitFn(ctx)
				ctx.inCommit = false
				t.children = ctx.children
				ctx.traceCommitTouches(t.acquired)
			}
			ctx.col.Commit(tid)
		}
	} else {
		// Baseline (§3.2): re-execute from the beginning; Acquire
		// validates that each mark still holds this task's id and
		// unwinds on the first mismatch.
		ctx.reset(tid, modeValidate, &t.rec)
		if conflicted := ctx.runBody(body, t.item); conflicted {
			t.failed = true
			ctx.col.Abort(tid)
		} else {
			t.failed = false
			if ctx.commitFn != nil {
				ctx.inCommit = true
				ctx.commitFn(ctx)
				ctx.inCommit = false
			}
			t.children = append(t.children[:0], ctx.children...)
			ctx.col.Commit(tid)
		}
	}
	for _, l := range t.acquired {
		ctx.ops += l.ClearIfOwner(&t.rec)
	}
	ctx.flushOps()
	if !t.failed {
		for range t.children {
			ctx.col.Push(tid)
		}
	}
}

// childMax returns the largest creation index among cs, so that pushes from
// the commit closure continue the parent's (id, k) sequence.
func childMax[T any](cs []child[T]) uint64 {
	var m uint64
	for i := range cs {
		if cs[i].k > m {
			m = cs[i].k
		}
	}
	return m
}
