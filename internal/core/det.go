package core

import (
	"galois/internal/marks"
	"galois/internal/stats"
)

// detTask is the scheduler-side record for one task in the current
// generation. Its rec is the task's identity in the marks protocol; the id
// stored in rec is the task's position in the generation's deterministic
// order (§3.2). The acquired and children slices are per-task scratch whose
// capacity survives arena recycling, which is what makes a reused engine's
// steady state allocation-free.
type detTask[T any] struct {
	rec      marks.Rec
	item     T
	acquired []*marks.Lockable
	commitFn func(*Ctx[T])
	children []child[T]
	// failed records this round's outcome: the task was not in the
	// selected independent set and is retried next round.
	failed bool
}

// runDeterministic is the DIG scheduler of Figure 2, phase-structured over
// the engine's retained state. Tasks execute in generations: the initial
// tasks form generation zero; tasks created during a generation are
// collected by the commitCollector, sorted by their deterministic keys, and
// form the next generation (todo/next in the pseudocode). The whole
// generation loop — formation, rounds, gather, sort — runs inside one
// worker region (roundExecutor.workerLoop), so generation boundaries cost a
// barrier instead of a pool fork/join and the coordination steps run as
// barrier callbacks. All storage — arenas, contexts, children scratch, sort
// scratch, the executor itself — comes from the engine and is returned to
// it, so repeated runs on one engine allocate (near) nothing.
func runDeterministic[T any](e *Engine, st *engState[T], items []T, body func(*Ctx[T], T), opt Options, col *stats.Collector) {
	nthreads := opt.Threads
	// Profiled runs execute single-threaded: the cachesim tracer orders
	// accesses by arrival, and only a serial run makes that order a pure
	// function of the schedule — thread-invariant and machine-invariant,
	// which is what the §5.4 locality model claims to measure. (The old
	// dynamic chunk claiming only delivered that on GOMAXPROCS=1, where the
	// first-scheduled worker drained every chunk; static owner-computes
	// ranges genuinely interleave, so the serialization must be explicit.)
	// Committed output is unchanged by the portability property; worker
	// count never reaches it.
	if opt.Profile != nil {
		nthreads = 1
	}
	met := e.metricsFor(opt.Metrics)

	st.ensure(nthreads)
	for _, ctx := range st.ctxs[:nthreads] {
		ctx.prepare(nthreads, true, col, opt, met)
	}

	r := st.exec
	if r == nil {
		r = newRoundExecutor(st)
		st.exec = r
	}
	r.opt = opt
	r.body = body
	r.ctxs = st.ctxs
	r.col = col
	r.met = met
	r.sink = opt.Sink
	r.nthreads = nthreads
	r.cc = &st.commit
	st.commit.ensureLanes(nthreads)
	r.bar = e.barrier(nthreads)
	r.barCrossings, r.barMark = 0, 0
	r.genIdx = 0
	r.runDone = false
	r.gen = generation[T]{arena: st.free.take(len(items))}
	r.formItems, r.formChildren = items, nil
	r.formN = len(items)
	r.beginGeneration()
	r.runAll(e.pool)
	st.free.put(r.gen.arena)
	r.release()

	// inspectTask/execTask swap task-owned scratch through the contexts, so
	// after the run each ctx still aliases the last task buffer it touched.
	// Those buffers live in the generation arena and are handed out to
	// *other* workers on the next run (a retried task moves between
	// workers), and the nondeterministic scheduler treats a leftover
	// ctx.acquired/children as private scratch ([:0] + append). A surviving
	// alias therefore lets two workers grow one backing array concurrently.
	// Sever the aliases here; the capacity stays with the arena tasks.
	for _, ctx := range st.ctxs[:nthreads] {
		ctx.acquired = nil
		ctx.children = nil
	}
}

// inspectTask runs one task up to (through) its failsafe point in inspect
// mode, performing writeMarksMax over its neighborhood. With the
// continuation optimization the registered commit closure and any phase-1
// children are retained for resumption; without it they are discarded and
// the commit phase re-executes the body.
func inspectTask[T any](ctx *Ctx[T], t *detTask[T], body func(*Ctx[T], T), tid int, keepCont bool) {
	// Clear last round's outcome before writing any marks: stealers only
	// touch this rec after its first mark write, so no flag update can
	// be lost (see marks.Rec.Prevented).
	t.rec.Prevented.Store(false)
	ctx.reset(tid, modeInspect, &t.rec)
	ctx.acquired = t.acquired[:0]
	ctx.children = t.children[:0]
	ctx.runBody(body, t.item)
	t.acquired = ctx.acquired
	if keepCont {
		t.commitFn = ctx.commitFn
		t.children = ctx.children
	} else {
		t.commitFn = nil
		t.children = ctx.children[:0]
	}
	ctx.flushOps()
	ctx.col.Inspect(tid)
}

// execTask decides whether t is in the round's independent set and, if so,
// commits it. Either way it clears the marks t still owns, so every mark is
// unowned again by the end of the phase.
func execTask[T any](ctx *Ctx[T], t *detTask[T], body func(*Ctx[T], T), tid int, continuation bool) {
	// Two branches below (prevented, and committed-without-commitFn) never
	// reset the ctx, yet the mark-clearing epilogue flushes the atomic-op
	// count through ctx.tid-sharded collector slots. ctx 0 is shared
	// between worker 0's parallel phases and the batched serial rounds any
	// worker may drain inside a coordination callback, so a ctx can reach
	// exec carrying another caller's tid and would flush into the wrong
	// shard. Pin the tid up front.
	ctx.tid = tid
	if continuation {
		// §3.3: the prevented flag subsumes mark re-validation — it
		// is set iff some location of t ended up owned by a higher id.
		if t.rec.Prevented.Load() {
			t.failed = true
			ctx.col.Abort(tid)
		} else {
			t.failed = false
			if t.commitFn != nil {
				ctx.reset(tid, modeInspect, &t.rec)
				ctx.children = t.children
				ctx.nchild = childMax(t.children)
				ctx.inCommit = true
				t.commitFn(ctx)
				ctx.inCommit = false
				t.children = ctx.children
				ctx.traceCommitTouches(t.acquired)
			}
			ctx.col.Commit(tid)
		}
	} else {
		// Baseline (§3.2): re-execute from the beginning; Acquire
		// validates that each mark still holds this task's id and
		// unwinds on the first mismatch. Pushes go to the ctx-owned
		// scratch buffer (see Ctx.scratch), reclaimed below.
		ctx.reset(tid, modeValidate, &t.rec)
		ctx.children = ctx.scratch[:0]
		if conflicted := ctx.runBody(body, t.item); conflicted {
			ctx.scratch = ctx.children
			t.failed = true
			ctx.col.Abort(tid)
		} else {
			t.failed = false
			if ctx.commitFn != nil {
				ctx.inCommit = true
				ctx.commitFn(ctx)
				ctx.inCommit = false
			}
			t.children = append(t.children[:0], ctx.children...)
			ctx.scratch = ctx.children
			ctx.col.Commit(tid)
		}
	}
	for _, l := range t.acquired {
		ctx.ops += l.ClearIfOwner(&t.rec)
	}
	ctx.flushOps()
	if !t.failed {
		for range t.children {
			ctx.col.Push(tid)
		}
	}
}

// childMax returns the largest creation index among cs, so that pushes from
// the commit closure continue the parent's (id, k) sequence.
func childMax[T any](cs []child[T]) uint64 {
	var m uint64
	for i := range cs {
		if cs[i].k > m {
			m = cs[i].k
		}
	}
	return m
}
